module hilti

go 1.22
