// Differential tests for the post-lowering optimizer: every host
// application must produce byte-identical output whether its HILTI code
// runs at -O0 or fully optimized. These are the end-to-end counterpart of
// the per-pass tests in internal/hilti/vm/opt_test.go.
package hilti_test

import (
	"strings"
	"testing"
	"time"

	"hilti"
	"hilti/internal/bpf"
	"hilti/internal/bro"
	"hilti/internal/firewall"
	"hilti/internal/hilti/vm"
	"hilti/internal/pkt/layers"
	"hilti/internal/rt/hbytes"
	"hilti/internal/rt/values"
)

// withOptLevel runs fn with the process-wide default optimizer level set,
// restoring it afterwards (host applications link through the default).
func withOptLevel(level int, fn func()) {
	prev := vm.DefaultOptLevel()
	hilti.SetDefaultOptLevel(level)
	defer hilti.SetDefaultOptLevel(prev)
	fn()
}

func TestOptDifferentialBPFFilter(t *testing.T) {
	httpPkts, _ := traces()
	e, err := bpf.ParseFilter("host 10.1.9.77 or src net 10.1.3.0/24")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bpf.CompileBPF(e)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := bpf.CompileHILTI(e)
	if err != nil {
		t.Fatal(err)
	}

	matchesAt := func(level hilti.OptLevel) []bool {
		prog, err := hilti.LinkWith(hilti.Config{OptLevel: level}, mod)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := hilti.NewExec(prog)
		if err != nil {
			t.Fatal(err)
		}
		fn := prog.Fn("Filter::filter")
		rope := hbytes.New()
		out := make([]bool, len(httpPkts))
		for i, p := range httpPkts {
			rope.Reset(p.Data)
			v, err := ex.CallFn(fn, values.BytesVal(rope))
			if err != nil {
				t.Fatal(err)
			}
			out[i] = v.AsBool()
		}
		return out
	}
	m0, m1, m2 := matchesAt(hilti.O0), matchesAt(hilti.O1), matchesAt(hilti.O2)
	for i := range m0 {
		if m0[i] != m1[i] || m1[i] != m2[i] {
			t.Fatalf("packet %d: -O0 match %v, -O1 match %v, -O2 match %v",
				i, m0[i], m1[i], m2[i])
		}
		if want := ref.Run(httpPkts[i].Data) != 0; m0[i] != want {
			t.Fatalf("packet %d: HILTI match %v, BPF reference %v", i, m0[i], want)
		}
	}
}

func TestOptDifferentialFirewall(t *testing.T) {
	_, dnsPkts := traces()
	rules, err := firewall.ParseRules(strings.NewReader(`
10.1.0.0/16   172.20.0.0/16 allow
10.2.0.0/16   172.20.0.0/16 deny
*             172.20.0.5/32 allow
`))
	if err != nil {
		t.Fatal(err)
	}
	var fws [3]*firewall.Firewall
	for i, level := range []int{0, 1, 2} {
		withOptLevel(level, func() {
			fw, err := firewall.New(rules, 5*time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			fws[i] = fw
		})
	}
	for _, p := range dnsPkts {
		eth, _ := layers.DecodeEthernet(p.Data)
		ip, err := layers.DecodeIPv4(eth.Payload)
		if err != nil {
			continue
		}
		ts := p.Time.UnixNano()
		src, dst := values.AddrFrom4(ip.Src), values.AddrFrom4(ip.Dst)
		a, err := fws[0].Match(ts, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		for lvl := 1; lvl < 3; lvl++ {
			b, err := fws[lvl].Match(ts, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("firewall decision diverges for %s -> %s: O0=%v O%d=%v",
					values.Format(src), values.Format(dst), a, lvl, b)
			}
		}
	}
}

func TestOptDifferentialBroLogs(t *testing.T) {
	httpPkts, dnsPkts := traces()
	runAt := func(level int) *bro.Engine {
		var eng *bro.Engine
		withOptLevel(level, func() {
			e, err := bro.NewEngine(bro.Config{
				Parser: "binpac", ScriptExec: "hilti",
				Scripts: []string{bro.HTTPScript, bro.FilesScript, bro.DNSScript},
				Quiet:   true,
			})
			if err != nil {
				t.Fatal(err)
			}
			e.ProcessTrace(httpPkts)
			e.ProcessTrace(dnsPkts)
			e.Finish()
			eng = e
		})
		return eng
	}
	e0 := runAt(0)
	for _, level := range []int{1, 2} {
		e1 := runAt(level)
		for _, stream := range []string{"http", "files", "dns"} {
			l0, l1 := e0.Logs.Lines(stream), e1.Logs.Lines(stream)
			if len(l0) != len(l1) {
				t.Fatalf("%s.log: %d lines at -O0, %d at -O%d", stream, len(l0), len(l1), level)
			}
			for i := range l0 {
				if l0[i] != l1[i] {
					t.Fatalf("%s.log line %d diverges:\n-O0: %s\n-O%d: %s",
						stream, i, l0[i], level, l1[i])
				}
			}
		}
	}
}

func TestPublicOptAPI(t *testing.T) {
	m, err := hilti.Parse(`
module M

int<64> double (int<64> x) {
    local int<64> r
    r = int.mul x 2
    return.result r
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := hilti.LinkWith(hilti.Config{OptLevel: hilti.O1}, m)
	if err != nil {
		t.Fatal(err)
	}
	dis := hilti.Disasm(prog.Fn("M::double"))
	if !strings.Contains(dis, "func M::double") || !strings.Contains(dis, "int.mul") {
		t.Fatalf("Disasm output unexpected:\n%s", dis)
	}
	ex, err := hilti.NewExec(prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ex.Call("M::double", hilti.Int(21))
	if err != nil || v.AsInt() != 42 {
		t.Fatalf("got %v %v", v, err)
	}

	// O2 installs tier-2 code eagerly; DisasmTier shows the specialized view
	// while the tier-1 Disasm stays intact, and results are unchanged.
	prog2, err := hilti.LinkWith(hilti.Config{OptLevel: hilti.O2}, m)
	if err != nil {
		t.Fatal(err)
	}
	fn2 := prog2.Fn("M::double")
	if !fn2.TierActive() {
		t.Fatal("O2 link did not activate tier-2")
	}
	if dis := fn2.DisasmTier(); !strings.Contains(dis, "unboxed:") {
		t.Fatalf("tier-2 disassembly missing slot header:\n%s", dis)
	}
	ex2, err := hilti.NewExec(prog2)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ex2.Call("M::double", hilti.Int(21)); err != nil || v.AsInt() != 42 {
		t.Fatalf("O2: got %v %v", v, err)
	}
}
