// Engine checkpoint/restore: serializes everything the engine holds as
// first-class state — script globals (both backends), per-connection
// analyzer state, reassembly buffers, virtual clocks, and the log lines
// produced so far — into the rt/snapshot format, and rebuilds a live
// engine from it. This is the paper's transparent-state-management
// argument made concrete: because analysis state lives in typed runtime
// values rather than ad-hoc heap structures, the host can suspend and
// resume analysis without the analyzers' cooperation.
//
// Limitation: in-flight BinPAC++ parse state is held in suspended fibers
// (vm.Resumable), which have no serializable form; Checkpoint returns an
// error if any connection is mid-parse in the binpac backend. The
// standard parsers keep their state in plain buffers and round-trip
// fully. Fault diagnostics (the Recorder) are intentionally not carried
// across a restore.

package bro

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"

	"hilti/internal/analyzers"
	"hilti/internal/pkt/flow"
	"hilti/internal/pkt/reassembly"
	"hilti/internal/rt/snapshot"
	"hilti/internal/rt/timer"
	"hilti/internal/rt/values"
)

// Val codec tags (engine-interpreter values).
const (
	valNil = iota
	valBool
	valCount
	valInt
	valDouble
	valString
	valAddr
	valSubnet
	valPort
	valTime
	valInterval
	valEnum
	valRecord
	valTable
	valVector
	valFunc
)

const valMaxDepth = 64

// conn flag bits.
const (
	cfTCP = 1 << iota
	cfStarted
	cfOrigSYN
	cfRespSYN
	cfRec
	cfStd
)

// Checkpoint serializes the engine's full analysis state to w. The engine
// must be between packets (the single-threaded engine always is; the
// pipeline quiesces each shard by scheduling the checkpoint as a job on
// the shard's own virtual thread).
func (e *Engine) Checkpoint(w io.Writer) error {
	for _, c := range e.conns {
		if c.inFlightParse() {
			return fmt.Errorf("bro: cannot checkpoint connection %s: in-flight binpac parse state", c.uid)
		}
	}
	enc := snapshot.NewEncoder(w)
	enc.String(e.cfg.Parser)
	enc.String(e.cfg.ScriptExec)
	enc.I64(e.now)
	enc.I64(e.nextCtx)
	enc.U64(e.packets.Load())
	enc.U64(e.events.Load())
	enc.U64(e.parseErrs.Load())
	enc.U64(e.budgetBlown.Load())
	enc.U64(e.quarDropped.Load())
	// Flow ledger and log-line count: checkpointed so metrics stay
	// monotonic (no reset, no double count) across a crash-only restore.
	enc.U64(e.flowsOpened.Load())
	enc.U64(e.flowsClosed.Load())
	enc.U64(e.Logs.Written())

	enc.U32(uint32(len(e.quarantined)))
	qvids := make([]uint64, 0, len(e.quarantined))
	for vid := range e.quarantined {
		qvids = append(qvids, vid)
	}
	sort.Slice(qvids, func(i, j int) bool { return qvids[i] < qvids[j] })
	for _, vid := range qvids {
		enc.U64(vid)
		enc.U64(e.quarantined[vid])
	}

	// Interpreter globals, sorted for determinism.
	names := make([]string, 0, len(e.interp.Globals))
	for n := range e.interp.Globals {
		names = append(names, n)
	}
	sort.Strings(names)
	enc.U32(uint32(len(names)))
	for _, n := range names {
		enc.String(n)
		encodeVal(enc, e.interp.Globals[n], 0)
	}

	// Log lines accumulated so far (so a restored run's final output is
	// the uninterrupted run's output).
	snames := make([]string, 0, len(e.Logs.streams))
	for n := range e.Logs.streams {
		snames = append(snames, n)
	}
	sort.Strings(snames)
	enc.U32(uint32(len(snames)))
	for _, n := range snames {
		st := e.Logs.streams[n]
		enc.String(n)
		enc.U32(uint32(len(st.lines)))
		for _, l := range st.lines {
			enc.String(l)
		}
	}

	encodeExec(enc, e.sexec != nil, func() (int64, []values.Value) {
		return int64(e.sexec.GlobalTM.Now()), e.sexec.Globals
	})
	encodeExec(enc, e.pexec != nil, func() (int64, []values.Value) {
		return int64(e.pexec.GlobalTM.Now()), e.pexec.Globals
	})

	// Connections, sorted by creation order for determinism.
	open := make([]*conn, 0, len(e.conns))
	for _, c := range e.conns {
		open = append(open, c)
	}
	sort.Slice(open, func(i, j int) bool { return open[i].ctx < open[j].ctx })
	enc.U32(uint32(len(open)))
	for _, c := range open {
		encodeConn(enc, c)
	}
	return enc.Err()
}

// inFlightParse reports whether the connection holds suspended BinPAC++
// fiber state, which has no serializable form. Both the full checkpoint
// and the WAL delta codec refuse to serialize such a connection.
func (c *conn) inFlightParse() bool {
	return c.origRope != nil || c.respRope != nil || c.origRun != nil || c.respRun != nil
}

// encodeConn writes one connection's complete analyzer state: flow key,
// identifiers, TCP flags, reassembly streams, and parser state. The WAL
// delta codec reuses it verbatim — a dirty connection re-encodes whole,
// keeping a delta record's cost proportional to per-flow state.
func encodeConn(enc *snapshot.Encoder, c *conn) {
	encodeKey(enc, c.key)
	enc.String(c.uid)
	enc.I64(c.ctx)
	var flags byte
	if c.isTCP {
		flags |= cfTCP
	}
	if c.started {
		flags |= cfStarted
	}
	if c.origSYN {
		flags |= cfOrigSYN
	}
	if c.respSYN {
		flags |= cfRespSYN
	}
	if c.rec != nil {
		flags |= cfRec
	}
	if c.std != nil {
		flags |= cfStd
	}
	enc.U8(flags)
	if c.rec != nil {
		start, _ := c.rec.Get("start_time").(TimeVal)
		enc.I64(int64(start))
	}
	encodeStream(enc, &c.origStream)
	encodeStream(enc, &c.respStream)
	if c.std != nil {
		orig, resp, methods := c.std.SnapshotState()
		encodeHTTPDir(enc, orig)
		encodeHTTPDir(enc, resp)
		encodeStrings(enc, methods)
	}
	encodeStrings(enc, c.methods)
}

// decodeConn rebuilds one connection from encodeConn's layout, attaching
// analyzers and reassembly budget from e. It does not register the
// connection in the engine's tables — the caller does, which lets the
// delta-apply path first release a replaced connection's state.
func decodeConn(dec *snapshot.Decoder, e *Engine) (*conn, error) {
	key := decodeKey(dec)
	uid := dec.String()
	ctx := dec.I64()
	flags := dec.U8()
	var start int64
	if flags&cfRec != 0 {
		start = dec.I64()
	}
	origSt := decodeStream(dec)
	respSt := decodeStream(dec)
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	c := &conn{
		key:     key,
		uid:     uid,
		ctx:     ctx,
		isTCP:   flags&cfTCP != 0,
		started: flags&cfStarted != 0,
		origSYN: flags&cfOrigSYN != 0,
		respSYN: flags&cfRespSYN != 0,
	}
	if c.isTCP && e.reasm != nil {
		c.origStream.Budget = e.reasm
		c.respStream.Budget = e.reasm
	}
	c.origStream.RestoreState(origSt)
	c.respStream.RestoreState(respSt)
	if flags&cfRec != 0 {
		k := c.key
		c.rec = e.interp.MakeConn(c.uid, k.SrcAddr(), k.DstAddr(),
			PortVal{Num: k.SrcPort, Proto: k.Proto},
			PortVal{Num: k.DstPort, Proto: k.Proto}, start)
	}
	if c.isTCP {
		e.attachTCPAnalyzer(c)
	}
	if flags&cfStd != 0 {
		orig := decodeHTTPDir(dec)
		resp := decodeHTTPDir(dec)
		methods := decodeStrings(dec)
		if dec.Err() != nil {
			return nil, dec.Err()
		}
		if c.std == nil {
			return nil, fmt.Errorf("bro: checkpoint has parser state for %s but no analyzer attached", uid)
		}
		c.std.RestoreState(orig, resp, methods)
	}
	c.methods = decodeStrings(dec)
	if err := dec.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// RestoreEngine builds a fresh engine for cfg and rebuilds the analysis
// state checkpointed by Checkpoint. The configuration's parser and script
// backends must match the checkpoint's.
func RestoreEngine(cfg Config, r io.Reader) (*Engine, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	dec := snapshot.NewDecoder(data)
	if p := dec.String(); dec.Err() == nil && p != cfg.Parser {
		return nil, fmt.Errorf("bro: checkpoint parser %q does not match config %q", p, cfg.Parser)
	}
	if s := dec.String(); dec.Err() == nil && s != cfg.ScriptExec {
		return nil, fmt.Errorf("bro: checkpoint script backend %q does not match config %q", s, cfg.ScriptExec)
	}
	e.now = dec.I64()
	e.nextCtx = dec.I64()
	e.packets.Store(dec.U64())
	e.events.Store(dec.U64())
	e.parseErrs.Store(dec.U64())
	e.budgetBlown.Store(dec.U64())
	e.quarDropped.Store(dec.U64())
	e.flowsOpened.Store(dec.U64())
	e.flowsClosed.Store(dec.U64())
	e.Logs.written.Store(dec.U64())

	nq := dec.Len(16)
	for i := 0; i < nq && dec.Err() == nil; i++ {
		vid := dec.U64()
		e.quarantined[vid] = dec.U64()
	}

	ng := dec.Len(5)
	for i := 0; i < ng && dec.Err() == nil; i++ {
		name := dec.String()
		v := decodeVal(dec, e.interp, 0)
		if dec.Err() != nil {
			break
		}
		if _, ok := e.interp.Globals[name]; ok || name != "" {
			// Function globals decode to nil when the declaration is gone;
			// keep the freshly initialized value in that case.
			if v != nil || !isFuncGlobal(e.interp.Globals[name]) {
				e.interp.Globals[name] = v
			}
		}
	}

	ns := dec.Len(5)
	for i := 0; i < ns && dec.Err() == nil; i++ {
		name := dec.String()
		nl := dec.Len(4)
		st, ok := e.Logs.streams[name]
		if !ok {
			st = &logStream{name: name}
			e.Logs.streams[name] = st
		}
		st.lines = nil
		for j := 0; j < nl && dec.Err() == nil; j++ {
			st.lines = append(st.lines, dec.String())
		}
	}

	if err := decodeExec(dec, data, e.sexec != nil, func() (*timer.Mgr, []values.Value) {
		return e.sexec.GlobalTM, e.sexec.Globals
	}); err != nil {
		return nil, err
	}
	if err := decodeExec(dec, data, e.pexec != nil, func() (*timer.Mgr, []values.Value) {
		return e.pexec.GlobalTM, e.pexec.Globals
	}); err != nil {
		return nil, err
	}

	nc := dec.Len(keyBytes + 10)
	for i := 0; i < nc && dec.Err() == nil; i++ {
		c, err := decodeConn(dec, e)
		if err != nil {
			return nil, err
		}
		ck, _ := c.key.Canonical()
		e.conns[ck] = c
		e.ctxs[c.ctx] = c
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

func isFuncGlobal(v Val) bool {
	_, ok := v.(*FuncVal)
	return ok
}

// --- compiled-exec globals -----------------------------------------------------

// encodeExec writes one VM executor's restorable state: the virtual clock
// and the global values. Each global is wrapped in its own sub-snapshot so
// unserializable globals (function refs, channels) degrade gracefully: the
// restore keeps the freshly initialized value for those.
func encodeExec(enc *snapshot.Encoder, present bool, get func() (int64, []values.Value)) {
	enc.Bool(present)
	if !present {
		return
	}
	now, globals := get()
	enc.I64(now)
	enc.U32(uint32(len(globals)))
	for _, g := range globals {
		var buf bytes.Buffer
		sub := snapshot.NewEncoder(&buf)
		sub.Value(g)
		if sub.Err() != nil {
			enc.Bool(false)
			continue
		}
		enc.Bool(true)
		enc.Bytes(buf.Bytes())
	}
}

func decodeExec(dec *snapshot.Decoder, _ []byte, present bool, get func() (*timer.Mgr, []values.Value)) error {
	had := dec.Bool()
	if dec.Err() != nil {
		return dec.Err()
	}
	if had != present {
		return fmt.Errorf("bro: checkpoint/config executor mismatch")
	}
	if !present {
		return nil
	}
	mgr, globals := get()
	mgr.SetNow(timer.Time(dec.I64()))
	n := dec.Len(1)
	if dec.Err() != nil {
		return dec.Err()
	}
	if n != len(globals) {
		return fmt.Errorf("bro: checkpoint has %d VM globals, program has %d", n, len(globals))
	}
	for i := 0; i < n; i++ {
		if !dec.Bool() {
			continue // unserializable at checkpoint time; keep fresh init
		}
		blob := dec.Bytes()
		if dec.Err() != nil {
			return dec.Err()
		}
		sub := snapshot.NewDecoder(blob, snapshot.WithTimerMgr(mgr))
		v := sub.Value()
		if err := sub.Err(); err != nil {
			return err
		}
		globals[i] = v
	}
	return dec.Err()
}

// --- leaf codecs ---------------------------------------------------------------

const keyBytes = 16 + 16 + 2 + 2 + 1

func encodeKey(enc *snapshot.Encoder, k flow.Key) {
	var raw [keyBytes]byte
	copy(raw[0:16], k.SrcIP[:])
	copy(raw[16:32], k.DstIP[:])
	raw[32] = byte(k.SrcPort >> 8)
	raw[33] = byte(k.SrcPort)
	raw[34] = byte(k.DstPort >> 8)
	raw[35] = byte(k.DstPort)
	raw[36] = k.Proto
	enc.Bytes(raw[:])
}

func decodeKey(dec *snapshot.Decoder) flow.Key {
	raw := dec.Bytes()
	var k flow.Key
	if dec.Err() != nil {
		return k
	}
	if len(raw) != keyBytes {
		dec.Fail("bro: flow key is %d bytes, want %d", len(raw), keyBytes)
		return k
	}
	copy(k.SrcIP[:], raw[0:16])
	copy(k.DstIP[:], raw[16:32])
	k.SrcPort = uint16(raw[32])<<8 | uint16(raw[33])
	k.DstPort = uint16(raw[34])<<8 | uint16(raw[35])
	k.Proto = raw[36]
	return k
}

func encodeStream(enc *snapshot.Encoder, s *reassembly.Stream) {
	st := s.SnapshotState()
	enc.Bool(st.Initialized)
	enc.U32(st.ISN)
	enc.U64(st.Next)
	enc.U64(st.FinRel)
	enc.Bool(st.FinSeen)
	enc.Bool(st.Closed)
	enc.U32(uint32(len(st.Pending)))
	for _, seg := range st.Pending {
		enc.U64(seg.Rel)
		enc.Bytes(seg.Data)
	}
}

func decodeStream(dec *snapshot.Decoder) reassembly.StreamState {
	var st reassembly.StreamState
	st.Initialized = dec.Bool()
	st.ISN = dec.U32()
	st.Next = dec.U64()
	st.FinRel = dec.U64()
	st.FinSeen = dec.Bool()
	st.Closed = dec.Bool()
	n := dec.Len(12)
	for i := 0; i < n && dec.Err() == nil; i++ {
		rel := dec.U64()
		data := dec.Bytes()
		st.Pending = append(st.Pending, reassembly.SegmentState{Rel: rel, Data: data})
	}
	return st
}

func encodeHTTPDir(enc *snapshot.Encoder, st analyzers.HTTPDirState) {
	enc.Bytes(st.Buf)
	enc.U8(byte(st.State))
	enc.I64(int64(st.Remain))
	enc.String(st.Ctype)
	enc.Bytes(st.Body)
	enc.Bool(st.HasBody)
	enc.Bool(st.IsHead)
	enc.I64(int64(st.Status))
}

func decodeHTTPDir(dec *snapshot.Decoder) analyzers.HTTPDirState {
	var st analyzers.HTTPDirState
	st.Buf = dec.Bytes()
	st.State = int(dec.U8())
	st.Remain = int(dec.I64())
	st.Ctype = dec.String()
	st.Body = dec.Bytes()
	st.HasBody = dec.Bool()
	st.IsHead = dec.Bool()
	st.Status = int(dec.I64())
	return st
}

func encodeStrings(enc *snapshot.Encoder, ss []string) {
	enc.U32(uint32(len(ss)))
	for _, s := range ss {
		enc.String(s)
	}
}

func decodeStrings(dec *snapshot.Decoder) []string {
	n := dec.Len(4)
	var out []string
	for i := 0; i < n && dec.Err() == nil; i++ {
		out = append(out, dec.String())
	}
	return out
}

// --- interpreter Val codec -----------------------------------------------------

func encodeVal(enc *snapshot.Encoder, v Val, depth int) {
	if depth > valMaxDepth {
		enc.Fail("bro: script value nesting exceeds %d", valMaxDepth)
		return
	}
	switch x := v.(type) {
	case nil:
		enc.U8(valNil)
	case BoolVal:
		enc.U8(valBool)
		enc.Bool(bool(x))
	case CountVal:
		enc.U8(valCount)
		enc.U64(uint64(x))
	case IntVal:
		enc.U8(valInt)
		enc.I64(int64(x))
	case DoubleVal:
		enc.U8(valDouble)
		enc.U64(doubleBits(float64(x)))
	case StringVal:
		enc.U8(valString)
		enc.String(string(x))
	case AddrVal:
		enc.U8(valAddr)
		enc.Value(x.A)
	case SubnetVal:
		enc.U8(valSubnet)
		enc.Value(x.N)
	case PortVal:
		enc.U8(valPort)
		enc.U16(x.Num)
		enc.U8(x.Proto)
	case TimeVal:
		enc.U8(valTime)
		enc.I64(int64(x))
	case IntervalVal:
		enc.U8(valInterval)
		enc.I64(int64(x))
	case EnumVal:
		enc.U8(valEnum)
		enc.String(x.Name)
	case *RecordVal:
		enc.U8(valRecord)
		enc.String(x.T.Name)
		if len(x.T.Fields) > 0xFFFF {
			enc.Fail("bro: record %s has too many fields", x.T.Name)
			return
		}
		enc.U16(uint16(len(x.T.Fields)))
		for _, f := range x.T.Fields {
			enc.String(f)
		}
		for _, f := range x.F {
			encodeVal(enc, f, depth+1)
		}
	case *TableVal:
		enc.U8(valTable)
		enc.Bool(x.IsSet)
		enc.I64(x.ExpireInterval)
		enc.Bool(x.ExpireOnRead)
		enc.U32(uint32(x.Len()))
		for _, e := range x.order {
			if e.deleted {
				continue
			}
			if len(e.key) > 0xFFFF {
				enc.Fail("bro: table key too wide")
				return
			}
			enc.U16(uint16(len(e.key)))
			for _, k := range e.key {
				encodeVal(enc, k, depth+1)
			}
			encodeVal(enc, e.yield, depth+1)
			enc.I64(e.touched)
		}
	case *VectorVal:
		enc.U8(valVector)
		enc.U32(uint32(len(x.Elems)))
		for _, el := range x.Elems {
			encodeVal(enc, el, depth+1)
		}
	case *FuncVal:
		enc.U8(valFunc)
		enc.String(x.Name)
	default:
		enc.Fail("bro: cannot checkpoint script value of type %s", v.TypeName())
	}
}

func decodeVal(dec *snapshot.Decoder, ip *Interp, depth int) Val {
	if dec.Err() != nil {
		return nil
	}
	if depth > valMaxDepth {
		dec.Fail("bro: script value nesting exceeds %d", valMaxDepth)
		return nil
	}
	switch tag := dec.U8(); tag {
	case valNil:
		return nil
	case valBool:
		return BoolVal(dec.Bool())
	case valCount:
		return CountVal(dec.U64())
	case valInt:
		return IntVal(dec.I64())
	case valDouble:
		return DoubleVal(doubleFromBits(dec.U64()))
	case valString:
		return StringVal(dec.String())
	case valAddr:
		return AddrVal{A: dec.Value()}
	case valSubnet:
		return SubnetVal{N: dec.Value()}
	case valPort:
		num := dec.U16()
		return PortVal{Num: num, Proto: dec.U8()}
	case valTime:
		return TimeVal(dec.I64())
	case valInterval:
		return IntervalVal(dec.I64())
	case valEnum:
		return EnumVal{Name: dec.String()}
	case valRecord:
		name := dec.String()
		nf := int(dec.U16())
		if dec.Err() != nil || nf > dec.Remaining() {
			dec.Fail("bro: implausible record field count %d", nf)
			return nil
		}
		fields := make([]string, nf)
		for i := range fields {
			fields[i] = dec.String()
		}
		rt := ip.Records[name]
		if rt == nil || len(rt.Fields) != nf {
			rt = NewRecordType(name, fields...)
		}
		rec := NewRecord(rt)
		for i := 0; i < nf; i++ {
			rec.F[i] = decodeVal(dec, ip, depth+1)
		}
		return rec
	case valTable:
		isSet := dec.Bool()
		t := NewTable(isSet)
		t.ExpireInterval = dec.I64()
		t.ExpireOnRead = dec.Bool()
		n := dec.Len(11) // u16 key len + at least one tag + yield tag + i64
		for i := 0; i < n && dec.Err() == nil; i++ {
			nk := int(dec.U16())
			if dec.Err() != nil || nk > dec.Remaining() {
				dec.Fail("bro: implausible table key width %d", nk)
				return nil
			}
			key := make([]Val, nk)
			for j := range key {
				key[j] = decodeVal(dec, ip, depth+1)
			}
			yield := decodeVal(dec, ip, depth+1)
			touched := dec.I64()
			if dec.Err() != nil {
				break
			}
			ks := KeyString(key)
			en := &tableEntry{key: key, keyStr: ks, yield: yield, touched: touched}
			t.entries[ks] = en
			t.order = append(t.order, en)
		}
		return t
	case valVector:
		n := dec.Len(1)
		vec := &VectorVal{}
		for i := 0; i < n && dec.Err() == nil; i++ {
			vec.Elems = append(vec.Elems, decodeVal(dec, ip, depth+1))
		}
		return vec
	case valFunc:
		name := dec.String()
		if fd, ok := ip.Funcs[name]; ok {
			return &FuncVal{Name: name, Decl: fd}
		}
		return nil
	default:
		dec.Fail("bro: unknown script value tag %d", tag)
		return nil
	}
}

func doubleBits(f float64) uint64     { return math.Float64bits(f) }
func doubleFromBits(b uint64) float64 { return math.Float64frombits(b) }
