package bro

import (
	"bytes"
	"testing"

	"hilti/internal/hilti/vm"
	"hilti/internal/rt/values"
)

// compileExec compiles scripts and returns a ready Exec with host fns.
func compileExec(t testing.TB, src string) (*vm.Exec, *Glue, *bytes.Buffer, func() int64) {
	t.Helper()
	s, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := CompileScripts(s)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := vm.Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := vm.NewExec(prog)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	ex.Out = &out
	now := int64(0)
	glue := NewGlue(nil)
	RegisterHostFns(ex, func() int64 { return now }, nil, glue)
	if _, err := ex.Call("BroScripts::__init_globals"); err != nil {
		t.Fatal(err)
	}
	return ex, glue, &out, func() int64 { return now }
}

func TestCompiledFigure8Track(t *testing.T) {
	ex, glue, out, _ := compileExec(t, trackBro)
	ip := NewInterp() // for MakeConn record structure
	for _, addr := range []string{"208.80.152.118", "208.80.152.2", "208.80.152.3", "208.80.152.2"} {
		c := ip.MakeConn("C1", values.MustParseAddr("10.0.0.1"), values.MustParseAddr(addr),
			PortVal{Num: 1024, Proto: values.ProtoTCP}, PortVal{Num: 80, Proto: values.ProtoTCP}, 0)
		if err := ex.RunHook("connection_established", glue.ToHilti(c)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ex.RunHook("bro_done"); err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 8(c) output.
	want := "208.80.152.118\n208.80.152.2\n208.80.152.3\n"
	if out.String() != want {
		t.Fatalf("output %q, want %q", out.String(), want)
	}
}

func TestCompiledFib(t *testing.T) {
	ex, _, _, _ := compileExec(t, fibBro)
	v, err := ex.Call("fib", values.Int(15))
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 610 {
		t.Fatalf("fib(15) = %v", v)
	}
}

// TestCompiledMatchesInterp runs the same script through both execution
// engines and compares the printed output byte for byte — the Table 3
// methodology in miniature.
func TestCompiledMatchesInterp(t *testing.T) {
	src := `
type Stat: record {
    n: count;
    last: time;
};

global stats: table[string] of Stat;
global total: count = 0;

event observe(who: string, when: time) {
    if ( who !in stats )
        stats[who] = Stat($n=0, $last=when);
    local s = stats[who];
    s$n = s$n + 1;
    s$last = when;
    total += 1;
}

event report() {
    print "total", total;
    for ( who in stats )
        print fmt("%s -> %s", who, stats[who]$n);
    if ( total > 3 && "alice" in stats )
        print "alice seen";
}
`
	type step struct {
		who  string
		when int64
	}
	steps := []step{
		{"alice", 1e9}, {"bob", 2e9}, {"alice", 3e9}, {"carol", 4e9}, {"alice", 5e9},
	}

	// Interpreter run.
	s, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	ip := NewInterp()
	if err := ip.Load(s); err != nil {
		t.Fatal(err)
	}
	var iout bytes.Buffer
	ip.Out = &iout
	for _, st := range steps {
		if err := ip.Dispatch("observe", StringVal(st.who), TimeVal(st.when)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ip.Dispatch("report"); err != nil {
		t.Fatal(err)
	}

	// Compiled run.
	ex, glue, cout, _ := compileExec(t, src)
	for _, st := range steps {
		err := ex.RunHook("observe", glue.ToHilti(StringVal(st.who)), glue.ToHilti(TimeVal(st.when)))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := ex.RunHook("report"); err != nil {
		t.Fatal(err)
	}

	if iout.String() != cout.String() {
		t.Fatalf("outputs differ:\ninterp:\n%s\ncompiled:\n%s", iout.String(), cout.String())
	}
	if iout.Len() == 0 {
		t.Fatal("no output produced")
	}
}

func TestCompiledVectorOps(t *testing.T) {
	src := `
global v: vector of count;

event go() {
    v[|v|] = 5;
    v[|v|] = 7;
    local sum = 0;
    for ( i in v )
        sum += v[i];
    print sum, |v|;
}
`
	ex, _, out, _ := compileExec(t, src)
	if err := ex.RunHook("go"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "12, 2\n" {
		t.Fatalf("got %q", out.String())
	}
}

func TestCompiledCompositeKeysAndDelete(t *testing.T) {
	src := `
global pending: table[string, count] of string;

event go() {
    pending["C1", 7] = "q";
    if ( ["C1", 7] in pending )
        print pending["C1", 7];
    delete pending["C1", 7];
    if ( ["C1", 7] !in pending )
        print "gone";
}
`
	ex, _, out, _ := compileExec(t, src)
	if err := ex.RunHook("go"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "q\ngone\n" {
		t.Fatalf("got %q", out.String())
	}
}

func TestCompiledExpiration(t *testing.T) {
	src := `
global seen: set[string] &read_expire=10 secs;

event touch(k: string) {
    add seen[k];
}

event check(k: string) {
    if ( k in seen )
        print "present";
    else
        print "absent";
}
`
	s, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := CompileScripts(s)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := vm.Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := vm.NewExec(prog)
	var out bytes.Buffer
	ex.Out = &out
	glue := NewGlue(nil)
	RegisterHostFns(ex, func() int64 { return 0 }, nil, glue)
	if _, err := ex.Call("BroScripts::__init_globals"); err != nil {
		t.Fatal(err)
	}
	ex.GlobalTM.Advance(0)
	ex.RunHook("touch", values.String("x"))
	ex.GlobalTM.Advance(5e9)
	ex.RunHook("check", values.String("x")) // present, refreshes
	ex.GlobalTM.Advance(20e9)
	ex.RunHook("check", values.String("x")) // expired (idle 15s > 10s)
	if out.String() != "present\nabsent\n" {
		t.Fatalf("got %q", out.String())
	}
}

func BenchmarkFibCompiled(b *testing.B) {
	ex, _, _, _ := compileExec(b, fibBro)
	fn := ex.Prog.Fn("BroScripts::fib")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.CallFn(fn, values.Int(20)); err != nil {
			b.Fatal(err)
		}
	}
}
