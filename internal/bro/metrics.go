// Engine observability: one keyed collector per engine emits the engine's
// counters at scrape time, plus bridges for the component profilers, any
// HILTI-program profilers, and the script/parser VMs' execution counters.
//
// Everything here reads state that is already atomic (metrics.Counter
// fields, fault.Recorder's count, profiler mutexes), so a scrape can run
// while the engine's worker goroutine processes packets. The packet path
// itself gains nothing beyond the atomic increments the counters already
// cost.

package bro

import (
	"hilti/internal/rt/container"
	"hilti/internal/rt/metrics"
	"hilti/internal/rt/timer"
)

// registerMetrics wires the engine into cfg.Metrics (no-op when unset).
// Called from NewEngine — which RestoreEngine also goes through, so a
// restored engine replaces its predecessor's registration (same key) and
// its checkpoint-seeded counters keep the series continuous.
func (e *Engine) registerMetrics() {
	reg := e.cfg.Metrics
	if reg == nil {
		return
	}
	key := e.cfg.MetricsKey
	if key == "" {
		key = "0"
	}
	reg.RegisterCollector("bro/engine/"+key, func(emit func(string, float64)) {
		opened := e.flowsOpened.Load()
		closed := e.flowsClosed.Load()
		emit("bro_packets_total", float64(e.packets.Load()))
		emit("bro_events_total", float64(e.events.Load()))
		emit("bro_parse_errors_total", float64(e.parseErrs.Load()))
		emit("bro_flows_opened_total", float64(opened))
		emit("bro_flows_closed_total", float64(closed))
		emit("bro_flows_active", float64(opened-closed))
		emit("bro_faults_total", float64(e.faults.Count()))
		emit("bro_budget_blown_total", float64(e.budgetBlown.Load()))
		emit("bro_quarantine_dropped_total", float64(e.quarDropped.Load()))
		emit("bro_log_lines_total", float64(e.Logs.Written()))
	})
	// Component profilers (parsing/script/glue — the Figure 9/10 split)
	// and HILTI-program profilers from the script and parser VMs.
	e.profs.PublishTo(reg, "bro/profs/"+key)
	if e.sexec != nil {
		e.sexec.PublishTo(reg, "bro/vm/script/"+key, "vm", "script")
		e.sexec.Profs.PublishTo(reg, "bro/hprofs/script/"+key)
		e.sexec.GlobalTM.Met = e.timerMetrics(reg)
	}
	if e.pexec != nil {
		e.pexec.PublishTo(reg, "bro/vm/parse/"+key, "vm", "parse")
		e.pexec.Profs.PublishTo(reg, "bro/hprofs/parse/"+key)
		e.pexec.GlobalTM.Met = e.timerMetrics(reg)
	}
	// Process-global series: name-keyed registration makes repeated calls
	// (one per engine) idempotent rather than additive.
	reg.GaugeFunc("hilti_container_expirations_total", func() float64 {
		return float64(container.Expirations())
	})
	if e.reasm != nil {
		budget := e.reasm
		reg.GaugeFunc("bro_reassembly_buffered_bytes", func() float64 {
			return float64(budget.Used())
		})
		reg.GaugeFunc("bro_reassembly_forced_gaps_total", func() float64 {
			return float64(budget.Forced())
		})
	}
}

// timerMetrics returns the shared instrument set for engine-side timer
// managers (HILTI global timer wheels driving container expiration).
func (e *Engine) timerMetrics(reg *metrics.Registry) *timer.MgrMetrics {
	return &timer.MgrMetrics{
		Scheduled: reg.Counter("hilti_timers_scheduled_total"),
		Fired:     reg.Counter("hilti_timers_fired_total"),
		Expired:   reg.Counter("hilti_timers_expired_total"),
	}
}

// FlowCounts reports the engine's flow ledger: connections opened, closed
// (including zapped), and currently active. opened == closed + active at
// every between-packets point — the invariant hilti-bench -exp observe
// asserts.
func (e *Engine) FlowCounts() (opened, closed uint64, active int) {
	return e.flowsOpened.Load(), e.flowsClosed.Load(), len(e.conns)
}
