// The evaluation scripts — analogs of Bro's default HTTP and DNS analysis
// scripts the paper runs in §6.5: per-session state tracking, correlation
// of requests with replies, and extensive protocol logs. TrackScript is
// Figure 8(a); FibScript is the §6.5 baseline benchmark.

package bro

// HTTPScript correlates requests and replies per connection and writes
// http.log; pairs with FilesScript for message bodies.
const HTTPScript = `
# HTTP analysis: request/reply correlation and http.log.

type HTTPInfo: record {
    ts: time;
    uid: string;
    orig_h: addr;
    orig_p: port;
    resp_h: addr;
    resp_p: port;
    method: string;
    host: string;
    uri: string;
    version: string;
    status_code: count;
    reason: string;
    resp_mime: string;
    resp_len: count;
};

# Outstanding requests per connection, in order.
global http_pending: table[string] of vector of HTTPInfo &read_expire=10 min;
# Index of the next request awaiting its reply.
global http_resp_idx: table[string] of count &read_expire=10 min;
# The reply currently being assembled per connection.
global http_current: table[string] of HTTPInfo &read_expire=10 min;

event http_request(c: connection, method: string, uri: string, version: string) {
    local info = HTTPInfo($ts=network_time(), $uid=c$uid,
                          $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
                          $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
                          $method=method, $host="", $uri=uri, $version=version,
                          $status_code=0, $reason="", $resp_mime="", $resp_len=0);
    if ( c$uid !in http_pending ) {
        http_pending[c$uid] = vector();
        http_resp_idx[c$uid] = 0;
    }
    local q = http_pending[c$uid];
    q[|q|] = info;
}

event http_header(c: connection, is_orig: bool, name: string, value: string) {
    if ( is_orig && to_lower(name) == "host" ) {
        if ( c$uid in http_pending ) {
            local q = http_pending[c$uid];
            if ( |q| > 0 )
                q[|q| - 1]$host = value;
        }
    }
}

event http_reply(c: connection, version: string, code: count, reason: string) {
    local info = HTTPInfo($ts=network_time(), $uid=c$uid,
                          $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
                          $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
                          $method="", $host="", $uri="", $version=version,
                          $status_code=code, $reason=reason, $resp_mime="", $resp_len=0);
    if ( c$uid in http_pending ) {
        local q = http_pending[c$uid];
        local idx = http_resp_idx[c$uid];
        if ( idx < |q| ) {
            local req = q[idx];
            info$ts = req$ts;
            info$method = req$method;
            info$host = req$host;
            info$uri = req$uri;
            http_resp_idx[c$uid] = idx + 1;
        }
    }
    http_current[c$uid] = info;
}

event http_body(c: connection, is_orig: bool, mime: string, hash: string, n: count) {
    if ( !is_orig && c$uid in http_current ) {
        local info = http_current[c$uid];
        info$resp_mime = mime;
        info$resp_len = n;
    }
}

event http_message_done(c: connection, is_orig: bool) {
    if ( !is_orig && c$uid in http_current ) {
        local info = http_current[c$uid];
        Log::write("http", [$ts=info$ts, $uid=info$uid,
                            $orig_h=info$orig_h, $orig_p=info$orig_p,
                            $resp_h=info$resp_h, $resp_p=info$resp_p,
                            $method=info$method, $host=info$host, $uri=info$uri,
                            $version=info$version, $status_code=info$status_code,
                            $reason=info$reason, $resp_mime=info$resp_mime,
                            $resp_len=info$resp_len]);
        delete http_current[c$uid];
    }
}
`

// FilesScript writes files.log from message bodies (the files-framework
// role: MIME type, SHA1 hash, size).
const FilesScript = `
# File analysis: one files.log entry per message body.

event http_body(c: connection, is_orig: bool, mime: string, hash: string, n: count) {
    Log::write("files", [$ts=network_time(), $uid=c$uid,
                         $mime=mime, $sha1=hash, $len=n]);
}
`

// DNSScript correlates queries with responses and writes dns.log.
const DNSScript = `
# DNS analysis: query/response correlation and dns.log.

type DNSReq: record {
    ts: time;
    query: string;
    qtype: count;
};

global dns_pending: table[string, count] of DNSReq &create_expire=2 min;

function qtype_name(t: count): string {
    if ( t == 1 ) return "A";
    if ( t == 2 ) return "NS";
    if ( t == 5 ) return "CNAME";
    if ( t == 6 ) return "SOA";
    if ( t == 12 ) return "PTR";
    if ( t == 15 ) return "MX";
    if ( t == 16 ) return "TXT";
    if ( t == 28 ) return "AAAA";
    return fmt("TYPE%s", t);
}

function rcode_name(r: count): string {
    if ( r == 0 ) return "NOERROR";
    if ( r == 1 ) return "FORMERR";
    if ( r == 2 ) return "SERVFAIL";
    if ( r == 3 ) return "NXDOMAIN";
    if ( r == 4 ) return "NOTIMP";
    if ( r == 5 ) return "REFUSED";
    return fmt("RCODE%s", r);
}

event dns_request(c: connection, trans_id: count, query: string, qtype: count) {
    dns_pending[c$uid, trans_id] = DNSReq($ts=network_time(), $query=query, $qtype=qtype);
}

event dns_response(c: connection, trans_id: count, rcode: count,
                   answers: vector of string, ttls: vector of interval) {
    local ts = network_time();
    local query = "";
    local qtype = 0;
    if ( [c$uid, trans_id] in dns_pending ) {
        local req = dns_pending[c$uid, trans_id];
        ts = req$ts;
        query = req$query;
        qtype = req$qtype;
        delete dns_pending[c$uid, trans_id];
    }
    local ans = "";
    for ( i in answers ) {
        if ( ans == "" )
            ans = answers[i];
        else
            ans = ans + "," + answers[i];
    }
    local tt = "";
    for ( j in ttls ) {
        if ( tt == "" )
            tt = fmt("%s", ttls[j]);
        else
            tt = tt + "," + fmt("%s", ttls[j]);
    }
    Log::write("dns", [$ts=ts, $uid=c$uid,
                       $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
                       $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
                       $trans_id=trans_id, $query=query, $qtype=qtype,
                       $qtype_name=qtype_name(qtype),
                       $rcode=rcode, $rcode_name=rcode_name(rcode),
                       $answers=ans, $ttls=tt]);
}
`

// TrackScript is the paper's Figure 8(a).
const TrackScript = trackBroSrc

const trackBroSrc = `
global hosts: set[addr];

event connection_established(c: connection) {
    add hosts[c$id$resp_h];   # Record responder IP.
}

event bro_done() {
    for ( i in hosts )        # Print all recorded IPs.
        print i;
}
`

// FibScript is the §6.5 recursive-Fibonacci baseline.
const FibScript = `
function fib(n: count): count {
    if ( n < 2 )
        return n;
    return fib(n-1) + fib(n-2);
}
`
