package bro

import (
	"bytes"
	"testing"

	"hilti/internal/rt/metrics"
)

// TestMetricContinuityAcrossRestore pins down the observability contract
// of crash-only operation: an engine killed after a checkpoint and
// restored into the SAME registry must keep its series continuous —
// counters neither reset to zero (the checkpoint seeds them) nor
// double-count (the restored engine's keyed collector replaces the dead
// one's registration rather than adding a second emitter).
func TestMetricContinuityAcrossRestore(t *testing.T) {
	pkts := mergedTrace(t)
	reg := metrics.NewRegistry()
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true,
		Metrics: reg}

	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(pkts) / 2
	for i := 0; i < cut; i++ {
		e.SafeProcessPacket(pkts[i].Time.UnixNano(), pkts[i].Data)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	atKill := reg.Value("bro_packets_total")
	eventsAtKill := reg.Value("bro_events_total")
	logsAtKill := reg.Value("bro_log_lines_total")
	if atKill != float64(e.packets.Load()) || atKill == 0 {
		t.Fatalf("scrape %v != engine counter %d", atKill, e.packets.Load())
	}

	// Kill: the engine object is dropped on the floor, exactly as the
	// supervisor does after a worker fault.
	resumed, err := RestoreEngine(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// No reset: the restored engine reports the checkpointed totals.
	if got := reg.Value("bro_packets_total"); got != atKill {
		t.Fatalf("packets after restore = %v, want %v (reset or double-count)", got, atKill)
	}
	if got := reg.Value("bro_events_total"); got != eventsAtKill {
		t.Fatalf("events after restore = %v, want %v", got, eventsAtKill)
	}
	if got := reg.Value("bro_log_lines_total"); got != logsAtKill {
		t.Fatalf("log lines after restore = %v, want %v", got, logsAtKill)
	}

	for i := cut; i < len(pkts); i++ {
		resumed.SafeProcessPacket(pkts[i].Time.UnixNano(), pkts[i].Data)
	}
	resumed.Finish()

	// Monotonic across the kill: final totals reflect both halves.
	if got := reg.Value("bro_packets_total"); got != float64(resumed.packets.Load()) {
		t.Fatalf("final packets = %v, engine says %d", got, resumed.packets.Load())
	}
	if reg.Value("bro_packets_total") < atKill {
		t.Fatal("packet counter went backwards across restore")
	}
	// Flow ledger stays balanced when scraped from the registry.
	opened := reg.Value("bro_flows_opened_total")
	closed := reg.Value("bro_flows_closed_total")
	active := reg.Value("bro_flows_active")
	if opened != closed+active {
		t.Fatalf("flow ledger: opened %v != closed %v + active %v", opened, closed, active)
	}
	if opened == 0 {
		t.Fatal("no flows observed; trace did not exercise the ledger")
	}
}

// TestMetricContinuityNoDoubleCollector: restoring under the same key must
// leave exactly one emitter for the engine series — a second engine with a
// DIFFERENT key is additive by design, and that contrast is the test.
func TestMetricContinuityNoDoubleCollector(t *testing.T) {
	pkts := mergedTrace(t)
	reg := metrics.NewRegistry()
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript}, Quiet: true, Metrics: reg}

	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pkts); i++ {
		e.SafeProcessPacket(pkts[i].Time.UnixNano(), pkts[i].Data)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	total := reg.Value("bro_packets_total")

	// Same key (default "0"): replacement, not addition.
	if _, err := RestoreEngine(cfg, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := reg.Value("bro_packets_total"); got != total {
		t.Fatalf("same-key restore changed total: %v -> %v", total, got)
	}

	// Different key: a genuine second engine, so the aggregate doubles.
	other := cfg
	other.MetricsKey = "1"
	if _, err := RestoreEngine(other, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := reg.Value("bro_packets_total"); got != 2*total {
		t.Fatalf("distinct-key engine not additive: %v, want %v", got, 2*total)
	}
}
