// Script parser: source -> Script AST.

package bro

import (
	"fmt"
	"strconv"
	"strings"

	"hilti/internal/rt/values"
)

// ParseScript parses Bro-like script source.
func ParseScript(src string) (*Script, error) {
	toks, err := lexScript(src)
	if err != nil {
		return nil, err
	}
	p := &sparser{toks: toks}
	return p.script()
}

type sparser struct {
	toks []btok
	pos  int
}

func (p *sparser) cur() btok  { return p.toks[p.pos] }
func (p *sparser) next() btok { t := p.toks[p.pos]; p.pos++; return t }
func (p *sparser) errf(f string, a ...any) error {
	return fmt.Errorf("script line %d: %s", p.cur().line, fmt.Sprintf(f, a...))
}

func (p *sparser) isPunct(s string) bool {
	return p.cur().kind == btPunct && p.cur().text == s
}

func (p *sparser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, got %q", s, p.cur().text)
	}
	p.pos++
	return nil
}

func (p *sparser) isIdent(s string) bool {
	return p.cur().kind == btIdent && p.cur().text == s
}

func (p *sparser) script() (*Script, error) {
	s := &Script{}
	for {
		t := p.cur()
		if t.kind == btEOF {
			return s, nil
		}
		if t.kind != btIdent {
			return nil, p.errf("unexpected %q at top level", t.text)
		}
		switch t.text {
		case "module":
			p.pos += 2 // module NAME
			if p.isPunct(";") {
				p.pos++
			}
		case "type":
			rd, err := p.recordDecl()
			if err != nil {
				return nil, err
			}
			s.Records = append(s.Records, rd)
		case "global", "const":
			gd, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			s.Globals = append(s.Globals, gd)
		case "event":
			ev, err := p.eventHandler()
			if err != nil {
				return nil, err
			}
			s.Events = append(s.Events, ev)
		case "function":
			fd, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			s.Functions = append(s.Functions, fd)
		default:
			return nil, p.errf("unexpected keyword %q", t.text)
		}
	}
}

// recordDecl parses `type Name: record { f: T &log; ... };`.
func (p *sparser) recordDecl() (*RecordDecl, error) {
	p.next() // type
	name := p.next().text
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	if !p.isIdent("record") {
		return nil, p.errf("only record types can be declared")
	}
	p.next()
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	rd := &RecordDecl{Name: name}
	for !p.isPunct("}") {
		fname := p.next().text
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		ft, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		f := RecordField{Name: fname, Type: ft}
		for p.isPunct("&") {
			p.pos++
			switch p.next().text {
			case "optional":
				f.Optional = true
			case "log":
				f.Log = true
			case "default":
				// &default=<expr>: parse and discard (defaults handled by
				// explicit init in the scripts we run).
				if p.isPunct("=") {
					p.pos++
					if _, err := p.expr(); err != nil {
						return nil, err
					}
				}
			default:
				return nil, p.errf("unknown field attribute")
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		rd.Fields = append(rd.Fields, f)
	}
	p.pos++ // }
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return rd, nil
}

func (p *sparser) globalDecl() (*GlobalDecl, error) {
	p.next() // global/const
	gd := &GlobalDecl{Name: p.next().text}
	if p.isPunct(":") {
		p.pos++
		t, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		gd.Type = t
	}
	if p.isPunct("=") {
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		gd.Init = e
	}
	for p.isPunct("&") {
		p.pos++
		attr := p.next().text
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		lit, ok := e.(*LitExpr)
		if !ok {
			return nil, p.errf("attribute value must be a literal")
		}
		iv, ok := lit.V.(IntervalVal)
		if !ok {
			return nil, p.errf("attribute value must be an interval")
		}
		switch attr {
		case "create_expire":
			gd.CreateExpire = int64(iv)
		case "read_expire":
			gd.ReadExpire = int64(iv)
		default:
			return nil, p.errf("unknown attribute &%s", attr)
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return gd, nil
}

func (p *sparser) params() ([]ParamDecl, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []ParamDecl
	for !p.isPunct(")") {
		name := p.next().text
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		t, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, ParamDecl{Name: name, Type: t})
		if p.isPunct(",") {
			p.pos++
		}
	}
	p.pos++ // )
	return out, nil
}

func (p *sparser) eventHandler() (*EventHandler, error) {
	p.next() // event
	ev := &EventHandler{Name: p.next().text}
	ps, err := p.params()
	if err != nil {
		return nil, err
	}
	ev.Params = ps
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	ev.Body = body
	return ev, nil
}

func (p *sparser) funcDecl() (*FuncDecl, error) {
	p.next() // function
	fd := &FuncDecl{Name: p.next().text}
	ps, err := p.params()
	if err != nil {
		return nil, err
	}
	fd.Params = ps
	if p.isPunct(":") {
		p.pos++
		t, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		fd.Result = t
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *sparser) typeExpr() (*TypeExpr, error) {
	t := p.next()
	if t.kind != btIdent {
		return nil, p.errf("expected type, got %q", t.text)
	}
	switch t.text {
	case "bool", "count", "int", "double", "string", "addr", "subnet",
		"port", "time", "interval", "any", "pattern":
		return &TypeExpr{Kind: t.text}, nil
	case "table", "set":
		te := &TypeExpr{Kind: t.text}
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		for !p.isPunct("]") {
			it, err := p.typeExpr()
			if err != nil {
				return nil, err
			}
			te.Index = append(te.Index, it)
			if p.isPunct(",") {
				p.pos++
			}
		}
		p.pos++ // ]
		if t.text == "table" {
			if !p.isIdent("of") {
				return nil, p.errf("table needs 'of <type>'")
			}
			p.pos++
			y, err := p.typeExpr()
			if err != nil {
				return nil, err
			}
			te.Yield = y
		}
		return te, nil
	case "vector":
		if !p.isIdent("of") {
			return nil, p.errf("vector needs 'of <type>'")
		}
		p.pos++
		y, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		return &TypeExpr{Kind: "vector", Yield: y}, nil
	default:
		return &TypeExpr{Kind: "record", Name: t.text}, nil
	}
}

func (p *sparser) block() ([]Stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.isPunct("}") {
		if p.cur().kind == btEOF {
			return nil, p.errf("unexpected end of input in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.pos++ // }
	return out, nil
}

// blockOrStmt accepts `{ ... }` or a single statement.
func (p *sparser) blockOrStmt() ([]Stmt, error) {
	if p.isPunct("{") {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *sparser) stmt() (Stmt, error) {
	t := p.cur()
	if t.kind == btIdent {
		switch t.text {
		case "local":
			p.pos++
			name := p.next().text
			ls := &LocalStmt{Name: name}
			if p.isPunct(":") {
				p.pos++
				ty, err := p.typeExpr()
				if err != nil {
					return nil, err
				}
				ls.Type = ty
			}
			if p.isPunct("=") {
				p.pos++
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				ls.Init = e
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			return ls, nil
		case "if":
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			then, err := p.blockOrStmt()
			if err != nil {
				return nil, err
			}
			st := &IfStmt{Cond: cond, Then: then}
			if p.isIdent("else") {
				p.pos++
				els, err := p.blockOrStmt()
				if err != nil {
					return nil, err
				}
				st.Else = els
			}
			return st, nil
		case "for":
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			fs := &ForStmt{Var: p.next().text}
			if p.isPunct(",") {
				p.pos++
				fs.Var2 = p.next().text
			}
			if !p.isIdent("in") {
				return nil, p.errf("expected 'in'")
			}
			p.pos++
			over, err := p.expr()
			if err != nil {
				return nil, err
			}
			fs.Over = over
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			body, err := p.blockOrStmt()
			if err != nil {
				return nil, err
			}
			fs.Body = body
			return fs, nil
		case "print":
			p.pos++
			ps := &PrintStmt{}
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				ps.Args = append(ps.Args, e)
				if p.isPunct(",") {
					p.pos++
					continue
				}
				break
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			return ps, nil
		case "add", "delete":
			kw := t.text
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			ie, ok := e.(*IndexExpr)
			if !ok {
				return nil, p.errf("%s needs an index expression", kw)
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			if kw == "add" {
				return &AddStmt{Target: ie}, nil
			}
			return &DeleteStmt{Target: ie}, nil
		case "return":
			p.pos++
			rs := &ReturnStmt{}
			if !p.isPunct(";") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				rs.Value = e
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			return rs, nil
		case "event":
			p.pos++
			name := p.next().text
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			es := &EventStmt{Name: name}
			for !p.isPunct(")") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				es.Args = append(es.Args, e)
				if p.isPunct(",") {
					p.pos++
				}
			}
			p.pos++
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			return es, nil
		}
	}
	// Expression or assignment.
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.isPunct("=") {
		p.pos++
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		switch e.(type) {
		case *NameExpr, *IndexExpr, *FieldExpr:
			return &AssignStmt{LHS: e, RHS: rhs}, nil
		}
		return nil, p.errf("invalid assignment target")
	}
	if p.isPunct("+=") {
		p.pos++
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: e, RHS: &BinExpr{Op: "+", L: e, R: rhs}}, nil
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &ExprStmt{E: e}, nil
}

// --- expressions (precedence climbing) -----------------------------------------

func (p *sparser) expr() (Expr, error) { return p.orExpr() }

func (p *sparser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("||") {
		p.pos++
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *sparser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("&&") {
		p.pos++
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *sparser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		op := ""
		switch {
		case p.isPunct("=="), p.isPunct("!="), p.isPunct("<"), p.isPunct(">"),
			p.isPunct("<="), p.isPunct(">="):
			op = p.next().text
		case p.isIdent("in"):
			p.pos++
			op = "in"
		case p.isPunct("!") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == btIdent && p.toks[p.pos+1].text == "in":
			p.pos += 2
			op = "!in"
		default:
			return l, nil
		}
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *sparser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := p.next().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *sparser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") || p.isPunct("%") {
		op := p.next().text
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *sparser) unary() (Expr, error) {
	switch {
	case p.isPunct("!"):
		p.pos++
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "!", E: e}, nil
	case p.isPunct("-"):
		p.pos++
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	case p.isPunct("|"):
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("|"); err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "||", E: e}, nil
	}
	return p.postfix()
}

func (p *sparser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("["):
			p.pos++
			ie := &IndexExpr{Base: e}
			for !p.isPunct("]") {
				k, err := p.expr()
				if err != nil {
					return nil, err
				}
				ie.Keys = append(ie.Keys, k)
				if p.isPunct(",") {
					p.pos++
				}
			}
			p.pos++
			e = ie
		case p.isPunct("$"):
			p.pos++
			e = &FieldExpr{Base: e, Field: p.next().text}
		default:
			return e, nil
		}
	}
}

func (p *sparser) primary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case btNumber:
		if strings.Contains(t.text, ".") {
			f, _ := strconv.ParseFloat(t.text, 64)
			// Interval units directly after a double.
			if iv, ok := p.intervalUnit(f); ok {
				return &LitExpr{V: iv}, nil
			}
			return &LitExpr{V: DoubleVal(f)}, nil
		}
		n, err := strconv.ParseUint(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		if iv, ok := p.intervalUnit(float64(n)); ok {
			return &LitExpr{V: iv}, nil
		}
		return &LitExpr{V: CountVal(n)}, nil
	case btString:
		return &LitExpr{V: StringVal(t.text)}, nil
	case btAddr:
		a, err := values.ParseAddr(t.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &LitExpr{V: AddrVal{A: a}}, nil
	case btSubnet:
		n, err := values.ParseNet(t.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &LitExpr{V: SubnetVal{N: n}}, nil
	case btPort:
		v, err := values.ParsePort(t.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		num, proto := v.AsPort()
		return &LitExpr{V: PortVal{Num: num, Proto: proto}}, nil
	case btPunct:
		if t.text == "(" {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "[" {
			// Record constructor literal [$f = e, ...], or a positional
			// list literal [a, b] (composite table keys for `in`).
			if p.isPunct("$") {
				ce := &CtorExpr{Name: ""}
				for !p.isPunct("]") {
					if err := p.expectPunct("$"); err != nil {
						return nil, err
					}
					fname := p.next().text
					if err := p.expectPunct("="); err != nil {
						return nil, err
					}
					fe, err := p.expr()
					if err != nil {
						return nil, err
					}
					ce.Fields = append(ce.Fields, CtorField{Name: fname, E: fe})
					if p.isPunct(",") {
						p.pos++
					}
				}
				p.pos++
				return ce, nil
			}
			ce := &CallExpr{Fn: "vector"}
			for !p.isPunct("]") {
				fe, err := p.expr()
				if err != nil {
					return nil, err
				}
				ce.Args = append(ce.Args, fe)
				if p.isPunct(",") {
					p.pos++
				}
			}
			p.pos++
			return ce, nil
		}
		return nil, p.errf("unexpected %q", t.text)
	case btIdent:
		switch t.text {
		case "T", "true":
			return &LitExpr{V: BoolVal(true)}, nil
		case "F", "false":
			return &LitExpr{V: BoolVal(false)}, nil
		}
		// Call or typed constructor.
		if p.isPunct("(") {
			p.pos++
			ce := &CallExpr{Fn: t.text}
			for !p.isPunct(")") {
				// Record-constructor field syntax Type($f = e).
				if p.isPunct("$") {
					p.pos++
					fname := p.next().text
					if err := p.expectPunct("="); err != nil {
						return nil, err
					}
					fe, err := p.expr()
					if err != nil {
						return nil, err
					}
					ce.Args = append(ce.Args, &CtorExpr{Name: "$field:" + fname,
						Fields: []CtorField{{Name: fname, E: fe}}})
					if p.isPunct(",") {
						p.pos++
					}
					continue
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				ce.Args = append(ce.Args, a)
				if p.isPunct(",") {
					p.pos++
				}
			}
			p.pos++
			return ce, nil
		}
		return &NameExpr{Name: t.text}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

// intervalUnit consumes a trailing time unit if present.
func (p *sparser) intervalUnit(n float64) (IntervalVal, bool) {
	if p.cur().kind != btIdent {
		return 0, false
	}
	mult := float64(0)
	switch p.cur().text {
	case "usec", "usecs":
		mult = 1e3
	case "msec", "msecs":
		mult = 1e6
	case "sec", "secs":
		mult = 1e9
	case "min", "mins":
		mult = 60e9
	case "hr", "hrs":
		mult = 3600e9
	case "day", "days":
		mult = 86400e9
	default:
		return 0, false
	}
	p.pos++
	return IntervalVal(n * mult), true
}
