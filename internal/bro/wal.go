// The engine's delta-state API: incremental checkpoints via a write-ahead
// log. A full checkpoint re-encodes every open connection, every global,
// and every log line — O(all state) per interval. The API here instead
// tracks *which* state changed since the last flush (dirty marks placed at
// the engine's mutation points, plus container mutation journals) and
// serializes only that: AppendDelta emits one O(changed-state) record, and
// ApplyDelta replays it deterministically onto a restored base snapshot.
//
// Checkpoint cost model under WAL mode:
//
//	checkpoint = periodic full snapshot (Checkpoint) + wal.Log of deltas
//	restore    = RestoreEngine(snapshot) + replay of the delta records
//
// Granularities, coarsest to finest:
//   - dirty connections re-encode whole (encodeConn) — per-flow, not
//     per-engine, cost;
//   - interpreter table globals diff per entry (upserts + deletes against
//     the cached base), other globals diff whole-value blobs;
//   - VM container globals with scalar-only contents journal individual
//     insert/remove/touch ops (container.JournalFn); any non-scalar key or
//     value, or a policy change, trips the gate and the global falls back
//     to whole-blob diffing — the conservative answer to aliasing, since a
//     heap value stored in a container can be mutated later without any
//     container operation the journal could observe.
//
// The same serializability limits as Checkpoint apply: a connection with
// in-flight BinPAC++ fiber state cannot be encoded (AppendDelta errors and
// the caller falls back to re-basing), and unserializable globals degrade
// to their base-snapshot value.

package bro

import (
	"bytes"
	"fmt"
	"sort"

	"hilti/internal/rt/container"
	"hilti/internal/rt/snapshot"
	"hilti/internal/rt/timer"
	"hilti/internal/rt/values"
	"hilti/internal/rt/wal"
)

// DeltaRecord is the WAL record kind under which engine-level harnesses
// append AppendDelta payloads (the pipeline wraps deltas in its own
// per-packet records instead).
const DeltaRecord = 1

// Global-emission modes inside a delta record.
const (
	deltaWhole     = 0 // full re-encoded value
	deltaTableDiff = 1 // per-entry upserts/deletes against the base
	deltaJournal   = 2 // container journal ops (VM globals only)
)

// deltaState is the engine's dirty-tracking state between WAL flushes plus
// the caches describing what the last flush (or base snapshot) contained.
type deltaState struct {
	dirtyConns  map[int64]*conn
	closedCtxs  map[int64]bool
	quarTouched map[uint64]bool
	dirtyInterp bool
	dirtyExec   [2]bool

	interp  map[string]*interpCache
	exec    [2][]execCache
	flushed map[string]int // stream name -> lines already persisted
}

// interpCache is the per-interpreter-global base the next diff runs against.
type interpCache struct {
	obj     any               // *TableVal identity when entry-diffed
	entries map[string][]byte // keyStr -> encoded entry (table mode)
	order   []string          // live keyStr order at last flush (table mode)
	blob    []byte            // whole-value encoding (non-table mode)
	ok      bool              // whole-value encoding succeeded
}

// execCache is the per-VM-global base. Container globals with scalar-only
// contents run in journal mode: mutations append ops and an unchanged
// container costs nothing at flush time. Everything else diffs blobs.
type execCache struct {
	obj       any // journaled container identity (nil: plain blob mode)
	journaled bool
	dirty     bool // any journal activity since last flush
	opsBuf    *bytes.Buffer
	opsEnc    *snapshot.Encoder
	nops      int
	blob      []byte
	ok        bool
}

func journalableScalar(v values.Value) bool {
	// Kinds at or below Bitset keep their payload in the two scalar words
	// (strings are immutable), so a journaled copy can never be mutated
	// behind the journal's back through an alias.
	return v.K <= values.KindBitset
}

// --- dirty marks (called from engine.go; no-ops when WAL is off) ---------------

func (e *Engine) markConnDirty(c *conn) {
	if e.delta != nil {
		e.delta.dirtyConns[c.ctx] = c
	}
}

func (e *Engine) markConnClosed(c *conn) {
	if e.delta != nil {
		delete(e.delta.dirtyConns, c.ctx)
		e.delta.closedCtxs[c.ctx] = true
	}
}

func (e *Engine) markQuar(vid uint64) {
	if e.delta != nil {
		e.delta.quarTouched[vid] = true
	}
}

// --- base management -----------------------------------------------------------

// ResetDeltaBase (re)initializes delta tracking so that subsequent
// AppendDelta calls describe changes relative to the engine's *current*
// state. Call it immediately after writing a full snapshot (Checkpoint);
// the snapshot plus the deltas then reconstruct the engine exactly.
func (e *Engine) ResetDeltaBase() error {
	e.detachJournals()
	ds := &deltaState{
		dirtyConns:  map[int64]*conn{},
		closedCtxs:  map[int64]bool{},
		quarTouched: map[uint64]bool{},
		interp:      map[string]*interpCache{},
		flushed:     map[string]int{},
	}
	for name, v := range e.interp.Globals {
		ds.interp[name] = newInterpCache(v)
	}
	ds.exec[0] = ds.baseExec(e, 0)
	ds.exec[1] = ds.baseExec(e, 1)
	for name, st := range e.Logs.streams {
		ds.flushed[name] = len(st.lines)
	}
	e.delta = ds
	return nil
}

// detachJournals removes this engine's container journals (installed by a
// previous ResetDeltaBase) so orphaned callbacks stop accumulating ops.
func (e *Engine) detachJournals() {
	if e.delta == nil {
		return
	}
	for w := range e.delta.exec {
		for i := range e.delta.exec[w] {
			setContainerJournal(e.delta.exec[w][i].obj, nil)
		}
	}
}

func setContainerJournal(obj any, fn container.JournalFn) {
	switch o := obj.(type) {
	case *container.Map:
		o.SetJournal(fn)
	case *container.Set:
		o.SetJournal(fn)
	}
}

func execOf(e *Engine, which int) []values.Value {
	ex := e.sexec
	if which == 1 {
		ex = e.pexec
	}
	if ex == nil {
		return nil
	}
	return ex.Globals
}

func execTM(e *Engine, which int) *timer.Mgr {
	if which == 1 {
		return e.pexec.GlobalTM
	}
	return e.sexec.GlobalTM
}

func (ds *deltaState) baseExec(e *Engine, which int) []execCache {
	globals := execOf(e, which)
	if globals == nil {
		return nil
	}
	cache := make([]execCache, len(globals))
	for i := range globals {
		gc := &cache[i]
		switch o := globals[i].O.(type) {
		case *container.Map, *container.Set:
			gc.obj = o
			gc.journaled = true
			setContainerJournal(o, ds.execJournal(which, i, &cache))
		default:
			gc.blob, gc.ok = encodeExecGlobal(globals[i])
		}
	}
	return cache
}

// execJournal builds the journal callback for VM global idx. The cache
// slice is passed by pointer-to-slice so the closure stays valid even
// though it is built before the slice is stored in ds.exec.
func (ds *deltaState) execJournal(which, idx int, cache *[]execCache) container.JournalFn {
	return func(op container.JournalOp, key, val values.Value, lastUse timer.Time) {
		gc := &(*cache)[idx]
		gc.dirty = true
		if !gc.journaled {
			return
		}
		if op == container.JournalReset || !journalableScalar(key) || !journalableScalar(val) {
			// Gate tripped: this global now diffs whole blobs. Drop any ops
			// already buffered — the next flush re-encodes from scratch.
			gc.journaled = false
			gc.nops = 0
			if gc.opsBuf != nil {
				gc.opsBuf.Reset()
			}
			return
		}
		if gc.opsBuf == nil {
			gc.opsBuf = &bytes.Buffer{}
			gc.opsEnc = snapshot.NewRawEncoder(gc.opsBuf)
		}
		gc.opsEnc.U8(byte(op))
		gc.opsEnc.Value(key)
		gc.opsEnc.Value(val)
		gc.opsEnc.I64(int64(lastUse))
		gc.nops++
	}
}

func encodeExecGlobal(v values.Value) ([]byte, bool) {
	var buf bytes.Buffer
	enc := snapshot.NewRawEncoder(&buf)
	enc.Value(v)
	if enc.Err() != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

func newInterpCache(v Val) *interpCache {
	c := &interpCache{}
	if t, ok := v.(*TableVal); ok {
		c.obj = t
		c.entries, c.order, c.ok = tableEntryBlobs(t)
		if c.ok {
			return c
		}
		c.obj = nil // unencodable entries: fall through to whole-blob mode
	}
	c.blob, c.ok = encodeInterpGlobal(v)
	return c
}

func encodeInterpGlobal(v Val) ([]byte, bool) {
	var buf bytes.Buffer
	enc := snapshot.NewRawEncoder(&buf)
	encodeVal(enc, v, 0)
	if enc.Err() != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// tableEntryBlobs encodes each live entry of t, keyed by its canonical
// key string, preserving insertion order.
func tableEntryBlobs(t *TableVal) (map[string][]byte, []string, bool) {
	entries := make(map[string][]byte, t.Len())
	order := make([]string, 0, t.Len())
	good := true
	for _, en := range t.order {
		if en.deleted {
			continue
		}
		var buf bytes.Buffer
		enc := snapshot.NewRawEncoder(&buf)
		enc.U16(uint16(len(en.key)))
		for _, k := range en.key {
			encodeVal(enc, k, 1)
		}
		encodeVal(enc, en.yield, 1)
		enc.I64(en.touched)
		if enc.Err() != nil {
			good = false
			break
		}
		entries[en.keyStr] = buf.Bytes()
		order = append(order, en.keyStr)
	}
	return entries, order, good
}

// --- delta encoding ------------------------------------------------------------

// AppendDelta serializes everything that changed since the last flush (or
// ResetDeltaBase) into one self-contained record, advancing the base so
// the next call describes only subsequent changes. The caller appends the
// returned bytes to a wal.Log. An error means the delta cannot express the
// current state (in-flight binpac parse); the caller should re-base with a
// full snapshot once possible.
func (e *Engine) AppendDelta() ([]byte, error) {
	ds := e.delta
	if ds == nil {
		return nil, fmt.Errorf("bro: AppendDelta without ResetDeltaBase")
	}
	for _, c := range ds.dirtyConns {
		if c.inFlightParse() {
			return nil, fmt.Errorf("bro: cannot delta connection %s: in-flight binpac parse state", c.uid)
		}
	}
	var buf bytes.Buffer
	enc := snapshot.NewRawEncoder(&buf)

	// Meta: clocks and counters, unconditionally (16 fixed words).
	enc.I64(e.now)
	enc.I64(e.nextCtx)
	enc.U64(e.packets.Load())
	enc.U64(e.events.Load())
	enc.U64(e.parseErrs.Load())
	enc.U64(e.budgetBlown.Load())
	enc.U64(e.quarDropped.Load())
	enc.U64(e.flowsOpened.Load())
	enc.U64(e.flowsClosed.Load())
	enc.U64(e.Logs.Written())

	// Quarantine marks.
	qvids := make([]uint64, 0, len(ds.quarTouched))
	for vid := range ds.quarTouched {
		qvids = append(qvids, vid)
	}
	sort.Slice(qvids, func(i, j int) bool { return qvids[i] < qvids[j] })
	enc.U32(uint32(len(qvids)))
	for _, vid := range qvids {
		enc.U64(vid)
		n, present := e.quarantined[vid]
		enc.Bool(present)
		enc.U64(n)
	}

	// Log tails: only lines beyond the flushed watermark.
	var snames []string
	for name, st := range e.Logs.streams {
		if len(st.lines) > ds.flushed[name] {
			snames = append(snames, name)
		}
	}
	sort.Strings(snames)
	enc.U32(uint32(len(snames)))
	for _, name := range snames {
		st := e.Logs.streams[name]
		enc.String(name)
		tail := st.lines[ds.flushed[name]:]
		enc.U32(uint32(len(tail)))
		for _, l := range tail {
			enc.String(l)
		}
		ds.flushed[name] = len(st.lines)
	}

	e.appendInterpDeltas(enc, ds)
	e.appendExecDeltas(enc, ds, 0)
	e.appendExecDeltas(enc, ds, 1)

	// Closed then dirty connections, sorted for determinism.
	closed := make([]int64, 0, len(ds.closedCtxs))
	for ctx := range ds.closedCtxs {
		closed = append(closed, ctx)
	}
	sort.Slice(closed, func(i, j int) bool { return closed[i] < closed[j] })
	enc.U32(uint32(len(closed)))
	for _, ctx := range closed {
		enc.I64(ctx)
	}
	dirty := make([]*conn, 0, len(ds.dirtyConns))
	for _, c := range ds.dirtyConns {
		dirty = append(dirty, c)
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].ctx < dirty[j].ctx })
	enc.U32(uint32(len(dirty)))
	for _, c := range dirty {
		encodeConn(enc, c)
	}

	if err := enc.Err(); err != nil {
		return nil, err
	}
	ds.dirtyConns = map[int64]*conn{}
	ds.closedCtxs = map[int64]bool{}
	ds.quarTouched = map[uint64]bool{}
	return buf.Bytes(), nil
}

// appendInterpDeltas emits changed interpreter globals: table globals as
// per-entry diffs, everything else as whole-value blobs when the bytes
// differ from the cached base.
func (e *Engine) appendInterpDeltas(enc *snapshot.Encoder, ds *deltaState) {
	type emission struct {
		name string
		mode byte
		body []byte
	}
	var out []emission
	if ds.dirtyInterp {
		names := make([]string, 0, len(ds.interp))
		for name := range ds.interp {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := ds.interp[name]
			v := e.interp.Globals[name]
			if t, ok := v.(*TableVal); ok && c.obj == any(t) {
				if body, changed := diffTable(c, t); changed {
					out = append(out, emission{name, deltaTableDiff, body})
				}
				continue
			}
			blob, okE := encodeInterpGlobal(v)
			if !okE {
				// Unserializable now: degrade exactly as Checkpoint would by
				// leaving the restored side at its base value.
				continue
			}
			if c.ok && bytes.Equal(blob, c.blob) {
				continue
			}
			*c = interpCache{blob: blob, ok: true}
			if t, ok := v.(*TableVal); ok {
				// Rebuild entry cache so later flushes diff incrementally.
				if entries, order, tok := tableEntryBlobs(t); tok {
					c.obj, c.entries, c.order = t, entries, order
				}
			}
			out = append(out, emission{name, deltaWhole, blob})
		}
		ds.dirtyInterp = false
	}
	enc.U32(uint32(len(out)))
	for _, em := range out {
		enc.String(em.name)
		enc.U8(em.mode)
		enc.Bytes(em.body)
	}
}

// diffTable computes a per-entry diff of t against the cached base,
// updating the cache in place. It falls back to nil,false (no emission,
// caller re-encodes whole) never — reorders instead rebuild the cache and
// emit the full entry set as upserts following a full delete, which keeps
// the diff self-contained.
func diffTable(c *interpCache, t *TableVal) (body []byte, changed bool) {
	entries, order, ok := tableEntryBlobs(t)
	if !ok {
		return nil, false // unencodable entries: degrade, keep base
	}
	var dels, ups []string
	for _, ks := range c.order {
		if _, live := entries[ks]; !live {
			dels = append(dels, ks)
		}
	}
	for _, ks := range order {
		old, had := c.entries[ks]
		if !had || !bytes.Equal(old, entries[ks]) {
			ups = append(ups, ks)
		}
	}
	// Order consistency: surviving base entries in base order, new keys
	// appended. A reorder (delete + reinsert of the same key) cannot be
	// expressed as in-place upserts, so emit a full rewrite instead.
	expected := make([]string, 0, len(order))
	for _, ks := range c.order {
		if _, live := entries[ks]; live {
			expected = append(expected, ks)
		}
	}
	for _, ks := range order {
		if _, had := c.entries[ks]; !had {
			expected = append(expected, ks)
		}
	}
	reordered := len(expected) != len(order)
	for i := 0; !reordered && i < len(order); i++ {
		reordered = expected[i] != order[i]
	}
	if reordered {
		dels = append([]string(nil), c.order...)
		ups = order
	}
	if len(dels) == 0 && len(ups) == 0 {
		return nil, false
	}
	var buf bytes.Buffer
	sub := snapshot.NewRawEncoder(&buf)
	sub.U32(uint32(len(dels)))
	for _, ks := range dels {
		sub.String(ks)
	}
	sub.U32(uint32(len(ups)))
	for _, ks := range ups {
		sub.Bytes(entries[ks])
	}
	c.entries, c.order = entries, order
	return buf.Bytes(), true
}

// appendExecDeltas emits changed VM globals for executor `which` (0 =
// scripts, 1 = parsers): journal ops for clean container globals, blob
// diffs otherwise.
func (e *Engine) appendExecDeltas(enc *snapshot.Encoder, ds *deltaState, which int) {
	globals := execOf(e, which)
	enc.Bool(globals != nil)
	if globals == nil {
		return
	}
	enc.I64(int64(execTM(e, which).Now()))
	type emission struct {
		idx  int
		mode byte
		body []byte
	}
	var out []emission
	for i := range ds.exec[which] {
		gc := &ds.exec[which][i]
		if gc.obj != nil && globals[i].O != gc.obj {
			// Global rebound to a different object: the journal watches the
			// old one. Detach and fall back to blob mode permanently.
			setContainerJournal(gc.obj, nil)
			gc.obj, gc.journaled, gc.dirty = nil, false, true
		}
		if gc.journaled {
			if gc.nops > 0 {
				var buf bytes.Buffer
				sub := snapshot.NewRawEncoder(&buf)
				sub.U32(uint32(gc.nops))
				sub.Raw(gc.opsBuf.Bytes())
				out = append(out, emission{i, deltaJournal, buf.Bytes()})
				gc.opsBuf.Reset()
				gc.nops = 0
			}
			gc.dirty = false
			continue
		}
		// Blob mode. Container globals have a precise dirty signal (the
		// journal still marks even after falling back); plain globals only
		// have the executor-wide flag.
		if gc.obj != nil {
			if !gc.dirty {
				continue
			}
		} else if !ds.dirtyExec[which] {
			continue
		}
		blob, ok := encodeExecGlobal(globals[i])
		gc.dirty = false
		if !ok {
			continue // degrade: restored side keeps its base value
		}
		if gc.ok && bytes.Equal(blob, gc.blob) {
			continue
		}
		gc.blob, gc.ok = blob, true
		out = append(out, emission{i, deltaWhole, blob})
	}
	ds.dirtyExec[which] = false
	enc.U32(uint32(len(out)))
	for _, em := range out {
		enc.U32(uint32(em.idx))
		enc.U8(em.mode)
		enc.Bytes(em.body)
	}
}

// --- delta application ---------------------------------------------------------

// ApplyDelta replays one AppendDelta record onto the engine — the restore
// half of incremental checkpointing. The engine must be at the state the
// record was diffed against (the base snapshot plus all earlier records).
// ApplyDelta does not maintain delta tracking; a caller that resumes WAL
// mode afterwards re-bases with Checkpoint + ResetDeltaBase.
func (e *Engine) ApplyDelta(data []byte) error {
	dec := snapshot.NewRawDecoder(data)
	e.now = dec.I64()
	e.nextCtx = dec.I64()
	e.packets.Store(dec.U64())
	e.events.Store(dec.U64())
	e.parseErrs.Store(dec.U64())
	e.budgetBlown.Store(dec.U64())
	e.quarDropped.Store(dec.U64())
	e.flowsOpened.Store(dec.U64())
	e.flowsClosed.Store(dec.U64())
	e.Logs.written.Store(dec.U64())

	nq := dec.Len(10)
	for i := 0; i < nq && dec.Err() == nil; i++ {
		vid := dec.U64()
		present := dec.Bool()
		n := dec.U64()
		if present {
			e.quarantined[vid] = n
		} else {
			delete(e.quarantined, vid)
		}
	}

	ns := dec.Len(8)
	for i := 0; i < ns && dec.Err() == nil; i++ {
		name := dec.String()
		nl := dec.Len(4)
		st, ok := e.Logs.streams[name]
		if !ok {
			st = &logStream{name: name}
			e.Logs.streams[name] = st
		}
		for j := 0; j < nl && dec.Err() == nil; j++ {
			st.lines = append(st.lines, dec.String())
		}
	}

	if err := e.applyInterpDeltas(dec); err != nil {
		return err
	}
	if err := e.applyExecDeltas(dec, 0); err != nil {
		return err
	}
	if err := e.applyExecDeltas(dec, 1); err != nil {
		return err
	}

	ncl := dec.Len(8)
	for i := 0; i < ncl && dec.Err() == nil; i++ {
		ctx := dec.I64()
		if c, ok := e.ctxs[ctx]; ok {
			e.dropConnState(c)
		}
	}
	ndc := dec.Len(keyBytes + 10)
	for i := 0; i < ndc && dec.Err() == nil; i++ {
		c, err := decodeConn(dec, e)
		if err != nil {
			return err
		}
		if old, ok := e.ctxs[c.ctx]; ok {
			e.dropConnState(old)
		}
		ck, _ := c.key.Canonical()
		if old, ok := e.conns[ck]; ok {
			e.dropConnState(old)
		}
		e.conns[ck] = c
		e.ctxs[c.ctx] = c
	}
	return dec.Err()
}

// dropConnState removes a connection during delta replay, releasing its
// reassembly budget, without events or counter updates (counters arrive in
// the record's meta section).
func (e *Engine) dropConnState(c *conn) {
	c.origStream.Discard()
	c.respStream.Discard()
	ck, _ := c.key.Canonical()
	delete(e.conns, ck)
	delete(e.ctxs, c.ctx)
}

func (e *Engine) applyInterpDeltas(dec *snapshot.Decoder) error {
	ng := dec.Len(6)
	for i := 0; i < ng && dec.Err() == nil; i++ {
		name := dec.String()
		mode := dec.U8()
		body := dec.Bytes()
		if dec.Err() != nil {
			break
		}
		switch mode {
		case deltaWhole:
			sub := snapshot.NewRawDecoder(body)
			v := decodeVal(sub, e.interp, 0)
			if err := sub.Err(); err != nil {
				return err
			}
			if v != nil || !isFuncGlobal(e.interp.Globals[name]) {
				e.interp.Globals[name] = v
			}
		case deltaTableDiff:
			t, ok := e.interp.Globals[name].(*TableVal)
			if !ok {
				return fmt.Errorf("bro: delta table diff for non-table global %q", name)
			}
			if err := applyTableDiff(t, body, e.interp); err != nil {
				return err
			}
		default:
			return fmt.Errorf("bro: unknown interp delta mode %d", mode)
		}
	}
	return dec.Err()
}

func applyTableDiff(t *TableVal, body []byte, ip *Interp) error {
	sub := snapshot.NewRawDecoder(body)
	ndel := sub.Len(4)
	for i := 0; i < ndel && sub.Err() == nil; i++ {
		ks := sub.String()
		if en, ok := t.entries[ks]; ok {
			en.deleted = true
			delete(t.entries, ks)
		}
	}
	nup := sub.Len(4)
	for i := 0; i < nup && sub.Err() == nil; i++ {
		blob := sub.Bytes()
		if sub.Err() != nil {
			break
		}
		ed := snapshot.NewRawDecoder(blob)
		nk := int(ed.U16())
		if ed.Err() != nil || nk > ed.Remaining() {
			return fmt.Errorf("bro: implausible delta table key width %d", nk)
		}
		key := make([]Val, nk)
		for j := range key {
			key[j] = decodeVal(ed, ip, 1)
		}
		yield := decodeVal(ed, ip, 1)
		touched := ed.I64()
		if err := ed.Err(); err != nil {
			return err
		}
		ks := KeyString(key)
		if en, ok := t.entries[ks]; ok {
			en.key, en.yield, en.touched = key, yield, touched
			continue
		}
		en := &tableEntry{key: key, keyStr: ks, yield: yield, touched: touched}
		t.entries[ks] = en
		t.order = append(t.order, en)
	}
	return sub.Err()
}

func (e *Engine) applyExecDeltas(dec *snapshot.Decoder, which int) error {
	had := dec.Bool()
	if dec.Err() != nil {
		return dec.Err()
	}
	globals := execOf(e, which)
	if had != (globals != nil) {
		return fmt.Errorf("bro: delta/config executor mismatch")
	}
	if globals == nil {
		return nil
	}
	mgr := execTM(e, which)
	mgr.SetNow(timer.Time(dec.I64()))
	ng := dec.Len(9)
	for i := 0; i < ng && dec.Err() == nil; i++ {
		idx := int(dec.U32())
		mode := dec.U8()
		body := dec.Bytes()
		if dec.Err() != nil {
			break
		}
		if idx < 0 || idx >= len(globals) {
			return fmt.Errorf("bro: delta references VM global %d of %d", idx, len(globals))
		}
		switch mode {
		case deltaWhole:
			sub := snapshot.NewRawDecoder(body, snapshot.WithTimerMgr(mgr))
			v := sub.Value()
			if err := sub.Err(); err != nil {
				return err
			}
			globals[idx] = v
		case deltaJournal:
			if err := applyJournalOps(globals[idx], body, mgr); err != nil {
				return fmt.Errorf("bro: VM global %d: %w", idx, err)
			}
		default:
			return fmt.Errorf("bro: unknown exec delta mode %d", mode)
		}
	}
	return dec.Err()
}

func applyJournalOps(v values.Value, body []byte, mgr *timer.Mgr) error {
	sub := snapshot.NewRawDecoder(body, snapshot.WithTimerMgr(mgr))
	n := sub.Len(1)
	for i := 0; i < n && sub.Err() == nil; i++ {
		op := container.JournalOp(sub.U8())
		key := sub.Value()
		val := sub.Value()
		lastUse := timer.Time(sub.I64())
		if sub.Err() != nil {
			break
		}
		switch o := v.O.(type) {
		case *container.Map:
			switch op {
			case container.JournalInsert:
				o.InsertRestored(key, val, lastUse)
			case container.JournalRemove:
				o.Remove(key)
			case container.JournalTouch:
				o.TouchRestored(key, lastUse)
			default:
				return fmt.Errorf("unknown journal op %d", op)
			}
		case *container.Set:
			switch op {
			case container.JournalInsert:
				o.InsertRestored(key, lastUse)
			case container.JournalRemove:
				o.Remove(key)
			case container.JournalTouch:
				o.TouchRestored(key, lastUse)
			default:
				return fmt.Errorf("unknown journal op %d", op)
			}
		default:
			return fmt.Errorf("journal ops target non-container value %s", v.K)
		}
	}
	return sub.Err()
}

// RestoreEngineWAL rebuilds an engine from a full snapshot plus the WAL
// segments written since, replaying each delta record in order. Damage in
// the final segment is treated as a crash-truncated tail (the restore
// lands on the last intact record); damage in an earlier segment is an
// error. The restored engine is not yet in WAL mode — call Checkpoint +
// ResetDeltaBase to resume appending.
func RestoreEngineWAL(cfg Config, snap []byte, segs [][]byte) (*Engine, error) {
	e, err := RestoreEngine(cfg, bytes.NewReader(snap))
	if err != nil {
		return nil, err
	}
	if _, err := wal.ReplayTolerant(segs, func(kind byte, payload []byte) error {
		if kind != DeltaRecord {
			return fmt.Errorf("bro: unexpected WAL record kind %d", kind)
		}
		return e.ApplyDelta(payload)
	}); err != nil {
		return nil, err
	}
	return e, nil
}
