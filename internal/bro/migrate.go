// Per-flow state extraction for live migration: the engine side of the
// elastic-cluster handoff (internal/rt/migrate + internal/pkt/pipeline).
// A flow's analyzer state is the connection record (encodeConn) *plus*
// the script-visible state the interpreter keeps for it — HTTP pipelines
// a `table[string] of vector` keyed by the connection uid, DNS a
// `table[string, count]` whose first index is the uid. Migrating the
// connection without those entries would split a session's script state
// across instances and diverge its logs, so ExtractFlow ships both.
//
// The per-flow predicate is structural: a table entry belongs to a flow
// when its first index is a string equal to the connection's uid. The uid
// is derived deterministically from the canonical 5-tuple and the flow's
// start time (flow.UID), so it names the same flow on every instance.
//
// Scope: per-flow extraction supports the interpreter script backend
// only. Compiled scripts (ScriptExec "hilti") keep their state in VM
// globals that this code cannot attribute to individual flows; ExtractFlow
// refuses rather than migrating a flow while silently leaving half its
// state behind. All methods run on the engine's owning worker goroutine,
// like every other Engine entry point.
package bro

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"

	"hilti/internal/pkt/flow"
	"hilti/internal/rt/snapshot"
)

// MigratableFlows enumerates every open connection's canonical flow key,
// ordered by connection age (ctx ascending) for determinism. Together
// with ExtractFlow/InjectFlow/ForgetFlow/HasFlow this implements the
// pipeline's MigratableHandler contract.
func (e *Engine) MigratableFlows() []flow.Key {
	open := make([]*conn, 0, len(e.conns))
	for _, c := range e.conns {
		open = append(open, c)
	}
	sort.Slice(open, func(i, j int) bool { return open[i].ctx < open[j].ctx })
	out := make([]flow.Key, len(open))
	for i, c := range open {
		out[i] = c.key
	}
	return out
}

// ExtractFlow serializes one flow's complete analyzer state — connection
// blob plus the uid-keyed script table entries — without removing
// anything: the source keeps ownership until the handoff commits. A
// connection holding suspended BinPAC++ fiber state is not serializable
// (same limit as Checkpoint); the caller skips or aborts that flow's
// migration and retries after the parse completes.
func (e *Engine) ExtractFlow(key flow.Key) ([]byte, error) {
	if e.sexec != nil {
		return nil, errors.New("bro: per-flow migration requires the interpreter script backend")
	}
	ck, _ := key.Canonical()
	c, ok := e.conns[ck]
	if !ok {
		return nil, fmt.Errorf("bro: no connection for migrating flow")
	}
	if c.inFlightParse() {
		return nil, fmt.Errorf("bro: connection %s holds in-flight parse state", c.uid)
	}
	var cb bytes.Buffer
	cenc := snapshot.NewRawEncoder(&cb)
	encodeConn(cenc, c)
	if err := cenc.Err(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := snapshot.NewRawEncoder(&buf)
	enc.Bytes(cb.Bytes())
	entries := e.flowScriptEntries(c.uid)
	enc.U32(uint32(len(entries)))
	for _, fe := range entries {
		enc.String(fe.global)
		enc.Bytes(fe.blob)
	}
	if err := enc.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// InjectFlow installs a shipped flow. The connection gets a fresh local
// ctx (ctx is instance-local; the uid is the cross-instance identity),
// its script entries land in the target's globals with their expiry
// clocks (`touched`) preserved, and the whole install is counter-neutral:
// the flow was opened on its first instance and closes on its last. A
// flow already present is a double-ownership violation and fails the
// install.
func (e *Engine) InjectFlow(blob []byte) (flow.Key, error) {
	if e.sexec != nil {
		return flow.Key{}, errors.New("bro: per-flow migration requires the interpreter script backend")
	}
	dec := snapshot.NewRawDecoder(blob)
	cb := dec.Bytes()
	if err := dec.Err(); err != nil {
		return flow.Key{}, err
	}
	sub := snapshot.NewRawDecoder(cb)
	c, err := decodeConn(sub, e)
	if err != nil {
		return flow.Key{}, err
	}
	ck, _ := c.key.Canonical()
	if old, ok := e.conns[ck]; ok {
		return flow.Key{}, fmt.Errorf("bro: flow %s already present (double ownership)", old.uid)
	}
	c.ctx = e.nextCtx
	e.nextCtx++
	e.conns[ck] = c
	e.ctxs[c.ctx] = c
	n := dec.Len(5)
	for i := 0; i < n && dec.Err() == nil; i++ {
		name := dec.String()
		eb := dec.Bytes()
		if dec.Err() != nil {
			break
		}
		t, ok := e.interp.Globals[name].(*TableVal)
		if !ok {
			return flow.Key{}, fmt.Errorf("bro: migrated entry for non-table global %q", name)
		}
		if err := installTableEntry(t, eb, e.interp); err != nil {
			return flow.Key{}, err
		}
	}
	if err := dec.Err(); err != nil {
		return flow.Key{}, err
	}
	e.markConnDirty(c)
	if e.delta != nil {
		e.delta.dirtyInterp = true
	}
	return ck, nil
}

// ForgetFlow releases a flow after a committed handoff: connection state
// and uid-keyed script entries go, with no events, no log lines, and no
// counter movement — the flow now lives elsewhere and will close there.
func (e *Engine) ForgetFlow(key flow.Key) bool {
	ck, _ := key.Canonical()
	c, ok := e.conns[ck]
	if !ok {
		return false
	}
	e.dropConnState(c)
	e.dropFlowScriptState(c.uid)
	e.markConnClosed(c)
	if e.delta != nil {
		e.delta.dirtyInterp = true
	}
	return true
}

// HasFlow reports whether the engine holds a connection for the flow.
func (e *Engine) HasFlow(key flow.Key) bool {
	ck, _ := key.Canonical()
	_, ok := e.conns[ck]
	return ok
}

// flowEntry is one uid-keyed script table entry, encoded in the WAL
// codec's per-entry layout (keys, yield, touched).
type flowEntry struct {
	global string
	blob   []byte
}

func entryMatchesUID(en *tableEntry, uid string) bool {
	if len(en.key) == 0 {
		return false
	}
	s, ok := en.key[0].(StringVal)
	return ok && string(s) == uid
}

// flowScriptEntries collects the flow's entries across all interpreter
// table globals, deterministically (globals sorted by name, entries in
// table insertion order).
func (e *Engine) flowScriptEntries(uid string) []flowEntry {
	names := make([]string, 0, len(e.interp.Globals))
	for name, v := range e.interp.Globals {
		if _, ok := v.(*TableVal); ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []flowEntry
	for _, name := range names {
		t := e.interp.Globals[name].(*TableVal)
		for _, en := range t.order {
			if en.deleted || !entryMatchesUID(en, uid) {
				continue
			}
			var buf bytes.Buffer
			enc := snapshot.NewRawEncoder(&buf)
			enc.U16(uint16(len(en.key)))
			for _, k := range en.key {
				encodeVal(enc, k, 1)
			}
			encodeVal(enc, en.yield, 1)
			enc.I64(en.touched)
			if enc.Err() != nil {
				continue // unencodable entry: degrade like Checkpoint does
			}
			out = append(out, flowEntry{global: name, blob: buf.Bytes()})
		}
	}
	return out
}

// dropFlowScriptState deletes every uid-keyed entry from every table
// global, returning whether anything was removed.
func (e *Engine) dropFlowScriptState(uid string) bool {
	changed := false
	for _, v := range e.interp.Globals {
		t, ok := v.(*TableVal)
		if !ok {
			continue
		}
		for _, en := range t.order {
			if !en.deleted && entryMatchesUID(en, uid) {
				en.deleted = true
				delete(t.entries, en.keyStr)
				changed = true
			}
		}
	}
	return changed
}

// installTableEntry decodes one per-entry blob (the tableEntryBlobs /
// ExtractFlow layout) and upserts it, preserving the recorded touch time
// so &create_expire / &read_expire fire exactly as they would have
// without the migration.
func installTableEntry(t *TableVal, blob []byte, ip *Interp) error {
	ed := snapshot.NewRawDecoder(blob)
	nk := int(ed.U16())
	if ed.Err() != nil || nk > ed.Remaining() {
		return fmt.Errorf("bro: implausible migrated table key width %d", nk)
	}
	key := make([]Val, nk)
	for j := range key {
		key[j] = decodeVal(ed, ip, 1)
	}
	yield := decodeVal(ed, ip, 1)
	touched := ed.I64()
	if err := ed.Err(); err != nil {
		return err
	}
	ks := KeyString(key)
	if en, ok := t.entries[ks]; ok {
		en.key, en.yield, en.touched = key, yield, touched
		return nil
	}
	en := &tableEntry{key: key, keyStr: ks, yield: yield, touched: touched}
	t.entries[ks] = en
	t.order = append(t.order, en)
	return nil
}

// --- per-flow delta filtering --------------------------------------------------

// ErrUnfilterable reports a delta record whose per-flow slice cannot be
// isolated — a table global was rewritten whole (initial emission or an
// order-changing mutation), so entry-level attribution is lost. The
// caller falls back to shipping a fresh full extract instead of the tail.
var ErrUnfilterable = errors.New("bro: delta record not filterable per-flow")

// FlowDeltaFilter projects engine delta records (AppendDelta payloads)
// down to one flow: uid-keyed table-diff entries, the flow's dirty
// connection re-encodes, and its close tombstone. Everything engine-global
// — counters, clocks, log tails, VM globals, other flows — is dropped, so
// applying the result on the target moves exactly one flow's state and
// nothing else. The filter is stateful: connection records carry the
// instance-local ctx, so the filter learns the flow's ctx ids from the
// seeded pre-copy blob and from dirty records in the stream, and uses
// them to recognize the close tombstone (which is a bare ctx).
type FlowDeltaFilter struct {
	uid  string
	ctxs map[int64]bool
}

// NewFlowDeltaFilter creates a filter for the flow identified by uid.
func NewFlowDeltaFilter(uid string) *FlowDeltaFilter {
	return &FlowDeltaFilter{uid: uid, ctxs: map[int64]bool{}}
}

// SeedConnBlob registers the flow's source-side ctx from an ExtractFlow
// blob (the pre-copy state shipped when the handoff session opened).
func (f *FlowDeltaFilter) SeedConnBlob(blob []byte) error {
	dec := snapshot.NewRawDecoder(blob)
	cb := dec.Bytes()
	if err := dec.Err(); err != nil {
		return err
	}
	sub := snapshot.NewRawDecoder(cb)
	uid, ctx := skimConn(sub)
	if err := sub.Err(); err != nil {
		return err
	}
	if uid != f.uid {
		return fmt.Errorf("bro: seeded blob is flow %s, filter is %s", uid, f.uid)
	}
	f.ctxs[ctx] = true
	return nil
}

// uidKeyMatch reports whether a canonical table key string's first
// component is the string uid.
func (f *FlowDeltaFilter) uidKeyMatch(ks string) bool {
	pfx := "string\x00" + f.uid
	return ks == pfx || strings.HasPrefix(ks, pfx+"\x01")
}

// Filter projects one AppendDelta record. It returns nil when the record
// carries nothing for the flow, and ErrUnfilterable when attribution is
// impossible (whole-table rewrite).
func (f *FlowDeltaFilter) Filter(record []byte) ([]byte, error) {
	dec := snapshot.NewRawDecoder(record)

	// Meta: clocks, counters, log watermark — engine-global, dropped.
	dec.I64() // now
	dec.I64() // nextCtx
	for i := 0; i < 8; i++ {
		dec.U64()
	}
	// Quarantine marks travel with the pipeline slice, not the delta tail.
	nq := dec.Len(10)
	for i := 0; i < nq && dec.Err() == nil; i++ {
		dec.U64()
		dec.Bool()
		dec.U64()
	}
	// Log tails: the source's logs stay the source's; the cluster merges
	// streams at collection time.
	ns := dec.Len(8)
	for i := 0; i < ns && dec.Err() == nil; i++ {
		_ = dec.String()
		nl := dec.Len(4)
		for j := 0; j < nl && dec.Err() == nil; j++ {
			_ = dec.String()
		}
	}

	// Interpreter globals: keep uid-keyed diff entries.
	type tableOut struct {
		name string
		dels []string
		ups  [][]byte
	}
	var tables []tableOut
	ng := dec.Len(6)
	for i := 0; i < ng && dec.Err() == nil; i++ {
		name := dec.String()
		mode := dec.U8()
		body := dec.Bytes()
		if dec.Err() != nil {
			break
		}
		switch mode {
		case deltaTableDiff:
			sub := snapshot.NewRawDecoder(body)
			to := tableOut{name: name}
			ndel := sub.Len(4)
			for j := 0; j < ndel && sub.Err() == nil; j++ {
				ks := sub.String()
				if f.uidKeyMatch(ks) {
					to.dels = append(to.dels, ks)
				}
			}
			nup := sub.Len(4)
			for j := 0; j < nup && sub.Err() == nil; j++ {
				eb := sub.Bytes()
				if sub.Err() != nil {
					break
				}
				if uid, ok := entryBlobUID(eb); ok && uid == f.uid {
					to.ups = append(to.ups, eb)
				}
			}
			if err := sub.Err(); err != nil {
				return nil, err
			}
			if len(to.dels) > 0 || len(to.ups) > 0 {
				tables = append(tables, to)
			}
		case deltaWhole:
			// A whole-value rewrite of a table global loses entry-level
			// attribution; a non-table global is engine-wide by definition.
			if len(body) > 0 && body[0] == valTable {
				return nil, ErrUnfilterable
			}
		default:
			return nil, fmt.Errorf("bro: unknown interp delta mode %d", mode)
		}
	}

	// VM executor sections: engine-global (and absent under the backends
	// per-flow migration supports); skipped structurally.
	for w := 0; w < 2; w++ {
		if !dec.Bool() {
			continue
		}
		dec.I64()
		nx := dec.Len(6)
		for i := 0; i < nx && dec.Err() == nil; i++ {
			dec.U32()
			dec.U8()
			dec.Bytes()
		}
	}

	// Close tombstones: bare ctx ids; ours are the ones we have learned.
	closed := false
	ncl := dec.Len(8)
	for i := 0; i < ncl && dec.Err() == nil; i++ {
		if f.ctxs[dec.I64()] {
			closed = true
		}
	}

	// Dirty connections: whole re-encodes; match by uid, learn the ctx.
	var connRaw []byte
	ndc := dec.Len(keyBytes + 10)
	for i := 0; i < ndc && dec.Err() == nil; i++ {
		startRem := dec.Remaining()
		uid, ctx := skimConn(dec)
		if dec.Err() != nil {
			break
		}
		if uid == f.uid {
			f.ctxs[ctx] = true
			span := record[len(record)-startRem : len(record)-dec.Remaining()]
			connRaw = bytes.Clone(span)
		}
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if len(tables) == 0 && !closed && connRaw == nil {
		return nil, nil
	}

	var buf bytes.Buffer
	enc := snapshot.NewRawEncoder(&buf)
	enc.String(f.uid)
	enc.U32(uint32(len(tables)))
	for _, to := range tables {
		enc.String(to.name)
		enc.U32(uint32(len(to.dels)))
		for _, ks := range to.dels {
			enc.String(ks)
		}
		enc.U32(uint32(len(to.ups)))
		for _, eb := range to.ups {
			enc.Bytes(eb)
		}
	}
	enc.Bool(closed)
	enc.Bool(connRaw != nil)
	if connRaw != nil {
		enc.Raw(connRaw)
	}
	if err := enc.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// entryBlobUID peeks a per-entry blob's first key: (uid, true) when it is
// a string, without decoding the rest of the entry.
func entryBlobUID(blob []byte) (string, bool) {
	dec := snapshot.NewRawDecoder(blob)
	if nk := dec.U16(); dec.Err() != nil || nk == 0 {
		return "", false
	}
	if tag := dec.U8(); dec.Err() != nil || tag != valString {
		return "", false
	}
	s := dec.String()
	return s, dec.Err() == nil
}

// skimConn advances dec past one encodeConn record without building
// analyzers, returning the embedded uid and ctx.
func skimConn(dec *snapshot.Decoder) (uid string, ctx int64) {
	dec.Bytes() // flow key
	uid = dec.String()
	ctx = dec.I64()
	flags := dec.U8()
	if flags&cfRec != 0 {
		dec.I64() // start time
	}
	skimStream(dec)
	skimStream(dec)
	if flags&cfStd != 0 {
		skimHTTPDir(dec)
		skimHTTPDir(dec)
		skimStrings(dec)
	}
	skimStrings(dec)
	return uid, ctx
}

func skimStream(dec *snapshot.Decoder) {
	dec.Bool() // initialized
	dec.U32()  // ISN
	dec.U64()  // next
	dec.U64()  // finRel
	dec.Bool() // finSeen
	dec.Bool() // closed
	n := dec.Len(12)
	for i := 0; i < n && dec.Err() == nil; i++ {
		dec.U64()
		dec.Bytes()
	}
}

func skimHTTPDir(dec *snapshot.Decoder) {
	dec.Bytes()      // buf
	dec.U8()         // state
	dec.I64()        // remain
	_ = dec.String() // ctype
	dec.Bytes()      // body
	dec.Bool()       // hasBody
	dec.Bool()       // isHead
	dec.I64()        // status
}

func skimStrings(dec *snapshot.Decoder) {
	n := dec.Len(4)
	for i := 0; i < n && dec.Err() == nil; i++ {
		_ = dec.String()
	}
}

// FlowBlobUID peeks the connection uid out of an ExtractFlow blob without
// decoding analyzer state; the cluster uses it to key the delta filter it
// builds for each pre-copied flow.
func FlowBlobUID(blob []byte) (string, error) {
	dec := snapshot.NewRawDecoder(blob)
	cb := dec.Bytes()
	if err := dec.Err(); err != nil {
		return "", err
	}
	sub := snapshot.NewRawDecoder(cb)
	uid, _ := skimConn(sub)
	return uid, sub.Err()
}

// ApplyFlowDelta replays one filtered record onto this engine, moving
// exactly the named flow: table-diff entries apply by canonical key, a
// dirty connection re-encode replaces the flow's connection (keeping the
// target-local ctx stable), and the close tombstone drops it. Counters,
// clocks, and logs never move — the record does not carry them. The
// first result reports whether the record closed the flow, so the caller
// can keep its net-live accounting exact.
func (e *Engine) ApplyFlowDelta(data []byte) (bool, error) {
	if e.sexec != nil {
		return false, errors.New("bro: per-flow migration requires the interpreter script backend")
	}
	dec := snapshot.NewRawDecoder(data)
	uid := dec.String()
	nt := dec.Len(9)
	for i := 0; i < nt && dec.Err() == nil; i++ {
		name := dec.String()
		t, ok := e.interp.Globals[name].(*TableVal)
		if dec.Err() == nil && !ok {
			return false, fmt.Errorf("bro: flow delta for non-table global %q", name)
		}
		ndel := dec.Len(4)
		for j := 0; j < ndel && dec.Err() == nil; j++ {
			ks := dec.String()
			if en, ok := t.entries[ks]; ok {
				en.deleted = true
				delete(t.entries, ks)
			}
		}
		nup := dec.Len(4)
		for j := 0; j < nup && dec.Err() == nil; j++ {
			eb := dec.Bytes()
			if dec.Err() != nil {
				break
			}
			if err := installTableEntry(t, eb, e.interp); err != nil {
				return false, err
			}
		}
	}
	closed := dec.Bool()
	hasConn := dec.Bool()
	if err := dec.Err(); err != nil {
		return false, err
	}
	if hasConn {
		c, err := decodeConn(dec, e)
		if err != nil {
			return false, err
		}
		ck, _ := c.key.Canonical()
		if old, ok := e.conns[ck]; ok {
			c.ctx = old.ctx // keep the target-local identity stable
			e.dropConnState(old)
		} else {
			c.ctx = e.nextCtx
			e.nextCtx++
		}
		e.conns[ck] = c
		e.ctxs[c.ctx] = c
		e.markConnDirty(c)
	}
	dropped := false
	if closed {
		for _, c := range e.conns {
			if c.uid == uid {
				e.dropConnState(c)
				e.markConnClosed(c)
				dropped = true
				break
			}
		}
		e.dropFlowScriptState(uid)
	}
	if e.delta != nil && (nt > 0 || closed) {
		e.delta.dirtyInterp = true
	}
	return dropped, dec.Err()
}
