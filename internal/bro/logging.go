// The logging framework: named streams with fixed column orders producing
// Bro-style tab-separated logs (http.log, files.log, dns.log — the files
// the paper's Tables 2 and 3 diff). Lines are accumulated in memory for
// the comparison harness and optionally written to disk.

package bro

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hilti/internal/rt/metrics"
)

// LogSet manages the output streams.
type LogSet struct {
	streams map[string]*logStream
	// Discard computes lines but drops them — the paper's methodology for
	// performance runs ("Bro still performs the same computation but skips
	// the final write operation").
	Discard bool
	// written counts every Write, including discarded ones, atomically so
	// a metrics scrape can read it while the engine's worker writes. It is
	// checkpointed: restored engines continue the count.
	written metrics.Counter
}

type logStream struct {
	name    string
	columns []string
	lines   []string
}

// NewLogSet creates the standard streams.
func NewLogSet() *LogSet {
	ls := &LogSet{streams: map[string]*logStream{}}
	ls.Create("http", []string{"ts", "uid", "orig_h", "orig_p", "resp_h", "resp_p",
		"method", "host", "uri", "version", "status_code", "reason", "resp_mime", "resp_len"})
	ls.Create("files", []string{"ts", "uid", "mime", "sha1", "len"})
	ls.Create("dns", []string{"ts", "uid", "orig_h", "orig_p", "resp_h", "resp_p",
		"trans_id", "query", "qtype", "qtype_name", "rcode", "rcode_name", "answers", "ttls"})
	return ls
}

// Create registers a stream with its column order.
func (ls *LogSet) Create(name string, columns []string) {
	ls.streams[name] = &logStream{name: name, columns: columns}
}

// Write formats one record into its stream.
func (ls *LogSet) Write(stream string, rec *RecordVal) {
	st, ok := ls.streams[stream]
	if !ok {
		st = &logStream{name: stream}
		ls.streams[stream] = st
	}
	cols := st.columns
	if cols == nil {
		cols = rec.T.Fields
	}
	parts := make([]string, len(cols))
	for i, c := range cols {
		v := rec.Get(c)
		if v == nil {
			parts[i] = "-"
		} else {
			parts[i] = v.Render()
		}
	}
	line := strings.Join(parts, "\t")
	ls.written.Inc()
	if !ls.Discard {
		st.lines = append(st.lines, line)
	}
}

// Written returns the total number of log records written (whether kept or
// discarded) since the engine started or was restored.
func (ls *LogSet) Written() uint64 { return ls.written.Load() }

// Lines returns a stream's raw lines.
func (ls *LogSet) Lines(stream string) []string {
	if st, ok := ls.streams[stream]; ok {
		return st.lines
	}
	return nil
}

// WriteFiles writes each stream to dir/<name>.log with a header line.
func (ls *LogSet) WriteFiles(dir string) error {
	for name, st := range ls.streams {
		f, err := os.Create(filepath.Join(dir, name+".log"))
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "#fields\t%s\n", strings.Join(st.columns, "\t"))
		for _, l := range st.lines {
			fmt.Fprintln(f, l)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// --- Table 2/3 comparison machinery -------------------------------------------

// Normalize applies the paper's §6.4 normalization: entries are unique'd
// and sorted, so timing/ordering differences do not count as mismatches.
func Normalize(lines []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range lines {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// Agreement is one row of Table 2 / Table 3.
type Agreement struct {
	Stream         string
	TotalA, TotalB int
	NormA, NormB   int
	Identical      int
	IdenticalFrac  float64
}

// CompareLogs computes the agreement between two runs' log streams: the
// fraction of run A's normalized entries that have an identical entry in
// run B.
func CompareLogs(stream string, a, b []string) Agreement {
	na, nb := Normalize(a), Normalize(b)
	inB := make(map[string]bool, len(nb))
	for _, l := range nb {
		inB[l] = true
	}
	same := 0
	for _, l := range na {
		if inB[l] {
			same++
		}
	}
	frac := 1.0
	if len(na) > 0 {
		frac = float64(same) / float64(len(na))
	}
	return Agreement{
		Stream: stream,
		TotalA: len(a), TotalB: len(b),
		NormA: len(na), NormB: len(nb),
		Identical:     same,
		IdenticalFrac: frac,
	}
}
