// Package bro implements a miniature but complete Bro-style NIDS host
// application — the paper's fourth exemplar's host (§4 "Bro Script
// Compiler") and the driver of its evaluation (§6): connection management
// over pcap input, protocol analyzers (hand-written "standard" parsers in
// internal/analyzers, or BinPAC++/HILTI parsers), an event engine, a
// Bro-like scripting language with both a tree-walking interpreter (the
// baseline) and a compiler to HILTI, a logging framework writing http.log
// / files.log / dns.log, and the Val<->HILTI glue layer whose cost Figure
// 9/10 accounts separately.
//
// This file defines the interpreter's value representation. Like Bro, the
// engine represents script values as instances of a Val class hierarchy
// that the rest of the system also passes around — which is exactly why
// the paper's plugin needs conversion glue at every HILTI boundary (§5
// "Bro Interface").
package bro

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hilti/internal/rt/values"
)

// Val is a Bro script value.
type Val interface {
	TypeName() string
	Render() string // log/print representation
}

// BoolVal is a boolean.
type BoolVal bool

// CountVal is an unsigned count.
type CountVal uint64

// IntVal is a signed integer.
type IntVal int64

// DoubleVal is a floating-point number.
type DoubleVal float64

// StringVal is a string.
type StringVal string

// AddrVal is an IP address (wrapping the runtime addr representation).
type AddrVal struct{ A values.Value }

// SubnetVal is a CIDR subnet.
type SubnetVal struct{ N values.Value }

// PortVal is a transport port.
type PortVal struct {
	Num   uint16
	Proto uint8
}

// TimeVal is an absolute time in ns.
type TimeVal int64

// IntervalVal is a duration in ns.
type IntervalVal int64

// EnumVal is an enum label.
type EnumVal struct{ Name string }

// TypeName implementations.
func (BoolVal) TypeName() string     { return "bool" }
func (CountVal) TypeName() string    { return "count" }
func (IntVal) TypeName() string      { return "int" }
func (DoubleVal) TypeName() string   { return "double" }
func (StringVal) TypeName() string   { return "string" }
func (AddrVal) TypeName() string     { return "addr" }
func (SubnetVal) TypeName() string   { return "subnet" }
func (PortVal) TypeName() string     { return "port" }
func (TimeVal) TypeName() string     { return "time" }
func (IntervalVal) TypeName() string { return "interval" }
func (EnumVal) TypeName() string     { return "enum" }

// Render implementations (Bro-log style).
func (v BoolVal) Render() string {
	if v {
		return "T"
	}
	return "F"
}
func (v CountVal) Render() string  { return strconv.FormatUint(uint64(v), 10) }
func (v IntVal) Render() string    { return strconv.FormatInt(int64(v), 10) }
func (v DoubleVal) Render() string { return strconv.FormatFloat(float64(v), 'f', 6, 64) }
func (v StringVal) Render() string { return string(v) }
func (v AddrVal) Render() string   { return values.Format(v.A) }
func (v SubnetVal) Render() string { return values.Format(v.N) }
func (v PortVal) Render() string {
	return strconv.Itoa(int(v.Num)) + "/" + protoName(v.Proto)
}
func (v TimeVal) Render() string {
	return strconv.FormatFloat(float64(v)/1e9, 'f', 6, 64)
}
func (v IntervalVal) Render() string {
	return strconv.FormatFloat(float64(v)/1e9, 'f', 6, 64)
}
func (v EnumVal) Render() string { return v.Name }

func protoName(p uint8) string {
	switch p {
	case values.ProtoTCP:
		return "tcp"
	case values.ProtoUDP:
		return "udp"
	case values.ProtoICMP:
		return "icmp"
	default:
		return "unknown"
	}
}

// RecordType describes a record's fields.
type RecordType struct {
	Name   string
	Fields []string
	index  map[string]int
}

// NewRecordType builds a record type.
func NewRecordType(name string, fields ...string) *RecordType {
	rt := &RecordType{Name: name, Fields: fields, index: map[string]int{}}
	for i, f := range fields {
		rt.index[f] = i
	}
	return rt
}

// Index returns the field index or -1.
func (rt *RecordType) Index(name string) int {
	if i, ok := rt.index[name]; ok {
		return i
	}
	return -1
}

// RecordVal is a record instance; unset fields are nil.
type RecordVal struct {
	T *RecordType
	F []Val
}

// NewRecord instantiates an empty record.
func NewRecord(t *RecordType) *RecordVal {
	return &RecordVal{T: t, F: make([]Val, len(t.Fields))}
}

// TypeName implements Val.
func (r *RecordVal) TypeName() string { return r.T.Name }

// Get returns a field by name (nil when unset or unknown).
func (r *RecordVal) Get(name string) Val {
	if i := r.T.Index(name); i >= 0 {
		return r.F[i]
	}
	return nil
}

// Set assigns a field by name.
func (r *RecordVal) Set(name string, v Val) {
	if i := r.T.Index(name); i >= 0 {
		r.F[i] = v
	}
}

// Render implements Val.
func (r *RecordVal) Render() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, f := range r.T.Fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(f)
		sb.WriteByte('=')
		if r.F[i] == nil {
			sb.WriteString("<unset>")
		} else {
			sb.WriteString(r.F[i].Render())
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// TableVal is a Bro table or set (sets have nil yields). Entries keep
// insertion order for deterministic iteration; expiration follows the
// &create_expire / &read_expire attributes, driven by network time.
type TableVal struct {
	IsSet   bool
	entries map[string]*tableEntry
	order   []*tableEntry

	ExpireInterval int64 // ns; 0 = no expiration
	ExpireOnRead   bool  // &read_expire vs &create_expire
}

type tableEntry struct {
	key     []Val
	keyStr  string
	yield   Val
	touched int64
	deleted bool
}

// NewTable creates a table (or set).
func NewTable(isSet bool) *TableVal {
	return &TableVal{IsSet: isSet, entries: map[string]*tableEntry{}}
}

// TypeName implements Val.
func (t *TableVal) TypeName() string {
	if t.IsSet {
		return "set"
	}
	return "table"
}

// KeyString canonicalizes an index tuple.
func KeyString(key []Val) string {
	parts := make([]string, len(key))
	for i, k := range key {
		parts[i] = k.TypeName() + "\x00" + k.Render()
	}
	return strings.Join(parts, "\x01")
}

// expire drops stale entries (called on access with current network time).
func (t *TableVal) expire(now int64) {
	if t.ExpireInterval <= 0 {
		return
	}
	for k, e := range t.entries {
		if now-e.touched >= t.ExpireInterval {
			e.deleted = true
			delete(t.entries, k)
		}
	}
}

// Put inserts or updates an entry.
func (t *TableVal) Put(now int64, key []Val, yield Val) {
	t.expire(now)
	ks := KeyString(key)
	if e, ok := t.entries[ks]; ok {
		e.yield = yield
		e.touched = now
		return
	}
	e := &tableEntry{key: key, keyStr: ks, yield: yield, touched: now}
	t.entries[ks] = e
	t.order = append(t.order, e)
	if len(t.order) > 2*len(t.entries)+16 {
		live := t.order[:0]
		for _, oe := range t.order {
			if !oe.deleted {
				live = append(live, oe)
			}
		}
		t.order = live
	}
}

// Get looks up an entry.
func (t *TableVal) Get(now int64, key []Val) (Val, bool) {
	t.expire(now)
	e, ok := t.entries[KeyString(key)]
	if !ok {
		return nil, false
	}
	if t.ExpireOnRead {
		e.touched = now
	}
	return e.yield, true
}

// Has reports membership.
func (t *TableVal) Has(now int64, key []Val) bool {
	_, ok := t.Get(now, key)
	return ok
}

// Delete removes an entry.
func (t *TableVal) Delete(now int64, key []Val) {
	ks := KeyString(key)
	if e, ok := t.entries[ks]; ok {
		e.deleted = true
		delete(t.entries, ks)
	}
}

// Len returns the number of live entries.
func (t *TableVal) Len() int { return len(t.entries) }

// Each iterates live entries in insertion order.
func (t *TableVal) Each(fn func(key []Val, yield Val) bool) {
	for _, e := range t.order {
		if e.deleted {
			continue
		}
		if !fn(e.key, e.yield) {
			return
		}
	}
}

// Render implements Val.
func (t *TableVal) Render() string {
	var parts []string
	t.Each(func(key []Val, yield Val) bool {
		ks := make([]string, len(key))
		for i, k := range key {
			ks[i] = k.Render()
		}
		s := strings.Join(ks, ",")
		if !t.IsSet && yield != nil {
			s += " -> " + yield.Render()
		}
		parts = append(parts, s)
		return true
	})
	return "{" + strings.Join(parts, ", ") + "}"
}

// SortedKeys returns rendered keys in sorted order (used for normalized
// log output of set-typed columns).
func (t *TableVal) SortedKeys() []string {
	var out []string
	t.Each(func(key []Val, _ Val) bool {
		ks := make([]string, len(key))
		for i, k := range key {
			ks[i] = k.Render()
		}
		out = append(out, strings.Join(ks, ","))
		return true
	})
	sort.Strings(out)
	return out
}

// VectorVal is a growable vector.
type VectorVal struct{ Elems []Val }

// TypeName implements Val.
func (*VectorVal) TypeName() string { return "vector" }

// Render implements Val.
func (v *VectorVal) Render() string {
	parts := make([]string, len(v.Elems))
	for i, e := range v.Elems {
		if e == nil {
			parts[i] = "<unset>"
		} else {
			parts[i] = e.Render()
		}
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// FuncVal is a script function reference.
type FuncVal struct {
	Name string
	Decl *FuncDecl
}

// TypeName implements Val.
func (*FuncVal) TypeName() string { return "func" }

// Render implements Val.
func (f *FuncVal) Render() string { return f.Name }

// Equal compares two Vals for the == operator and table keys.
func Equal(a, b Val) bool {
	switch x := a.(type) {
	case AddrVal:
		y, ok := b.(AddrVal)
		return ok && values.Equal(x.A, y.A)
	case SubnetVal:
		y, ok := b.(SubnetVal)
		return ok && values.Equal(x.N, y.N)
	default:
		if a == nil || b == nil {
			return a == b
		}
		return a.TypeName() == b.TypeName() && a.Render() == b.Render()
	}
}

// errVal formats a runtime type error.
func errVal(op string, v Val) error {
	return fmt.Errorf("bro: invalid operand for %s: %s", op, v.TypeName())
}
