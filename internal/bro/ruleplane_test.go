package bro

import (
	"testing"

	"hilti/internal/pkt/flow"
	"hilti/internal/pkt/pcap"
	"hilti/internal/rt/ruleplane"
	"hilti/internal/rt/values"
)

// gateClientSubnet builds a single gate program that drops traffic whose
// source lies in 10.1.3.0/24 — a deterministic slice of the generators'
// client pool.
func gateClientSubnet() []ruleplane.Program {
	net := values.MustParseNet("10.1.3.0/24")
	return []ruleplane.Program{{
		Name:    "gate",
		Gate:    true,
		Rules:   []ruleplane.Rule{{Src: []ruleplane.AddrPred{ruleplane.AddrInNet(net)}, Verdict: 0}},
		Default: 1,
	}}
}

// filterPkts applies the programs' gate decision to a trace with the
// linear reference evaluator — the test's independent oracle for what a
// gated engine should have seen.
func filterPkts(progs []ruleplane.Program, pkts []pcap.Packet) []pcap.Packet {
	lin := ruleplane.NewLinear(progs)
	v := make([]int64, lin.NumPrograms())
	m := make([]int32, lin.NumPrograms())
	var out []pcap.Packet
	for _, pk := range pkts {
		if key, ok := flow.FromFrame(pk.Data); ok {
			h := ruleplane.HeaderFrom16(key.SrcIP, key.DstIP, key.Proto, key.SrcPort, key.DstPort)
			lin.Eval(&h, v, m)
			if lin.GateDrop(v) {
				continue
			}
		}
		out = append(out, pk)
	}
	return out
}

// TestEngineRulePlaneGate: an engine hosting a gate program produces
// byte-identical logs to an ungated engine fed the pre-filtered trace —
// the in-path gate and the linear oracle agree packet for packet.
func TestEngineRulePlaneGate(t *testing.T) {
	pkts := mergedTrace(t)
	progs := gateClientSubnet()
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true}

	plane, err := ruleplane.New(progs)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := cfg
	gcfg.RulePlane = plane
	gated, err := NewEngine(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	gated.ProcessTrace(pkts)

	kept := filterPkts(progs, pkts)
	if len(kept) == len(pkts) {
		t.Fatal("gate matched nothing; trace/rule mismatch")
	}
	base, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base.ProcessTrace(kept)

	if got, want := gated.PlaneDropped(), uint64(len(pkts)-len(kept)); got != want {
		t.Fatalf("PlaneDropped = %d, want %d", got, want)
	}
	for _, stream := range []string{"http", "files", "dns"} {
		got := SortedLines(gated, stream)
		want := SortedLines(base, stream)
		if len(got) != len(want) {
			t.Fatalf("%s.log: %d lines gated, %d pre-filtered", stream, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s.log line %d differs:\n  got  %q\n  want %q", stream, i, got[i], want[i])
			}
		}
	}
}

// TestParallelHoistsRulePlane: NewParallelWith lifts cfg.RulePlane to the
// pipeline ingress — worker engines never evaluate it — and the sharded
// result still matches the pre-filtered single-engine baseline.
func TestParallelHoistsRulePlane(t *testing.T) {
	pkts := mergedTrace(t)
	progs := gateClientSubnet()
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true}

	plane, err := ruleplane.New(progs)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := cfg
	gcfg.RulePlane = plane
	par, err := NewParallel(gcfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.RulePlane() != plane {
		t.Fatal("Parallel did not hoist the rule plane to its pipeline")
	}
	par.ProcessTrace(pkts)

	kept := filterPkts(progs, pkts)
	if got, want := par.PlaneDropped(), uint64(len(pkts)-len(kept)); got != want {
		t.Fatalf("pipeline PlaneDropped = %d, want %d", got, want)
	}
	for _, e := range par.Engines {
		if e.PlaneDropped() != 0 {
			t.Fatal("worker engine evaluated the plane; it must be hoisted to ingress")
		}
	}

	base, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base.ProcessTrace(kept)
	for _, stream := range []string{"http", "files", "dns"} {
		got := par.MergedLines(stream)
		want := SortedLines(base, stream)
		if len(got) != len(want) {
			t.Fatalf("%s.log: %d lines parallel, %d baseline", stream, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s.log line %d differs:\n  got  %q\n  want %q", stream, i, got[i], want[i])
			}
		}
	}
}
