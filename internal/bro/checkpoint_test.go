package bro

import (
	"bytes"
	"testing"

	"hilti/internal/pkt/pcap"
)

// killRestoreEqual runs the crash-only equivalence check for one
// configuration: process a prefix of the trace, checkpoint, throw the
// engine away, restore a fresh one from the checkpoint, process the rest,
// and require byte-identical logs and event counts versus an
// uninterrupted run.
func killRestoreEqual(t *testing.T, cfg Config, pkts []pcap.Packet, streams []string, cut int) {
	t.Helper()

	baseline, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline.ProcessTrace(pkts)

	first, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cut; i++ {
		first.SafeProcessPacket(pkts[i].Time.UnixNano(), pkts[i].Data)
	}
	var buf bytes.Buffer
	if err := first.Checkpoint(&buf); err != nil {
		t.Fatalf("checkpoint at packet %d: %v", cut, err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty checkpoint")
	}

	resumed, err := RestoreEngine(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	for i := cut; i < len(pkts); i++ {
		resumed.SafeProcessPacket(pkts[i].Time.UnixNano(), pkts[i].Data)
	}
	resumed.Finish()

	if got, want := resumed.events.Load(), baseline.events.Load(); got != want {
		t.Errorf("cut=%d: %d events, uninterrupted run had %d", cut, got, want)
	}
	for _, stream := range streams {
		want := baseline.Logs.Lines(stream)
		got := resumed.Logs.Lines(stream)
		if len(got) != len(want) {
			t.Errorf("cut=%d, %s.log: %d lines, want %d", cut, stream, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("cut=%d, %s.log line %d differs:\n  got  %q\n  want %q",
					cut, stream, i, got[i], want[i])
				break
			}
		}
	}
}

// TestCheckpointRestoreEquivalence: kill-at-N + restore must reproduce the
// uninterrupted run byte-for-byte, at cut points that land mid-connection
// (reassembly and HTTP parser state in flight).
func TestCheckpointRestoreEquivalence(t *testing.T) {
	pkts := mergedTrace(t)
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true}
	for _, cut := range []int{1, len(pkts) / 3, 2 * len(pkts) / 3, len(pkts) - 1} {
		killRestoreEqual(t, cfg, pkts, []string{"http", "files", "dns"}, cut)
	}
}

// TestCheckpointRestoreEquivalenceHilti is the same check with the
// compiled-script backend, exercising the VM-global sub-snapshot path
// (container state lives in rt values, timers in the VM's GlobalTM).
func TestCheckpointRestoreEquivalenceHilti(t *testing.T) {
	pkts := mergedTrace(t)
	cfg := Config{Parser: "standard", ScriptExec: "hilti",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true}
	for _, cut := range []int{len(pkts) / 3, 2 * len(pkts) / 3} {
		killRestoreEqual(t, cfg, pkts, []string{"http", "files", "dns"}, cut)
	}
}

// TestCheckpointChains: checkpoint → restore → checkpoint again → restore
// again. State that survives one hop but rots on the second (e.g. timer
// re-arming or type identity) shows up here.
func TestCheckpointChains(t *testing.T) {
	pkts := mergedTrace(t)
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true}

	baseline, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline.ProcessTrace(pkts)

	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{len(pkts) / 4, len(pkts) / 2, 3 * len(pkts) / 4, len(pkts)}
	prev := 0
	for _, cut := range cuts {
		for i := prev; i < cut; i++ {
			e.SafeProcessPacket(pkts[i].Time.UnixNano(), pkts[i].Data)
		}
		prev = cut
		if cut == len(pkts) {
			break
		}
		var buf bytes.Buffer
		if err := e.Checkpoint(&buf); err != nil {
			t.Fatalf("checkpoint at %d: %v", cut, err)
		}
		if e, err = RestoreEngine(cfg, bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("restore at %d: %v", cut, err)
		}
	}
	e.Finish()
	for _, stream := range []string{"http", "files", "dns"} {
		want := baseline.Logs.Lines(stream)
		got := e.Logs.Lines(stream)
		if len(got) != len(want) {
			t.Fatalf("%s.log: %d lines, want %d", stream, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s.log line %d differs after chained restores", stream, i)
			}
		}
	}
}

// TestRestoreRejectsCorruptInput: arbitrary mutations of a valid
// checkpoint must produce errors, never panics or silently wrong engines
// that crash later.
func TestRestoreRejectsCorruptInput(t *testing.T) {
	pkts := mergedTrace(t)
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pkts)/2; i++ {
		e.SafeProcessPacket(pkts[i].Time.UnixNano(), pkts[i].Data)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Truncations at every 97th boundary (cheap full sweep).
	for n := 0; n < len(data); n += 97 {
		if _, err := RestoreEngine(cfg, bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Single-byte corruptions sprinkled through the buffer. Some flips only
	// alter payload bytes (log text, literal values) and legitimately
	// decode; the requirement is no panic and no decode past the end.
	for pos := 0; pos < len(data); pos += 131 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0xFF
		_, _ = RestoreEngine(cfg, bytes.NewReader(mut))
	}
}

// TestCheckpointRestoreMismatch: restoring under a different backend
// configuration must fail loudly, not mis-decode.
func TestCheckpointRestoreMismatch(t *testing.T) {
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{DNSScript}, Quiet: true}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.ScriptExec = "hilti"
	if _, err := RestoreEngine(other, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("backend mismatch accepted")
	}
}
