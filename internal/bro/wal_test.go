package bro

import (
	"bytes"
	"testing"

	"hilti/internal/pkt/pcap"
	"hilti/internal/rt/wal"
)

// walRun drives an engine in WAL mode: `base` packets, then a full
// checkpoint (the base snapshot), then one delta record per packet into a
// wal.Log. Returns the snapshot, the log, and the still-live engine.
func walRun(t *testing.T, cfg Config, pkts []pcap.Packet, base, segBytes int) ([]byte, *wal.Log, *Engine) {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < base; i++ {
		e.SafeProcessPacket(pkts[i].Time.UnixNano(), pkts[i].Data)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatalf("base checkpoint: %v", err)
	}
	if err := e.ResetDeltaBase(); err != nil {
		t.Fatal(err)
	}
	log := wal.NewLog(segBytes)
	for i := base; i < len(pkts); i++ {
		e.SafeProcessPacket(pkts[i].Time.UnixNano(), pkts[i].Data)
		rec, err := e.AppendDelta()
		if err != nil {
			t.Fatalf("AppendDelta after packet %d: %v", i, err)
		}
		if err := log.Append(DeltaRecord, rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), log, e
}

func checkpointBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return buf.Bytes()
}

// referenceEngine runs a fresh engine over the first n packets — the
// state a WAL restore landing at packet n must reproduce byte-for-byte.
func referenceEngine(t *testing.T, cfg Config, pkts []pcap.Packet, n int) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e.SafeProcessPacket(pkts[i].Time.UnixNano(), pkts[i].Data)
	}
	return e
}

// TestWALRestoreFullEquivalence: base snapshot + replay of every delta
// record must land on exactly the live engine's state — checkpoint bytes
// identical, and identical logs after finishing both.
func TestWALRestoreFullEquivalence(t *testing.T) {
	pkts := mergedTrace(t)
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true}
	snap, log, live := walRun(t, cfg, pkts, len(pkts)/4, 4096)
	if len(log.Segments()) < 2 {
		t.Fatalf("want multiple WAL segments, got %d", len(log.Segments()))
	}

	restored, err := RestoreEngineWAL(cfg, snap, log.Segments())
	if err != nil {
		t.Fatalf("RestoreEngineWAL: %v", err)
	}
	if got, want := restored.Packets(), live.Packets(); got != want {
		t.Fatalf("restored engine at %d packets, live at %d", got, want)
	}
	if !bytes.Equal(checkpointBytes(t, restored), checkpointBytes(t, live)) {
		t.Error("restored checkpoint differs from live engine checkpoint")
	}

	live.Finish()
	restored.Finish()
	for _, stream := range []string{"http", "files", "dns"} {
		want := live.Logs.Lines(stream)
		got := restored.Logs.Lines(stream)
		if len(got) != len(want) {
			t.Errorf("%s.log: %d lines, want %d", stream, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s.log line %d differs:\n  got  %q\n  want %q", stream, i, got[i], want[i])
				break
			}
		}
	}
}

// TestWALRestoreMidSegmentCuts: truncating the final segment at an
// arbitrary byte offset — including mid-record — must restore to the last
// intact record's packet boundary, byte-identical to a fresh run over that
// prefix, and refeeding the remainder must reproduce the uninterrupted run.
func TestWALRestoreMidSegmentCuts(t *testing.T) {
	pkts := mergedTrace(t)
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true}

	baseline, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline.ProcessTrace(pkts)

	base := len(pkts) / 4
	snap, log, _ := walRun(t, cfg, pkts, base, 4096)
	segs := log.Segments()
	last := segs[len(segs)-1]

	for _, cut := range []int{7, len(last) / 3, len(last) / 2, len(last) - 3} {
		cutSegs := make([][]byte, len(segs))
		copy(cutSegs, segs)
		cutSegs[len(segs)-1] = last[:cut]

		restored, err := RestoreEngineWAL(cfg, snap, cutSegs)
		if err != nil {
			t.Fatalf("cut=%d: RestoreEngineWAL: %v", cut, err)
		}
		n := int(restored.Packets())
		if n < base || n > len(pkts) {
			t.Fatalf("cut=%d: restored to implausible packet count %d (base %d, trace %d)",
				cut, n, base, len(pkts))
		}
		if !bytes.Equal(checkpointBytes(t, restored), checkpointBytes(t, referenceEngine(t, cfg, pkts, n))) {
			t.Errorf("cut=%d: restored state at packet %d differs from straight run", cut, n)
		}

		for i := n; i < len(pkts); i++ {
			restored.SafeProcessPacket(pkts[i].Time.UnixNano(), pkts[i].Data)
		}
		restored.Finish()
		if got, want := restored.events.Load(), baseline.events.Load(); got != want {
			t.Errorf("cut=%d: %d events after refeed, uninterrupted run had %d", cut, got, want)
		}
		for _, stream := range []string{"http", "files", "dns"} {
			want := baseline.Logs.Lines(stream)
			got := restored.Logs.Lines(stream)
			if len(got) != len(want) {
				t.Errorf("cut=%d, %s.log: %d lines, want %d", cut, stream, len(got), len(want))
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("cut=%d, %s.log line %d differs:\n  got  %q\n  want %q",
						cut, stream, i, got[i], want[i])
					break
				}
			}
		}
	}
}

// TestWALReplayDeterminism: two restores from the same snapshot and
// segments must produce byte-identical engines.
func TestWALReplayDeterminism(t *testing.T) {
	pkts := mergedTrace(t)
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true}
	snap, log, _ := walRun(t, cfg, pkts, len(pkts)/3, 8192)

	a, err := RestoreEngineWAL(cfg, snap, log.Segments())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RestoreEngineWAL(cfg, snap, log.Segments())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(checkpointBytes(t, a), checkpointBytes(t, b)) {
		t.Error("two replays of the same WAL produced different engines")
	}
}

// TestWALRestoreHilti runs the compiled-script backend with the paper's
// Figure 8(a) tracking script, whose set[addr] global exercises the
// container journal path (scalar keys, per-op records).
func TestWALRestoreHilti(t *testing.T) {
	pkts := mergedTrace(t)
	cfg := Config{Parser: "standard", ScriptExec: "hilti",
		Scripts: []string{HTTPScript, FilesScript, DNSScript, TrackScript}, Quiet: true}
	snap, log, live := walRun(t, cfg, pkts, len(pkts)/4, 4096)

	restored, err := RestoreEngineWAL(cfg, snap, log.Segments())
	if err != nil {
		t.Fatalf("RestoreEngineWAL: %v", err)
	}
	if !bytes.Equal(checkpointBytes(t, restored), checkpointBytes(t, live)) {
		t.Error("restored checkpoint differs from live engine checkpoint (hilti backend)")
	}

	segs := log.Segments()
	last := segs[len(segs)-1]
	for _, cut := range []int{len(last) / 2, len(last) - 2} {
		cutSegs := make([][]byte, len(segs))
		copy(cutSegs, segs)
		cutSegs[len(segs)-1] = last[:cut]
		restored, err := RestoreEngineWAL(cfg, snap, cutSegs)
		if err != nil {
			t.Fatalf("cut=%d: RestoreEngineWAL: %v", cut, err)
		}
		n := int(restored.Packets())
		if !bytes.Equal(checkpointBytes(t, restored), checkpointBytes(t, referenceEngine(t, cfg, pkts, n))) {
			t.Errorf("cut=%d: restored state at packet %d differs from straight run (hilti backend)", cut, n)
		}
	}
}

// TestWALRebase: a mid-run full checkpoint plus log reset (segment
// truncation) must leave the snapshot+log pair restoring to the same state
// as before — the rotation path engines use to bound replay length.
func TestWALRebase(t *testing.T) {
	pkts := mergedTrace(t)
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true}

	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := e.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	if err := e.ResetDeltaBase(); err != nil {
		t.Fatal(err)
	}
	log := wal.NewLog(4096)
	rebaseAt := len(pkts) / 2
	for i, p := range pkts {
		e.SafeProcessPacket(p.Time.UnixNano(), p.Data)
		rec, err := e.AppendDelta()
		if err != nil {
			t.Fatalf("AppendDelta after packet %d: %v", i, err)
		}
		if err := log.Append(DeltaRecord, rec); err != nil {
			t.Fatal(err)
		}
		if i == rebaseAt {
			snap.Reset()
			if err := e.Checkpoint(&snap); err != nil {
				t.Fatalf("rebase checkpoint: %v", err)
			}
			if err := e.ResetDeltaBase(); err != nil {
				t.Fatal(err)
			}
			log.Reset()
		}
	}

	restored, err := RestoreEngineWAL(cfg, snap.Bytes(), log.Segments())
	if err != nil {
		t.Fatalf("RestoreEngineWAL after rebase: %v", err)
	}
	if !bytes.Equal(checkpointBytes(t, restored), checkpointBytes(t, e)) {
		t.Error("restore from rebased snapshot+log differs from live engine")
	}
}

// TestWALCorruptSegmentRejected: damage in a non-final segment is not a
// crash-truncated tail — restore must fail cleanly, never panic, and a
// record of an unknown kind must be rejected.
func TestWALCorruptSegmentRejected(t *testing.T) {
	pkts := mergedTrace(t)
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true}
	snap, log, _ := walRun(t, cfg, pkts, len(pkts)/4, 4096)
	segs := log.Segments()
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %d", len(segs))
	}

	corrupt := make([][]byte, len(segs))
	copy(corrupt, segs)
	bad := append([]byte(nil), segs[0]...)
	bad[len(bad)/2] ^= 0xff
	corrupt[0] = bad
	if _, err := RestoreEngineWAL(cfg, snap, corrupt); err == nil {
		t.Error("restore accepted a corrupt frozen segment")
	}

	alien := wal.NewLog(0)
	if err := alien.Append(99, []byte("not a delta")); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreEngineWAL(cfg, snap, alien.Segments()); err == nil {
		t.Error("restore accepted a record of unknown kind")
	}
}
