// The engine: trace-driven connection management and analyzer dispatch —
// the part of Bro that feeds parsers and routes their events into script
// execution. It supports the full 2x2 of the paper's evaluation:
//
//	parsers: "standard" (hand-written, internal/analyzers)
//	         "binpac"   (BinPAC++ grammars compiled to HILTI)
//	scripts: "interp"   (tree-walking interpreter)
//	         "hilti"    (scripts compiled to HILTI)
//
// Per-component timing (protocol parsing, script execution, HILTI-to-Bro
// glue, other) reproduces Figure 9/10's instrumentation: parsing pauses
// while events dispatch, glue conversions are charged to their own
// profiler, and "other" is the remainder of total processing time.

package bro

import (
	"errors"
	"fmt"
	"time"

	"hilti/internal/analyzers"
	"hilti/internal/binpac/grammars"
	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/hilti/vm"
	"hilti/internal/pkt/flow"
	"hilti/internal/pkt/layers"
	"hilti/internal/pkt/pcap"
	"hilti/internal/pkt/reassembly"
	"hilti/internal/rt/fault"
	"hilti/internal/rt/hbytes"
	"hilti/internal/rt/metrics"
	"hilti/internal/rt/profiler"
	"hilti/internal/rt/ruleplane"
	"hilti/internal/rt/timer"
	"hilti/internal/rt/values"
)

// Config selects the engine's parser and script backends.
type Config struct {
	Parser      string // "standard" or "binpac"
	ScriptExec  string // "interp" or "hilti"
	Scripts     []string
	DiscardLogs bool
	DNSWholePDU bool // ablation: parse DNS messages without a fiber
	Quiet       bool // suppress script print output

	// Resource governance (zero values = unlimited).
	ScriptLimits vm.Limits // budgets for compiled-script hook invocations
	ParseLimits  vm.Limits // budgets for binpac parser invocations
	// ReassemblyBudget caps out-of-order reassembly bytes across all of
	// this engine's flows (0 = per-direction bound only).
	ReassemblyBudget int64
	// SharedReassembly, when set, overrides ReassemblyBudget with a budget
	// shared across engines (the parallel pipeline sets this so the cap is
	// global, not per-worker).
	SharedReassembly *reassembly.Budget

	// Fault injection (testing/experiments). Flows touching PanicPort get
	// an analyzer that panics on delivery; flows touching LoopPort get a
	// HILTI analyzer that busy-loops until its instruction budget raises
	// ResourceExhausted; flows touching StallPort get an analyzer that
	// blocks its goroutine forever — the hang the pipeline's supervisor
	// (pipeline.Config.StallTimeout) must detect and recover from.
	PanicPort uint16
	LoopPort  uint16
	StallPort uint16

	// RulePlane, when set, gates packets through the shared match-action
	// automaton (rt/ruleplane) inside ProcessPacket: after the L3/L4
	// decode, before any flow or analyzer state is touched, a packet any
	// gate program rejects is dropped and counted (PlaneDropped). This is
	// the single-engine hosting; the parallel pipeline hoists the plane to
	// its ingress instead (one evaluation per packet, not per worker) and
	// leaves the per-engine field nil.
	RulePlane *ruleplane.Plane

	// Metrics, when set, publishes the engine's counters (flows
	// opened/closed, packets, events, parse errors, faults, log lines),
	// its component profilers, any HILTI-program profilers
	// (profiler.start/stop/update), and its VMs' execution counters to the
	// registry. Several engines may share one registry; their series sum.
	Metrics *metrics.Registry
	// MetricsKey distinguishes this engine's collector registration (and
	// its "worker" label) when several engines share a registry; the
	// parallel host sets it to the worker index. A restored engine
	// re-registering under the same key replaces its predecessor, which is
	// what keeps counters continuous across crash-only restarts. Default
	// "0".
	MetricsKey string
}

// Stats reports per-component processing time (the Figure 9/10 split) and
// the fault-containment ledger.
type Stats struct {
	Parsing  time.Duration
	Script   time.Duration
	Glue     time.Duration
	Total    time.Duration
	Other    time.Duration
	Packets  int
	Events   int
	ParseErr int

	Faults            int // panics contained at engine boundaries
	BudgetBlown       int // ResourceExhausted raised by budgeted VM work
	Quarantined       int // flows quarantined by the single-threaded path
	QuarantineDropped int // packets dropped because their flow was quarantined
}

// Engine processes packets through parsers, events, and scripts.
type Engine struct {
	cfg    Config
	Logs   *LogSet
	interp *Interp
	sexec  *vm.Exec // compiled scripts
	pexec  *vm.Exec // binpac parsers
	glue   *Glue

	profParse  *profiler.Profiler
	profScript *profiler.Profiler
	profGlue   *profiler.Profiler
	inParse    int
	total      time.Duration

	now     int64
	conns   map[flow.Key]*conn
	ctxs    map[int64]*conn
	nextCtx int64

	// Event/flow counters are atomic (metrics.Counter) so a metrics scrape
	// can read them from another goroutine while the engine runs; the
	// engine itself is still single-threaded. All of them are checkpointed,
	// so counts continue monotonically across a crash-only restore.
	packets     metrics.Counter
	events      metrics.Counter
	parseErrs   metrics.Counter
	flowsOpened metrics.Counter // connections created (TCP + UDP)
	flowsClosed metrics.Counter // connections closed or zapped

	faults      *fault.Recorder
	budgetBlown metrics.Counter
	quarantined map[uint64]uint64 // faulted flow hash -> packets dropped since
	quarDropped metrics.Counter
	reasm       *reassembly.Budget
	loopExec    *vm.Exec           // lazily built LoopPort injection analyzer
	profs       *profiler.Registry // parsing/script/glue component profilers

	httpReqStruct, httpRepStruct *values.StructDef
	out                          printWriter

	// delta, when non-nil, tracks which state changed since the last WAL
	// flush (see wal.go). Nil outside WAL mode: the mark helpers are then
	// no-ops, so the non-incremental paths pay nothing.
	delta *deltaState

	planeVerdicts []int64         // scratch for cfg.RulePlane evaluation
	planeDropped  metrics.Counter // packets a gate program dropped
}

type printWriter struct{ quiet bool }

func (w printWriter) Write(p []byte) (int, error) { return len(p), nil }

type conn struct {
	key                    flow.Key // canonical
	uid                    string
	rec                    *RecordVal
	ctx                    int64
	isTCP                  bool
	started                bool
	closed                 bool
	origSYN                bool
	respSYN                bool
	origStream, respStream reassembly.Stream

	std *analyzers.HTTPParser

	// binpac per-direction parse state.
	origRope, respRope *hbytes.Bytes
	origRun, respRun   *vm.Resumable
	origDead, respDead bool
	methods            []string // outstanding request methods (HEAD logic)
}

// NewEngine builds an engine for the configuration.
func NewEngine(cfg Config) (*Engine, error) {
	e := &Engine{
		cfg:         cfg,
		Logs:        NewLogSet(),
		conns:       map[flow.Key]*conn{},
		ctxs:        map[int64]*conn{},
		faults:      fault.NewRecorder(0),
		quarantined: map[uint64]uint64{},
	}
	if cfg.SharedReassembly != nil {
		e.reasm = cfg.SharedReassembly
	} else if cfg.ReassemblyBudget > 0 {
		e.reasm = reassembly.NewBudget(cfg.ReassemblyBudget)
	}
	if cfg.RulePlane != nil {
		e.planeVerdicts = make([]int64, cfg.RulePlane.NumPrograms())
	}
	e.Logs.Discard = cfg.DiscardLogs
	e.profs = profiler.NewRegistry()
	e.profParse = e.profs.Get("parsing")
	e.profScript = e.profs.Get("script")
	e.profGlue = e.profs.Get("glue")
	e.glue = NewGlue(e.profGlue)

	var parsed []*Script
	for _, src := range cfg.Scripts {
		s, err := ParseScript(src)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, s)
	}

	e.interp = NewInterp()
	e.interp.Now = func() int64 { return e.now }
	e.interp.LogWrite = e.Logs.Write
	if cfg.Quiet {
		e.interp.Out = printWriter{}
	}
	for _, s := range parsed {
		if err := e.interp.Load(s); err != nil {
			return nil, err
		}
	}

	if cfg.ScriptExec == "hilti" {
		mod, err := CompileScripts(parsed...)
		if err != nil {
			return nil, err
		}
		prog, err := vm.Link(mod)
		if err != nil {
			return nil, err
		}
		e.sexec, err = vm.NewExec(prog)
		if err != nil {
			return nil, err
		}
		if cfg.Quiet {
			e.sexec.Out = printWriter{}
		}
		RegisterHostFns(e.sexec, func() int64 { return e.now }, e.Logs.Write, e.glue)
		if _, err := e.sexec.Call("BroScripts::__init_globals"); err != nil {
			return nil, err
		}
		// Budget hook invocations only; globals init above runs unbounded.
		e.sexec.Limits = cfg.ScriptLimits
	}

	if cfg.Parser == "binpac" {
		if err := e.initBinpac(); err != nil {
			return nil, err
		}
	}
	e.registerMetrics()
	return e, nil
}

func (e *Engine) initBinpac() error {
	httpMods, err := grammars.HTTPModules()
	if err != nil {
		return err
	}
	dnsMods, err := grammars.DNSModules()
	if err != nil {
		return err
	}
	var all []*ast.Module
	all = append(all, httpMods...)
	all = append(all, dnsMods...)
	prog, err := vm.Link(all...)
	if err != nil {
		return err
	}
	e.pexec, err = vm.NewExec(prog)
	if err != nil {
		return err
	}
	e.pexec.Limits = e.cfg.ParseLimits
	e.httpReqStruct = findStruct(httpMods, "Requests")
	e.httpRepStruct = findStruct(httpMods, "Replies")
	e.registerBinpacHost()
	return nil
}

func findStruct(mods []*ast.Module, name string) *values.StructDef {
	for _, m := range mods {
		if t, ok := m.Types[name]; ok && t.StructDef != nil {
			return t.StructDef.Runtime()
		}
	}
	return nil
}

// pauseParse suspends parse accounting while events run.
func (e *Engine) pauseParse() {
	if e.inParse > 0 {
		e.profParse.Stop()
	}
}

func (e *Engine) resumeParse() {
	if e.inParse > 0 {
		e.profParse.Start()
	}
}

// dispatch routes an event into the configured script backend. It is a
// containment boundary: a panic in glue conversion or a script handler is
// converted into a recorded fault, aborting only this event — the flow and
// the engine keep processing.
func (e *Engine) dispatch(name string, args ...Val) {
	e.events.Inc()
	e.pauseParse()
	defer e.resumeParse()
	if f := fault.Catch("event:"+name, func() { e.dispatchRaw(name, args...) }); f != nil {
		f.TsNs = e.now
		e.faults.Record(f)
	}
}

func (e *Engine) dispatchRaw(name string, args ...Val) {
	if ds := e.delta; ds != nil {
		// Script handlers are the only writers of script-visible globals.
		if e.sexec != nil {
			ds.dirtyExec[0] = true
		} else {
			ds.dirtyInterp = true
		}
	}
	if e.sexec != nil {
		hargs := make([]values.Value, len(args))
		for i, a := range args {
			hargs[i] = e.glue.ToHilti(a)
		}
		e.profScript.Start()
		// Script errors abort the handler only; a blown execution budget
		// is additionally counted.
		if err := e.sexec.RunHook(name, hargs...); isExhausted(err) {
			e.budgetBlown.Inc()
		}
		e.profScript.Stop()
		return
	}
	e.profScript.Start()
	e.interp.Dispatch(name, args...) //nolint:errcheck
	e.profScript.Stop()
}

// isExhausted reports whether err is a ResourceExhausted HILTI exception.
func isExhausted(err error) bool {
	var exc *values.Exception
	return errors.As(err, &exc) && exc.Name == vm.ExcResourceExhausted
}

// ProcessTrace runs all packets of a trace through the engine and
// finalizes state.
func (e *Engine) ProcessTrace(pkts []pcap.Packet) *Stats {
	start := time.Now()
	for i := range pkts {
		e.SafeProcessPacket(pkts[i].Time.UnixNano(), pkts[i].Data)
	}
	e.Finish()
	e.total = time.Since(start)
	return e.StatsSnapshot()
}

// SafeProcessPacket is ProcessPacket behind a containment boundary: a
// panic quarantines the packet's flow (later packets are counted and
// dropped) and discards the flow's state, mirroring what the parallel
// pipeline's per-worker boundary does. ProcessPacket itself stays panicky
// so pipeline-hosted engines are contained exactly once, at the worker.
func (e *Engine) SafeProcessPacket(tsNs int64, frame []byte) {
	key, keyed := flow.FromFrame(frame)
	var vid uint64
	if keyed {
		vid = key.Hash()
	}
	if n, bad := e.quarantined[vid]; bad {
		e.quarantined[vid] = n + 1
		e.markQuar(vid)
		e.quarDropped.Inc()
		return
	}
	f := fault.Catch("packet", func() { e.ProcessPacket(tsNs, frame) })
	if f == nil {
		return
	}
	f.VID, f.TsNs = vid, tsNs
	e.faults.Record(f)
	e.quarantined[vid] = 0
	e.markQuar(vid)
	if keyed {
		if zf := fault.Catch("zap", func() { e.ZapFlow(key) }); zf != nil {
			zf.VID = vid
			e.faults.Record(zf)
		}
	}
}

// ZapFlow hard-drops a flow's connection state without running analyzer
// finalization or raising events — the cleanup path for quarantined flows,
// where normal teardown might re-trip the fault that got them quarantined.
// Satisfies pipeline.FlowZapper.
func (e *Engine) ZapFlow(key flow.Key) {
	ck, _ := key.Canonical()
	c, ok := e.conns[ck]
	if !ok {
		return
	}
	c.closed = true
	c.origStream.Discard()
	c.respStream.Discard()
	if c.origRun != nil {
		c.origRun.Abort()
	}
	if c.respRun != nil {
		c.respRun.Abort()
	}
	delete(e.conns, ck)
	delete(e.ctxs, c.ctx)
	e.flowsClosed.Inc()
	e.markConnClosed(c)
}

// Faults returns the engine's retained fault records, oldest first.
func (e *Engine) Faults() []*fault.Fault { return e.faults.Faults() }

// Reassembly returns the engine's cross-flow reassembly budget, or nil
// when unbounded.
func (e *Engine) Reassembly() *reassembly.Budget { return e.reasm }

// StatsSnapshot returns the component split.
func (e *Engine) StatsSnapshot() *Stats {
	s := &Stats{
		Parsing:  e.profParse.Total(),
		Script:   e.profScript.Total(),
		Glue:     e.profGlue.Total(),
		Total:    e.total,
		Packets:  int(e.packets.Load()),
		Events:   int(e.events.Load()),
		ParseErr: int(e.parseErrs.Load()),

		Faults:            int(e.faults.Count()),
		BudgetBlown:       int(e.budgetBlown.Load()),
		Quarantined:       len(e.quarantined),
		QuarantineDropped: int(e.quarDropped.Load()),
	}
	s.Other = s.Total - s.Parsing - s.Script - s.Glue
	if s.Other < 0 {
		s.Other = 0
	}
	return s
}

// ProcessPacket handles one link-layer frame.
func (e *Engine) ProcessPacket(tsNs int64, frame []byte) {
	e.packets.Inc()
	e.now = tsNs
	// Expire HILTI-side container state by network time.
	if e.sexec != nil {
		if e.sexec.GlobalTM.Advance(timer.Time(tsNs)) > 0 && e.delta != nil {
			e.delta.dirtyExec[0] = true // expirations mutated container globals
		}
	}
	if e.pexec != nil {
		e.pexec.GlobalTM.Advance(timer.Time(tsNs))
		if e.delta != nil {
			// Parsers mutate pexec state without raising events, so there is
			// no precise signal; mark conservatively per packet.
			e.delta.dirtyExec[1] = true
		}
	}
	eth, err := layers.DecodeEthernet(frame)
	if err != nil || eth.EtherType != layers.EtherTypeIPv4 {
		return
	}
	ip, err := layers.DecodeIPv4(eth.Payload)
	if err != nil {
		return
	}
	switch ip.Protocol {
	case layers.IPProtoTCP:
		tcp, err := layers.DecodeTCP(ip.Payload)
		if err != nil {
			return
		}
		if e.planeDrop(ip, tcp.SrcPort, tcp.DstPort) {
			return
		}
		e.tcpPacket(ip, tcp)
	case layers.IPProtoUDP:
		udp, err := layers.DecodeUDP(ip.Payload)
		if err != nil {
			return
		}
		if e.planeDrop(ip, udp.SrcPort, udp.DstPort) {
			return
		}
		e.udpPacket(ip, udp)
	}
}

// planeDrop consults the engine-hosted rule plane (nil-safe): true means
// a gate program rejected the packet, which is dropped before any flow
// state exists for it.
func (e *Engine) planeDrop(ip layers.IPv4, srcPort, dstPort uint16) bool {
	rp := e.cfg.RulePlane
	if rp == nil {
		return false
	}
	h := ruleplane.HeaderFromV4(ip.Src, ip.Dst, ip.Protocol, srcPort, dstPort)
	if _, drop := rp.Eval(&h, e.planeVerdicts); drop {
		e.planeDropped.Inc()
		return true
	}
	return false
}

// PlaneDropped reports how many packets the engine-hosted rule plane
// dropped.
func (e *Engine) PlaneDropped() uint64 { return e.planeDropped.Load() }

func (e *Engine) getConn(key flow.Key, isTCP bool) (*conn, bool) {
	ck, forward := key.Canonical()
	c, ok := e.conns[ck]
	if !ok {
		c = &conn{key: key, isTCP: isTCP, uid: flow.UID(ck, e.now), ctx: e.nextCtx}
		if isTCP && e.reasm != nil {
			c.origStream.Budget = e.reasm
			c.respStream.Budget = e.reasm
		}
		e.nextCtx++
		e.conns[ck] = c
		e.ctxs[c.ctx] = c
		e.flowsOpened.Inc()
		// The canonical direction may be the reverse of the first packet;
		// record the actual originator.
		c.key = key
		forward = true
	}
	// isOrig: does this packet travel in the originator's direction?
	isOrig := key == c.key
	_ = forward
	return c, isOrig
}

func (e *Engine) connRecord(c *conn) *RecordVal {
	if c.rec == nil {
		k := c.key
		c.rec = e.interp.MakeConn(c.uid, k.SrcAddr(), k.DstAddr(),
			PortVal{Num: k.SrcPort, Proto: k.Proto},
			PortVal{Num: k.DstPort, Proto: k.Proto}, e.now)
	}
	return c.rec
}

func (e *Engine) tcpPacket(ip layers.IPv4, tcp layers.TCP) {
	key := flow.FromIPv4(ip.Src, ip.Dst, tcp.SrcPort, tcp.DstPort, layers.IPProtoTCP)
	c, isOrig := e.getConn(key, true)
	if c.closed {
		return
	}
	e.markConnDirty(c)
	// Handshake tracking: connection_established after SYN / SYN-ACK / ACK.
	if tcp.Flags&layers.TCPSyn != 0 {
		if isOrig {
			c.origSYN = true
			c.origStream.Init(tcp.Seq)
		} else {
			c.respSYN = true
			c.respStream.Init(tcp.Seq)
		}
	}
	if !c.started && c.origSYN && c.respSYN && tcp.Flags&layers.TCPAck != 0 && isOrig {
		c.started = true
		e.dispatch("connection_established", e.connRecord(c))
	}

	if c.origStream.Deliver == nil {
		e.attachTCPAnalyzer(c)
	}

	stream := &c.respStream
	if isOrig {
		stream = &c.origStream
	}
	e.inParse++
	e.profParse.Start()
	stream.Segment(tcp.Seq, tcp.Payload, tcp.Flags&layers.TCPFin != 0)
	e.profParse.Stop()
	e.inParse--

	if tcp.Flags&layers.TCPRst != 0 || (c.origStream.Closed() && c.respStream.Closed()) {
		e.closeConn(c)
	}
}

func portMatch(key flow.Key, port uint16) bool {
	return port != 0 && (key.DstPort == port || key.SrcPort == port)
}

func (e *Engine) attachTCPAnalyzer(c *conn) {
	isHTTP := c.key.DstPort == 80 || c.key.SrcPort == 80
	// Fault-injection analyzers (experiments only; off when ports are 0).
	// They never shadow a real protocol analyzer: a clean client whose
	// ephemeral source port happens to equal an injection port must still
	// get its HTTP analyzer, or clean-flow logs would diverge.
	if !isHTTP {
		if portMatch(c.key, e.cfg.PanicPort) {
			deliver := func([]byte) { panic("injected: analyzer fault (PanicPort)") }
			c.origStream.Deliver = deliver
			c.respStream.Deliver = deliver
			return
		}
		if portMatch(c.key, e.cfg.LoopPort) {
			deliver := func([]byte) { e.runLoopAnalyzer() }
			c.origStream.Deliver = deliver
			c.respStream.Deliver = deliver
			return
		}
		if portMatch(c.key, e.cfg.StallPort) {
			// A hang no budget can catch: blocks the worker goroutine
			// forever. Only the supervisor's wall-clock watchdog helps.
			deliver := func([]byte) { select {} }
			c.origStream.Deliver = deliver
			c.respStream.Deliver = deliver
			return
		}
	}
	if e.cfg.Parser == "binpac" && isHTTP {
		e.attachBinpacHTTP(c)
	} else if isHTTP {
		c.std = analyzers.NewHTTPParser(&stdHTTPAdapter{e: e, c: c})
		c.origStream.Deliver = func(d []byte) { c.std.Deliver(true, d) }
		c.respStream.Deliver = func(d []byte) { c.std.Deliver(false, d) }
	} else {
		// No analyzer for this port: sink the data.
		c.origStream.Deliver = func([]byte) {}
		c.respStream.Deliver = func([]byte) {}
	}
}

func (e *Engine) closeConn(c *conn) {
	if c.closed {
		return
	}
	c.closed = true
	c.origStream.Flush()
	c.respStream.Flush()
	e.inParse++
	e.profParse.Start()
	if c.std != nil {
		c.std.EndOfData(true)
		c.std.EndOfData(false)
	}
	if c.origRope != nil {
		e.finishBinpacDir(c, true)
	}
	if c.respRope != nil {
		e.finishBinpacDir(c, false)
	}
	e.profParse.Stop()
	e.inParse--
	ck, _ := c.key.Canonical()
	delete(e.conns, ck)
	delete(e.ctxs, c.ctx)
	e.flowsClosed.Inc()
	e.markConnClosed(c)
}

func (e *Engine) udpPacket(ip layers.IPv4, udp layers.UDP) {
	if udp.SrcPort != 53 && udp.DstPort != 53 {
		return
	}
	key := flow.FromIPv4(ip.Src, ip.Dst, udp.SrcPort, udp.DstPort, layers.IPProtoUDP)
	c, isOrig := e.getConn(key, false)
	e.markConnDirty(c)
	if !c.started {
		c.started = true
	}
	if e.cfg.Parser == "binpac" {
		e.binpacDNSPacket(c, udp.Payload)
		return
	}
	e.inParse++
	e.profParse.Start()
	msg, err := analyzers.ParseDNS(udp.Payload)
	e.profParse.Stop()
	e.inParse--
	if err != nil {
		e.parseErrs.Inc()
		return
	}
	_ = isOrig
	e.dnsEvents(c, msg.Response, int(msg.ID), msg.Query, msg.QType, msg.Rcode, msg.Answers, msg.TTLs)
}

// dnsEvents raises dns_request/dns_response.
func (e *Engine) dnsEvents(c *conn, isResp bool, id int, query string, qtype, rcode int, answers []string, ttls []int64) {
	rec := e.connRecord(c)
	if !isResp {
		e.dispatch("dns_request", rec, CountVal(id), StringVal(query), CountVal(qtype))
		return
	}
	av := &VectorVal{}
	for _, a := range answers {
		av.Elems = append(av.Elems, StringVal(a))
	}
	tv := &VectorVal{}
	for _, t := range ttls {
		tv.Elems = append(tv.Elems, IntervalVal(t*1e9))
	}
	e.dispatch("dns_response", rec, CountVal(id), CountVal(rcode), av, tv)
}

// Finish flushes remaining connections and raises bro_done.
func (e *Engine) Finish() {
	// Copy keys first: closeConn mutates the map.
	var open []*conn
	for _, c := range e.conns {
		open = append(open, c)
	}
	for _, c := range open {
		e.closeConn(c)
	}
	e.dispatch("bro_done")
}

// --- standard-parser event adapter ---------------------------------------------

// stdHTTPAdapter converts analyzer callbacks into engine events. This path
// mirrors Bro's native parsers constructing Vals directly: no glue.
type stdHTTPAdapter struct {
	e *Engine
	c *conn
}

func (a *stdHTTPAdapter) Request(method, uri, version string) {
	a.e.dispatch("http_request", a.e.connRecord(a.c),
		StringVal(method), StringVal(uri), StringVal(version))
}

func (a *stdHTTPAdapter) Reply(version string, code int, reason string) {
	a.e.dispatch("http_reply", a.e.connRecord(a.c),
		StringVal(version), CountVal(code), StringVal(reason))
}

func (a *stdHTTPAdapter) Header(isOrig bool, name, value string) {
	a.e.dispatch("http_header", a.e.connRecord(a.c),
		BoolVal(isOrig), StringVal(name), StringVal(value))
}

func (a *stdHTTPAdapter) Body(isOrig bool, ctype, sum string, n int) {
	a.e.dispatch("http_body", a.e.connRecord(a.c),
		BoolVal(isOrig), StringVal(ctype), StringVal(sum), CountVal(n))
}

func (a *stdHTTPAdapter) MessageDone(isOrig bool) {
	a.e.dispatch("http_message_done", a.e.connRecord(a.c), BoolVal(isOrig))
}

func (a *stdHTTPAdapter) ParseError(isOrig bool, msg string) {
	a.e.parseErrs.Inc()
}

// --- fault-injection loop analyzer ---------------------------------------------

// runLoopAnalyzer models a runaway analyzer: a HILTI busy-loop on its own
// execution context whose instruction budget converts non-termination into
// a counted ResourceExhausted — the governance story end to end.
func (e *Engine) runLoopAnalyzer() {
	if e.loopExec == nil && e.initLoopExec() != nil {
		return
	}
	if _, err := e.loopExec.Call("Faulty::spin"); isExhausted(err) {
		e.budgetBlown.Inc()
	}
}

func (e *Engine) initLoopExec() error {
	b := ast.NewBuilder("Faulty")
	fb := b.Function("spin", types.VoidT)
	x := fb.Local("x", types.Int64T)
	fb.Jump("loop")
	fb.Block("loop")
	fb.Assign(x, "int.add", x, ast.IntOp(1))
	fb.Jump("loop")
	prog, err := vm.Link(b.M)
	if err != nil {
		return err
	}
	ex, err := vm.NewExec(prog)
	if err != nil {
		return err
	}
	lim := e.cfg.ParseLimits
	if lim.Instructions == 0 && lim.Deadline == 0 {
		lim = vm.Limits{Instructions: 100_000}
	}
	ex.Limits = lim
	e.loopExec = ex
	return nil
}

// Packets returns the total number of packets processed (checkpointed, so
// a restored engine reports the count as of its resume point — which is
// how WAL restore tests locate the equivalent trace prefix).
func (e *Engine) Packets() uint64 { return e.packets.Load() }

// ErrNoEngine guards misconfiguration.
var ErrNoEngine = fmt.Errorf("bro: engine not initialized")
