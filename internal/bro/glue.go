// The Val<->HILTI conversion glue (paper §5 "Bro Interface"): because the
// engine represents values as Val instances everywhere, every boundary
// crossing into or out of HILTI-compiled code converts representations.
// The paper measures this glue separately in Figures 9/10 and notes a
// tightly integrated host would avoid it; Glue wraps every conversion in a
// profiler so the evaluation harness can report the same component.

package bro

import (
	"fmt"
	"strings"

	"hilti/internal/hilti/vm"
	"hilti/internal/rt/container"
	"hilti/internal/rt/profiler"
	"hilti/internal/rt/values"
)

// Glue converts between Val and HILTI values, tracking conversion time.
type Glue struct {
	Prof    *profiler.Profiler
	rtypes  map[string]*RecordType // HILTI struct name -> record type
	Records map[string]*RecordType
}

// NewGlue creates a glue layer charging conversions to prof (may be nil).
func NewGlue(prof *profiler.Profiler) *Glue {
	return &Glue{Prof: prof, rtypes: map[string]*RecordType{}, Records: map[string]*RecordType{}}
}

func (g *Glue) start() {
	if g.Prof != nil {
		g.Prof.Start()
	}
}

func (g *Glue) stop() {
	if g.Prof != nil {
		g.Prof.Stop()
	}
}

// ToHilti converts a Val into a HILTI value.
func (g *Glue) ToHilti(v Val) values.Value {
	g.start()
	defer g.stop()
	return g.toHilti(v)
}

func (g *Glue) toHilti(v Val) values.Value {
	switch v := v.(type) {
	case nil:
		return values.Unset
	case BoolVal:
		return values.Bool(bool(v))
	case CountVal:
		return values.Int(int64(v))
	case IntVal:
		return values.Int(int64(v))
	case DoubleVal:
		return values.Double(float64(v))
	case StringVal:
		return values.String(string(v))
	case AddrVal:
		return v.A
	case SubnetVal:
		return v.N
	case PortVal:
		return values.PortVal(v.Num, v.Proto)
	case TimeVal:
		return values.TimeVal(int64(v))
	case IntervalVal:
		return values.IntervalVal(int64(v))
	case EnumVal:
		return values.String(v.Name)
	case *RecordVal:
		def := values.NewStructDef(v.T.Name, fieldDefs(v.T)...)
		s := values.NewStruct(def)
		for i, f := range v.F {
			if f != nil {
				s.Set(i, g.toHilti(f))
			}
		}
		return values.StructVal(s)
	case *VectorVal:
		vec := container.NewVector(values.Nil)
		for _, e := range v.Elems {
			vec.PushBack(g.toHilti(e))
		}
		return values.Ref(values.KindVector, vec)
	case *TableVal:
		if v.IsSet {
			set := container.NewSet()
			v.Each(func(key []Val, _ Val) bool {
				set.Insert(g.keyToHilti(key))
				return true
			})
			return values.Ref(values.KindSet, set)
		}
		m := container.NewMap()
		v.Each(func(key []Val, yield Val) bool {
			m.Insert(g.keyToHilti(key), g.toHilti(yield))
			return true
		})
		return values.Ref(values.KindMap, m)
	default:
		return values.Any(v)
	}
}

func (g *Glue) keyToHilti(key []Val) values.Value {
	if len(key) == 1 {
		return g.toHilti(key[0])
	}
	elems := make([]values.Value, len(key))
	for i, k := range key {
		elems[i] = g.toHilti(k)
	}
	return values.TupleVal(elems...)
}

func fieldDefs(rt *RecordType) []values.StructField {
	out := make([]values.StructField, len(rt.Fields))
	for i, f := range rt.Fields {
		out[i] = values.StructField{Name: f, Default: values.Unset}
	}
	return out
}

// FromHilti converts a HILTI value into a Val. Type hints come from the
// value's own kind; counts are the default integer interpretation, as
// script-facing integers are counts in the evaluation scripts.
func (g *Glue) FromHilti(v values.Value) Val {
	g.start()
	defer g.stop()
	return g.fromHilti(v)
}

func (g *Glue) fromHilti(v values.Value) Val {
	switch v.K {
	case values.KindBool:
		return BoolVal(v.AsBool())
	case values.KindInt:
		if v.AsInt() < 0 {
			return IntVal(v.AsInt())
		}
		return CountVal(v.AsInt())
	case values.KindDouble:
		return DoubleVal(v.AsDouble())
	case values.KindString:
		return StringVal(v.AsString())
	case values.KindBytes:
		return StringVal(v.AsBytes().String())
	case values.KindAddr:
		return AddrVal{A: v}
	case values.KindNet:
		return SubnetVal{N: v}
	case values.KindPort:
		num, proto := v.AsPort()
		return PortVal{Num: num, Proto: proto}
	case values.KindTime:
		return TimeVal(v.AsTimeNs())
	case values.KindInterval:
		return IntervalVal(v.AsIntervalNs())
	case values.KindStruct:
		s := v.AsStruct()
		rt, ok := g.rtypes[s.Def.Name]
		if !ok {
			names := make([]string, len(s.Def.Fields))
			for i, f := range s.Def.Fields {
				names[i] = f.Name
			}
			rt = NewRecordType(s.Def.Name, names...)
			g.rtypes[s.Def.Name] = rt
		}
		r := NewRecord(rt)
		for i := range s.Fields {
			if fv, set := s.Get(i); set {
				r.F[i] = g.fromHilti(fv)
			}
		}
		return r
	case values.KindVector:
		vec := v.O.(*container.Vector)
		out := &VectorVal{}
		vec.Each(func(e values.Value) bool {
			out.Elems = append(out.Elems, g.fromHilti(e))
			return true
		})
		return out
	case values.KindSet:
		set := v.O.(*container.Set)
		out := NewTable(true)
		set.Each(func(e values.Value) bool {
			out.Put(0, []Val{g.fromHilti(e)}, nil)
			return true
		})
		return out
	case values.KindMap:
		m := v.O.(*container.Map)
		out := NewTable(false)
		m.Each(func(k, y values.Value) bool {
			out.Put(0, []Val{g.fromHilti(k)}, g.fromHilti(y))
			return true
		})
		return out
	case values.KindTuple:
		t := v.AsTuple()
		out := &VectorVal{}
		for _, e := range t.Elems {
			out.Elems = append(out.Elems, g.fromHilti(e))
		}
		return out
	case values.KindAny:
		if bv, ok := v.O.(Val); ok {
			return bv
		}
		return nil
	default:
		return nil
	}
}

// renderHilti renders a HILTI value the way the interpreter renders the
// corresponding Val, so compiled and interpreted output are directly
// comparable (Table 3).
func renderHilti(v values.Value) string {
	switch v.K {
	case values.KindBool:
		if v.AsBool() {
			return "T"
		}
		return "F"
	case values.KindDouble:
		return DoubleVal(v.AsDouble()).Render()
	case values.KindTime:
		return TimeVal(v.AsTimeNs()).Render()
	case values.KindInterval:
		return IntervalVal(v.AsIntervalNs()).Render()
	case values.KindStruct:
		s := v.AsStruct()
		var sb strings.Builder
		sb.WriteByte('[')
		for i, f := range s.Def.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Name)
			sb.WriteByte('=')
			if fv, set := s.Get(i); set {
				sb.WriteString(renderHilti(fv))
			} else {
				sb.WriteString("<unset>")
			}
		}
		sb.WriteByte(']')
		return sb.String()
	case values.KindVector:
		vec := v.O.(*container.Vector)
		var parts []string
		vec.Each(func(e values.Value) bool {
			parts = append(parts, renderHilti(e))
			return true
		})
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return values.Format(v)
	}
}

// RegisterHostFns wires the bro_* host functions that compiled scripts
// call: printing, formatting, logging, and network time. logWrite and now
// mirror the Interp fields; out receives print lines.
func RegisterHostFns(ex *vm.Exec, now func() int64,
	logWrite func(stream string, rec *RecordVal), glue *Glue) {

	ex.RegisterHost("bro_print", func(e *vm.Exec, args []values.Value) (values.Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = renderHilti(a)
		}
		fmt.Fprintln(e.Out, strings.Join(parts, ", "))
		return values.Nil, nil
	})
	ex.RegisterHost("bro_fmt", func(e *vm.Exec, args []values.Value) (values.Value, error) {
		if len(args) == 0 {
			return values.String(""), nil
		}
		f := args[0].AsString()
		rest := args[1:]
		var sb strings.Builder
		ai := 0
		for i := 0; i < len(f); i++ {
			if f[i] != '%' || i+1 >= len(f) {
				sb.WriteByte(f[i])
				continue
			}
			i++
			if f[i] == '%' {
				sb.WriteByte('%')
				continue
			}
			if ai < len(rest) {
				if rest[ai].K == values.KindUnset {
					sb.WriteString("-")
				} else {
					sb.WriteString(renderHilti(rest[ai]))
				}
				ai++
			}
		}
		return values.String(sb.String()), nil
	})
	ex.RegisterHost("bro_cat", func(e *vm.Exec, args []values.Value) (values.Value, error) {
		var sb strings.Builder
		for _, a := range args {
			sb.WriteString(renderHilti(a))
		}
		return values.String(sb.String()), nil
	})
	ex.RegisterHost("bro_network_time", func(e *vm.Exec, args []values.Value) (values.Value, error) {
		return values.TimeVal(now()), nil
	})
	ex.RegisterHost("bro_log_write", func(e *vm.Exec, args []values.Value) (values.Value, error) {
		if logWrite == nil || len(args) != 2 {
			return values.Nil, nil
		}
		stream := args[0].AsString()
		rec, ok := glue.FromHilti(args[1]).(*RecordVal)
		if !ok {
			return values.Nil, fmt.Errorf("bro_log_write: not a record")
		}
		logWrite(stream, rec)
		return values.Nil, nil
	})
}
