package bro

import (
	"sort"
	"testing"

	"hilti/internal/pkt/gen"
	"hilti/internal/pkt/pcap"
)

func mergedTrace(t *testing.T) []pcap.Packet {
	t.Helper()
	hc := gen.DefaultHTTPConfig()
	hc.Sessions = 60
	dc := gen.DefaultDNSConfig()
	dc.Transactions = 400
	pkts := append(gen.GenerateHTTP(hc), gen.GenerateDNS(dc)...)
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].Time.Before(pkts[j].Time) })
	return pkts
}

// TestParallelMatchesSingleThreaded: the flow-sharded pipeline must
// produce byte-identical logs and event counts to one engine processing
// the same trace serially, at every worker count.
func TestParallelMatchesSingleThreaded(t *testing.T) {
	pkts := mergedTrace(t)
	cfg := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true}

	single, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := single.ProcessTrace(pkts)

	for _, workers := range []int{1, 2, 4, 8} {
		par, err := NewParallel(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		par.ProcessTrace(pkts)
		if got, want := par.Events(), st.Events; got != want {
			t.Errorf("%d workers: %d events, single-threaded %d", workers, got, want)
		}
		for _, stream := range []string{"http", "files", "dns"} {
			want := SortedLines(single, stream)
			got := par.MergedLines(stream)
			if len(got) != len(want) {
				t.Errorf("%d workers, %s.log: %d lines, want %d", workers, stream, len(got), len(want))
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%d workers, %s.log line %d differs:\n  got  %q\n  want %q",
						workers, stream, i, got[i], want[i])
					break
				}
			}
		}
		var pktSum uint64
		for _, ws := range par.Stats() {
			pktSum += ws.Packets
		}
		if pktSum != uint64(len(pkts)) {
			t.Errorf("%d workers: stats count %d packets, fed %d", workers, pktSum, len(pkts))
		}
	}
}

// TestParallelBinpacMatches runs the equivalence check with the BinPAC++
// parser path too (exercises the shared-grammar initialization under
// concurrent engine construction).
func TestParallelBinpacMatches(t *testing.T) {
	dc := gen.DefaultDNSConfig()
	dc.Transactions = 200
	pkts := gen.GenerateDNS(dc)
	cfg := Config{Parser: "binpac", ScriptExec: "interp",
		Scripts: []string{DNSScript}, Quiet: true}

	single, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single.ProcessTrace(pkts)

	par, err := NewParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	par.ProcessTrace(pkts)
	want := SortedLines(single, "dns")
	got := par.MergedLines("dns")
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("dns.log: %d lines, want %d (nonzero)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dns.log line %d differs:\n  got  %q\n  want %q", i, got[i], want[i])
		}
	}
}
