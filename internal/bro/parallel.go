// Parallel engine hosting: one Engine per pipeline worker, flows sharded
// by 5-tuple hash (paper §3.2/§6.6). Each engine only ever sees complete
// flows — both directions of a connection hash to the same virtual thread,
// hence the same worker — so N parallel engines produce exactly the events
// a single engine would, merely partitioned.

package bro

import (
	"bytes"
	"io"
	"sort"
	"strconv"

	"hilti/internal/pkt/pcap"
	"hilti/internal/pkt/pipeline"
	"hilti/internal/pkt/reassembly"
	"hilti/internal/rt/admission"
)

// Parallel couples a flow-sharded pipeline with its per-worker engines.
type Parallel struct {
	*pipeline.Pipeline
	Engines []*Engine
}

// NewParallel builds a pipeline whose workers each host an Engine with the
// given configuration. Engines must not be inspected until Close returns.
func NewParallel(cfg Config, workers int) (*Parallel, error) {
	return NewParallelWith(cfg, pipeline.Config{Workers: workers})
}

// NewParallelWith is NewParallel with full control over the pipeline
// (flow-table cap, degradation policy, ingress window). pcfg.NewHandler is
// supplied here; a ReassemblyBudget in cfg becomes one budget shared by
// all workers so the cap is global. When pcfg.Admission is set, the
// shared budget also becomes the controller's tier-2 lever: it halves at
// the shrink tier and restores on de-escalation.
func NewParallelWith(cfg Config, pcfg pipeline.Config) (*Parallel, error) {
	if pcfg.Workers < 1 {
		pcfg.Workers = 1
	}
	if cfg.SharedReassembly == nil && cfg.ReassemblyBudget > 0 {
		cfg.SharedReassembly = reassembly.NewBudget(cfg.ReassemblyBudget)
	}
	if pcfg.Admission != nil && cfg.SharedReassembly != nil {
		if base := cfg.SharedReassembly.Max(); base > 0 {
			budget := cfg.SharedReassembly
			pcfg.Admission.OnTier(func(tier int) {
				if tier >= admission.TierShrink {
					budget.SetMax(base / 2)
				} else {
					budget.SetMax(base)
				}
			})
		}
	}
	// One registry observes pipeline and engines together; each worker's
	// engine registers under its own key so a supervised restart replaces
	// (not duplicates) the dead worker's series.
	if pcfg.Metrics == nil {
		pcfg.Metrics = cfg.Metrics
	}
	// A rule plane is hoisted to the pipeline ingress: the single feeder
	// goroutine evaluates it once per packet, so swap ledgers stay exact
	// and per-worker engines never evaluate it a second time.
	if pcfg.RulePlane == nil {
		pcfg.RulePlane = cfg.RulePlane
	}
	cfg.RulePlane = nil
	workerCfg := func(i int) Config {
		c := cfg
		c.Metrics = pcfg.Metrics
		c.MetricsKey = strconv.Itoa(i)
		return c
	}
	p := &Parallel{Engines: make([]*Engine, pcfg.Workers)}
	pcfg.NewHandler = func(i int) (pipeline.Handler, error) {
		e, err := NewEngine(workerCfg(i))
		if err != nil {
			return nil, err
		}
		p.Engines[i] = e
		return e, nil
	}
	if pcfg.RestoreHandler == nil {
		// Default restore path so a supervised restart (StallTimeout) can
		// rebuild a replaced worker's engine from its shard checkpoint.
		pcfg.RestoreHandler = func(i int, data []byte) (pipeline.Handler, error) {
			e, err := RestoreEngine(workerCfg(i), bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			p.Engines[i] = e
			return e, nil
		}
	}
	pl, err := pipeline.New(pcfg)
	if err != nil {
		return nil, err
	}
	p.Pipeline = pl
	return p, nil
}

// RestoreParallelWith rebuilds a parallel engine host from a pipeline
// checkpoint (Pipeline.Checkpoint or Close's FinalCheckpoint): each
// worker's engine is restored from its shard's embedded engine
// checkpoint. pcfg.Workers must match the checkpoint (or be 0 to adopt
// it); the engine configuration must match the one checkpointed.
func RestoreParallelWith(cfg Config, pcfg pipeline.Config, r io.Reader) (*Parallel, error) {
	if cfg.SharedReassembly == nil && cfg.ReassemblyBudget > 0 {
		cfg.SharedReassembly = reassembly.NewBudget(cfg.ReassemblyBudget)
	}
	if pcfg.Metrics == nil {
		pcfg.Metrics = cfg.Metrics
	}
	// Same ingress hoisting as NewParallelWith: the restored pipeline owns
	// the plane, worker engines never see it.
	if pcfg.RulePlane == nil {
		pcfg.RulePlane = cfg.RulePlane
	}
	cfg.RulePlane = nil
	workerCfg := func(i int) Config {
		c := cfg
		c.Metrics = pcfg.Metrics
		c.MetricsKey = strconv.Itoa(i)
		return c
	}
	p := &Parallel{}
	// The worker count comes from the checkpoint, so the engine slice
	// grows as handlers are built (sequentially, in worker order).
	setEngine := func(i int, e *Engine) {
		for len(p.Engines) <= i {
			p.Engines = append(p.Engines, nil)
		}
		p.Engines[i] = e
	}
	pcfg.NewHandler = func(i int) (pipeline.Handler, error) {
		e, err := NewEngine(workerCfg(i))
		if err != nil {
			return nil, err
		}
		setEngine(i, e)
		return e, nil
	}
	pcfg.RestoreHandler = func(i int, data []byte) (pipeline.Handler, error) {
		e, err := RestoreEngine(workerCfg(i), bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		setEngine(i, e)
		return e, nil
	}
	pl, err := pipeline.Restore(pcfg, r)
	if err != nil {
		return nil, err
	}
	p.Pipeline = pl
	return p, nil
}

// ProcessTrace feeds a whole trace through the pipeline and closes it.
func (p *Parallel) ProcessTrace(pkts []pcap.Packet) {
	for i := range pkts {
		p.Feed(pkts[i].Time.UnixNano(), pkts[i].Data) //nolint:errcheck
	}
	p.Close()
}

// Events sums event counts across workers (call after Close), net of the
// duplicate per-worker bro_done lifecycle events so the total compares
// directly against a single engine's count.
func (p *Parallel) Events() int {
	n := 0
	for _, e := range p.Engines {
		n += int(e.events.Load())
	}
	return n - (len(p.Engines) - 1)
}

// MergedLines gathers one log stream from every worker, sorted. Sharding
// preserves per-flow ordering but interleaves flows differently than a
// single engine; sorting gives a canonical form for equality checks.
func (p *Parallel) MergedLines(stream string) []string {
	var all []string
	for _, e := range p.Engines {
		all = append(all, e.Logs.Lines(stream)...)
	}
	sort.Strings(all)
	return all
}

// SortedLines returns one engine's log stream in the same canonical order
// as Parallel.MergedLines, for byte-identical comparison.
func SortedLines(e *Engine, stream string) []string {
	lines := append([]string(nil), e.Logs.Lines(stream)...)
	sort.Strings(lines)
	return lines
}
