// BinPAC++ parser integration: the engine drives HILTI-compiled parsers
// over reassembled streams (HTTP) and datagrams (DNS), exactly like the
// paper's Bro plugin drives BinPAC++ parsers (§4, §5 "Bro Interface").
// Parser hooks call bro_* host functions; their HILTI arguments cross the
// glue layer into Vals before entering the event engine, and the glue
// profiler charges that conversion separately (Figure 9's third bar).

package bro

import (
	"sync"

	"hilti/internal/binpac/grammars"
	"hilti/internal/hilti/vm"
	"hilti/internal/rt/container"
	"hilti/internal/rt/hbytes"
	"hilti/internal/rt/values"
)

// attachBinpacHTTP wires a connection's streams into HTTP parser fibers.
func (e *Engine) attachBinpacHTTP(c *conn) {
	c.origRope = hbytes.New()
	c.respRope = hbytes.New()
	reqFn := e.pexec.Prog.Fn("HTTP::parse_Requests")
	repFn := e.pexec.Prog.Fn("HTTP::parse_Replies")

	reqSelf := values.StructVal(values.NewStruct(e.httpReqStruct))
	repSelf := values.StructVal(values.NewStruct(e.httpRepStruct))
	c.origRun = e.pexec.FiberCall(reqFn, reqSelf, values.IterBytes(c.origRope.Begin()), values.Int(c.ctx))
	c.respRun = e.pexec.FiberCall(repFn, repSelf, values.IterBytes(c.respRope.Begin()), values.Int(c.ctx))

	c.origStream.Deliver = func(d []byte) { e.binpacDeliver(c, true, d) }
	c.respStream.Deliver = func(d []byte) { e.binpacDeliver(c, false, d) }
}

func (e *Engine) binpacDeliver(c *conn, isOrig bool, d []byte) {
	rope, run, dead := c.respRope, c.respRun, &c.respDead
	if isOrig {
		rope, run, dead = c.origRope, c.origRun, &c.origDead
	}
	if *dead {
		return
	}
	rope.Append(d)
	_, done, err := run.Resume()
	if done {
		*dead = true
		if err != nil {
			e.parseErrs.Inc()
		}
	}
}

// finishBinpacDir freezes a direction's input and drives the parse to
// completion (list-until-end units finish at frozen end of data).
func (e *Engine) finishBinpacDir(c *conn, isOrig bool) {
	rope, run, dead := c.respRope, c.respRun, &c.respDead
	if isOrig {
		rope, run, dead = c.origRope, c.origRun, &c.origDead
	}
	if *dead {
		return
	}
	rope.Freeze()
	_, done, err := run.Resume()
	*dead = true
	if !done {
		run.Abort()
	} else if err != nil {
		e.parseErrs.Inc()
	}
}

// binpacDNSPacket parses one DNS datagram through the HILTI parser. Per
// the paper's observation, the generated parser always runs incrementally
// (inside a fiber) even for complete UDP PDUs; Config.DNSWholePDU enables
// the optimized whole-PDU mode as an ablation.
func (e *Engine) binpacDNSPacket(c *conn, payload []byte) {
	fn := e.pexec.Prog.Fn("DNS::parse_Message")
	rope := hbytes.New()
	rope.AppendOwned(payload)
	rope.Freeze()
	self := values.StructVal(values.NewStruct(e.dnsMsgStruct()))
	cur := values.IterBytes(rope.Begin())

	e.inParse++
	e.profParse.Start()
	var err error
	if e.cfg.DNSWholePDU {
		_, err = e.pexec.CallFn(fn, self, cur, values.Int(c.ctx))
	} else {
		run := e.pexec.FiberCall(fn, self, cur, values.Int(c.ctx))
		for {
			var done bool
			_, done, err = run.Resume()
			if done {
				break
			}
		}
	}
	e.profParse.Stop()
	e.inParse--
	if err != nil {
		e.parseErrs.Inc()
	}
}

// dnsStructCache is shared across engines; engines now run on parallel
// pipeline workers, so the lazy initialization must be synchronized.
var (
	dnsStructOnce  sync.Once
	dnsStructCache *values.StructDef
)

func (e *Engine) dnsMsgStruct() *values.StructDef {
	dnsStructOnce.Do(func() {
		mods, _ := grammars.DNSModules()
		dnsStructCache = findStruct(mods, "Message")
	})
	return dnsStructCache
}

// registerBinpacHost wires the bro_* callbacks the parser hooks invoke.
func (e *Engine) registerBinpacHost() {
	ex := e.pexec

	connOf := func(args []values.Value) *conn {
		return e.ctxs[args[0].AsInt()]
	}
	str := func(v values.Value) StringVal {
		return StringVal(e.glue.FromHilti(v).Render())
	}

	ex.RegisterHost("bro_http_request", func(_ *vm.Exec, args []values.Value) (values.Value, error) {
		e.pauseParse()
		defer e.resumeParse()
		c := connOf(args)
		if c == nil {
			return values.Nil, nil
		}
		method := str(args[1])
		c.methods = append(c.methods, string(method))
		e.dispatch("http_request", e.connRecord(c), method, str(args[2]), str(args[3]))
		return values.Nil, nil
	})
	ex.RegisterHost("bro_http_reply", func(_ *vm.Exec, args []values.Value) (values.Value, error) {
		e.pauseParse()
		defer e.resumeParse()
		c := connOf(args)
		if c == nil {
			return values.Nil, nil
		}
		e.dispatch("http_reply", e.connRecord(c),
			str(args[1]), CountVal(args[2].AsInt()), str(args[3]))
		return values.Nil, nil
	})
	ex.RegisterHost("bro_http_header", func(_ *vm.Exec, args []values.Value) (values.Value, error) {
		e.pauseParse()
		defer e.resumeParse()
		c := connOf(args)
		if c == nil {
			return values.Nil, nil
		}
		e.dispatch("http_header", e.connRecord(c),
			BoolVal(args[1].AsInt() != 0), str(args[2]), str(args[3]))
		return values.Nil, nil
	})
	// bro_http_pick_body implements the host-side body-framing decisions a
	// reply parser cannot make alone: HEAD responses and no-body statuses.
	ex.RegisterHost("bro_http_pick_body", func(_ *vm.Exec, args []values.Value) (values.Value, error) {
		c := connOf(args)
		status := args[1].AsInt()
		kind := args[2].AsInt()
		isHead := false
		if c != nil && len(c.methods) > 0 {
			isHead = c.methods[0] == "HEAD"
			c.methods = c.methods[1:]
		}
		if isHead || status == 304 || status == 204 || (status >= 100 && status < 200) {
			return values.Int(grammars.BodyNone), nil
		}
		return values.Int(kind), nil
	})
	ex.RegisterHost("bro_http_body", func(_ *vm.Exec, args []values.Value) (values.Value, error) {
		e.pauseParse()
		defer e.resumeParse()
		c := connOf(args)
		if c == nil {
			return values.Nil, nil
		}
		// args: ctx, is_orig, ctype, sha1, len, body
		ctype := string(str(args[2]))
		if ctype == "" {
			ctype = sniffHILTIBody(args[5])
		}
		e.dispatch("http_body", e.connRecord(c),
			BoolVal(args[1].AsInt() != 0), StringVal(ctype), str(args[3]),
			CountVal(args[4].AsInt()))
		return values.Nil, nil
	})
	ex.RegisterHost("bro_http_message_done", func(_ *vm.Exec, args []values.Value) (values.Value, error) {
		e.pauseParse()
		defer e.resumeParse()
		c := connOf(args)
		if c == nil {
			return values.Nil, nil
		}
		e.dispatch("http_message_done", e.connRecord(c), BoolVal(args[1].AsInt() != 0))
		return values.Nil, nil
	})

	ex.RegisterHost("bro_dns_message", func(_ *vm.Exec, args []values.Value) (values.Value, error) {
		e.pauseParse()
		defer e.resumeParse()
		c := connOf(args)
		if c == nil {
			return values.Nil, nil
		}
		e.binpacDNSEvents(c, args[1])
		return values.Nil, nil
	})
}

// sniffHILTIBody applies the same MIME sniffing as the standard parser
// when no Content-Type header was present.
func sniffHILTIBody(v values.Value) string {
	b := v.AsBytes()
	if b == nil || b.Len() == 0 {
		return ""
	}
	head, err := b.Sub(b.Begin(), b.Begin().Plus(min64(4, b.Len())))
	if err != nil || len(head) == 0 {
		return "text/plain"
	}
	switch {
	case len(head) >= 4 && head[0] == 0x89 && head[1] == 'P' && head[2] == 'N' && head[3] == 'G':
		return "image/png"
	case head[0] == '<':
		return "text/html"
	case head[0] == '{' || head[0] == '[':
		return "application/json"
	default:
		return "text/plain"
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// binpacDNSEvents walks the parsed DNS Message struct and raises the same
// events the standard parser produces. Walking the HILTI structs into the
// engine's representation is conversion glue, charged accordingly.
func (e *Engine) binpacDNSEvents(c *conn, msg values.Value) {
	e.profGlue.Start()
	s := msg.AsStruct()
	get := func(name string) values.Value {
		v, _ := s.GetName(name)
		return v
	}
	id := int(get("id").AsInt())
	flags := get("flags").AsInt()
	isResp := flags&0x8000 != 0
	rcode := int(flags & 0xF)

	query, qtype := "", 0
	if qv, ok := s.GetName("questions"); ok {
		if vec, ok2 := qv.O.(*container.Vector); ok2 && vec.Len() > 0 {
			q0, _ := vec.Get(0)
			if qs := q0.AsStruct(); qs != nil {
				if n, ok3 := qs.GetName("qname"); ok3 && n.AsBytes() != nil {
					query = n.AsBytes().String()
				}
				if t, ok3 := qs.GetName("qtype"); ok3 {
					qtype = int(t.AsInt())
				}
			}
		}
	}
	var answers []string
	var ttls []int64
	if av, ok := s.GetName("answers"); ok {
		if vec, ok2 := av.O.(*container.Vector); ok2 {
			vec.Each(func(rv values.Value) bool {
				rr := rv.AsStruct()
				if rr == nil {
					return true
				}
				ttl := int64(0)
				if t, ok3 := rr.GetName("ttl"); ok3 {
					ttl = t.AsInt()
				}
				answers = append(answers, renderRR(rr))
				ttls = append(ttls, ttl)
				return true
			})
		}
	}
	e.profGlue.Stop()
	e.dnsEvents(c, isResp, id, query, qtype, rcode, answers, ttls)
}

// renderRR renders one parsed RR's value like the standard parser does.
func renderRR(rr *values.Struct) string {
	getB := func(name string) (string, bool) {
		if v, ok := rr.GetName(name); ok && v.AsBytes() != nil {
			return v.AsBytes().String(), true
		}
		return "", false
	}
	if v, ok := rr.GetName("a"); ok && v.AsBytes() != nil {
		b := v.AsBytes().Bytes()
		if len(b) == 4 {
			return values.Format(values.AddrFrom4([4]byte{b[0], b[1], b[2], b[3]}))
		}
	}
	if v, ok := rr.GetName("aaaa"); ok && v.AsBytes() != nil {
		b := v.AsBytes().Bytes()
		if len(b) == 16 {
			var a [16]byte
			copy(a[:], b)
			return values.Format(values.AddrFrom16(a))
		}
	}
	for _, f := range []string{"cname", "ns", "ptr", "mx", "txt"} {
		if s, ok := getB(f); ok {
			return s
		}
	}
	if s, ok := getB("raw"); ok {
		return "\\x" + hexEncode(s)
	}
	return ""
}

func hexEncode(s string) string {
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 0, len(s)*2)
	for i := 0; i < len(s); i++ {
		out = append(out, hexdigits[s[i]>>4], hexdigits[s[i]&0xF])
	}
	return string(out)
}
