// The Bro-like scripting language: AST and lexer. The subset implemented
// covers what the paper's evaluation scripts need (§6.5: the default-style
// HTTP and DNS analysis scripts, the Figure 8 tracking script, and the
// recursive Fibonacci baseline): typed globals with expiration attributes,
// record types, event handlers, functions, tables/sets/vectors, and the
// usual statements and expressions.

package bro

import (
	"fmt"
	"strings"
)

// --- AST ----------------------------------------------------------------------

// Script is a parsed script file.
type Script struct {
	Records   []*RecordDecl
	Globals   []*GlobalDecl
	Events    []*EventHandler
	Functions []*FuncDecl
}

// RecordDecl declares a record type.
type RecordDecl struct {
	Name   string
	Fields []RecordField
}

// RecordField is one record field.
type RecordField struct {
	Name     string
	Type     *TypeExpr
	Optional bool
	Log      bool
}

// GlobalDecl declares a global variable.
type GlobalDecl struct {
	Name         string
	Type         *TypeExpr
	Init         Expr // optional
	CreateExpire int64
	ReadExpire   int64
}

// EventHandler is one `event name(params) { body }`.
type EventHandler struct {
	Name   string
	Params []ParamDecl
	Body   []Stmt
}

// FuncDecl is a script function.
type FuncDecl struct {
	Name   string
	Params []ParamDecl
	Result *TypeExpr
	Body   []Stmt
}

// ParamDecl is one parameter.
type ParamDecl struct {
	Name string
	Type *TypeExpr
}

// TypeExpr is a type expression.
type TypeExpr struct {
	Kind  string      // bool count int double string addr subnet port time interval any
	Name  string      // record/enum reference
	Index []*TypeExpr // table/set index types
	Yield *TypeExpr   // table yield / vector element
}

// String renders the type.
func (t *TypeExpr) String() string {
	switch t.Kind {
	case "table":
		idx := make([]string, len(t.Index))
		for i, x := range t.Index {
			idx[i] = x.String()
		}
		return "table[" + strings.Join(idx, ",") + "] of " + t.Yield.String()
	case "set":
		idx := make([]string, len(t.Index))
		for i, x := range t.Index {
			idx[i] = x.String()
		}
		return "set[" + strings.Join(idx, ",") + "]"
	case "vector":
		return "vector of " + t.Yield.String()
	case "record":
		return t.Name
	default:
		return t.Kind
	}
}

// Stmt is a statement.
type Stmt interface{ isStmt() }

// LocalStmt declares a local, optionally initialized.
type LocalStmt struct {
	Name string
	Type *TypeExpr
	Init Expr
}

// AssignStmt assigns to a name, index, or field expression.
type AssignStmt struct {
	LHS Expr // NameExpr, IndexExpr, or FieldExpr
	RHS Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// ForStmt iterates a container's keys/indices.
type ForStmt struct {
	Var  string
	Var2 string // second index / yield variable (optional)
	Over Expr
	Body []Stmt
}

// PrintStmt prints comma-separated values.
type PrintStmt struct{ Args []Expr }

// AddStmt is `add set[key]`.
type AddStmt struct{ Target *IndexExpr }

// DeleteStmt is `delete t[key]`.
type DeleteStmt struct{ Target *IndexExpr }

// ReturnStmt returns from a function.
type ReturnStmt struct{ Value Expr }

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct{ E Expr }

// EventStmt is `event name(args)` — synchronous dispatch in this engine.
type EventStmt struct {
	Name string
	Args []Expr
}

func (*LocalStmt) isStmt()  {}
func (*AssignStmt) isStmt() {}
func (*IfStmt) isStmt()     {}
func (*ForStmt) isStmt()    {}
func (*PrintStmt) isStmt()  {}
func (*AddStmt) isStmt()    {}
func (*DeleteStmt) isStmt() {}
func (*ReturnStmt) isStmt() {}
func (*ExprStmt) isStmt()   {}
func (*EventStmt) isStmt()  {}

// Expr is an expression.
type Expr interface{ isExpr() }

// LitExpr is a literal value.
type LitExpr struct{ V Val }

// NameExpr references a variable.
type NameExpr struct{ Name string }

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string // + - * / % == != < <= > >= && || in !in
	L, R Expr
}

// UnaryExpr is ! or -, or | | (size).
type UnaryExpr struct {
	Op string // "!" "-" "||" (size)
	E  Expr
}

// IndexExpr is e[k1, k2, ...].
type IndexExpr struct {
	Base Expr
	Keys []Expr
}

// FieldExpr is e$f.
type FieldExpr struct {
	Base  Expr
	Field string
}

// CallExpr is f(args).
type CallExpr struct {
	Fn   string
	Args []Expr
}

// CtorExpr constructs a record (Name != "") or vector (Name == "vector").
type CtorExpr struct {
	Name   string
	Fields []CtorField // record fields ($f=e) or positional vector elems
}

// CtorField is one constructor component.
type CtorField struct {
	Name string // "" for positional
	E    Expr
}

func (*LitExpr) isExpr()   {}
func (*NameExpr) isExpr()  {}
func (*BinExpr) isExpr()   {}
func (*UnaryExpr) isExpr() {}
func (*IndexExpr) isExpr() {}
func (*FieldExpr) isExpr() {}
func (*CallExpr) isExpr()  {}
func (*CtorExpr) isExpr()  {}

// --- Lexer ---------------------------------------------------------------------

type btokKind int

const (
	btEOF btokKind = iota
	btIdent
	btNumber // count or double (distinguish by '.')
	btString
	btAddr
	btSubnet
	btPort
	btPunct
)

type btok struct {
	kind btokKind
	text string
	line int
}

func lexScript(src string) ([]btok, error) {
	var toks []btok
	line := 1
	pos := 0
	emit := func(k btokKind, t string) { toks = append(toks, btok{k, t, line}) }
	for pos < len(src) {
		c := src[pos]
		switch {
		case c == '#':
			for pos < len(src) && src[pos] != '\n' {
				pos++
			}
		case c == '\n':
			line++
			pos++
		case c == ' ' || c == '\t' || c == '\r':
			pos++
		case c == '"':
			pos++
			var sb strings.Builder
			for pos < len(src) && src[pos] != '"' {
				if src[pos] == '\\' && pos+1 < len(src) {
					pos++
					switch src[pos] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					default:
						sb.WriteByte(src[pos])
					}
					pos++
					continue
				}
				if src[pos] == '\n' {
					return nil, fmt.Errorf("line %d: unterminated string", line)
				}
				sb.WriteByte(src[pos])
				pos++
			}
			if pos >= len(src) {
				return nil, fmt.Errorf("line %d: unterminated string", line)
			}
			pos++
			emit(btString, sb.String())
		case c >= '0' && c <= '9':
			start := pos
			dots := 0
			for pos < len(src) {
				c2 := src[pos]
				if c2 >= '0' && c2 <= '9' {
					pos++
					continue
				}
				if c2 == '.' && pos+1 < len(src) && src[pos+1] >= '0' && src[pos+1] <= '9' {
					dots++
					pos++
					continue
				}
				break
			}
			text := src[start:pos]
			// Port: N/tcp|udp|icmp. Subnet: a.b.c.d/len.
			if pos < len(src) && src[pos] == '/' {
				rest := src[pos+1:]
				matched := false
				for _, proto := range []string{"tcp", "udp", "icmp"} {
					if strings.HasPrefix(rest, proto) {
						pos += 1 + len(proto)
						emit(btPort, text+"/"+proto)
						matched = true
						break
					}
				}
				if matched {
					continue
				}
				if dots == 3 && len(rest) > 0 && rest[0] >= '0' && rest[0] <= '9' {
					j := 0
					for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
						j++
					}
					pos += 1 + j
					emit(btSubnet, text+"/"+rest[:j])
					continue
				}
			}
			switch dots {
			case 0:
				emit(btNumber, text)
			case 1:
				emit(btNumber, text)
			case 3:
				emit(btAddr, text)
			default:
				return nil, fmt.Errorf("line %d: malformed number %q", line, text)
			}
		case isBIdentStart(c):
			start := pos
			for pos < len(src) {
				c2 := src[pos]
				if isBIdentStart(c2) || (c2 >= '0' && c2 <= '9') {
					pos++
					continue
				}
				if c2 == ':' && pos+1 < len(src) && src[pos+1] == ':' {
					pos += 2
					continue
				}
				break
			}
			emit(btIdent, src[start:pos])
		default:
			// Multi-char operators first.
			two := ""
			if pos+1 < len(src) {
				two = src[pos : pos+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||", "+=":
				emit(btPunct, two)
				pos += 2
				continue
			}
			if strings.IndexByte("(){}[],;:$|!<>=+-*/%&.", c) >= 0 {
				emit(btPunct, string(c))
				pos++
				continue
			}
			return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
		}
	}
	emit(btEOF, "")
	return toks, nil
}

func isBIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
