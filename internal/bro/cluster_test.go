package bro

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hilti/internal/pkt/flow"
	"hilti/internal/pkt/pcap"
	"hilti/internal/pkt/pipeline"
	"hilti/internal/rt/migrate"
)

func clusterCfg() Config {
	return Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript, DNSScript}, Quiet: true}
}

// singleBaseline runs the whole trace through one engine and returns its
// canonical per-stream lines.
func singleBaseline(t *testing.T, pkts []pcap.Packet) map[string][]string {
	t.Helper()
	single, err := NewEngine(clusterCfg())
	if err != nil {
		t.Fatal(err)
	}
	single.ProcessTrace(pkts)
	out := map[string][]string{}
	for _, stream := range []string{"http", "files", "dns"} {
		out[stream] = SortedLines(single, stream)
	}
	return out
}

func assertClusterMatches(t *testing.T, label string, c *Cluster, want map[string][]string) {
	t.Helper()
	for stream, lines := range want {
		got := c.MergedLines(stream)
		if len(got) != len(lines) {
			t.Errorf("%s: %s.log has %d lines, single node %d", label, stream, len(got), len(lines))
			continue
		}
		for i := range lines {
			if got[i] != lines[i] {
				t.Errorf("%s: %s.log line %d differs:\n  got  %q\n  want %q",
					label, stream, i, got[i], lines[i])
				break
			}
		}
	}
}

// assertSingleOwner checks that every keyable flow in the trace has at
// most one owner across all instances.
func assertSingleOwner(t *testing.T, label string, c *Cluster, pkts []pcap.Packet) {
	t.Helper()
	seen := map[flow.Key]bool{}
	for i := range pkts {
		key, ok := flow.FromFrame(pkts[i].Data)
		if !ok {
			continue
		}
		ck, _ := key.Canonical()
		if seen[ck] {
			continue
		}
		seen[ck] = true
		owners, err := c.Owners(ck)
		if err != nil {
			t.Fatalf("%s: Owners(%v): %v", label, ck, err)
		}
		if len(owners) > 1 {
			t.Errorf("%s: flow %v owned by %v (split brain)", label, ck, owners)
		}
	}
}

// feedSlice feeds pkts[lo:hi] through the cluster router.
func feedSlice(t *testing.T, c *Cluster, pkts []pcap.Packet, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if err := c.Feed(pkts[i].Time.UnixNano(), pkts[i].Data); err != nil {
			t.Fatalf("feed %d: %v", i, err)
		}
	}
}

// TestClusterEquivalenceUnderMigration: two instances, live migrations
// interleaved with feeding, no faults — merged logs must be byte-identical
// to a single node and the ownership ledger must balance exactly.
func TestClusterEquivalenceUnderMigration(t *testing.T) {
	pkts := mergedTrace(t)
	want := singleBaseline(t, pkts)

	for _, wal := range []bool{false, true} {
		label := fmt.Sprintf("wal=%v", wal)
		c, err := NewCluster(clusterCfg(), ClusterConfig{
			Instances: 2, Buckets: 8,
			Pipeline: pipeline.Config{Workers: 2, WAL: wal},
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		chunk := len(pkts) / 10
		handoffs := uint64(0)
		for lo := 0; lo < len(pkts); lo += chunk {
			hi := lo + chunk
			if hi > len(pkts) {
				hi = len(pkts)
			}
			feedSlice(t, c, pkts, lo, hi)
			b := rng.Intn(c.Table().Buckets())
			to := 1 - c.Table().OwnerOf(b)
			if err := c.MigrateBucket(b, to, nil); err != nil {
				t.Fatalf("%s: migrate bucket %d -> %d: %v", label, b, to, err)
			}
			handoffs++
		}
		assertSingleOwner(t, label, c, pkts)
		if err := c.CheckOwnership(); err != nil {
			t.Errorf("%s: mid-run: %v", label, err)
		}
		c.Close()
		assertClusterMatches(t, label, c, want)
		if err := c.CheckOwnership(); err != nil {
			t.Errorf("%s: after close: %v", label, err)
		}
		tail, fallback := c.HandoffStats()
		if tail+fallback != handoffs {
			t.Errorf("%s: %d handoffs committed, want %d", label, tail+fallback, handoffs)
		}
		if wal && tail == 0 {
			t.Errorf("%s: no handoff used the WAL delta tail (all fell back)", label)
		}
		t.Logf("%s: %d tail handoffs, %d fallback", label, tail, fallback)
	}
}

// TestClusterLiveMigrationWindow: packets flow between BeginMigration and
// Complete — the definition of *live* migration. The pre-copy goes stale
// while the source keeps processing; the delta tail (or fallback) must
// reconcile it, byte-identically.
func TestClusterLiveMigrationWindow(t *testing.T) {
	pkts := mergedTrace(t)
	want := singleBaseline(t, pkts)

	c, err := NewCluster(clusterCfg(), ClusterConfig{
		Instances: 2, Buckets: 8,
		Pipeline: pipeline.Config{Workers: 2, WAL: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	third := len(pkts) / 3
	feedSlice(t, c, pkts, 0, third)
	// Drain instance 0 one bucket at a time (the endpoint holds one
	// session), feeding a window of traffic between each Begin and
	// Complete: the pre-copy goes stale and the tail must reconcile it.
	var mine []int
	for b := 0; b < c.Table().Buckets(); b++ {
		if c.Table().OwnerOf(b) == 0 {
			mine = append(mine, b)
		}
	}
	lo := third
	window := third / len(mine)
	for _, b := range mine {
		m, err := c.BeginMigration(b, 1, nil)
		if err != nil {
			t.Fatalf("begin bucket %d: %v", b, err)
		}
		feedSlice(t, c, pkts, lo, lo+window)
		lo += window
		if err := m.Complete(); err != nil {
			t.Fatalf("complete bucket %d: %v", b, err)
		}
	}
	if got := c.Table().Counts(2)[0]; got != 0 {
		t.Fatalf("instance 0 still owns %d buckets", got)
	}
	feedSlice(t, c, pkts, lo, len(pkts))
	assertSingleOwner(t, "live-window", c, pkts)
	c.Close()
	assertClusterMatches(t, "live-window", c, want)
	if err := c.CheckOwnership(); err != nil {
		t.Error(err)
	}
}

// stepFault injects one fault kind at one protocol step, either on the
// first attempt only (retries can recover) or on every attempt.
func stepFault(step migrate.Step, kind migrate.FaultKind, every bool) migrate.Injector {
	return migrate.InjectorFunc(func(s migrate.Step, attempt int) migrate.FaultKind {
		if s == step && (every || attempt == 0) {
			return kind
		}
		return migrate.FaultNone
	})
}

// TestClusterChaosEveryStep kills, stalls, and corrupts the handoff at
// every protocol step, with retries both able and unable to recover. In
// every single schedule the cluster must keep exactly one owner per flow
// and produce byte-identical logs — a faulted migration simply aborts
// (or, past the target's ack, resolves forward) and traffic keeps going.
func TestClusterChaosEveryStep(t *testing.T) {
	pkts := mergedTrace(t)
	want := singleBaseline(t, pkts)

	type schedule struct {
		name     string
		inj      migrate.Injector
		mayAbort bool // the schedule is allowed to abort the handoff
	}
	var scheds []schedule
	steps := []migrate.Step{migrate.StepBegin, migrate.StepTransfer, migrate.StepActivate, migrate.StepCommit}
	kinds := []migrate.FaultKind{migrate.FaultKill, migrate.FaultStall, migrate.FaultCorrupt}
	for _, st := range steps {
		for _, k := range kinds {
			scheds = append(scheds,
				schedule{fmt.Sprintf("%s/%s/once", st, k), stepFault(st, k, false), k == migrate.FaultKill},
				schedule{fmt.Sprintf("%s/%s/every", st, k), stepFault(st, k, true), true})
		}
	}

	for _, sc := range scheds {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			c, err := NewCluster(clusterCfg(), ClusterConfig{
				Instances: 2, Buckets: 8,
				Pipeline: pipeline.Config{Workers: 2, WAL: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			half := len(pkts) / 2
			feedSlice(t, c, pkts, 0, half)
			committed, aborted := 0, 0
			for b := 0; b < c.Table().Buckets(); b++ {
				from := c.Table().OwnerOf(b)
				if err := c.MigrateBucket(b, 1-from, sc.inj); err != nil {
					aborted++
					if c.Table().OwnerOf(b) != from {
						t.Fatalf("bucket %d: aborted handoff flipped routing", b)
					}
				} else {
					committed++
					if c.Table().OwnerOf(b) == from {
						t.Fatalf("bucket %d: committed handoff did not flip routing", b)
					}
				}
			}
			if !sc.mayAbort && aborted > 0 {
				t.Errorf("%d handoffs aborted under a recoverable schedule", aborted)
			}
			assertSingleOwner(t, sc.name, c, pkts)
			if err := c.CheckOwnership(); err != nil {
				t.Errorf("mid-run ledger: %v", err)
			}
			feedSlice(t, c, pkts, half, len(pkts))
			c.Close()
			assertClusterMatches(t, sc.name, c, want)
			if err := c.CheckOwnership(); err != nil {
				t.Errorf("final ledger: %v", err)
			}
			t.Logf("%s: %d committed, %d aborted", sc.name, committed, aborted)
		})
	}
}

// TestClusterChaosRandomSchedules drives migrations under a seeded random
// fault schedule — faults land on arbitrary (step, attempt) pairs while
// packets keep flowing — and demands the same invariants as the
// exhaustive per-step matrix.
func TestClusterChaosRandomSchedules(t *testing.T) {
	pkts := mergedTrace(t)
	want := singleBaseline(t, pkts)

	for seed := int64(1); seed <= 3; seed++ {
		label := fmt.Sprintf("seed=%d", seed)
		rng := rand.New(rand.NewSource(seed))
		inj := migrate.InjectorFunc(func(s migrate.Step, attempt int) migrate.FaultKind {
			if rng.Intn(4) == 0 {
				return migrate.FaultKind(1 + rng.Intn(3))
			}
			return migrate.FaultNone
		})
		c, err := NewCluster(clusterCfg(), ClusterConfig{
			Instances: 3, Buckets: 8,
			Pipeline: pipeline.Config{Workers: 2, WAL: seed%2 == 0},
		})
		if err != nil {
			t.Fatal(err)
		}
		chunk := len(pkts) / 8
		for lo := 0; lo < len(pkts); lo += chunk {
			hi := lo + chunk
			if hi > len(pkts) {
				hi = len(pkts)
			}
			feedSlice(t, c, pkts, lo, hi)
			b := rng.Intn(c.Table().Buckets())
			to := rng.Intn(c.Instances())
			if c.Table().OwnerOf(b) == to {
				continue
			}
			_ = c.MigrateBucket(b, to, inj) // aborts are expected and fine
		}
		assertSingleOwner(t, label, c, pkts)
		c.Close()
		assertClusterMatches(t, label, c, want)
		if err := c.CheckOwnership(); err != nil {
			t.Errorf("%s: %v", label, err)
		}
	}
}

// TestClusterScaleOutIn grows the cluster mid-trace and shrinks it back,
// with the retired instance's logs still part of the merged output.
func TestClusterScaleOutIn(t *testing.T) {
	pkts := mergedTrace(t)
	want := singleBaseline(t, pkts)

	c, err := NewCluster(clusterCfg(), ClusterConfig{
		Instances: 2, Buckets: 8,
		Pipeline: pipeline.Config{Workers: 2, WAL: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	third := len(pkts) / 3
	feedSlice(t, c, pkts, 0, third)
	id, err := c.ScaleOut(nil)
	if err != nil {
		t.Fatalf("scale out: %v", err)
	}
	if id != 2 || c.Instances() != 3 {
		t.Fatalf("scale out: instance %d, %d active", id, c.Instances())
	}
	counts := c.Table().Counts(3)
	for i, n := range counts {
		if n == 0 {
			t.Fatalf("instance %d owns no buckets after scale-out: %v", i, counts)
		}
	}
	feedSlice(t, c, pkts, third, 2*third)
	if err := c.ScaleIn(nil); err != nil {
		t.Fatalf("scale in: %v", err)
	}
	if c.Instances() != 2 {
		t.Fatalf("scale in: %d active", c.Instances())
	}
	feedSlice(t, c, pkts, 2*third, len(pkts))
	assertSingleOwner(t, "scale", c, pkts)
	c.Close()
	assertClusterMatches(t, "scale", c, want)
	if err := c.CheckOwnership(); err != nil {
		t.Error(err)
	}
}

// TestClusterDiscardAfterInstall exercises the one path the coordinator
// cannot reach on its own: a session fully installed on the target whose
// commit never arrives (coordinator died after the activate ack but
// before the flip). AbortSession must discard the installed flows — safe
// because routing never flipped — leaving the source the sole owner.
func TestClusterDiscardAfterInstall(t *testing.T) {
	pkts := mergedTrace(t)
	want := singleBaseline(t, pkts)

	c, err := NewCluster(clusterCfg(), ClusterConfig{
		Instances: 2, Buckets: 8,
		Pipeline: pipeline.Config{Workers: 2, WAL: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	half := len(pkts) / 2
	feedSlice(t, c, pkts, 0, half)

	// Pick a bucket instance 0 owns and hand-run the session up to the
	// activate ack, then kill the coordinator (no Commit, no flip).
	b := c.Table().BucketsOf(0)[0]
	src := c.insts[0].par
	slice, err := src.ExtractFlows(func(vid uint64) bool { return c.table.BucketOf(vid) == b })
	if err != nil {
		t.Fatal(err)
	}
	if slice.Empty() {
		t.Skip("bucket drew no flows; nothing to exercise")
	}
	blob, err := encodeWireSlice(wireReplace, slice)
	if err != nil {
		t.Fatal(err)
	}
	co := migrate.NewCoordinator(epTransport{c.insts[1].ep}, migrate.Options{ID: 999, Bucket: b})
	if err := co.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := co.Ship(blob); err != nil {
		t.Fatal(err)
	}
	if err := co.Activate(); err != nil {
		t.Fatal(err)
	}
	if id, installed := c.insts[1].ep.Session(); id != 999 || !installed {
		t.Fatalf("target session = (%d, %v), want (999, installed)", id, installed)
	}
	// Target-side handoff timeout: discard the orphaned install.
	c.insts[1].ep.AbortSession(999)
	assertSingleOwner(t, "discard", c, pkts)
	for i := range slice.Handler {
		owned, err := c.insts[1].par.OwnsFlow(slice.Handler[i].Key, slice.Handler[i].VID)
		if err != nil {
			t.Fatal(err)
		}
		if owned {
			t.Fatalf("target still owns %v after discard", slice.Handler[i].Key)
		}
	}
	feedSlice(t, c, pkts, half, len(pkts))
	c.Close()
	assertClusterMatches(t, "discard", c, want)
	if err := c.CheckOwnership(); err != nil {
		t.Error(err)
	}
}

// TestEngineFlowRoundTrip moves one flow between two bare engines mid-
// session: ExtractFlow/InjectFlow must carry the connection and its
// uid-keyed script state so the second engine finishes the session with
// byte-identical log lines, while an unrelated flow's script state on the
// source stays untouched (the engine side of the per-flow cursor
// regression).
func TestEngineFlowRoundTrip(t *testing.T) {
	pkts := mergedTrace(t)
	cfg := clusterCfg()
	single, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single.ProcessTrace(pkts)

	a, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bEng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pick the flow with the most packets and migrate it halfway through.
	perFlow := map[flow.Key]int{}
	for i := range pkts {
		if key, ok := flow.FromFrame(pkts[i].Data); ok {
			ck, _ := key.Canonical()
			perFlow[ck]++
		}
	}
	var mig flow.Key
	for k, n := range perFlow {
		if n > perFlow[mig] {
			mig = k
		}
	}
	seen := 0
	migrated := false
	for i := range pkts {
		ts := pkts[i].Time.UnixNano()
		key, ok := flow.FromFrame(pkts[i].Data)
		ck, _ := key.Canonical()
		if ok && ck == mig {
			seen++
			if !migrated && seen > perFlow[mig]/2 && a.HasFlow(mig) {
				blob, err := a.ExtractFlow(mig)
				if err != nil {
					t.Fatalf("extract: %v", err)
				}
				probe := otherUID(t, a, mig)
				beforeEntries := len(a.flowScriptEntries(probe))
				if _, err := bEng.InjectFlow(blob); err != nil {
					t.Fatalf("inject: %v", err)
				}
				if !a.ForgetFlow(mig) {
					t.Fatal("forget: flow not found on source")
				}
				if got := len(a.flowScriptEntries(probe)); got != beforeEntries {
					t.Fatalf("unrelated flow's script entries changed: %d -> %d", beforeEntries, got)
				}
				if a.HasFlow(mig) {
					t.Fatal("source still has the flow after forget")
				}
				migrated = true
			}
			if migrated {
				bEng.SafeProcessPacket(ts, pkts[i].Data)
				continue
			}
		}
		a.SafeProcessPacket(ts, pkts[i].Data)
	}
	if !migrated {
		t.Fatal("never migrated the busiest flow")
	}
	a.Finish()
	bEng.Finish()
	for _, stream := range []string{"http", "files", "dns"} {
		want := SortedLines(single, stream)
		var got []string
		got = append(got, a.Logs.Lines(stream)...)
		got = append(got, bEng.Logs.Lines(stream)...)
		got = sortedCopy(got)
		if len(got) != len(want) {
			t.Errorf("%s.log: %d lines, want %d", stream, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s.log line %d differs:\n  got  %q\n  want %q", stream, i, got[i], want[i])
				break
			}
		}
	}
	// Double ownership must be refused.
	a2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2.SafeProcessPacket(pkts[0].Time.UnixNano(), pkts[0].Data)
	keys := a2.MigratableFlows()
	if len(keys) == 1 {
		blob, err := a2.ExtractFlow(keys[0])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a2.InjectFlow(blob); err == nil {
			t.Fatal("self-injection accepted (double ownership)")
		}
	}
}

// otherUID returns the uid of some live connection on e other than key,
// to probe that its script state survives an unrelated migration.
func otherUID(t *testing.T, e *Engine, key flow.Key) string {
	t.Helper()
	ck, _ := key.Canonical()
	for k, c := range e.conns {
		if k != ck {
			return c.uid
		}
	}
	return "no-such-uid"
}

func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

// TestClusterRefusesSecondSessionWhileInstalled: an installed-but-
// uncommitted session must block new Begins on the same target (the
// endpoint refuses), or two coordinators could double-own flows.
func TestClusterRefusesSecondSessionWhileInstalled(t *testing.T) {
	pkts := mergedTrace(t)
	c, err := NewCluster(clusterCfg(), ClusterConfig{
		Instances: 2, Buckets: 8,
		Pipeline: pipeline.Config{Workers: 1, WAL: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	feedSlice(t, c, pkts, 0, len(pkts)/4)
	b := c.Table().BucketsOf(0)[0]
	slice, err := c.insts[0].par.ExtractFlows(func(vid uint64) bool { return c.table.BucketOf(vid) == b })
	if err != nil {
		t.Fatal(err)
	}
	blob, err := encodeWireSlice(wireReplace, slice)
	if err != nil {
		t.Fatal(err)
	}
	co := migrate.NewCoordinator(epTransport{c.insts[1].ep}, migrate.Options{ID: 5001, Bucket: b})
	if err := co.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := co.Ship(blob); err != nil {
		t.Fatal(err)
	}
	if err := co.Activate(); err != nil {
		t.Fatal(err)
	}
	// A second handoff to the same target must be refused outright.
	if _, err := c.BeginMigration(c.Table().BucketsOf(0)[1], 1, nil); !errors.Is(err, migrate.ErrRefused) {
		t.Fatalf("second session error = %v, want ErrRefused", err)
	}
	c.insts[1].ep.AbortSession(5001)
}
