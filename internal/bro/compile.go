// The Bro-script-to-HILTI compiler (paper §4 "Bro Script Compiler",
// Figure 8): event handlers become HILTI hooks, functions become HILTI
// functions, and the script's data types map onto HILTI equivalents —
// tables to maps, sets to sets, records to structs, with expiration
// attributes lowered onto HILTI's container state management. Print, fmt,
// logging, and network-time access go through bro_* host functions so that
// compiled and interpreted execution render output identically.

package bro

import (
	"fmt"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/rt/container"
	"hilti/internal/rt/values"
)

// Compiler translates loaded scripts into a HILTI module.
type Compiler struct {
	b       *ast.Builder
	records map[string]*RecordDecl
	rtypes  map[string]*types.Type
	globals map[string]*GlobalDecl
	funcs   map[string]*FuncDecl
	anonRec int
	lbl     int
}

// CompileScripts translates scripts into one HILTI module ("BroScripts")
// with an `__init_globals` function the host must call once per Exec.
func CompileScripts(scripts ...*Script) (*ast.Module, error) {
	c := &Compiler{
		b:       ast.NewBuilder("BroScripts"),
		records: map[string]*RecordDecl{},
		rtypes:  map[string]*types.Type{},
		globals: map[string]*GlobalDecl{},
		funcs:   map[string]*FuncDecl{},
	}
	// Built-in record types.
	c.declareRecord(&RecordDecl{Name: "conn_id", Fields: []RecordField{
		{Name: "orig_h", Type: &TypeExpr{Kind: "addr"}},
		{Name: "orig_p", Type: &TypeExpr{Kind: "port"}},
		{Name: "resp_h", Type: &TypeExpr{Kind: "addr"}},
		{Name: "resp_p", Type: &TypeExpr{Kind: "port"}},
	}})
	c.declareRecord(&RecordDecl{Name: "connection", Fields: []RecordField{
		{Name: "id", Type: &TypeExpr{Kind: "record", Name: "conn_id"}},
		{Name: "uid", Type: &TypeExpr{Kind: "string"}},
		{Name: "start_time", Type: &TypeExpr{Kind: "time"}},
	}})
	for _, s := range scripts {
		for _, rd := range s.Records {
			c.declareRecord(rd)
		}
	}
	init := c.b.Function("__init_globals", types.VoidT)
	for _, s := range scripts {
		for _, gd := range s.Globals {
			if err := c.global(gd, init); err != nil {
				return nil, err
			}
		}
	}
	init.ReturnVoid()
	for _, s := range scripts {
		for _, fd := range s.Functions {
			c.funcs[fd.Name] = fd
		}
	}
	for _, s := range scripts {
		for _, fd := range s.Functions {
			if err := c.function(fd); err != nil {
				return nil, fmt.Errorf("function %s: %w", fd.Name, err)
			}
		}
		for _, ev := range s.Events {
			if err := c.event(ev); err != nil {
				return nil, fmt.Errorf("event %s: %w", ev.Name, err)
			}
		}
	}
	return c.b.M, nil
}

func (c *Compiler) declareRecord(rd *RecordDecl) {
	c.records[rd.Name] = rd
	def := &types.StructDef{Name: rd.Name}
	for _, f := range rd.Fields {
		def.Fields = append(def.Fields, types.StructField{
			Name: f.Name, Type: c.hiltiType(f.Type), Default: values.Unset,
		})
	}
	t := types.StructT(def)
	c.rtypes[rd.Name] = t
	c.b.DeclareType(rd.Name, t)
}

// hiltiType maps a script type to a HILTI type.
func (c *Compiler) hiltiType(t *TypeExpr) *types.Type {
	if t == nil {
		return types.AnyT
	}
	switch t.Kind {
	case "bool":
		return types.BoolT
	case "count", "int":
		return types.Int64T
	case "double":
		return types.DoubleT
	case "string":
		return types.StringT
	case "addr":
		return types.AddrT
	case "subnet":
		return types.NetT
	case "port":
		return types.PortT
	case "time":
		return types.TimeT
	case "interval":
		return types.IntervalT
	case "table":
		return types.RefT(types.MapT(types.AnyT, c.hiltiType(t.Yield)))
	case "set":
		return types.RefT(types.SetT(types.AnyT))
	case "vector":
		return types.RefT(types.VectorT(c.hiltiType(t.Yield)))
	case "record":
		if rt, ok := c.rtypes[t.Name]; ok {
			return types.RefT(rt)
		}
		return types.AnyT
	default:
		return types.AnyT
	}
}

func (c *Compiler) global(gd *GlobalDecl, init *ast.FuncBuilder) error {
	c.globals[gd.Name] = gd
	t := gd.Type
	if t == nil && gd.Init != nil {
		t = c.inferType(nil, gd.Init)
	}
	c.b.Global(gd.Name, c.hiltiType(t))
	// Initializer.
	if gd.Init != nil {
		fc := &fnCtx{c: c, fb: init, locals: map[string]*TypeExpr{}}
		op, _, err := fc.expr(gd.Init)
		if err != nil {
			return err
		}
		init.Set(ast.VarOp(gd.Name), op)
	}
	// Expiration attributes -> container state management.
	if t != nil && (gd.CreateExpire > 0 || gd.ReadExpire > 0) {
		strategy := int64(container.ExpireCreate)
		ivl := gd.CreateExpire
		if gd.ReadExpire > 0 {
			strategy = int64(container.ExpireAccess)
			ivl = gd.ReadExpire
		}
		op := "map.timeout"
		if t.Kind == "set" {
			op = "set.timeout"
		}
		init.Instr(op, ast.VarOp(gd.Name),
			ast.ConstOp(values.EnumVal(container.ExpireStrategyEnum, strategy), nil),
			ast.ConstOp(values.IntervalVal(ivl), types.IntervalT))
	}
	return nil
}

func (c *Compiler) event(ev *EventHandler) error {
	params := make([]ast.Param, len(ev.Params))
	fc := &fnCtx{c: c, locals: map[string]*TypeExpr{}}
	for i, p := range ev.Params {
		params[i] = ast.Param{Name: p.Name, Type: c.hiltiType(p.Type)}
		fc.locals[p.Name] = p.Type
	}
	fb := c.b.Hook(ev.Name, 0, params...)
	fc.fb = fb
	if err := fc.stmts(ev.Body); err != nil {
		return err
	}
	fb.ReturnVoid()
	return nil
}

func (c *Compiler) function(fd *FuncDecl) error {
	params := make([]ast.Param, len(fd.Params))
	fc := &fnCtx{c: c, locals: map[string]*TypeExpr{}}
	for i, p := range fd.Params {
		params[i] = ast.Param{Name: p.Name, Type: c.hiltiType(p.Type)}
		fc.locals[p.Name] = p.Type
	}
	fb := c.b.Function(fd.Name, c.hiltiType(fd.Result), params...)
	fc.fb = fb
	if err := fc.stmts(fd.Body); err != nil {
		return err
	}
	fb.ReturnVoid()
	return nil
}

// fnCtx compiles one handler/function body.
type fnCtx struct {
	c      *Compiler
	fb     *ast.FuncBuilder
	locals map[string]*TypeExpr
}

func (fc *fnCtx) label(p string) string {
	fc.c.lbl++
	return fmt.Sprintf("__%s%d", p, fc.c.lbl)
}

// inferType derives a script type for an expression (nil env for globals).
func (c *Compiler) inferType(fc *fnCtx, e Expr) *TypeExpr {
	switch e := e.(type) {
	case *LitExpr:
		switch e.V.(type) {
		case BoolVal:
			return &TypeExpr{Kind: "bool"}
		case CountVal:
			return &TypeExpr{Kind: "count"}
		case IntVal:
			return &TypeExpr{Kind: "int"}
		case DoubleVal:
			return &TypeExpr{Kind: "double"}
		case StringVal:
			return &TypeExpr{Kind: "string"}
		case AddrVal:
			return &TypeExpr{Kind: "addr"}
		case SubnetVal:
			return &TypeExpr{Kind: "subnet"}
		case PortVal:
			return &TypeExpr{Kind: "port"}
		case TimeVal:
			return &TypeExpr{Kind: "time"}
		case IntervalVal:
			return &TypeExpr{Kind: "interval"}
		}
	case *NameExpr:
		if fc != nil {
			if t, ok := fc.locals[e.Name]; ok {
				return t
			}
		}
		if gd, ok := c.globals[e.Name]; ok {
			if gd.Type != nil {
				return gd.Type
			}
			return c.inferType(nil, gd.Init)
		}
	case *FieldExpr:
		bt := c.inferType(fc, e.Base)
		if bt != nil && bt.Kind == "record" {
			if rd, ok := c.records[bt.Name]; ok {
				for _, f := range rd.Fields {
					if f.Name == e.Field {
						return f.Type
					}
				}
			}
		}
	case *IndexExpr:
		bt := c.inferType(fc, e.Base)
		if bt != nil {
			switch bt.Kind {
			case "table", "vector":
				return bt.Yield
			}
		}
	case *BinExpr:
		switch e.Op {
		case "==", "!=", "<", ">", "<=", ">=", "&&", "||", "in", "!in":
			return &TypeExpr{Kind: "bool"}
		}
		lt := c.inferType(fc, e.L)
		rt := c.inferType(fc, e.R)
		if lt == nil {
			return rt
		}
		if rt == nil {
			return lt
		}
		// time/interval algebra.
		if lt.Kind == "time" && e.Op == "-" && rt.Kind == "time" {
			return &TypeExpr{Kind: "interval"}
		}
		if lt.Kind == "time" {
			return lt
		}
		if lt.Kind == "double" || rt.Kind == "double" {
			return &TypeExpr{Kind: "double"}
		}
		return lt
	case *UnaryExpr:
		switch e.Op {
		case "!":
			return &TypeExpr{Kind: "bool"}
		case "||":
			return &TypeExpr{Kind: "count"}
		case "-":
			return c.inferType(fc, e.E)
		}
	case *CallExpr:
		if _, ok := c.records[e.Fn]; ok {
			return &TypeExpr{Kind: "record", Name: e.Fn}
		}
		switch e.Fn {
		case "vector":
			return &TypeExpr{Kind: "vector", Yield: &TypeExpr{Kind: "any"}}
		case "network_time":
			return &TypeExpr{Kind: "time"}
		case "fmt", "to_lower", "to_upper", "cat":
			return &TypeExpr{Kind: "string"}
		}
		if fd, ok := c.funcs[e.Fn]; ok {
			return fd.Result
		}
	case *CtorExpr:
		return &TypeExpr{Kind: "record", Name: ""}
	}
	return nil
}

func (fc *fnCtx) stmts(ss []Stmt) error {
	for _, s := range ss {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *fnCtx) stmt(s Stmt) error {
	fb := fc.fb
	switch s := s.(type) {
	case *LocalStmt:
		t := s.Type
		if t == nil && s.Init != nil {
			t = fc.c.inferType(fc, s.Init)
		}
		fc.locals[s.Name] = t
		fb.Local(s.Name, fc.c.hiltiType(t))
		if s.Init != nil {
			op, _, err := fc.expr(s.Init)
			if err != nil {
				return err
			}
			fb.Set(ast.VarOp(s.Name), op)
		} else if t != nil && (t.Kind == "table" || t.Kind == "set" || t.Kind == "vector") {
			fb.Assign(ast.VarOp(s.Name), "new", ast.TypeOperand(fc.c.hiltiType(t).Deref()))
		}
		return nil
	case *AssignStmt:
		return fc.assign(s)
	case *IfStmt:
		cond, _, err := fc.expr(s.Cond)
		if err != nil {
			return err
		}
		thenL, elseL, doneL := fc.label("then"), fc.label("else"), fc.label("endif")
		fb.IfElse(cond, thenL, elseL)
		fb.Block(thenL)
		if err := fc.stmts(s.Then); err != nil {
			return err
		}
		fb.Jump(doneL)
		fb.Block(elseL)
		if err := fc.stmts(s.Else); err != nil {
			return err
		}
		fb.Block(doneL)
		return nil
	case *ForStmt:
		return fc.forStmt(s)
	case *PrintStmt:
		args := make([]ast.Operand, 0, len(s.Args))
		for _, a := range s.Args {
			op, _, err := fc.expr(a)
			if err != nil {
				return err
			}
			args = append(args, op)
		}
		fb.Call("bro_print", args...)
		return nil
	case *AddStmt:
		base, _, err := fc.expr(s.Target.Base)
		if err != nil {
			return err
		}
		key, err := fc.keyOperand(s.Target.Keys)
		if err != nil {
			return err
		}
		fb.Instr("set.insert", base, key)
		return nil
	case *DeleteStmt:
		base, bt, err := fc.expr(s.Target.Base)
		if err != nil {
			return err
		}
		key, err := fc.keyOperand(s.Target.Keys)
		if err != nil {
			return err
		}
		op := "map.remove"
		if bt != nil && bt.Kind == "set" {
			op = "set.remove"
		}
		fb.Instr(op, base, key)
		return nil
	case *ReturnStmt:
		if s.Value == nil {
			fb.ReturnVoid()
			// Continue into an unreachable fresh block so later statements
			// still lower (dead code, as in the source).
			fb.Block(fc.label("dead"))
			return nil
		}
		op, _, err := fc.expr(s.Value)
		if err != nil {
			return err
		}
		fb.Return(op)
		fb.Block(fc.label("dead"))
		return nil
	case *ExprStmt:
		_, _, err := fc.expr(s.E)
		return err
	case *EventStmt:
		args := make([]ast.Operand, 0, len(s.Args)+1)
		args = append(args, ast.FuncOperand(s.Name))
		for _, a := range s.Args {
			op, _, err := fc.expr(a)
			if err != nil {
				return err
			}
			args = append(args, op)
		}
		fb.Instr("hook.run", args...)
		return nil
	default:
		return fmt.Errorf("cannot compile statement %T", s)
	}
}

// keyOperand builds the map/set key: single value or tuple.
func (fc *fnCtx) keyOperand(keys []Expr) (ast.Operand, error) {
	if len(keys) == 1 {
		op, _, err := fc.expr(keys[0])
		return op, err
	}
	elems := make([]ast.Operand, len(keys))
	for i, k := range keys {
		op, _, err := fc.expr(k)
		if err != nil {
			return ast.Operand{}, err
		}
		elems[i] = op
	}
	return ast.Operand{Kind: ast.CtorOp, Elems: elems}, nil
}

func (fc *fnCtx) assign(s *AssignStmt) error {
	fb := fc.fb
	switch l := s.LHS.(type) {
	case *NameExpr:
		rhs, rt, err := fc.expr(s.RHS)
		if err != nil {
			return err
		}
		if _, known := fc.locals[l.Name]; !known {
			if _, isGlobal := fc.c.globals[l.Name]; !isGlobal {
				// Implicit local.
				fc.locals[l.Name] = rt
				fb.Local(l.Name, fc.c.hiltiType(rt))
			}
		}
		fb.Set(ast.VarOp(l.Name), rhs)
		return nil
	case *FieldExpr:
		base, _, err := fc.expr(l.Base)
		if err != nil {
			return err
		}
		rhs, _, err := fc.expr(s.RHS)
		if err != nil {
			return err
		}
		fb.Instr("struct.set", base, ast.FieldOperand(l.Field), rhs)
		return nil
	case *IndexExpr:
		base, bt, err := fc.expr(l.Base)
		if err != nil {
			return err
		}
		rhs, _, err := fc.expr(s.RHS)
		if err != nil {
			return err
		}
		if bt != nil && bt.Kind == "vector" {
			idx, _, err := fc.expr(l.Keys[0])
			if err != nil {
				return err
			}
			fb.Instr("vector.set", base, idx, rhs)
			return nil
		}
		key, err := fc.keyOperand(l.Keys)
		if err != nil {
			return err
		}
		fb.Instr("map.insert", base, key, rhs)
		return nil
	}
	return fmt.Errorf("cannot compile assignment to %T", s.LHS)
}

func (fc *fnCtx) forStmt(s *ForStmt) error {
	fb := fc.fb
	over, ot, err := fc.expr(s.Over)
	if err != nil {
		return err
	}
	elemsOp := fb.Temp(types.RefT(types.VectorT(types.AnyT)))
	kind := "table"
	if ot != nil {
		kind = ot.Kind
	}
	switch kind {
	case "set":
		fb.Assign(elemsOp, "set.elems", over)
	case "table":
		fb.Assign(elemsOp, "map.keys", over)
	case "vector":
		fb.Set(elemsOp, over)
	default:
		return fmt.Errorf("cannot iterate %s", kind)
	}
	i := fb.Temp(types.Int64T)
	n := fb.Temp(types.Int64T)
	cond := fb.Temp(types.BoolT)
	fb.Set(i, ast.IntOp(0))
	fb.Assign(n, "vector.size", elemsOp)

	var elemT *TypeExpr
	if ot != nil {
		switch ot.Kind {
		case "set", "table":
			if len(ot.Index) == 1 {
				elemT = ot.Index[0]
			}
		case "vector":
			elemT = &TypeExpr{Kind: "count"}
		}
	}
	if _, known := fc.locals[s.Var]; !known {
		fc.locals[s.Var] = elemT
		fb.Local(s.Var, fc.c.hiltiType(elemT))
	}
	if s.Var2 != "" {
		var v2T *TypeExpr
		if ot != nil {
			v2T = ot.Yield
		}
		if _, known := fc.locals[s.Var2]; !known {
			fc.locals[s.Var2] = v2T
			fb.Local(s.Var2, fc.c.hiltiType(v2T))
		}
	}

	loopL, bodyL, doneL := fc.label("loop"), fc.label("body"), fc.label("done")
	fb.Jump(loopL)
	fb.Block(loopL)
	fb.Assign(cond, "int.lt", i, n)
	fb.IfElse(cond, bodyL, doneL)
	fb.Block(bodyL)
	if kind == "vector" {
		fb.Set(ast.VarOp(s.Var), i)
		if s.Var2 != "" {
			fb.Assign(ast.VarOp(s.Var2), "vector.get", elemsOp, i)
		}
	} else {
		fb.Assign(ast.VarOp(s.Var), "vector.get", elemsOp, i)
		if s.Var2 != "" && kind == "table" {
			fb.Assign(ast.VarOp(s.Var2), "map.get", over, ast.VarOp(s.Var))
		}
	}
	if err := fc.stmts(s.Body); err != nil {
		return err
	}
	fb.Assign(i, "int.add", i, ast.IntOp(1))
	fb.Jump(loopL)
	fb.Block(doneL)
	return nil
}
