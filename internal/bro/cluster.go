// Elastic cluster mode: several Parallel instances behind one
// consistent-hash routing table, with live flow-state migration between
// them (internal/rt/migrate). The cluster's Feed goroutine owns the
// routing table; a migration moves one bucket's flows from their current
// owner to another instance in two phases:
//
//	BeginMigration  — open the handoff session, pre-copy the bucket's
//	                  analyzer state (WAL mode), record WAL cursors.
//	                  The source keeps owning and processing the bucket.
//	Complete        — quiesce the slice, ship the WAL delta tail (or a
//	                  fresh full extract when the tail cannot be
//	                  attributed per-flow), activate on the target,
//	                  forget on the source, flip the routing table.
//
// The routing flip is the commit point: until it happens no packet has
// ever been routed to the target for the migrating flows, so any failure
// at any step resolves by aborting the session — the source retains, the
// target discards — never split-brain, never double ownership. A kill
// after the target's activate ack resolves forward instead: the target
// owns the slice and the flip still happens.
//
// Everything an instance ships crosses the session as checksummed frames,
// so although the instances here share a process, the protocol is exactly
// what a socket transport would run between hosts.
package bro

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"hilti/internal/pkt/flow"
	"hilti/internal/pkt/pipeline"
	"hilti/internal/rt/migrate"
	"hilti/internal/rt/ruleplane"
	"hilti/internal/rt/snapshot"
	"hilti/internal/rt/wal"
)

// ClusterConfig sizes the cluster.
type ClusterConfig struct {
	Instances   int             // initial instance count (default 2)
	Buckets     int             // routing buckets, power of two (default 32)
	Pipeline    pipeline.Config // per-instance pipeline config (Workers, WAL, ...)
	MaxAttempts int             // frame sends per handoff step (default 4)
}

// Cluster is a set of Parallel instances plus the routing and migration
// machinery. All methods belong to one control goroutine — the same one
// that calls Feed — mirroring the single-producer contract of
// Pipeline.Feed.
type Cluster struct {
	cfg      Config
	ccfg     ClusterConfig
	insts    []*clusterInstance // every instance ever created; index = id
	n        int                // insts[:n] are active, the rest retired
	table    *migrate.Table
	ledger   *migrate.Ledger
	nextSess uint64
	pending  map[int]uint64 // target instance -> open handoff session

	tailHandoffs     uint64 // committed via the filtered WAL delta tail
	fallbackHandoffs uint64 // committed via a fresh full extract
}

type clusterInstance struct {
	id   int
	par  *Parallel
	ep   *migrate.Endpoint
	sink *clusterSink
}

// NewCluster builds the initial instances and a balanced routing table.
func NewCluster(cfg Config, ccfg ClusterConfig) (*Cluster, error) {
	if ccfg.Instances <= 0 {
		ccfg.Instances = 2
	}
	if ccfg.Buckets <= 0 {
		ccfg.Buckets = 32
	}
	table, err := migrate.NewTable(ccfg.Buckets, ccfg.Instances)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, ccfg: ccfg, table: table, ledger: migrate.NewLedger(),
		pending: map[int]uint64{}}
	for i := 0; i < ccfg.Instances; i++ {
		if _, err := c.newInstance(); err != nil {
			c.Close() //nolint:errcheck // already failing
			return nil, err
		}
	}
	c.n = ccfg.Instances
	return c, nil
}

func (c *Cluster) newInstance() (*clusterInstance, error) {
	pcfg := c.ccfg.Pipeline
	if len(c.insts) > 0 {
		// One registry cannot tell instances apart (worker keys repeat),
		// so only instance 0 reports; the rest run unobserved.
		pcfg.Metrics = nil
	}
	cfg := c.cfg
	if pcfg.Metrics == nil {
		cfg.Metrics = nil
	}
	par, err := NewParallelWith(cfg, pcfg)
	if err != nil {
		return nil, err
	}
	inst := &clusterInstance{id: len(c.insts), par: par}
	inst.sink = &clusterSink{inst: inst, installed: map[uint64]*pipeline.FlowSlice{}}
	inst.ep = migrate.NewEndpoint(inst.sink)
	c.insts = append(c.insts, inst)
	return inst, nil
}

// Instances returns the active instance count.
func (c *Cluster) Instances() int { return c.n }

// Table exposes the routing table (reads only; flips belong to Complete).
func (c *Cluster) Table() *migrate.Table { return c.table }

// Ledger exposes the migration ledger for invariant checks.
func (c *Cluster) Ledger() *migrate.Ledger { return c.ledger }

// RulePlane returns the cluster's shared rule plane, or nil when none is
// configured. Every instance's pipeline holds the same *ruleplane.Plane
// (NewParallelWith hoists cfg.RulePlane to each pipeline ingress), so one
// Swap reaches the whole cluster; note the shadow window drains across
// all instances' feeders, so ShadowPackets may exceed Window.
func (c *Cluster) RulePlane() *ruleplane.Plane { return c.insts[0].par.RulePlane() }

// Feed routes one frame to its flow's current owner. Unkeyable frames
// share virtual id 0, so they ride whichever instance owns its bucket —
// deterministically, like the pipeline's vthread 0.
func (c *Cluster) Feed(tsNs int64, frame []byte) error {
	var vid uint64
	if key, ok := flow.FromFrame(frame); ok {
		vid = key.Hash()
	}
	return c.insts[c.table.Owner(vid)].par.Feed(tsNs, frame)
}

// Close shuts every instance down, retired ones included (their logs are
// part of the cluster's output until collected).
func (c *Cluster) Close() {
	for _, inst := range c.insts {
		inst.par.Close()
	}
}

// MergedLines gathers one log stream across every instance (active and
// retired) in the same canonical order as Parallel.MergedLines, for
// byte-identical comparison against a single node.
func (c *Cluster) MergedLines(stream string) []string {
	var all []string
	for _, inst := range c.insts {
		all = append(all, inst.par.MergedLines(stream)...)
	}
	sort.Strings(all)
	return all
}

// Events sums event counts across all instances, net of the duplicate
// per-engine lifecycle events (one engine's worth is kept).
func (c *Cluster) Events() int {
	n := 0
	engines := 0
	for _, inst := range c.insts {
		for _, e := range inst.par.Engines {
			n += int(e.events.Load())
			engines++
		}
	}
	return n - (engines - 1)
}

// Owners returns the ids of every instance holding any state for the
// flow. The single-owner invariant demands len(Owners) <= 1 at every
// between-migrations point.
func (c *Cluster) Owners(key flow.Key) ([]int, error) {
	vid := key.Hash()
	var out []int
	for _, inst := range c.insts {
		owned, err := inst.par.OwnsFlow(key, vid)
		if err != nil {
			return nil, err
		}
		if owned {
			out = append(out, inst.id)
		}
	}
	return out, nil
}

// CheckOwnership verifies the exact ownership ledger on every instance:
// flows opened locally plus migrated in equal flows closed locally plus
// migrated out plus currently live.
func (c *Cluster) CheckOwnership() error {
	for _, inst := range c.insts {
		opened, closed, live, err := inst.flowCounts()
		if err != nil {
			return err
		}
		if err := c.ledger.CheckOwnership(inst.id, opened, closed, live); err != nil {
			return err
		}
	}
	return nil
}

// flowCounts sums the engine flow ledgers across an instance's workers.
// A live instance is quiesced first so the worker goroutines' writes are
// ordered before the read; a closed one is already final.
func (inst *clusterInstance) flowCounts() (opened, closed, live uint64, err error) {
	if _, qerr := inst.par.ExtractFlows(func(uint64) bool { return false }); qerr != nil && !errors.Is(qerr, pipeline.ErrClosed) {
		return 0, 0, 0, qerr
	}
	for _, e := range inst.par.Engines {
		o, cl, a := e.FlowCounts()
		opened += o
		closed += cl
		live += uint64(a)
	}
	return opened, closed, live, nil
}

// --- migration ------------------------------------------------------------------

// Migration is one in-flight bucket handoff between BeginMigration and
// Complete. The source keeps owning the bucket in between; the cluster
// may keep feeding packets.
type Migration struct {
	c        *Cluster
	bucket   int
	from, to int
	co       *migrate.Coordinator
	id       uint64
	precopy  bool // WAL pre-copy shipped; Complete tries the delta tail
	cursors  []wal.Cursor
	filters  []*flowFilter
	byUID    map[string]*flowFilter
	done     bool
	err      error
}

// flowFilter pairs a pre-copied flow's delta filter with the virtual id
// the target routes its filtered records by.
type flowFilter struct {
	f   *FlowDeltaFilter
	vid uint64
}

func (m *Migration) match(vid uint64) bool { return m.c.table.BucketOf(vid) == m.bucket }

// BeginMigration opens a handoff session moving bucket b to instance
// `to`. In WAL mode the bucket's analyzer state is pre-copied now, while
// the source keeps processing; Complete later ships only the delta tail.
// Any failure aborts the session cleanly: the source retains everything.
func (c *Cluster) BeginMigration(b, to int, inj migrate.Injector) (*Migration, error) {
	if b < 0 || b >= c.table.Buckets() {
		return nil, fmt.Errorf("bro: bucket %d out of range", b)
	}
	if to < 0 || to >= c.n {
		return nil, fmt.Errorf("bro: target instance %d not active", to)
	}
	from := c.table.OwnerOf(b)
	if from == to {
		return nil, fmt.Errorf("bro: bucket %d already on instance %d", b, to)
	}
	if id, open := c.pending[to]; open {
		// The endpoint holds at most one session; a second Begin would
		// supersede the live coordinator's buffer.
		return nil, fmt.Errorf("bro: instance %d already receiving handoff %d", to, id)
	}
	c.nextSess++
	m := &Migration{
		c: c, bucket: b, from: from, to: to, id: c.nextSess,
		byUID: map[string]*flowFilter{},
	}
	m.co = migrate.NewCoordinator(epTransport{c.insts[to].ep}, migrate.Options{
		ID: m.id, Bucket: b, Epoch: c.table.Epoch(),
		MaxAttempts: c.ccfg.MaxAttempts, Injector: inj,
	})
	c.pending[to] = m.id
	if err := m.co.Begin(); err != nil {
		return nil, m.fail(err)
	}
	if c.ccfg.Pipeline.WAL {
		src := c.insts[from].par
		pre, err := src.ExtractFlows(m.match)
		if err != nil {
			return nil, m.fail(err)
		}
		cursors, err := src.WALCursors()
		if err != nil {
			return nil, m.fail(err)
		}
		for _, hf := range pre.Handler {
			uid, err := FlowBlobUID(hf.Blob)
			if err != nil {
				return nil, m.fail(err)
			}
			ff := &flowFilter{f: NewFlowDeltaFilter(uid), vid: hf.VID}
			if err := ff.f.SeedConnBlob(hf.Blob); err != nil {
				return nil, m.fail(err)
			}
			m.filters = append(m.filters, ff)
			m.byUID[uid] = ff
			blob, err := encodeWireFlow(hf)
			if err != nil {
				return nil, m.fail(err)
			}
			if err := m.co.Ship(blob); err != nil {
				return nil, m.fail(err)
			}
		}
		m.cursors = cursors
		m.precopy = true
	}
	return m, nil
}

// Complete finishes the handoff: quiesce, ship the tail (or a fresh full
// extract), activate, forget on the source, flip the routing table, and
// record the ledger entry. After a nil return the target owns the bucket.
func (m *Migration) Complete() error {
	if m.done {
		return m.err
	}
	src := m.c.insts[m.from].par
	// The fresh extract is both the quiesce barrier and the authoritative
	// slice: what the source forgets at commit, and — scheduling entries
	// and quarantine marks always, analyzer state on the fallback path —
	// what the target installs.
	fresh, err := src.ExtractFlows(m.match)
	if err != nil {
		return m.fail(err)
	}
	var frames [][]byte
	tail := false
	if m.precopy {
		frames = m.deltaTail(fresh)
		tail = frames != nil
	}
	if frames == nil {
		blob, err := encodeWireSlice(wireReplace, fresh)
		if err != nil {
			return m.fail(err)
		}
		frames = [][]byte{blob}
	}
	for _, fr := range frames {
		if err := m.co.Ship(fr); err != nil {
			return m.fail(err)
		}
	}
	if err := m.co.Activate(); err != nil {
		return m.fail(err)
	}
	var forgetErr error
	m.co.Commit(func() error { //nolint:errcheck // Commit resolves forward
		forgetErr = src.ForgetFlows(fresh)
		return forgetErr
	})
	m.c.table.Flip(m.bucket, m.to)
	m.c.ledger.Commit(m.from, m.to, len(fresh.Handler))
	// The flip resolved the session; free the endpoint for the next one.
	tgt := m.c.insts[m.to]
	tgt.ep.ReleaseSession(m.id)
	delete(tgt.sink.installed, m.id)
	delete(m.c.pending, m.to)
	if tail {
		m.c.tailHandoffs++
	} else {
		m.c.fallbackHandoffs++
	}
	m.done = true
	m.err = nil
	return forgetErr
}

// HandoffStats reports how committed migrations shipped their state:
// via the filtered WAL delta tail, or via the fresh-full-extract fallback.
func (c *Cluster) HandoffStats() (tail, fallback uint64) {
	return c.tailHandoffs, c.fallbackHandoffs
}

// deltaTail builds the Complete-phase frames for the pre-copy path: the
// per-flow filtered WAL tail plus the fresh scheduling slice. It returns
// nil whenever exact per-flow attribution is impossible — a flow born
// after the pre-copy, a whole-table rewrite, a re-based WAL — and the
// caller falls back to shipping the fresh full extract instead.
func (m *Migration) deltaTail(fresh *pipeline.FlowSlice) [][]byte {
	for _, hf := range fresh.Handler {
		uid, err := FlowBlobUID(hf.Blob)
		if err != nil {
			return nil
		}
		if _, ok := m.byUID[uid]; !ok {
			return nil // born during the window: not pre-copied
		}
	}
	src := m.c.insts[m.from].par
	var frames [][]byte
	for i := range m.cursors {
		// Scan every record, not just the bucket's: a migrating flow can
		// be mutated under another flow's packet (idle expiry, table
		// expiry sweeps), and only the filter can attribute that.
		recs, _, err := src.FlowDeltasSince(i, m.cursors[i], func(uint64) bool { return true })
		if err != nil {
			return nil
		}
		for _, rec := range recs {
			for _, ff := range m.filters {
				out, err := ff.f.Filter(rec.Data)
				if err != nil {
					return nil
				}
				if out == nil {
					continue
				}
				fr, err := encodeWireDelta(ff.vid, out)
				if err != nil {
					return nil
				}
				frames = append(frames, fr)
			}
		}
	}
	sched := &pipeline.FlowSlice{Sched: fresh.Sched, Quar: fresh.Quar}
	fr, err := encodeWireSlice(wireSched, sched)
	if err != nil {
		return nil
	}
	return append(frames, fr)
}

// fail aborts the session on both sides and records the abort. The source
// never forgot anything, the target discards whatever it buffered or
// installed, and routing never flipped — the failed handoff is invisible
// except in the ledger's abort count.
func (m *Migration) fail(err error) error {
	m.done = true
	m.err = err
	m.co.Abort()
	m.c.insts[m.to].ep.AbortSession(m.id)
	m.c.ledger.Abort(m.from, m.to)
	if m.c.pending[m.to] == m.id {
		delete(m.c.pending, m.to)
	}
	return err
}

// MigrateBucket runs a whole handoff in one call.
func (c *Cluster) MigrateBucket(b, to int, inj migrate.Injector) error {
	m, err := c.BeginMigration(b, to, inj)
	if err != nil {
		return err
	}
	return m.Complete()
}

// ScaleOut adds one instance (reviving a drained retired one if present)
// and migrates buckets onto it until ownership is balanced. A failed
// bucket migration aborts cleanly and leaves that bucket where it was;
// the error is reported but the cluster stays consistent.
func (c *Cluster) ScaleOut(inj migrate.Injector) (int, error) {
	if c.n >= c.table.Buckets() {
		return -1, fmt.Errorf("bro: cannot exceed %d instances", c.table.Buckets())
	}
	if c.n >= len(c.insts) {
		if _, err := c.newInstance(); err != nil {
			return -1, err
		}
	}
	c.n++
	id := c.n - 1
	var errs []error
	for _, flip := range c.table.Rebalance(c.n) {
		if err := c.MigrateBucket(flip[0], flip[1], inj); err != nil {
			errs = append(errs, err)
		}
	}
	return id, errors.Join(errs...)
}

// ScaleIn drains the last instance, migrating its buckets to the rest,
// and retires it once it owns nothing. If any migration aborts, the
// instance keeps its remaining buckets and stays active.
func (c *Cluster) ScaleIn(inj migrate.Injector) error {
	if c.n <= 1 {
		return errors.New("bro: cannot scale below one instance")
	}
	var errs []error
	for _, flip := range c.table.Rebalance(c.n - 1) {
		if err := c.MigrateBucket(flip[0], flip[1], inj); err != nil {
			errs = append(errs, err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	if owned := c.table.BucketsOf(c.n - 1); len(owned) != 0 {
		return fmt.Errorf("bro: retiring instance still owns buckets %v", owned)
	}
	c.n--
	return nil
}

// epTransport delivers frames to an in-process endpoint. Every byte still
// crosses as an encoded, checksummed frame.
type epTransport struct{ ep *migrate.Endpoint }

func (t epTransport) Send(frame []byte) ([]byte, error) { return t.ep.Handle(frame), nil }

// --- target-side sink -----------------------------------------------------------

// clusterSink applies a verified handoff session to its instance. Install
// is all-or-nothing: any error forgets whatever the session already
// touched, so the endpoint can refuse and the source retain.
type clusterSink struct {
	inst      *clusterInstance
	installed map[uint64]*pipeline.FlowSlice
}

func (s *clusterSink) Prepare(id uint64, bucket int) error { return nil }

func (s *clusterSink) Install(id uint64, blobs [][]byte) (int, error) {
	var handler []pipeline.HandlerFlow
	var deltas []pipeline.FlowDelta
	var sched, replace *pipeline.FlowSlice
	for _, b := range blobs {
		kind, payload, err := splitWire(b)
		if err != nil {
			return 0, err
		}
		switch kind {
		case wireFlow:
			hf, err := decodeWireFlow(payload)
			if err != nil {
				return 0, err
			}
			handler = append(handler, hf)
		case wireDelta:
			d, err := decodeWireDelta(payload)
			if err != nil {
				return 0, err
			}
			deltas = append(deltas, d)
		case wireSched:
			sl, err := decodeWireSlice(payload)
			if err != nil {
				return 0, err
			}
			sched = sl
		case wireReplace:
			sl, err := decodeWireSlice(payload)
			if err != nil {
				return 0, err
			}
			replace = sl
		default:
			return 0, fmt.Errorf("bro: unknown migration blob kind %d", kind)
		}
	}
	par := s.inst.par
	if replace != nil {
		// Authoritative full slice: whatever was pre-copied is superseded.
		if err := par.InjectFlows(replace); err != nil {
			par.ForgetFlows(replace) //nolint:errcheck // best-effort rollback
			return 0, err
		}
		s.installed[id] = replace
		return len(replace.Handler), nil
	}
	union := &pipeline.FlowSlice{Handler: handler}
	if sched != nil {
		union.Sched, union.Quar = sched.Sched, sched.Quar
	}
	if err := par.InjectFlows(&pipeline.FlowSlice{Handler: handler}); err != nil {
		par.ForgetFlows(union) //nolint:errcheck // best-effort rollback
		return 0, err
	}
	closed, err := par.ApplyFlowDeltas(deltas)
	if err != nil {
		par.ForgetFlows(union) //nolint:errcheck // best-effort rollback
		return 0, err
	}
	if sched != nil {
		if err := par.InjectFlows(&pipeline.FlowSlice{Sched: sched.Sched, Quar: sched.Quar}); err != nil {
			par.ForgetFlows(union) //nolint:errcheck // best-effort rollback
			return 0, err
		}
	}
	s.installed[id] = union
	return len(handler) - closed, nil
}

func (s *clusterSink) Discard(id uint64) {
	if sl := s.installed[id]; sl != nil {
		s.inst.par.ForgetFlows(sl) //nolint:errcheck // best-effort by contract
		delete(s.installed, id)
	}
}

// --- wire blobs -----------------------------------------------------------------

// Blob kinds inside State frames. The frame layer already checksums and
// sequences; these bytes only say what the payload is.
const (
	wireFlow    byte = 1 // one pre-copied handler flow
	wireDelta   byte = 2 // one filtered per-flow delta record
	wireSched   byte = 3 // fresh scheduling entries + quarantine marks
	wireReplace byte = 4 // authoritative full slice (fallback path)
)

func splitWire(b []byte) (byte, []byte, error) {
	if len(b) == 0 {
		return 0, nil, errors.New("bro: empty migration blob")
	}
	return b[0], b[1:], nil
}

func encodeWireFlow(hf pipeline.HandlerFlow) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(wireFlow)
	enc := snapshot.NewRawEncoder(&buf)
	enc.U64(hf.VID)
	encodeKey(enc, hf.Key)
	enc.Bytes(hf.Blob)
	return buf.Bytes(), enc.Err()
}

func decodeWireFlow(payload []byte) (pipeline.HandlerFlow, error) {
	dec := snapshot.NewRawDecoder(payload)
	hf := pipeline.HandlerFlow{VID: dec.U64()}
	hf.Key = decodeKey(dec)
	hf.Blob = bytes.Clone(dec.Bytes())
	return hf, dec.Err()
}

func encodeWireDelta(vid uint64, data []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(wireDelta)
	enc := snapshot.NewRawEncoder(&buf)
	enc.U64(vid)
	enc.Bytes(data)
	return buf.Bytes(), enc.Err()
}

func decodeWireDelta(payload []byte) (pipeline.FlowDelta, error) {
	dec := snapshot.NewRawDecoder(payload)
	d := pipeline.FlowDelta{VID: dec.U64()}
	d.Data = bytes.Clone(dec.Bytes())
	return d, dec.Err()
}

func encodeWireSlice(kind byte, s *pipeline.FlowSlice) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(kind)
	enc := snapshot.NewRawEncoder(&buf)
	enc.U32(uint32(len(s.Handler)))
	for _, hf := range s.Handler {
		enc.U64(hf.VID)
		encodeKey(enc, hf.Key)
		enc.Bytes(hf.Blob)
	}
	enc.U32(uint32(len(s.Sched)))
	for _, sf := range s.Sched {
		enc.U64(sf.VID)
		enc.Bool(sf.HasKey)
		encodeKey(enc, sf.Key)
		enc.I64(sf.Deadline)
	}
	enc.U32(uint32(len(s.Quar)))
	for _, q := range s.Quar {
		enc.U64(q.VID)
		enc.U64(q.Dropped)
	}
	return buf.Bytes(), enc.Err()
}

func decodeWireSlice(payload []byte) (*pipeline.FlowSlice, error) {
	dec := snapshot.NewRawDecoder(payload)
	s := &pipeline.FlowSlice{}
	nh := dec.Len(keyBytes + 10)
	for i := 0; i < nh && dec.Err() == nil; i++ {
		hf := pipeline.HandlerFlow{VID: dec.U64()}
		hf.Key = decodeKey(dec)
		hf.Blob = bytes.Clone(dec.Bytes())
		s.Handler = append(s.Handler, hf)
	}
	ns := dec.Len(keyBytes + 10)
	for i := 0; i < ns && dec.Err() == nil; i++ {
		sf := pipeline.SchedFlow{VID: dec.U64(), HasKey: dec.Bool()}
		sf.Key = decodeKey(dec)
		sf.Deadline = dec.I64()
		s.Sched = append(s.Sched, sf)
	}
	nq := dec.Len(16)
	for i := 0; i < nq && dec.Err() == nil; i++ {
		s.Quar = append(s.Quar, pipeline.QuarMark{VID: dec.U64(), Dropped: dec.U64()})
	}
	return s, dec.Err()
}
