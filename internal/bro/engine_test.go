package bro

import (
	"strings"
	"testing"

	"hilti/internal/pkt/gen"
	"hilti/internal/pkt/pcap"
)

func smallHTTPTrace(t testing.TB) []pcap.Packet {
	t.Helper()
	cfg := gen.DefaultHTTPConfig()
	cfg.Sessions = 60
	return gen.GenerateHTTP(cfg)
}

func smallDNSTrace(t testing.TB) []pcap.Packet {
	t.Helper()
	cfg := gen.DefaultDNSConfig()
	cfg.Transactions = 400
	return gen.GenerateDNS(cfg)
}

func runEngine(t testing.TB, cfg Config, pkts []pcap.Packet) *Engine {
	t.Helper()
	cfg.Quiet = true
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.ProcessTrace(pkts)
	return e
}

func TestStandardInterpHTTP(t *testing.T) {
	e := runEngine(t, Config{
		Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript},
	}, smallHTTPTrace(t))
	httpLines := e.Logs.Lines("http")
	if len(httpLines) < 40 {
		t.Fatalf("http.log has only %d lines", len(httpLines))
	}
	// Sanity: lines carry methods and status codes.
	sawGET, saw200 := false, false
	for _, l := range httpLines {
		if strings.Contains(l, "\tGET\t") {
			sawGET = true
		}
		if strings.Contains(l, "\t200\t") {
			saw200 = true
		}
	}
	if !sawGET || !saw200 {
		t.Fatalf("log content unexpected: %q", httpLines[0])
	}
	if len(e.Logs.Lines("files")) == 0 {
		t.Fatal("files.log empty")
	}
}

func TestStandardInterpDNS(t *testing.T) {
	e := runEngine(t, Config{
		Parser: "standard", ScriptExec: "interp",
		Scripts: []string{DNSScript},
	}, smallDNSTrace(t))
	lines := e.Logs.Lines("dns")
	if len(lines) < 300 {
		t.Fatalf("dns.log has only %d lines", len(lines))
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"NOERROR", "NXDOMAIN", "\tA\t", "\tTXT\t", "\tMX\t"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("dns.log missing %q", want)
		}
	}
}

// TestBinpacHTTPAgreesWithStandard reproduces Table 2's methodology on the
// HTTP logs: both parser paths, same scripts (interpreted), then normalize
// and diff.
func TestBinpacHTTPAgreesWithStandard(t *testing.T) {
	pkts := smallHTTPTrace(t)
	std := runEngine(t, Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript}}, pkts)
	pac := runEngine(t, Config{Parser: "binpac", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript}}, pkts)

	for _, stream := range []string{"http", "files"} {
		agr := CompareLogs(stream, std.Logs.Lines(stream), pac.Logs.Lines(stream))
		t.Logf("%s.log: std=%d pac=%d identical=%.2f%%",
			stream, agr.NormA, agr.NormB, 100*agr.IdenticalFrac)
		if agr.NormA == 0 {
			t.Fatalf("%s.log empty", stream)
		}
		if agr.IdenticalFrac < 0.90 {
			// The paper reports 98.91%/98.36%; we accept >=90% here and
			// report the exact number via the harness.
			t.Errorf("%s.log agreement too low: %.2f%%", stream, 100*agr.IdenticalFrac)
		}
	}
}

func TestBinpacDNSAgreesWithStandard(t *testing.T) {
	pkts := smallDNSTrace(t)
	std := runEngine(t, Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{DNSScript}}, pkts)
	pac := runEngine(t, Config{Parser: "binpac", ScriptExec: "interp",
		Scripts: []string{DNSScript}}, pkts)
	agr := CompareLogs("dns", std.Logs.Lines("dns"), pac.Logs.Lines("dns"))
	t.Logf("dns.log: std=%d pac=%d identical=%.2f%%", agr.NormA, agr.NormB, 100*agr.IdenticalFrac)
	if agr.IdenticalFrac < 0.95 {
		t.Errorf("dns.log agreement too low: %.2f%%", 100*agr.IdenticalFrac)
	}
}

// TestCompiledScriptsMatchInterp reproduces Table 3's methodology: same
// standard parsers, scripts interpreted vs compiled to HILTI.
func TestCompiledScriptsMatchInterp(t *testing.T) {
	pkts := smallHTTPTrace(t)
	ip := runEngine(t, Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript, FilesScript}}, pkts)
	hl := runEngine(t, Config{Parser: "standard", ScriptExec: "hilti",
		Scripts: []string{HTTPScript, FilesScript}}, pkts)
	for _, stream := range []string{"http", "files"} {
		agr := CompareLogs(stream, ip.Logs.Lines(stream), hl.Logs.Lines(stream))
		t.Logf("%s.log: interp=%d hilti=%d identical=%.2f%%",
			stream, agr.NormA, agr.NormB, 100*agr.IdenticalFrac)
		if agr.IdenticalFrac < 0.999 {
			t.Errorf("%s.log: compiled scripts diverge: %.3f%%", stream, 100*agr.IdenticalFrac)
		}
	}
}

func TestCompiledScriptsMatchInterpDNS(t *testing.T) {
	pkts := smallDNSTrace(t)
	ip := runEngine(t, Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{DNSScript}}, pkts)
	hl := runEngine(t, Config{Parser: "standard", ScriptExec: "hilti",
		Scripts: []string{DNSScript}}, pkts)
	agr := CompareLogs("dns", ip.Logs.Lines("dns"), hl.Logs.Lines("dns"))
	t.Logf("dns.log: interp=%d hilti=%d identical=%.2f%%", agr.NormA, agr.NormB, 100*agr.IdenticalFrac)
	if agr.IdenticalFrac < 0.999 {
		t.Errorf("dns.log: compiled scripts diverge: %.3f%%", 100*agr.IdenticalFrac)
	}
}

func TestStatsComponentsPopulated(t *testing.T) {
	pkts := smallHTTPTrace(t)
	e, err := NewEngine(Config{Parser: "binpac", ScriptExec: "interp",
		Scripts: []string{HTTPScript}, Quiet: true, DiscardLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	st := e.ProcessTrace(pkts)
	if st.Parsing <= 0 || st.Script <= 0 || st.Glue <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Total < st.Parsing {
		t.Fatalf("total < parsing: %+v", st)
	}
}
