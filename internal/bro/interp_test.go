package bro

import (
	"bytes"
	"strings"
	"testing"

	"hilti/internal/rt/values"
)

func loadInterp(t *testing.T, src string) (*Interp, *bytes.Buffer) {
	t.Helper()
	s, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	ip := NewInterp()
	if err := ip.Load(s); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	ip.Out = &out
	return ip, &out
}

// trackBro is Figure 8(a) verbatim.
const trackBro = `
global hosts: set[addr];

event connection_established(c: connection) {
    add hosts[c$id$resp_h];   # Record responder IP.
}

event bro_done() {
    for ( i in hosts )        # Print all recorded IPs.
        print i;
}
`

func TestFigure8TrackInterp(t *testing.T) {
	ip, out := loadInterp(t, trackBro)
	for _, addr := range []string{"208.80.152.118", "208.80.152.2", "208.80.152.3", "208.80.152.2"} {
		c := ip.MakeConn("C1", values.MustParseAddr("10.0.0.1"), values.MustParseAddr(addr),
			PortVal{Num: 1024, Proto: values.ProtoTCP}, PortVal{Num: 80, Proto: values.ProtoTCP}, 0)
		if err := ip.Dispatch("connection_established", c); err != nil {
			t.Fatal(err)
		}
	}
	if err := ip.Dispatch("bro_done"); err != nil {
		t.Fatal(err)
	}
	want := "208.80.152.118\n208.80.152.2\n208.80.152.3\n"
	if out.String() != want {
		t.Fatalf("output %q, want %q", out.String(), want)
	}
}

const fibBro = `
function fib(n: count): count {
    if ( n < 2 )
        return n;
    return fib(n-1) + fib(n-2);
}
`

func TestFibInterp(t *testing.T) {
	ip, _ := loadInterp(t, fibBro)
	v, err := ip.CallFunction("fib", CountVal(15))
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := v.(CountVal); !ok || c != 610 {
		t.Fatalf("fib(15) = %v", v)
	}
}

func TestTablesRecordsAndExpiration(t *testing.T) {
	src := `
type Info: record {
    n: count;
    who: addr;
};

global seen: table[string] of Info &create_expire=10 secs;
global counter: count = 0;

event tick(key: string, who: addr) {
    if ( key !in seen )
        seen[key] = Info($n=0, $who=who);
    local i = seen[key];
    i$n = i$n + 1;
    counter += 1;
}

event report() {
    for ( k in seen )
        print fmt("%s=%s", k, seen[k]$n);
}
`
	ip, out := loadInterp(t, src)
	now := int64(0)
	ip.Now = func() int64 { return now }
	a := AddrVal{A: values.MustParseAddr("1.1.1.1")}
	ip.Dispatch("tick", StringVal("x"), a)
	ip.Dispatch("tick", StringVal("x"), a)
	now = 5e9
	ip.Dispatch("tick", StringVal("y"), a)
	ip.Dispatch("report")
	if got := out.String(); got != "x=2\ny=1\n" {
		t.Fatalf("got %q", got)
	}
	out.Reset()
	// x expires at 10s (created at 0), y persists (created 5s).
	now = 11e9
	ip.Dispatch("report")
	if got := out.String(); got != "y=1\n" {
		t.Fatalf("after expiry got %q", got)
	}
	if v := ip.Globals["counter"].(CountVal); v != 3 {
		t.Fatalf("counter = %d", v)
	}
}

func TestVectorsAndLoops(t *testing.T) {
	src := `
global v: vector of count;

event go() {
    v[|v|] = 10;
    v[|v|] = 20;
    v[|v|] = 30;
    local sum = 0;
    for ( i in v )
        sum += v[i];
    print sum, |v|;
}
`
	ip, out := loadInterp(t, src)
	if err := ip.Dispatch("go"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "60, 3\n" {
		t.Fatalf("got %q", out.String())
	}
}

func TestCompositeTableKeys(t *testing.T) {
	src := `
global pending: table[string, count] of string;

event put(uid: string, id: count, q: string) {
    pending[uid, id] = q;
}

event get(uid: string, id: count) {
    if ( [uid, id] in pending ) {
        print pending[uid, id];
        delete pending[uid, id];
    } else
        print "missing";
}
`
	ip, out := loadInterp(t, src)
	ip.Dispatch("put", StringVal("C1"), CountVal(7), StringVal("query1"))
	ip.Dispatch("get", StringVal("C1"), CountVal(7))
	ip.Dispatch("get", StringVal("C1"), CountVal(7))
	ip.Dispatch("get", StringVal("C2"), CountVal(7))
	if out.String() != "query1\nmissing\nmissing\n" {
		t.Fatalf("got %q", out.String())
	}
}

func TestSubnetAndStringOps(t *testing.T) {
	src := `
event go(a: addr) {
    if ( a in 10.0.0.0/8 )
        print "internal";
    else
        print "external";
    print to_lower("HeLLo") + "!";
}
`
	ip, out := loadInterp(t, src)
	ip.Dispatch("go", AddrVal{A: values.MustParseAddr("10.5.5.5")})
	ip.Dispatch("go", AddrVal{A: values.MustParseAddr("8.8.8.8")})
	want := "internal\nhello!\nexternal\nhello!\n"
	if out.String() != want {
		t.Fatalf("got %q", out.String())
	}
}

func TestLogWrite(t *testing.T) {
	src := `
event go(uid: string) {
    Log::write("http", [$uid=uid, $status=CountVal]);
}
`
	// CtorExpr field referencing unknown name should error at eval.
	ip, _ := loadInterp(t, src)
	if err := ip.Dispatch("go", StringVal("C1")); err == nil {
		t.Fatal("expected undefined identifier error")
	}

	src2 := `
event go(uid: string, n: count) {
    Log::write("http", [$uid=uid, $status=n]);
}
`
	ip2, _ := loadInterp(t, src2)
	var stream string
	var rec *RecordVal
	ip2.LogWrite = func(s string, r *RecordVal) { stream, rec = s, r }
	if err := ip2.Dispatch("go", StringVal("C9"), CountVal(200)); err != nil {
		t.Fatal(err)
	}
	if stream != "http" || rec.Get("uid").Render() != "C9" || rec.Get("status").Render() != "200" {
		t.Fatalf("stream=%q rec=%v", stream, rec)
	}
}

func TestEventStmtSynchronousDispatch(t *testing.T) {
	src := `
event helper(n: count) {
    print "helper", n;
}
event go() {
    event helper(42);
    print "after";
}
`
	ip, out := loadInterp(t, src)
	ip.Dispatch("go")
	if out.String() != "helper, 42\nafter\n" {
		t.Fatalf("got %q", out.String())
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		`event go() { print missing_identifier; }`,
		`event go() { local t: table[count] of count; print t[1]; }`,
		`event go() { local x = 1 / 0; }`,
		`event go() { local c: connection; print c$nonexistent; }`,
	}
	for i, src := range cases {
		ip, _ := loadInterp(t, src)
		if err := ip.Dispatch("go"); err == nil {
			t.Errorf("case %d: expected runtime error", i)
		}
	}
}

func TestParseErrorsScript(t *testing.T) {
	bad := []string{
		`event go() { if true ) { } }`,
		`global x`,
		`type T: record { f count; };`,
		`event go() { for i in x ) print i; }`,
	}
	for i, src := range bad {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("case %d should fail to parse", i)
		}
	}
}

func BenchmarkFibInterp(b *testing.B) {
	s, err := ParseScript(fibBro)
	if err != nil {
		b.Fatal(err)
	}
	ip := NewInterp()
	ip.Load(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.CallFunction("fib", CountVal(20)); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = strings.Join
