// Expression lowering for the script compiler.

package bro

import (
	"fmt"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/rt/values"
)

// valToHilti converts a literal script value to a HILTI constant.
func valToHilti(v Val) (values.Value, *types.Type, error) {
	switch v := v.(type) {
	case BoolVal:
		return values.Bool(bool(v)), types.BoolT, nil
	case CountVal:
		return values.Int(int64(v)), types.Int64T, nil
	case IntVal:
		return values.Int(int64(v)), types.Int64T, nil
	case DoubleVal:
		return values.Double(float64(v)), types.DoubleT, nil
	case StringVal:
		return values.String(string(v)), types.StringT, nil
	case AddrVal:
		return v.A, types.AddrT, nil
	case SubnetVal:
		return v.N, types.NetT, nil
	case PortVal:
		return values.PortVal(v.Num, v.Proto), types.PortT, nil
	case TimeVal:
		return values.TimeVal(int64(v)), types.TimeT, nil
	case IntervalVal:
		return values.IntervalVal(int64(v)), types.IntervalT, nil
	default:
		return values.Nil, nil, fmt.Errorf("cannot compile literal of type %s", v.TypeName())
	}
}

// expr lowers an expression, returning the operand holding its value and
// the inferred script type.
func (fc *fnCtx) expr(e Expr) (ast.Operand, *TypeExpr, error) {
	fb := fc.fb
	t := fc.c.inferType(fc, e)
	switch e := e.(type) {
	case *LitExpr:
		v, ht, err := valToHilti(e.V)
		if err != nil {
			return ast.Operand{}, nil, err
		}
		return ast.ConstOp(v, ht), t, nil

	case *NameExpr:
		return ast.VarOp(e.Name), t, nil

	case *FieldExpr:
		base, _, err := fc.expr(e.Base)
		if err != nil {
			return ast.Operand{}, nil, err
		}
		tmp := fb.Temp(fc.c.hiltiType(t))
		fb.Assign(tmp, "struct.get", base, ast.FieldOperand(e.Field))
		return tmp, t, nil

	case *IndexExpr:
		base, bt, err := fc.expr(e.Base)
		if err != nil {
			return ast.Operand{}, nil, err
		}
		tmp := fb.Temp(fc.c.hiltiType(t))
		if bt != nil && bt.Kind == "vector" {
			idx, _, err := fc.expr(e.Keys[0])
			if err != nil {
				return ast.Operand{}, nil, err
			}
			fb.Assign(tmp, "vector.get", base, idx)
			return tmp, t, nil
		}
		key, err := fc.keyOperand(e.Keys)
		if err != nil {
			return ast.Operand{}, nil, err
		}
		fb.Assign(tmp, "map.get", base, key)
		return tmp, t, nil

	case *UnaryExpr:
		switch e.Op {
		case "!":
			v, _, err := fc.expr(e.E)
			if err != nil {
				return ast.Operand{}, nil, err
			}
			tmp := fb.Temp(types.BoolT)
			fb.Assign(tmp, "bool.not", v)
			return tmp, t, nil
		case "-":
			v, vt, err := fc.expr(e.E)
			if err != nil {
				return ast.Operand{}, nil, err
			}
			tmp := fb.Temp(fc.c.hiltiType(vt))
			if vt != nil && vt.Kind == "double" {
				fb.Assign(tmp, "double.sub", ast.ConstOp(values.Double(0), types.DoubleT), v)
			} else {
				fb.Assign(tmp, "int.sub", ast.IntOp(0), v)
			}
			return tmp, vt, nil
		case "||":
			v, vt, err := fc.expr(e.E)
			if err != nil {
				return ast.Operand{}, nil, err
			}
			op := "map.size"
			if vt != nil {
				switch vt.Kind {
				case "set":
					op = "set.size"
				case "vector":
					op = "vector.size"
				case "string":
					op = "string.length"
				}
			}
			tmp := fb.Temp(types.Int64T)
			fb.Assign(tmp, op, v)
			return tmp, t, nil
		}
		return ast.Operand{}, nil, fmt.Errorf("cannot compile unary %q", e.Op)

	case *BinExpr:
		return fc.binExpr(e, t)

	case *CallExpr:
		return fc.callExpr(e, t)

	case *CtorExpr:
		// Anonymous record literal: a per-site struct type.
		fc.c.anonRec++
		name := fmt.Sprintf("__anon_rec%d", fc.c.anonRec)
		rd := &RecordDecl{Name: name}
		for _, f := range e.Fields {
			rd.Fields = append(rd.Fields, RecordField{Name: f.Name, Type: fc.c.inferType(fc, f.E)})
		}
		fc.c.declareRecord(rd)
		tmp := fb.Temp(types.RefT(fc.c.rtypes[name]))
		fb.Assign(tmp, "new", ast.TypeOperand(fc.c.rtypes[name]))
		for _, f := range e.Fields {
			v, _, err := fc.expr(f.E)
			if err != nil {
				return ast.Operand{}, nil, err
			}
			fb.Instr("struct.set", tmp, ast.FieldOperand(f.Name), v)
		}
		return tmp, &TypeExpr{Kind: "record", Name: name}, nil
	}
	return ast.Operand{}, nil, fmt.Errorf("cannot compile expression %T", e)
}

func (fc *fnCtx) binExpr(e *BinExpr, t *TypeExpr) (ast.Operand, *TypeExpr, error) {
	fb := fc.fb
	switch e.Op {
	case "in", "!in":
		rOp, rt, err := fc.expr(e.R)
		if err != nil {
			return ast.Operand{}, nil, err
		}
		tmp := fb.Temp(types.BoolT)
		// addr in subnet
		if rt != nil && rt.Kind == "subnet" {
			lOp, _, err := fc.expr(e.L)
			if err != nil {
				return ast.Operand{}, nil, err
			}
			fb.Assign(tmp, "net.contains", rOp, lOp)
		} else {
			var key ast.Operand
			// Composite key literal [a, b] arrives as a vector() call.
			if ce, ok := e.L.(*CallExpr); ok && ce.Fn == "vector" {
				key, err = fc.keyOperand(ce.Args)
			} else {
				key, _, err = fc.expr(e.L)
			}
			if err != nil {
				return ast.Operand{}, nil, err
			}
			op := "map.exists"
			if rt != nil && rt.Kind == "set" {
				op = "set.exists"
			}
			fb.Assign(tmp, op, rOp, key)
		}
		if e.Op == "!in" {
			fb.Assign(tmp, "bool.not", tmp)
		}
		return tmp, t, nil

	case "&&", "||":
		// Short-circuit lowering.
		tmp := fb.Temp(types.BoolT)
		lOp, _, err := fc.expr(e.L)
		if err != nil {
			return ast.Operand{}, nil, err
		}
		evalR, short, done := fc.label("sc_r"), fc.label("sc_s"), fc.label("sc_d")
		if e.Op == "&&" {
			fb.IfElse(lOp, evalR, short)
		} else {
			fb.IfElse(lOp, short, evalR)
		}
		fb.Block(short)
		fb.Set(tmp, ast.BoolOp(e.Op == "||"))
		fb.Jump(done)
		fb.Block(evalR)
		rOp, _, err := fc.expr(e.R)
		if err != nil {
			return ast.Operand{}, nil, err
		}
		fb.Set(tmp, rOp)
		fb.Jump(done)
		fb.Block(done)
		return tmp, t, nil

	case "==", "!=":
		lOp, _, err := fc.expr(e.L)
		if err != nil {
			return ast.Operand{}, nil, err
		}
		rOp, _, err := fc.expr(e.R)
		if err != nil {
			return ast.Operand{}, nil, err
		}
		tmp := fb.Temp(types.BoolT)
		op := "equal"
		if e.Op == "!=" {
			op = "unequal"
		}
		fb.Assign(tmp, op, lOp, rOp)
		return tmp, t, nil
	}

	// Arithmetic / ordering: pick the HILTI op family by operand type.
	lt := fc.c.inferType(fc, e.L)
	rt := fc.c.inferType(fc, e.R)
	lOp, _, err := fc.expr(e.L)
	if err != nil {
		return ast.Operand{}, nil, err
	}
	rOp, _, err := fc.expr(e.R)
	if err != nil {
		return ast.Operand{}, nil, err
	}
	kind := "count"
	if lt != nil {
		kind = lt.Kind
	} else if rt != nil {
		kind = rt.Kind
	}
	if (lt != nil && lt.Kind == "double") || (rt != nil && rt.Kind == "double") {
		kind = "double"
	}
	var op string
	resT := t
	switch kind {
	case "double":
		op = map[string]string{"+": "double.add", "-": "double.sub", "*": "double.mul",
			"/": "double.div", "<": "double.lt", ">": "double.gt",
			"<=": "double.leq", ">=": "double.geq"}[e.Op]
	case "time":
		op = map[string]string{"+": "time.add", "-": "time.sub",
			"<": "time.lt", ">": "time.gt"}[e.Op]
	case "interval":
		op = map[string]string{"+": "interval.add", "-": "interval.sub",
			"<": "interval.lt", ">": "interval.gt"}[e.Op]
	case "string":
		op = map[string]string{"+": "string.concat"}[e.Op]
	default: // count/int
		op = map[string]string{"+": "int.add", "-": "int.sub", "*": "int.mul",
			"/": "int.div", "%": "int.mod", "<": "int.lt", ">": "int.gt",
			"<=": "int.leq", ">=": "int.geq"}[e.Op]
	}
	if op == "" {
		return ast.Operand{}, nil, fmt.Errorf("cannot compile %s on %s operands", e.Op, kind)
	}
	tmp := fb.Temp(fc.c.hiltiType(resT))
	fb.Assign(tmp, op, lOp, rOp)
	return tmp, resT, nil
}

func (fc *fnCtx) callExpr(e *CallExpr, t *TypeExpr) (ast.Operand, *TypeExpr, error) {
	fb := fc.fb
	// Record constructor.
	if rt, ok := fc.c.rtypes[e.Fn]; ok {
		tmp := fb.Temp(types.RefT(rt))
		fb.Assign(tmp, "new", ast.TypeOperand(rt))
		for _, a := range e.Args {
			ce, ok := a.(*CtorExpr)
			if !ok || len(ce.Fields) != 1 {
				return ast.Operand{}, nil, fmt.Errorf("%s(...) takes $field=value arguments", e.Fn)
			}
			v, _, err := fc.expr(ce.Fields[0].E)
			if err != nil {
				return ast.Operand{}, nil, err
			}
			fb.Instr("struct.set", tmp, ast.FieldOperand(ce.Fields[0].Name), v)
		}
		return tmp, &TypeExpr{Kind: "record", Name: e.Fn}, nil
	}
	switch e.Fn {
	case "vector":
		tmp := fb.Temp(types.RefT(types.VectorT(types.AnyT)))
		fb.Assign(tmp, "new", ast.TypeOperand(types.VectorT(types.AnyT)))
		for _, a := range e.Args {
			v, _, err := fc.expr(a)
			if err != nil {
				return ast.Operand{}, nil, err
			}
			fb.Instr("vector.push_back", tmp, v)
		}
		return tmp, &TypeExpr{Kind: "vector"}, nil
	case "network_time":
		tmp := fb.Temp(types.TimeT)
		fb.CallResult(tmp, "bro_network_time")
		return tmp, t, nil
	case "to_lower", "to_upper":
		v, _, err := fc.expr(e.Args[0])
		if err != nil {
			return ast.Operand{}, nil, err
		}
		tmp := fb.Temp(types.StringT)
		op := "string.lower"
		if e.Fn == "to_upper" {
			op = "string.upper"
		}
		fb.Assign(tmp, op, v)
		return tmp, t, nil
	case "fmt", "cat":
		args := make([]ast.Operand, 0, len(e.Args))
		for _, a := range e.Args {
			v, _, err := fc.expr(a)
			if err != nil {
				return ast.Operand{}, nil, err
			}
			args = append(args, v)
		}
		tmp := fb.Temp(types.StringT)
		fb.CallResult(tmp, "bro_"+e.Fn, args...)
		return tmp, t, nil
	case "Log::write":
		args := make([]ast.Operand, 0, len(e.Args))
		for _, a := range e.Args {
			v, _, err := fc.expr(a)
			if err != nil {
				return ast.Operand{}, nil, err
			}
			args = append(args, v)
		}
		fb.Call("bro_log_write", args...)
		return ast.ConstOp(values.Nil, types.VoidT), t, nil
	}
	// Script function.
	args := make([]ast.Operand, 0, len(e.Args))
	for _, a := range e.Args {
		v, _, err := fc.expr(a)
		if err != nil {
			return ast.Operand{}, nil, err
		}
		args = append(args, v)
	}
	tmp := fb.Temp(fc.c.hiltiType(t))
	fb.CallResult(tmp, e.Fn, args...)
	return tmp, t, nil
}
