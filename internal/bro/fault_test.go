package bro

import (
	"strings"
	"testing"

	"hilti/internal/pkt/gen"
	"hilti/internal/pkt/layers"
	"hilti/internal/pkt/pipeline"
)

// tcpDataFrame builds an Ethernet/IPv4/TCP frame carrying payload.
func tcpDataFrame(src, dst [4]byte, sp, dp uint16, seq uint32, payload []byte) []byte {
	tcp := layers.EncodeTCP(src, dst, sp, dp, seq, 0, layers.TCPAck, 65535, payload)
	ip := layers.EncodeIPv4(src, dst, layers.IPProtoTCP, 64, 1, tcp)
	return layers.EncodeEthernet([6]byte{1}, [6]byte{2}, layers.EtherTypeIPv4, ip)
}

// TestPanicPortQuarantinesFlow: an analyzer panic on the single-threaded
// path quarantines only that flow, records the fault with a stack, and
// leaves other flows processing normally.
func TestPanicPortQuarantinesFlow(t *testing.T) {
	e, err := NewEngine(Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript}, Quiet: true, PanicPort: 31337})
	if err != nil {
		t.Fatal(err)
	}
	a, b := [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}
	// Three packets of a faulting flow: first panics, the rest are dropped.
	for i := 0; i < 3; i++ {
		e.SafeProcessPacket(int64(i), tcpDataFrame(a, b, 40000, 31337, uint32(100+8*i), []byte("CRASHME!")))
	}
	// An unrelated flow keeps working.
	e.SafeProcessPacket(10, tcpDataFrame(a, b, 40001, 9999, 500, []byte("fine")))
	// The faulted flow's connection state was zapped; the clean flow's is live.
	if len(e.conns) != 1 {
		t.Fatalf("conns = %d, want 1 (only the clean flow)", len(e.conns))
	}
	e.Finish()

	st := e.StatsSnapshot()
	if st.Faults < 1 || st.Quarantined != 1 {
		t.Fatalf("faults=%d quarantined=%d, want >=1/1", st.Faults, st.Quarantined)
	}
	if st.QuarantineDropped != 2 {
		t.Fatalf("quarantine-dropped = %d, want 2", st.QuarantineDropped)
	}
	fs := e.Faults()
	if len(fs) == 0 || fs[0].Op != "packet" || !strings.Contains(string(fs[0].Stack), "goroutine") {
		t.Fatalf("fault record malformed: %+v", fs)
	}
}

// TestLoopPortBudgetBlown: the injected busy-loop analyzer is terminated
// by its instruction budget; the engine counts it and keeps going.
func TestLoopPortBudgetBlown(t *testing.T) {
	e, err := NewEngine(Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript}, Quiet: true, LoopPort: 31007})
	if err != nil {
		t.Fatal(err)
	}
	a, b := [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}
	for i := 0; i < 3; i++ {
		e.SafeProcessPacket(int64(i), tcpDataFrame(a, b, 41000, 31007, uint32(100+4*i), []byte("spin")))
	}
	e.Finish()
	st := e.StatsSnapshot()
	if st.BudgetBlown != 3 {
		t.Fatalf("budget-blown = %d, want 3", st.BudgetBlown)
	}
	if st.Faults != 0 || st.Quarantined != 0 {
		t.Fatalf("exhaustion must not fault/quarantine: %+v", st)
	}
}

// TestParallelFaultContainment: faulting flows in the pipeline are
// quarantined per worker while clean-flow logs stay byte-identical to the
// single-threaded baseline — the tentpole's end-to-end guarantee.
func TestParallelFaultContainment(t *testing.T) {
	hc := gen.DefaultHTTPConfig()
	hc.Sessions = 30
	pkts := gen.GenerateHTTP(hc)
	clean := Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript}, Quiet: true}

	single, err := NewEngine(clean)
	if err != nil {
		t.Fatal(err)
	}
	single.ProcessTrace(pkts)

	// Same trace plus injected panicking flows, faulting config.
	faulty := clean
	faulty.PanicPort = 31337
	par, err := NewParallelWith(faulty, pipeline.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := [4]byte{10, 9, 0, 1}, [4]byte{10, 9, 0, 2}
	for i := range pkts {
		par.Feed(pkts[i].Time.UnixNano(), pkts[i].Data) //nolint:errcheck
		if i%10 == 0 {
			par.Feed(pkts[i].Time.UnixNano(), //nolint:errcheck
				tcpDataFrame(a, b, uint16(42000+i), 31337, 100, []byte("CRASHME!")))
		}
	}
	par.Close()

	var faults, quarantined uint64
	for _, ws := range par.Stats() {
		faults += ws.Faults
		quarantined += ws.QuarantinedFlows
	}
	if faults == 0 || quarantined == 0 {
		t.Fatalf("faults=%d quarantined=%d, want nonzero", faults, quarantined)
	}
	want := SortedLines(single, "http")
	got := par.MergedLines("http")
	if len(want) == 0 || len(got) != len(want) {
		t.Fatalf("http.log: %d lines, want %d (nonzero)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("http.log line %d differs under fault injection:\n  got  %q\n  want %q",
				i, got[i], want[i])
		}
	}
}

// TestReassemblyBudgetWiring: a configured cross-flow budget reaches the
// connection streams and forces early gap abandonment under aggregate
// out-of-order buffering.
func TestReassemblyBudgetWiring(t *testing.T) {
	e, err := NewEngine(Config{Parser: "standard", ScriptExec: "interp",
		Scripts: []string{HTTPScript}, Quiet: true, ReassemblyBudget: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	a, b := [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}
	// Each flow establishes its stream origin, then jumps past a hole so
	// 512 bytes buffer out of order; together the flows exceed the 1 KiB
	// budget and the later inserts must force early gaps.
	payload := make([]byte, 512)
	for f := 0; f < 4; f++ {
		sp := uint16(43000 + f)
		e.SafeProcessPacket(int64(f), tcpDataFrame(a, b, sp, 9999, 100, []byte("go")))
		e.SafeProcessPacket(int64(f), tcpDataFrame(a, b, sp, 9999, 10_000, payload))
	}
	e.Finish()
	if e.Reassembly() == nil {
		t.Fatal("budget not created")
	}
	if e.Reassembly().Forced() == 0 {
		t.Fatal("aggregate buffering over budget should force gaps")
	}
	if used := e.Reassembly().Used(); used != 0 {
		t.Fatalf("budget not credited back at teardown: %d bytes leaked", used)
	}
}
