// The script interpreter: a straightforward tree-walking evaluator over
// the Val hierarchy — the role of Bro's standard interpreter in the
// paper's §6.5 comparison ("Bro's statically typed language can execute
// much faster than dynamically typed environments", yet remains the
// baseline the HILTI-compiled scripts are measured against).

package bro

import (
	"fmt"
	"io"
	"os"
	"strings"

	"hilti/internal/rt/values"
)

// Interp loads scripts and executes their event handlers and functions.
type Interp struct {
	Records map[string]*RecordType
	Globals map[string]Val
	decls   map[string]*GlobalDecl
	Funcs   map[string]*FuncDecl
	Events  map[string][]*EventHandler

	// Now returns current network time (ns); set by the engine.
	Now func() int64
	// LogWrite receives Log::write calls; set by the logging framework.
	LogWrite func(stream string, rec *RecordVal)
	Out      io.Writer
}

// NewInterp creates an interpreter with the built-in record types.
func NewInterp() *Interp {
	ip := &Interp{
		Records: map[string]*RecordType{},
		Globals: map[string]Val{},
		decls:   map[string]*GlobalDecl{},
		Funcs:   map[string]*FuncDecl{},
		Events:  map[string][]*EventHandler{},
		Now:     func() int64 { return 0 },
		Out:     os.Stdout,
	}
	ip.Records["conn_id"] = NewRecordType("conn_id", "orig_h", "orig_p", "resp_h", "resp_p")
	ip.Records["connection"] = NewRecordType("connection", "id", "uid", "start_time")
	return ip
}

// Load registers a parsed script's declarations and initializes globals.
func (ip *Interp) Load(s *Script) error {
	for _, rd := range s.Records {
		fields := make([]string, len(rd.Fields))
		for i, f := range rd.Fields {
			fields[i] = f.Name
		}
		ip.Records[rd.Name] = NewRecordType(rd.Name, fields...)
	}
	for _, gd := range s.Globals {
		v, err := ip.zeroValue(gd)
		if err != nil {
			return err
		}
		ip.Globals[gd.Name] = v
		ip.decls[gd.Name] = gd
	}
	for _, fd := range s.Functions {
		ip.Funcs[fd.Name] = fd
	}
	for _, ev := range s.Events {
		ip.Events[ev.Name] = append(ip.Events[ev.Name], ev)
	}
	return nil
}

// zeroValue initializes a global from its declaration.
func (ip *Interp) zeroValue(gd *GlobalDecl) (Val, error) {
	if gd.Init != nil {
		env := &env{ip: ip}
		return ip.eval(env, gd.Init)
	}
	if gd.Type == nil {
		return nil, fmt.Errorf("bro: global %s needs a type or initializer", gd.Name)
	}
	switch gd.Type.Kind {
	case "table":
		t := NewTable(false)
		t.ExpireInterval = gd.CreateExpire + gd.ReadExpire
		t.ExpireOnRead = gd.ReadExpire > 0
		return t, nil
	case "set":
		t := NewTable(true)
		t.ExpireInterval = gd.CreateExpire + gd.ReadExpire
		t.ExpireOnRead = gd.ReadExpire > 0
		return t, nil
	case "vector":
		return &VectorVal{}, nil
	case "count":
		return CountVal(0), nil
	case "int":
		return IntVal(0), nil
	case "double":
		return DoubleVal(0), nil
	case "string":
		return StringVal(""), nil
	case "bool":
		return BoolVal(false), nil
	case "time":
		return TimeVal(0), nil
	case "interval":
		return IntervalVal(0), nil
	case "record":
		rt, ok := ip.Records[gd.Type.Name]
		if !ok {
			return nil, fmt.Errorf("bro: unknown record type %q", gd.Type.Name)
		}
		return NewRecord(rt), nil
	default:
		return nil, fmt.Errorf("bro: cannot zero-initialize %s", gd.Type)
	}
}

// env is a lexical scope.
type env struct {
	ip     *Interp
	vars   map[string]Val
	parent *env
}

func (e *env) lookup(name string) (Val, bool) {
	for s := e; s != nil; s = s.parent {
		if s.vars != nil {
			if v, ok := s.vars[name]; ok {
				return v, true
			}
		}
	}
	v, ok := e.ip.Globals[name]
	return v, ok
}

func (e *env) assign(name string, v Val) {
	for s := e; s != nil; s = s.parent {
		if s.vars != nil {
			if _, ok := s.vars[name]; ok {
				s.vars[name] = v
				return
			}
		}
	}
	if _, ok := e.ip.Globals[name]; ok {
		e.ip.Globals[name] = v
		return
	}
	// Implicit local (handlers are forgiving, as Bro's are with local).
	if e.vars == nil {
		e.vars = map[string]Val{}
	}
	e.vars[name] = v
}

// Dispatch runs all handlers for an event.
func (ip *Interp) Dispatch(name string, args ...Val) error {
	for _, h := range ip.Events[name] {
		env := &env{ip: ip, vars: map[string]Val{}}
		for i, p := range h.Params {
			if i < len(args) {
				env.vars[p.Name] = args[i]
			}
		}
		if _, _, err := ip.exec(env, h.Body); err != nil {
			return fmt.Errorf("event %s: %w", name, err)
		}
	}
	return nil
}

// CallFunction invokes a script function.
func (ip *Interp) CallFunction(name string, args ...Val) (Val, error) {
	fd, ok := ip.Funcs[name]
	if !ok {
		return nil, fmt.Errorf("bro: unknown function %q", name)
	}
	env := &env{ip: ip, vars: map[string]Val{}}
	for i, p := range fd.Params {
		if i < len(args) {
			env.vars[p.Name] = args[i]
		}
	}
	_, ret, err := ip.exec(env, fd.Body)
	return ret, err
}

// exec runs statements; returned reports an executed return.
func (ip *Interp) exec(e *env, stmts []Stmt) (returned bool, ret Val, err error) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *LocalStmt:
			var v Val
			if s.Init != nil {
				if v, err = ip.eval(e, s.Init); err != nil {
					return false, nil, err
				}
			} else if s.Type != nil {
				gd := &GlobalDecl{Name: s.Name, Type: s.Type}
				if v, err = ip.zeroValue(gd); err != nil {
					return false, nil, err
				}
			}
			if e.vars == nil {
				e.vars = map[string]Val{}
			}
			e.vars[s.Name] = v
		case *AssignStmt:
			if err = ip.assign(e, s.LHS, s.RHS); err != nil {
				return false, nil, err
			}
		case *IfStmt:
			cond, err := ip.eval(e, s.Cond)
			if err != nil {
				return false, nil, err
			}
			b, ok := cond.(BoolVal)
			if !ok {
				return false, nil, errVal("if", cond)
			}
			body := s.Then
			if !bool(b) {
				body = s.Else
			}
			sub := &env{ip: ip, vars: map[string]Val{}, parent: e}
			if r, rv, err := ip.exec(sub, body); err != nil || r {
				return r, rv, err
			}
		case *ForStmt:
			if err := ip.execFor(e, s); err != nil {
				return false, nil, err
			}
		case *PrintStmt:
			parts := make([]string, len(s.Args))
			for i, a := range s.Args {
				v, err := ip.eval(e, a)
				if err != nil {
					return false, nil, err
				}
				if v == nil {
					parts[i] = "<unset>"
				} else {
					parts[i] = v.Render()
				}
			}
			fmt.Fprintln(ip.Out, strings.Join(parts, ", "))
		case *AddStmt:
			t, keys, err := ip.evalIndexTarget(e, s.Target)
			if err != nil {
				return false, nil, err
			}
			t.Put(ip.Now(), keys, nil)
		case *DeleteStmt:
			t, keys, err := ip.evalIndexTarget(e, s.Target)
			if err != nil {
				return false, nil, err
			}
			t.Delete(ip.Now(), keys)
		case *ReturnStmt:
			if s.Value == nil {
				return true, nil, nil
			}
			v, err := ip.eval(e, s.Value)
			return true, v, err
		case *ExprStmt:
			if _, err := ip.eval(e, s.E); err != nil {
				return false, nil, err
			}
		case *EventStmt:
			args := make([]Val, len(s.Args))
			for i, a := range s.Args {
				v, err := ip.eval(e, a)
				if err != nil {
					return false, nil, err
				}
				args[i] = v
			}
			if err := ip.Dispatch(s.Name, args...); err != nil {
				return false, nil, err
			}
		default:
			return false, nil, fmt.Errorf("bro: unhandled statement %T", s)
		}
	}
	return false, nil, nil
}

func (ip *Interp) execFor(e *env, s *ForStmt) error {
	over, err := ip.eval(e, s.Over)
	if err != nil {
		return err
	}
	run := func(bind func(sub *env)) error {
		sub := &env{ip: ip, vars: map[string]Val{}, parent: e}
		bind(sub)
		r, _, err := ip.exec(sub, s.Body)
		if err != nil {
			return err
		}
		_ = r // return inside for aborts only the handler in real Bro; keep simple
		return nil
	}
	switch c := over.(type) {
	case *TableVal:
		// Age out stale entries before snapshotting, so the loop body never
		// sees an index that a subsequent lookup would reject.
		c.expire(ip.Now())
		var entries [][2]any
		c.Each(func(key []Val, yield Val) bool {
			entries = append(entries, [2]any{key, yield})
			return true
		})
		for _, ent := range entries {
			key := ent[0].([]Val)
			yield, _ := ent[1].(Val)
			if err := run(func(sub *env) {
				if len(key) == 1 {
					sub.vars[s.Var] = key[0]
				} else {
					sub.vars[s.Var] = &VectorVal{Elems: key}
				}
				if s.Var2 != "" {
					if len(key) == 2 && c.IsSet {
						sub.vars[s.Var] = key[0]
						sub.vars[s.Var2] = key[1]
					} else {
						sub.vars[s.Var2] = yield
					}
				}
			}); err != nil {
				return err
			}
		}
		return nil
	case *VectorVal:
		for i := range c.Elems {
			if err := run(func(sub *env) {
				sub.vars[s.Var] = CountVal(i)
				if s.Var2 != "" {
					sub.vars[s.Var2] = c.Elems[i]
				}
			}); err != nil {
				return err
			}
		}
		return nil
	default:
		return errVal("for", over)
	}
}

func (ip *Interp) assign(e *env, lhs Expr, rhsE Expr) error {
	rhs, err := ip.eval(e, rhsE)
	if err != nil {
		return err
	}
	switch l := lhs.(type) {
	case *NameExpr:
		e.assign(l.Name, rhs)
		return nil
	case *FieldExpr:
		base, err := ip.eval(e, l.Base)
		if err != nil {
			return err
		}
		r, ok := base.(*RecordVal)
		if !ok {
			return errVal("$", base)
		}
		if r.T.Index(l.Field) < 0 {
			return fmt.Errorf("bro: record %s has no field %q", r.T.Name, l.Field)
		}
		r.Set(l.Field, rhs)
		return nil
	case *IndexExpr:
		base, err := ip.eval(e, l.Base)
		if err != nil {
			return err
		}
		keys, err := ip.evalKeys(e, l.Keys)
		if err != nil {
			return err
		}
		switch c := base.(type) {
		case *TableVal:
			c.Put(ip.Now(), keys, rhs)
			return nil
		case *VectorVal:
			i, ok := keys[0].(CountVal)
			if !ok {
				return errVal("vector index", keys[0])
			}
			for len(c.Elems) <= int(i) {
				c.Elems = append(c.Elems, nil)
			}
			c.Elems[i] = rhs
			return nil
		default:
			return errVal("[]=", base)
		}
	default:
		return fmt.Errorf("bro: invalid assignment target %T", lhs)
	}
}

func (ip *Interp) evalKeys(e *env, keys []Expr) ([]Val, error) {
	out := make([]Val, len(keys))
	for i, k := range keys {
		v, err := ip.eval(e, k)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (ip *Interp) evalIndexTarget(e *env, ie *IndexExpr) (*TableVal, []Val, error) {
	base, err := ip.eval(e, ie.Base)
	if err != nil {
		return nil, nil, err
	}
	t, ok := base.(*TableVal)
	if !ok {
		return nil, nil, errVal("add/delete", base)
	}
	keys, err := ip.evalKeys(e, ie.Keys)
	return t, keys, err
}

func (ip *Interp) eval(e *env, x Expr) (Val, error) {
	switch x := x.(type) {
	case *LitExpr:
		return x.V, nil
	case *NameExpr:
		if v, ok := e.lookup(x.Name); ok {
			return v, nil
		}
		return nil, fmt.Errorf("bro: undefined identifier %q", x.Name)
	case *UnaryExpr:
		v, err := ip.eval(e, x.E)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "!":
			b, ok := v.(BoolVal)
			if !ok {
				return nil, errVal("!", v)
			}
			return BoolVal(!b), nil
		case "-":
			switch n := v.(type) {
			case CountVal:
				return IntVal(-int64(n)), nil
			case IntVal:
				return IntVal(-n), nil
			case DoubleVal:
				return DoubleVal(-n), nil
			}
			return nil, errVal("-", v)
		case "||":
			switch c := v.(type) {
			case *TableVal:
				return CountVal(c.Len()), nil
			case *VectorVal:
				return CountVal(len(c.Elems)), nil
			case StringVal:
				return CountVal(len(c)), nil
			}
			return nil, errVal("| |", v)
		}
		return nil, fmt.Errorf("bro: unknown unary %q", x.Op)
	case *BinExpr:
		return ip.evalBin(e, x)
	case *FieldExpr:
		base, err := ip.eval(e, x.Base)
		if err != nil {
			return nil, err
		}
		r, ok := base.(*RecordVal)
		if !ok {
			return nil, errVal("$", base)
		}
		if r.T.Index(x.Field) < 0 {
			return nil, fmt.Errorf("bro: record %s has no field %q", r.T.Name, x.Field)
		}
		return r.Get(x.Field), nil
	case *IndexExpr:
		base, err := ip.eval(e, x.Base)
		if err != nil {
			return nil, err
		}
		keys, err := ip.evalKeys(e, x.Keys)
		if err != nil {
			return nil, err
		}
		switch c := base.(type) {
		case *TableVal:
			v, ok := c.Get(ip.Now(), keys)
			if !ok {
				return nil, fmt.Errorf("bro: no such index: %s", KeyString(keys))
			}
			return v, nil
		case *VectorVal:
			i, ok := keys[0].(CountVal)
			if !ok || int(i) >= len(c.Elems) {
				return nil, fmt.Errorf("bro: vector index out of range")
			}
			return c.Elems[i], nil
		default:
			return nil, errVal("[]", base)
		}
	case *CallExpr:
		return ip.evalCall(e, x)
	case *CtorExpr:
		// Anonymous record literal.
		fields := make([]string, len(x.Fields))
		vals := make([]Val, len(x.Fields))
		for i, f := range x.Fields {
			v, err := ip.eval(e, f.E)
			if err != nil {
				return nil, err
			}
			fields[i] = f.Name
			vals[i] = v
		}
		rt := NewRecordType("record", fields...)
		return &RecordVal{T: rt, F: vals}, nil
	default:
		return nil, fmt.Errorf("bro: unhandled expression %T", x)
	}
}

func (ip *Interp) evalCall(e *env, x *CallExpr) (Val, error) {
	// Record constructor?
	if rt, ok := ip.Records[x.Fn]; ok {
		r := NewRecord(rt)
		for _, a := range x.Args {
			ce, ok := a.(*CtorExpr)
			if !ok || len(ce.Fields) != 1 {
				return nil, fmt.Errorf("bro: %s(...) takes $field=value arguments", x.Fn)
			}
			v, err := ip.eval(e, ce.Fields[0].E)
			if err != nil {
				return nil, err
			}
			if rt.Index(ce.Fields[0].Name) < 0 {
				return nil, fmt.Errorf("bro: record %s has no field %q", rt.Name, ce.Fields[0].Name)
			}
			r.Set(ce.Fields[0].Name, v)
		}
		return r, nil
	}
	args := make([]Val, len(x.Args))
	for i, a := range x.Args {
		v, err := ip.eval(e, a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	switch x.Fn {
	case "vector":
		return &VectorVal{Elems: args}, nil
	case "network_time":
		return TimeVal(ip.Now()), nil
	case "fmt":
		return builtinFmt(args)
	case "to_lower":
		s, _ := args[0].(StringVal)
		return StringVal(strings.ToLower(string(s))), nil
	case "to_upper":
		s, _ := args[0].(StringVal)
		return StringVal(strings.ToUpper(string(s))), nil
	case "cat":
		var sb strings.Builder
		for _, a := range args {
			sb.WriteString(a.Render())
		}
		return StringVal(sb.String()), nil
	case "Log::write":
		if ip.LogWrite != nil {
			stream, _ := args[0].(StringVal)
			rec, ok := args[1].(*RecordVal)
			if !ok {
				return nil, fmt.Errorf("bro: Log::write needs a record")
			}
			ip.LogWrite(string(stream), rec)
		}
		return nil, nil
	}
	if _, ok := ip.Funcs[x.Fn]; ok {
		return ip.CallFunction(x.Fn, args...)
	}
	return nil, fmt.Errorf("bro: unknown function %q", x.Fn)
}

// builtinFmt implements Bro's fmt(): %s/%d/%x/%f plus %%.
func builtinFmt(args []Val) (Val, error) {
	if len(args) == 0 {
		return StringVal(""), nil
	}
	f, ok := args[0].(StringVal)
	if !ok {
		return nil, errVal("fmt", args[0])
	}
	rest := args[1:]
	var sb strings.Builder
	ai := 0
	s := string(f)
	for i := 0; i < len(s); i++ {
		if s[i] != '%' || i+1 >= len(s) {
			sb.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case '%':
			sb.WriteByte('%')
		default:
			if ai < len(rest) {
				if rest[ai] == nil {
					sb.WriteString("-")
				} else {
					sb.WriteString(rest[ai].Render())
				}
				ai++
			}
		}
	}
	return StringVal(sb.String()), nil
}

func (ip *Interp) evalBin(e *env, x *BinExpr) (Val, error) {
	// Short-circuit logic.
	if x.Op == "&&" || x.Op == "||" {
		l, err := ip.eval(e, x.L)
		if err != nil {
			return nil, err
		}
		lb, ok := l.(BoolVal)
		if !ok {
			return nil, errVal(x.Op, l)
		}
		if x.Op == "&&" && !bool(lb) {
			return BoolVal(false), nil
		}
		if x.Op == "||" && bool(lb) {
			return BoolVal(true), nil
		}
		r, err := ip.eval(e, x.R)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(BoolVal)
		if !ok {
			return nil, errVal(x.Op, r)
		}
		return rb, nil
	}
	l, err := ip.eval(e, x.L)
	if err != nil {
		return nil, err
	}
	r, err := ip.eval(e, x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "in", "!in":
		t, ok := r.(*TableVal)
		if !ok {
			// addr in subnet
			if sn, ok2 := r.(SubnetVal); ok2 {
				a, ok3 := l.(AddrVal)
				if !ok3 {
					return nil, errVal("in", l)
				}
				res := sn.N.NetContains(a.A)
				if x.Op == "!in" {
					res = !res
				}
				return BoolVal(res), nil
			}
			return nil, errVal("in", r)
		}
		var keys []Val
		if lv, ok := l.(*VectorVal); ok {
			keys = lv.Elems
		} else {
			keys = []Val{l}
		}
		res := t.Has(ip.Now(), keys)
		if x.Op == "!in" {
			res = !res
		}
		return BoolVal(res), nil
	case "==":
		return BoolVal(Equal(l, r)), nil
	case "!=":
		return BoolVal(!Equal(l, r)), nil
	}
	return numericBin(x.Op, l, r)
}

// numericBin implements arithmetic and ordering over the numeric types.
func numericBin(op string, l, r Val) (Val, error) {
	// time/interval algebra first.
	switch lv := l.(type) {
	case TimeVal:
		switch rv := r.(type) {
		case IntervalVal:
			switch op {
			case "+":
				return TimeVal(int64(lv) + int64(rv)), nil
			case "-":
				return TimeVal(int64(lv) - int64(rv)), nil
			}
		case TimeVal:
			switch op {
			case "-":
				return IntervalVal(int64(lv) - int64(rv)), nil
			case "<":
				return BoolVal(lv < rv), nil
			case ">":
				return BoolVal(lv > rv), nil
			case "<=":
				return BoolVal(lv <= rv), nil
			case ">=":
				return BoolVal(lv >= rv), nil
			}
		}
	case IntervalVal:
		if rv, ok := r.(IntervalVal); ok {
			switch op {
			case "+":
				return IntervalVal(lv + rv), nil
			case "-":
				return IntervalVal(lv - rv), nil
			case "<":
				return BoolVal(lv < rv), nil
			case ">":
				return BoolVal(lv > rv), nil
			case "<=":
				return BoolVal(lv <= rv), nil
			case ">=":
				return BoolVal(lv >= rv), nil
			}
		}
	case StringVal:
		if rv, ok := r.(StringVal); ok {
			switch op {
			case "+":
				return StringVal(lv + rv), nil
			case "<":
				return BoolVal(lv < rv), nil
			case ">":
				return BoolVal(lv > rv), nil
			}
		}
	}
	// Numeric coercion: double wins; otherwise integer arithmetic.
	lf, lIsF, li, lok := numParts(l)
	rf, rIsF, ri, rok := numParts(r)
	if !lok || !rok {
		return nil, fmt.Errorf("bro: invalid operands for %s: %s, %s", op, l.TypeName(), r.TypeName())
	}
	if lIsF || rIsF {
		switch op {
		case "+":
			return DoubleVal(lf + rf), nil
		case "-":
			return DoubleVal(lf - rf), nil
		case "*":
			return DoubleVal(lf * rf), nil
		case "/":
			if rf == 0 {
				return nil, fmt.Errorf("bro: division by zero")
			}
			return DoubleVal(lf / rf), nil
		case "<":
			return BoolVal(lf < rf), nil
		case ">":
			return BoolVal(lf > rf), nil
		case "<=":
			return BoolVal(lf <= rf), nil
		case ">=":
			return BoolVal(lf >= rf), nil
		}
	}
	switch op {
	case "+":
		return countOrInt(li+ri, l, r), nil
	case "-":
		return countOrInt(li-ri, l, r), nil
	case "*":
		return countOrInt(li*ri, l, r), nil
	case "/":
		if ri == 0 {
			return nil, fmt.Errorf("bro: division by zero")
		}
		return countOrInt(li/ri, l, r), nil
	case "%":
		if ri == 0 {
			return nil, fmt.Errorf("bro: modulo by zero")
		}
		return countOrInt(li%ri, l, r), nil
	case "<":
		return BoolVal(li < ri), nil
	case ">":
		return BoolVal(li > ri), nil
	case "<=":
		return BoolVal(li <= ri), nil
	case ">=":
		return BoolVal(li >= ri), nil
	}
	return nil, fmt.Errorf("bro: unknown operator %q", op)
}

func numParts(v Val) (f float64, isF bool, i int64, ok bool) {
	switch n := v.(type) {
	case CountVal:
		return float64(n), false, int64(n), true
	case IntVal:
		return float64(n), false, int64(n), true
	case DoubleVal:
		return float64(n), true, int64(n), true
	default:
		return 0, false, 0, false
	}
}

func countOrInt(n int64, l, r Val) Val {
	_, lInt := l.(IntVal)
	_, rInt := r.(IntVal)
	if lInt || rInt || n < 0 {
		return IntVal(n)
	}
	return CountVal(n)
}

// MakeConn builds the standard `connection` record.
func (ip *Interp) MakeConn(uid string, orig, resp values.Value, origP, respP PortVal, start int64) *RecordVal {
	id := NewRecord(ip.Records["conn_id"])
	id.Set("orig_h", AddrVal{A: orig})
	id.Set("orig_p", origP)
	id.Set("resp_h", AddrVal{A: resp})
	id.Set("resp_p", respP)
	c := NewRecord(ip.Records["connection"])
	c.Set("id", id)
	c.Set("uid", StringVal(uid))
	c.Set("start_time", TimeVal(start))
	return c
}
