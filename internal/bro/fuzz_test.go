package bro

import (
	"testing"

	"hilti/internal/pkt/layers"
)

// fuzzEngine builds a fresh engine per input so every crash reproduces from
// its corpus entry alone (no cross-input connection state).
func fuzzEngine(t *testing.T, parser string) *Engine {
	e, err := NewEngine(Config{Parser: parser, ScriptExec: "interp",
		Scripts: []string{HTTPScript, DNSScript}, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// feedShapes drives one fuzz input through the engine three ways: as a raw
// frame (exercises link/network decode), as a TCP:80 payload (exercises the
// HTTP parser through stream reassembly), and as a UDP:53 payload (exercises
// the DNS parser). The panicky ProcessPacket path is used deliberately: a
// panic anywhere in decode/reassembly/parse is a real bug the quarantine
// machinery should never have to paper over.
func feedShapes(e *Engine, data []byte) {
	src, dst := [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}
	e.ProcessPacket(1, data)

	tcp := layers.EncodeTCP(src, dst, 44000, 80, 100, 0, layers.TCPAck, 65535, data)
	ip := layers.EncodeIPv4(src, dst, layers.IPProtoTCP, 64, 1, tcp)
	e.ProcessPacket(2, layers.EncodeEthernet([6]byte{1}, [6]byte{2}, layers.EtherTypeIPv4, ip))

	udp := layers.EncodeUDP(src, dst, 44001, 53, data)
	ip = layers.EncodeIPv4(src, dst, layers.IPProtoUDP, 64, 2, udp)
	e.ProcessPacket(3, layers.EncodeEthernet([6]byte{1}, [6]byte{2}, layers.EtherTypeIPv4, ip))

	e.Finish()
}

func fuzzSeeds(f *testing.F) {
	f.Add([]byte("GET /index.html HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\n\r\nabc"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 99999999999\r\n\r\n"))
	// A DNS query header claiming more records than the payload carries.
	f.Add([]byte{0x12, 0x34, 0x01, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	// DNS name with a compression pointer to itself.
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C, 0, 1, 0, 1})
	f.Add([]byte{})
}

// FuzzEngineFeed fuzzes the full packet path with the hand-written parsers.
func FuzzEngineFeed(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		feedShapes(fuzzEngine(t, "standard"), data)
	})
}

// FuzzEngineFeedBinpac fuzzes the same path with the BinPAC++ grammars
// compiled to HILTI, so hostile bytes reach the generated parse code.
func FuzzEngineFeedBinpac(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		feedShapes(fuzzEngine(t, "binpac"), data)
	})
}
