// Builder: the in-memory AST construction API (the paper's §3.4 C++ AST
// interface). Host-application compilers — the BPF, firewall, BinPAC++ and
// Bro-script compilers in this repository — use it to emit HILTI programs
// directly, then hand them to the VM for just-in-time compilation.

package ast

import (
	"fmt"

	"hilti/internal/hilti/types"
)

// Builder accumulates a module.
type Builder struct {
	M *Module
}

// NewBuilder creates a builder for a fresh module.
func NewBuilder(name string) *Builder {
	return &Builder{M: NewModule(name)}
}

// Import records a module import.
func (b *Builder) Import(name string) { b.M.Imports = append(b.M.Imports, name) }

// DeclareType registers a named type.
func (b *Builder) DeclareType(name string, t *types.Type) {
	b.M.Types[name] = t
}

// Global declares a thread-local module global.
func (b *Builder) Global(name string, t *types.Type, init ...Operand) {
	v := &Variable{Name: name, Type: t}
	if len(init) > 0 {
		v.Init = init[0]
	}
	b.M.Globals = append(b.M.Globals, v)
}

// Function opens a function body builder.
func (b *Builder) Function(name string, result *types.Type, params ...Param) *FuncBuilder {
	f := &Function{Name: name, Result: result, Params: params}
	b.M.Functions = append(b.M.Functions, f)
	fb := &FuncBuilder{F: f}
	fb.Block("") // entry block
	return fb
}

// Hook opens a hook body builder (a function attached to the named hook).
func (b *Builder) Hook(name string, prio int, params ...Param) *FuncBuilder {
	fb := b.Function(name, types.VoidT, params...)
	fb.F.IsHook = true
	fb.F.HookPrio = prio
	return fb
}

// FuncBuilder appends blocks and instructions to one function.
type FuncBuilder struct {
	F    *Function
	cur  *Block
	temp int
}

// Local declares a function-local variable.
func (fb *FuncBuilder) Local(name string, t *types.Type) Operand {
	fb.F.Locals = append(fb.F.Locals, &Variable{Name: name, Type: t})
	return VarOp(name)
}

// Temp declares a fresh unique local (compiler temporaries like the
// paper's __t1, __t2 in Figure 8).
func (fb *FuncBuilder) Temp(t *types.Type) Operand {
	fb.temp++
	return fb.Local(fmt.Sprintf("__t%d", fb.temp), t)
}

// Block starts (or switches to) a named block.
func (fb *FuncBuilder) Block(name string) {
	for _, blk := range fb.F.Blocks {
		if blk.Name == name && name != "" {
			fb.cur = blk
			return
		}
	}
	blk := &Block{Name: name}
	fb.F.Blocks = append(fb.F.Blocks, blk)
	fb.cur = blk
}

// Instr appends an instruction without target.
func (fb *FuncBuilder) Instr(op string, ops ...Operand) *Instr {
	in := &Instr{Op: op, Ops: ops}
	fb.cur.Instrs = append(fb.cur.Instrs, in)
	return in
}

// Assign appends an instruction with a target.
func (fb *FuncBuilder) Assign(target Operand, op string, ops ...Operand) *Instr {
	in := &Instr{Op: op, Target: target, Ops: ops}
	fb.cur.Instrs = append(fb.cur.Instrs, in)
	return in
}

// Set appends a plain assignment target = src.
func (fb *FuncBuilder) Set(target, src Operand) *Instr {
	return fb.Assign(target, "assign", src)
}

// Jump appends an unconditional branch.
func (fb *FuncBuilder) Jump(label string) { fb.Instr("jump", LabelOp(label)) }

// IfElse appends a conditional branch.
func (fb *FuncBuilder) IfElse(cond Operand, ifTrue, ifFalse string) {
	fb.Instr("if.else", cond, LabelOp(ifTrue), LabelOp(ifFalse))
}

// Return appends a return with a value.
func (fb *FuncBuilder) Return(v Operand) { fb.Instr("return.result", v) }

// ReturnVoid appends a void return.
func (fb *FuncBuilder) ReturnVoid() { fb.Instr("return.void") }

// Call appends a call whose result is discarded.
func (fb *FuncBuilder) Call(fn string, args ...Operand) *Instr {
	return fb.Instr("call", append([]Operand{FuncOperand(fn)}, args...)...)
}

// CallResult appends a call assigning the result.
func (fb *FuncBuilder) CallResult(target Operand, fn string, args ...Operand) *Instr {
	return fb.Assign(target, "call", append([]Operand{FuncOperand(fn)}, args...)...)
}

// TryBegin opens a protected region whose exceptions of any type branch to
// catchLabel with the exception bound to excVar.
func (fb *FuncBuilder) TryBegin(catchLabel string, excVar Operand) {
	in := &Instr{Op: "try.begin", Target: excVar, Aux: catchLabel}
	fb.cur.Instrs = append(fb.cur.Instrs, in)
}

// TryBeginNamed opens a protected region whose handler catches only the
// named exception type; other exceptions propagate to outer handlers.
func (fb *FuncBuilder) TryBeginNamed(catchLabel string, excVar Operand, excName string) {
	in := &Instr{Op: "try.begin", Target: excVar, Aux: catchLabel, Ops: []Operand{FieldOperand(excName)}}
	fb.cur.Instrs = append(fb.cur.Instrs, in)
}

// TryEnd closes the innermost protected region.
func (fb *FuncBuilder) TryEnd() { fb.Instr("try.end") }

// Append adds a pre-built instruction to the current block (used by the
// textual parser).
func (fb *FuncBuilder) Append(in *Instr) { fb.cur.Instrs = append(fb.cur.Instrs, in) }
