package ast

import (
	"strings"
	"testing"

	"hilti/internal/hilti/types"
	"hilti/internal/rt/values"
)

func TestBuilderShape(t *testing.T) {
	b := NewBuilder("M")
	b.Import("Hilti")
	b.Global("g", types.Int64T)
	fb := b.Function("f", types.BoolT,
		Param{Name: "x", Type: types.Int64T})
	cond := fb.Local("cond", types.BoolT)
	fb.Assign(cond, "int.lt", VarOp("x"), IntOp(10))
	fb.IfElse(cond, "yes", "no")
	fb.Block("yes")
	fb.Return(BoolOp(true))
	fb.Block("no")
	fb.Return(BoolOp(false))

	m := b.M
	if m.Name != "M" || len(m.Imports) != 1 || len(m.Globals) != 1 {
		t.Fatalf("module shape: %+v", m)
	}
	f := m.Function("f")
	if f == nil || len(f.Params) != 1 || len(f.Locals) != 1 || len(f.Blocks) != 3 {
		t.Fatalf("function shape: %+v", f)
	}
	if m.Function("nope") != nil {
		t.Fatal("unknown function lookup")
	}
}

func TestTempsAreUnique(t *testing.T) {
	b := NewBuilder("M")
	fb := b.Function("f", types.VoidT)
	t1 := fb.Temp(types.Int64T)
	t2 := fb.Temp(types.Int64T)
	if t1.Name == t2.Name {
		t.Fatalf("temps collide: %q", t1.Name)
	}
}

func TestBlockSwitchingAppendsToExisting(t *testing.T) {
	b := NewBuilder("M")
	fb := b.Function("f", types.VoidT)
	fb.Block("a")
	fb.Instr("nop")
	fb.Block("b")
	fb.Instr("nop")
	fb.Block("a") // switch back
	fb.Instr("nop")
	var blkA *Block
	for _, blk := range fb.F.Blocks {
		if blk.Name == "a" {
			blkA = blk
		}
	}
	if blkA == nil || len(blkA.Instrs) != 2 {
		t.Fatalf("block a should have 2 instrs: %+v", blkA)
	}
	if len(fb.F.Blocks) != 3 { // entry, a, b
		t.Fatalf("blocks: %d", len(fb.F.Blocks))
	}
}

func TestHookFlag(t *testing.T) {
	b := NewBuilder("M")
	fb := b.Hook("ev", 5)
	if !fb.F.IsHook || fb.F.HookPrio != 5 {
		t.Fatalf("hook flags: %+v", fb.F)
	}
}

func TestInstrString(t *testing.T) {
	in := &Instr{
		Op:  "set.insert",
		Ops: []Operand{VarOp("dyn"), TupleOp(VarOp("src"), VarOp("dst"))},
	}
	if got := in.String(); got != "set.insert dyn (src, dst)" {
		t.Fatalf("got %q", got)
	}
	in2 := &Instr{Op: "int.add", Target: VarOp("x"), Ops: []Operand{VarOp("x"), IntOp(1)}}
	if got := in2.String(); got != "x = int.add x 1" {
		t.Fatalf("got %q", got)
	}
}

func TestModuleStringRendersProgram(t *testing.T) {
	b := NewBuilder("Track")
	b.Global("hosts", types.RefT(types.SetT(types.AddrT)))
	fb := b.Hook("connection_established", 0, Param{Name: "c", Type: types.AnyT})
	tmp := fb.Temp(types.AddrT)
	fb.Assign(tmp, "struct.get", VarOp("c"), FieldOperand("resp_h"))
	fb.Instr("set.insert", VarOp("hosts"), tmp)
	fb.ReturnVoid()

	out := b.M.String()
	for _, want := range []string{
		"module Track",
		"global ref<set<addr>> hosts",
		"hook void connection_established(any c)",
		"__t1 = struct.get c resp_h",
		"set.insert hosts __t1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered module missing %q:\n%s", want, out)
		}
	}
}

func TestOperandConstructors(t *testing.T) {
	if IntOp(5).Val.AsInt() != 5 || IntOp(5).Kind != Const {
		t.Fatal("IntOp")
	}
	if StringOp("x").Val.AsString() != "x" {
		t.Fatal("StringOp")
	}
	if !BoolOp(true).Val.AsBool() {
		t.Fatal("BoolOp")
	}
	if LabelOp("l").Kind != Label || FieldOperand("f").Kind != FieldOp ||
		FuncOperand("g").Kind != FuncOp {
		t.Fatal("kinds")
	}
	if TypeOperand(types.AddrT).Type != types.AddrT {
		t.Fatal("TypeOperand")
	}
	var zero Operand
	if !zero.IsZero() || IntOp(0).IsZero() {
		t.Fatal("IsZero")
	}
	c := ConstOp(values.Double(2.5), types.DoubleT)
	if c.Val.AsDouble() != 2.5 {
		t.Fatal("ConstOp")
	}
}
