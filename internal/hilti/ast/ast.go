// Package ast defines HILTI's program representation: modules of functions
// and hooks composed of basic blocks of register-style instructions of the
// general form `<target> = <mnemonic> <op1> <op2> <op3>` (paper §3.2).
//
// Host applications construct these ASTs either by parsing textual .hlt
// source (package parser) or — the path the paper recommends — directly in
// memory through the Builder API in builder.go, the analog of HILTI's C++
// AST interface (paper §3.4). All four application exemplars' compilers
// emit this representation.
package ast

import (
	"fmt"
	"strings"

	"hilti/internal/hilti/types"
	"hilti/internal/rt/values"
)

// Module is one HILTI compilation unit.
type Module struct {
	Name      string
	Imports   []string
	Types     map[string]*types.Type
	Globals   []*Variable // thread-local globals (paper: "global to the current virtual thread")
	Consts    map[string]Operand
	Functions []*Function
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:   name,
		Types:  map[string]*types.Type{},
		Consts: map[string]Operand{},
	}
}

// Function looks up a function by (unqualified) name.
func (m *Module) Function(name string) *Function {
	for _, f := range m.Functions {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Variable is a global or local variable declaration.
type Variable struct {
	Name string
	Type *types.Type
	Init Operand // optional initializer (zero Operand when absent)
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *types.Type
}

// Function is a HILTI function or hook implementation. Hooks are
// "functions with multiple bodies": each Function with IsHook set is one
// body of the named hook, merged at link time across modules (paper §5).
type Function struct {
	Name     string
	Params   []Param
	Result   *types.Type
	Locals   []*Variable
	Blocks   []*Block
	IsHook   bool
	HookPrio int
	Exported bool // reachable from the host application (gets a stub)
}

// Block is a basic block: a label plus a sequence of instructions.
type Block struct {
	Name   string
	Instrs []*Instr
}

// Instr is one instruction. Target is the optional result operand (always
// a variable reference); Ops are the inputs.
type Instr struct {
	Op     string
	Target Operand
	Ops    []Operand

	// Try/catch structure (the firewall example's try { } catch): codegen
	// converts these pseudo-instructions into handler table entries.
	//   op "try.begin": Aux = catch label name, Target = exception variable
	//   op "try.end"
	Aux string
}

// OperandKind discriminates Operand.
type OperandKind int

// Operand kinds.
const (
	NoOperand OperandKind = iota
	Const                 // literal value of type Type
	Var                   // local/global/parameter reference by name
	Label                 // block label (branch targets)
	TypeOp                // a type operand (new, overlay.get, ...)
	FieldOp               // a field/label name (struct.get f, enum labels)
	FuncOp                // function name (call targets, callables)
	CtorOp                // constructor: tuple/list literal built from Elems
)

// Operand is one instruction operand.
type Operand struct {
	Kind  OperandKind
	Name  string       // Var/Label/Field/Func
	Val   values.Value // Const
	Type  *types.Type  // Const/TypeOp/CtorOp element type
	Elems []Operand    // CtorOp
}

// ConstOp builds a constant operand.
func ConstOp(v values.Value, t *types.Type) Operand {
	return Operand{Kind: Const, Val: v, Type: t}
}

// IntOp builds an int constant operand.
func IntOp(i int64) Operand { return ConstOp(values.Int(i), types.Int64T) }

// BoolOp builds a bool constant operand.
func BoolOp(b bool) Operand { return ConstOp(values.Bool(b), types.BoolT) }

// StringOp builds a string constant operand.
func StringOp(s string) Operand { return ConstOp(values.String(s), types.StringT) }

// VarOp builds a variable reference operand.
func VarOp(name string) Operand { return Operand{Kind: Var, Name: name} }

// LabelOp builds a block-label operand.
func LabelOp(name string) Operand { return Operand{Kind: Label, Name: name} }

// TypeOperand builds a type operand.
func TypeOperand(t *types.Type) Operand { return Operand{Kind: TypeOp, Type: t} }

// FieldOperand builds a field-name operand.
func FieldOperand(name string) Operand { return Operand{Kind: FieldOp, Name: name} }

// FuncOperand builds a function-name operand.
func FuncOperand(name string) Operand { return Operand{Kind: FuncOp, Name: name} }

// TupleOp builds a tuple-constructor operand.
func TupleOp(elems ...Operand) Operand {
	return Operand{Kind: CtorOp, Elems: elems, Type: types.TupleT()}
}

// IsZero reports an absent operand.
func (o Operand) IsZero() bool { return o.Kind == NoOperand }

// String renders the operand in surface syntax.
func (o Operand) String() string {
	switch o.Kind {
	case Const:
		return values.Format(o.Val)
	case Var, Label, FieldOp, FuncOp:
		return o.Name
	case TypeOp:
		return o.Type.String()
	case CtorOp:
		parts := make([]string, len(o.Elems))
		for i, e := range o.Elems {
			parts[i] = e.String()
		}
		return "(" + strings.Join(parts, ", ") + ")"
	default:
		return ""
	}
}

// String renders the instruction in surface syntax.
func (in *Instr) String() string {
	var sb strings.Builder
	if !in.Target.IsZero() {
		sb.WriteString(in.Target.String())
		sb.WriteString(" = ")
	}
	sb.WriteString(in.Op)
	for _, o := range in.Ops {
		sb.WriteByte(' ')
		sb.WriteString(o.String())
	}
	return sb.String()
}

// String renders a whole module (used for golden tests of generated code,
// mirroring the paper's Figures 4/5/8(b)).
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n\n", m.Name)
	for _, imp := range m.Imports {
		fmt.Fprintf(&sb, "import %s\n", imp)
	}
	for name, t := range m.Types {
		if t.Kind == types.Struct && t.StructDef != nil {
			fmt.Fprintf(&sb, "\ntype %s = struct {", name)
			for i, f := range t.StructDef.Fields {
				if i > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, " %s %s", f.Type, f.Name)
			}
			sb.WriteString(" }\n")
		}
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global %s %s\n", g.Type, g.Name)
	}
	for _, f := range m.Functions {
		sb.WriteByte('\n')
		kw := ""
		if f.IsHook {
			kw = "hook "
		}
		params := make([]string, len(f.Params))
		for i, p := range f.Params {
			params[i] = fmt.Sprintf("%s %s", p.Type, p.Name)
		}
		fmt.Fprintf(&sb, "%s%s %s(%s) {\n", kw, f.Result, f.Name, strings.Join(params, ", "))
		for _, l := range f.Locals {
			fmt.Fprintf(&sb, "    local %s %s\n", l.Type, l.Name)
		}
		for bi, b := range f.Blocks {
			if bi > 0 || b.Name != "" {
				fmt.Fprintf(&sb, "  %s:\n", b.Name)
			}
			for _, in := range b.Instrs {
				fmt.Fprintf(&sb, "    %s\n", in)
			}
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}
