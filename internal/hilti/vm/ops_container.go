// Container and composite-type instructions: structs, tuples, lists,
// vectors, sets, maps with built-in state management, and their iterators.

package vm

import (
	"sync/atomic"

	"fmt"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/rt/container"
	"hilti/internal/rt/timer"
	"hilti/internal/rt/values"
)

func asMap(v values.Value) (*container.Map, error) {
	m, _ := v.O.(*container.Map)
	if m == nil {
		return nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil map reference"}
	}
	return m, nil
}

func asSet(v values.Value) (*container.Set, error) {
	s, _ := v.O.(*container.Set)
	if s == nil {
		return nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil set reference"}
	}
	return s, nil
}

func asList(v values.Value) (*container.List, error) {
	l, _ := v.O.(*container.List)
	if l == nil {
		return nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil list reference"}
	}
	return l, nil
}

func asVector(v values.Value) (*container.Vector, error) {
	vec, _ := v.O.(*container.Vector)
	if vec == nil {
		return nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil vector reference"}
	}
	return vec, nil
}

func asStruct(v values.Value) (*values.Struct, error) {
	s := v.AsStruct()
	if s == nil {
		return nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil struct reference"}
	}
	return s, nil
}

func expireStrategy(v values.Value) container.ExpireStrategy {
	switch v.AsInt() {
	case 1:
		return container.ExpireCreate
	case 2:
		return container.ExpireAccess
	default:
		return container.ExpireNone
	}
}

func init() {
	// new <type>: explicit dynamic allocation (paper §3.2 memory model).
	register("new", func(c *fnCompiler, in *ast.Instr) error {
		if len(in.Ops) != 1 || in.Ops[0].Kind != ast.TypeOp {
			return fmt.Errorf("new needs a type operand")
		}
		t := in.Ops[0].Type
		d, err := c.dstOf(in.Target)
		if err != nil {
			return err
		}
		c.emit(Instr{exec: execNew, d: d, aux: t})
		return nil
	})

	// --- struct --------------------------------------------------------------
	registerShaped("struct.get", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		s, err := asStruct(a[0])
		if err != nil {
			return values.Nil, err
		}
		name := a[1].AsString()
		v, ok := s.GetName(name)
		if !ok {
			return values.Nil, &values.Exception{Name: "Hilti::UnsetField",
				Msg: fmt.Sprintf("field %q not set", name)}
		}
		return v, nil
	}, func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int {
		if srcs[1].kind == srcConst && srcs[1].val.K == values.KindString {
			return execStructGet
		}
		return nil
	})
	registerSimple("struct.get_default", 3, func(ex *Exec, a []values.Value) (values.Value, error) {
		s, err := asStruct(a[0])
		if err != nil {
			return values.Nil, err
		}
		if v, ok := s.GetName(a[1].AsString()); ok {
			return v, nil
		}
		return a[2], nil
	})
	registerShaped("struct.set", 3, func(ex *Exec, a []values.Value) (values.Value, error) {
		s, err := asStruct(a[0])
		if err != nil {
			return values.Nil, err
		}
		s.SetName(a[1].AsString(), a[2])
		return values.Nil, nil
	}, func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int {
		if srcs[1].kind == srcConst && srcs[1].val.K == values.KindString {
			return execStructSet
		}
		return nil
	})
	registerSimple("struct.is_set", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		s, err := asStruct(a[0])
		if err != nil {
			return values.Nil, err
		}
		_, ok := s.GetName(a[1].AsString())
		return values.Bool(ok), nil
	})
	registerSimple("struct.unset", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		s, err := asStruct(a[0])
		if err != nil {
			return values.Nil, err
		}
		s.SetName(a[1].AsString(), values.Unset)
		return values.Nil, nil
	})

	// --- tuple ----------------------------------------------------------------
	registerSimple("tuple.index", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		t := a[0].AsTuple()
		if t == nil {
			return values.Nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil tuple"}
		}
		i := a[1].AsInt()
		if i < 0 || int(i) >= len(t.Elems) {
			return values.Nil, &values.Exception{Name: "Hilti::IndexError",
				Msg: fmt.Sprintf("tuple index %d out of range", i)}
		}
		return t.Elems[i], nil
	})
	registerSimple("tuple.length", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		t := a[0].AsTuple()
		if t == nil {
			return values.Int(0), nil
		}
		return values.Int(int64(len(t.Elems))), nil
	})

	// --- list -----------------------------------------------------------------
	registerSimple("list.push_back", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return values.Nil, err
		}
		l.PushBack(a[1])
		return values.Nil, nil
	})
	registerSimple("list.push_front", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return values.Nil, err
		}
		l.PushFront(a[1])
		return values.Nil, nil
	})
	registerSimple("list.pop_front", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return values.Nil, err
		}
		v, ok := l.PopFront()
		if !ok {
			return values.Nil, &values.Exception{Name: "Hilti::Underflow", Msg: "pop from empty list"}
		}
		return v, nil
	})
	registerSimple("list.size", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return values.Nil, err
		}
		return values.Int(int64(l.Len())), nil
	})
	registerSimple("list.front", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return values.Nil, err
		}
		v, ok := l.Front()
		if !ok {
			return values.Nil, &values.Exception{Name: "Hilti::Underflow", Msg: "front of empty list"}
		}
		return v, nil
	})
	registerSimple("list.back", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return values.Nil, err
		}
		v, ok := l.Back()
		if !ok {
			return values.Nil, &values.Exception{Name: "Hilti::Underflow", Msg: "back of empty list"}
		}
		return v, nil
	})
	registerSimple("list.begin", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return values.Nil, err
		}
		return values.Ref(values.KindIterList, l.Begin()), nil
	})

	// --- vector ----------------------------------------------------------------
	registerSimple("vector.push_back", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		v, err := asVector(a[0])
		if err != nil {
			return values.Nil, err
		}
		v.PushBack(a[1])
		return values.Nil, nil
	})
	registerSimple("vector.get", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		v, err := asVector(a[0])
		if err != nil {
			return values.Nil, err
		}
		e, ok := v.Get(int(a[1].AsInt()))
		if !ok {
			return values.Nil, &values.Exception{Name: "Hilti::IndexError",
				Msg: fmt.Sprintf("vector index %d", a[1].AsInt())}
		}
		return e, nil
	})
	registerSimple("vector.set", 3, func(ex *Exec, a []values.Value) (values.Value, error) {
		v, err := asVector(a[0])
		if err != nil {
			return values.Nil, err
		}
		if !v.Set(int(a[1].AsInt()), a[2]) {
			return values.Nil, &values.Exception{Name: "Hilti::IndexError",
				Msg: fmt.Sprintf("vector index %d", a[1].AsInt())}
		}
		return values.Nil, nil
	})
	registerSimple("vector.size", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		v, err := asVector(a[0])
		if err != nil {
			return values.Nil, err
		}
		return values.Int(int64(v.Len())), nil
	})
	registerSimple("vector.reserve", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		v, err := asVector(a[0])
		if err != nil {
			return values.Nil, err
		}
		v.Reserve(int(a[1].AsInt()))
		return values.Nil, nil
	})

	// --- set -------------------------------------------------------------------
	registerSimple("set.insert", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		s, err := asSet(a[0])
		if err != nil {
			return values.Nil, err
		}
		s.Insert(a[1])
		return values.Nil, nil
	})
	registerShaped("set.exists", 2, nil,
		func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int { return execSetExists })
	registerSimple("set.remove", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		s, err := asSet(a[0])
		if err != nil {
			return values.Nil, err
		}
		s.Remove(a[1])
		return values.Nil, nil
	})
	registerSimple("set.size", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		s, err := asSet(a[0])
		if err != nil {
			return values.Nil, err
		}
		return values.Int(int64(s.Len())), nil
	})
	registerSimple("set.clear", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		s, err := asSet(a[0])
		if err != nil {
			return values.Nil, err
		}
		s.Clear()
		return values.Nil, nil
	})
	// set.timeout <set> <ExpireStrategy enum> <interval>: attaches the
	// Exec's global timer manager (the paper's firewall example).
	registerSimple("set.timeout", 3, func(ex *Exec, a []values.Value) (values.Value, error) {
		s, err := asSet(a[0])
		if err != nil {
			return values.Nil, err
		}
		s.SetTimeout(ex.GlobalTM, expireStrategy(a[1]), timer.Interval(a[2].AsIntervalNs()))
		return values.Nil, nil
	})

	// --- map -------------------------------------------------------------------
	registerSimple("map.insert", 3, func(ex *Exec, a []values.Value) (values.Value, error) {
		m, err := asMap(a[0])
		if err != nil {
			return values.Nil, err
		}
		m.Insert(a[1], a[2])
		return values.Nil, nil
	})
	registerShaped("map.get", 2, nil,
		func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int { return execMapGet })
	registerShaped("map.get_default", 3, nil,
		func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int { return execMapGetDefault })
	registerShaped("map.exists", 2, nil,
		func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int { return execMapExists })
	registerSimple("map.remove", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		m, err := asMap(a[0])
		if err != nil {
			return values.Nil, err
		}
		m.Remove(a[1])
		return values.Nil, nil
	})
	registerSimple("map.size", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		m, err := asMap(a[0])
		if err != nil {
			return values.Nil, err
		}
		return values.Int(int64(m.Len())), nil
	})
	registerSimple("map.clear", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		m, err := asMap(a[0])
		if err != nil {
			return values.Nil, err
		}
		m.Clear()
		return values.Nil, nil
	})
	registerSimple("map.default", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		m, err := asMap(a[0])
		if err != nil {
			return values.Nil, err
		}
		m.SetDefault(a[1])
		return values.Nil, nil
	})
	registerSimple("map.timeout", 3, func(ex *Exec, a []values.Value) (values.Value, error) {
		m, err := asMap(a[0])
		if err != nil {
			return values.Nil, err
		}
		m.SetTimeout(ex.GlobalTM, expireStrategy(a[1]), timer.Interval(a[2].AsIntervalNs()))
		return values.Nil, nil
	})
	// map.keys / set.elems materialize iteration as a vector snapshot (the
	// Bro compiler lowers `for (i in container)` onto these).
	registerSimple("map.keys", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		m, err := asMap(a[0])
		if err != nil {
			return values.Nil, err
		}
		vec := container.NewVector(values.Nil)
		for _, k := range m.Keys() {
			vec.PushBack(k)
		}
		return values.Ref(values.KindVector, vec), nil
	})
	registerSimple("map.values", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		m, err := asMap(a[0])
		if err != nil {
			return values.Nil, err
		}
		vec := container.NewVector(values.Nil)
		m.Each(func(_, v values.Value) bool {
			vec.PushBack(v)
			return true
		})
		return values.Ref(values.KindVector, vec), nil
	})
	registerSimple("set.elems", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		s, err := asSet(a[0])
		if err != nil {
			return values.Nil, err
		}
		vec := container.NewVector(values.Nil)
		for _, e := range s.Elems() {
			vec.PushBack(e)
		}
		return values.Ref(values.KindVector, vec), nil
	})
	registerSimple("list.elems", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return values.Nil, err
		}
		vec := container.NewVector(values.Nil)
		l.Each(func(e values.Value) bool {
			vec.PushBack(e)
			return true
		})
		return values.Ref(values.KindVector, vec), nil
	})
}

func execNew(ex *Exec, fr *Frame, in *Instr) int {
	v, err := newValueOfType(ex, in.aux.(*types.Type))
	if err != nil {
		return ex.raiseErr(err)
	}
	ex.put(fr, in.d, v)
	return in.t1
}

// --- dedicated container executors ------------------------------------------
//
// These skip the simpleFn dispatch (args boxing + closure type assertion)
// and, for lookups, the per-call values.Key allocation: the key is encoded
// into the Exec's scratch buffer and probed with the container's *Keyed
// methods. Tuple-constructor keys — the per-packet pattern of the firewall
// and session tables — never materialize a tuple at all.

func execStructGet(ex *Exec, fr *Frame, in *Instr) int {
	s, err := asStruct(ex.get(fr, &in.srcs[0]))
	if err != nil {
		return ex.raiseErr(err)
	}
	name := in.srcs[1].val.AsString()
	v, ok := s.GetName(name)
	if !ok {
		return ex.raise("Hilti::UnsetField", fmt.Sprintf("field %q not set", name))
	}
	ex.put(fr, in.d, v)
	return in.t1
}

func execStructSet(ex *Exec, fr *Frame, in *Instr) int {
	s, err := asStruct(ex.get(fr, &in.srcs[0]))
	if err != nil {
		return ex.raiseErr(err)
	}
	s.SetName(in.srcs[1].val.AsString(), ex.get(fr, &in.srcs[2]))
	ex.put(fr, in.d, values.Nil)
	return in.t1
}

// setExists probes s for the key operand ks, via the scratch-encoded fast
// path when the key is hashable.
func setExists(ex *Exec, fr *Frame, s *container.Set, ks *src) bool {
	if k, ok := ex.srcKey(fr, ks); ok {
		return s.ExistsKeyed(k)
	}
	return s.Exists(ex.get(fr, ks))
}

// mapExists is setExists for maps.
func mapExists(ex *Exec, fr *Frame, m *container.Map, ks *src) bool {
	if k, ok := ex.srcKey(fr, ks); ok {
		return m.ExistsKeyed(k)
	}
	return m.Exists(ex.get(fr, ks))
}

// mapGet looks up the key operand ks in m, honoring the map default.
func mapGet(ex *Exec, fr *Frame, m *container.Map, ks *src) (values.Value, bool) {
	if k, ok := ex.srcKey(fr, ks); ok {
		return m.GetKeyed(k)
	}
	return m.Get(ex.get(fr, ks))
}

func execSetExists(ex *Exec, fr *Frame, in *Instr) int {
	s, err := asSet(ex.get(fr, &in.srcs[0]))
	if err != nil {
		return ex.raiseErr(err)
	}
	ex.put(fr, in.d, values.Bool(setExists(ex, fr, s, &in.srcs[1])))
	return in.t1
}

func execMapExists(ex *Exec, fr *Frame, in *Instr) int {
	m, err := asMap(ex.get(fr, &in.srcs[0]))
	if err != nil {
		return ex.raiseErr(err)
	}
	ex.put(fr, in.d, values.Bool(mapExists(ex, fr, m, &in.srcs[1])))
	return in.t1
}

func execMapGet(ex *Exec, fr *Frame, in *Instr) int {
	m, err := asMap(ex.get(fr, &in.srcs[0]))
	if err != nil {
		return ex.raiseErr(err)
	}
	v, ok := mapGet(ex, fr, m, &in.srcs[1])
	if !ok {
		return ex.raise("Hilti::IndexError",
			"key not in map: "+values.Format(ex.get(fr, &in.srcs[1])))
	}
	ex.put(fr, in.d, v)
	return in.t1
}

func execMapGetDefault(ex *Exec, fr *Frame, in *Instr) int {
	m, err := asMap(ex.get(fr, &in.srcs[0]))
	if err != nil {
		return ex.raiseErr(err)
	}
	v, ok := mapGet(ex, fr, m, &in.srcs[1])
	if !ok {
		v = ex.get(fr, &in.srcs[2])
	}
	ex.put(fr, in.d, v)
	return in.t1
}

// --- tier-2 monomorphic inline caches ----------------------------------------
//
// Installed by tier-2 lowering (tier2.go). A struct IC caches the
// (StructDef → field index) resolution so the steady state skips the
// by-name map lookup; a map IC caches the key operand's observed shape
// (value kind + whether it scratch-encodes) so the steady state skips
// re-probing the encodability of every key. Both demote the whole
// function back to tier-1 when the monomorphic assumption breaks — the
// current activation still completes correctly through the slow path.

// structICEntry is the cached field resolution for one struct shape.
type structICEntry struct {
	def *values.StructDef
	idx int
}

// structIC is the shared inline-cache state of one struct.get/set site.
// First-generation tier code uses the monomorphic entry; re-promoted code
// sets wide and grows ways copy-on-write up to icWays shapes.
type structIC struct {
	name  string
	fn    *CompiledFunc
	wide  bool
	entry atomic.Pointer[structICEntry]
	ways  atomic.Pointer[[]structICEntry]
}

// lookup resolves the field index for s, filling the cache on first use
// and demoting the function when the site outgrows it. The returned index
// is -1 for an unknown field (matching StructDef.Index).
func (ic *structIC) lookup(s *values.Struct) int {
	if ic.wide {
		return ic.lookupWide(s)
	}
	if e := ic.entry.Load(); e != nil {
		if e.def == s.Def {
			return e.idx
		}
		// Second shape at this site: tier-2 specialized on a monomorphic
		// world that no longer exists. Re-promotion widens the cache.
		demoteTier2(ic.fn)
	}
	idx := s.Def.Index(ic.name)
	if idx >= 0 {
		ic.entry.Store(&structICEntry{def: s.Def, idx: idx})
	}
	return idx
}

// lookupWide is the polymorphic path of a re-promoted function: a linear
// scan over at most icWays cached shapes, still far cheaper than the
// by-name map probe. A shape beyond capacity marks the site megamorphic
// and demotes for good.
func (ic *structIC) lookupWide(s *values.Struct) int {
	var es []structICEntry
	if p := ic.ways.Load(); p != nil {
		es = *p
		for i := range es {
			if es[i].def == s.Def {
				return es[i].idx
			}
		}
	}
	idx := s.Def.Index(ic.name)
	if len(es) >= icWays {
		demoteTier2Mega(ic.fn)
		return idx
	}
	if idx >= 0 {
		grown := make([]structICEntry, len(es)+1)
		copy(grown, es)
		grown[len(es)] = structICEntry{def: s.Def, idx: idx}
		ic.ways.Store(&grown)
	}
	return idx
}

func execStructGetIC(ex *Exec, fr *Frame, in *Instr) int {
	s, err := asStruct(ex.get(fr, &in.srcs[0]))
	if err != nil {
		return ex.raiseErr(err)
	}
	ic := in.aux.(*structIC)
	v, ok := s.Get(ic.lookup(s))
	if !ok {
		return ex.raise("Hilti::UnsetField", fmt.Sprintf("field %q not set", ic.name))
	}
	ex.put(fr, in.d, v)
	return in.t1
}

func execStructSetIC(ex *Exec, fr *Frame, in *Instr) int {
	s, err := asStruct(ex.get(fr, &in.srcs[0]))
	if err != nil {
		return ex.raiseErr(err)
	}
	ic := in.aux.(*structIC)
	s.Set(ic.lookup(s), ex.get(fr, &in.srcs[2]))
	ex.put(fr, in.d, values.Nil)
	return in.t1
}

// mapIC caches the shape of one map lookup site's key operand: the value
// kind plus whether that kind scratch-encodes via values.AppendKey. Shape
// 0 means unfilled. Re-promoted (wide) sites hold up to icWays shapes in
// a copy-on-write slice instead of the single shape word.
type mapIC struct {
	fn     *CompiledFunc
	wide   bool
	shape  atomic.Int64
	shapes atomic.Pointer[[]int64]
}

func mapKeyShape(k values.Kind, keyed bool) int64 {
	s := 1 + int64(k)*2
	if keyed {
		s++
	}
	return s
}

// icMapKey resolves the cached lookup path for kv, returning the encoded
// key when the keyed fast path applies. A shape change (or a same-kind key
// that stops encoding, e.g. heterogeneous tuples) demotes the function.
func icMapKey(ex *Exec, ic *mapIC, kv values.Value) (k []byte, keyed bool) {
	if ic.wide {
		return icMapKeyWide(ex, ic, kv)
	}
	shape := ic.shape.Load()
	switch shape {
	case mapKeyShape(kv.K, false):
		return nil, false
	case mapKeyShape(kv.K, true):
		if k, ok := values.AppendKey(ex.keyBuf[:0], kv); ok {
			ex.keyBuf = k
			return k, true
		}
		demoteTier2(ic.fn)
		ex.keyBuf = ex.keyBuf[:0]
		return nil, false
	}
	if shape != 0 {
		demoteTier2(ic.fn)
	}
	k, ok := values.AppendKey(ex.keyBuf[:0], kv)
	if ok {
		ex.keyBuf = k
		ic.shape.Store(mapKeyShape(kv.K, true))
		return k, true
	}
	ex.keyBuf = k[:0]
	ic.shape.Store(mapKeyShape(kv.K, false))
	return nil, false
}

// icMapKeyWide is the polymorphic key path of a re-promoted function:
// up to icWays cached key shapes, scanned linearly. A same-kind key that
// stops encoding breaks an assumption no amount of widening can express,
// and a shape past capacity makes the site megamorphic — both demote the
// function permanently.
func icMapKeyWide(ex *Exec, ic *mapIC, kv values.Value) (k []byte, keyed bool) {
	var shapes []int64
	if p := ic.shapes.Load(); p != nil {
		shapes = *p
	}
	for _, sh := range shapes {
		switch sh {
		case mapKeyShape(kv.K, false):
			return nil, false
		case mapKeyShape(kv.K, true):
			if k, ok := values.AppendKey(ex.keyBuf[:0], kv); ok {
				ex.keyBuf = k
				return k, true
			}
			demoteTier2Mega(ic.fn)
			ex.keyBuf = ex.keyBuf[:0]
			return nil, false
		}
	}
	k, ok := values.AppendKey(ex.keyBuf[:0], kv)
	if ok {
		ex.keyBuf = k
	} else {
		ex.keyBuf = k[:0]
	}
	if len(shapes) >= icWays {
		demoteTier2Mega(ic.fn)
	} else {
		grown := make([]int64, len(shapes)+1)
		copy(grown, shapes)
		grown[len(shapes)] = mapKeyShape(kv.K, ok)
		ic.shapes.Store(&grown)
	}
	if ok {
		return k, true
	}
	return nil, false
}

func execMapGetIC(ex *Exec, fr *Frame, in *Instr) int {
	m, err := asMap(ex.get(fr, &in.srcs[0]))
	if err != nil {
		return ex.raiseErr(err)
	}
	kv := ex.get(fr, &in.srcs[1])
	var v values.Value
	var ok bool
	if k, keyed := icMapKey(ex, in.aux.(*mapIC), kv); keyed {
		v, ok = m.GetKeyed(k)
	} else {
		v, ok = m.Get(kv)
	}
	if !ok {
		return ex.raise("Hilti::IndexError", "key not in map: "+values.Format(kv))
	}
	ex.put(fr, in.d, v)
	return in.t1
}

func execMapExistsIC(ex *Exec, fr *Frame, in *Instr) int {
	m, err := asMap(ex.get(fr, &in.srcs[0]))
	if err != nil {
		return ex.raiseErr(err)
	}
	kv := ex.get(fr, &in.srcs[1])
	var b bool
	if k, keyed := icMapKey(ex, in.aux.(*mapIC), kv); keyed {
		b = m.ExistsKeyed(k)
	} else {
		b = m.Exists(kv)
	}
	ex.put(fr, in.d, values.Bool(b))
	return in.t1
}
