package vm

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/rt/container"
	"hilti/internal/rt/hbytes"
	"hilti/internal/rt/threads"
	"hilti/internal/rt/values"
)

func mustLink(t *testing.T, mods ...*ast.Module) *Exec {
	t.Helper()
	prog, err := Link(mods...)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExec(prog)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestHelloWorld(t *testing.T) {
	// The paper's Figure 3 program.
	b := ast.NewBuilder("Main")
	b.Import("Hilti")
	fb := b.Function("run", types.VoidT)
	fb.Call("Hilti::print", ast.StringOp("Hello, World!"))
	fb.ReturnVoid()

	ex := mustLink(t, b.M)
	var out bytes.Buffer
	ex.Out = &out
	if _, err := ex.Call("Main::run"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "Hello, World!\n" {
		t.Fatalf("output %q", out.String())
	}
}

func TestArithmeticAndLocals(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.Int64T, ast.Param{Name: "x", Type: types.Int64T})
	y := fb.Local("y", types.Int64T)
	fb.Assign(y, "int.mul", ast.VarOp("x"), ast.IntOp(3))
	fb.Assign(y, "int.add", y, ast.IntOp(4))
	fb.Return(y)

	ex := mustLink(t, b.M)
	v, err := ex.Call("M::f", values.Int(10))
	if err != nil || v.AsInt() != 34 {
		t.Fatalf("got %v %v", v, err)
	}
}

func TestRecursionFib(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("fib", types.Int64T, ast.Param{Name: "n", Type: types.Int64T})
	c := fb.Local("c", types.BoolT)
	a := fb.Local("a", types.Int64T)
	bb := fb.Local("b", types.Int64T)
	fb.Assign(c, "int.lt", ast.VarOp("n"), ast.IntOp(2))
	fb.IfElse(c, "base", "rec")
	fb.Block("base")
	fb.Return(ast.VarOp("n"))
	fb.Block("rec")
	n1 := fb.Local("n1", types.Int64T)
	n2 := fb.Local("n2", types.Int64T)
	fb.Assign(n1, "int.sub", ast.VarOp("n"), ast.IntOp(1))
	fb.Assign(n2, "int.sub", ast.VarOp("n"), ast.IntOp(2))
	fb.CallResult(a, "fib", n1)
	fb.CallResult(bb, "fib", n2)
	r := fb.Local("r", types.Int64T)
	fb.Assign(r, "int.add", a, bb)
	fb.Return(r)

	ex := mustLink(t, b.M)
	v, err := ex.Call("M::fib", values.Int(15))
	if err != nil || v.AsInt() != 610 {
		t.Fatalf("fib(15) = %v, %v", v, err)
	}
}

func TestGlobalsAndSets(t *testing.T) {
	// The paper's Figure 8 pattern: a global set of addresses.
	b := ast.NewBuilder("M")
	b.Global("hosts", types.RefT(types.SetT(types.AddrT)))
	fb := b.Function("add", types.VoidT, ast.Param{Name: "a", Type: types.AddrT})
	fb.Instr("set.insert", ast.VarOp("hosts"), ast.VarOp("a"))
	fb.ReturnVoid()
	fb2 := b.Function("count", types.Int64T)
	n := fb2.Local("n", types.Int64T)
	fb2.Assign(n, "set.size", ast.VarOp("hosts"))
	fb2.Return(n)

	ex := mustLink(t, b.M)
	ex.Call("M::add", values.MustParseAddr("1.2.3.4"))
	ex.Call("M::add", values.MustParseAddr("5.6.7.8"))
	ex.Call("M::add", values.MustParseAddr("1.2.3.4"))
	v, err := ex.Call("M::count")
	if err != nil || v.AsInt() != 2 {
		t.Fatalf("count = %v, %v", v, err)
	}
}

func TestTryCatchIndexError(t *testing.T) {
	// The paper's Figure 5 pattern: classifier.get under try/catch.
	b := ast.NewBuilder("M")
	fb := b.Function("lookup", types.BoolT, ast.Param{Name: "k", Type: types.Int64T})
	m := fb.Local("m", types.RefT(types.MapT(types.Int64T, types.BoolT)))
	v := fb.Local("v", types.BoolT)
	e := fb.Local("e", types.ExcT)
	fb.Assign(m, "new", ast.TypeOperand(types.MapT(types.Int64T, types.BoolT)))
	fb.Instr("map.insert", m, ast.IntOp(1), ast.BoolOp(true))
	fb.TryBegin("catch", e)
	fb.Assign(v, "map.get", m, ast.VarOp("k"))
	fb.TryEnd()
	fb.Return(v)
	fb.Block("catch")
	fb.Return(ast.BoolOp(false))

	ex := mustLink(t, b.M)
	v1, err := ex.Call("M::lookup", values.Int(1))
	if err != nil || !v1.AsBool() {
		t.Fatalf("hit: %v %v", v1, err)
	}
	v2, err := ex.Call("M::lookup", values.Int(99))
	if err != nil || v2.AsBool() {
		t.Fatalf("miss should return false via catch: %v %v", v2, err)
	}
}

func TestUncaughtExceptionSurfacesAsError(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("boom", types.VoidT)
	x := fb.Local("x", types.Int64T)
	fb.Assign(x, "int.div", ast.IntOp(1), ast.IntOp(0))
	fb.ReturnVoid()

	ex := mustLink(t, b.M)
	_, err := ex.Call("M::boom")
	if err == nil || !strings.Contains(err.Error(), "DivisionByZero") {
		t.Fatalf("got %v", err)
	}
}

func TestExceptionPropagatesThroughCalls(t *testing.T) {
	b := ast.NewBuilder("M")
	inner := b.Function("inner", types.VoidT)
	x := inner.Local("x", types.Int64T)
	inner.Assign(x, "int.div", ast.IntOp(1), ast.IntOp(0))
	inner.ReturnVoid()

	outer := b.Function("outer", types.BoolT)
	e := outer.Local("e", types.ExcT)
	outer.TryBegin("catch", e)
	outer.Call("inner")
	outer.TryEnd()
	outer.Return(ast.BoolOp(false))
	outer.Block("catch")
	outer.Return(ast.BoolOp(true))

	ex := mustLink(t, b.M)
	v, err := ex.Call("M::outer")
	if err != nil || !v.AsBool() {
		t.Fatalf("exception did not propagate into caller's catch: %v %v", v, err)
	}
}

func TestHookBodiesRunInPriorityOrder(t *testing.T) {
	b := ast.NewBuilder("M")
	h1 := b.Hook("ev", 0)
	h1.Call("Hilti::print", ast.StringOp("low"))
	h1.ReturnVoid()
	h2 := b.Hook("ev", 10)
	h2.Call("Hilti::print", ast.StringOp("high"))
	h2.ReturnVoid()
	run := b.Function("run", types.VoidT)
	run.Instr("hook.run", ast.FuncOperand("ev"))
	run.ReturnVoid()

	ex := mustLink(t, b.M)
	var out bytes.Buffer
	ex.Out = &out
	if _, err := ex.Call("M::run"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "high\nlow\n" {
		t.Fatalf("output %q", out.String())
	}
}

func TestHooksMergeAcrossModules(t *testing.T) {
	// The paper's custom linker merges hook bodies across compilation units.
	b1 := ast.NewBuilder("A")
	h1 := b1.Hook("ev", 0)
	h1.Call("Hilti::print", ast.StringOp("from A"))
	h1.ReturnVoid()
	b2 := ast.NewBuilder("B")
	h2 := b2.Hook("ev", 0)
	h2.Call("Hilti::print", ast.StringOp("from B"))
	h2.ReturnVoid()
	run := b2.Function("run", types.VoidT)
	run.Instr("hook.run", ast.FuncOperand("ev"))
	run.ReturnVoid()

	ex := mustLink(t, b1.M, b2.M)
	var out bytes.Buffer
	ex.Out = &out
	ex.Call("B::run")
	if out.String() != "from A\nfrom B\n" {
		t.Fatalf("output %q", out.String())
	}
}

func TestGlobalsAreThreadLocalAcrossExecs(t *testing.T) {
	b := ast.NewBuilder("M")
	b.Global("n", types.Int64T)
	fb := b.Function("incr", types.Int64T)
	fb.Assign(ast.VarOp("n"), "int.add", ast.VarOp("n"), ast.IntOp(1))
	fb.Return(ast.VarOp("n"))
	prog, err := Link(b.M)
	if err != nil {
		t.Fatal(err)
	}
	ex1, _ := NewExec(prog)
	ex2, _ := NewExec(prog)
	ex1.Call("M::incr")
	ex1.Call("M::incr")
	v, _ := ex2.Call("M::incr")
	if v.AsInt() != 1 {
		t.Fatalf("globals leaked across execution contexts: %v", v)
	}
}

func TestSwitchInstruction(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("pick", types.StringT, ast.Param{Name: "x", Type: types.Int64T})
	fb.Instr("switch", ast.VarOp("x"), ast.LabelOp("dflt"),
		ast.Operand{Kind: ast.CtorOp, Elems: []ast.Operand{ast.IntOp(1), ast.LabelOp("one")}},
		ast.Operand{Kind: ast.CtorOp, Elems: []ast.Operand{ast.IntOp(2), ast.LabelOp("two")}})
	fb.Block("one")
	fb.Return(ast.StringOp("one"))
	fb.Block("two")
	fb.Return(ast.StringOp("two"))
	fb.Block("dflt")
	fb.Return(ast.StringOp("other"))

	ex := mustLink(t, b.M)
	for arg, want := range map[int64]string{1: "one", 2: "two", 9: "other"} {
		v, err := ex.Call("M::pick", values.Int(arg))
		if err != nil || v.AsString() != want {
			t.Fatalf("pick(%d) = %v, %v", arg, v, err)
		}
	}
}

func TestFiberSuspensionOnBytes(t *testing.T) {
	// A function that reads a fixed-size chunk from a bytes value suspends
	// until enough data has arrived — the incremental-parsing model.
	b := ast.NewBuilder("M")
	fb := b.Function("read8", types.BytesT, ast.Param{Name: "data", Type: types.BytesT})
	it := fb.Local("it", types.IterT(types.BytesT))
	tup := fb.Local("tup", types.TupleT(types.BytesT, types.IterT(types.BytesT)))
	out := fb.Local("out", types.BytesT)
	fb.Assign(it, "bytes.begin", ast.VarOp("data"))
	fb.Assign(tup, "unpack.bytes", it, ast.IntOp(8))
	fb.Assign(out, "tuple.index", tup, ast.IntOp(0))
	fb.Return(out)

	ex := mustLink(t, b.M)
	data := hbytes.New()
	data.Append([]byte("abc"))

	r := ex.FiberCall(ex.Prog.Fn("M::read8"), values.BytesVal(data))
	_, done, err := r.Resume()
	if done || err != nil {
		t.Fatalf("should suspend: done=%v err=%v", done, err)
	}
	data.Append([]byte("defgh"))
	v, done, err := r.Resume()
	if !done || err != nil {
		t.Fatalf("should complete: done=%v err=%v", done, err)
	}
	if v.AsBytes().String() != "abcdefgh" {
		t.Fatalf("got %q", v.AsBytes().String())
	}
}

func TestFiberAbort(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("stall", types.VoidT, ast.Param{Name: "data", Type: types.BytesT})
	it := fb.Local("it", types.IterT(types.BytesT))
	tup := fb.Local("tup", types.TupleT(types.BytesT, types.IterT(types.BytesT)))
	fb.Assign(it, "bytes.begin", ast.VarOp("data"))
	fb.Assign(tup, "unpack.bytes", it, ast.IntOp(100))
	fb.ReturnVoid()

	ex := mustLink(t, b.M)
	data := hbytes.New()
	r := ex.FiberCall(ex.Prog.Fn("M::stall"), values.BytesVal(data))
	_, done, _ := r.Resume()
	if done {
		t.Fatal("should suspend")
	}
	r.Abort()
	if !r.Done() {
		t.Fatal("should be done after abort")
	}
}

func TestWouldBlockWithoutFiberRaises(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.VoidT, ast.Param{Name: "data", Type: types.BytesT})
	it := fb.Local("it", types.IterT(types.BytesT))
	tup := fb.Local("tup", types.TupleT(types.BytesT, types.IterT(types.BytesT)))
	fb.Assign(it, "bytes.begin", ast.VarOp("data"))
	fb.Assign(tup, "unpack.bytes", it, ast.IntOp(4))
	fb.ReturnVoid()

	ex := mustLink(t, b.M)
	data := hbytes.New()
	_, err := ex.Call("M::f", values.BytesVal(data))
	if err == nil || !strings.Contains(err.Error(), "WouldBlock") {
		t.Fatalf("got %v", err)
	}
}

func TestThreadScheduleIsolation(t *testing.T) {
	// thread.schedule runs the target on its own virtual thread with its
	// own globals; per-thread counters never race (paper §3.2).
	b := ast.NewBuilder("M")
	b.Global("count", types.Int64T)
	fb := b.Function("bump", types.VoidT)
	fb.Assign(ast.VarOp("count"), "int.add", ast.VarOp("count"), ast.IntOp(1))
	fb.ReturnVoid()

	prog, err := Link(b.M)
	if err != nil {
		t.Fatal(err)
	}
	sched := threads.NewScheduler(4)
	defer sched.Shutdown()
	for i := 0; i < 100; i++ {
		if err := ScheduleCall(sched, prog, uint64(i%8), "M::bump"); err != nil {
			t.Fatal(err)
		}
	}
	sched.Drain()
	// EachContext runs the callback on the worker goroutines concurrently,
	// so the accumulator must be atomic.
	var total atomic.Int64
	sched.EachContext(func(ctx *threads.Context) {
		if e, ok := ctx.Host["hilti.exec"].(*Exec); ok {
			total.Add(e.Globals[0].AsInt())
		}
	})
	if total.Load() != 100 {
		t.Fatalf("total = %d", total.Load())
	}
}

func TestHostFunctionCallOut(t *testing.T) {
	// HILTI code can invoke arbitrary host functions (paper §3.4).
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.Int64T)
	x := fb.Local("x", types.Int64T)
	fb.CallResult(x, "host_double", ast.IntOp(21))
	fb.Return(x)

	ex := mustLink(t, b.M)
	ex.RegisterHost("host_double", func(ex *Exec, args []values.Value) (values.Value, error) {
		return values.Int(args[0].AsInt() * 2), nil
	})
	v, err := ex.Call("M::f")
	if err != nil || v.AsInt() != 42 {
		t.Fatalf("got %v %v", v, err)
	}
}

func TestUnknownFunctionError(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.VoidT)
	fb.Call("does_not_exist")
	fb.ReturnVoid()
	ex := mustLink(t, b.M)
	if _, err := ex.Call("M::f"); err == nil {
		t.Fatal("unknown callee should raise")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []func(*ast.Builder){
		func(b *ast.Builder) { // undefined variable
			fb := b.Function("f", types.VoidT)
			fb.Assign(ast.VarOp("x"), "int.add", ast.VarOp("nope"), ast.IntOp(1))
		},
		func(b *ast.Builder) { // undefined label
			fb := b.Function("f", types.VoidT)
			fb.Jump("nowhere")
		},
		func(b *ast.Builder) { // unknown op
			fb := b.Function("f", types.VoidT)
			fb.Instr("frob.nicate", ast.IntOp(1))
		},
		func(b *ast.Builder) { // unclosed try
			fb := b.Function("f", types.VoidT)
			fb.TryBegin("c", ast.Operand{})
			fb.Block("c")
			fb.ReturnVoid()
		},
	}
	for i, mk := range cases {
		b := ast.NewBuilder("M")
		mk(b)
		if _, err := Link(b.M); err == nil {
			t.Errorf("case %d: expected link error", i)
		}
	}
}

func TestGlobalAutoInitContainers(t *testing.T) {
	b := ast.NewBuilder("M")
	b.Global("m", types.RefT(types.MapT(types.StringT, types.Int64T)))
	b.Global("v", types.RefT(types.VectorT(types.Int64T)))
	b.Global("l", types.RefT(types.ListT(types.Int64T)))
	ex := mustLink(t, b.M)
	if _, ok := ex.Globals[0].O.(*container.Map); !ok {
		t.Fatal("map global not initialized")
	}
	if _, ok := ex.Globals[1].O.(*container.Vector); !ok {
		t.Fatal("vector global not initialized")
	}
	if _, ok := ex.Globals[2].O.(*container.List); !ok {
		t.Fatal("list global not initialized")
	}
}

func TestMapExpirationViaGlobalTime(t *testing.T) {
	b := ast.NewBuilder("M")
	b.Global("dyn", types.RefT(types.SetT(types.Int64T)))
	setup := b.Function("setup", types.VoidT)
	setup.Instr("set.timeout", ast.VarOp("dyn"),
		ast.ConstOp(values.EnumVal(container.ExpireStrategyEnum, 2), nil),
		ast.ConstOp(values.Seconds(300), types.IntervalT))
	setup.ReturnVoid()
	add := b.Function("add", types.VoidT, ast.Param{Name: "x", Type: types.Int64T})
	add.Instr("set.insert", ast.VarOp("dyn"), ast.VarOp("x"))
	add.ReturnVoid()
	check := b.Function("check", types.BoolT,
		ast.Param{Name: "t", Type: types.TimeT}, ast.Param{Name: "x", Type: types.Int64T})
	bv := check.Local("b", types.BoolT)
	check.Instr("timer_mgr.advance_global", ast.VarOp("t"))
	check.Assign(bv, "set.exists", ast.VarOp("dyn"), ast.VarOp("x"))
	check.Return(bv)

	ex := mustLink(t, b.M)
	ex.Call("M::setup")
	ex.Call("M::add", values.Int(7))
	v, _ := ex.Call("M::check", values.TimeVal(100e9), values.Int(7))
	if !v.AsBool() {
		t.Fatal("should exist at t=100s")
	}
	v, _ = ex.Call("M::check", values.TimeVal(500e9), values.Int(7))
	if v.AsBool() {
		t.Fatal("should have expired by t=500s (last access 100s + 300s)")
	}
}

func TestResumeAfterCompletionErrors(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.Int64T)
	fb.Return(ast.IntOp(1))
	ex := mustLink(t, b.M)
	r := ex.FiberCall(ex.Prog.Fn("M::f"))
	v, done, err := r.Resume()
	if !done || err != nil || v.AsInt() != 1 {
		t.Fatalf("got %v %v %v", v, done, err)
	}
	v2, done2, err2 := r.Resume()
	if !done2 || err2 != nil || v2.AsInt() != 1 {
		t.Fatalf("second resume should replay result: %v %v %v", v2, done2, err2)
	}
}

func TestExceptionTypeVisible(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.VoidT)
	m := fb.Local("m", types.RefT(types.MapT(types.Int64T, types.Int64T)))
	x := fb.Local("x", types.Int64T)
	fb.Assign(m, "new", ast.TypeOperand(types.MapT(types.Int64T, types.Int64T)))
	fb.Assign(x, "map.get", m, ast.IntOp(5))
	fb.ReturnVoid()
	ex := mustLink(t, b.M)
	_, err := ex.Call("M::f")
	var exc *values.Exception
	if !errors.As(err, &exc) || exc.Name != "Hilti::IndexError" {
		t.Fatalf("got %v", err)
	}
}

func BenchmarkVMFib20(b *testing.B) {
	bd := ast.NewBuilder("M")
	fb := bd.Function("fib", types.Int64T, ast.Param{Name: "n", Type: types.Int64T})
	c := fb.Local("c", types.BoolT)
	a := fb.Local("a", types.Int64T)
	bb := fb.Local("b", types.Int64T)
	fb.Assign(c, "int.lt", ast.VarOp("n"), ast.IntOp(2))
	fb.IfElse(c, "base", "rec")
	fb.Block("base")
	fb.Return(ast.VarOp("n"))
	fb.Block("rec")
	n1 := fb.Local("n1", types.Int64T)
	n2 := fb.Local("n2", types.Int64T)
	fb.Assign(n1, "int.sub", ast.VarOp("n"), ast.IntOp(1))
	fb.Assign(n2, "int.sub", ast.VarOp("n"), ast.IntOp(2))
	fb.CallResult(a, "fib", n1)
	fb.CallResult(bb, "fib", n2)
	r := fb.Local("r", types.Int64T)
	fb.Assign(r, "int.add", a, bb)
	fb.Return(r)
	prog, err := Link(bd.M)
	if err != nil {
		b.Fatal(err)
	}
	ex, _ := NewExec(prog)
	fn := prog.Fn("M::fib")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.CallFn(fn, values.Int(20)); err != nil {
			b.Fatal(err)
		}
	}
}
