// Verified budget elision: the conservative bound prover and region
// executor of tier-2 (tier2.go).
//
// The tier-1 dispatch loop pays a budget check before every instruction so
// vm.Limits can stop runaway code at a precise point. For code whose
// execution count can be bounded statically, that check is provably
// redundant inside the bound: a straight-line run of N instructions
// executes at most N of them, and a counted loop with constant init, limit
// and step executes a closed-form number. Tier-2 groups such code into
// "verified regions": one region instruction replaces the region's first
// pc, executes the covered instructions in a tight inner loop with no
// per-instruction budget check, and charges the exact executed count at
// exit. Soundness is two-sided:
//
//   - Never under-charge: every executed instruction is counted (the inner
//     loop counts dispatches; the outer loop already counted the region
//     instruction itself as one step).
//   - Never overshoot a limit: the region is entered only when the proven
//     bound fits entirely below the next budget checkpoint
//     (steps + bound < nextCheck). Otherwise the region degrades — only
//     its first instruction runs and control returns to the outer loop,
//     which still holds the original per-instruction-checked code at every
//     pc past the region head. Hilti::ResourceExhausted therefore fires at
//     exactly the same logical instruction as under tier-1.
//
// Only code[lo] is replaced; the originals at lo+1..hi stay in place, so
// side entries (jump targets, handler targets, resumed fibers, restored
// checkpoints) simply run interpretively — transparency over speed.

package vm

import (
	"fmt"

	"hilti/internal/rt/values"
)

const (
	// regionMin is the minimum instruction count worth a region.
	regionMin = 4
	// regionMax caps a region's instruction span.
	regionMax = 256
	// loopBoundMax rejects proven loop bounds so large that charging them
	// as one block would make budget checkpoints uselessly coarse.
	loopBoundMax = 1 << 16
)

// regionAux is the payload of a "region" instruction.
type regionAux struct {
	code  []Instr // copies of the covered instructions (absolute targets)
	base  int     // pc of the region head (code[0]'s original pc)
	bound int     // proven max dispatches per entry
	hdr   int     // offset of a proven loop's header within code, or -1
	iters int     // proven loop iteration count (diagnostics/disasm)
}

// execRegion runs a verified region: dispatch the covered instructions
// without per-instruction budget checks, then charge the exact count.
func execRegion(ex *Exec, fr *Frame, in *Instr) int {
	ra := in.aux.(*regionAux)
	if ex.budget.steps+uint64(ra.bound) >= ex.budget.nextCheck {
		// A budget checkpoint (or the limit itself) falls inside the
		// proven bound: degrade to per-instruction execution so the trip
		// fires at its precise pc. Run just the head instruction — every
		// later pc still holds its original tier-1 instruction.
		return ra.code[0].exec(ex, fr, &ra.code[0])
	}
	code := ra.code
	i, n := 0, 0
	for {
		if n >= ra.bound {
			// The prover guarantees this is unreachable; bail to the
			// outer checked loop rather than run unbounded.
			if tierDebug {
				panic(fmt.Sprintf("vm: verified region at pc %d exceeded proven bound %d",
					ra.base, ra.bound))
			}
			ex.budget.steps += uint64(n - 1)
			return ra.base + i
		}
		t := code[i].exec(ex, fr, &code[i])
		n++
		if ni := t - ra.base; ni > i && ni < len(code) {
			i = ni // forward progress within the region
		} else if ra.hdr >= 0 && ni == ra.hdr {
			i = ni // proven loop back edge
		} else {
			// Leaving the region: fall-through past the end, branch out,
			// return, raise, or retry. Charge the extra dispatches (the
			// outer loop already counted the region entry as one step).
			ex.budget.steps += uint64(n - 1)
			return t
		}
	}
}

// regionSafeInstr reports whether in may live inside a verified region: it
// must complete without suspending or re-entering the dispatcher (pair
// safety) — raising is fine, control transfers within the function are
// fine. The region instruction itself never nests.
func regionSafeInstr(in *Instr) bool {
	switch in.op {
	case "jump", "switch", "return.void", "return.result", "if.else":
		return true
	case "region":
		return false
	}
	return pairSafeOp(in.op)
}

// loopRegion is one proven counted loop: pcs [lo, hi] with at most bound
// dispatches per entry at lo and the loop header at offset hdr.
type loopRegion struct {
	lo, hi int
	hdr    int
	bound  int
	iters  int
}

// proveLoops scans for the canonical counted-loop shape and returns every
// loop whose iteration count it can bound. The shape (produced by the
// builders' loop idiom after O1 folding and cmp+br fusion) is:
//
//	lo:    assign       rI <- const INIT
//	[lo+1: jump hdr]                            ; optional block boundary
//	hdr:   int.<cmp>+br rB <- rI, const LIMIT   ; body | exit(outside)
//	...    straight-line body (pair-safe, single write to rI)
//	       int.add      rI <- rI, const STEP
//	hi:    back edge to hdr (the increment itself, or one trailing jump)
//
// The iteration count K follows in closed form; the proven bound is
// preLen + K+1 (header tests) + K*bodyLen. Anything else — register
// limits, extra writes to the counter, branches in the body, steps whose
// sign cannot terminate the loop, bounds past loopBoundMax — is rejected
// and stays on per-instruction budget checks.
func proveLoops(code []Instr, hs []handler) []loopRegion {
	var out []loopRegion
	for p := 0; p+2 < len(code); p++ {
		if lr, ok := proveLoopAt(code, hs, p); ok {
			out = append(out, lr)
			p = lr.hi
		}
	}
	return out
}

func proveLoopAt(code []Instr, hs []handler, p int) (loopRegion, bool) {
	none := loopRegion{}
	// Preheader: assign rI <- const int INIT, falling through.
	pre := &code[p]
	if pre.op != "assign" || len(pre.srcs) != 1 || pre.t1 != p+1 {
		return none, false
	}
	if pre.srcs[0].kind != srcConst || pre.srcs[0].val.K != values.KindInt {
		return none, false
	}
	if pre.d.kind != srcReg && pre.d.kind != srcSlot {
		return none, false
	}
	riKind, ri := pre.d.kind, pre.d.idx
	init := int64(pre.srcs[0].val.A)
	// Optional block-boundary jump between preheader and header.
	hd := p + 1
	if hd < len(code) && code[hd].op == "jump" {
		if code[hd].t1 != hd+1 {
			return none, false
		}
		hd++
	}
	if hd+1 >= len(code) {
		return none, false
	}
	// Header: fused compare-and-branch on rI against a constant limit.
	h := &code[hd]
	base := h.op
	if len(base) < 3 || base[len(base)-3:] != "+br" {
		return none, false
	}
	base = base[:len(base)-3]
	var up, incl bool
	switch base {
	case "int.lt":
		up = true
	case "int.leq":
		up, incl = true, true
	case "int.gt":
	case "int.geq":
		incl = true
	default:
		return none, false
	}
	if len(h.srcs) != 2 || h.srcs[0].kind != riKind || h.srcs[0].idx != ri {
		return none, false
	}
	if h.srcs[1].kind != srcConst || h.srcs[1].val.K != values.KindInt {
		return none, false
	}
	limit := int64(h.srcs[1].val.A)
	if h.t1 != hd+1 {
		return none, false
	}
	if h.d.kind == riKind && h.d.idx == ri {
		return none, false // compare result clobbers the counter
	}
	// Body: straight-line, pair-safe; the first instruction targeting the
	// header ends it — either the increment itself or a trailing jump.
	l := -1
	for q := hd + 1; q < len(code); q++ {
		in := &code[q]
		if isBranch(in) {
			return none, false
		}
		if in.op != "jump" && !pairSafeOp(in.op) {
			return none, false
		}
		switch in.op {
		case "switch", "return.void", "return.result", "region":
			return none, false
		}
		if in.t1 == hd {
			l = q
			break
		}
		if in.op == "jump" || in.t1 != q+1 || q-p >= regionMax {
			return none, false
		}
	}
	if l < 0 {
		return none, false
	}
	// Exit target must leave the region; handler coverage must be uniform
	// (a raise exits the region instruction at pc p, so findHandler must
	// resolve identically for every covered pc).
	if h.t2 >= p && h.t2 <= l {
		return none, false
	}
	for q := p + 1; q <= l; q++ {
		if !sameHandlers(hs, p, q) {
			return none, false
		}
	}
	// Increment: int.add/int.sub of rI by a constant — the last body
	// instruction before the back edge, and the body's only write to the
	// counter (writes before p re-run through the preheader on every
	// region entry, so they cannot perturb the count).
	incPC := l
	if code[l].op == "jump" {
		incPC = l - 1
	}
	if incPC <= hd {
		return none, false
	}
	inc := &code[incPC]
	if inc.op != "int.add" && inc.op != "int.sub" {
		return none, false
	}
	if inc.d.kind != riKind || inc.d.idx != ri || len(inc.srcs) != 2 {
		return none, false
	}
	if inc.srcs[0].kind != riKind || inc.srcs[0].idx != ri {
		return none, false
	}
	if inc.srcs[1].kind != srcConst || inc.srcs[1].val.K != values.KindInt {
		return none, false
	}
	step := int64(inc.srcs[1].val.A)
	if inc.op == "int.sub" {
		step = -step
	}
	for q := hd + 1; q <= l; q++ {
		if q == incPC {
			continue
		}
		if code[q].d.kind == riKind && code[q].d.idx == ri {
			return none, false
		}
	}
	// Overflow window: with |init|,|limit| <= 2^31 and 1 <= |step| <= 2^31
	// the counter stays far from int64 overflow for any proven-small K.
	const win = int64(1) << 31
	if init < -win || init > win || limit < -win || limit > win {
		return none, false
	}
	if step == 0 || step < -win || step > win {
		return none, false
	}
	if up == (step < 0) {
		return none, false // step walks away from the limit: not bounded
	}
	// Closed-form iteration count.
	var k int64
	switch {
	case up && !incl: // i < limit, step > 0
		if init >= limit {
			k = 0
		} else {
			k = (limit - init + step - 1) / step
		}
	case up: // i <= limit
		if init > limit {
			k = 0
		} else {
			k = (limit-init)/step + 1
		}
	case !incl: // i > limit, step < 0
		if init <= limit {
			k = 0
		} else {
			k = (init - limit + (-step) - 1) / (-step)
		}
	default: // i >= limit
		if init < limit {
			k = 0
		} else {
			k = (init-limit)/(-step) + 1
		}
	}
	preLen := int64(hd - p)
	bodyLen := int64(l - hd)
	bound := preLen + (k + 1) + k*bodyLen
	if bound > loopBoundMax {
		return none, false
	}
	return loopRegion{lo: p, hi: l, hdr: hd - p, bound: int(bound), iters: int(k)}, true
}

// formRegions installs verified regions into tc.code: proven counted loops
// first, then straight-line runs of at least regionMin pair-safe
// instructions with uniform handler coverage. Loop proofs were produced on
// the pre-pair-fusion stream; they stay valid because fusion never moves
// an instruction (orphans keep every pc addressable) and only lowers the
// dispatch count, so the proven bound remains an upper bound.
func formRegions(tc *tierCode, hs []handler, loops []loopRegion) {
	code := tc.code
	claimed := make([]bool, len(code))
	for _, lr := range loops {
		for pc := lr.lo; pc <= lr.hi; pc++ {
			claimed[pc] = true
		}
		installRegion(tc, lr.lo, lr.hi, lr.bound, lr.hdr, lr.iters)
		tc.stats.Loops++
	}
	// Straight-line runs. Branches and jumps are fine inside: a target
	// within the region continues the inner loop (forward progress keeps
	// the dispatch count below the region length), any other target exits
	// it. Backward branches exit too (only a proven loop's back edge may
	// re-enter), so unproven loops run one iteration per entry — correct,
	// just unoptimized.
	for lo := 0; lo < len(code); {
		if claimed[lo] || !regionSafeInstr(&code[lo]) || isPairOrphan(code, lo) {
			lo++
			continue
		}
		hi := lo
		for hi+1 < len(code) && hi+1-lo < regionMax && !claimed[hi+1] &&
			regionSafeInstr(&code[hi+1]) && sameHandlers(hs, lo, hi+1) {
			hi++
		}
		if hi-lo+1 >= regionMin {
			installRegion(tc, lo, hi, hi-lo+1, -1, 0)
			for pc := lo; pc <= hi; pc++ {
				claimed[pc] = true
			}
		}
		lo = hi + 1
	}
}

// orphanMarker is implemented by every fused-pair aux (generic pairs,
// specialized overlay pairs): it names the orphaned second half's pc.
type orphanMarker interface{ orphanPC() int }

// isPairOrphan reports whether code[pc] is the orphaned second half of a
// fused pair: the pair executes it inline and continues past it, so the
// fall-through path would bypass a region installed at pc.
func isPairOrphan(code []Instr, pc int) bool {
	if pc == 0 {
		return false
	}
	m, ok := code[pc-1].aux.(orphanMarker)
	return ok && m.orphanPC() == pc
}

// installRegion replaces tc.code[lo] with a region instruction covering
// [lo, hi]; the covered originals stay in place for side entries.
func installRegion(tc *tierCode, lo, hi, bound, hdr, iters int) {
	ra := &regionAux{
		code:  append([]Instr(nil), tc.code[lo:hi+1]...),
		base:  lo,
		bound: bound,
		hdr:   hdr,
		iters: iters,
	}
	tc.code[lo] = Instr{
		op:   "region",
		opID: internOp("region"),
		exec: execRegion,
		aux:  ra,
		t1:   lo + 1,
	}
	tc.stats.Regions++
	tc.stats.Verified += hi - lo + 1
}
