package vm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/rt/values"
)

// countModule is a classic counted loop with constant bounds — the shape
// the bound prover must verify end to end: sum = 2*100 via 100 iterations.
func countModule() *ast.Builder {
	b := ast.NewBuilder("M")
	fb := b.Function("count", types.Int64T)
	s := fb.Local("s", types.Int64T)
	i := fb.Local("i", types.Int64T)
	c := fb.Local("c", types.BoolT)
	fb.Assign(s, "assign", ast.IntOp(0))
	fb.Assign(i, "assign", ast.IntOp(0))
	fb.Jump("hdr")
	fb.Block("hdr")
	fb.Assign(c, "int.lt", i, ast.IntOp(100))
	fb.IfElse(c, "body", "done")
	fb.Block("body")
	fb.Assign(s, "int.add", s, ast.IntOp(2))
	fb.Assign(i, "int.add", i, ast.IntOp(1))
	fb.Jump("hdr")
	fb.Block("done")
	fb.Return(s)
	return b
}

func TestTier2CountedLoopVerified(t *testing.T) {
	ex := linkAt(t, 2, countModule().M)
	fn := ex.Prog.Fn("M::count")
	if !fn.TierActive() {
		t.Fatal("O2 link did not install tier-2 code")
	}
	st, ok := fn.Tier2Stats()
	if !ok || st.Loops != 1 {
		t.Fatalf("counted loop not proven: stats=%+v\n%s", st, fn.DisasmTier())
	}
	if st.SlotRegs == 0 || st.Slotted == 0 {
		t.Fatalf("int/bool locals not unboxed: stats=%+v\n%s", st, fn.DisasmTier())
	}
	v, err := ex.Call("M::count")
	if err != nil || v.AsInt() != 200 {
		t.Fatalf("got %v %v", v, err)
	}
	// The proven loop elides per-instruction budget checks but still
	// charges the exact executed count.
	o1 := linkAt(t, 1, countModule().M)
	if _, err := o1.Call("M::count"); err != nil {
		t.Fatal(err)
	}
	if ex.Steps() != o1.Steps() {
		t.Fatalf("step accounting diverged: tier2=%d o1=%d", ex.Steps(), o1.Steps())
	}
}

func TestTier2DisasmGolden(t *testing.T) {
	ex := linkAt(t, 2, countModule().M)
	fn := ex.Prog.Fn("M::count")
	got := fn.DisasmTier()
	const want = `func M::count (params=0 regs=3)
unboxed: i0:int i1:int i2:bool
0000 assign             i0 <- c:0
0001 region             [verified: 4 instrs, loop x100, bound 302]
0002 int.lt+br          i2 <- i1, c:100 ; t1=3 t2=5
0003 int.add+int.add    i0 <- i0, c:2 ; t1=2
0004 int.add            i1 <- i1, c:1 ; t1=2
0005 return.result      _ <- i0
`
	if got != want {
		t.Fatalf("tier-2 disassembly drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The tier-1 view of the same function must be unchanged by tiering.
	if strings.Contains(fn.Disasm(), "region") || strings.Contains(fn.Disasm(), "i0") {
		t.Fatalf("tier-1 disassembly polluted by tier-2 state:\n%s", fn.Disasm())
	}
}

// TestTier2Differential runs behaviorally diverse programs at O0, O1 and
// O2 (eager tier-2) and requires identical observable behavior.
func TestTier2Differential(t *testing.T) {
	type prog struct {
		name  string
		build func() *ast.Module
		entry string
		args  []values.Value
	}
	progs := []prog{
		{"count", func() *ast.Module { return countModule().M }, "M::count", nil},
		{"spin", func() *ast.Module { return spinModule().M }, "M::spin", []values.Value{values.Int(5000)}},
		{"guarded-hit", func() *ast.Module { return tryModule().M }, "M::guarded", []values.Value{values.Int(1)}},
		{"guarded-miss", func() *ast.Module { return tryModule().M }, "M::guarded", []values.Value{values.Int(2)}},
	}
	for _, p := range progs {
		var results [3]string
		for _, level := range []int{0, 1, 2} {
			ex := linkAt(t, level, p.build())
			v, err := ex.Call(p.entry, p.args...)
			if err != nil {
				var exc *values.Exception
				if !errors.As(err, &exc) {
					t.Fatalf("%s O%d: %v", p.name, level, err)
				}
				results[level] = "exc:" + exc.Name
			} else {
				results[level] = values.Format(v)
			}
		}
		if results[0] != results[1] || results[1] != results[2] {
			t.Fatalf("%s diverged: O0=%s O1=%s O2=%s",
				p.name, results[0], results[1], results[2])
		}
	}
}

// TestTier2RuntimePromotion exercises the profile-guided path: invocation
// counting promotes a hot function mid-stream, transparently.
func TestTier2RuntimePromotion(t *testing.T) {
	ex := linkAt(t, 1, spinModule().M)
	ex.EnableOpcodeProfile()
	ex.EnableTiering(8)
	fn := ex.Prog.Fn("M::spin")
	for i := 0; i < 20; i++ {
		promoted := fn.TierActive()
		v, err := ex.Call("M::spin", values.Int(500))
		if err != nil || v.AsInt() != 500 {
			t.Fatalf("call %d (promoted=%v): %v %v", i, promoted, v, err)
		}
		if i >= 8 && !fn.TierActive() {
			t.Fatalf("call %d: function not promoted past threshold", i)
		}
	}
	st, ok := fn.Tier2Stats()
	if !ok {
		t.Fatal("no tier-2 stats after promotion")
	}
	// Profile-guided pair discovery: the hot loop's adjacent pairs were
	// measured before promotion, so at least one superinstruction exists.
	if st.Pairs == 0 {
		t.Fatalf("no superinstructions discovered from profile: %+v\n%s", st, fn.DisasmTier())
	}
	if pairs := ex.OpcodePairProfile(); len(pairs) == 0 {
		t.Fatal("opcode-pair profile empty despite profiling on")
	}
}

// TestTier2ICDemotion feeds a struct.get site two different struct shapes:
// the first fills the monomorphic cache, the second demotes the function
// back to tier-1 — and both calls must still return correct results.
func TestTier2ICDemotion(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("getx", types.Int64T, ast.Param{Name: "s", Type: types.AnyT})
	v := fb.Local("v", types.Int64T)
	fb.Assign(v, "struct.get", ast.VarOp("s"), ast.FieldOperand("x"))
	fb.Return(v)

	ex := linkAt(t, 2, b.M)
	fn := ex.Prog.Fn("M::getx")
	if !fn.TierActive() {
		t.Fatal("O2 link did not install tier-2 code")
	}
	if st, _ := fn.Tier2Stats(); st.ICs == 0 {
		t.Fatalf("no inline cache installed: %+v\n%s", st, fn.DisasmTier())
	}

	defA := values.NewStructDef("A", values.StructField{Name: "x"})
	defB := values.NewStructDef("B", values.StructField{Name: "pad"}, values.StructField{Name: "x"})
	sa := values.NewStruct(defA)
	sa.SetName("x", values.Int(7))
	sb := values.NewStruct(defB)
	sb.SetName("x", values.Int(9))

	for i := 0; i < 3; i++ { // fill the cache, then hit it
		if v, err := ex.Call("M::getx", values.StructVal(sa)); err != nil || v.AsInt() != 7 {
			t.Fatalf("shape A call %d: %v %v", i, v, err)
		}
	}
	if !fn.TierActive() {
		t.Fatal("monomorphic calls must not demote")
	}
	if v, err := ex.Call("M::getx", values.StructVal(sb)); err != nil || v.AsInt() != 9 {
		t.Fatalf("shape B: %v %v", v, err)
	}
	if fn.TierActive() {
		t.Fatal("second struct shape did not demote the function")
	}
	// Post-demotion calls run tier-1 and stay correct for both shapes.
	if v, err := ex.Call("M::getx", values.StructVal(sa)); err != nil || v.AsInt() != 7 {
		t.Fatalf("post-demotion shape A: %v %v", v, err)
	}
}

// TestTier2BudgetParity arms an instruction budget over an unproven loop
// (register-bounded, so the prover must reject it) and requires the
// ResourceExhausted trip to be bit-identical between O1 and O2: same
// exception, same step count at the raise.
func TestTier2BudgetParity(t *testing.T) {
	var steps [2]uint64
	for k, level := range []int{1, 2} {
		ex := linkAt(t, level, spinModule().M)
		ex.Limits = Limits{Instructions: 10_000}
		_, err := ex.Call("M::spin", values.Int(1_000_000))
		var exc *values.Exception
		if !errors.As(err, &exc) || exc.Name != ExcResourceExhausted {
			t.Fatalf("O%d: want ResourceExhausted, got %v", level, err)
		}
		steps[k] = ex.Steps()
	}
	if steps[0] != steps[1] {
		t.Fatalf("budget trip diverged: O1=%d steps, O2=%d steps", steps[0], steps[1])
	}
}

// TestTier2ProvenLoopUnderBudget runs the proven counted loop with a
// budget that the whole invocation fits into, and with one it does not:
// elision must neither trip a fitting budget nor miss an exceeded one.
func TestTier2ProvenLoopUnderBudget(t *testing.T) {
	// Fits: the loop needs ~400 steps; 1000 must not trip.
	ex := linkAt(t, 2, countModule().M)
	ex.Limits = Limits{Instructions: 1000}
	if v, err := ex.Call("M::count"); err != nil || v.AsInt() != 200 {
		t.Fatalf("fitting budget tripped: %v %v", v, err)
	}
	// Does not fit: O1 and O2 must trip identically.
	var steps [2]uint64
	for k, level := range []int{1, 2} {
		ex := linkAt(t, level, countModule().M)
		ex.Limits = Limits{Instructions: 50}
		_, err := ex.Call("M::count")
		var exc *values.Exception
		if !errors.As(err, &exc) || exc.Name != ExcResourceExhausted {
			t.Fatalf("O%d: want ResourceExhausted, got %v", level, err)
		}
		steps[k] = ex.Steps()
	}
	if steps[0] != steps[1] {
		t.Fatalf("verified-region budget trip diverged: O1=%d O2=%d", steps[0], steps[1])
	}
}

// TestTier2ExceptionInRegion makes sure a raise from inside a verified
// region still resolves to the correct handler (the region instruction
// sits at the region head pc, which fusion and region formation keep
// handler-equivalent to every covered pc).
func TestTier2ExceptionInRegion(t *testing.T) {
	for _, args := range []int64{1, 2} {
		want, _ := linkAt(t, 0, tryModule().M).Call("M::guarded", values.Int(args))
		got, err := linkAt(t, 2, tryModule().M).Call("M::guarded", values.Int(args))
		if err != nil || got.AsInt() != want.AsInt() {
			t.Fatalf("k=%d: tier2 %v %v, want %v", args, got, err, want)
		}
	}
}

// TestTier2ConcurrentPromotion races several Execs over one shared Program
// while one of them promotes the hot function; run under -race in CI.
func TestTier2ConcurrentPromotion(t *testing.T) {
	prog, err := LinkWith(Options{OptLevel: 1}, spinModule().M)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		w := w
		go func() {
			ex, err := NewExec(prog)
			if err != nil {
				done <- err
				return
			}
			if w == 0 {
				ex.EnableOpcodeProfile()
				ex.EnableTiering(4)
			}
			for i := 0; i < 200; i++ {
				v, err := ex.Call("M::spin", values.Int(100))
				if err != nil || v.AsInt() != 100 {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if !prog.Fn("M::spin").TierActive() {
		t.Fatal("shared function never promoted")
	}
}

// TestTier2RePromotionWidensICs walks a function through the full tier
// lifecycle: eager O2 promotion with a monomorphic cache, demotion on the
// second struct shape, profile-counted re-promotion with a widened cache
// that holds both shapes, and finally a permanent megamorphic demotion
// once more shapes arrive than the wide cache can hold. Results must stay
// correct at every stage.
func TestTier2RePromotionWidensICs(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("getx", types.Int64T, ast.Param{Name: "s", Type: types.AnyT})
	v := fb.Local("v", types.Int64T)
	fb.Assign(v, "struct.get", ast.VarOp("s"), ast.FieldOperand("x"))
	fb.Return(v)

	ex := linkAt(t, 2, b.M)
	ex.EnableTiering(4)
	fn := ex.Prog.Fn("M::getx")
	if !fn.TierActive() {
		t.Fatal("O2 link did not install tier-2 code")
	}

	// Five distinct shapes, each with an "x" field at a different index.
	shapes := make([]values.Value, 5)
	for i := range shapes {
		fields := make([]values.StructField, i+1)
		for j := 0; j < i; j++ {
			fields[j] = values.StructField{Name: fmt.Sprintf("pad%d", j)}
		}
		fields[i] = values.StructField{Name: "x"}
		s := values.NewStruct(values.NewStructDef(fmt.Sprintf("S%d", i), fields...))
		s.SetName("x", values.Int(int64(100+i)))
		shapes[i] = values.StructVal(s)
	}
	call := func(i int) {
		t.Helper()
		if v, err := ex.Call("M::getx", shapes[i]); err != nil || v.AsInt() != int64(100+i) {
			t.Fatalf("shape %d: %v %v", i, v, err)
		}
	}

	call(0) // fill the monomorphic cache
	call(1) // second shape: demote
	if fn.TierActive() {
		t.Fatal("second shape did not demote the eager-O2 function")
	}
	// Stay hot across both shapes until the tiering counter re-promotes.
	for i := 0; i < 8 && !fn.TierActive(); i++ {
		call(i % 2)
	}
	if !fn.TierActive() {
		t.Fatal("demoted function never re-promoted despite staying hot")
	}
	st, _ := fn.Tier2Stats()
	if st.WideICs == 0 || st.WideICs != st.ICs {
		t.Fatalf("re-promotion did not widen the caches: %+v", st)
	}
	// The widened cache absorbs both known shapes — no third demotion.
	for i := 0; i < 8; i++ {
		call(i % 2)
	}
	if !fn.TierActive() {
		t.Fatal("wide cache thrashed on shapes it should hold")
	}
	// A fifth distinct shape overflows icWays and demotes permanently.
	for i := 2; i < 5; i++ {
		call(i)
	}
	call(0)
	if fn.TierActive() {
		t.Fatal("overflowing the wide cache did not demote")
	}
	// Megamorphic functions never re-promote, no matter how hot.
	for i := 0; i < 16; i++ {
		call(i % 5)
	}
	if fn.TierActive() {
		t.Fatal("megamorphic function was re-promoted")
	}
	for i := 0; i < 5; i++ {
		call(i) // and tier-1 stays correct for every shape
	}
}
