package vm

import (
	"errors"
	"testing"
	"time"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/rt/hbytes"
	"hilti/internal/rt/values"
)

// spinModule builds M::spin(n) — a counting loop executing O(n) instructions —
// and M::forever() — an unbounded loop.
func spinModule() *ast.Builder {
	b := ast.NewBuilder("M")

	fb := b.Function("spin", types.Int64T, ast.Param{Name: "n", Type: types.Int64T})
	i := fb.Local("i", types.Int64T)
	c := fb.Local("c", types.BoolT)
	fb.Assign(i, "int.add", ast.IntOp(0), ast.IntOp(0))
	fb.Jump("loop")
	fb.Block("loop")
	fb.Assign(c, "int.lt", i, ast.VarOp("n"))
	fb.IfElse(c, "body", "done")
	fb.Block("body")
	fb.Assign(i, "int.add", i, ast.IntOp(1))
	fb.Jump("loop")
	fb.Block("done")
	fb.Return(i)

	ff := b.Function("forever", types.VoidT)
	x := ff.Local("x", types.Int64T)
	ff.Jump("loop")
	ff.Block("loop")
	ff.Assign(x, "int.add", x, ast.IntOp(1))
	ff.Jump("loop")

	return b
}

func TestInstructionBudgetRaisesResourceExhausted(t *testing.T) {
	ex := mustLink(t, spinModule().M)
	ex.Limits = Limits{Instructions: 10_000}
	_, err := ex.Call("M::spin", values.Int(1_000_000))
	var exc *values.Exception
	if !errors.As(err, &exc) || exc.Name != ExcResourceExhausted {
		t.Fatalf("got %v", err)
	}
	// The overshoot is bounded by the grace allotment, not proportional to n.
	if ex.Steps() > 10_000+2*budgetGrace {
		t.Fatalf("ran %d instructions past a 10k budget", ex.Steps())
	}
}

func TestBudgetRearmsPerInvocation(t *testing.T) {
	ex := mustLink(t, spinModule().M)
	ex.Limits = Limits{Instructions: 10_000}
	if _, err := ex.Call("M::spin", values.Int(1_000_000)); err == nil {
		t.Fatal("expected exhaustion")
	}
	// A fresh invocation gets a fresh budget; small work still runs.
	v, err := ex.Call("M::spin", values.Int(100))
	if err != nil || v.AsInt() != 100 {
		t.Fatalf("post-exhaustion call: %v %v", v, err)
	}
}

func TestResourceExhaustedCatchableInLanguage(t *testing.T) {
	b := spinModule()
	fb := b.Function("guard", types.Int64T)
	e := fb.Local("e", types.ExcT)
	r := fb.Local("r", types.Int64T)
	fb.TryBeginNamed("catch", e, ExcResourceExhausted)
	fb.CallResult(r, "spin", ast.IntOp(1_000_000))
	fb.TryEnd()
	fb.Return(r)
	fb.Block("catch")
	fb.Return(ast.IntOp(-1))

	ex := mustLink(t, b.M)
	ex.Limits = Limits{Instructions: 10_000}
	v, err := ex.Call("M::guard")
	if err != nil {
		t.Fatalf("in-language handler should have caught exhaustion: %v", err)
	}
	if v.AsInt() != -1 {
		t.Fatalf("got %v, want fallback -1", v.AsInt())
	}
}

func TestRepeatedExhaustionPropagatesOutOfHandler(t *testing.T) {
	// A handler that responds to exhaustion by spinning again blows through
	// its grace allotment; the second raise escapes to the host.
	b := spinModule()
	fb := b.Function("abuse", types.Int64T)
	e := fb.Local("e", types.ExcT)
	r := fb.Local("r", types.Int64T)
	fb.TryBeginNamed("catch", e, ExcResourceExhausted)
	fb.CallResult(r, "spin", ast.IntOp(1_000_000))
	fb.TryEnd()
	fb.Return(r)
	fb.Block("catch")
	fb.CallResult(r, "spin", ast.IntOp(1_000_000))
	fb.Return(r)

	ex := mustLink(t, b.M)
	ex.Limits = Limits{Instructions: 10_000}
	_, err := ex.Call("M::abuse")
	var exc *values.Exception
	if !errors.As(err, &exc) || exc.Name != ExcResourceExhausted {
		t.Fatalf("got %v", err)
	}
}

func TestDeadlineTerminatesInfiniteLoop(t *testing.T) {
	ex := mustLink(t, spinModule().M)
	ex.Limits = Limits{Deadline: 50 * time.Millisecond}
	start := time.Now()
	_, err := ex.Call("M::forever")
	elapsed := time.Since(start)
	var exc *values.Exception
	if !errors.As(err, &exc) || exc.Name != ExcResourceExhausted {
		t.Fatalf("got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("infinite loop ran %v past a 50ms deadline", elapsed)
	}
}

func TestZeroLimitsRunUnbounded(t *testing.T) {
	ex := mustLink(t, spinModule().M)
	v, err := ex.Call("M::spin", values.Int(200_000))
	if err != nil || v.AsInt() != 200_000 {
		t.Fatalf("got %v %v", v, err)
	}
}

func TestFiberBudgetIsolation(t *testing.T) {
	// A suspended fiber-backed call and interleaved host calls each account
	// against their own budget; neither corrupts the other.
	b := spinModule()
	fb := b.Function("read8", types.BytesT, ast.Param{Name: "data", Type: types.BytesT})
	it := fb.Local("it", types.IterT(types.BytesT))
	tup := fb.Local("tup", types.TupleT(types.BytesT, types.IterT(types.BytesT)))
	out := fb.Local("out", types.BytesT)
	fb.Assign(it, "bytes.begin", ast.VarOp("data"))
	fb.Assign(tup, "unpack.bytes", it, ast.IntOp(8))
	fb.Assign(out, "tuple.index", tup, ast.IntOp(0))
	fb.Return(out)

	ex := mustLink(t, b.M)
	ex.Limits = Limits{Instructions: 50_000}

	data := hbytes.New()
	data.Append([]byte("abc"))
	r := ex.FiberCall(ex.Prog.Fn("M::read8"), values.BytesVal(data))
	if _, done, err := r.Resume(); done || err != nil {
		t.Fatalf("should suspend: done=%v err=%v", done, err)
	}

	// Host work between resumes runs under its own fresh budget.
	if v, err := ex.Call("M::spin", values.Int(1_000)); err != nil || v.AsInt() != 1_000 {
		t.Fatalf("interleaved host call: %v %v", v, err)
	}
	// And host exhaustion must not leak into the suspended fiber's state.
	if _, err := ex.Call("M::spin", values.Int(1_000_000)); err == nil {
		t.Fatal("expected host-call exhaustion")
	}

	data.Append([]byte("defgh"))
	v, done, err := r.Resume()
	if !done || err != nil || v.AsBytes().String() != "abcdefgh" {
		t.Fatalf("fiber completion: %v %v %v", v, done, err)
	}
}

func TestFiberBudgetAccumulatesAcrossResumes(t *testing.T) {
	// Instruction accounting for a fiber-backed call spans all its resumes,
	// so a parser cannot dodge its budget by suspending.
	b := spinModule()
	fb := b.Function("spinRead", types.Int64T, ast.Param{Name: "data", Type: types.BytesT})
	it := fb.Local("it", types.IterT(types.BytesT))
	tup := fb.Local("tup", types.TupleT(types.BytesT, types.IterT(types.BytesT)))
	r := fb.Local("r", types.Int64T)
	fb.CallResult(r, "spin", ast.IntOp(9_000))
	fb.Assign(it, "bytes.begin", ast.VarOp("data"))
	fb.Assign(tup, "unpack.bytes", it, ast.IntOp(4))
	fb.CallResult(r, "spin", ast.IntOp(9_000))
	fb.Return(r)

	// One spin costs ~36k instructions at -O0 (the count this test's budget
	// is tuned to; the optimizer would shrink the loop); the budget admits
	// one spin but not two, so exhaustion only trips if accounting survives
	// the suspension.
	prog, err := LinkWith(Options{OptLevel: 0}, b.M)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExec(prog)
	if err != nil {
		t.Fatal(err)
	}
	ex.Limits = Limits{Instructions: 50_000}

	data := hbytes.New()
	fibr := ex.FiberCall(ex.Prog.Fn("M::spinRead"), values.BytesVal(data))
	if _, done, err := fibr.Resume(); done || err != nil {
		t.Fatalf("should suspend: done=%v err=%v", done, err)
	}
	data.Append([]byte("wxyz"))
	_, done, err := fibr.Resume()
	if !done {
		t.Fatal("should complete (by exhausting)")
	}
	var exc *values.Exception
	if !errors.As(err, &exc) || exc.Name != ExcResourceExhausted {
		t.Fatalf("second spin should exceed the cumulative budget: %v", err)
	}
}
