// Runtime-service instructions: timers and timer managers, channels,
// classifiers, overlays, callables, files, and profilers — the rows of
// Table 1 implemented by the runtime library and called out to from
// generated code (paper §5 "Runtime Library").

package vm

import (
	"errors"
	"fmt"

	"hilti/internal/hilti/ast"
	"hilti/internal/rt/channel"
	"hilti/internal/rt/classifier"
	"hilti/internal/rt/overlay"
	"hilti/internal/rt/timer"
	"hilti/internal/rt/values"
)

func asChannel(v values.Value) (*channel.Channel, error) {
	c, _ := v.O.(*channel.Channel)
	if c == nil {
		return nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil channel reference"}
	}
	return c, nil
}

func asClassifier(v values.Value) (*classifier.Classifier, error) {
	c, _ := v.O.(*classifier.Classifier)
	if c == nil {
		return nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil classifier reference"}
	}
	return c, nil
}

func asTimerMgr(ex *Exec, v values.Value) (*timer.Mgr, error) {
	if v.IsNil() {
		return ex.GlobalTM, nil
	}
	m, _ := v.O.(*timer.Mgr)
	if m == nil {
		return nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil timer_mgr reference"}
	}
	return m, nil
}

func init() {
	// --- timer management --------------------------------------------------------
	// timer_mgr.advance_global <time>: drives the Exec's global manager,
	// expiring container state (the firewall example's per-packet call).
	registerSimple("timer_mgr.advance_global", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		ex.GlobalTM.Advance(timer.Time(a[0].AsTimeNs()))
		return values.Nil, nil
	})
	registerSimple("timer_mgr.advance", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		m, err := asTimerMgr(ex, a[0])
		if err != nil {
			return values.Nil, err
		}
		m.Advance(timer.Time(a[1].AsTimeNs()))
		return values.Nil, nil
	})
	registerSimple("timer_mgr.current", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		m, err := asTimerMgr(ex, a[0])
		if err != nil {
			return values.Nil, err
		}
		return values.TimeVal(int64(m.Now())), nil
	})
	registerSimple("timer_mgr.expire", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		m, err := asTimerMgr(ex, a[0])
		if err != nil {
			return values.Nil, err
		}
		m.Expire(a[1].AsBool())
		return values.Nil, nil
	})

	// timer.schedule <time> <func-name> <args-tuple>: schedule a function
	// call to the future on the global manager (HILTI timers execute
	// captured closures; the function-plus-arguments form is the callable).
	register("timer.schedule", func(c *fnCompiler, in *ast.Instr) error {
		if len(in.Ops) != 3 || in.Ops[1].Kind != ast.FuncOp {
			return fmt.Errorf("timer.schedule needs time, function, args tuple")
		}
		timeSrc, err := c.srcOf(in.Ops[0])
		if err != nil {
			return err
		}
		argsSrc, err := c.srcOf(in.Ops[2])
		if err != nil {
			return err
		}
		ct := c.resolveCall(in.Ops[1].Name)
		d, err := c.dstOf(in.Target)
		if err != nil {
			return err
		}
		c.emit(Instr{exec: execTimerSchedule, d: d, srcs: []src{timeSrc, argsSrc}, aux: ct})
		return nil
	})

	registerSimple("timer.cancel", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		t, _ := a[0].O.(*timer.Timer)
		if t != nil {
			t.Cancel()
		}
		return values.Nil, nil
	})
	registerSimple("timer.update", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		t, _ := a[0].O.(*timer.Timer)
		if t != nil {
			t.Update(timer.Time(a[1].AsTimeNs()))
		}
		return values.Nil, nil
	})

	// --- channel -------------------------------------------------------------------
	registerSimple("channel.write", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		ch, err := asChannel(a[0])
		if err != nil {
			return values.Nil, err
		}
		return values.Nil, ch.Write(a[1])
	})
	registerSimple("channel.read", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		ch, err := asChannel(a[0])
		if err != nil {
			return values.Nil, err
		}
		return ch.Read()
	})
	registerSimple("channel.try_read", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		ch, err := asChannel(a[0])
		if err != nil {
			return values.Nil, err
		}
		v, err := ch.TryRead()
		if errors.Is(err, channel.ErrWouldBlock) {
			return values.TupleVal(values.Bool(false), values.Nil), nil
		}
		if err != nil {
			return values.Nil, err
		}
		return values.TupleVal(values.Bool(true), v), nil
	})
	registerSimple("channel.size", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		ch, err := asChannel(a[0])
		if err != nil {
			return values.Nil, err
		}
		return values.Int(int64(ch.Len())), nil
	})

	// --- classifier ------------------------------------------------------------------
	// classifier.add <classifier> <rule-tuple> <value>: each rule element
	// becomes its natural matcher (nets by prefix, void as wildcard).
	registerSimple("classifier.add", 3, func(ex *Exec, a []values.Value) (values.Value, error) {
		cl, err := asClassifier(a[0])
		if err != nil {
			return values.Nil, err
		}
		t := a[1].AsTuple()
		if t == nil {
			return values.Nil, &values.Exception{Name: "Hilti::TypeError", Msg: "classifier.add needs a rule tuple"}
		}
		return values.Nil, cl.AddValues(a[2], t.Elems...)
	})
	registerSimple("classifier.compile", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		cl, err := asClassifier(a[0])
		if err != nil {
			return values.Nil, err
		}
		cl.Compile()
		return values.Nil, nil
	})
	registerSimple("classifier.compile_indexed", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		cl, err := asClassifier(a[0])
		if err != nil {
			return values.Nil, err
		}
		cl.CompileIndexed()
		return values.Nil, nil
	})
	registerSimple("classifier.get", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		cl, err := asClassifier(a[0])
		if err != nil {
			return values.Nil, err
		}
		t := a[1].AsTuple()
		if t == nil {
			return values.Nil, &values.Exception{Name: "Hilti::TypeError", Msg: "classifier.get needs a key tuple"}
		}
		v, err := cl.Get(t.Elems...)
		if errors.Is(err, classifier.ErrNoMatch) {
			return values.Nil, &values.Exception{Name: "Hilti::IndexError", Msg: "no classifier match"}
		}
		if err != nil {
			return values.Nil, err
		}
		return v, nil
	})
	registerSimple("classifier.matches", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		cl, err := asClassifier(a[0])
		if err != nil {
			return values.Nil, err
		}
		t := a[1].AsTuple()
		if t == nil {
			return values.Nil, &values.Exception{Name: "Hilti::TypeError", Msg: "classifier.matches needs a key tuple"}
		}
		return values.Bool(cl.Matches(t.Elems...)), nil
	})

	// --- overlay --------------------------------------------------------------------
	// overlay.get <overlay-type> <field> <bytes>: paper Figure 4.
	register("overlay.get", func(c *fnCompiler, in *ast.Instr) error {
		if len(in.Ops) != 3 || in.Ops[0].Kind != ast.TypeOp || in.Ops[1].Kind != ast.FieldOp {
			return fmt.Errorf("overlay.get needs type, field, bytes")
		}
		t := in.Ops[0].Type
		if t.OverlayDef == nil {
			return fmt.Errorf("overlay.get: %s is not an overlay type", t)
		}
		ov := t.OverlayDef
		fieldIdx := ov.Index(in.Ops[1].Name)
		if fieldIdx < 0 {
			return fmt.Errorf("overlay %s has no field %q", ov.Name, in.Ops[1].Name)
		}
		s, err := c.srcOf(in.Ops[2])
		if err != nil {
			return err
		}
		d, err := c.dstOf(in.Target)
		if err != nil {
			return err
		}
		c.emit(Instr{exec: execOverlayGet, d: d, srcs: []src{s}, aux: ov, t2: fieldIdx})
		return nil
	})

	// --- file ------------------------------------------------------------------------
	registerSimple("file.open", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		if ex.Files == nil {
			return values.Nil, &values.Exception{Name: "Hilti::IOError", Msg: "no file manager attached"}
		}
		f, err := ex.Files.Open(a[0].AsString())
		if err != nil {
			return values.Nil, err
		}
		return values.Ref(values.KindFile, f), nil
	})
	registerSimple("file.write", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		f, _ := a[0].O.(interface{ WriteString(string) })
		if f == nil {
			return values.Nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil file reference"}
		}
		f.WriteString(values.Format(a[1]))
		return values.Nil, nil
	})

	// --- profiler ----------------------------------------------------------------------
	registerSimple("profiler.start", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		ex.Profs.Get(a[0].AsString()).Start()
		return values.Nil, nil
	})
	registerSimple("profiler.stop", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		ex.Profs.Get(a[0].AsString()).Stop()
		return values.Nil, nil
	})
	registerSimple("profiler.update", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		ex.Profs.Get(a[0].AsString()).Update(a[1].AsInt())
		return values.Nil, nil
	})
}

func execTimerSchedule(ex *Exec, fr *Frame, in *Instr) int {
	at := timer.Time(ex.get(fr, &in.srcs[0]).AsTimeNs())
	argsV := ex.get(fr, &in.srcs[1])
	ct := in.aux.(*callTarget)
	var args []values.Value
	if t := argsV.AsTuple(); t != nil {
		args = append([]values.Value(nil), t.Elems...)
	}
	tm := ex.GlobalTM.ScheduleFunc(at, func() {
		if ct.fn != nil {
			ex.CallFn(ct.fn, args...) //nolint:errcheck // timers swallow exceptions, as HILTI's runtime does
		} else if ct.builtin != nil {
			ct.builtin(ex, args) //nolint:errcheck
		} else if hf, ok := ex.HostFns[ct.name]; ok {
			hf(ex, args) //nolint:errcheck
		}
	})
	ex.put(fr, in.d, values.Ref(values.KindTimer, tm))
	return in.t1
}

func execOverlayGet(ex *Exec, fr *Frame, in *Instr) int {
	ov := in.aux.(*overlay.Overlay)
	bv := ex.get(fr, &in.srcs[0])
	b := bv.AsBytes()
	if b == nil {
		return ex.raise("Hilti::NullReference", "nil bytes reference")
	}
	v, err := ov.GetIdx(b.Bytes(), in.t2)
	if err != nil {
		return ex.raise("Hilti::OverlayError", err.Error())
	}
	ex.put(fr, in.d, v)
	return in.t1
}

// execOverlayGetSlot is execOverlayGet with an unboxed integer
// destination: the decoded field's payload goes straight into the slot
// file (the classifier only installs this when the destination register is
// statically int-typed, which pins the overlay field to an integer
// decode). Raise behavior is identical to the boxed executor.
func execOverlayGetSlot(ex *Exec, fr *Frame, in *Instr) int {
	ov := in.aux.(*overlay.Overlay)
	bv := ex.get(fr, &in.srcs[0])
	b := bv.AsBytes()
	if b == nil {
		return ex.raise("Hilti::NullReference", "nil bytes reference")
	}
	v, err := ov.GetIdx(b.Bytes(), in.t2)
	if err != nil {
		return ex.raise("Hilti::OverlayError", err.Error())
	}
	fr.I[in.d.idx] = int64(v.A)
	return in.t1
}
