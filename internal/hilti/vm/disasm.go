// Disassembly of compiled functions, for debugging and for the golden
// optimizer tests: a stable, line-oriented text rendering of the linear
// code plus handler table. DisasmTier renders the tier-2 view of the same
// pcs — superinstruction names, unboxed-slot operands, and verified-region
// markers.

package vm

import (
	"fmt"
	"strings"

	"hilti/internal/rt/values"
)

// Disasm renders fn's code as one instruction per line:
//
//	0003 int.eq          r2 <- r1, c:2048 ; t1=5 t2=9
//
// Destinations and sources print as rN (register), gN (global), c:<value>
// (constant), or ctor(...). Control targets print only when they carry
// information: t1 when it is not the fallthrough pc, t2 for branches.
// Exception handlers follow the code as "handler [start,end) -> target".
func (fn *CompiledFunc) Disasm() string {
	return fn.disasm(fn.Code, nil)
}

// DisasmTier renders fn's tier-2 code when published, falling back to the
// tier-1 rendering otherwise. Tier-2 additions to the format: an
// "unboxed:" header line listing the slotted registers (printed as iN),
// fused superinstruction names ("overlay.get+int.eq+br"), and verified
// regions as "[verified: n instrs]" markers (with the proven loop
// iteration count and bound when the region is a counted loop).
func (fn *CompiledFunc) DisasmTier() string {
	tc := fn.tier2.Load()
	if tc == nil {
		return fn.disasm(fn.Code, nil)
	}
	return fn.disasm(tc.code, tc)
}

func (fn *CompiledFunc) disasm(code []Instr, tc *tierCode) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (params=%d regs=%d)\n", fn.Name, fn.NParams, fn.NRegs)
	if tc != nil && tc.stats.SlotRegs > 0 {
		parts := make([]string, 0, tc.stats.SlotRegs)
		for r, k := range tc.slotKind {
			switch k {
			case slotInt:
				parts = append(parts, fmt.Sprintf("i%d:int", r))
			case slotBool:
				parts = append(parts, fmt.Sprintf("i%d:bool", r))
			}
		}
		fmt.Fprintf(&sb, "unboxed: %s\n", strings.Join(parts, " "))
	}
	for pc := range code {
		in := &code[pc]
		if ra, ok := in.aux.(*regionAux); ok && in.op == "region" {
			if ra.hdr >= 0 {
				fmt.Fprintf(&sb, "%04d %-18s [verified: %d instrs, loop x%d, bound %d]\n",
					pc, in.op, len(ra.code), ra.iters, ra.bound)
			} else {
				fmt.Fprintf(&sb, "%04d %-18s [verified: %d instrs]\n",
					pc, in.op, len(ra.code))
			}
			continue
		}
		fmt.Fprintf(&sb, "%04d %-18s", pc, in.op)
		operands := make([]string, 0, len(in.srcs))
		for i := range in.srcs {
			operands = append(operands, srcString(&in.srcs[i]))
		}
		switch {
		case in.d.kind != srcNone && len(operands) > 0:
			fmt.Fprintf(&sb, " %s <- %s", dstString(in.d), strings.Join(operands, ", "))
		case in.d.kind != srcNone:
			fmt.Fprintf(&sb, " %s", dstString(in.d))
		case len(operands) > 0:
			fmt.Fprintf(&sb, " %s", strings.Join(operands, ", "))
		}
		ctrl := controlString(in, pc)
		if ctrl != "" {
			sb.WriteString(" ; " + ctrl)
		}
		sb.WriteByte('\n')
	}
	for i := range fn.Handlers {
		h := &fn.Handlers[i]
		fmt.Fprintf(&sb, "handler [%04d,%04d) -> %04d", h.start, h.end, h.target)
		if h.excName != "" {
			fmt.Fprintf(&sb, " catch %s", h.excName)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func dstString(d dst) string {
	switch d.kind {
	case srcReg:
		return fmt.Sprintf("r%d", d.idx)
	case srcGlobal:
		return fmt.Sprintf("g%d", d.idx)
	case srcSlot:
		return fmt.Sprintf("i%d", d.idx)
	default:
		return "_"
	}
}

func srcString(s *src) string {
	switch s.kind {
	case srcReg:
		return fmt.Sprintf("r%d", s.idx)
	case srcGlobal:
		return fmt.Sprintf("g%d", s.idx)
	case srcSlot:
		return fmt.Sprintf("i%d", s.idx)
	case srcCtor:
		elems := make([]string, len(s.subs))
		for i := range s.subs {
			elems[i] = srcString(&s.subs[i])
		}
		return "ctor(" + strings.Join(elems, ", ") + ")"
	case srcConst:
		return "c:" + values.Format(s.val)
	default:
		return "_"
	}
}

func controlString(in *Instr, pc int) string {
	switch {
	case in.op == "return.void" || in.op == "return.result":
		return ""
	case isBranch(in):
		return fmt.Sprintf("t1=%d t2=%d", in.t1, in.t2)
	case in.op == "switch":
		tbl, _ := in.aux.(*switchTable)
		parts := []string{fmt.Sprintf("default=%d", in.t1)}
		if tbl != nil {
			for i, v := range tbl.vals {
				parts = append(parts, fmt.Sprintf("%s=>%d", values.Format(v), tbl.targets[i]))
			}
		}
		return strings.Join(parts, " ")
	case in.t1 != pc+1:
		return fmt.Sprintf("t1=%d", in.t1)
	default:
		return ""
	}
}
