package vm

import (
	"errors"
	"strings"
	"testing"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/rt/values"
)

// linkAt links modules at an explicit optimization level.
func linkAt(t *testing.T, level int, mods ...*ast.Module) *Exec {
	t.Helper()
	prog, err := LinkWith(Options{OptLevel: level}, mods...)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExec(prog)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// optStatsFor compiles at -O0 and runs the optimizer by hand so tests can
// inspect per-pass statistics.
func optStatsFor(t *testing.T, m *ast.Module, fname string) (*CompiledFunc, OptStats) {
	t.Helper()
	prog, err := LinkWith(Options{OptLevel: 0}, m)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Fn(fname)
	if fn == nil {
		t.Fatalf("no function %s", fname)
	}
	return fn, Optimize(fn, 1)
}

func TestOptConstFold(t *testing.T) {
	// y = (2*3)+4 over constants folds to a single materialized 10.
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.Int64T)
	y := fb.Local("y", types.Int64T)
	fb.Assign(y, "int.mul", ast.IntOp(2), ast.IntOp(3))
	fb.Assign(y, "int.add", y, ast.IntOp(4))
	fb.Return(y)

	fn, st := optStatsFor(t, b.M, "M::f")
	if st.Folded < 2 {
		t.Fatalf("folded %d instructions, want >= 2\n%s", st.Folded, fn.Disasm())
	}
	if dis := fn.Disasm(); !strings.Contains(dis, "c:10") {
		t.Fatalf("folded constant 10 not materialized:\n%s", dis)
	}

	ex := linkAt(t, 1, b.M)
	if v, err := ex.Call("M::f"); err != nil || v.AsInt() != 10 {
		t.Fatalf("got %v %v", v, err)
	}
}

func TestOptCopyPropagation(t *testing.T) {
	// y = x; z = y+1 — the y read is replaced by x, making the copy dead.
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.Int64T, ast.Param{Name: "x", Type: types.Int64T})
	y := fb.Local("y", types.Int64T)
	z := fb.Local("z", types.Int64T)
	fb.Assign(y, "assign", ast.VarOp("x"))
	fb.Assign(z, "int.add", y, ast.IntOp(1))
	fb.Return(z)

	_, st := optStatsFor(t, b.M, "M::f")
	if st.Copies == 0 {
		t.Fatal("no copies propagated")
	}
	ex := linkAt(t, 1, b.M)
	if v, err := ex.Call("M::f", values.Int(41)); err != nil || v.AsInt() != 42 {
		t.Fatalf("got %v %v", v, err)
	}
}

func TestOptJumpThreading(t *testing.T) {
	// A chain of empty blocks threads to the final target and the hops die.
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.Int64T)
	fb.Jump("a")
	fb.Block("a")
	fb.Jump("b")
	fb.Block("b")
	fb.Jump("c")
	fb.Block("c")
	fb.Return(ast.IntOp(7))

	fn, st := optStatsFor(t, b.M, "M::f")
	if st.Threaded == 0 {
		t.Fatalf("no jumps threaded:\n%s", fn.Disasm())
	}
	if st.Removed == 0 {
		t.Fatalf("threaded-over jumps not removed:\n%s", fn.Disasm())
	}
	ex := linkAt(t, 1, b.M)
	if v, err := ex.Call("M::f"); err != nil || v.AsInt() != 7 {
		t.Fatalf("got %v %v", v, err)
	}
}

func TestOptFusionGolden(t *testing.T) {
	// The canonical counting loop: `c = i < n; if c ...` fuses into one
	// int.lt+br instruction. Golden disassembly pins the whole post-opt
	// shape — operand layout, branch targets, and the shrunken body.
	fn, st := optStatsFor(t, spinModule().M, "M::spin")
	if st.Fused == 0 {
		t.Fatalf("no compare fused into branch:\n%s", fn.Disasm())
	}
	const want = `func M::spin (params=1 regs=3)
0000 assign             r1 <- c:0
0001 int.lt+br          r2 <- r1, r0 ; t1=2 t2=3
0002 int.add            r1 <- r1, c:1 ; t1=1
0003 return.result      _ <- r1
`
	if got := fn.Disasm(); got != want {
		t.Fatalf("post-optimization disassembly changed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// And the fused loop still counts correctly.
	ex := linkAt(t, 1, spinModule().M)
	if v, err := ex.Call("M::spin", values.Int(1234)); err != nil || v.AsInt() != 1234 {
		t.Fatalf("got %v %v", v, err)
	}
}

func TestOptDeadCodeElimination(t *testing.T) {
	// An if.else over a constant condition folds to a jump; the untaken
	// branch becomes unreachable and is removed.
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.Int64T)
	c := fb.Local("c", types.BoolT)
	fb.Assign(c, "bool.and", ast.BoolOp(true), ast.BoolOp(true))
	fb.IfElse(c, "yes", "no")
	fb.Block("yes")
	fb.Return(ast.IntOp(1))
	fb.Block("no")
	fb.Return(ast.IntOp(2))

	fn, st := optStatsFor(t, b.M, "M::f")
	if st.Removed == 0 {
		t.Fatalf("dead branch not removed:\n%s", fn.Disasm())
	}
	if dis := fn.Disasm(); strings.Contains(dis, "c:2") {
		t.Fatalf("unreachable branch survived:\n%s", dis)
	}
	ex := linkAt(t, 1, b.M)
	if v, err := ex.Call("M::f"); err != nil || v.AsInt() != 1 {
		t.Fatalf("got %v %v", v, err)
	}
}

// tryModule raises inside a try whose handler must stay attached to the
// right pc range after the optimizer moves and deletes code around it.
func tryModule() *ast.Builder {
	b := ast.NewBuilder("M")
	fb := b.Function("guarded", types.Int64T, ast.Param{Name: "k", Type: types.Int64T})
	m := fb.Local("m", types.RefT(types.MapT(types.Int64T, types.Int64T)))
	e := fb.Local("e", types.ExcT)
	v := fb.Local("v", types.Int64T)
	pad := fb.Local("pad", types.Int64T)
	// Foldable padding before the try so DCE/threading renumbers pcs.
	fb.Assign(pad, "int.mul", ast.IntOp(3), ast.IntOp(7))
	fb.Jump("body")
	fb.Block("body")
	fb.Assign(m, "new", ast.TypeOperand(types.MapT(types.Int64T, types.Int64T)))
	fb.Instr("map.insert", m, ast.IntOp(1), ast.IntOp(100))
	fb.TryBeginNamed("catch", e, "Hilti::IndexError")
	fb.Assign(v, "map.get", m, ast.VarOp("k"))
	fb.TryEnd()
	fb.Return(v)
	fb.Block("catch")
	fb.Return(ast.IntOp(-1))
	return b
}

func TestOptHandlerRangesSurviveCodeMotion(t *testing.T) {
	for _, level := range []int{0, 1} {
		ex := linkAt(t, level, tryModule().M)
		if v, err := ex.Call("M::guarded", values.Int(1)); err != nil || v.AsInt() != 100 {
			t.Fatalf("O%d hit: %v %v", level, v, err)
		}
		// Missing key raises IndexError; the handler must still catch it.
		if v, err := ex.Call("M::guarded", values.Int(2)); err != nil || v.AsInt() != -1 {
			t.Fatalf("O%d miss should be caught in-language: %v %v", level, v, err)
		}
	}
}

func TestOptUncaughtExceptionIdentical(t *testing.T) {
	// An exception with no handler must surface identically at both levels.
	b := ast.NewBuilder("M")
	fb := b.Function("boom", types.Int64T)
	m := fb.Local("m", types.RefT(types.MapT(types.Int64T, types.Int64T)))
	v := fb.Local("v", types.Int64T)
	fb.Assign(v, "map.get", m, ast.IntOp(5))
	fb.Return(v)

	var names [2]string
	for _, level := range []int{0, 1} {
		ex := linkAt(t, level, b.M)
		_, err := ex.Call("M::boom")
		var exc *values.Exception
		if !errors.As(err, &exc) {
			t.Fatalf("O%d: want exception, got %v", level, err)
		}
		names[level] = exc.Name
	}
	if names[0] != names[1] {
		t.Fatalf("exception identity differs: O0=%s O1=%s", names[0], names[1])
	}
}

// TestOptDifferential runs a set of behaviorally diverse programs at -O0 and
// -O1 and requires identical results — the optimizer's core contract.
func TestOptDifferential(t *testing.T) {
	type prog struct {
		name  string
		build func() *ast.Module
		entry string
		args  []values.Value
	}
	progs := []prog{
		{"spin", func() *ast.Module { return spinModule().M }, "M::spin", []values.Value{values.Int(5000)}},
		{"fib", func() *ast.Module {
			b := ast.NewBuilder("M")
			fb := b.Function("fib", types.Int64T, ast.Param{Name: "n", Type: types.Int64T})
			c := fb.Local("c", types.BoolT)
			a := fb.Local("a", types.Int64T)
			bb := fb.Local("b", types.Int64T)
			r := fb.Local("r", types.Int64T)
			n1 := fb.Local("n1", types.Int64T)
			n2 := fb.Local("n2", types.Int64T)
			fb.Assign(c, "int.lt", ast.VarOp("n"), ast.IntOp(2))
			fb.IfElse(c, "base", "rec")
			fb.Block("base")
			fb.Return(ast.VarOp("n"))
			fb.Block("rec")
			fb.Assign(n1, "int.sub", ast.VarOp("n"), ast.IntOp(1))
			fb.Assign(n2, "int.sub", ast.VarOp("n"), ast.IntOp(2))
			fb.CallResult(a, "fib", n1)
			fb.CallResult(bb, "fib", n2)
			fb.Assign(r, "int.add", a, bb)
			fb.Return(r)
			return b.M
		}, "M::fib", []values.Value{values.Int(17)}},
		{"setops", func() *ast.Module {
			b := ast.NewBuilder("M")
			fb := b.Function("f", types.BoolT, ast.Param{Name: "a", Type: types.AddrT})
			s := fb.Local("s", types.RefT(types.SetT(types.AddrT)))
			r := fb.Local("r", types.BoolT)
			fb.Instr("set.insert", s, ast.VarOp("a"))
			fb.Assign(r, "set.exists", s, ast.VarOp("a"))
			fb.Return(r)
			return b.M
		}, "M::f", []values.Value{values.MustParseAddr("192.168.1.1")}},
		{"strings", func() *ast.Module {
			b := ast.NewBuilder("M")
			fb := b.Function("f", types.StringT, ast.Param{Name: "s", Type: types.StringT})
			r := fb.Local("r", types.StringT)
			fb.Assign(r, "string.concat", ast.VarOp("s"), ast.StringOp("-suffix"))
			fb.Return(r)
			return b.M
		}, "M::f", []values.Value{values.String("prefix")}},
	}
	for _, p := range progs {
		ex0 := linkAt(t, 0, p.build())
		ex1 := linkAt(t, 1, p.build())
		v0, err0 := ex0.Call(p.entry, p.args...)
		v1, err1 := ex1.Call(p.entry, p.args...)
		if (err0 == nil) != (err1 == nil) {
			t.Fatalf("%s: error divergence: O0=%v O1=%v", p.name, err0, err1)
		}
		if values.Format(v0) != values.Format(v1) {
			t.Fatalf("%s: result divergence: O0=%v O1=%v", p.name, v0, v1)
		}
	}
}

func TestOptStaticCountShrinks(t *testing.T) {
	p0, err := LinkWith(Options{OptLevel: 0}, spinModule().M)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := LinkWith(Options{OptLevel: 1}, spinModule().M)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := p0.StaticInstrCount(), p1.StaticInstrCount(); b >= a {
		t.Fatalf("optimizer did not shrink code: %d -> %d", a, b)
	}
}

// Pooled frames must hold no values: a retained reference in a dead frame
// would keep arbitrarily large object graphs (packet buffers, containers)
// alive across calls.
func TestFreedFramesHoldNoValues(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("hold", types.Int64T, ast.Param{Name: "s", Type: types.StringT})
	r := fb.Local("r", types.Int64T)
	pad := fb.Local("pad", types.StringT)
	fb.Assign(pad, "assign", ast.VarOp("s"))
	fb.Assign(r, "string.length", pad)
	fb.Return(r)

	ex := mustLink(t, b.M)
	if v, err := ex.Call("M::hold", values.String("payload")); err != nil || v.AsInt() != 7 {
		t.Fatalf("got %v %v", v, err)
	}
	if len(ex.freeFrames) == 0 {
		t.Fatal("frame was not pooled")
	}
	for _, fr := range ex.freeFrames {
		for i, v := range fr.R[:cap(fr.R)] {
			if v != (values.Value{}) {
				t.Fatalf("pooled frame register %d retains %v", i, v)
			}
		}
		if fr.Ret != values.Nil {
			t.Fatalf("pooled frame Ret retains %v", fr.Ret)
		}
	}
}
