// VM observability: per-Exec execution counters and an optional per-opcode
// profile.
//
// The hot dispatch loop is never instrumented directly — instruction counts
// are harvested from the budget machinery (which already counts steps for
// resource governance) at invocation boundaries. The harvest itself is
// batched: invocation and instruction deltas accumulate in plain fields
// owned by the Exec goroutine and are flushed to the atomic counters every
// flushEvery invocations, so the steady-state per-call cost is two plain
// adds and a predictable branch (~0.4ns) instead of two atomic RMWs
// (~12ns on a Xeon). Scrapes therefore lag by at most flushEvery
// invocations — bounded staleness a monitoring reader never notices.
// Counters live on the Exec rather than in a shared registry so concurrent
// Execs on different pipeline workers never contend on a cache line; a
// scrape-time collector sums them.

package vm

import (
	"sort"

	"hilti/internal/rt/metrics"
)

// ExecMetrics is the counter set one Exec reports into. All fields are
// safe to read from any goroutine while the Exec runs.
type ExecMetrics struct {
	// Instructions is the cumulative count of VM instructions executed by
	// completed top-level invocations (fiber-backed calls count all their
	// resumes when the call completes).
	Instructions metrics.Counter
	// Invocations counts completed top-level Call/CallFn entries.
	Invocations metrics.Counter
	// FiberSuspends counts would-block suspensions of fiber-backed calls
	// (the paper's incremental-parsing yields).
	FiberSuspends metrics.Counter
	// LimitTrips counts Hilti::ResourceExhausted raises from instruction
	// budgets or deadlines (vm.Limits).
	LimitTrips metrics.Counter
	// Uncaught counts invocations that completed with an unhandled
	// exception.
	Uncaught metrics.Counter

	// Pending deltas, owned by the Exec's goroutine (never read elsewhere);
	// folded into the atomic counters by flush().
	pendInstr uint64
	pendInv   uint64
}

// flushEvery bounds how many invocations may accumulate locally before the
// pending deltas are folded into the atomic counters.
const flushEvery = 32

// harvest records one completed top-level invocation. Called on the Exec's
// goroutine only.
func (m *ExecMetrics) harvest(steps uint64) {
	m.pendInstr += steps
	if m.pendInv++; m.pendInv >= flushEvery {
		m.flush()
	}
}

func (m *ExecMetrics) flush() {
	if m.pendInv > 0 {
		m.Invocations.Add(m.pendInv)
		m.Instructions.Add(m.pendInstr)
		m.pendInv, m.pendInstr = 0, 0
	}
}

// Sync publishes any batched invocation/instruction deltas to the atomic
// counters immediately. It must be called from the goroutine driving the
// Exec (between calls); scrape-side readers never need it — they just see
// values up to flushEvery invocations stale.
func (m *ExecMetrics) Sync() {
	if m != nil {
		m.flush()
	}
}

// AttachMetrics equips the Exec with an ExecMetrics counter set (idempotent
// — an existing set is kept) and returns it. Call before the Exec runs.
func (ex *Exec) AttachMetrics() *ExecMetrics {
	if ex.Met == nil {
		ex.Met = &ExecMetrics{}
	}
	return ex.Met
}

// PublishTo registers the Exec's counters (attaching them if needed) with
// reg under the given collector key, as hilti_vm_* series with the given
// extra label pairs. The opcode profile is published too when
// EnableOpcodeProfile was called before PublishTo (the profile pointer is
// captured here so the scrape never races with enabling).
func (ex *Exec) PublishTo(reg *metrics.Registry, key string, labels ...string) *ExecMetrics {
	m := ex.AttachMetrics()
	op := ex.opProf
	if reg == nil {
		return m
	}
	reg.RegisterCollector(key, func(emit func(string, float64)) {
		emit(metrics.Name("hilti_vm_instructions_total", labels...), float64(m.Instructions.Load()))
		emit(metrics.Name("hilti_vm_invocations_total", labels...), float64(m.Invocations.Load()))
		emit(metrics.Name("hilti_vm_fiber_suspends_total", labels...), float64(m.FiberSuspends.Load()))
		emit(metrics.Name("hilti_vm_limit_trips_total", labels...), float64(m.LimitTrips.Load()))
		emit(metrics.Name("hilti_vm_uncaught_exceptions_total", labels...), float64(m.Uncaught.Load()))
		if op != nil {
			for _, oc := range op.snapshot() {
				lp := append([]string{"op", oc.op}, labels...)
				emit(metrics.Name("hilti_vm_op_executions_total", lp...), float64(oc.n))
			}
		}
	})
	return m
}

// opProfile is the per-opcode execution profile: flat arrays indexed by
// interned opcode id (opid.go). Per-opcode counts are atomic counters so
// concurrent scrapes (PublishTo collectors) read them safely; the pair
// matrix is plain uint64s owned by the Exec goroutine — it feeds tier-2
// superinstruction discovery on that same goroutine, never a scrape.
//
// The arrays are sized at enable time to the interner population plus
// headroom for names minted later (tier-2 pair ops); ids past the end are
// dropped rather than grown, keeping hit() allocation-free forever.
type opProfile struct {
	n      int
	counts []metrics.Counter // [opID] executions; atomic, scrape-safe
	pairs  []uint64          // [prev*n+cur] adjacent-pair executions
}

// profNoPrev is the "no previous instruction" sentinel for pair counting:
// it always fails the bounds check in hit, so the first instruction of an
// activation records no pair.
const profNoPrev = ^uint16(0)

// opProfileHeadroom pads the profile arrays beyond the ids interned at
// enable time, so ops minted later (tier-2 pairs, programs linked after
// enabling) still get counted.
const opProfileHeadroom = 256

type opCount struct {
	op string
	n  uint64
}

// EnableOpcodeProfile turns on per-opcode execution counting for this
// Exec. The cost is one bounds check plus one array increment per
// instruction (two with pair counting) — cheap enough to leave on in
// production; it also feeds tier-2 superinstruction discovery (tier2.go).
// Enable it after linking the programs of interest so their opcode names
// are already interned (later names land in the headroom, and anything
// beyond that is silently dropped from the profile).
func (ex *Exec) EnableOpcodeProfile() {
	if ex.opProf == nil {
		n := internedOpCount() + opProfileHeadroom
		if n > int(profNoPrev) {
			n = int(profNoPrev)
		}
		ex.opProf = &opProfile{
			n:      n,
			counts: make([]metrics.Counter, n),
			pairs:  make([]uint64, n*n),
		}
	}
}

// OpcodeProfile returns the per-opcode execution counts accumulated so
// far, or nil when profiling was never enabled.
func (ex *Exec) OpcodeProfile() map[string]uint64 {
	if ex.opProf == nil {
		return nil
	}
	out := make(map[string]uint64)
	for _, oc := range ex.opProf.snapshot() {
		out[oc.op] = oc.n
	}
	return out
}

// OpPairCount is one adjacent-opcode-pair entry of the profile: B executed
// immediately after A within one activation.
type OpPairCount struct {
	A, B string
	N    uint64
}

// OpcodePairProfile returns the measured opcode-pair frequencies, sorted
// descending. Unlike OpcodeProfile it reads the unsynchronized pair
// matrix, so call it from the goroutine driving the Exec (between calls).
func (ex *Exec) OpcodePairProfile() []OpPairCount {
	p := ex.opProf
	if p == nil {
		return nil
	}
	k := 0
	for _, c := range p.pairs {
		if c > 0 {
			k++
		}
	}
	out := make([]OpPairCount, 0, k)
	for i, c := range p.pairs {
		if c > 0 {
			out = append(out, OpPairCount{
				A: opName(uint16(i / p.n)), B: opName(uint16(i % p.n)), N: c,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// hit records one execution of id following prev, returning the new
// previous-op id for the caller's loop-local chain.
func (p *opProfile) hit(id uint16, prev uint16) uint16 {
	if int(id) >= p.n {
		return profNoPrev // beyond headroom: drop, and break the pair chain
	}
	p.counts[id].Inc()
	if int(prev) < p.n {
		p.pairs[int(prev)*p.n+int(id)]++
	}
	return id
}

// pairCount returns the measured executions of the adjacent pair (a, b).
func (p *opProfile) pairCount(a, b uint16) uint64 {
	if p == nil || int(a) >= p.n || int(b) >= p.n {
		return 0
	}
	return p.pairs[int(a)*p.n+int(b)]
}

// snapshot returns the nonzero per-opcode counts sorted descending. It
// allocates exactly one slice sized to the nonzero population (it runs on
// every metrics scrape).
func (p *opProfile) snapshot() []opCount {
	k := 0
	for i := range p.counts {
		if p.counts[i].Load() > 0 {
			k++
		}
	}
	out := make([]opCount, 0, k)
	for i := range p.counts {
		if n := p.counts[i].Load(); n > 0 {
			out = append(out, opCount{op: opName(uint16(i)), n: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].n != out[j].n {
			return out[i].n > out[j].n
		}
		return out[i].op < out[j].op
	})
	return out
}
