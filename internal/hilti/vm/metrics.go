// VM observability: per-Exec execution counters and an optional per-opcode
// profile.
//
// The hot dispatch loop is never instrumented directly — instruction counts
// are harvested from the budget machinery (which already counts steps for
// resource governance) at invocation boundaries. The harvest itself is
// batched: invocation and instruction deltas accumulate in plain fields
// owned by the Exec goroutine and are flushed to the atomic counters every
// flushEvery invocations, so the steady-state per-call cost is two plain
// adds and a predictable branch (~0.4ns) instead of two atomic RMWs
// (~12ns on a Xeon). Scrapes therefore lag by at most flushEvery
// invocations — bounded staleness a monitoring reader never notices.
// Counters live on the Exec rather than in a shared registry so concurrent
// Execs on different pipeline workers never contend on a cache line; a
// scrape-time collector sums them.

package vm

import (
	"sort"
	"sync"

	"hilti/internal/rt/metrics"
)

// ExecMetrics is the counter set one Exec reports into. All fields are
// safe to read from any goroutine while the Exec runs.
type ExecMetrics struct {
	// Instructions is the cumulative count of VM instructions executed by
	// completed top-level invocations (fiber-backed calls count all their
	// resumes when the call completes).
	Instructions metrics.Counter
	// Invocations counts completed top-level Call/CallFn entries.
	Invocations metrics.Counter
	// FiberSuspends counts would-block suspensions of fiber-backed calls
	// (the paper's incremental-parsing yields).
	FiberSuspends metrics.Counter
	// LimitTrips counts Hilti::ResourceExhausted raises from instruction
	// budgets or deadlines (vm.Limits).
	LimitTrips metrics.Counter
	// Uncaught counts invocations that completed with an unhandled
	// exception.
	Uncaught metrics.Counter

	// Pending deltas, owned by the Exec's goroutine (never read elsewhere);
	// folded into the atomic counters by flush().
	pendInstr uint64
	pendInv   uint64
}

// flushEvery bounds how many invocations may accumulate locally before the
// pending deltas are folded into the atomic counters.
const flushEvery = 32

// harvest records one completed top-level invocation. Called on the Exec's
// goroutine only.
func (m *ExecMetrics) harvest(steps uint64) {
	m.pendInstr += steps
	if m.pendInv++; m.pendInv >= flushEvery {
		m.flush()
	}
}

func (m *ExecMetrics) flush() {
	if m.pendInv > 0 {
		m.Invocations.Add(m.pendInv)
		m.Instructions.Add(m.pendInstr)
		m.pendInv, m.pendInstr = 0, 0
	}
}

// Sync publishes any batched invocation/instruction deltas to the atomic
// counters immediately. It must be called from the goroutine driving the
// Exec (between calls); scrape-side readers never need it — they just see
// values up to flushEvery invocations stale.
func (m *ExecMetrics) Sync() {
	if m != nil {
		m.flush()
	}
}

// AttachMetrics equips the Exec with an ExecMetrics counter set (idempotent
// — an existing set is kept) and returns it. Call before the Exec runs.
func (ex *Exec) AttachMetrics() *ExecMetrics {
	if ex.Met == nil {
		ex.Met = &ExecMetrics{}
	}
	return ex.Met
}

// PublishTo registers the Exec's counters (attaching them if needed) with
// reg under the given collector key, as hilti_vm_* series with the given
// extra label pairs. The opcode profile is published too when
// EnableOpcodeProfile was called before PublishTo (the profile pointer is
// captured here so the scrape never races with enabling).
func (ex *Exec) PublishTo(reg *metrics.Registry, key string, labels ...string) *ExecMetrics {
	m := ex.AttachMetrics()
	op := ex.opProf
	if reg == nil {
		return m
	}
	reg.RegisterCollector(key, func(emit func(string, float64)) {
		emit(metrics.Name("hilti_vm_instructions_total", labels...), float64(m.Instructions.Load()))
		emit(metrics.Name("hilti_vm_invocations_total", labels...), float64(m.Invocations.Load()))
		emit(metrics.Name("hilti_vm_fiber_suspends_total", labels...), float64(m.FiberSuspends.Load()))
		emit(metrics.Name("hilti_vm_limit_trips_total", labels...), float64(m.LimitTrips.Load()))
		emit(metrics.Name("hilti_vm_uncaught_exceptions_total", labels...), float64(m.Uncaught.Load()))
		if op != nil {
			for _, oc := range op.snapshot() {
				lp := append([]string{"op", oc.op}, labels...)
				emit(metrics.Name("hilti_vm_op_executions_total", lp...), float64(oc.n))
			}
		}
	})
	return m
}

// opProfile is the optional per-opcode execution profile. Counts are
// per-op atomic counters in a sync.Map: updates come from the (single)
// Exec goroutine but scrapes iterate concurrently, and sync.Map keeps the
// hot lookup lock-free once an opcode's counter exists.
type opProfile struct {
	counts sync.Map // op string -> *metrics.Counter
}

type opCount struct {
	op string
	n  uint64
}

// EnableOpcodeProfile turns on per-opcode execution counting for this
// Exec. It costs one pointer nil-check per instruction when disabled and
// a map lookup + atomic add per instruction when enabled — a diagnostic
// mode, not a production default (the paper's profiler instructions cover
// coarse attribution cheaply; this is the fine-grained variant).
func (ex *Exec) EnableOpcodeProfile() {
	if ex.opProf == nil {
		ex.opProf = &opProfile{}
	}
}

// OpcodeProfile returns the per-opcode execution counts accumulated so
// far, or nil when profiling was never enabled.
func (ex *Exec) OpcodeProfile() map[string]uint64 {
	if ex.opProf == nil {
		return nil
	}
	out := make(map[string]uint64)
	for _, oc := range ex.opProf.snapshot() {
		out[oc.op] = oc.n
	}
	return out
}

func (p *opProfile) hit(op string) {
	v, ok := p.counts.Load(op)
	if !ok {
		v, _ = p.counts.LoadOrStore(op, &metrics.Counter{})
	}
	v.(*metrics.Counter).Inc()
}

func (p *opProfile) snapshot() []opCount {
	var out []opCount
	p.counts.Range(func(k, v any) bool {
		out = append(out, opCount{op: k.(string), n: v.(*metrics.Counter).Load()})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].n != out[j].n {
			return out[i].n > out[j].n
		}
		return out[i].op < out[j].op
	})
	return out
}
