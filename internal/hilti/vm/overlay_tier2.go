// Tier-2 overlay specialization: precomputed field decoding and fused
// decode-and-compare superinstructions.
//
// The generic overlay.get executor re-derives everything per dispatch:
// field lookup, size switch, bounds arithmetic, a two-value error return,
// and a boxed values.Value round trip — for filters that read two or three
// header fields per packet (paper Figure 4), that chain dominates the
// whole function. Tier-2 lowering knows the overlay definition and field
// index statically, so it plans the access once (offset, end, format,
// bit-range mask) and swaps in executors that bounds-check with a single
// compare and decode inline. When the very next instruction is a fused
// compare-and-branch consuming the decoded field — the universal filter
// shape `overlay.get; cmp const +br` — both are collapsed into one
// superinstruction that decodes, compares, and branches in one dispatch,
// with no boxing at all on the slot path.
//
// Transparency rules match the generic pair fusion (tier2.go): the second
// half stays at its pc as an orphan for side entries, both pcs must share
// handler coverage, the intermediate register is still written (a handler
// or debugger observes the same frame state), and the budget stays exact —
// the fused executor self-charges the second half and bails to the orphan
// when that step would reach a checkpoint.

package vm

import (
	"hilti/internal/rt/overlay"
	"hilti/internal/rt/values"
)

// overlayPlan is a precomputed field access: everything GetIdx re-derives
// per call, resolved once at lowering time.
type overlayPlan struct {
	ov      *overlay.Overlay // cold paths: identical error messages
	idx     int              // field index within ov
	off     int
	end     int // off + field size; bounds check is one compare
	format  overlay.Format
	bitLo   uint8
	bitMask uint64 // for UInt8Bits
	proto   uint8  // for PortTCP/PortUDP
}

// planOverlayField resolves field idx of ov into an access plan, or nil
// when the field has no inline decoder (BytesN allocates and stays on the
// generic path).
func planOverlayField(ov *overlay.Overlay, idx int) *overlayPlan {
	if idx < 0 || idx >= len(ov.Fields) {
		return nil
	}
	f := &ov.Fields[idx]
	if f.Offset < 0 {
		return nil
	}
	p := &overlayPlan{ov: ov, idx: idx, off: f.Offset, format: f.Format}
	size := 0
	switch f.Format {
	case overlay.UInt8:
		size = 1
	case overlay.UInt8Bits:
		size = 1
		p.bitLo = uint8(f.BitLo)
		p.bitMask = (1 << uint(f.BitHi-f.BitLo+1)) - 1
	case overlay.UInt16BE, overlay.UInt16LE:
		size = 2
	case overlay.UInt32BE, overlay.UInt32LE:
		size = 4
	case overlay.IPv4:
		size = 4
	case overlay.IPv6:
		size = 16
	case overlay.PortTCP:
		size, p.proto = 2, values.ProtoTCP
	case overlay.PortUDP:
		size, p.proto = 2, values.ProtoUDP
	default:
		return nil
	}
	p.end = f.Offset + size
	return p
}

// intFormat reports whether the plan decodes to a KindInt value (payload
// fully in Value.A), the domain the int.* compare executors expect.
func (p *overlayPlan) intFormat() bool {
	switch p.format {
	case overlay.UInt8, overlay.UInt8Bits, overlay.UInt16BE, overlay.UInt16LE,
		overlay.UInt32BE, overlay.UInt32LE:
		return true
	}
	return false
}

// decode extracts the planned field from data. The caller has already
// checked p.end <= len(data). Kind-for-kind identical to Overlay.GetIdx.
func (p *overlayPlan) decode(data []byte) values.Value {
	d := data[p.off:p.end:p.end]
	switch p.format {
	case overlay.UInt8:
		return values.Int(int64(d[0]))
	case overlay.UInt8Bits:
		return values.Uint((uint64(d[0]) >> p.bitLo) & p.bitMask)
	case overlay.UInt16BE:
		return values.Uint(uint64(d[0])<<8 | uint64(d[1]))
	case overlay.UInt16LE:
		return values.Uint(uint64(d[1])<<8 | uint64(d[0]))
	case overlay.UInt32BE:
		return values.Uint(uint64(d[0])<<24 | uint64(d[1])<<16 | uint64(d[2])<<8 | uint64(d[3]))
	case overlay.UInt32LE:
		return values.Uint(uint64(d[3])<<24 | uint64(d[2])<<16 | uint64(d[1])<<8 | uint64(d[0]))
	case overlay.IPv4:
		return values.AddrFrom4([4]byte{d[0], d[1], d[2], d[3]})
	case overlay.IPv6:
		var a [16]byte
		copy(a[:], d)
		return values.AddrFrom16(a)
	default: // PortTCP, PortUDP
		return values.PortVal(uint16(d[0])<<8|uint16(d[1]), p.proto)
	}
}

// u64 extracts an integer-format field from data without building a
// values.Value. Only installed for intFormat plans; bounds already checked.
func (p *overlayPlan) u64(data []byte) uint64 {
	d := data[p.off:p.end:p.end]
	switch p.format {
	case overlay.UInt8:
		return uint64(d[0])
	case overlay.UInt8Bits:
		return (uint64(d[0]) >> p.bitLo) & p.bitMask
	case overlay.UInt16BE:
		return uint64(d[0])<<8 | uint64(d[1])
	case overlay.UInt16LE:
		return uint64(d[1])<<8 | uint64(d[0])
	case overlay.UInt32BE:
		return uint64(d[0])<<24 | uint64(d[1])<<16 | uint64(d[2])<<8 | uint64(d[3])
	default: // UInt32LE
		return uint64(d[3])<<24 | uint64(d[2])<<16 | uint64(d[1])<<8 | uint64(d[0])
	}
}

// raiseOverlay reproduces the generic executor's exact exception for a
// failed bounds check (cold path).
func (p *overlayPlan) raiseOverlay(ex *Exec, data []byte) int {
	_, err := p.ov.GetIdx(data, p.idx)
	if err == nil {
		return ex.raise("Hilti::OverlayError", "overlay access out of bounds")
	}
	return ex.raise("Hilti::OverlayError", err.Error())
}

// execOverlayGetSpec is the planned standalone overlay.get: one bounds
// compare, inline decode, slot-or-boxed store.
func execOverlayGetSpec(ex *Exec, fr *Frame, in *Instr) int {
	p := in.aux.(*overlayPlan)
	b := fr.R[in.srcs[0].idx].AsBytes()
	if b == nil {
		return ex.raise("Hilti::NullReference", "nil bytes reference")
	}
	data := b.Bytes()
	if p.end > len(data) {
		return p.raiseOverlay(ex, data)
	}
	v := p.decode(data)
	if in.d.kind == srcSlot {
		fr.I[in.d.idx] = int64(v.A)
	} else {
		ex.put(fr, in.d, v)
	}
	return in.t1
}

// overlayCmpAux is the payload of a fused overlay.get+<compare>+br
// superinstruction. The fused instruction keeps the overlay.get's
// destination in d and the branch targets in t1/t2; the compare's own
// boolean destination lives here.
//
// elideD/elideB implement verified dead-store elision: when the lowering
// pass proved a destination register unreadable (no instruction anywhere
// in the function reads it, no side entry can reach the orphan, no
// handler targets it), the hot path skips the store. The budget-bail path
// always materializes the decoded value first — the orphan it bails to
// re-reads it.
type overlayCmpAux struct {
	overlayPlan
	bpc            int                   // the orphaned compare's pc (budget bail)
	bd             dst                   // compare result destination
	cst            values.Value          // comparison constant
	cstInt         int64                 // the constant as int64 (int compares)
	neg            bool                  // unequal instead of equal
	cmpFn          func(x, y int64) bool // int.<cmp> relation
	maskHi, maskLo uint64                // precomputed subnet mask (net.contains)
	v4hi, v4lo     uint64                // the IPv4-mapped prefix AddrFrom4 applies
	a4ok           bool                  // constant's kind/high-word compare, hoisted
	elideD         bool                  // decoded value provably dead: skip its store
	elideB         bool                  // compare result provably dead: skip its store
}

func (oa *overlayCmpAux) orphanPC() int { return oa.bpc }

// storeInt writes the decoded integer to the overlay.get destination
// (slot or boxed register — the fusion gate allows nothing else).
func (oa *overlayCmpAux) storeInt(fr *Frame, in *Instr, u uint64) {
	if in.d.kind == srcSlot {
		fr.I[in.d.idx] = int64(u)
	} else {
		fr.R[in.d.idx] = values.Uint(u)
	}
}

// execOvIntCmpBr: overlay.get of an integer field + int.<cmp>+br against a
// constant, e.g. the ethertype test of every generated packet filter. The
// decoded integer never touches a values.Value on the hot path.
func execOvIntCmpBr(ex *Exec, fr *Frame, in *Instr) int {
	oa := in.aux.(*overlayCmpAux)
	b := fr.R[in.srcs[0].idx].AsBytes()
	if b == nil {
		return ex.raise("Hilti::NullReference", "nil bytes reference")
	}
	data := b.Bytes()
	if oa.end > len(data) {
		return oa.raiseOverlay(ex, data)
	}
	u := oa.u64(data)
	if !oa.elideD {
		oa.storeInt(fr, in, u)
	}
	// Second-half budget step, mirroring execPair: bail to the orphan when
	// it would reach a checkpoint so the trip fires at its precise pc.
	if ex.budget.steps+1 >= ex.budget.nextCheck {
		if oa.elideD {
			oa.storeInt(fr, in, u) // the orphan re-reads it
		}
		return oa.bpc
	}
	ex.budget.steps++
	res := oa.cmpFn(int64(u), oa.cstInt)
	if !oa.elideB {
		putSlotBool(ex, fr, oa.bd, res)
	}
	return in.branch(res)
}

// execOvEqualBr: overlay.get + equal/unequal+br against a constant. Raw
// K/A/B comparison matches values.Equal for every kind decode produces
// (int, addr, port — payload entirely in A and B).
func execOvEqualBr(ex *Exec, fr *Frame, in *Instr) int {
	oa := in.aux.(*overlayCmpAux)
	b := fr.R[in.srcs[0].idx].AsBytes()
	if b == nil {
		return ex.raise("Hilti::NullReference", "nil bytes reference")
	}
	data := b.Bytes()
	if oa.end > len(data) {
		return oa.raiseOverlay(ex, data)
	}
	v := oa.decode(data)
	if !oa.elideD || ex.budget.steps+1 >= ex.budget.nextCheck {
		if in.d.kind == srcSlot {
			fr.I[in.d.idx] = int64(v.A)
		} else {
			fr.R[in.d.idx] = v
		}
		if ex.budget.steps+1 >= ex.budget.nextCheck {
			return oa.bpc
		}
	}
	ex.budget.steps++
	res := v.K == oa.cst.K && v.A == oa.cst.A && v.B == oa.cst.B
	if oa.neg {
		res = !res
	}
	if !oa.elideB {
		putSlotBool(ex, fr, oa.bd, res)
	}
	return in.branch(res)
}

// execOvAddr4EqBr is execOvEqualBr specialized to an IPv4 field: AddrFrom4
// always yields the v4-mapped prefix in K/A, so the lowering hoists that
// part of the comparison into a4ok and the hot path is one 32-bit load and
// one 64-bit compare — no boxed value unless a store is required.
func execOvAddr4EqBr(ex *Exec, fr *Frame, in *Instr) int {
	oa := in.aux.(*overlayCmpAux)
	b := fr.R[in.srcs[0].idx].AsBytes()
	if b == nil {
		return ex.raise("Hilti::NullReference", "nil bytes reference")
	}
	data := b.Bytes()
	if oa.end > len(data) {
		return oa.raiseOverlay(ex, data)
	}
	d := data[oa.off:oa.end:oa.end]
	lo := oa.v4lo | uint64(d[0])<<24 | uint64(d[1])<<16 | uint64(d[2])<<8 | uint64(d[3])
	if !oa.elideD || ex.budget.steps+1 >= ex.budget.nextCheck {
		if in.d.kind == srcSlot {
			fr.I[in.d.idx] = int64(oa.v4hi)
		} else {
			fr.R[in.d.idx] = values.Value{K: values.KindAddr, A: oa.v4hi, B: lo}
		}
		if ex.budget.steps+1 >= ex.budget.nextCheck {
			return oa.bpc
		}
	}
	ex.budget.steps++
	res := oa.a4ok && lo == oa.cst.B
	if oa.neg {
		res = !res
	}
	if !oa.elideB {
		putSlotBool(ex, fr, oa.bd, res)
	}
	return in.branch(res)
}

// execOvAddr4NetBr is execOvNetContainsBr specialized to an IPv4 field;
// the prefix-word test against the masked network is hoisted like a4ok
// above, leaving one masked compare on the low word.
func execOvAddr4NetBr(ex *Exec, fr *Frame, in *Instr) int {
	oa := in.aux.(*overlayCmpAux)
	b := fr.R[in.srcs[0].idx].AsBytes()
	if b == nil {
		return ex.raise("Hilti::NullReference", "nil bytes reference")
	}
	data := b.Bytes()
	if oa.end > len(data) {
		return oa.raiseOverlay(ex, data)
	}
	d := data[oa.off:oa.end:oa.end]
	lo := oa.v4lo | uint64(d[0])<<24 | uint64(d[1])<<16 | uint64(d[2])<<8 | uint64(d[3])
	if !oa.elideD || ex.budget.steps+1 >= ex.budget.nextCheck {
		if in.d.kind == srcSlot {
			fr.I[in.d.idx] = int64(oa.v4hi)
		} else {
			fr.R[in.d.idx] = values.Value{K: values.KindAddr, A: oa.v4hi, B: lo}
		}
		if ex.budget.steps+1 >= ex.budget.nextCheck {
			return oa.bpc
		}
	}
	ex.budget.steps++
	res := oa.a4ok && lo&oa.maskLo == oa.cst.B
	if !oa.elideB {
		putSlotBool(ex, fr, oa.bd, res)
	}
	return in.branch(res)
}

// execOvNetContainsBr: overlay.get of an address field + net.contains+br
// against a constant network — the CIDR test of generated filters. The
// subnet mask is precomputed, so membership is two ANDs and two compares.
func execOvNetContainsBr(ex *Exec, fr *Frame, in *Instr) int {
	oa := in.aux.(*overlayCmpAux)
	b := fr.R[in.srcs[0].idx].AsBytes()
	if b == nil {
		return ex.raise("Hilti::NullReference", "nil bytes reference")
	}
	data := b.Bytes()
	if oa.end > len(data) {
		return oa.raiseOverlay(ex, data)
	}
	v := oa.decode(data)
	if !oa.elideD || ex.budget.steps+1 >= ex.budget.nextCheck {
		if in.d.kind == srcSlot {
			fr.I[in.d.idx] = int64(v.A)
		} else {
			fr.R[in.d.idx] = v
		}
		if ex.budget.steps+1 >= ex.budget.nextCheck {
			return oa.bpc
		}
	}
	ex.budget.steps++
	res := v.A&oa.maskHi == oa.cst.A && v.B&oa.maskLo == oa.cst.B
	if !oa.elideB {
		putSlotBool(ex, fr, oa.bd, res)
	}
	return in.branch(res)
}

// operandIs reports whether source s reads exactly destination d (register
// or slot).
func operandIs(s *src, d dst) bool {
	return (s.kind == srcReg || s.kind == srcSlot) && s.kind == d.kind && s.idx == d.idx
}

// srcReads reports whether operand s (recursing into ctor sub-operands)
// reads destination d.
func srcReads(s *src, d dst) bool {
	switch s.kind {
	case srcReg, srcSlot:
		return s.kind == d.kind && s.idx == d.idx
	case srcCtor:
		for i := range s.subs {
			if srcReads(&s.subs[i], d) {
				return true
			}
		}
	}
	return false
}

// regReaders counts the instructions reading destination d anywhere in
// code, skipping pc skip (pass -1 to skip nothing). Registers and slots
// only — a global is observable beyond the function and never elidable.
func regReaders(code []Instr, d dst, skip int) int {
	if d.kind != srcReg && d.kind != srcSlot {
		return -1
	}
	n := 0
	for pc := range code {
		if pc == skip {
			continue
		}
		for i := range code[pc].srcs {
			if srcReads(&code[pc].srcs[i], d) {
				n++
			}
		}
	}
	return n
}

// noEntryInto reports whether no branch, jump, switch case, or handler can
// transfer control to target, other than the fall-through from pc `from`.
// Straight-line fall-through cannot reach target either: only code[target-1]
// falls into it, and that is `from` itself.
func noEntryInto(code []Instr, hs []handler, target, from int) bool {
	for q := range code {
		if q == from {
			continue
		}
		in := &code[q]
		switch {
		case in.op == "switch":
			if in.t1 == target {
				return false
			}
			st, ok := in.aux.(*switchTable)
			if !ok {
				return false
			}
			for _, t := range st.targets {
				if t == target {
					return false
				}
			}
		case in.op == "jump":
			if in.t1 == target {
				return false
			}
		case isBranch(in):
			if in.t1 == target || in.t2 == target {
				return false
			}
		}
	}
	for i := range hs {
		if hs[i].target == target {
			return false
		}
	}
	return true
}

// fuseOverlayPairs fuses `overlay.get; <compare> const +br` sequences into
// single specialized superinstructions. It runs before the generic pair
// pass so the overlay shapes get the inline decoder rather than a generic
// two-dispatch pair; eligibility mirrors fusePairs (fall-through head,
// identical handler coverage, measured hot when a profile is given, never
// into a proven-loop region entry).
func fuseOverlayPairs(tc *tierCode, hs []handler, prof *opProfile, pairMin uint64, loops []loopRegion) {
	regionEntry := make(map[int]bool, len(loops))
	for _, lr := range loops {
		regionEntry[lr.lo] = true
	}
	code := tc.code
	for pc := 0; pc+1 < len(code); pc++ {
		a, b := &code[pc], &code[pc+1]
		if a.op != "overlay.get" || a.t1 != pc+1 || regionEntry[pc+1] {
			continue
		}
		if len(a.srcs) != 1 || a.srcs[0].kind != srcReg {
			continue
		}
		if a.d.kind != srcReg && a.d.kind != srcSlot {
			continue
		}
		if !sameHandlers(hs, pc, pc+1) {
			continue
		}
		if prof != nil && prof.pairCount(a.opID, b.opID) < pairMin {
			continue
		}
		ov, okOv := a.aux.(*overlay.Overlay)
		if !okOv {
			continue
		}
		plan := planOverlayField(ov, a.t2)
		if plan == nil {
			continue
		}
		oa := &overlayCmpAux{overlayPlan: *plan, bpc: pc + 1, bd: b.d}
		var exec func(*Exec, *Frame, *Instr) int
		switch b.op {
		case "int.eq+br", "int.lt+br", "int.gt+br", "int.leq+br", "int.geq+br":
			fn, okFn := b.aux.(func(x, y int64) bool)
			if !okFn || len(b.srcs) != 2 || !plan.intFormat() {
				continue
			}
			if !operandIs(&b.srcs[0], a.d) || b.srcs[1].kind != srcConst ||
				b.srcs[1].val.K != values.KindInt {
				continue
			}
			oa.cmpFn, oa.cstInt = fn, int64(b.srcs[1].val.A)
			exec = execOvIntCmpBr
		case "equal+br", "unequal+br":
			if len(b.srcs) != 2 || !operandIs(&b.srcs[0], a.d) || b.srcs[1].kind != srcConst {
				continue
			}
			oa.cst, oa.neg = b.srcs[1].val, b.op == "unequal+br"
			exec = execOvEqualBr
			if plan.format == overlay.IPv4 {
				z := values.AddrFrom4([4]byte{})
				oa.v4hi, oa.v4lo = z.A, z.B
				oa.a4ok = oa.cst.K == values.KindAddr && oa.cst.A == z.A
				exec = execOvAddr4EqBr
			}
		case "net.contains+br":
			if len(b.srcs) != 2 || b.srcs[0].kind != srcConst ||
				b.srcs[0].val.K != values.KindNet || !operandIs(&b.srcs[1], a.d) {
				continue
			}
			oa.cst = b.srcs[0].val
			// Precompute the subnet mask NetContains would re-derive:
			// the leading `width` bits of the 128-bit address space.
			width := oa.cst.NetPrefixLen()
			switch {
			case width <= 0:
			case width >= 128:
				oa.maskHi, oa.maskLo = ^uint64(0), ^uint64(0)
			case width <= 64:
				oa.maskHi = ^(^uint64(0) >> uint(width))
			default:
				oa.maskHi, oa.maskLo = ^uint64(0), ^(^uint64(0) >> uint(width-64))
			}
			exec = execOvNetContainsBr
			if plan.format == overlay.IPv4 {
				z := values.AddrFrom4([4]byte{})
				oa.v4hi, oa.v4lo = z.A, z.B
				oa.a4ok = z.A&oa.maskHi == oa.cst.A
				exec = execOvAddr4NetBr
			}
		default:
			continue
		}
		// Verified dead-store elision. The decoded value may skip its
		// register store when nothing but the orphaned compare reads it and
		// no side entry can reach that orphan (the budget bail, the one
		// remaining path into it, materializes the value first). The
		// compare result may skip its store when nothing reads it at all —
		// the fused branch already consumed it.
		if a.d.kind != b.d.kind || a.d.idx != b.d.idx {
			oa.elideD = regReaders(code, a.d, pc+1) == 0 &&
				noEntryInto(code, hs, pc+1, pc)
			oa.elideB = regReaders(code, b.d, -1) == 0
		}
		fused := Instr{
			exec: exec,
			op:   a.op + "+" + b.op,
			d:    a.d,
			srcs: a.srcs,
			aux:  oa,
			t1:   b.t1,
			t2:   b.t2,
		}
		fused.opID = internOp(fused.op)
		code[pc] = fused
		tc.stats.Pairs++
		tc.stats.Overlay++
		pc++ // the orphaned compare at pc+1 stays intact for side entries
	}
}

// specializeOverlayGets swaps every remaining generic overlay.get —
// including pair orphans — for the planned executor. Pure strength
// reduction: same operands, same raises, one dispatch either way.
func specializeOverlayGets(tc *tierCode) {
	for pc := range tc.code {
		in := &tc.code[pc]
		if in.op != "overlay.get" || len(in.srcs) != 1 || in.srcs[0].kind != srcReg {
			continue
		}
		ov, ok := in.aux.(*overlay.Overlay)
		if !ok {
			continue
		}
		plan := planOverlayField(ov, in.t2)
		if plan == nil {
			continue
		}
		in.aux = plan
		in.exec = execOverlayGetSpec
		tc.stats.Overlay++
	}
}
