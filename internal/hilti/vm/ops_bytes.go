// Bytes, iterator, unpack, and regular-expression instructions — the heart
// of protocol parsing. Operations that need data beyond the current end of
// a non-frozen bytes value report would-block, which the dispatch loop
// turns into a transparent fiber suspension (see vm.go): this is what makes
// BinPAC++-generated parsers incremental with no explicit state machine.

package vm

import (
	"fmt"

	"hilti/internal/hilti/ast"
	"hilti/internal/rt/hbytes"
	"hilti/internal/rt/regexp"
	"hilti/internal/rt/values"
)

func bytesOf(v values.Value) (*hbytes.Bytes, error) {
	b := v.AsBytes()
	if b == nil {
		return nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil bytes reference"}
	}
	return b, nil
}

func init() {
	registerSimple("bytes.new", 0, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.BytesVal(hbytes.New()), nil
	})
	registerSimple("bytes.length", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		b, err := bytesOf(a[0])
		if err != nil {
			return values.Nil, err
		}
		return values.Int(b.Len()), nil
	})
	registerSimple("bytes.append", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		b, err := bytesOf(a[0])
		if err != nil {
			return values.Nil, err
		}
		src, err := bytesOf(a[1])
		if err != nil {
			return values.Nil, err
		}
		return values.Nil, b.Append(src.Bytes())
	})
	registerSimple("bytes.freeze", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		b, err := bytesOf(a[0])
		if err != nil {
			return values.Nil, err
		}
		b.Freeze()
		return values.Nil, nil
	})
	registerSimple("bytes.unfreeze", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		b, err := bytesOf(a[0])
		if err != nil {
			return values.Nil, err
		}
		b.Unfreeze()
		return values.Nil, nil
	})
	registerSimple("bytes.is_frozen", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		b, err := bytesOf(a[0])
		if err != nil {
			return values.Nil, err
		}
		return values.Bool(b.Frozen()), nil
	})
	registerSimple("bytes.begin", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		b, err := bytesOf(a[0])
		if err != nil {
			return values.Nil, err
		}
		return values.IterBytes(b.Begin()), nil
	})
	registerSimple("bytes.end", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		b, err := bytesOf(a[0])
		if err != nil {
			return values.Nil, err
		}
		return values.IterBytes(b.End()), nil
	})
	registerSimple("bytes.sub", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		from := a[0].AsIterBytes()
		to := a[1].AsIterBytes()
		if from.Bytes() == nil {
			return values.Nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil iterator"}
		}
		nb, err := from.Bytes().SubBytes(from, to)
		if err != nil {
			return values.Nil, err
		}
		return values.BytesVal(nb), nil
	})
	registerSimple("bytes.trim", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		b, err := bytesOf(a[0])
		if err != nil {
			return values.Nil, err
		}
		b.Trim(a[1].AsIterBytes())
		return values.Nil, nil
	})
	registerSimple("bytes.find", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		b, err := bytesOf(a[0])
		if err != nil {
			return values.Nil, err
		}
		needle, err := bytesOf(a[1])
		if err != nil {
			return values.Nil, err
		}
		it, found, err := b.Find(needle.Bytes(), b.Begin())
		if err != nil {
			return values.Nil, err
		}
		return values.TupleVal(values.Bool(found), values.IterBytes(it)), nil
	})
	// bytes.find_from target=(found, iter) <iter> <needle-bytes>: search
	// forward from an iterator, suspending when the needle might still
	// arrive on a non-frozen rope.
	registerSimple("bytes.find_from", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		it := a[0].AsIterBytes()
		b := it.Bytes()
		if b == nil {
			return values.Nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil iterator"}
		}
		needle, err := bytesOf(a[1])
		if err != nil {
			return values.Nil, err
		}
		pos, found, err := b.Find(needle.Bytes(), it)
		if err != nil {
			return values.Nil, err
		}
		return values.TupleVal(values.Bool(found), values.IterBytes(pos)), nil
	})

	registerSimple("bytes.to_string", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		b, err := bytesOf(a[0])
		if err != nil {
			return values.Nil, err
		}
		return values.String(b.String()), nil
	})
	registerSimple("bytes.lower", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		b, err := bytesOf(a[0])
		if err != nil {
			return values.Nil, err
		}
		raw := b.Bytes()
		out := make([]byte, len(raw))
		for i, c := range raw {
			if c >= 'A' && c <= 'Z' {
				c += 32
			}
			out[i] = c
		}
		return values.BytesFrom(out), nil
	})
	// bytes.to_int parses an ASCII integer with the given base.
	registerSimple("bytes.to_int", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		b, err := bytesOf(a[0])
		if err != nil {
			return values.Nil, err
		}
		base := a[1].AsInt()
		if base != 10 && base != 16 {
			return values.Nil, fmt.Errorf("bytes.to_int: unsupported base %d", base)
		}
		raw := b.Bytes()
		if len(raw) == 0 {
			return values.Nil, &values.Exception{Name: "Hilti::ConversionError", Msg: "empty bytes"}
		}
		var n int64
		neg := false
		for i, c := range raw {
			if i == 0 && c == '-' {
				neg = true
				continue
			}
			var d int64
			switch {
			case c >= '0' && c <= '9':
				d = int64(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				d = int64(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = int64(c-'A') + 10
			default:
				return values.Nil, &values.Exception{Name: "Hilti::ConversionError",
					Msg: fmt.Sprintf("not a base-%d number: %q", base, raw)}
			}
			n = n*base + d
		}
		if neg {
			n = -n
		}
		return values.Int(n), nil
	})
	registerSimple("bytes.starts_with", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		b, err := bytesOf(a[0])
		if err != nil {
			return values.Nil, err
		}
		prefix, err := bytesOf(a[1])
		if err != nil {
			return values.Nil, err
		}
		pb := prefix.Bytes()
		if b.Len() < int64(len(pb)) {
			return values.Bool(false), nil
		}
		sub, err := b.Sub(b.Begin(), b.Begin().Plus(int64(len(pb))))
		if err != nil {
			return values.Nil, err
		}
		return values.Bool(string(sub) == string(pb)), nil
	})

	// bytes.wait_frozen <iter>: block (suspending the fiber) until the
	// underlying rope is frozen — the "rest of data" fields of generated
	// parsers wait for end-of-stream this way.
	registerSimple("bytes.wait_frozen", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		it := a[0].AsIterBytes()
		b := it.Bytes()
		if b == nil {
			return values.Nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil iterator"}
		}
		if !b.Frozen() {
			return values.Nil, hbytes.ErrWouldBlock
		}
		return values.Nil, nil
	})

	// --- iterator<bytes> ---------------------------------------------------------
	// iterator.end_of returns the distinguished end iterator of the rope an
	// iterator points into.
	registerSimple("iterator.end_of", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		it := a[0].AsIterBytes()
		b := it.Bytes()
		if b == nil {
			return values.Nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil iterator"}
		}
		return values.IterBytes(b.End()), nil
	})
	registerShaped("iterator.incr", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.IterBytes(a[0].AsIterBytes().Next()), nil
	}, func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int {
		if d.kind == srcReg && srcs[0].kind == srcReg {
			return execIterIncrRR
		}
		return nil
	})
	registerSimple("iterator.incr_by", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.IterBytes(a[0].AsIterBytes().Plus(a[1].AsInt())), nil
	})
	registerShaped("iterator.deref", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		c, err := a[0].AsIterBytes().Deref()
		if err != nil {
			return values.Nil, err
		}
		return values.Int(int64(c)), nil
	}, func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int {
		if d.kind == srcReg && srcs[0].kind == srcReg {
			return execIterDerefRR
		}
		return nil
	})
	registerSimple("iterator.diff", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Int(a[0].AsIterBytes().Diff(a[1].AsIterBytes())), nil
	})
	registerSimple("iterator.eq", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Bool(a[0].AsIterBytes().Cmp(a[1].AsIterBytes()) == 0), nil
	})
	registerSimple("iterator.at_end", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		it := a[0].AsIterBytes()
		b := it.Bytes()
		if b == nil {
			return values.Bool(true), nil
		}
		if !it.AtEnd() {
			return values.Bool(false), nil
		}
		// At the current end of a non-frozen value: the answer is not yet
		// known — suspend for more input (HILTI's incremental semantics).
		if !b.Frozen() {
			return values.Nil, hbytes.ErrWouldBlock
		}
		return values.Bool(true), nil
	})
	// iterator.at_end_now answers immediately without suspending (used at
	// PDU boundaries where "no more data right now" is the actual question).
	registerShaped("iterator.at_end_now", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		it := a[0].AsIterBytes()
		return values.Bool(it.Bytes() == nil || it.AtEnd()), nil
	}, func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int {
		if d.kind == srcReg && srcs[0].kind == srcReg {
			return execIterAtEndNowRR
		}
		return nil
	})

	// --- unpack (binary field extraction; the overlay/unpack formats of §4) -------
	unpack := func(name string, width int64, fn func(raw []byte) values.Value) {
		registerSimple("unpack."+name, 1, func(ex *Exec, a []values.Value) (values.Value, error) {
			it := a[0].AsIterBytes()
			b := it.Bytes()
			if b == nil {
				return values.Nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil iterator"}
			}
			raw, err := b.Sub(it, it.Plus(width))
			if err != nil {
				return values.Nil, err
			}
			return values.TupleVal(fn(raw), values.IterBytes(it.Plus(width))), nil
		})
	}
	unpack("uint8", 1, func(r []byte) values.Value { return values.Uint(uint64(r[0])) })
	unpack("uint16be", 2, func(r []byte) values.Value {
		return values.Uint(uint64(r[0])<<8 | uint64(r[1]))
	})
	unpack("uint16le", 2, func(r []byte) values.Value {
		return values.Uint(uint64(r[1])<<8 | uint64(r[0]))
	})
	unpack("uint32be", 4, func(r []byte) values.Value {
		return values.Uint(uint64(r[0])<<24 | uint64(r[1])<<16 | uint64(r[2])<<8 | uint64(r[3]))
	})
	unpack("uint32le", 4, func(r []byte) values.Value {
		return values.Uint(uint64(r[3])<<24 | uint64(r[2])<<16 | uint64(r[1])<<8 | uint64(r[0]))
	})
	unpack("addr4", 4, func(r []byte) values.Value {
		return values.AddrFrom4([4]byte{r[0], r[1], r[2], r[3]})
	})
	unpack("addr6", 16, func(r []byte) values.Value {
		var a [16]byte
		copy(a[:], r)
		return values.AddrFrom16(a)
	})
	// unpack.bytes target=(bytes, iter) <iter> <n>: n raw bytes.
	registerSimple("unpack.bytes", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		it := a[0].AsIterBytes()
		n := a[1].AsInt()
		b := it.Bytes()
		if b == nil {
			return values.Nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil iterator"}
		}
		if n < 0 {
			return values.Nil, &values.Exception{Name: "Hilti::ValueError", Msg: "negative length"}
		}
		nb, err := b.SubBytes(it, it.Plus(n))
		if err != nil {
			return values.Nil, err
		}
		return values.TupleVal(values.BytesVal(nb), values.IterBytes(it.Plus(n))), nil
	})

	// --- regexp ---------------------------------------------------------------------
	// regexp.compile builds a matcher from pattern strings.
	register("regexp.compile", func(c *fnCompiler, in *ast.Instr) error {
		// All-constant patterns compile at link time (the common case for
		// generated parsers; the paper considers JIT'ing regexps a key
		// optimization HILTI enables "under the hood").
		allConst := len(in.Ops) > 0
		pats := make([]string, len(in.Ops))
		for i, o := range in.Ops {
			if o.Kind != ast.Const {
				allConst = false
				break
			}
			pats[i] = o.Val.AsString()
		}
		if allConst {
			re, err := regexp.Compile(pats...)
			if err != nil {
				return err
			}
			d, err := c.dstOf(in.Target)
			if err != nil {
				return err
			}
			v := values.Ref(values.KindRegExp, re)
			c.emit(Instr{exec: execAssign, d: d, srcs: []src{{kind: srcConst, val: v}}})
			return nil
		}
		return c.lowerSimple(in, -1, func(ex *Exec, args []values.Value) (values.Value, error) {
			ps := make([]string, len(args))
			for i, a := range args {
				ps[i] = a.AsString()
			}
			re, err := regexp.Compile(ps...)
			if err != nil {
				return values.Nil, err
			}
			return values.Ref(values.KindRegExp, re), nil
		})
	})

	// regexp.match_token target=(id, end-iter) <re> <begin-iter>: anchored
	// longest match; suspends transparently when more input could extend
	// the decision. id 0 = no match.
	registerSimple("regexp.match_token", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		re, _ := a[0].O.(*regexp.Regexp)
		if re == nil {
			return values.Nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil regexp"}
		}
		it := a[1].AsIterBytes()
		id, end, err := re.MatchIter(it)
		if err != nil {
			return values.Nil, err
		}
		return values.TupleVal(values.Int(int64(id)), values.IterBytes(end)), nil
	})

	// regexp.find target=(found, start, end) <re> <bytes>: unanchored search.
	registerSimple("regexp.find", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		re, _ := a[0].O.(*regexp.Regexp)
		if re == nil {
			return values.Nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil regexp"}
		}
		b, err := bytesOf(a[1])
		if err != nil {
			return values.Nil, err
		}
		s, e, id := re.Find(b.Bytes())
		return values.TupleVal(values.Bool(id != 0), values.Int(s), values.Int(e)), nil
	})

	// regexp.matches <re> <bytes>: anchored boolean convenience.
	registerSimple("regexp.matches", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		re, _ := a[0].O.(*regexp.Regexp)
		if re == nil {
			return values.Nil, &values.Exception{Name: "Hilti::NullReference", Msg: "nil regexp"}
		}
		b, err := bytesOf(a[1])
		if err != nil {
			return values.Nil, err
		}
		id, _ := re.Match(b.Bytes())
		return values.Bool(id != 0), nil
	})
}

// --- register-to-register iterator executors ---------------------------------
//
// The parse loops BinPAC++ generates advance, dereference, and test one
// iterator register per input byte; these skip both the simpleFn dispatch
// and Exec.get's kind switch.

func execIterIncrRR(ex *Exec, fr *Frame, in *Instr) int {
	fr.R[in.d.idx] = values.IterBytes(fr.R[in.srcs[0].idx].AsIterBytes().Next())
	return in.t1
}

func execIterDerefRR(ex *Exec, fr *Frame, in *Instr) int {
	c, err := fr.R[in.srcs[0].idx].AsIterBytes().Deref()
	if err != nil {
		return ex.raiseErr(err)
	}
	fr.R[in.d.idx] = values.Int(int64(c))
	return in.t1
}

func execIterAtEndNowRR(ex *Exec, fr *Frame, in *Instr) int {
	it := fr.R[in.srcs[0].idx].AsIterBytes()
	fr.R[in.d.idx] = values.Bool(it.Bytes() == nil || it.AtEnd())
	return in.t1
}
