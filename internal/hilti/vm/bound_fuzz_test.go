package vm

import (
	"errors"
	"testing"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/rt/values"
)

// FuzzLoopBoundProver cross-checks the bound prover against execution.
// Generated counted loops — valid shapes and adversarial near-misses the
// prover must reject (zero/negative steps walking away from the limit,
// second writes to the counter) — run at O1 and at O2 under the same
// instruction budget, with tierDebug armed so a verified region that
// exceeds its proven bound panics instead of silently bailing. The proof
// obligation "never under-charge, never miss a limit" reduces to: both
// levels return the same value or the same exception, having charged
// exactly the same number of steps.
func FuzzLoopBoundProver(f *testing.F) {
	f.Add(int64(0), int64(100), int64(1), uint8(0), uint8(2), false)              // classic upward loop
	f.Add(int64(100), int64(0), int64(-3), uint8(2), uint8(0), false)             // downward, int.gt
	f.Add(int64(-50), int64(50), int64(7), uint8(1), uint8(4), false)             // inclusive, stride 7
	f.Add(int64(5), int64(5), int64(1), uint8(3), uint8(1), false)                // boundary: one iteration
	f.Add(int64(0), int64(10), int64(-1), uint8(0), uint8(1), false)              // diverging step: unprovable
	f.Add(int64(0), int64(1000), int64(1), uint8(0), uint8(3), true)              // double counter write: unprovable
	f.Add(int64(1<<19), int64(-(1 << 19)), int64(-64), uint8(3), uint8(0), false) // widest window
	f.Fuzz(func(t *testing.T, init, limit, step int64, cmpSel, bodySel uint8, doubleWrite bool) {
		// Clamp into the prover's overflow window (and beyond it at the
		// edges, so rejection paths run too).
		init %= 1 << 20
		limit %= 1 << 20
		step %= 64
		if step == 0 {
			step = 1
		}
		cmpOp := []string{"int.lt", "int.leq", "int.gt", "int.geq"}[cmpSel%4]
		bodyN := int(bodySel % 5)

		build := func() *ast.Module {
			b := ast.NewBuilder("M")
			fb := b.Function("loop", types.Int64T)
			s := fb.Local("s", types.Int64T)
			i := fb.Local("i", types.Int64T)
			c := fb.Local("c", types.BoolT)
			fb.Assign(s, "assign", ast.IntOp(0))
			fb.Assign(i, "assign", ast.IntOp(init))
			fb.Jump("hdr")
			fb.Block("hdr")
			fb.Assign(c, cmpOp, i, ast.IntOp(limit))
			fb.IfElse(c, "body", "done")
			fb.Block("body")
			for j := 0; j < bodyN; j++ {
				fb.Assign(s, "int.add", s, ast.IntOp(1))
			}
			if doubleWrite {
				fb.Assign(i, "int.add", i, ast.IntOp(0))
			}
			fb.Assign(i, "int.add", i, ast.IntOp(step))
			fb.Jump("hdr")
			fb.Block("done")
			fb.Return(s)
			return b.M
		}

		wasDebug := tierDebug
		tierDebug = true
		defer func() { tierDebug = wasDebug }()

		// The budget bounds even diverging loops; proven loops whose bound
		// fits run budget-check-free and must still land on the same count.
		type outcome struct {
			val   int64
			exc   string
			steps uint64
		}
		run := func(level int) outcome {
			ex := linkAt(t, level, build())
			ex.Limits = Limits{Instructions: 10_000}
			v, err := ex.Call("M::loop")
			o := outcome{steps: ex.Steps()}
			if err != nil {
				var exc *values.Exception
				if !errors.As(err, &exc) {
					t.Fatalf("O%d: non-exception error %v", level, err)
				}
				o.exc = exc.Name
			} else {
				o.val = v.AsInt()
			}
			return o
		}
		o1, o2 := run(1), run(2)
		if o1 != o2 {
			t.Fatalf("init=%d limit=%d step=%d cmp=%s body=%d dw=%v:\nO1=%+v\nO2=%+v",
				init, limit, step, cmpOp, bodyN, doubleWrite, o1, o2)
		}
	})
}
