// Post-lowering optimizer: a small pass pipeline over the linear []Instr
// produced by compile.go. The paper leans on LLVM for "compile-time
// optimization of the instruction stream" (§5); this file substitutes the
// classic subset that pays off for network-analysis code — constant
// folding, copy propagation, jump threading, unreachable-code elimination,
// and superinstruction fusion of the compare-feeds-branch pattern that
// dominates generated filter and firewall loops.
//
// All passes are behavior-preserving, including exception semantics:
// handler ranges are repatched when code is removed, fused instructions
// raise at the compare's pc (the branch half cannot raise), and copy
// propagation is block-local with every jump/switch/handler target acting
// as a barrier.

package vm

import (
	"strings"

	"hilti/internal/rt/values"
)

// OptStats reports what Optimize did to one function.
type OptStats struct {
	Before   int // instructions before optimization
	After    int // instructions after optimization
	Folded   int // instructions replaced by constant assignments or jumps
	Copies   int // operand reads redirected by copy/constant propagation
	Threaded int // branch targets redirected through jump chains
	Fused    int // compare+branch pairs collapsed
	Removed  int // unreachable instructions deleted
}

// Add accumulates s into the receiver (for whole-program totals).
func (st *OptStats) Add(s OptStats) {
	st.Before += s.Before
	st.After += s.After
	st.Folded += s.Folded
	st.Copies += s.Copies
	st.Threaded += s.Threaded
	st.Fused += s.Fused
	st.Removed += s.Removed
}

// defaultOptLevel is the level Link applies; see SetDefaultOptLevel.
var defaultOptLevel = 1

// DefaultOptLevel returns the optimization level Link applies when no
// explicit Options are given.
func DefaultOptLevel() int { return defaultOptLevel }

// SetDefaultOptLevel changes the level Link applies (0 disables the
// optimizer — the -O0 escape hatch). It affects subsequent Link calls
// only; call it before building programs, not concurrently with Link.
func SetDefaultOptLevel(level int) { defaultOptLevel = level }

// Optimize runs the pass pipeline over fn in place and returns statistics.
// Level <= 0 is a no-op.
func Optimize(fn *CompiledFunc, level int) OptStats {
	st := OptStats{Before: len(fn.Code), After: len(fn.Code)}
	if level <= 0 || len(fn.Code) == 0 {
		return st
	}
	// Propagation and folding feed each other (a propagated constant can
	// complete an all-const operand set), so run them twice.
	for i := 0; i < 2; i++ {
		copyProp(fn, &st)
		constFold(fn, &st)
	}
	threadJumps(fn, &st)
	fuseCmpBr(fn, &st)
	threadJumps(fn, &st) // fused branches expose new chains
	removeUnreachable(fn, &st)
	st.After = len(fn.Code)
	// Level 2: eager ahead-of-time tiering. With no runtime profile every
	// safe pair is fused, which keeps -O2 deterministic; runtime promotion
	// (Exec.EnableTiering) reaches the same tier guided by measured pair
	// frequencies instead.
	if level >= 2 {
		fn.tierState.Store(tierActive)
		if tc := buildTier2(fn, nil, tierConfig{pairs: true, regions: true}); tc != nil {
			fn.tier2.Store(tc)
		}
	}
	return st
}

// isBranch reports whether in's t2 is a control-flow target (if.else,
// fused compare-and-branch, and tier-2 pairs whose second half is one of
// those). For every other instruction t2 is either unused or data
// (overlay.get keeps a field index there).
func isBranch(in *Instr) bool {
	return in.op == "if.else" || strings.HasSuffix(in.op, "+br") ||
		strings.HasSuffix(in.op, "+if.else")
}

// successors appends the control successors of fn.Code[pc] to buf.
func successors(fn *CompiledFunc, pc int, buf []int) []int {
	in := &fn.Code[pc]
	switch {
	case in.op == "jump":
		return append(buf, in.t1)
	case isBranch(in):
		return append(buf, in.t1, in.t2)
	case in.op == "switch":
		buf = append(buf, in.t1)
		return append(buf, in.aux.(*switchTable).targets...)
	case in.op == "return.void" || in.op == "return.result":
		return buf
	default:
		// Straight-line instruction: falls through to t1. Raising paths
		// are covered by the handler fixpoint in removeUnreachable.
		return append(buf, in.t1)
	}
}

// leaders marks every pc that can be entered from somewhere other than the
// preceding instruction: explicit branch targets, switch cases, and
// exception-handler entry points.
func leaders(fn *CompiledFunc) []bool {
	lead := make([]bool, len(fn.Code)+1)
	var buf []int
	for pc := range fn.Code {
		in := &fn.Code[pc]
		if in.op == "jump" || isBranch(in) || in.op == "switch" {
			buf = successors(fn, pc, buf[:0])
			for _, t := range buf {
				lead[t] = true
			}
		}
	}
	for i := range fn.Handlers {
		lead[fn.Handlers[i].target] = true
	}
	return lead
}

// copyProp performs block-local copy and constant propagation: after
// `assign d, s` (s a register or constant), later reads of d within the
// same straight-line region are redirected to s. Any instruction that can
// be entered from elsewhere resets the tracked set; writing a register
// kills bindings involving it.
func copyProp(fn *CompiledFunc, st *OptStats) {
	lead := leaders(fn)
	copies := map[int32]src{}
	for pc := range fn.Code {
		if lead[pc] && len(copies) > 0 {
			copies = map[int32]src{}
		}
		in := &fn.Code[pc]
		reshaped := false
		for i := range in.srcs {
			was := in.srcs[i].kind
			substSrc(&in.srcs[i], copies, st)
			reshaped = reshaped || in.srcs[i].kind != was
		}
		// A substitution that changed an operand's kind (register →
		// constant) invalidates a shape-specialized executor chosen at
		// lowering time; re-pick for the new shape.
		if reshaped {
			if pick, ok := reshapers[in.op]; ok {
				in.exec = pick(in.srcs, in.d)
			}
		}
		if in.d.kind != srcReg {
			continue
		}
		w := in.d.idx
		delete(copies, w)
		for r, rep := range copies {
			if rep.kind == srcReg && rep.idx == w {
				delete(copies, r)
			}
		}
		if in.op == "assign" && len(in.srcs) == 1 {
			if s := in.srcs[0]; (s.kind == srcConst || s.kind == srcReg) &&
				!(s.kind == srcReg && s.idx == w) {
				copies[w] = s
			}
		}
	}
}

func substSrc(s *src, copies map[int32]src, st *OptStats) {
	switch s.kind {
	case srcReg:
		if rep, ok := copies[s.idx]; ok {
			*s = rep
			st.Copies++
		}
	case srcCtor:
		for i := range s.subs {
			substSrc(&s.subs[i], copies, st)
		}
	}
}

// foldKind classifies how an op with all-constant operands is evaluated at
// compile time.
type foldKind uint8

const (
	foldNone    foldKind = iota
	foldIntBin           // aux func(x, y int64) int64
	foldIntCmp           // aux func(x, y int64) bool
	foldEqual            // values.Equal (no aux)
	foldUnequal          // !values.Equal (no aux)
	foldNetHas           // Value.NetContains (no aux)
	foldPure             // aux simpleFn, pure and Exec-independent
)

// foldable lists ops whose results depend only on their operands. Stateful
// ops (containers, bytes, calls, runtime services) are deliberately
// absent; pure-but-fallible ops are included and skipped when they error.
var foldable = map[string]foldKind{
	"int.add": foldIntBin, "int.sub": foldIntBin, "int.mul": foldIntBin,
	"int.eq": foldIntCmp, "int.lt": foldIntCmp, "int.gt": foldIntCmp,
	"int.leq": foldIntCmp, "int.geq": foldIntCmp,
	"equal": foldEqual, "unequal": foldUnequal, "net.contains": foldNetHas,

	"int.div": foldPure, "int.mod": foldPure, "int.shl": foldPure,
	"int.shr": foldPure, "int.and": foldPure, "int.or": foldPure,
	"int.xor": foldPure, "int.ult": foldPure, "int.ugt": foldPure,
	"int.to_double": foldPure, "int.to_time": foldPure,
	"int.to_interval": foldPure, "int.to_string": foldPure,
	"double.add": foldPure, "double.sub": foldPure, "double.mul": foldPure,
	"double.div": foldPure, "double.lt": foldPure, "double.gt": foldPure,
	"double.leq": foldPure, "double.geq": foldPure, "double.to_int": foldPure,
	"double.to_interval": foldPure, "double.to_time": foldPure,
	"bool.and": foldPure, "bool.or": foldPure, "bool.not": foldPure,
	"and": foldPure, "or": foldPure, "not": foldPure,
	"string.concat": foldPure, "string.length": foldPure,
	"string.lower": foldPure, "string.upper": foldPure,
	"string.find": foldPure, "string.to_int": foldPure,
	"time.add": foldPure, "time.sub": foldPure, "time.lt": foldPure,
	"time.gt": foldPure, "time.nsecs": foldPure, "time.to_double": foldPure,
	"interval.add": foldPure, "interval.sub": foldPure,
	"interval.mul": foldPure, "interval.lt": foldPure,
	"interval.gt": foldPure, "interval.nsecs": foldPure,
	"interval.to_double": foldPure,
	"addr.family":        foldPure, "net.family": foldPure, "net.length": foldPure,
	"port.protocol": foldPure, "port.number": foldPure,
	"enum.to_int": foldPure, "bitset.set": foldPure, "bitset.clear": foldPure,
	"bitset.has": foldPure, "tuple.index": foldPure, "tuple.length": foldPure,
}

// constFold replaces pure instructions whose operands are all constants
// with a constant assignment, and if.else on a constant condition with an
// unconditional jump.
func constFold(fn *CompiledFunc, st *OptStats) {
	for pc := range fn.Code {
		in := &fn.Code[pc]
		if in.op == "if.else" && len(in.srcs) == 1 && in.srcs[0].kind == srcConst {
			t := in.t2
			if values.IsTruthy(in.srcs[0].val) {
				t = in.t1
			}
			fn.Code[pc] = Instr{op: "jump", opID: internOp("jump"), exec: execJump, t1: t}
			st.Folded++
			continue
		}
		fk := foldable[in.op]
		if fk == foldNone || in.d.kind == srcNone || len(in.srcs) == 0 || !allConst(in.srcs) {
			continue
		}
		v, ok := evalConst(in, fk)
		if !ok {
			continue
		}
		fn.Code[pc] = Instr{op: "assign", opID: internOp("assign"), exec: execAssign,
			d: in.d, srcs: []src{{kind: srcConst, val: v}}, t1: in.t1}
		st.Folded++
	}
}

func allConst(srcs []src) bool {
	for i := range srcs {
		if srcs[i].kind != srcConst {
			return false
		}
	}
	return true
}

func evalConst(in *Instr, fk foldKind) (values.Value, bool) {
	switch fk {
	case foldIntBin:
		fn, ok := in.aux.(func(x, y int64) int64)
		if !ok || len(in.srcs) != 2 {
			return values.Nil, false
		}
		return values.Int(fn(in.srcs[0].val.AsInt(), in.srcs[1].val.AsInt())), true
	case foldIntCmp:
		fn, ok := in.aux.(func(x, y int64) bool)
		if !ok || len(in.srcs) != 2 {
			return values.Nil, false
		}
		return values.Bool(fn(in.srcs[0].val.AsInt(), in.srcs[1].val.AsInt())), true
	case foldEqual:
		if len(in.srcs) != 2 {
			return values.Nil, false
		}
		return values.Bool(values.Equal(in.srcs[0].val, in.srcs[1].val)), true
	case foldUnequal:
		if len(in.srcs) != 2 {
			return values.Nil, false
		}
		return values.Bool(!values.Equal(in.srcs[0].val, in.srcs[1].val)), true
	case foldNetHas:
		if len(in.srcs) != 2 {
			return values.Nil, false
		}
		return values.Bool(in.srcs[0].val.NetContains(in.srcs[1].val)), true
	case foldPure:
		fn, ok := in.aux.(simpleFn)
		if !ok {
			return values.Nil, false
		}
		args := make([]values.Value, len(in.srcs))
		for i := range in.srcs {
			args[i] = in.srcs[i].val
		}
		v, err := fn(nil, args)
		if err != nil {
			return values.Nil, false // raises at runtime; leave it alone
		}
		return v, true
	}
	return values.Nil, false
}

// finalTarget follows chains of unconditional jumps starting at t. Cycles
// (empty infinite loops) terminate via the hop bound.
func finalTarget(code []Instr, t int) int {
	for hops := 0; hops <= len(code); hops++ {
		if t < 0 || t >= len(code) || code[t].op != "jump" {
			return t
		}
		nt := code[t].t1
		if nt == t {
			return t
		}
		t = nt
	}
	return t
}

// threadJumps redirects every control edge that lands on an unconditional
// jump to the jump's final destination. t1 of a straight-line instruction
// is its fallthrough edge, so this also short-circuits "fall into a jump".
func threadJumps(fn *CompiledFunc, st *OptStats) {
	code := fn.Code
	retarget := func(t int) int {
		ft := finalTarget(code, t)
		if ft != t {
			st.Threaded++
		}
		return ft
	}
	for pc := range code {
		in := &code[pc]
		switch {
		case in.op == "return.void" || in.op == "return.result":
			// t1 unused.
		case isBranch(in):
			in.t1 = retarget(in.t1)
			in.t2 = retarget(in.t2)
		case in.op == "switch":
			in.t1 = retarget(in.t1)
			tbl := in.aux.(*switchTable)
			for i := range tbl.targets {
				tbl.targets[i] = retarget(tbl.targets[i])
			}
		default:
			in.t1 = retarget(in.t1)
		}
	}
	for i := range fn.Handlers {
		fn.Handlers[i].target = retarget(fn.Handlers[i].target)
	}
}

// fuseCmpBr collapses a compare whose result falls through into an if.else
// on that same register into one fused compare-and-branch instruction. The
// boolean is still written to its destination register (other paths may
// jump directly to the if.else or read the flag later); the orphaned
// if.else survives at its pc unless unreachable-code elimination proves no
// one else targets it. Fused instructions raise at the compare's pc, so
// handler resolution is unchanged.
func fuseCmpBr(fn *CompiledFunc, st *OptStats) {
	code := fn.Code
	for pc := range code {
		in := &code[pc]
		mk := fuseMaker(in)
		if mk == nil || in.d.kind != srcReg {
			continue
		}
		t := in.t1
		if t < 0 || t >= len(code) || t == pc {
			continue
		}
		br := &code[t]
		if br.op != "if.else" || len(br.srcs) != 1 ||
			br.srcs[0].kind != srcReg || br.srcs[0].idx != in.d.idx {
			continue
		}
		in.exec = mk
		in.op += "+br"
		in.opID = internOp(in.op)
		in.t1, in.t2 = br.t1, br.t2
		st.Fused++
	}
}

// fuseSimple lists simpleFn-dispatched ops that produce a boolean and may
// be fused with a following branch. They keep their aux closure; the fused
// executor adds the branch after the regular evaluate-and-store.
var fuseSimple = map[string]bool{
	"double.lt": true, "double.gt": true, "double.leq": true,
	"double.geq": true, "int.ult": true, "int.ugt": true,
	"time.lt": true, "time.gt": true, "interval.lt": true,
	"interval.gt": true, "bool.and": true, "bool.or": true,
	"bool.not": true, "and": true, "or": true, "not": true,
	"iterator.eq": true, "iterator.at_end": true,
	"iterator.at_end_now": true, "struct.is_set": true, "bitset.has": true,
}

// fuseMaker picks the fused executor for in, or nil when in cannot fuse.
func fuseMaker(in *Instr) func(*Exec, *Frame, *Instr) int {
	switch in.op {
	case "int.eq", "int.lt", "int.gt", "int.leq", "int.geq":
		if _, ok := in.aux.(func(x, y int64) bool); !ok || len(in.srcs) != 2 {
			return nil
		}
		switch {
		case in.srcs[0].kind == srcReg && in.srcs[1].kind == srcReg:
			return execFusedIntCmpRR
		case in.srcs[0].kind == srcReg && in.srcs[1].kind == srcConst:
			return execFusedIntCmpRC
		default:
			return execFusedIntCmpGen
		}
	case "equal", "unequal":
		neg := in.op == "unequal"
		if len(in.srcs) != 2 {
			return nil
		}
		if !neg && in.srcs[0].kind == srcReg && in.srcs[1].kind == srcConst {
			return execFusedEqualRC
		}
		if neg {
			return execFusedUnequalGen
		}
		return execFusedEqualGen
	case "net.contains":
		if len(in.srcs) != 2 {
			return nil
		}
		return execFusedNetContainsGen
	case "set.exists":
		if len(in.srcs) != 2 {
			return nil
		}
		return execFusedSetExists
	case "map.exists":
		if len(in.srcs) != 2 {
			return nil
		}
		return execFusedMapExists
	default:
		if !fuseSimple[in.op] {
			return nil
		}
		if _, ok := in.aux.(simpleFn); !ok {
			return nil
		}
		switch len(in.srcs) {
		case 1:
			return execFusedSimple1
		case 2:
			return execFusedSimple2
		}
		return nil
	}
}

func (in *Instr) branch(b bool) int {
	if b {
		return in.t1
	}
	return in.t2
}

func execFusedIntCmpRR(ex *Exec, fr *Frame, in *Instr) int {
	b := in.aux.(func(x, y int64) bool)(
		int64(fr.R[in.srcs[0].idx].A), int64(fr.R[in.srcs[1].idx].A))
	fr.R[in.d.idx] = values.Bool(b)
	return in.branch(b)
}

func execFusedIntCmpRC(ex *Exec, fr *Frame, in *Instr) int {
	b := in.aux.(func(x, y int64) bool)(
		int64(fr.R[in.srcs[0].idx].A), int64(in.srcs[1].val.A))
	fr.R[in.d.idx] = values.Bool(b)
	return in.branch(b)
}

func execFusedIntCmpGen(ex *Exec, fr *Frame, in *Instr) int {
	b := in.aux.(func(x, y int64) bool)(
		ex.get(fr, &in.srcs[0]).AsInt(), ex.get(fr, &in.srcs[1]).AsInt())
	ex.put(fr, in.d, values.Bool(b))
	return in.branch(b)
}

func execFusedEqualRC(ex *Exec, fr *Frame, in *Instr) int {
	b := values.Equal(fr.R[in.srcs[0].idx], in.srcs[1].val)
	fr.R[in.d.idx] = values.Bool(b)
	return in.branch(b)
}

func execFusedEqualGen(ex *Exec, fr *Frame, in *Instr) int {
	b := values.Equal(ex.get(fr, &in.srcs[0]), ex.get(fr, &in.srcs[1]))
	ex.put(fr, in.d, values.Bool(b))
	return in.branch(b)
}

func execFusedUnequalGen(ex *Exec, fr *Frame, in *Instr) int {
	b := !values.Equal(ex.get(fr, &in.srcs[0]), ex.get(fr, &in.srcs[1]))
	ex.put(fr, in.d, values.Bool(b))
	return in.branch(b)
}

func execFusedNetContainsGen(ex *Exec, fr *Frame, in *Instr) int {
	b := ex.get(fr, &in.srcs[0]).NetContains(ex.get(fr, &in.srcs[1]))
	ex.put(fr, in.d, values.Bool(b))
	return in.branch(b)
}

func execFusedSetExists(ex *Exec, fr *Frame, in *Instr) int {
	s, err := asSet(ex.get(fr, &in.srcs[0]))
	if err != nil {
		return ex.raiseErr(err)
	}
	b := setExists(ex, fr, s, &in.srcs[1])
	ex.put(fr, in.d, values.Bool(b))
	return in.branch(b)
}

func execFusedMapExists(ex *Exec, fr *Frame, in *Instr) int {
	m, err := asMap(ex.get(fr, &in.srcs[0]))
	if err != nil {
		return ex.raiseErr(err)
	}
	b := mapExists(ex, fr, m, &in.srcs[1])
	ex.put(fr, in.d, values.Bool(b))
	return in.branch(b)
}

func execFusedSimple1(ex *Exec, fr *Frame, in *Instr) int {
	var args [1]values.Value
	args[0] = ex.get(fr, &in.srcs[0])
	v, err := in.aux.(simpleFn)(ex, args[:])
	if err != nil {
		return ex.raiseErr(err)
	}
	ex.put(fr, in.d, v)
	return in.branch(values.IsTruthy(v))
}

func execFusedSimple2(ex *Exec, fr *Frame, in *Instr) int {
	var args [2]values.Value
	args[0] = ex.get(fr, &in.srcs[0])
	args[1] = ex.get(fr, &in.srcs[1])
	v, err := in.aux.(simpleFn)(ex, args[:])
	if err != nil {
		return ex.raiseErr(err)
	}
	ex.put(fr, in.d, v)
	return in.branch(values.IsTruthy(v))
}

// removeUnreachable deletes instructions no control or exception path can
// reach, then repatches every pc-valued field: jump targets, switch
// tables, and handler ranges/targets. Handlers whose protected range ends
// up empty are dropped.
func removeUnreachable(fn *CompiledFunc, st *OptStats) {
	n := len(fn.Code)
	reach := make([]bool, n)
	var stack, buf []int
	push := func(pc int) {
		if pc >= 0 && pc < n && !reach[pc] {
			reach[pc] = true
			stack = append(stack, pc)
		}
	}
	drain := func() {
		for len(stack) > 0 {
			pc := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			buf = successors(fn, pc, buf[:0])
			for _, t := range buf {
				push(t)
			}
		}
	}
	push(0)
	drain()
	// A handler target becomes reachable once any instruction in its
	// protected range is; iterate to a fixpoint (handlers can chain).
	for changed := true; changed; {
		changed = false
		for i := range fn.Handlers {
			h := &fn.Handlers[i]
			if reach[h.target] {
				continue
			}
			for pc := h.start; pc < h.end && pc < n; pc++ {
				if reach[pc] {
					push(h.target)
					drain()
					changed = true
					break
				}
			}
		}
	}

	kept := 0
	for pc := 0; pc < n; pc++ {
		if reach[pc] {
			kept++
		}
	}
	if kept == n {
		return
	}
	// remap[pc] = number of kept instructions before pc, i.e. the new pc
	// of a kept instruction and the insertion point for range bounds.
	remap := make([]int, n+1)
	for pc, k := 0, 0; pc < n; pc++ {
		remap[pc] = k
		if reach[pc] {
			k++
		}
	}
	remap[n] = kept

	newCode := make([]Instr, 0, kept)
	for pc := 0; pc < n; pc++ {
		if !reach[pc] {
			continue
		}
		in := fn.Code[pc]
		switch {
		case in.op == "return.void" || in.op == "return.result":
			// t1 unused.
		case isBranch(&in):
			in.t1 = remap[in.t1]
			in.t2 = remap[in.t2]
		case in.op == "switch":
			in.t1 = remap[in.t1]
			tbl := in.aux.(*switchTable)
			for i := range tbl.targets {
				tbl.targets[i] = remap[tbl.targets[i]]
			}
		default:
			in.t1 = remap[in.t1]
		}
		newCode = append(newCode, in)
	}
	st.Removed += n - kept
	fn.Code = newCode

	newHandlers := fn.Handlers[:0]
	for _, h := range fn.Handlers {
		h.start, h.end = remap[h.start], remap[h.end]
		if h.start >= h.end || !reach[clampPC(h.target, n)] {
			continue
		}
		h.target = remap[h.target]
		newHandlers = append(newHandlers, h)
	}
	fn.Handlers = newHandlers
}

func clampPC(pc, n int) int {
	if pc < 0 {
		return 0
	}
	if pc >= n {
		return n - 1
	}
	return pc
}

// StaticInstrCount sums the post-optimization instruction counts of every
// distinct compiled function (hook bodies included).
func (p *Program) StaticInstrCount() int {
	seen := map[*CompiledFunc]bool{}
	total := 0
	count := func(fn *CompiledFunc) {
		if fn != nil && !seen[fn] {
			seen[fn] = true
			total += len(fn.Code)
		}
	}
	for _, fn := range p.Funcs {
		count(fn)
	}
	for _, bodies := range p.HookBodies {
		for _, fn := range bodies {
			count(fn)
		}
	}
	return total
}
