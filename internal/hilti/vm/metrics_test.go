package vm

import (
	"strings"
	"testing"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/rt/metrics"
	"hilti/internal/rt/values"
)

func metricsProg(t *testing.T) *Exec {
	t.Helper()
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.Int64T, ast.Param{Name: "x", Type: types.Int64T})
	y := fb.Local("y", types.Int64T)
	fb.Assign(y, "int.mul", ast.VarOp("x"), ast.IntOp(3))
	fb.Assign(y, "int.add", y, ast.IntOp(4))
	fb.Return(y)
	return mustLink(t, b.M)
}

func TestExecMetricsInvocationCounts(t *testing.T) {
	ex := metricsProg(t)
	m := ex.AttachMetrics()
	for i := 0; i < 5; i++ {
		if _, err := ex.Call("M::f", values.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Invocations.Load(); got != 0 {
		t.Fatalf("invocations flushed early: %d before Sync (batching broken?)", got)
	}
	m.Sync()
	if got := m.Invocations.Load(); got != 5 {
		t.Fatalf("invocations = %d, want 5", got)
	}
	in := m.Instructions.Load()
	if in == 0 {
		t.Fatalf("instructions not harvested")
	}
	// Steps() reports the last invocation; 5 identical calls → 5x.
	if want := 5 * ex.Steps(); in != want {
		t.Fatalf("instructions = %d, want %d (5 × %d)", in, want, ex.Steps())
	}
}

func TestExecMetricsBatchFlush(t *testing.T) {
	ex := metricsProg(t)
	m := ex.AttachMetrics()
	for i := 0; i < flushEvery+1; i++ {
		if _, err := ex.Call("M::f", values.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// The flushEvery-th invocation flushed; one more is still pending.
	if got := m.Invocations.Load(); got != flushEvery {
		t.Fatalf("invocations = %d after %d calls, want %d flushed", got, flushEvery+1, flushEvery)
	}
	m.Sync()
	if got := m.Invocations.Load(); got != flushEvery+1 {
		t.Fatalf("invocations = %d after Sync, want %d", got, flushEvery+1)
	}
	m.Sync() // idempotent with nothing pending
	if got := m.Invocations.Load(); got != flushEvery+1 {
		t.Fatalf("empty Sync changed the count: %d", got)
	}
}

func TestExecMetricsLimitTrips(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("spin", types.VoidT)
	fb.Block("top")
	fb.Jump("top")
	ex := mustLink(t, b.M)
	m := ex.AttachMetrics()
	ex.Limits = Limits{Instructions: 1000}
	_, err := ex.Call("M::spin")
	if err == nil || !strings.Contains(err.Error(), "ResourceExhausted") {
		t.Fatalf("want ResourceExhausted, got %v", err)
	}
	if m.LimitTrips.Load() == 0 {
		t.Fatalf("limit trip not counted")
	}
	if m.Uncaught.Load() != 1 {
		t.Fatalf("uncaught = %d, want 1", m.Uncaught.Load())
	}
}

func TestOpcodeProfile(t *testing.T) {
	ex := metricsProg(t)
	ex.EnableOpcodeProfile()
	if _, err := ex.Call("M::f", values.Int(2)); err != nil {
		t.Fatal(err)
	}
	prof := ex.OpcodeProfile()
	total := uint64(0)
	for _, n := range prof {
		total += n
	}
	if total == 0 {
		t.Fatalf("opcode profile empty: %v", prof)
	}
	// Every instruction executed outside budget checkpoints is attributed.
	if steps := ex.Steps(); total != steps {
		t.Fatalf("profiled ops %d != steps %d (%v)", total, steps, prof)
	}
}

func TestPublishToEmitsSeries(t *testing.T) {
	ex := metricsProg(t)
	ex.EnableOpcodeProfile()
	reg := metrics.NewRegistry()
	ex.PublishTo(reg, "vm/test", "worker", "0")
	if _, err := ex.Call("M::f", values.Int(1)); err != nil {
		t.Fatal(err)
	}
	ex.Met.Sync()
	snap := reg.Snapshot()
	if snap[`hilti_vm_invocations_total{worker="0"}`] != 1 {
		t.Fatalf("invocations series missing: %v", snap)
	}
	if snap[`hilti_vm_instructions_total{worker="0"}`] == 0 {
		t.Fatalf("instructions series missing: %v", snap)
	}
	found := false
	for name := range snap {
		if strings.HasPrefix(name, "hilti_vm_op_executions_total{op=") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("opcode profile series missing: %v", snap)
	}
}

func TestExecMetricsDisabledIsInert(t *testing.T) {
	ex := metricsProg(t)
	// No AttachMetrics: counters must stay off and nothing may panic.
	if _, err := ex.Call("M::f", values.Int(1)); err != nil {
		t.Fatal(err)
	}
	if ex.Met != nil {
		t.Fatalf("Met must stay nil until attached")
	}
	if ex.OpcodeProfile() != nil {
		t.Fatalf("opcode profile must be nil when never enabled")
	}
}
