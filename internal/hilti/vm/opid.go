// Opcode-name interning: every distinct instruction name (including the
// fused and tier-2 superinstruction names minted after lowering) gets a
// small dense id, stamped onto each Instr at emit time. The always-on
// execution profile and the opcode-pair counters index flat arrays by
// these ids, which is what makes them cheap enough to leave enabled in
// production (one bounds check + one array increment per instruction
// instead of a map lookup on a string key).

package vm

import "sync"

// opIDUnknown is the id of instructions that were never stamped (hand-built
// test code); the interner reserves slot 0 for it so profile attribution of
// such instructions is explicit rather than colliding with a real opcode.
const opIDUnknown uint16 = 0

var opInterner = struct {
	sync.RWMutex
	byName map[string]uint16
	names  []string
}{
	byName: map[string]uint16{},
	names:  []string{"?"},
}

// internOp returns the dense id for an opcode name, assigning one on first
// use. Linking is the only hot caller and is not performance-critical; the
// execution fast path only ever reads the stamped id.
func internOp(name string) uint16 {
	opInterner.RLock()
	id, ok := opInterner.byName[name]
	opInterner.RUnlock()
	if ok {
		return id
	}
	opInterner.Lock()
	defer opInterner.Unlock()
	if id, ok = opInterner.byName[name]; ok {
		return id
	}
	if len(opInterner.names) > 0xfffe {
		return opIDUnknown // id space exhausted; profile as unknown
	}
	id = uint16(len(opInterner.names))
	opInterner.names = append(opInterner.names, name)
	opInterner.byName[name] = id
	return id
}

// opName resolves an interned id back to its opcode name.
func opName(id uint16) string {
	opInterner.RLock()
	defer opInterner.RUnlock()
	if int(id) < len(opInterner.names) {
		return opInterner.names[id]
	}
	return "?"
}

// internedOpCount returns the number of interned opcode names (including the
// reserved unknown slot); used to size profile arrays.
func internedOpCount() int {
	opInterner.RLock()
	defer opInterner.RUnlock()
	return len(opInterner.names)
}
