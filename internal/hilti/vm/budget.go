// Execution budgets: per-invocation instruction limits and wall-clock
// deadlines, enforced inside the dispatch loop.
//
// The paper's safety model (§3) makes illegal operations raise catchable
// exceptions rather than crash the host; budgets extend that guarantee to
// non-termination. A buggy or adversarial program that would otherwise spin
// forever inside Exec raises Hilti::ResourceExhausted through the ordinary
// handler machinery instead — host applications catch it like any other
// exception, and HILTI code itself can handle it with try/catch. The check
// is a single counter increment and compare per instruction; the expensive
// wall-clock read is amortized over deadlineCheckEvery instructions, the
// way Deegen-style VMs keep guard machinery out of the dispatch fast path.
package vm

import "time"

// ExcResourceExhausted is raised when an invocation exceeds its instruction
// budget or wall-clock deadline.
const ExcResourceExhausted = "Hilti::ResourceExhausted"

const (
	// deadlineCheckEvery bounds how often the dispatch loop reads the
	// wall clock when a deadline is armed.
	deadlineCheckEvery = 4096
	// budgetGrace is the extra allotment granted after each
	// ResourceExhausted raise so catch handlers can unwind; a handler
	// that keeps looping trips the check again and propagates outward.
	budgetGrace = 4096
	// noCheck disables budget checkpoints entirely.
	noCheck = ^uint64(0)
)

// Limits bounds one top-level invocation (a Call/CallFn from the host, or
// a fiber-backed call across all of its resumes).
type Limits struct {
	// Instructions caps the number of VM instructions executed
	// (0 = unlimited). The count accumulates across a fiber's resumes.
	Instructions uint64
	// Deadline caps wall-clock execution time (0 = none). For
	// fiber-backed calls the deadline re-arms on every resume, so time
	// spent suspended waiting for input does not count.
	Deadline time.Duration
}

// budgetState is the armed-budget portion of an Exec, saved and restored
// around fiber resumes so interleaved suspended calls (one per connection)
// each account against their own invocation.
type budgetState struct {
	steps      uint64
	nextCheck  uint64
	instrLimit uint64
	deadline   time.Time
	vmDepth    int
}

// freshBudget is the state of an Exec with nothing armed.
func freshBudget() budgetState {
	return budgetState{nextCheck: noCheck, instrLimit: noCheck}
}

// armBudget resets the accounting for a new top-level invocation.
func (ex *Exec) armBudget() {
	ex.budget.steps = 0
	ex.budget.instrLimit = noCheck
	ex.budget.deadline = time.Time{}
	if ex.Limits.Instructions > 0 {
		ex.budget.instrLimit = ex.Limits.Instructions
	}
	if ex.Limits.Deadline > 0 {
		ex.budget.deadline = time.Now().Add(ex.Limits.Deadline)
	}
	ex.scheduleNextCheck()
}

// rearmDeadline refreshes the wall-clock deadline of an in-flight
// invocation; called when a suspended fiber resumes.
func (ex *Exec) rearmDeadline() {
	if ex.budget.vmDepth > 0 && ex.Limits.Deadline > 0 {
		ex.budget.deadline = time.Now().Add(ex.Limits.Deadline)
		ex.scheduleNextCheck()
	}
}

// scheduleNextCheck computes the step count at which the dispatch loop
// next leaves the fast path.
func (ex *Exec) scheduleNextCheck() {
	next := ex.budget.instrLimit
	if !ex.budget.deadline.IsZero() {
		if c := ex.budget.steps + deadlineCheckEvery; c < next {
			next = c
		}
	}
	ex.budget.nextCheck = next
}

// swapBudget exchanges the Exec's budget state; used by Resumable so each
// suspended call owns its own accounting.
func (ex *Exec) swapBudget(bs budgetState) budgetState {
	old := ex.budget
	ex.budget = bs
	return old
}

// checkBudget runs at a checkpoint: raise ResourceExhausted if a limit is
// exceeded, otherwise schedule the next checkpoint and retry the current
// instruction. Each raise grants a grace allotment so an in-language
// handler can unwind; repeated exhaustion propagates out of the handler.
func (ex *Exec) checkBudget() int {
	if ex.budget.steps >= ex.budget.instrLimit {
		ex.budget.instrLimit += budgetGrace
		ex.scheduleNextCheck()
		if ex.Met != nil {
			ex.Met.LimitTrips.Inc()
		}
		return ex.raise(ExcResourceExhausted, "instruction budget exceeded")
	}
	if !ex.budget.deadline.IsZero() && time.Now().After(ex.budget.deadline) {
		ex.budget.deadline = time.Now().Add(budgetGrace * time.Microsecond)
		ex.scheduleNextCheck()
		if ex.Met != nil {
			ex.Met.LimitTrips.Inc()
		}
		return ex.raise(ExcResourceExhausted, "execution deadline exceeded")
	}
	ex.scheduleNextCheck()
	return pcRetry
}

// Steps returns the number of instructions executed by the current (or
// most recent) budgeted invocation; diagnostic only.
func (ex *Exec) Steps() uint64 { return ex.budget.steps }
