// Tier-2 execution: profile-guided re-lowering of hot functions.
//
// The interpreter's baseline (tier-1) code pays three taxes the paper's
// LLVM-compiled prototype does not: every scalar lives in a 24-byte boxed
// values.Value, every instruction is a separate indirect dispatch, and
// every instruction runs a budget check. Tier-2 removes all three for the
// code shapes that dominate network-analysis workloads, following the
// Deegen recipe (runtime profiles + an existing optimizer pipeline derive
// a faster second tier from the interpreter spec):
//
//   - Unboxed slots: statically-typed int/bool registers are re-homed into
//     a flat []int64 slot file (Frame.I); their instructions are rewritten
//     to slot executors that never touch values.Value. Values escape back
//     to boxes only at host-call and container boundaries (any register an
//     unsupported instruction touches simply stays boxed).
//   - Superinstructions: adjacent instruction pairs measured hot by the
//     always-on opcode-pair profile (metrics.go) are fused into a single
//     dispatch. Unlike tier-1's hand-picked cmp+br fusion, discovery is
//     data-driven; the orphaned second half stays at its pc so side
//     entries (jump targets, handler targets) still work.
//   - Inline caches: struct.get/struct.set sites cache (StructDef → field
//     index) and map sites cache the key's shape; a monomorphic hit skips
//     the by-name map lookup. Any shape change demotes the function back
//     to tier-1 (see demoteTier2).
//   - Verified regions (bound.go): straight-line runs and provably-bounded
//     counted loops execute in an inner loop that elides the
//     per-instruction budget check, charging the exact executed count at
//     region exit against a statically-proven bound (the K2 idea: a
//     proved termination bound makes runtime guards redundant).
//
// Tier-2 code is pc-identical to tier-1 code: only the exec pointers,
// operand kinds, and aux payloads differ, never the instruction layout.
// That single invariant is what keeps promotion transparent — exception
// handler ranges, fiber suspend/resume, checkpoint/WAL replay, and the
// disassembler all address the same pcs in either tier. Promotion is
// published atomically per function and picked up at the next activation;
// an activation in flight finishes on whichever code array it entered
// with.

package vm

import (
	"strings"

	"hilti/internal/hilti/types"
	"hilti/internal/rt/values"
)

// srcSlot marks an operand (or destination) rewritten onto the unboxed
// slot file Frame.I. It never appears in tier-1 code, and tier-2 rewriting
// guarantees slot operands only reach slot-aware executors — the generic
// ex.get/ex.put never see one.
const srcSlot uint8 = 5

// Slot kinds: what a slotted register's int64 encodes.
const (
	slotNone uint8 = iota
	slotInt        // signed integer, value as-is
	slotBool       // boolean, 0 or 1
)

// Tier states for CompiledFunc.tierState.
const (
	tierNone    int32 = iota // never promoted
	tierActive               // tier-2 code built (and normally published)
	tierDemoted              // demoted after an IC shape change; re-promotable with widened ICs
	tierMega                 // a widened IC overflowed too: permanently tier-1
)

// icWays is the shape capacity of a widened (polymorphic) inline cache.
// First-generation tier-2 code uses monomorphic caches; a function demoted
// by a shape change is re-promoted with caches this wide, and only a site
// that outgrows even that is treated as megamorphic and demoted for good.
const icWays = 4

// tierDebug, when true, turns verified-region bound violations into panics
// instead of silent degradation to the outer loop; the bound-prover fuzz
// harness enables it as an oracle.
var tierDebug = false

// defaultTierThreshold is the invocation count at which EnableTiering
// promotes a function when no explicit threshold is given.
const defaultTierThreshold = 256

// tierCode is one function's published tier-2 code.
type tierCode struct {
	code       []Instr
	slotKind   []uint8 // per register: slotNone, slotInt, slotBool
	slotParams []int32 // slotted parameter registers, unboxed at entry
	stats      TierStats
}

// TierStats reports what tier-2 lowering did to one function.
type TierStats struct {
	SlotRegs int // registers re-homed to unboxed slots
	Slotted  int // instructions rewritten to slot executors
	Pairs    int // superinstruction pairs fused
	Overlay  int // overlay accesses specialized (planned decode or fused compare)
	ICs      int // inline caches installed
	WideICs  int // of those, widened to icWays shapes (re-promotion builds)
	Regions  int // verified regions formed (loops included)
	Verified int // instructions covered by verified regions
	Loops    int // counted loops with a proven iteration bound
}

// Tier2Stats returns the specialization statistics of fn's current tier-2
// code; ok is false while the function runs tier-1 code.
func (fn *CompiledFunc) Tier2Stats() (TierStats, bool) {
	if tc := fn.tier2.Load(); tc != nil {
		return tc.stats, true
	}
	return TierStats{}, false
}

// tierConfig controls which tier-2 transformations buildTier2 applies.
type tierConfig struct {
	pairs   bool
	regions bool
	// pairMin gates pair fusion on the measured pair count when a profile
	// is supplied; with a nil profile every safe pair is fused (the
	// deterministic eager -O2 path).
	pairMin uint64
	// wideICs installs icWays-way polymorphic inline caches instead of
	// monomorphic ones — the re-promotion configuration.
	wideICs bool
}

// --- promotion and demotion --------------------------------------------------

// tiering is the per-Exec promotion state: a dense per-function invocation
// counter (indexed by CompiledFunc.ID) plus the threshold. One array
// increment per activation — cheap enough to stay on wherever enabled.
type tiering struct {
	threshold uint32
	counts    []uint32
}

// EnableTiering turns on runtime tier-2 promotion for this Exec: every
// function activation bumps a per-function counter, and a function
// crossing threshold invocations is re-lowered to tier-2 code, guided by
// this Exec's opcode-pair profile when EnableOpcodeProfile is on.
// threshold <= 0 selects the default. Promotion is program-wide: other
// Execs sharing the Program pick up the published tier at their next
// activation. For deterministic ahead-of-time tiering use OptLevel 2
// instead (Options{OptLevel: 2} or hilti's O2).
func (ex *Exec) EnableTiering(threshold int) {
	if threshold <= 0 {
		threshold = defaultTierThreshold
	}
	if ex.tiering == nil {
		ex.tiering = &tiering{threshold: uint32(threshold)}
	}
}

func (t *tiering) observe(fn *CompiledFunc, prof *opProfile) {
	if st := fn.tierState.Load(); st != tierNone && st != tierDemoted {
		return
	}
	id := fn.ID
	if id < 0 {
		return
	}
	if id >= len(t.counts) {
		grown := make([]uint32, id+16)
		copy(grown, t.counts)
		t.counts = grown
	}
	if t.counts[id]++; t.counts[id] >= t.threshold {
		t.counts[id] = 0 // a later demotion re-arms a full warm-up window
		promoteTier2(fn, prof)
	}
}

// promoteTier2 builds and publishes tier-2 code for fn. The CAS makes the
// build single-winner when several Execs race on a shared Program; the
// build itself only reads fn's immutable tier-1 code. A first promotion
// installs monomorphic inline caches; re-promoting a demoted function
// (including an eager -O2 function a shape change knocked down) widens
// them to icWays shapes, so the one-off polymorphism that caused the
// demotion fits in cache the second time around. Functions that overflow
// even the wide caches land in tierMega and stay tier-1 forever.
func promoteTier2(fn *CompiledFunc, prof *opProfile) {
	wide := false
	if !fn.tierState.CompareAndSwap(tierNone, tierActive) {
		if !fn.tierState.CompareAndSwap(tierDemoted, tierActive) {
			return
		}
		wide = true
	}
	var pairMin uint64
	if prof != nil {
		pairMin = 1 // fuse pairs the profile actually observed
	}
	cfg := tierConfig{pairs: true, regions: true, pairMin: pairMin, wideICs: wide}
	if tc := buildTier2(fn, prof, cfg); tc != nil {
		fn.tier2.Store(tc)
	}
}

// demoteTier2 drops fn back to tier-1 code: an inline cache saw a second
// shape, so the monomorphic assumption tier-2 specialized on does not hold
// for this function. Activations already inside tier-2 code finish there
// (the ICs keep working, just slower); new activations load tier-1 code.
// The function stays re-promotable — if it runs hot again under tiering it
// comes back with widened caches. The CAS keeps a stale activation's late
// demotion from clobbering a newer generation's state (tierMega, or a
// re-promotion that already replaced the code this IC belongs to).
func demoteTier2(fn *CompiledFunc) {
	if fn.tierState.CompareAndSwap(tierActive, tierDemoted) {
		fn.tier2.Store(nil)
	}
}

// demoteTier2Mega drops fn to tier-1 permanently: a widened inline cache
// overflowed (or hit a shape no cache can express), so the site is
// megamorphic and another rebuild would just thrash.
func demoteTier2Mega(fn *CompiledFunc) {
	fn.tierState.Store(tierMega)
	fn.tier2.Store(nil)
}

// --- tier-2 lowering ---------------------------------------------------------

// buildTier2 derives tier-2 code from fn's current (tier-1, usually
// O1-optimized) code. fn itself is never mutated.
func buildTier2(fn *CompiledFunc, prof *opProfile, cfg tierConfig) *tierCode {
	if len(fn.Code) == 0 {
		return nil
	}
	tc := &tierCode{code: append([]Instr(nil), fn.Code...)}
	if kind := slotPlan(fn); kind != nil {
		tc.slotKind = kind
		for r := 0; r < fn.NParams && r < len(kind); r++ {
			if kind[r] != slotNone {
				tc.slotParams = append(tc.slotParams, int32(r))
			}
		}
		for _, k := range kind {
			if k != slotNone {
				tc.stats.SlotRegs++
			}
		}
		respecialize(tc)
	}
	installICs(tc, fn, cfg.wideICs)
	// Loop proving must see the un-fused instruction stream; the proofs
	// stay valid across pair fusion because fusion preserves every pc's
	// entry semantics (orphans) and only ever lowers the executed count.
	var loops []loopRegion
	if cfg.regions {
		loops = proveLoops(tc.code, fn.Handlers)
	}
	if cfg.pairs {
		fuseOverlayPairs(tc, fn.Handlers, prof, cfg.pairMin, loops)
		fusePairs(tc, fn.Handlers, prof, cfg.pairMin, loops)
	}
	// Remaining overlay.get sites (including pair orphans) still get the
	// planned inline decoder — a strength reduction, not a fusion.
	specializeOverlayGets(tc)
	if cfg.regions {
		formRegions(tc, fn.Handlers, loops)
	}
	return tc
}

// --- unboxed slot classification ---------------------------------------------

// slotPlan decides which registers live unboxed under tier-2. Start from
// every statically int/bool-typed register, then iterate to a fixpoint
// dropping any register touched by an instruction that has no slot-aware
// lowering (calls, containers, ctor operands, host boundaries): those
// registers stay boxed, which is the "escape at boundaries" rule. Returns
// nil when nothing qualifies.
func slotPlan(fn *CompiledFunc) []uint8 {
	if len(fn.RegTypes) == 0 {
		return nil
	}
	kind := make([]uint8, fn.NRegs)
	any := false
	for r := 0; r < fn.NRegs && r < len(fn.RegTypes); r++ {
		t := fn.RegTypes[r]
		if t == nil {
			continue
		}
		switch t.Kind {
		case types.Int:
			kind[r], any = slotInt, true
		case types.Bool:
			kind[r], any = slotBool, true
		}
	}
	if !any {
		return nil
	}
	for changed := true; changed; {
		changed = false
		for pc := range fn.Code {
			in := &fn.Code[pc]
			if !touchesSlot(in, kind) || slotCompatible(in, kind, fn.RegTypes) {
				continue
			}
			if dropSlotRegs(in, kind) {
				changed = true
			}
		}
	}
	any = false
	for _, k := range kind {
		if k != slotNone {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	return kind
}

func regSlot(kind []uint8, idx int32) uint8 {
	if int(idx) < len(kind) {
		return kind[idx]
	}
	return slotNone
}

func srcTouchesSlot(s *src, kind []uint8) bool {
	switch s.kind {
	case srcReg:
		return regSlot(kind, s.idx) != slotNone
	case srcCtor:
		for i := range s.subs {
			if srcTouchesSlot(&s.subs[i], kind) {
				return true
			}
		}
	}
	return false
}

func touchesSlot(in *Instr, kind []uint8) bool {
	if in.d.kind == srcReg && regSlot(kind, in.d.idx) != slotNone {
		return true
	}
	for i := range in.srcs {
		if srcTouchesSlot(&in.srcs[i], kind) {
			return true
		}
	}
	return false
}

// dropSlotRegs demotes every register in reaches back to boxed.
func dropSlotRegs(in *Instr, kind []uint8) bool {
	changed := false
	var dropSrc func(s *src)
	dropSrc = func(s *src) {
		switch s.kind {
		case srcReg:
			if regSlot(kind, s.idx) != slotNone {
				kind[s.idx] = slotNone
				changed = true
			}
		case srcCtor:
			for i := range s.subs {
				dropSrc(&s.subs[i])
			}
		}
	}
	if in.d.kind == srcReg && regSlot(kind, in.d.idx) != slotNone {
		kind[in.d.idx] = slotNone
		changed = true
	}
	for i := range in.srcs {
		dropSrc(&in.srcs[i])
	}
	return changed
}

// scalarOperand reports whether s can feed a slot executor expecting the
// given scalar domain: an unboxed slot of that kind, a constant of that
// kind, or a boxed register whose static type pins the domain (boxed
// int/bool registers store their payload in Value.A, so a raw read is
// exactly what tier-1's shape-specialized executors already do).
func scalarOperand(s *src, want uint8, kind []uint8, rty []*types.Type) bool {
	switch s.kind {
	case srcConst:
		if want == slotInt {
			return s.val.K == values.KindInt
		}
		return s.val.K == values.KindBool
	case srcReg:
		if k := regSlot(kind, s.idx); k != slotNone {
			return k == want
		}
		if int(s.idx) < len(rty) && rty[s.idx] != nil {
			k := rty[s.idx].Kind
			return (want == slotInt && k == types.Int) || (want == slotBool && k == types.Bool)
		}
	}
	return false
}

// slotCompatible reports whether in (which touches at least one slotted
// register) has a slot-aware executor for the current slot assignment.
func slotCompatible(in *Instr, kind []uint8, rty []*types.Type) bool {
	br := strings.HasSuffix(in.op, "+br")
	base := strings.TrimSuffix(in.op, "+br")
	switch base {
	case "assign":
		if br || len(in.srcs) != 1 {
			return false
		}
		s := &in.srcs[0]
		if in.d.kind == srcReg && regSlot(kind, in.d.idx) != slotNone {
			return scalarOperand(s, regSlot(kind, in.d.idx), kind, rty)
		}
		// Boxed destination (register, global, or discarded) fed from a
		// slot: the executor re-boxes by the slot's kind.
		return s.kind == srcReg && regSlot(kind, s.idx) != slotNone
	case "int.add", "int.sub", "int.mul":
		if _, ok := in.aux.(func(x, y int64) int64); !ok || len(in.srcs) != 2 {
			return false
		}
		return scalarOperand(&in.srcs[0], slotInt, kind, rty) &&
			scalarOperand(&in.srcs[1], slotInt, kind, rty)
	case "int.eq", "int.lt", "int.gt", "int.leq", "int.geq":
		if _, ok := in.aux.(func(x, y int64) bool); !ok || len(in.srcs) != 2 {
			return false
		}
		return scalarOperand(&in.srcs[0], slotInt, kind, rty) &&
			scalarOperand(&in.srcs[1], slotInt, kind, rty)
	case "equal", "unequal":
		if len(in.srcs) != 2 {
			return false
		}
		// Both operands must share one scalar domain; raw comparison then
		// matches values.Equal on same-kind scalars.
		return (scalarOperand(&in.srcs[0], slotInt, kind, rty) &&
			scalarOperand(&in.srcs[1], slotInt, kind, rty)) ||
			(scalarOperand(&in.srcs[0], slotBool, kind, rty) &&
				scalarOperand(&in.srcs[1], slotBool, kind, rty))
	case "bool.and", "bool.or", "and", "or":
		return len(in.srcs) == 2 &&
			scalarOperand(&in.srcs[0], slotBool, kind, rty) &&
			scalarOperand(&in.srcs[1], slotBool, kind, rty)
	case "bool.not", "not":
		return len(in.srcs) == 1 && scalarOperand(&in.srcs[0], slotBool, kind, rty)
	case "if.else":
		return !br && len(in.srcs) == 1 // condition slot is a bool: test != 0
	case "return.result":
		return !br && len(in.srcs) == 1 && in.srcs[0].kind == srcReg &&
			regSlot(kind, in.srcs[0].idx) != slotNone
	case "overlay.get":
		// Overlay fields decode into ints; only srcs[0] (the bytes rope)
		// exists and is never slotted, so only the destination matters.
		return !br && in.d.kind == srcReg && regSlot(kind, in.d.idx) == slotInt &&
			len(in.srcs) == 1 && !srcTouchesSlot(&in.srcs[0], kind)
	}
	return false
}

// respecialize rewrites every instruction touching a slotted register:
// slot operands get kind srcSlot, and the executor is swapped for the
// slot-aware variant (ops_scalar.go, ops_core.go, ops_runtime.go). The
// operand slice is copied first — it is shared with the tier-1 code.
func respecialize(tc *tierCode) {
	kind := tc.slotKind
	for pc := range tc.code {
		in := &tc.code[pc]
		if !touchesSlot(in, kind) {
			continue
		}
		in.srcs = append([]src(nil), in.srcs...)
		for i := range in.srcs {
			if s := &in.srcs[i]; s.kind == srcReg && regSlot(kind, s.idx) != slotNone {
				s.kind = srcSlot
			}
		}
		if in.d.kind == srcReg && regSlot(kind, in.d.idx) != slotNone {
			in.d.kind = srcSlot
		}
		br := strings.HasSuffix(in.op, "+br")
		switch strings.TrimSuffix(in.op, "+br") {
		case "assign":
			if in.d.kind == srcSlot {
				in.exec = execSlotAssign
			} else {
				in.t2 = int(kind[in.srcs[0].idx]) // slot kind, for re-boxing
				in.exec = execSlotAssignBox
			}
		case "int.add", "int.sub", "int.mul":
			in.exec = execSlotIntBin
		case "int.eq", "int.lt", "int.gt", "int.leq", "int.geq":
			if br {
				in.exec = execSlotIntCmpBr
			} else {
				in.exec = execSlotIntCmp
			}
		case "equal":
			if br {
				in.exec = execSlotEqualBr
			} else {
				in.exec = execSlotEqual
			}
		case "unequal":
			if br {
				in.exec = execSlotUnequalBr
			} else {
				in.exec = execSlotUnequal
			}
		case "bool.and", "and":
			if br {
				in.exec = execSlotBoolAndBr
			} else {
				in.exec = execSlotBoolAnd
			}
		case "bool.or", "or":
			if br {
				in.exec = execSlotBoolOrBr
			} else {
				in.exec = execSlotBoolOr
			}
		case "bool.not", "not":
			if br {
				in.exec = execSlotBoolNotBr
			} else {
				in.exec = execSlotBoolNot
			}
		case "if.else":
			in.exec = execSlotIfElse
		case "return.result":
			in.t2 = int(kind[in.srcs[0].idx]) // slot kind, for re-boxing
			in.exec = execSlotReturn
		case "overlay.get":
			in.exec = execOverlayGetSlot // t2 keeps the field index
		}
		tc.stats.Slotted++
	}
}

// slotArg reads an int64 operand of a slot executor: an unboxed slot, a
// constant, or a boxed register whose static scalar type the classifier
// verified (payload in Value.A, like tier-1's fast paths).
func slotArg(fr *Frame, s *src) int64 {
	switch s.kind {
	case srcSlot:
		return fr.I[s.idx]
	case srcReg:
		return int64(fr.R[s.idx].A)
	default:
		return int64(s.val.A)
	}
}

// putSlotInt writes an integer result to a slot or re-boxes it.
func putSlotInt(ex *Exec, fr *Frame, d dst, x int64) {
	switch d.kind {
	case srcSlot:
		fr.I[d.idx] = x
	case srcReg:
		fr.R[d.idx] = values.Int(x)
	case srcGlobal:
		ex.Globals[d.idx] = values.Int(x)
	}
}

// putSlotBool writes a boolean result to a slot or re-boxes it.
func putSlotBool(ex *Exec, fr *Frame, d dst, b bool) {
	switch d.kind {
	case srcSlot:
		var x int64
		if b {
			x = 1
		}
		fr.I[d.idx] = x
	case srcReg:
		fr.R[d.idx] = values.Bool(b)
	case srcGlobal:
		ex.Globals[d.idx] = values.Bool(b)
	}
}

// boxSlot re-boxes a slot value by its kind.
func boxSlot(x int64, kind uint8) values.Value {
	if kind == slotBool {
		return values.Bool(x != 0)
	}
	return values.Int(x)
}

// --- discovered superinstructions --------------------------------------------

// pairAux carries the two fused halves of a superinstruction. The copies
// keep their original absolute targets, so the fused executor can detect
// "a did not fall through" purely by comparing against b's pc.
type pairAux struct {
	a, b Instr
	bpc  int
}

func (pa *pairAux) orphanPC() int { return pa.bpc }

// execPair dispatches a fused instruction pair: run a; if it fell through
// to b's pc, run b in the same dispatch. Any raise, retry, or branch out
// of a propagates unchanged (and attributes to the pair's pc, which the
// fusion rules made handler-equivalent to both halves' pcs).
//
// Budget accounting stays exact: the outer dispatch charged one step for
// a, so b charges its own step here, mirroring the dispatch loop's fast
// path. When b's step would reach a checkpoint the pair bails to the
// orphaned b instead, so Hilti::ResourceExhausted fires at exactly the
// same instruction — with the same step count — as under tier-1.
func execPair(ex *Exec, fr *Frame, in *Instr) int {
	pa := in.aux.(*pairAux)
	if t := pa.a.exec(ex, fr, &pa.a); t != pa.bpc {
		return t
	}
	if ex.budget.steps+1 >= ex.budget.nextCheck {
		return pa.bpc
	}
	ex.budget.steps++
	return pa.b.exec(ex, fr, &pa.b)
}

// pairSafeOp reports whether an op may participate in a superinstruction:
// it must never suspend the fiber (a retry would re-run the first half)
// and never re-enter the dispatcher (calls, hooks). Raising is fine.
func pairSafeOp(op string) bool {
	op = strings.TrimSuffix(op, "+br")
	if i := strings.IndexByte(op, '+'); i >= 0 {
		return pairSafeOp(op[:i]) && pairSafeOp(op[i+1:])
	}
	switch op {
	case "assign", "if.else", "equal", "unequal", "and", "or", "not",
		"overlay.get", "struct.get", "struct.set", "struct.is_set",
		"struct.get_default", "struct.unset", "net.contains":
		return true
	}
	if i := strings.IndexByte(op, '.'); i > 0 {
		switch op[:i] {
		case "int", "double", "bool", "time", "interval", "addr", "port",
			"net", "enum", "bitset", "tuple", "string":
			return true
		}
	}
	return false
}

// fusePairs fuses adjacent (pc, pc+1) instruction pairs into one dispatch.
// Eligibility: the head falls through unconditionally to pc+1, both halves
// are pair-safe, both pcs have identical handler coverage (a raise from
// either half resolves at the pair's pc), and — when a profile is given —
// the pair was actually measured at least pairMin times. The second half
// stays at pc+1 as an orphan so branches and handlers targeting it keep
// working; unreachable orphans were already pruned at O1.
//
// A pc about to become a proven-loop region entry must never be a pair's
// tail: the pair would execute the orphan inline and continue past it, so
// the fall-through path would bypass the region — and with it the budget
// elision the proof paid for.
func fusePairs(tc *tierCode, hs []handler, prof *opProfile, pairMin uint64, loops []loopRegion) {
	regionEntry := make(map[int]bool, len(loops))
	for _, lr := range loops {
		regionEntry[lr.lo] = true
	}
	code := tc.code
	for pc := 0; pc+1 < len(code); pc++ {
		a, b := &code[pc], &code[pc+1]
		if isBranch(a) || a.t1 != pc+1 || !pairSafeOp(a.op) || regionEntry[pc+1] {
			continue
		}
		switch a.op {
		case "jump", "switch", "return.void", "return.result", "region":
			continue
		}
		if !pairSafeOp(b.op) {
			continue
		}
		switch b.op {
		case "jump", "switch", "return.void", "return.result", "region":
			continue
		}
		if !sameHandlers(hs, pc, pc+1) {
			continue
		}
		if prof != nil && prof.pairCount(a.opID, b.opID) < pairMin {
			continue
		}
		fused := Instr{
			exec: execPair,
			op:   a.op + "+" + b.op,
			d:    a.d,
			srcs: a.srcs,
			aux:  &pairAux{a: *a, b: *b, bpc: pc + 1},
			t1:   b.t1,
			t2:   b.t2,
		}
		fused.opID = internOp(fused.op)
		code[pc] = fused
		tc.stats.Pairs++
		pc++ // never chain into triples; the orphan at pc+1 stays intact
	}
}

// sameHandlers reports whether pcs p and q are covered by exactly the same
// exception handlers.
func sameHandlers(hs []handler, p, q int) bool {
	for i := range hs {
		if (p >= hs[i].start && p < hs[i].end) != (q >= hs[i].start && q < hs[i].end) {
			return false
		}
	}
	return true
}

// --- inline caches -----------------------------------------------------------

// installICs replaces struct field access and map lookups with
// inline-cached executors (ops_container.go) — monomorphic on the first
// build, icWays-way polymorphic when wide (a re-promotion). The caches
// live in the shared tier code, so hits benefit every Exec running the
// Program; outgrowing the cache demotes the whole function.
func installICs(tc *tierCode, fn *CompiledFunc, wide bool) {
	for pc := range tc.code {
		in := &tc.code[pc]
		switch in.op {
		case "struct.get":
			if len(in.srcs) == 2 && in.srcs[1].kind == srcConst &&
				in.srcs[1].val.K == values.KindString && in.d.kind != srcSlot {
				in.aux = &structIC{name: in.srcs[1].val.AsString(), fn: fn, wide: wide}
				in.exec = execStructGetIC
				tc.stats.ICs++
			}
		case "struct.set":
			if len(in.srcs) == 3 && in.srcs[1].kind == srcConst &&
				in.srcs[1].val.K == values.KindString &&
				in.srcs[2].kind != srcSlot {
				in.aux = &structIC{name: in.srcs[1].val.AsString(), fn: fn, wide: wide}
				in.exec = execStructSetIC
				tc.stats.ICs++
			}
		case "map.get":
			if len(in.srcs) == 2 && in.srcs[1].kind != srcCtor && in.srcs[1].kind != srcSlot {
				in.aux = &mapIC{fn: fn, wide: wide}
				in.exec = execMapGetIC
				tc.stats.ICs++
			}
		case "map.exists":
			if len(in.srcs) == 2 && in.srcs[1].kind != srcCtor && in.srcs[1].kind != srcSlot {
				in.aux = &mapIC{fn: fn, wide: wide}
				in.exec = execMapExistsIC
				tc.stats.ICs++
			}
		}
	}
	if wide {
		tc.stats.WideICs = tc.stats.ICs
	}
}
