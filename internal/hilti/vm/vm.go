// Package vm implements HILTI's compilation and execution backend: it
// lowers AST modules into linear register code and executes it on a
// threaded-code engine.
//
// The paper's prototype compiles HILTI into LLVM bitcode and then native
// machine code (§5). Go has no workable LLVM binding, so this backend
// substitutes the same pipeline with a different final stage: the "linker"
// (link.go) merges compilation units — laying out thread-local globals into
// a per-virtual-thread array and merging hook bodies across units, exactly
// the two jobs the paper gives its custom LLVM-level linker — and compile.go
// lowers every function into a flat instruction array whose elements carry
// pre-resolved register indices and a direct handler function pointer.
// Execution walks that array, calling into the runtime library (internal/rt)
// for the complex data types, which mirrors the paper's generated-code /
// C-runtime split.
//
// Other paper features reproduced here: explicit exception propagation with
// per-function handler tables (§5 notes HILTI "propagates exceptions up the
// stack with explicit return value checks"); a custom calling convention
// passing a per-thread context (the Exec) into every call; and transparent
// suspension — any runtime operation that would block on missing input
// yields the enclosing fiber and retries on resume, which is what makes
// generated parsers incremental without any parser-side state machine.
package vm

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"hilti/internal/hilti/types"
	"hilti/internal/rt/fiber"
	"hilti/internal/rt/filemgr"
	"hilti/internal/rt/hbytes"
	"hilti/internal/rt/hook"
	"hilti/internal/rt/profiler"
	"hilti/internal/rt/threads"
	"hilti/internal/rt/timer"
	"hilti/internal/rt/values"
)

// Sentinel program counters returned by instruction handlers.
const (
	pcDone  = -1 // function returned
	pcRaise = -2 // exception pending in Exec.Exc
)

// src is a pre-resolved operand source.
type src struct {
	kind uint8 // srcConst, srcReg, srcGlobal, srcCtor
	idx  int32
	val  values.Value
	subs []src // srcCtor: tuple elements
}

const (
	srcConst uint8 = iota
	srcReg
	srcGlobal
	srcNone
)

// dst is a pre-resolved assignment destination.
type dst struct {
	kind uint8 // srcReg, srcGlobal, srcNone
	idx  int32
}

// Instr is one lowered instruction.
type Instr struct {
	exec func(ex *Exec, fr *Frame, in *Instr) int
	op   string // source operation name; "+br"-suffixed for fused compare-and-branch
	opID uint16 // interned op (see opid.go), stamped at emit/rewrite time
	d    dst
	srcs []src
	aux  any
	// jump targets (patched after lowering). t1 is always a pc; t2 is a pc
	// only for branching ops (if.else, fused "+br") — overlay.get stores a
	// field index there, and tier-2 slot executors a slot kind (tier2.go).
	t1, t2 int
}

// handler is one try/catch region of a function.
type handler struct {
	start, end int // protected pc range [start, end)
	excReg     int32
	target     int
	excName    string // "" catches every exception type
}

// CompiledFunc is an executable function.
type CompiledFunc struct {
	Name     string
	NParams  int
	NRegs    int
	Result   *types.Type
	Code     []Instr
	Handlers []handler
	IsHook   bool
	HookPrio int

	// ID is the function's dense index within its Program, assigned at
	// link time; the tier-promotion counters are keyed by it.
	ID int
	// RegTypes records the static type of each declared register (params
	// then locals, indexed by register number). Registers allocated after
	// lowering (hidden exception slots) fall outside the slice and are
	// treated as untyped. Tier-2 slot classification reads this.
	RegTypes []*types.Type

	// tier2, when non-nil, is the specialized tier-2 code the dispatch
	// loop prefers (see tier2.go). It is published atomically so Execs on
	// other goroutines (a Program is shared across pipeline workers) pick
	// it up at their next invocation; an invocation in flight keeps
	// running whichever code array it loaded at entry.
	tier2     atomic.Pointer[tierCode]
	tierState atomic.Int32 // tierNone | tierActive | tierDemoted
}

// TierActive reports whether the function currently executes tier-2 code.
func (fn *CompiledFunc) TierActive() bool { return fn.tier2.Load() != nil }

// HostFunc is a Go function callable from HILTI code — the inverse of the
// generated C stubs: "HILTI code can invoke arbitrary C functions" (§3.4).
type HostFunc func(ex *Exec, args []values.Value) (values.Value, error)

// Program is a linked set of modules ready for execution.
type Program struct {
	Funcs       map[string]*CompiledFunc
	HookBodies  map[string][]*CompiledFunc
	GlobalCount int
	globalInits []globalInit
	Builtins    map[string]HostFunc
}

type globalInit struct {
	slot int32
	mk   func(ex *Exec) (values.Value, error)
}

// Frame is one function activation: a register file. Under tier-2 code, I
// holds the unboxed int64/bool slots of statically-typed scalar registers;
// a register promoted to a slot is dead in R for the whole activation (its
// readers and writers were all rewritten to the slot, see tier2.go).
type Frame struct {
	R   []values.Value
	I   []int64
	Ret values.Value
}

// enterTier prepares the frame for a tier-2 activation: size and zero the
// slot file, then unbox the slotted parameters (arguments always arrive
// boxed through the host calling convention).
func (fr *Frame) enterTier(tc *tierCode, nregs int) {
	if cap(fr.I) < nregs {
		fr.I = make([]int64, nregs)
	} else {
		fr.I = fr.I[:nregs]
		for i := range fr.I {
			fr.I[i] = 0
		}
	}
	for _, p := range tc.slotParams {
		fr.I[p] = int64(fr.R[p].A)
	}
}

// Exec is an execution context — the paper's per-virtual-thread context
// object (§5 "Runtime Model"): thread-local globals, timer managers,
// exception state, the current fiber, and handles to shared services.
// An Exec must only be used from one goroutine at a time.
type Exec struct {
	Prog    *Program
	Globals []values.Value
	Exc     *values.Exception

	Out      io.Writer
	Hooks    *hook.Registry
	Profs    *profiler.Registry
	Files    *filemgr.Mgr
	GlobalTM *timer.Mgr
	Sched    *threads.Scheduler
	HostFns  map[string]HostFunc
	FibPool  *fiber.Pool

	// Limits bounds every top-level invocation (see budget.go); the
	// zero value means unlimited. Change it only between invocations.
	Limits Limits

	// Met, when non-nil, receives execution counters (see metrics.go).
	// Harvesting happens at invocation boundaries, not per instruction, so
	// the dispatch loop stays uninstrumented.
	Met *ExecMetrics

	fib        *fiber.Fiber // current fiber, when running inside one
	freeFrames []*Frame
	budget     budgetState
	keyBuf     []byte // scratch for container-key encoding (see ctorKey)
	opProf     *opProfile
	tiering    *tiering // runtime tier-2 promotion, nil unless EnableTiering
}

// NewExec creates an execution context for prog and runs global
// initializers (container globals are instantiated, initializer constants
// assigned).
func NewExec(prog *Program) (*Exec, error) {
	ex := &Exec{
		Prog:     prog,
		Globals:  make([]values.Value, prog.GlobalCount),
		Out:      os.Stdout,
		Hooks:    hook.NewRegistry(),
		Profs:    profiler.NewRegistry(),
		GlobalTM: timer.NewMgr(),
		HostFns:  map[string]HostFunc{},
		FibPool:  fiber.NewPool(256),
		budget:   freshBudget(),
	}
	for _, gi := range prog.globalInits {
		v, err := gi.mk(ex)
		if err != nil {
			return nil, err
		}
		ex.Globals[gi.slot] = v
	}
	return ex, nil
}

// RegisterHost makes a Go function callable from HILTI code under name.
func (ex *Exec) RegisterHost(name string, fn HostFunc) { ex.HostFns[name] = fn }

// Fn looks up a compiled function by name.
func (p *Program) Fn(name string) *CompiledFunc { return p.Funcs[name] }

// get reads an operand source.
func (ex *Exec) get(fr *Frame, s *src) values.Value {
	switch s.kind {
	case srcReg:
		return fr.R[s.idx]
	case srcGlobal:
		return ex.Globals[s.idx]
	case srcCtor:
		return ex.getCtor(fr, s)
	default:
		return s.val
	}
}

// put writes an instruction destination.
func (ex *Exec) put(fr *Frame, d dst, v values.Value) {
	switch d.kind {
	case srcReg:
		fr.R[d.idx] = v
	case srcGlobal:
		ex.Globals[d.idx] = v
	}
}

// maxFreeFrames bounds the per-Exec frame free list.
const maxFreeFrames = 64

// newFrame takes a frame from the free list, sized for fn. Pooled frames
// are zeroed by freeFrame, so reuse only needs to (re)size the register
// slice: growing allocates a zeroed slice, shrinking/extending within
// capacity exposes registers freeFrame already cleared.
func (ex *Exec) newFrame(fn *CompiledFunc) *Frame {
	n := len(ex.freeFrames)
	var fr *Frame
	if n > 0 {
		fr = ex.freeFrames[n-1]
		ex.freeFrames = ex.freeFrames[:n-1]
		if cap(fr.R) < fn.NRegs {
			fr.R = make([]values.Value, fn.NRegs)
		} else {
			fr.R = fr.R[:fn.NRegs]
		}
	} else {
		fr = &Frame{R: make([]values.Value, fn.NRegs)}
	}
	return fr
}

// freeFrame returns a frame to the pool. Registers are cleared over the
// slice's full capacity first so that pooled frames do not pin heap
// objects (byte ropes, structs) of completed calls via Value.O, and so
// that newFrame can hand them out without re-clearing.
func (ex *Exec) freeFrame(fr *Frame) {
	if len(ex.freeFrames) >= maxFreeFrames {
		return
	}
	r := fr.R[:cap(fr.R)]
	for i := range r {
		r[i] = values.Value{}
	}
	fr.Ret = values.Nil
	ex.freeFrames = append(ex.freeFrames, fr)
}

// raise records an exception and signals the dispatch loop.
func (ex *Exec) raise(name, msg string) int {
	ex.Exc = &values.Exception{Name: name, Msg: msg}
	return pcRaise
}

// raiseErr maps a runtime error onto a HILTI exception. Would-block errors
// suspend the current fiber and request an instruction retry instead.
func (ex *Exec) raiseErr(err error) int {
	switch err {
	case hbytes.ErrWouldBlock:
		if ex.fib != nil {
			if ex.Met != nil {
				ex.Met.FiberSuspends.Inc()
			}
			ex.fib.Yield(ErrWouldBlock)
			return pcRetry
		}
		return ex.raise("Hilti::WouldBlock", "operation needs more input")
	case hbytes.ErrOutOfRange:
		return ex.raise("Hilti::ValueError", err.Error())
	default:
		if e, ok := err.(*values.Exception); ok {
			ex.Exc = e
			return pcRaise
		}
		return ex.raise("Hilti::RuntimeError", err.Error())
	}
}

// pcRetry asks the dispatch loop to re-execute the current instruction
// (used after a fiber resume made more input available).
const pcRetry = -3

// ErrWouldBlock is yielded to the host when a parse suspends for input.
var ErrWouldBlock = fmt.Errorf("hilti: would block")

// run executes fn with the given frame. On error the exception is left in
// ex.Exc and ok is false.
func (ex *Exec) run(fn *CompiledFunc, fr *Frame) (values.Value, bool) {
	// The code array is chosen once per activation: a tier-2 promotion
	// published mid-flight (even across a fiber suspend/resume of this very
	// activation) never switches a running frame between code arrays — the
	// two tiers are pc-identical, but slot state only exists under tier-2.
	code := fn.Code
	if tc := fn.tier2.Load(); tc != nil {
		code = tc.code
		fr.enterTier(tc, fn.NRegs)
	} else if ex.tiering != nil {
		ex.tiering.observe(fn, ex.opProf)
	}
	pc := 0
	prevOp := profNoPrev
	for pc >= 0 && pc < len(code) {
		cur := pc
		// Budget fast path: one increment and compare; nextCheck is
		// MaxUint64 when no limits are armed.
		if ex.budget.steps++; ex.budget.steps >= ex.budget.nextCheck {
			pc = ex.checkBudget()
		} else {
			if ex.opProf != nil {
				prevOp = ex.opProf.hit(code[cur].opID, prevOp)
			}
			pc = code[cur].exec(ex, fr, &code[cur])
		}
		switch pc {
		case pcRaise:
			h := fn.findHandler(cur, ex.Exc)
			if h == nil {
				return values.Nil, false
			}
			fr.R[h.excReg] = values.Value{K: values.KindException, O: ex.Exc}
			ex.Exc = nil
			pc = h.target
		case pcRetry:
			pc = cur
		}
	}
	return fr.Ret, true
}

func (fn *CompiledFunc) findHandler(pc int, exc *values.Exception) *handler {
	// Innermost (latest-added covering) handler wins.
	for i := len(fn.Handlers) - 1; i >= 0; i-- {
		h := &fn.Handlers[i]
		if pc >= h.start && pc < h.end &&
			(h.excName == "" || exc == nil || h.excName == exc.Name) {
			return h
		}
	}
	return nil
}

// Call invokes a compiled function with args, returning its result. This
// is the generated "C stub" path for host applications (§3.4): arguments
// are HILTI values, exceptions surface as Go errors.
func (ex *Exec) Call(name string, args ...values.Value) (values.Value, error) {
	fn := ex.Prog.Fn(name)
	if fn == nil {
		if hf, ok := ex.HostFns[name]; ok {
			return hf(ex, args)
		}
		if bf, ok := ex.Prog.Builtins[name]; ok {
			return bf(ex, args)
		}
		return values.Nil, fmt.Errorf("hilti: no function %q", name)
	}
	return ex.CallFn(fn, args...)
}

// CallFn invokes a compiled function directly.
func (ex *Exec) CallFn(fn *CompiledFunc, args ...values.Value) (values.Value, error) {
	if len(args) != fn.NParams {
		return values.Nil, fmt.Errorf("hilti: %s expects %d args, got %d", fn.Name, fn.NParams, len(args))
	}
	fr := ex.newFrame(fn)
	copy(fr.R, args)
	// A host-level call (depth 0) starts a fresh budgeted invocation;
	// re-entrant calls from host functions inherit the armed budget.
	if ex.budget.vmDepth == 0 {
		ex.armBudget()
	}
	ex.budget.vmDepth++
	ret, ok := ex.run(fn, fr)
	ex.budget.vmDepth--
	if ex.budget.vmDepth == 0 && ex.Met != nil {
		// One top-level invocation completed: harvest the step count the
		// budget machinery accumulated (across all nested calls, and for
		// fiber-backed calls across every resume since armBudget). The
		// harvest batches locally and flushes every flushEvery invocations.
		ex.Met.harvest(ex.budget.steps)
		if !ok {
			ex.Met.Uncaught.Inc()
		}
	}
	ex.freeFrame(fr)
	if !ok {
		exc := ex.Exc
		ex.Exc = nil
		return values.Nil, exc
	}
	return ret, nil
}

// RunHook executes all bodies of the named HILTI-level hook in priority
// order (plus any host-registered bodies in ex.Hooks).
func (ex *Exec) RunHook(name string, args ...values.Value) error {
	for _, body := range ex.Prog.HookBodies[name] {
		if _, err := ex.CallFn(body, args...); err != nil {
			return err
		}
	}
	if ex.Hooks != nil {
		ex.Hooks.Run(name, args)
	}
	return nil
}

// --- Fibers: transparent incremental execution -------------------------------

// FiberCall starts fn inside a fresh fiber so that any would-block
// condition suspends rather than failing. It returns a Resumable that the
// host drives: the paper's incremental-parsing workflow (§3.2).
func (ex *Exec) FiberCall(fn *CompiledFunc, args ...values.Value) *Resumable {
	r := &Resumable{ex: ex, budget: freshBudget()}
	r.fib = ex.FibPool.Get(func(f *fiber.Fiber, _ any) (any, error) {
		v, err := ex.CallFn(fn, args...)
		if err != nil {
			return nil, err
		}
		return v, nil
	})
	return r
}

// Resumable is a suspended (or completed) fiber-backed call.
type Resumable struct {
	ex     *Exec
	fib    *fiber.Fiber
	done   bool
	ret    values.Value
	err    error
	budget budgetState
}

// Resume continues execution until the call either completes (done=true,
// with result or error) or suspends again waiting for input (done=false).
// The Exec's current-fiber pointer is switched for the duration so that
// would-block suspensions unwind to exactly this fiber, even when several
// suspended parses (one per connection) interleave on one Exec.
func (r *Resumable) Resume() (values.Value, bool, error) {
	if r.done {
		return r.ret, true, r.err
	}
	prev := r.ex.fib
	r.ex.fib = r.fib
	// Each suspended call owns its budget accounting: instructions
	// accumulate across resumes, the deadline re-arms per resume.
	hostBudget := r.ex.swapBudget(r.budget)
	r.ex.rearmDeadline()
	v, done, err := r.fib.Resume(nil)
	r.budget = r.ex.swapBudget(hostBudget)
	r.ex.fib = prev
	if done {
		r.done = true
		r.err = err
		if vv, ok := v.(values.Value); ok {
			r.ret = vv
		}
		return r.ret, true, r.err
	}
	return values.Nil, false, nil
}

// Abort tears down a suspended call (connection abandoned mid-parse).
func (r *Resumable) Abort() {
	if !r.done {
		r.fib.Abort()
		r.done = true
		r.err = fiber.ErrAborted
	}
}

// Done reports whether the call has completed.
func (r *Resumable) Done() bool { return r.done }
