// Core instructions: assignment, control flow, calls, exceptions, hooks,
// threading, debugging. These are HILTI's "Flow control" group plus the
// cross-cutting operations of Table 1.

package vm

import (
	"fmt"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/rt/channel"
	"hilti/internal/rt/classifier"
	"hilti/internal/rt/container"
	"hilti/internal/rt/hbytes"
	"hilti/internal/rt/timer"
	"hilti/internal/rt/values"
)

func execJump(ex *Exec, fr *Frame, in *Instr) int { return in.t1 }

func execReturnVoid(ex *Exec, fr *Frame, in *Instr) int {
	fr.Ret = values.Nil
	return pcDone
}

func execReturnResult(ex *Exec, fr *Frame, in *Instr) int {
	fr.Ret = ex.get(fr, &in.srcs[0])
	return pcDone
}

func execIfElse(ex *Exec, fr *Frame, in *Instr) int {
	if values.IsTruthy(ex.get(fr, &in.srcs[0])) {
		return in.t1
	}
	return in.t2
}

func execAssign(ex *Exec, fr *Frame, in *Instr) int {
	ex.put(fr, in.d, ex.get(fr, &in.srcs[0]))
	return in.t1
}

// callTarget is the resolved (or resolvable) callee of a call instruction.
type callTarget struct {
	fn      *CompiledFunc // non-nil when statically resolved
	builtin HostFunc      // non-nil for builtin runtime functions
	name    string        // dynamic fallback (host-registered functions)
}

func execCall(ex *Exec, fr *Frame, in *Instr) int {
	ct := in.aux.(*callTarget)
	if ct.fn != nil {
		callee := ct.fn
		nfr := ex.newFrame(callee)
		for i := range in.srcs {
			nfr.R[i] = ex.get(fr, &in.srcs[i])
		}
		ret, ok := ex.run(callee, nfr)
		ex.freeFrame(nfr)
		if !ok {
			return pcRaise
		}
		ex.put(fr, in.d, ret)
		return in.t1
	}
	var args []values.Value
	if n := len(in.srcs); n > 0 {
		args = make([]values.Value, n)
		for i := range in.srcs {
			args[i] = ex.get(fr, &in.srcs[i])
		}
	}
	var ret values.Value
	var err error
	if ct.builtin != nil {
		ret, err = ct.builtin(ex, args)
	} else if hf, ok := ex.HostFns[ct.name]; ok {
		ret, err = hf(ex, args)
	} else {
		err = fmt.Errorf("call to unknown function %q", ct.name)
	}
	if err != nil {
		return ex.raiseErr(err)
	}
	ex.put(fr, in.d, ret)
	return in.t1
}

func execSwitch(ex *Exec, fr *Frame, in *Instr) int {
	v := ex.get(fr, &in.srcs[0])
	cases := in.aux.(*switchTable)
	for i, cv := range cases.vals {
		if values.Equal(v, cv) {
			return cases.targets[i]
		}
	}
	return in.t1 // default label
}

type switchTable struct {
	vals    []values.Value
	targets []int
}

func execYield(ex *Exec, fr *Frame, in *Instr) int {
	if ex.fib != nil {
		ex.fib.Yield(nil)
	}
	return in.t1
}

func init() {
	register("assign", func(c *fnCompiler, in *ast.Instr) error {
		srcs, err := c.srcsOf(in.Ops)
		if err != nil {
			return err
		}
		d, err := c.dstOf(in.Target)
		if err != nil {
			return err
		}
		c.emit(Instr{exec: execAssign, d: d, srcs: srcs})
		return nil
	})

	register("jump", func(c *fnCompiler, in *ast.Instr) error {
		if len(in.Ops) != 1 || in.Ops[0].Kind != ast.Label {
			return fmt.Errorf("jump needs a label")
		}
		pc := c.emit(Instr{exec: execJump})
		c.pend = append(c.pend, pendingJump{pc: pc, which: 1, label: in.Ops[0].Name})
		return nil
	})

	register("if.else", func(c *fnCompiler, in *ast.Instr) error {
		if len(in.Ops) != 3 {
			return fmt.Errorf("if.else needs condition and two labels")
		}
		s, err := c.srcOf(in.Ops[0])
		if err != nil {
			return err
		}
		pc := c.emit(Instr{exec: execIfElse, srcs: []src{s}})
		c.pend = append(c.pend,
			pendingJump{pc: pc, which: 1, label: in.Ops[1].Name},
			pendingJump{pc: pc, which: 2, label: in.Ops[2].Name})
		return nil
	})

	register("return.void", func(c *fnCompiler, in *ast.Instr) error {
		c.emit(Instr{exec: execReturnVoid})
		return nil
	})

	register("return.result", func(c *fnCompiler, in *ast.Instr) error {
		s, err := c.srcOf(in.Ops[0])
		if err != nil {
			return err
		}
		c.emit(Instr{exec: execReturnResult, srcs: []src{s}})
		return nil
	})

	register("call", func(c *fnCompiler, in *ast.Instr) error {
		if len(in.Ops) == 0 || in.Ops[0].Kind != ast.FuncOp {
			return fmt.Errorf("call needs a function operand")
		}
		name := in.Ops[0].Name
		srcs, err := c.srcsOf(in.Ops[1:])
		if err != nil {
			return err
		}
		d, err := c.dstOf(in.Target)
		if err != nil {
			return err
		}
		ct := c.resolveCall(name)
		c.emit(Instr{exec: execCall, d: d, srcs: srcs, aux: ct})
		return nil
	})

	register("switch", func(c *fnCompiler, in *ast.Instr) error {
		// switch <value> <default-label> (v1, l1) (v2, l2) ...
		if len(in.Ops) < 2 {
			return fmt.Errorf("switch needs value and default label")
		}
		s, err := c.srcOf(in.Ops[0])
		if err != nil {
			return err
		}
		tbl := &switchTable{}
		pc := c.emit(Instr{exec: execSwitch, srcs: []src{s}, aux: tbl})
		c.pend = append(c.pend, pendingJump{pc: pc, which: 1, label: in.Ops[1].Name})
		for _, cse := range in.Ops[2:] {
			if cse.Kind != ast.CtorOp || len(cse.Elems) != 2 ||
				cse.Elems[0].Kind != ast.Const || cse.Elems[1].Kind != ast.Label {
				return fmt.Errorf("switch case must be (const, label)")
			}
			tbl.vals = append(tbl.vals, cse.Elems[0].Val)
			tbl.targets = append(tbl.targets, -1)
			c.pendSwitch(tbl, len(tbl.targets)-1, cse.Elems[1].Name)
		}
		return nil
	})

	register("yield", func(c *fnCompiler, in *ast.Instr) error {
		c.emit(Instr{exec: execYield})
		return nil
	})

	register("nop", func(c *fnCompiler, in *ast.Instr) error { return nil })

	register("try.begin", func(c *fnCompiler, in *ast.Instr) error {
		var excReg int32 = -1
		if !in.Target.IsZero() {
			d, err := c.dstOf(in.Target)
			if err != nil {
				return err
			}
			if d.kind != srcReg {
				return fmt.Errorf("catch variable must be a local")
			}
			excReg = d.idx
		}
		excName := ""
		if len(in.Ops) == 1 && in.Ops[0].Kind == ast.FieldOp {
			excName = in.Ops[0].Name
		}
		c.tryStack = append(c.tryStack, openTry{
			start:      len(c.out.Code),
			catchLabel: in.Aux,
			excReg:     excReg,
			excName:    excName,
		})
		return nil
	})

	register("try.end", func(c *fnCompiler, in *ast.Instr) error {
		if len(c.tryStack) == 0 {
			return fmt.Errorf("try.end without try.begin")
		}
		ot := c.tryStack[len(c.tryStack)-1]
		c.tryStack = c.tryStack[:len(c.tryStack)-1]
		excReg := ot.excReg
		if excReg < 0 {
			// Allocate a hidden register for the exception value.
			excReg = int32(c.out.NRegs)
			c.out.NRegs++
		}
		c.pendHandlers = append(c.pendHandlers, pendingHandler{
			h:     handler{start: ot.start, end: len(c.out.Code), excReg: excReg, excName: ot.excName},
			label: ot.catchLabel,
		})
		return nil
	})

	register("exception.throw", func(c *fnCompiler, in *ast.Instr) error {
		return c.lowerSimple(in, -1, func(ex *Exec, args []values.Value) (values.Value, error) {
			name := "Hilti::Exception"
			msg := ""
			switch len(args) {
			case 1:
				if e := args[0].AsException(); e != nil {
					return values.Nil, e
				}
				msg = values.Format(args[0])
			case 2:
				// exception.throw <qualified-name> <message>
				name = values.Format(args[0])
				msg = values.Format(args[1])
			}
			return values.Nil, &values.Exception{Name: name, Msg: msg}
		})
	})

	register("hook.run", func(c *fnCompiler, in *ast.Instr) error {
		if len(in.Ops) == 0 || in.Ops[0].Kind != ast.FuncOp {
			return fmt.Errorf("hook.run needs a hook name")
		}
		name := in.Ops[0].Name
		srcs, err := c.srcsOf(in.Ops[1:])
		if err != nil {
			return err
		}
		c.emit(Instr{exec: execHookRun, srcs: srcs, aux: name})
		return nil
	})

	register("thread.schedule", func(c *fnCompiler, in *ast.Instr) error {
		// thread.schedule <func> <args-tuple> <vid>
		if len(in.Ops) != 3 || in.Ops[0].Kind != ast.FuncOp {
			return fmt.Errorf("thread.schedule needs func, args tuple, vid")
		}
		argsSrc, err := c.srcOf(in.Ops[1])
		if err != nil {
			return err
		}
		vidSrc, err := c.srcOf(in.Ops[2])
		if err != nil {
			return err
		}
		name := in.Ops[0].Name
		c.emit(Instr{exec: execThreadSchedule, srcs: []src{argsSrc, vidSrc}, aux: name})
		return nil
	})

	register("debug.msg", func(c *fnCompiler, in *ast.Instr) error {
		return c.lowerSimple(in, -1, func(ex *Exec, args []values.Value) (values.Value, error) {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = values.Format(a)
			}
			fmt.Fprintf(ex.Out, "[debug] %s\n", joinSpace(parts))
			return values.Nil, nil
		})
	})
}

func joinSpace(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}

func execHookRun(ex *Exec, fr *Frame, in *Instr) int {
	name := in.aux.(string)
	var args []values.Value
	if len(in.srcs) > 0 {
		args = make([]values.Value, len(in.srcs))
		for i := range in.srcs {
			args[i] = ex.get(fr, &in.srcs[i])
		}
	}
	for _, body := range ex.Prog.HookBodies[name] {
		nfr := ex.newFrame(body)
		copy(nfr.R, args)
		_, ok := ex.run(body, nfr)
		ex.freeFrame(nfr)
		if !ok {
			return pcRaise
		}
	}
	if ex.Hooks != nil {
		ex.Hooks.Run(name, args)
	}
	return in.t1
}

func execThreadSchedule(ex *Exec, fr *Frame, in *Instr) int {
	if ex.Sched == nil {
		return ex.raise("Hilti::NoThreading", "no scheduler attached")
	}
	argsV := ex.get(fr, &in.srcs[0])
	vid := ex.get(fr, &in.srcs[1]).AsUint()
	name := in.aux.(string)
	var args []values.Value
	if t := argsV.AsTuple(); t != nil {
		args = t.Elems
	}
	err := ScheduleCall(ex.Sched, ex.Prog, vid, name, args...)
	if err != nil {
		return ex.raiseErr(err)
	}
	return in.t1
}

// pendSwitch defers patching of one switch case target.
func (c *fnCompiler) pendSwitch(tbl *switchTable, idx int, label string) {
	c.switchPatches = append(c.switchPatches, switchPatch{tbl: tbl, idx: idx, label: label})
}

type switchPatch struct {
	tbl   *switchTable
	idx   int
	label string
}

// resolveCall resolves a callee name: compiled functions (qualified or
// not), builtins, then dynamic host lookup at call time.
func (c *fnCompiler) resolveCall(name string) *callTarget {
	for _, cand := range []string{c.mod.Name + "::" + name, name} {
		if fn, ok := c.lk.prog.Funcs[cand]; ok {
			return &callTarget{fn: fn}
		}
	}
	if bf, ok := c.lk.prog.Builtins[name]; ok {
		return &callTarget{builtin: bf}
	}
	return &callTarget{name: name}
}

// newValueOfType instantiates a heap value for `new T` and for automatic
// global initialization.
func newValueOfType(ex *Exec, t *types.Type) (values.Value, error) {
	u := t.Deref()
	switch u.Kind {
	case types.List:
		return values.Ref(values.KindList, container.NewList()), nil
	case types.Vector:
		return values.Ref(values.KindVector, container.NewVector(values.Nil)), nil
	case types.Set:
		return values.Ref(values.KindSet, container.NewSet()), nil
	case types.Map:
		return values.Ref(values.KindMap, container.NewMap()), nil
	case types.Channel:
		return values.Ref(values.KindChannel, channel.New(0)), nil
	case types.Classifier:
		n := 1
		if len(u.Params) > 0 && u.Params[0].Deref().Kind == types.Struct && u.Params[0].Deref().StructDef != nil {
			n = len(u.Params[0].Deref().StructDef.Fields)
		} else if len(u.Params) > 0 && u.Params[0].Deref().Kind == types.Tuple {
			n = len(u.Params[0].Deref().Params)
		}
		return values.Ref(values.KindClassifier, classifier.New(n)), nil
	case types.Struct:
		if u.StructDef == nil {
			return values.Nil, fmt.Errorf("new: struct type %s has no definition", u)
		}
		return values.StructVal(values.NewStruct(u.StructDef.Runtime())), nil
	case types.Bytes:
		return values.BytesVal(hbytes.New()), nil
	case types.RegExp:
		return values.Nil, fmt.Errorf("new regexp requires patterns; use regexp.compile")
	case types.MatchState:
		return values.Nil, fmt.Errorf("match_state is created by regexp.begin")
	case types.TimerMgr:
		return values.Ref(values.KindTimerMgr, timer.NewMgr()), nil
	default:
		// Scalars: the zero value of the kind.
		return zeroOf(u), nil
	}
}

func zeroOf(t *types.Type) values.Value {
	switch t.Kind {
	case types.Bool:
		return values.Bool(false)
	case types.Int:
		return values.Int(0)
	case types.Double:
		return values.Double(0)
	case types.String:
		return values.String("")
	case types.Time:
		return values.TimeVal(0)
	case types.Interval:
		return values.IntervalVal(0)
	default:
		return values.Nil
	}
}

// --- tier-2 unboxed slot executors (control/data movement) -------------------

// execSlotAssign writes a scalar operand into an unboxed slot.
func execSlotAssign(ex *Exec, fr *Frame, in *Instr) int {
	fr.I[in.d.idx] = slotArg(fr, &in.srcs[0])
	return in.t1
}

// execSlotAssignBox re-boxes a slot value into a boxed destination
// (register, global, or discarded); in.t2 carries the slot kind.
func execSlotAssignBox(ex *Exec, fr *Frame, in *Instr) int {
	ex.put(fr, in.d, boxSlot(fr.I[in.srcs[0].idx], uint8(in.t2)))
	return in.t1
}

// execSlotIfElse branches on an unboxed boolean condition. The != 0 test
// matches values.IsTruthy on a boxed bool (payload in Value.A).
func execSlotIfElse(ex *Exec, fr *Frame, in *Instr) int {
	if slotArg(fr, &in.srcs[0]) != 0 {
		return in.t1
	}
	return in.t2
}

// execSlotReturn re-boxes a slotted return value; in.t2 carries the slot
// kind.
func execSlotReturn(ex *Exec, fr *Frame, in *Instr) int {
	fr.Ret = boxSlot(fr.I[in.srcs[0].idx], uint8(in.t2))
	return pcDone
}
