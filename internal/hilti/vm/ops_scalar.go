// Scalar instructions: integers, doubles, booleans, strings, times,
// intervals, addresses, networks, ports, enums — the "domain-specific data
// types" rows of Table 1. Integer arithmetic operates on 64-bit values;
// narrower int<N> widths are a static property enforced by the checker, as
// in the paper's prototype.

package vm

import (
	"fmt"
	"strings"

	"hilti/internal/hilti/ast"
	"hilti/internal/rt/values"
)

// reshapers maps an op whose executor is shape-specialized at lowering
// time to the function that picks the right executor for a given operand
// shape. Optimizer passes that rewrite operand kinds in place (copy/
// constant propagation turning a register into a constant) MUST re-pick
// through this map, or a stale specialization would index the register
// file with a constant's idx.
var reshapers = map[string]func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int{}

// pickIntFast selects the executor for a two-operand integer op.
func pickIntFast(srcs []src, d dst) func(*Exec, *Frame, *Instr) int {
	if d.kind == srcReg && srcs[0].kind == srcReg {
		switch srcs[1].kind {
		case srcReg:
			return execIntFastRRR
		case srcConst:
			return execIntFastRCR
		}
	}
	return execIntFast
}

// registerIntFast registers a two-operand integer op with a dedicated
// executor (no closure dispatch, no boxing round trip beyond the Value).
func registerIntFast(op string, fn func(x, y int64) int64) {
	reshapers[op] = pickIntFast
	register(op, func(c *fnCompiler, in *ast.Instr) error {
		srcs, err := c.srcsOf(in.Ops)
		if err != nil || len(srcs) != 2 {
			if err == nil {
				err = fmt.Errorf("%s expects 2 operands", in.Op)
			}
			return err
		}
		d, err := c.dstOf(in.Target)
		if err != nil {
			return err
		}
		c.emit(Instr{exec: pickIntFast(srcs, d), d: d, srcs: srcs, aux: fn})
		return nil
	})
}

// execIntFastRRR is the all-register specialization of execIntFast.
func execIntFastRRR(ex *Exec, fr *Frame, in *Instr) int {
	x := int64(fr.R[in.srcs[0].idx].A)
	y := int64(fr.R[in.srcs[1].idx].A)
	fr.R[in.d.idx] = values.Int(in.aux.(func(x, y int64) int64)(x, y))
	return in.t1
}

// execIntFastRCR is the register-op-constant specialization of execIntFast
// — the dominant shape in generated filter code (`off = hl * 4`).
func execIntFastRCR(ex *Exec, fr *Frame, in *Instr) int {
	x := int64(fr.R[in.srcs[0].idx].A)
	y := int64(in.srcs[1].val.A)
	fr.R[in.d.idx] = values.Int(in.aux.(func(x, y int64) int64)(x, y))
	return in.t1
}

func execIntFast(ex *Exec, fr *Frame, in *Instr) int {
	x := ex.get(fr, &in.srcs[0]).AsInt()
	y := ex.get(fr, &in.srcs[1]).AsInt()
	ex.put(fr, in.d, values.Int(in.aux.(func(x, y int64) int64)(x, y)))
	return in.t1
}

// pickIntCmpFast selects the executor for a two-operand integer compare.
func pickIntCmpFast(srcs []src, d dst) func(*Exec, *Frame, *Instr) int {
	if d.kind == srcReg && srcs[0].kind == srcReg {
		switch srcs[1].kind {
		case srcReg:
			return execIntCmpFastRRR
		case srcConst:
			return execIntCmpFastRCR
		}
	}
	return execIntCmpFast
}

// registerIntCmpFast registers a two-operand integer comparison with a
// dedicated executor.
func registerIntCmpFast(op string, fn func(x, y int64) bool) {
	reshapers[op] = pickIntCmpFast
	register(op, func(c *fnCompiler, in *ast.Instr) error {
		srcs, err := c.srcsOf(in.Ops)
		if err != nil || len(srcs) != 2 {
			if err == nil {
				err = fmt.Errorf("%s expects 2 operands", in.Op)
			}
			return err
		}
		d, err := c.dstOf(in.Target)
		if err != nil {
			return err
		}
		c.emit(Instr{exec: pickIntCmpFast(srcs, d), d: d, srcs: srcs, aux: fn})
		return nil
	})
}

// execIntCmpFastRRR is the all-register specialization of execIntCmpFast.
func execIntCmpFastRRR(ex *Exec, fr *Frame, in *Instr) int {
	x := int64(fr.R[in.srcs[0].idx].A)
	y := int64(fr.R[in.srcs[1].idx].A)
	fr.R[in.d.idx] = values.Bool(in.aux.(func(x, y int64) bool)(x, y))
	return in.t1
}

// execIntCmpFastRCR is the register-vs-constant specialization (the shape
// of every protocol-number test in generated filters).
func execIntCmpFastRCR(ex *Exec, fr *Frame, in *Instr) int {
	x := int64(fr.R[in.srcs[0].idx].A)
	y := int64(in.srcs[1].val.A)
	fr.R[in.d.idx] = values.Bool(in.aux.(func(x, y int64) bool)(x, y))
	return in.t1
}

func execIntCmpFast(ex *Exec, fr *Frame, in *Instr) int {
	x := ex.get(fr, &in.srcs[0]).AsInt()
	y := ex.get(fr, &in.srcs[1]).AsInt()
	ex.put(fr, in.d, values.Bool(in.aux.(func(x, y int64) bool)(x, y)))
	return in.t1
}

// registerShaped registers a fixed-arity op whose lowering consults pick
// for a shape-specialized executor, falling back to simpleFn dispatch. The
// generic fn stays in aux either way so the constant folder (and, for
// boolean ops, the fusion pass) can evaluate the op without the executor.
func registerShaped(op string, arity int, fn simpleFn,
	pick func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int) {
	pickOrSimple := func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int {
		if exec := pick(srcs, d); exec != nil {
			return exec
		}
		switch arity {
		case 1:
			return execSimple1
		case 2:
			return execSimple2
		default:
			return execSimple
		}
	}
	reshapers[op] = pickOrSimple
	register(op, func(c *fnCompiler, in *ast.Instr) error {
		if len(in.Ops) != arity {
			return fmt.Errorf("%s expects %d operands, got %d", in.Op, arity, len(in.Ops))
		}
		srcs, err := c.srcsOf(in.Ops)
		if err != nil {
			return err
		}
		d, err := c.dstOf(in.Target)
		if err != nil {
			return err
		}
		c.emit(Instr{exec: pickOrSimple(srcs, d), d: d, srcs: srcs, aux: fn})
		return nil
	})
}

func execEqualRR(ex *Exec, fr *Frame, in *Instr) int {
	fr.R[in.d.idx] = values.Bool(values.Equal(fr.R[in.srcs[0].idx], fr.R[in.srcs[1].idx]))
	return in.t1
}

func execEqualRC(ex *Exec, fr *Frame, in *Instr) int {
	fr.R[in.d.idx] = values.Bool(values.Equal(fr.R[in.srcs[0].idx], in.srcs[1].val))
	return in.t1
}

func execNetContainsCR(ex *Exec, fr *Frame, in *Instr) int {
	fr.R[in.d.idx] = values.Bool(in.srcs[0].val.NetContains(fr.R[in.srcs[1].idx]))
	return in.t1
}

func init() {
	// --- equality / ordering (overloaded across types) -----------------------
	registerShaped("equal", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Bool(values.Equal(a[0], a[1])), nil
	}, func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int {
		if d.kind != srcReg || srcs[0].kind != srcReg {
			return nil
		}
		switch srcs[1].kind {
		case srcReg:
			return execEqualRR
		case srcConst:
			return execEqualRC
		}
		return nil
	})
	registerSimple("unequal", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Bool(!values.Equal(a[0], a[1])), nil
	})

	// --- int ------------------------------------------------------------------
	intBin := func(name string, fn func(x, y int64) (int64, error)) {
		registerSimple("int."+name, 2, func(ex *Exec, a []values.Value) (values.Value, error) {
			r, err := fn(a[0].AsInt(), a[1].AsInt())
			if err != nil {
				return values.Nil, err
			}
			return values.Int(r), nil
		})
	}
	registerIntFast("int.add", func(x, y int64) int64 { return x + y })
	registerIntFast("int.sub", func(x, y int64) int64 { return x - y })
	registerIntFast("int.mul", func(x, y int64) int64 { return x * y })
	intBin("div", func(x, y int64) (int64, error) {
		if y == 0 {
			return 0, &values.Exception{Name: "Hilti::DivisionByZero", Msg: "integer division by zero"}
		}
		return x / y, nil
	})
	intBin("mod", func(x, y int64) (int64, error) {
		if y == 0 {
			return 0, &values.Exception{Name: "Hilti::DivisionByZero", Msg: "integer modulo by zero"}
		}
		return x % y, nil
	})
	intBin("shl", func(x, y int64) (int64, error) { return x << uint(y&63), nil })
	intBin("shr", func(x, y int64) (int64, error) { return int64(uint64(x) >> uint(y&63)), nil })
	intBin("and", func(x, y int64) (int64, error) { return x & y, nil })
	intBin("or", func(x, y int64) (int64, error) { return x | y, nil })
	intBin("xor", func(x, y int64) (int64, error) { return x ^ y, nil })

	intCmp := func(name string, fn func(x, y int64) bool) {
		registerSimple("int."+name, 2, func(ex *Exec, a []values.Value) (values.Value, error) {
			return values.Bool(fn(a[0].AsInt(), a[1].AsInt())), nil
		})
	}
	registerIntCmpFast("int.eq", func(x, y int64) bool { return x == y })
	registerIntCmpFast("int.lt", func(x, y int64) bool { return x < y })
	registerIntCmpFast("int.gt", func(x, y int64) bool { return x > y })
	registerIntCmpFast("int.leq", func(x, y int64) bool { return x <= y })
	registerIntCmpFast("int.geq", func(x, y int64) bool { return x >= y })
	intCmp("ult", func(x, y int64) bool { return uint64(x) < uint64(y) })
	intCmp("ugt", func(x, y int64) bool { return uint64(x) > uint64(y) })

	registerSimple("int.to_double", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Double(float64(a[0].AsInt())), nil
	})
	registerSimple("int.to_time", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.TimeVal(a[0].AsInt() * 1e9), nil
	})
	registerSimple("int.to_interval", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.IntervalVal(a[0].AsInt() * 1e9), nil
	})
	registerSimple("int.to_string", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.String(values.Format(a[0])), nil
	})

	// --- double ----------------------------------------------------------------
	dblBin := func(name string, fn func(x, y float64) (float64, error)) {
		registerSimple("double."+name, 2, func(ex *Exec, a []values.Value) (values.Value, error) {
			r, err := fn(a[0].AsDouble(), a[1].AsDouble())
			if err != nil {
				return values.Nil, err
			}
			return values.Double(r), nil
		})
	}
	dblBin("add", func(x, y float64) (float64, error) { return x + y, nil })
	dblBin("sub", func(x, y float64) (float64, error) { return x - y, nil })
	dblBin("mul", func(x, y float64) (float64, error) { return x * y, nil })
	dblBin("div", func(x, y float64) (float64, error) {
		if y == 0 {
			return 0, &values.Exception{Name: "Hilti::DivisionByZero", Msg: "double division by zero"}
		}
		return x / y, nil
	})
	dblCmp := func(name string, fn func(x, y float64) bool) {
		registerSimple("double."+name, 2, func(ex *Exec, a []values.Value) (values.Value, error) {
			return values.Bool(fn(a[0].AsDouble(), a[1].AsDouble())), nil
		})
	}
	dblCmp("lt", func(x, y float64) bool { return x < y })
	dblCmp("gt", func(x, y float64) bool { return x > y })
	dblCmp("leq", func(x, y float64) bool { return x <= y })
	dblCmp("geq", func(x, y float64) bool { return x >= y })
	registerSimple("double.to_int", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Int(int64(a[0].AsDouble())), nil
	})
	registerSimple("double.to_interval", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.IntervalVal(int64(a[0].AsDouble() * 1e9)), nil
	})
	registerSimple("double.to_time", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.TimeVal(int64(a[0].AsDouble() * 1e9)), nil
	})

	// --- bool -------------------------------------------------------------------
	registerSimple("bool.and", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Bool(a[0].AsBool() && a[1].AsBool()), nil
	})
	registerSimple("bool.or", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Bool(a[0].AsBool() || a[1].AsBool()), nil
	})
	registerSimple("bool.not", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Bool(!a[0].AsBool()), nil
	})
	// Aliases used in the paper's Figure 4 pseudocode ("or", "and", "not").
	lowerers["or"] = lowerers["bool.or"]
	lowerers["and"] = lowerers["bool.and"]
	lowerers["not"] = lowerers["bool.not"]

	// --- string -----------------------------------------------------------------
	registerSimple("string.concat", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.String(a[0].AsString() + a[1].AsString()), nil
	})
	registerSimple("string.length", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Int(int64(len([]rune(a[0].AsString())))), nil
	})
	registerSimple("string.lower", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.String(strings.ToLower(a[0].AsString())), nil
	})
	registerSimple("string.upper", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.String(strings.ToUpper(a[0].AsString())), nil
	})
	registerSimple("string.find", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Int(int64(strings.Index(a[0].AsString(), a[1].AsString()))), nil
	})
	registerSimple("string.encode", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.BytesFrom([]byte(a[0].AsString())), nil
	})
	registerSimple("string.to_int", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		var n int64
		neg := false
		s := a[0].AsString()
		for i := 0; i < len(s); i++ {
			if i == 0 && s[i] == '-' {
				neg = true
				continue
			}
			if s[i] < '0' || s[i] > '9' {
				return values.Nil, &values.Exception{Name: "Hilti::ConversionError", Msg: fmt.Sprintf("not a number: %q", s)}
			}
			n = n*10 + int64(s[i]-'0')
		}
		if neg {
			n = -n
		}
		return values.Int(n), nil
	})

	// --- time / interval ----------------------------------------------------------
	registerSimple("time.add", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.TimeVal(a[0].AsTimeNs() + a[1].AsIntervalNs()), nil
	})
	registerSimple("time.sub", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		if a[1].K == values.KindTime {
			return values.IntervalVal(a[0].AsTimeNs() - a[1].AsTimeNs()), nil
		}
		return values.TimeVal(a[0].AsTimeNs() - a[1].AsIntervalNs()), nil
	})
	registerSimple("time.lt", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Bool(a[0].AsTimeNs() < a[1].AsTimeNs()), nil
	})
	registerSimple("time.gt", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Bool(a[0].AsTimeNs() > a[1].AsTimeNs()), nil
	})
	registerSimple("time.nsecs", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Int(a[0].AsTimeNs()), nil
	})
	registerSimple("time.to_double", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Double(float64(a[0].AsTimeNs()) / 1e9), nil
	})
	registerSimple("interval.add", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.IntervalVal(a[0].AsIntervalNs() + a[1].AsIntervalNs()), nil
	})
	registerSimple("interval.sub", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.IntervalVal(a[0].AsIntervalNs() - a[1].AsIntervalNs()), nil
	})
	registerSimple("interval.mul", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.IntervalVal(a[0].AsIntervalNs() * a[1].AsInt()), nil
	})
	registerSimple("interval.lt", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Bool(a[0].AsIntervalNs() < a[1].AsIntervalNs()), nil
	})
	registerSimple("interval.gt", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Bool(a[0].AsIntervalNs() > a[1].AsIntervalNs()), nil
	})
	registerSimple("interval.nsecs", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Int(a[0].AsIntervalNs()), nil
	})
	registerSimple("interval.to_double", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Double(float64(a[0].AsIntervalNs()) / 1e9), nil
	})

	// --- addr / net / port -----------------------------------------------------------
	registerSimple("addr.family", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		if a[0].AddrIsV4() {
			return values.Int(4), nil
		}
		return values.Int(6), nil
	})
	registerShaped("net.contains", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Bool(a[0].NetContains(a[1])), nil
	}, func(srcs []src, d dst) func(*Exec, *Frame, *Instr) int {
		// Generated filters test a constant network against a register.
		if d.kind == srcReg && srcs[0].kind == srcConst && srcs[1].kind == srcReg {
			return execNetContainsCR
		}
		return nil
	})
	registerSimple("net.family", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		if a[0].NetFamilyLen() <= 32 && a[0].AddrIsV4() {
			return values.Int(4), nil
		}
		return values.Int(6), nil
	})
	registerSimple("net.length", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Int(int64(a[0].NetFamilyLen())), nil
	})
	registerSimple("port.protocol", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		_, proto := a[0].AsPort()
		return values.Int(int64(proto)), nil
	})
	registerSimple("port.number", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		n, _ := a[0].AsPort()
		return values.Int(int64(n)), nil
	})

	// --- enum / bitset ------------------------------------------------------------------
	registerSimple("enum.to_int", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Int(a[0].AsInt()), nil
	})
	registerSimple("bitset.set", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Value{K: values.KindBitset, A: a[0].A | a[1].A, O: a[0].O}, nil
	})
	registerSimple("bitset.clear", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Value{K: values.KindBitset, A: a[0].A &^ a[1].A, O: a[0].O}, nil
	})
	registerSimple("bitset.has", 2, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Bool(a[0].A&a[1].A == a[1].A), nil
	})

	// --- hashing (thread scheduling support) --------------------------------------------
	registerSimple("hash", 1, func(ex *Exec, a []values.Value) (values.Value, error) {
		return values.Uint(values.Hash(a[0])), nil
	})
}

// --- tier-2 unboxed slot executors -------------------------------------------
//
// Installed by tier-2 respecialization (tier2.go) for instructions whose
// operands live in the frame's int64 slot file. They read via slotArg
// (slot / constant / statically-typed boxed register) and write via
// putSlotInt/putSlotBool, so a single executor covers every operand-kind
// mix the classifier admits; no values.Value is built unless the
// destination stayed boxed.

func execSlotIntBin(ex *Exec, fr *Frame, in *Instr) int {
	r := in.aux.(func(x, y int64) int64)(
		slotArg(fr, &in.srcs[0]), slotArg(fr, &in.srcs[1]))
	putSlotInt(ex, fr, in.d, r)
	return in.t1
}

func execSlotIntCmp(ex *Exec, fr *Frame, in *Instr) int {
	b := in.aux.(func(x, y int64) bool)(
		slotArg(fr, &in.srcs[0]), slotArg(fr, &in.srcs[1]))
	putSlotBool(ex, fr, in.d, b)
	return in.t1
}

func execSlotIntCmpBr(ex *Exec, fr *Frame, in *Instr) int {
	b := in.aux.(func(x, y int64) bool)(
		slotArg(fr, &in.srcs[0]), slotArg(fr, &in.srcs[1]))
	putSlotBool(ex, fr, in.d, b)
	return in.branch(b)
}

func execSlotEqual(ex *Exec, fr *Frame, in *Instr) int {
	putSlotBool(ex, fr, in.d, slotArg(fr, &in.srcs[0]) == slotArg(fr, &in.srcs[1]))
	return in.t1
}

func execSlotEqualBr(ex *Exec, fr *Frame, in *Instr) int {
	b := slotArg(fr, &in.srcs[0]) == slotArg(fr, &in.srcs[1])
	putSlotBool(ex, fr, in.d, b)
	return in.branch(b)
}

func execSlotUnequal(ex *Exec, fr *Frame, in *Instr) int {
	putSlotBool(ex, fr, in.d, slotArg(fr, &in.srcs[0]) != slotArg(fr, &in.srcs[1]))
	return in.t1
}

func execSlotUnequalBr(ex *Exec, fr *Frame, in *Instr) int {
	b := slotArg(fr, &in.srcs[0]) != slotArg(fr, &in.srcs[1])
	putSlotBool(ex, fr, in.d, b)
	return in.branch(b)
}

func execSlotBoolAnd(ex *Exec, fr *Frame, in *Instr) int {
	putSlotBool(ex, fr, in.d,
		slotArg(fr, &in.srcs[0]) != 0 && slotArg(fr, &in.srcs[1]) != 0)
	return in.t1
}

func execSlotBoolAndBr(ex *Exec, fr *Frame, in *Instr) int {
	b := slotArg(fr, &in.srcs[0]) != 0 && slotArg(fr, &in.srcs[1]) != 0
	putSlotBool(ex, fr, in.d, b)
	return in.branch(b)
}

func execSlotBoolOr(ex *Exec, fr *Frame, in *Instr) int {
	putSlotBool(ex, fr, in.d,
		slotArg(fr, &in.srcs[0]) != 0 || slotArg(fr, &in.srcs[1]) != 0)
	return in.t1
}

func execSlotBoolOrBr(ex *Exec, fr *Frame, in *Instr) int {
	b := slotArg(fr, &in.srcs[0]) != 0 || slotArg(fr, &in.srcs[1]) != 0
	putSlotBool(ex, fr, in.d, b)
	return in.branch(b)
}

func execSlotBoolNot(ex *Exec, fr *Frame, in *Instr) int {
	putSlotBool(ex, fr, in.d, slotArg(fr, &in.srcs[0]) == 0)
	return in.t1
}

func execSlotBoolNotBr(ex *Exec, fr *Frame, in *Instr) int {
	b := slotArg(fr, &in.srcs[0]) == 0
	putSlotBool(ex, fr, in.d, b)
	return in.branch(b)
}
