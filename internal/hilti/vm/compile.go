// Lowering and linking: AST modules -> linked Program. See the package
// comment for how this substitutes the paper's LLVM pipeline.

package vm

import (
	"fmt"
	"strings"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/rt/values"
)

// srcCtor marks a constructor operand built from sub-sources at each read.
const srcCtor uint8 = 4

// Options controls code generation.
type Options struct {
	// OptLevel selects the post-lowering optimizer level: 0 disables it,
	// 1 runs the full pass pipeline (see opt.go).
	OptLevel int
}

// Link merges the given modules into one executable Program at the
// package-default optimization level (see SetDefaultOptLevel).
func Link(modules ...*ast.Module) (*Program, error) {
	return LinkWith(Options{OptLevel: DefaultOptLevel()}, modules...)
}

// LinkWith is Link with explicit code-generation options: globals from
// all units are laid out into a single thread-local array, hook bodies are
// merged across units, cross-module calls are resolved, and every function
// body is lowered to linear code. This is the paper's custom linker stage
// plus code generation.
func LinkWith(opts Options, modules ...*ast.Module) (*Program, error) {
	lk := &linker{
		prog: &Program{
			Funcs:      map[string]*CompiledFunc{},
			HookBodies: map[string][]*CompiledFunc{},
			Builtins:   builtins(),
		},
		globals:     map[string]int32{},
		globalTypes: map[string]*types.Type{},
		namedTypes:  map[string]*types.Type{},
		consts:      map[string]ast.Operand{},
	}

	// Pass 1: declare globals, types, consts, and function shells.
	for _, m := range modules {
		for name, t := range m.Types {
			lk.namedTypes[name] = t
			lk.namedTypes[m.Name+"::"+name] = t
		}
		for name, c := range m.Consts {
			lk.consts[name] = c
			lk.consts[m.Name+"::"+name] = c
		}
		for _, g := range m.Globals {
			slot := int32(lk.prog.GlobalCount)
			lk.prog.GlobalCount++
			lk.globals[m.Name+"::"+g.Name] = slot
			if _, dup := lk.globals[g.Name]; !dup {
				lk.globals[g.Name] = slot
			}
			lk.globalTypes[g.Name] = g.Type
			lk.addGlobalInit(slot, g)
		}
		for _, f := range m.Functions {
			cf := &CompiledFunc{
				Name:     m.Name + "::" + f.Name,
				NParams:  len(f.Params),
				Result:   f.Result,
				IsHook:   f.IsHook,
				HookPrio: f.HookPrio,
				ID:       len(lk.units), // dense per-Program function id
			}
			if f.IsHook {
				lk.prog.HookBodies[f.Name] = append(lk.prog.HookBodies[f.Name], cf)
			} else {
				lk.prog.Funcs[cf.Name] = cf
				if _, dup := lk.prog.Funcs[f.Name]; !dup {
					lk.prog.Funcs[f.Name] = cf
				}
			}
			lk.units = append(lk.units, unit{mod: m, fn: f, out: cf})
		}
	}
	// Hook bodies: priority order, stable.
	for _, bodies := range lk.prog.HookBodies {
		sortHookBodies(bodies)
	}

	// Pass 2: lower bodies.
	for _, u := range lk.units {
		fc := &fnCompiler{lk: lk, mod: u.mod, fn: u.fn, out: u.out}
		if err := fc.compile(); err != nil {
			return nil, fmt.Errorf("%s::%s: %w", u.mod.Name, u.fn.Name, err)
		}
	}
	// Pass 3: optimize (opt.go).
	if opts.OptLevel > 0 {
		for _, u := range lk.units {
			Optimize(u.out, opts.OptLevel)
		}
	}
	return lk.prog, nil
}

// unit pairs an AST function with its compiled shell; hook bodies share a
// name, so lowering must not go through the (unique-keyed) function map.
type unit struct {
	mod *ast.Module
	fn  *ast.Function
	out *CompiledFunc
}

func sortHookBodies(bodies []*CompiledFunc) {
	// Insertion sort by priority (desc), stable by registration order.
	for i := 1; i < len(bodies); i++ {
		for j := i; j > 0 && bodies[j-1].HookPrio < bodies[j].HookPrio; j-- {
			bodies[j-1], bodies[j] = bodies[j], bodies[j-1]
		}
	}
}

type linker struct {
	prog        *Program
	globals     map[string]int32
	globalTypes map[string]*types.Type
	namedTypes  map[string]*types.Type
	consts      map[string]ast.Operand
	units       []unit
}

// addGlobalInit schedules per-Exec initialization for a global: explicit
// initializer constant, or automatic instantiation for container/heap
// types (the common `global ref<set<addr>> hosts = set<addr>()` pattern).
func (lk *linker) addGlobalInit(slot int32, g *ast.Variable) {
	t := g.Type
	if !g.Init.IsZero() && g.Init.Kind == ast.Const {
		v := g.Init.Val
		lk.prog.globalInits = append(lk.prog.globalInits, globalInit{
			slot: slot,
			mk:   func(*Exec) (values.Value, error) { return v, nil },
		})
		return
	}
	lk.prog.globalInits = append(lk.prog.globalInits, globalInit{
		slot: slot,
		mk:   func(ex *Exec) (values.Value, error) { return newValueOfType(ex, t) },
	})
}

type pendingJump struct {
	pc    int
	which int // 1 or 2
	label string
}

type openTry struct {
	start      int
	catchLabel string
	excReg     int32
	excName    string
}

type fnCompiler struct {
	lk            *linker
	mod           *ast.Module
	fn            *ast.Function
	out           *CompiledFunc
	regs          map[string]int32
	rty           map[string]*types.Type
	lbls          map[string]int
	pend          []pendingJump
	pendHandlers  []pendingHandler
	switchPatches []switchPatch
	tryStack      []openTry
	curOp         string // AST op currently being lowered; stamped onto emitted instrs
}

type pendingHandler struct {
	h     handler
	label string
}

func (c *fnCompiler) compile() error {
	c.regs = map[string]int32{}
	c.rty = map[string]*types.Type{}
	c.lbls = map[string]int{}
	for _, p := range c.fn.Params {
		c.regs[p.Name] = int32(len(c.regs))
		c.rty[p.Name] = p.Type
	}
	for _, l := range c.fn.Locals {
		if _, dup := c.regs[l.Name]; dup {
			return fmt.Errorf("duplicate local %q", l.Name)
		}
		c.regs[l.Name] = int32(len(c.regs))
		c.rty[l.Name] = l.Type
	}
	c.out.NRegs = len(c.regs)
	// Record static register types for tier-2 slot classification. Hidden
	// registers allocated later (try.end exception slots) fall outside the
	// slice and stay boxed.
	c.out.RegTypes = make([]*types.Type, len(c.regs))
	for name, r := range c.regs {
		c.out.RegTypes[r] = c.rty[name]
	}

	for bi, b := range c.fn.Blocks {
		c.lbls[b.Name] = len(c.out.Code)
		for _, in := range b.Instrs {
			if err := c.lower(in); err != nil {
				return fmt.Errorf("in %q: %w", in.String(), err)
			}
		}
		// Implicit fallthrough to the next block when the block does not
		// end in a terminator.
		if bi+1 < len(c.fn.Blocks) && !endsInTerminator(b) {
			c.curOp = "jump"
			pc := c.emit(Instr{exec: execJump})
			c.pend = append(c.pend, pendingJump{pc: pc, which: 1, label: c.fn.Blocks[bi+1].Name})
		}
	}
	// Implicit void return at the end.
	c.curOp = "return.void"
	c.emit(Instr{exec: execReturnVoid})

	if len(c.tryStack) != 0 {
		return fmt.Errorf("unclosed try block")
	}
	for _, pj := range c.pend {
		target, ok := c.lbls[pj.label]
		if !ok {
			return fmt.Errorf("undefined label %q", pj.label)
		}
		if pj.which == 1 {
			c.out.Code[pj.pc].t1 = target
		} else {
			c.out.Code[pj.pc].t2 = target
		}
	}
	for _, ph := range c.pendHandlers {
		target, ok := c.lbls[ph.label]
		if !ok {
			return fmt.Errorf("undefined catch label %q", ph.label)
		}
		h := ph.h
		h.target = target
		c.out.Handlers = append(c.out.Handlers, h)
	}
	for _, sp := range c.switchPatches {
		target, ok := c.lbls[sp.label]
		if !ok {
			return fmt.Errorf("undefined switch label %q", sp.label)
		}
		sp.tbl.targets[sp.idx] = target
	}
	return nil
}

func endsInTerminator(b *ast.Block) bool {
	if len(b.Instrs) == 0 {
		return false
	}
	switch b.Instrs[len(b.Instrs)-1].Op {
	case "jump", "if.else", "return.result", "return.void", "switch", "exception.throw", "hook.stop":
		return true
	}
	return false
}

func (c *fnCompiler) emit(in Instr) int {
	pc := len(c.out.Code)
	in.t1 = pc + 1 // default next
	if in.op == "" {
		in.op = c.curOp
	}
	in.opID = internOp(in.op)
	c.out.Code = append(c.out.Code, in)
	return pc
}

// srcOf compiles one operand into a source.
func (c *fnCompiler) srcOf(o ast.Operand) (src, error) {
	switch o.Kind {
	case ast.Const:
		return src{kind: srcConst, val: o.Val}, nil
	case ast.Var:
		if r, ok := c.regs[o.Name]; ok {
			return src{kind: srcReg, idx: r}, nil
		}
		if g, ok := c.lk.globals[c.mod.Name+"::"+o.Name]; ok {
			return src{kind: srcGlobal, idx: g}, nil
		}
		if g, ok := c.lk.globals[o.Name]; ok {
			return src{kind: srcGlobal, idx: g}, nil
		}
		if cst, ok := c.lk.consts[o.Name]; ok && cst.Kind == ast.Const {
			return src{kind: srcConst, val: cst.Val}, nil
		}
		return src{}, fmt.Errorf("undefined variable %q", o.Name)
	case ast.CtorOp:
		subs := make([]src, len(o.Elems))
		allConst := true
		for i, e := range o.Elems {
			s, err := c.srcOf(e)
			if err != nil {
				return src{}, err
			}
			subs[i] = s
			if s.kind != srcConst {
				allConst = false
			}
		}
		if allConst {
			elems := make([]values.Value, len(subs))
			for i, s := range subs {
				elems[i] = s.val
			}
			return src{kind: srcConst, val: values.TupleVal(elems...)}, nil
		}
		return src{kind: srcCtor, subs: subs}, nil
	case ast.FuncOp:
		return src{kind: srcConst, val: values.String(o.Name)}, nil
	case ast.FieldOp:
		return src{kind: srcConst, val: values.String(o.Name)}, nil
	default:
		return src{}, fmt.Errorf("operand %v not usable as value", o)
	}
}

// typeOfOperand reports the static type of an operand when known.
func (c *fnCompiler) typeOfOperand(o ast.Operand) *types.Type {
	switch o.Kind {
	case ast.Const:
		return o.Type
	case ast.Var:
		if t, ok := c.rty[o.Name]; ok {
			return t
		}
		if t, ok := c.lk.globalTypes[o.Name]; ok {
			return t
		}
	case ast.TypeOp:
		return o.Type
	}
	return nil
}

// dstOf compiles the target operand.
func (c *fnCompiler) dstOf(o ast.Operand) (dst, error) {
	if o.IsZero() {
		return dst{kind: srcNone}, nil
	}
	if o.Kind != ast.Var {
		return dst{}, fmt.Errorf("target must be a variable, got %v", o)
	}
	if r, ok := c.regs[o.Name]; ok {
		return dst{kind: srcReg, idx: r}, nil
	}
	if g, ok := c.lk.globals[c.mod.Name+"::"+o.Name]; ok {
		return dst{kind: srcGlobal, idx: g}, nil
	}
	if g, ok := c.lk.globals[o.Name]; ok {
		return dst{kind: srcGlobal, idx: g}, nil
	}
	return dst{}, fmt.Errorf("undefined target %q", o.Name)
}

// srcsOf compiles a range of operands.
func (c *fnCompiler) srcsOf(ops []ast.Operand) ([]src, error) {
	out := make([]src, len(ops))
	for i, o := range ops {
		s, err := c.srcOf(o)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// lower dispatches one AST instruction to its lowering rule.
func (c *fnCompiler) lower(in *ast.Instr) error {
	c.curOp = in.Op
	if fn, ok := lowerers[in.Op]; ok {
		return fn(c, in)
	}
	// Op families that share one lowering (e.g. all "int.*" arithmetic).
	if dot := strings.IndexByte(in.Op, '.'); dot > 0 {
		if fn, ok := lowerers[in.Op[:dot]+".*"]; ok {
			return fn(c, in)
		}
	}
	return fmt.Errorf("unknown instruction %q", in.Op)
}

// lowerSimple compiles `target = op(srcs...)` with a runtime handler.
// One- and two-operand forms get specialized executors to keep dispatch
// overhead off the hot path.
func (c *fnCompiler) lowerSimple(in *ast.Instr, arity int, fn simpleFn) error {
	if arity >= 0 && len(in.Ops) != arity {
		return fmt.Errorf("%s expects %d operands, got %d", in.Op, arity, len(in.Ops))
	}
	srcs, err := c.srcsOf(in.Ops)
	if err != nil {
		return err
	}
	d, err := c.dstOf(in.Target)
	if err != nil {
		return err
	}
	exec := execSimple
	switch len(srcs) {
	case 1:
		exec = execSimple1
	case 2:
		exec = execSimple2
	}
	c.emit(Instr{exec: exec, d: d, srcs: srcs, aux: fn})
	return nil
}

type simpleFn func(ex *Exec, args []values.Value) (values.Value, error)

func execSimple1(ex *Exec, fr *Frame, in *Instr) int {
	var args [1]values.Value
	args[0] = ex.get(fr, &in.srcs[0])
	v, err := in.aux.(simpleFn)(ex, args[:])
	if err != nil {
		return ex.raiseErr(err)
	}
	ex.put(fr, in.d, v)
	return in.t1
}

func execSimple2(ex *Exec, fr *Frame, in *Instr) int {
	var args [2]values.Value
	args[0] = ex.get(fr, &in.srcs[0])
	args[1] = ex.get(fr, &in.srcs[1])
	v, err := in.aux.(simpleFn)(ex, args[:])
	if err != nil {
		return ex.raiseErr(err)
	}
	ex.put(fr, in.d, v)
	return in.t1
}

func execSimple(ex *Exec, fr *Frame, in *Instr) int {
	var buf [6]values.Value
	var args []values.Value
	if n := len(in.srcs); n <= len(buf) {
		args = buf[:n]
	} else {
		args = make([]values.Value, n)
	}
	for i := range in.srcs {
		args[i] = ex.get(fr, &in.srcs[i])
	}
	v, err := in.aux.(simpleFn)(ex, args)
	if err != nil {
		return ex.raiseErr(err)
	}
	ex.put(fr, in.d, v)
	return in.t1
}

// getCtor materializes a constructor source.
func (ex *Exec) getCtor(fr *Frame, s *src) values.Value {
	elems := make([]values.Value, len(s.subs))
	for i := range s.subs {
		elems[i] = ex.get(fr, &s.subs[i])
	}
	return values.TupleVal(elems...)
}

// ctorKey encodes a tuple-constructor operand directly into the Exec's
// scratch buffer in values.AppendKey's canonical form, skipping the tuple
// materialization getCtor would do. Container lookups feed the result to
// the *Keyed container methods; ok=false means some element is unhashable
// and the caller must fall back to the boxed path.
func (ex *Exec) ctorKey(fr *Frame, s *src) (k []byte, ok bool) {
	b := append(ex.keyBuf[:0], byte(values.KindTuple), byte(len(s.subs)))
	for i := range s.subs {
		if b, ok = values.AppendKey(b, ex.get(fr, &s.subs[i])); !ok {
			ex.keyBuf = b[:0]
			return nil, false
		}
	}
	ex.keyBuf = b
	return b, true
}

// srcKey encodes any operand as a container key into the Exec's scratch
// buffer, using the ctor fast path when possible.
func (ex *Exec) srcKey(fr *Frame, s *src) (k []byte, ok bool) {
	if s.kind == srcCtor {
		return ex.ctorKey(fr, s)
	}
	b, ok := values.AppendKey(ex.keyBuf[:0], ex.get(fr, s))
	if !ok {
		ex.keyBuf = b[:0]
		return nil, false
	}
	ex.keyBuf = b
	return b, true
}

// lowerers is the instruction registry, populated by the ops_*.go files.
var lowerers = map[string]func(c *fnCompiler, in *ast.Instr) error{}

func register(op string, fn func(c *fnCompiler, in *ast.Instr) error) {
	lowerers[op] = fn
}

// registerSimple registers a fixed-arity runtime-dispatch op.
func registerSimple(op string, arity int, fn simpleFn) {
	register(op, func(c *fnCompiler, in *ast.Instr) error {
		return c.lowerSimple(in, arity, fn)
	})
}
