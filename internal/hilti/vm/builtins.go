// Builtins: the Hilti:: standard-library functions available to every
// program (paper Figure 3 uses Hilti::print), plus the scheduler bridge
// that backs thread.schedule.

package vm

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"strings"

	"hilti/internal/rt/threads"
	"hilti/internal/rt/values"
)

func builtins() map[string]HostFunc {
	return map[string]HostFunc{
		"Hilti::print": func(ex *Exec, args []values.Value) (values.Value, error) {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = values.Format(a)
			}
			fmt.Fprintln(ex.Out, strings.Join(parts, " "))
			return values.Nil, nil
		},
		// Hilti::fmt formats a template string: %s substitutes the next
		// argument's display form, %% a literal percent.
		"Hilti::fmt": func(ex *Exec, args []values.Value) (values.Value, error) {
			if len(args) == 0 {
				return values.String(""), nil
			}
			tmpl := args[0].AsString()
			rest := args[1:]
			var sb strings.Builder
			ai := 0
			for i := 0; i < len(tmpl); i++ {
				if tmpl[i] == '%' && i+1 < len(tmpl) {
					i++
					switch tmpl[i] {
					case 's', 'd', 'v':
						if ai < len(rest) {
							sb.WriteString(values.Format(rest[ai]))
							ai++
						}
					case '%':
						sb.WriteByte('%')
					default:
						sb.WriteByte('%')
						sb.WriteByte(tmpl[i])
					}
					continue
				}
				sb.WriteByte(tmpl[i])
			}
			return values.String(sb.String()), nil
		},
		// Hilti::sha1 hashes a bytes value, returning the hex digest — used
		// by the files.log pipeline.
		"Hilti::sha1": func(ex *Exec, args []values.Value) (values.Value, error) {
			if len(args) != 1 || args[0].AsBytes() == nil {
				return values.Nil, fmt.Errorf("Hilti::sha1 expects one bytes argument")
			}
			sum := sha1.Sum(args[0].AsBytes().Bytes())
			return values.String(hex.EncodeToString(sum[:])), nil
		},
		"Hilti::abort": func(ex *Exec, args []values.Value) (values.Value, error) {
			msg := "abort"
			if len(args) > 0 {
				msg = values.Format(args[0])
			}
			return values.Nil, &values.Exception{Name: "Hilti::Abort", Msg: msg}
		},
	}
}

// execKey caches the per-virtual-thread Exec inside a thread context.
const execKey = "hilti.exec"

// ExecForContext returns (creating on first use) the Exec owned by a
// virtual-thread context. Each virtual thread gets its own thread-local
// globals array and timer manager, per HILTI's isolation model.
func ExecForContext(ctx *threads.Context, prog *Program, sched *threads.Scheduler) (*Exec, error) {
	if e, ok := ctx.Host[execKey].(*Exec); ok && e.Prog == prog {
		return e, nil
	}
	e, err := NewExec(prog)
	if err != nil {
		return nil, err
	}
	e.GlobalTM = ctx.TimerMgr
	e.Sched = sched
	ctx.Host[execKey] = e
	return e, nil
}

// ScheduleCall enqueues an asynchronous invocation of the named function on
// virtual thread vid (HILTI's `thread.schedule foo(args) vid`), deep-copying
// the arguments per the message-passing isolation model.
func ScheduleCall(sched *threads.Scheduler, prog *Program, vid uint64, fn string, args ...values.Value) error {
	return sched.ScheduleValues(vid, func(ctx *threads.Context, cargs []values.Value) {
		ex, err := ExecForContext(ctx, prog, sched)
		if err != nil {
			return
		}
		ex.Call(fn, cargs...) //nolint:errcheck // uncaught exceptions terminate the vthread job
	}, args...)
}
