// Lexer for HILTI's textual surface syntax (.hlt files) — the register-
// style assembler form shown in the paper's Figures 3, 4 and 5.

package parser

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent  // identifiers, possibly ::-qualified and .-joined mnemonics
	tokInt    // integer literal
	tokDouble // floating-point literal
	tokString // "..." with escapes resolved
	tokRegexp // /.../ pattern text
	tokAddr   // 1.2.3.4 or hex:colons IPv6
	tokNet    // addr/len
	tokPort   // 80/tcp
	tokPunct  // single punctuation: = ( ) { } , : < > * -
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes the whole source.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\n':
			l.emit(tokNewline, "\n")
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '/' && l.regexpPossible():
			if err := l.lexRegexp(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			l.lexNumberish()
		case isIdentStart(c):
			l.lexIdent()
		case strings.IndexByte("=(){},:<>*-[]", c) >= 0:
			// "::" stays inside identifiers; a lone ':' is a label marker.
			l.emit(tokPunct, string(c))
			l.pos++
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", l.line, c)
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, line: l.line})
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}

// regexpPossible: a '/' begins a regexp literal only where a value can
// appear — after '=', ',', '(' or at line start. This keeps 80/tcp and
// 10.0.0.0/8 unambiguous (those are handled by lexNumberish anyway).
func (l *lexer) regexpPossible() bool {
	for i := len(l.toks) - 1; i >= 0; i-- {
		t := l.toks[i]
		if t.kind == tokNewline {
			return true
		}
		return t.kind == tokPunct && (t.text == "=" || t.text == "," || t.text == "(")
	}
	return true
}

func (l *lexer) lexString() error {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			l.emit(tokString, sb.String())
			return nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return fmt.Errorf("line %d: unterminated string", l.line)
			}
			switch l.src[l.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			default:
				sb.WriteByte(l.src[l.pos])
			}
			l.pos++
		case '\n':
			return fmt.Errorf("line %d: unterminated string", l.line)
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return fmt.Errorf("line %d: unterminated string", l.line)
}

func (l *lexer) lexRegexp() error {
	l.pos++ // opening slash
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			sb.WriteByte(c)
			sb.WriteByte(l.src[l.pos+1])
			l.pos += 2
			continue
		}
		if c == '/' {
			l.pos++
			l.emit(tokRegexp, sb.String())
			return nil
		}
		if c == '\n' {
			break
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("line %d: unterminated regexp", l.line)
}

// lexNumberish scans integers, doubles, IPv4/IPv6 addresses, CIDR
// networks, ports (80/tcp), and times/intervals left for the parser.
func (l *lexer) lexNumberish() {
	start := l.pos
	seenDot, seenColon := 0, 0
	hexish := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
		case c == '.':
			seenDot++
		case c == ':':
			// Only continue across ':' for IPv6-looking tokens.
			if !hexIPv6Ahead(l.src[l.pos:]) {
				goto done
			}
			seenColon++
		case (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'):
			hexish = true
		case c == 'x' && l.pos == start+1 && l.src[start] == '0':
			hexish = true
		default:
			goto done
		}
		l.pos++
	}
done:
	text := l.src[start:l.pos]
	// CIDR suffix or port protocol.
	if l.pos < len(l.src) && l.src[l.pos] == '/' {
		rest := l.src[l.pos+1:]
		if len(rest) > 0 && rest[0] >= '0' && rest[0] <= '9' {
			j := 0
			for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
				j++
			}
			l.pos += 1 + j
			l.emit(tokNet, text+"/"+rest[:j])
			return
		}
		for _, proto := range []string{"tcp", "udp", "icmp"} {
			if strings.HasPrefix(rest, proto) {
				l.pos += 1 + len(proto)
				l.emit(tokPort, text+"/"+proto)
				return
			}
		}
	}
	switch {
	case seenColon > 0:
		l.emit(tokAddr, text)
	case seenDot == 3 && !hexish:
		l.emit(tokAddr, text)
	case seenDot == 1 && !hexish:
		l.emit(tokDouble, text)
	default:
		l.emit(tokInt, text)
	}
}

// hexIPv6Ahead reports whether the text starting at a ':' looks like the
// continuation of an IPv6 literal rather than a label separator.
func hexIPv6Ahead(s string) bool {
	if len(s) < 2 {
		return false
	}
	c := s[1]
	return c == ':' || (c >= '0' && c <= '9') ||
		(c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// lexIdent scans identifiers, including ::-qualified names (Hilti::print,
// ExpireStrategy::Access) and dotted mnemonics (set.insert).
func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isIdentChar(c) {
			l.pos++
			continue
		}
		if c == ':' && l.pos+2 < len(l.src) && l.src[l.pos+1] == ':' && isIdentStart(l.src[l.pos+2]) {
			l.pos += 2
			continue
		}
		break
	}
	l.emit(tokIdent, l.src[start:l.pos])
}
