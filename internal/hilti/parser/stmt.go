// Function-body parsing: blocks, labels, instructions, operand syntax, and
// the try/catch surface form of the paper's Figure 5.

package parser

import (
	"fmt"
	"strconv"
	"strings"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/rt/regexp"
	"hilti/internal/rt/values"
)

// opSpec says which operand positions of a mnemonic are labels, fields,
// or types rather than values.
type opSpec struct {
	labels map[int]bool
	fields map[int]bool
	typs   map[int]bool
}

var opSpecs = map[string]opSpec{
	"jump":               {labels: map[int]bool{0: true}},
	"if.else":            {labels: map[int]bool{1: true, 2: true}},
	"struct.get":         {fields: map[int]bool{1: true}},
	"struct.set":         {fields: map[int]bool{1: true}},
	"struct.get_default": {fields: map[int]bool{1: true}},
	"struct.is_set":      {fields: map[int]bool{1: true}},
	"struct.unset":       {fields: map[int]bool{1: true}},
	"overlay.get":        {typs: map[int]bool{0: true}, fields: map[int]bool{1: true}},
}

func (p *parser) function(isHook bool) error {
	result, err := p.typeExpr()
	if err != nil {
		return err
	}
	name := p.next()
	if name.kind != tokIdent {
		return fmt.Errorf("line %d: expected function name", name.line)
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	var params []ast.Param
	for !p.isPunct(")") {
		pt, err := p.typeExpr()
		if err != nil {
			return err
		}
		pn := p.next()
		if pn.kind != tokIdent {
			return fmt.Errorf("line %d: expected parameter name", pn.line)
		}
		params = append(params, ast.Param{Name: pn.text, Type: p.resolveNamed(pt)})
		if p.isPunct(",") {
			p.next()
		}
	}
	p.next() // ')'
	var fb *ast.FuncBuilder
	if isHook {
		fb = p.b.Hook(name.text, 0, params...)
	} else {
		fb = p.b.Function(name.text, result, params...)
	}
	p.skipNewlines()
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	return p.stmts(fb)
}

// stmts parses statements until the closing brace of the current scope.
func (p *parser) stmts(fb *ast.FuncBuilder) error {
	for {
		p.skipNewlines()
		if p.isPunct("}") {
			p.next()
			return nil
		}
		t := p.cur()
		if t.kind == tokEOF {
			return p.errf("unexpected end of input in function body")
		}
		if t.kind != tokIdent {
			return p.errf("unexpected token %q in function body", t.text)
		}
		// Label: "name:" at start of line.
		if p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == ":" {
			p.pos += 2
			fb.Block(t.text)
			continue
		}
		switch t.text {
		case "local":
			p.next()
			lt, err := p.typeExpr()
			if err != nil {
				return err
			}
			for {
				ln := p.next()
				if ln.kind != tokIdent {
					return p.errf("expected local name")
				}
				fb.Local(ln.text, p.resolveNamed(lt))
				if p.isPunct(",") {
					p.next()
					continue
				}
				break
			}
		case "try":
			p.next()
			if err := p.tryStmt(fb); err != nil {
				return err
			}
		case "return":
			p.next()
			if p.cur().kind == tokNewline || p.isPunct("}") {
				fb.ReturnVoid()
				continue
			}
			op, err := p.operand()
			if err != nil {
				return err
			}
			fb.Return(op)
		default:
			if err := p.instruction(fb); err != nil {
				return err
			}
		}
	}
}

// tryStmt parses `try { ... } catch ( <type> <name> ) { ... }`.
func (p *parser) tryStmt(fb *ast.FuncBuilder) error {
	p.anon++
	catchLabel := fmt.Sprintf("__catch%d", p.anon)
	afterLabel := fmt.Sprintf("__after%d", p.anon)
	p.skipNewlines()
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	// We need the exception variable before the body; peek ahead is messy,
	// so pre-declare a hidden local and copy into the named one at catch.
	hidden := fb.Temp(types.ExcT)
	begin := fb.Assign(hidden, "try.begin")
	begin.Aux = catchLabel

	if err := p.stmtsUntilBrace(fb); err != nil {
		return err
	}
	fb.Instr("try.end")
	fb.Jump(afterLabel)

	p.skipNewlines()
	if err := p.expectIdent("catch"); err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	excType, err := p.typeExpr()
	if err != nil {
		return err
	}
	excName := ""
	if u := excType.Deref(); u.Kind == types.Exception {
		excName = u.ExcName
	}
	varTok := p.next()
	if varTok.kind != tokIdent {
		return p.errf("expected catch variable name")
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	p.skipNewlines()
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	begin.Ops = []ast.Operand{ast.FieldOperand(excName)}

	fb.Block(catchLabel)
	declared := false
	for _, l := range fb.F.Locals {
		if l.Name == varTok.text {
			declared = true
			break
		}
	}
	if !declared {
		fb.Local(varTok.text, types.ExcT)
	}
	fb.Set(ast.VarOp(varTok.text), hidden)
	if err := p.stmtsUntilBrace(fb); err != nil {
		return err
	}
	fb.Block(afterLabel)
	return nil
}

// stmtsUntilBrace parses statements until '}' without opening a new block
// scope (shared by try bodies).
func (p *parser) stmtsUntilBrace(fb *ast.FuncBuilder) error {
	return p.stmts(fb)
}

// instruction parses `[target =] mnemonic operands...`.
func (p *parser) instruction(fb *ast.FuncBuilder) error {
	var target ast.Operand
	first := p.next() // ident
	if p.isPunct("=") {
		p.next()
		target = ast.VarOp(first.text)
		first = p.next()
		if first.kind != tokIdent {
			// `x = <literal>` plain assignment.
			p.pos--
			op, err := p.operand()
			if err != nil {
				return err
			}
			fb.Set(target, op)
			return p.endOfStmt()
		}
	}
	mnemonic := first.text
	switch mnemonic {
	case "call":
		return p.callStmt(fb, target, "call")
	case "new":
		t, err := p.typeExpr()
		if err != nil {
			return err
		}
		// Allow constructor-call syntax `new set<addr>()`.
		if p.isPunct("(") {
			p.next()
			if err := p.expectPunct(")"); err != nil {
				return err
			}
		}
		fb.Assign(target, "new", ast.TypeOperand(p.resolveNamed(t)))
		return p.endOfStmt()
	case "thread.schedule":
		// thread.schedule foo(args) vid
		fn := p.next()
		if fn.kind != tokIdent {
			return p.errf("thread.schedule needs a function name")
		}
		args, err := p.parenOperands()
		if err != nil {
			return err
		}
		vid, err := p.operand()
		if err != nil {
			return err
		}
		fb.Instr("thread.schedule", ast.FuncOperand(fn.text),
			ast.Operand{Kind: ast.CtorOp, Elems: args}, vid)
		return p.endOfStmt()
	case "timer.schedule":
		// timer.schedule t foo(args)
		at, err := p.operand()
		if err != nil {
			return err
		}
		fn := p.next()
		if fn.kind != tokIdent {
			return p.errf("timer.schedule needs a function name")
		}
		args, err := p.parenOperands()
		if err != nil {
			return err
		}
		fb.Assign(target, "timer.schedule", at, ast.FuncOperand(fn.text),
			ast.Operand{Kind: ast.CtorOp, Elems: args})
		return p.endOfStmt()
	case "hook.run":
		fn := p.next()
		if fn.kind != tokIdent {
			return p.errf("hook.run needs a hook name")
		}
		var ops []ast.Operand
		for p.cur().kind != tokNewline && p.cur().kind != tokEOF && !p.isPunct("}") {
			op, err := p.operand()
			if err != nil {
				return err
			}
			ops = append(ops, op)
		}
		fb.Instr("hook.run", append([]ast.Operand{ast.FuncOperand(fn.text)}, ops...)...)
		return p.endOfStmt()
	}
	spec := opSpecs[mnemonic]
	var ops []ast.Operand
	for p.cur().kind != tokNewline && p.cur().kind != tokEOF && !p.isPunct("}") {
		idx := len(ops)
		switch {
		case spec.labels[idx]:
			l := p.next()
			ops = append(ops, ast.LabelOp(l.text))
		case spec.fields[idx]:
			f := p.next()
			ops = append(ops, ast.FieldOperand(f.text))
		case spec.typs[idx]:
			t, err := p.typeExpr()
			if err != nil {
				return err
			}
			ops = append(ops, ast.TypeOperand(p.resolveNamed(t)))
		default:
			op, err := p.operand()
			if err != nil {
				return err
			}
			ops = append(ops, op)
		}
	}
	in := &ast.Instr{Op: mnemonic, Target: target, Ops: ops}
	fb.Append(in)
	return p.endOfStmt()
}

func (p *parser) endOfStmt() error {
	if p.cur().kind == tokNewline {
		p.next()
		return nil
	}
	if p.isPunct("}") || p.cur().kind == tokEOF {
		return nil
	}
	return p.errf("unexpected token %q at end of statement", p.cur().text)
}

// callStmt parses `call Fn(args)` / `target = call Fn(args)`.
func (p *parser) callStmt(fb *ast.FuncBuilder, target ast.Operand, op string) error {
	fn := p.next()
	if fn.kind != tokIdent {
		return p.errf("call needs a function name")
	}
	args, err := p.parenOperands()
	if err != nil {
		return err
	}
	fb.Assign(target, op, append([]ast.Operand{ast.FuncOperand(fn.text)}, args...)...)
	return p.endOfStmt()
}

// parenOperands parses "(a, b, ...)"; an absent list yields nil.
func (p *parser) parenOperands() ([]ast.Operand, error) {
	if !p.isPunct("(") {
		return nil, nil
	}
	p.next()
	var ops []ast.Operand
	for !p.isPunct(")") {
		op, err := p.operand()
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
		if p.isPunct(",") {
			p.next()
		}
	}
	p.next() // ')'
	return ops, nil
}

// operand parses one value operand.
func (p *parser) operand() (ast.Operand, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		var n int64
		var err error
		if strings.HasPrefix(t.text, "0x") {
			var u uint64
			u, err = strconv.ParseUint(t.text[2:], 16, 64)
			n = int64(u)
		} else {
			n, err = strconv.ParseInt(t.text, 10, 64)
		}
		if err != nil {
			return ast.Operand{}, fmt.Errorf("line %d: bad integer %q", t.line, t.text)
		}
		return ast.IntOp(n), nil
	case tokDouble:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return ast.Operand{}, fmt.Errorf("line %d: bad double %q", t.line, t.text)
		}
		return ast.ConstOp(values.Double(f), types.DoubleT), nil
	case tokString:
		return ast.StringOp(t.text), nil
	case tokAddr:
		a, err := values.ParseAddr(t.text)
		if err != nil {
			return ast.Operand{}, fmt.Errorf("line %d: %v", t.line, err)
		}
		return ast.ConstOp(a, types.AddrT), nil
	case tokNet:
		n, err := values.ParseNet(t.text)
		if err != nil {
			return ast.Operand{}, fmt.Errorf("line %d: %v", t.line, err)
		}
		return ast.ConstOp(n, types.NetT), nil
	case tokPort:
		pv, err := values.ParsePort(t.text)
		if err != nil {
			return ast.Operand{}, fmt.Errorf("line %d: %v", t.line, err)
		}
		return ast.ConstOp(pv, types.PortT), nil
	case tokRegexp:
		re, err := regexp.Compile(t.text)
		if err != nil {
			return ast.Operand{}, fmt.Errorf("line %d: %v", t.line, err)
		}
		return ast.ConstOp(values.Ref(values.KindRegExp, re), types.RegExpT), nil
	case tokPunct:
		switch t.text {
		case "*":
			return ast.ConstOp(values.Nil, types.AnyT), nil
		case "(":
			var elems []ast.Operand
			for !p.isPunct(")") {
				op, err := p.operand()
				if err != nil {
					return ast.Operand{}, err
				}
				elems = append(elems, op)
				if p.isPunct(",") {
					p.next()
				}
			}
			p.next() // ')'
			return ast.Operand{Kind: ast.CtorOp, Elems: elems}, nil
		case "-":
			op, err := p.operand()
			if err != nil {
				return ast.Operand{}, err
			}
			if op.Kind == ast.Const && op.Val.K == values.KindInt {
				return ast.IntOp(-op.Val.AsInt()), nil
			}
			if op.Kind == ast.Const && op.Val.K == values.KindDouble {
				return ast.ConstOp(values.Double(-op.Val.AsDouble()), types.DoubleT), nil
			}
			return ast.Operand{}, fmt.Errorf("line %d: cannot negate %v", t.line, op)
		}
	case tokIdent:
		switch t.text {
		case "True":
			return ast.BoolOp(true), nil
		case "False":
			return ast.BoolOp(false), nil
		case "Null":
			return ast.ConstOp(values.Nil, types.AnyT), nil
		case "interval", "time":
			if p.isPunct("(") {
				p.next()
				arg := p.next()
				if err := p.expectPunct(")"); err != nil {
					return ast.Operand{}, err
				}
				f, err := strconv.ParseFloat(arg.text, 64)
				if err != nil {
					return ast.Operand{}, fmt.Errorf("line %d: bad %s literal", t.line, t.text)
				}
				if t.text == "interval" {
					return ast.ConstOp(values.IntervalVal(int64(f*1e9)), types.IntervalT), nil
				}
				return ast.ConstOp(values.TimeVal(int64(f*1e9)), types.TimeT), nil
			}
		case "b":
			if p.cur().kind == tokString {
				s := p.next()
				return ast.ConstOp(values.BytesFrom([]byte(s.text)), types.BytesT), nil
			}
		}
		// Enum literal Type::Label.
		if i := strings.Index(t.text, "::"); i > 0 {
			if et, ok := p.enums[t.text[:i]]; ok {
				label := t.text[i+2:]
				if v, ok := et.Values[label]; ok {
					return ast.ConstOp(values.EnumVal(et, v), types.EnumT(et)), nil
				}
				return ast.Operand{}, fmt.Errorf("line %d: enum %s has no label %q", t.line, et.Name, label)
			}
		}
		return ast.VarOp(t.text), nil
	}
	return ast.Operand{}, fmt.Errorf("line %d: unexpected operand token %q", t.line, t.text)
}
