package parser

import (
	"bytes"
	"strings"
	"testing"

	"hilti/internal/hilti/vm"
	"hilti/internal/rt/values"
)

func run(t *testing.T, src string, entry string, args ...values.Value) (string, values.Value, error) {
	t.Helper()
	mod, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := vm.Link(mod)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	ex, err := vm.NewExec(prog)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	ex.Out = &out
	v, err := ex.Call(entry, args...)
	return out.String(), v, err
}

func TestFigure3HelloWorld(t *testing.T) {
	// The paper's Figure 3 verbatim (module body).
	src := `
module Main

import Hilti

# Default entry point for execution.
void run () {
    call Hilti::print ("Hello, World!")
}
`
	out, _, err := run(t, src, "Main::run")
	if err != nil {
		t.Fatal(err)
	}
	if out != "Hello, World!\n" {
		t.Fatalf("output %q", out)
	}
}

func TestFigure4BPFFilter(t *testing.T) {
	// The paper's Figure 4: overlay-based filtering of an IPv4 header.
	src := `
module Filter

type Header = overlay {
    version: int<8> at 0 unpack UInt8InBigEndian (4, 7),
    hdr_len: int<8> at 0 unpack UInt8InBigEndian (0, 3),
    src: addr at 12 unpack IPv4InNetworkOrder,
    dst: addr at 16 unpack IPv4InNetworkOrder
}

bool filter (ref<bytes> packet) {
    local addr a1, a2
    local bool b1, b2, b3

    a1 = overlay.get Header src packet
    b1 = equal a1 192.168.1.1
    a2 = overlay.get Header dst packet
    b2 = equal a2 192.168.1.1
    b1 = or b1 b2
    b2 = net.contains 10.0.5.0/24 a1
    b3 = or b1 b2
    return b3
}
`
	hdr := make([]byte, 20)
	hdr[0] = 0x45
	copy(hdr[12:16], []byte{10, 0, 5, 99}) // src in 10.0.5.0/24
	copy(hdr[16:20], []byte{8, 8, 8, 8})   // dst
	_, v, err := run(t, src, "Filter::filter", values.BytesFrom(hdr))
	if err != nil {
		t.Fatal(err)
	}
	if !v.AsBool() {
		t.Fatal("packet in 10.0.5.0/24 should match")
	}
	copy(hdr[12:16], []byte{1, 2, 3, 4})
	_, v, err = run(t, src, "Filter::filter", values.BytesFrom(hdr))
	if err != nil || v.AsBool() {
		t.Fatalf("non-matching packet: %v %v", v, err)
	}
	copy(hdr[16:20], []byte{192, 168, 1, 1})
	_, v, _ = run(t, src, "Filter::filter", values.BytesFrom(hdr))
	if !v.AsBool() {
		t.Fatal("dst host should match")
	}
}

// figure5 is the paper's Figure 5 firewall, lightly adapted to this
// parser's operand conventions.
const figure5 = `
module Firewall

type Rule = struct { net src, net dst }

global ref<classifier<Rule, bool>> rules
global ref<set<tuple<addr, addr>>> dyn

void init_rules () {
    classifier.add rules (10.3.2.1/32, 10.1.0.0/16) True
    classifier.add rules (10.12.0.0/16, 10.1.0.0/16) False
    classifier.add rules (10.1.6.0/24, *) True
    classifier.add rules (10.1.7.0/24, *) True
}

void init_classifier () {
    call init_rules ()
    classifier.compile rules
    set.timeout dyn ExpireStrategy::Access interval (300)
}

bool match_packet (time t, addr src, addr dst) {
    local bool b

    timer_mgr.advance_global t

    b = set.exists dyn (src, dst)
    if.else b return_action lookup

  lookup:
    try {
        b = classifier.get rules (src, dst)
    } catch ( ref<Hilti::IndexError> e ) {
        return False
    }
    if.else b add_state return_action

  add_state:
    set.insert dyn (src, dst)
    set.insert dyn (dst, src)

  return_action:
    return b
}
`

func TestFigure5Firewall(t *testing.T) {
	mod, err := Parse(figure5)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := vm.Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := vm.NewExec(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Call("Firewall::init_classifier"); err != nil {
		t.Fatal(err)
	}
	match := func(ts float64, src, dst string) bool {
		v, err := ex.Call("Firewall::match_packet",
			values.TimeVal(int64(ts*1e9)), values.MustParseAddr(src), values.MustParseAddr(dst))
		if err != nil {
			t.Fatalf("match_packet: %v", err)
		}
		return v.AsBool()
	}
	// Static rules.
	if !match(1, "10.3.2.1", "10.1.9.9") {
		t.Fatal("allow rule 1")
	}
	if match(2, "10.12.1.1", "10.1.2.2") {
		t.Fatal("deny rule 2")
	}
	if match(3, "172.16.0.1", "10.1.0.1") {
		t.Fatal("default deny")
	}
	// Dynamic state: the allowed pair opens the reverse direction...
	if !match(4, "10.1.9.9", "10.3.2.1") {
		t.Fatal("reverse direction should be allowed dynamically")
	}
	// ...which expires after 300s of inactivity.
	if match(400, "10.99.1.1", "10.99.2.2") {
		t.Fatal("unrelated pair")
	}
	if match(1000, "10.1.9.9", "10.3.2.1") {
		t.Fatal("dynamic rule should have expired")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`void run() {}`,                              // no module header
		"module M\nvoid f( {",                        // bad params
		"module M\nvoid f() {\n x = unknown.op y\n}", // parse ok, link fails later
		`module M` + "\n" + `global`,                 // truncated global
	}
	for i, src := range cases {
		mod, err := Parse(src)
		if err != nil {
			continue
		}
		if _, err := vm.Link(mod); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestEnumAndIntervalLiterals(t *testing.T) {
	src := `
module M

type Color = enum { Red, Green, Blue }

void run () {
    call Hilti::print (Color::Green)
    call Hilti::print (interval (2.5))
}
`
	out, _, err := run(t, src, "M::run")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Color::Green") || !strings.Contains(out, "2.500000s") {
		t.Fatalf("output %q", out)
	}
}

func TestRegexpLiteral(t *testing.T) {
	src := `
module M

bool check (ref<bytes> data) {
    local regexp re
    local bool b
    re = /HTTP\/[0-9]+/
    b = regexp.matches re data
    return b
}
`
	_, v, err := run(t, src, "M::check", values.BytesFrom([]byte("HTTP/1")))
	if err != nil || !v.AsBool() {
		t.Fatalf("got %v %v", v, err)
	}
	_, v, _ = run(t, src, "M::check", values.BytesFrom([]byte("SMTP")))
	if v.AsBool() {
		t.Fatal("should not match")
	}
}

func TestFigure8TrackPattern(t *testing.T) {
	// The compiled form of Figure 8(b): hooks with struct access.
	src := `
module Track

type conn_id = struct { addr orig_h, port orig_p, addr resp_h, port resp_p }
type connection = struct { ref<conn_id> id }

global ref<set<addr>> hosts

hook void connection_established (ref<connection> c) {
    local addr __t1
    local ref<conn_id> __t2
    __t2 = struct.get c id
    __t1 = struct.get __t2 resp_h
    set.insert hosts __t1
}

hook void bro_done () {
    local ref<vector<addr>> elems
    local int<64> i, n
    local addr a
    local bool cond
    elems = set.elems hosts
    n = vector.size elems
    i = 0
  loop:
    cond = int.lt i n
    if.else cond body done
  body:
    a = vector.get elems i
    call Hilti::print (a)
    i = int.add i 1
    jump loop
  done:
    return
}
`
	mod, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := vm.Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := vm.NewExec(prog)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	ex.Out = &out

	// Build connection structs host-side and run the hooks.
	connID := mod.Types["conn_id"].StructDef.Runtime()
	conn := mod.Types["connection"].StructDef.Runtime()
	for _, ip := range []string{"208.80.152.118", "208.80.152.2", "208.80.152.3", "208.80.152.2"} {
		id := values.NewStruct(connID)
		id.SetName("resp_h", values.MustParseAddr(ip))
		c := values.NewStruct(conn)
		c.SetName("id", values.StructVal(id))
		if err := ex.RunHook("connection_established", values.StructVal(c)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ex.RunHook("bro_done"); err != nil {
		t.Fatal(err)
	}
	want := "208.80.152.118\n208.80.152.2\n208.80.152.3\n"
	if out.String() != want {
		t.Fatalf("output %q, want %q", out.String(), want)
	}
}
