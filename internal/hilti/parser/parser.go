// Package parser parses HILTI's textual surface syntax (.hlt) into AST
// modules — the form the paper's Figures 3–5 write programs in. Host
// applications usually build ASTs in memory instead (ast.Builder); the
// textual form serves hiltic/hilti-build, examples, and tests.
//
// Known simplification: IPv6 address literals must start with a digit
// (e.g. 2001:db8::1); others can be built via constants or host glue.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
	"hilti/internal/rt/container"
	"hilti/internal/rt/overlay"
	"hilti/internal/rt/values"
)

// Parse parses one module of HILTI source.
func Parse(src string) (*ast.Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	p.enums = map[string]*values.EnumType{
		"ExpireStrategy": container.ExpireStrategyEnum,
	}
	return p.module()
}

type parser struct {
	toks  []token
	pos   int
	b     *ast.Builder
	enums map[string]*values.EnumType
	anon  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) skipNewlines() {
	for p.cur().kind == tokNewline {
		p.pos++
	}
}

func (p *parser) errf(f string, a ...any) error {
	return fmt.Errorf("line %d: %s", p.cur().line, fmt.Sprintf(f, a...))
}

func (p *parser) expectIdent(text string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != text {
		return fmt.Errorf("line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

func (p *parser) expectPunct(text string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != text {
		return fmt.Errorf("line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

func (p *parser) isPunct(text string) bool {
	return p.cur().kind == tokPunct && p.cur().text == text
}

func (p *parser) module() (*ast.Module, error) {
	p.skipNewlines()
	if err := p.expectIdent("module"); err != nil {
		return nil, err
	}
	name := p.next()
	if name.kind != tokIdent {
		return nil, fmt.Errorf("line %d: expected module name", name.line)
	}
	p.b = ast.NewBuilder(name.text)

	for {
		p.skipNewlines()
		t := p.cur()
		if t.kind == tokEOF {
			return p.b.M, nil
		}
		if t.kind != tokIdent {
			return nil, p.errf("unexpected token %q at top level", t.text)
		}
		switch t.text {
		case "import":
			p.next()
			imp := p.next()
			p.b.Import(imp.text)
		case "global":
			p.next()
			if err := p.globalDecl(); err != nil {
				return nil, err
			}
		case "const":
			p.next()
			if err := p.constDecl(); err != nil {
				return nil, err
			}
		case "type":
			p.next()
			if err := p.typeDecl(); err != nil {
				return nil, err
			}
		case "hook":
			p.next()
			if err := p.function(true); err != nil {
				return nil, err
			}
		default:
			if err := p.function(false); err != nil {
				return nil, err
			}
		}
	}
}

func (p *parser) globalDecl() error {
	t, err := p.typeExpr()
	if err != nil {
		return err
	}
	name := p.next()
	if name.kind != tokIdent {
		return fmt.Errorf("line %d: expected global name", name.line)
	}
	if p.isPunct("=") {
		p.next()
		op, err := p.operand()
		if err != nil {
			return err
		}
		// Constructor expressions like set<addr>() initialize to a fresh
		// container, which the linker does automatically; constants are
		// kept as explicit initializers.
		if op.Kind == ast.Const {
			p.b.Global(name.text, t, op)
			return nil
		}
	}
	p.b.Global(name.text, t)
	return nil
}

func (p *parser) constDecl() error {
	t, err := p.typeExpr()
	if err != nil {
		return err
	}
	_ = t
	name := p.next()
	if err := p.expectPunct("="); err != nil {
		return err
	}
	op, err := p.operand()
	if err != nil {
		return err
	}
	if op.Kind != ast.Const {
		return p.errf("const initializer must be a literal")
	}
	p.b.M.Consts[name.text] = op
	return nil
}

func (p *parser) typeDecl() error {
	name := p.next()
	if name.kind != tokIdent {
		return fmt.Errorf("line %d: expected type name", name.line)
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	kw := p.next()
	switch kw.text {
	case "struct":
		return p.structDecl(name.text)
	case "enum":
		return p.enumDecl(name.text)
	case "overlay":
		return p.overlayDecl(name.text)
	default:
		return fmt.Errorf("line %d: unsupported type declaration %q", kw.line, kw.text)
	}
}

func (p *parser) structDecl(name string) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	def := &types.StructDef{Name: name}
	for {
		p.skipNewlines()
		if p.isPunct("}") {
			p.next()
			break
		}
		ft, err := p.typeExpr()
		if err != nil {
			return err
		}
		fn := p.next()
		if fn.kind != tokIdent {
			return fmt.Errorf("line %d: expected field name", fn.line)
		}
		def.Fields = append(def.Fields, types.StructField{Name: fn.text, Type: ft, Default: values.Unset})
		p.skipNewlines()
		if p.isPunct(",") {
			p.next()
		}
	}
	p.b.DeclareType(name, types.StructT(def))
	return nil
}

func (p *parser) enumDecl(name string) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	var labels []string
	for {
		p.skipNewlines()
		if p.isPunct("}") {
			p.next()
			break
		}
		l := p.next()
		if l.kind != tokIdent {
			return fmt.Errorf("line %d: expected enum label", l.line)
		}
		labels = append(labels, l.text)
		p.skipNewlines()
		if p.isPunct(",") {
			p.next()
		}
	}
	et := values.NewEnumType(name, labels...)
	p.enums[name] = et
	p.b.DeclareType(name, types.EnumT(et))
	return nil
}

// overlayDecl parses the paper's Figure 4 syntax:
//
//	version: int<8> at 0 unpack UInt8InBigEndian (4, 7),
//	src: addr at 12 unpack IPv4InNetworkOrder
func (p *parser) overlayDecl(name string) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	var fields []overlay.Field
	for {
		p.skipNewlines()
		if p.isPunct("}") {
			p.next()
			break
		}
		fn := p.next()
		if fn.kind != tokIdent {
			return fmt.Errorf("line %d: expected overlay field name", fn.line)
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		if _, err := p.typeExpr(); err != nil { // field type (informational)
			return err
		}
		if err := p.expectIdent("at"); err != nil {
			return err
		}
		offTok := p.next()
		off, err := strconv.Atoi(offTok.text)
		if err != nil {
			return fmt.Errorf("line %d: bad offset %q", offTok.line, offTok.text)
		}
		if err := p.expectIdent("unpack"); err != nil {
			return err
		}
		fmtTok := p.next()
		f := overlay.Field{Name: fn.text, Offset: off}
		switch fmtTok.text {
		case "UInt8InBigEndian", "UInt8":
			f.Format = overlay.UInt8
		case "UInt16InBigEndian", "UInt16BE":
			f.Format = overlay.UInt16BE
		case "UInt16InLittleEndian", "UInt16LE":
			f.Format = overlay.UInt16LE
		case "UInt32InBigEndian", "UInt32BE":
			f.Format = overlay.UInt32BE
		case "UInt32InLittleEndian", "UInt32LE":
			f.Format = overlay.UInt32LE
		case "IPv4InNetworkOrder", "IPv4":
			f.Format = overlay.IPv4
		case "IPv6InNetworkOrder", "IPv6":
			f.Format = overlay.IPv6
		case "PortTCP":
			f.Format = overlay.PortTCP
		case "PortUDP":
			f.Format = overlay.PortUDP
		default:
			return fmt.Errorf("line %d: unknown unpack format %q", fmtTok.line, fmtTok.text)
		}
		// Optional bit range "(lo, hi)".
		if p.isPunct("(") {
			p.next()
			lo := p.next()
			if err := p.expectPunct(","); err != nil {
				return err
			}
			hi := p.next()
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			f.BitLo, _ = strconv.Atoi(lo.text)
			f.BitHi, _ = strconv.Atoi(hi.text)
			if f.Format == overlay.UInt8 {
				f.Format = overlay.UInt8Bits
			}
		}
		fields = append(fields, f)
		p.skipNewlines()
		if p.isPunct(",") {
			p.next()
		}
	}
	p.b.DeclareType(name, types.OverlayT(overlay.New(name, fields...)))
	return nil
}

// typeExpr parses a type expression.
func (p *parser) typeExpr() (*types.Type, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("line %d: expected type, got %q", t.line, t.text)
	}
	switch t.text {
	case "void":
		return types.VoidT, nil
	case "any":
		return types.AnyT, nil
	case "bool":
		return types.BoolT, nil
	case "double":
		return types.DoubleT, nil
	case "string":
		return types.StringT, nil
	case "bytes":
		return types.BytesT, nil
	case "addr":
		return types.AddrT, nil
	case "net":
		return types.NetT, nil
	case "port":
		return types.PortT, nil
	case "time":
		return types.TimeT, nil
	case "interval":
		return types.IntervalT, nil
	case "regexp":
		return types.RegExpT, nil
	case "match_state":
		return types.MatchT, nil
	case "timer":
		return types.TimerT, nil
	case "timer_mgr":
		return types.TimerMgrT, nil
	case "file":
		return types.FileT, nil
	case "exception":
		return types.ExcT, nil
	case "iosrc":
		return types.IOSrcT, nil
	case "int":
		width := 64
		if p.isPunct("<") {
			p.next()
			w := p.next()
			width, _ = strconv.Atoi(w.text)
			if err := p.expectPunct(">"); err != nil {
				return nil, err
			}
		}
		return types.IntT(width), nil
	case "ref", "list", "set", "vector", "map", "tuple", "iterator", "channel", "classifier", "callable":
		var params []*types.Type
		if p.isPunct("<") {
			p.next()
			for {
				pt, err := p.typeExpr()
				if err != nil {
					return nil, err
				}
				params = append(params, pt)
				if p.isPunct(",") {
					p.next()
					continue
				}
				break
			}
			if err := p.expectPunct(">"); err != nil {
				return nil, err
			}
		}
		switch t.text {
		case "ref":
			return types.RefT(params[0]), nil
		case "list":
			return types.ListT(params[0]), nil
		case "set":
			return types.SetT(params[0]), nil
		case "vector":
			return types.VectorT(params[0]), nil
		case "map":
			return types.MapT(params[0], params[1]), nil
		case "tuple":
			return types.TupleT(params...), nil
		case "iterator":
			return types.IterT(params[0]), nil
		case "channel":
			return types.ChannelT(params[0]), nil
		case "classifier":
			return types.ClassifierT(params[0], params[1]), nil
		default:
			if len(params) == 0 {
				return nil, p.errf("callable needs type parameters")
			}
			return types.CallableT(params[0], params[1:]...), nil
		}
	default:
		// Named type (struct/enum/overlay), possibly qualified. Exception
		// types like Hilti::IndexError are recognized by prefix.
		if nt, ok := p.b.M.Types[t.text]; ok {
			return nt, nil
		}
		if strings.Contains(t.text, "::") {
			return types.ExceptionT(t.text), nil
		}
		// Forward reference: produce a named struct placeholder.
		return &types.Type{Kind: types.Struct, Name: t.text}, nil
	}
}

// resolveNamed patches a placeholder named type once declared.
func (p *parser) resolveNamed(t *types.Type) *types.Type {
	if t != nil && t.Kind == types.Struct && t.StructDef == nil && t.Name != "" {
		if nt, ok := p.b.M.Types[t.Name]; ok {
			return nt
		}
	}
	return t
}
