// Package check implements HILTI's static verifier: the pass that runs
// between AST construction and code generation, enforcing the statically
// typed, contained execution model of paper §3.2 ("a contained,
// well-defined, and statically typed environment"). It rejects programs
// with undefined names, dangling branch targets, malformed control flow,
// arity-mismatched calls, unhashable container keys, and unbalanced
// protected regions — before any code is generated.
//
// The backend (internal/hilti/vm) re-validates operationally during
// lowering; this package exists so host-application compilers get precise
// diagnostics at the AST level, where they can map them back to their own
// input (a firewall rule, a grammar production, a script line).
package check

import (
	"fmt"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
)

// Error is one diagnostic.
type Error struct {
	Module   string
	Function string
	Instr    string
	Msg      string
}

// Error implements error.
func (e *Error) Error() string {
	where := e.Module
	if e.Function != "" {
		where += "::" + e.Function
	}
	if e.Instr != "" {
		return fmt.Sprintf("%s: in %q: %s", where, e.Instr, e.Msg)
	}
	return fmt.Sprintf("%s: %s", where, e.Msg)
}

// Check validates a set of modules as a unit (cross-module references are
// resolved the way the linker will). It returns all diagnostics found.
func Check(mods ...*ast.Module) []error {
	c := &checker{
		funcs:   map[string]*ast.Function{},
		globals: map[string]*types.Type{},
		consts:  map[string]bool{},
	}
	for _, m := range mods {
		for _, f := range m.Functions {
			if !f.IsHook {
				if prev, dup := c.funcs[m.Name+"::"+f.Name]; dup && prev != f {
					c.errf(m.Name, f.Name, "", "duplicate function %q", f.Name)
				}
				c.funcs[m.Name+"::"+f.Name] = f
				if _, exists := c.funcs[f.Name]; !exists {
					c.funcs[f.Name] = f
				}
			}
		}
		seen := map[string]bool{}
		for _, g := range m.Globals {
			if seen[g.Name] {
				c.errf(m.Name, "", "", "duplicate global %q", g.Name)
			}
			seen[g.Name] = true
			c.globals[g.Name] = g.Type
			c.globals[m.Name+"::"+g.Name] = g.Type
			c.checkContainerKeys(m.Name, g.Name, g.Type)
		}
		for name := range m.Consts {
			c.consts[name] = true
			c.consts[m.Name+"::"+name] = true
		}
	}
	for _, m := range mods {
		for _, f := range m.Functions {
			c.function(m, f)
		}
	}
	return c.errs
}

type checker struct {
	errs    []error
	funcs   map[string]*ast.Function
	globals map[string]*types.Type
	consts  map[string]bool
}

func (c *checker) errf(mod, fn, instr, f string, a ...any) {
	c.errs = append(c.errs, &Error{Module: mod, Function: fn, Instr: instr,
		Msg: fmt.Sprintf(f, a...)})
}

// checkContainerKeys rejects map/set declarations keyed by unhashable
// types (the static guarantee behind values.Key's panic-free contract).
func (c *checker) checkContainerKeys(mod, name string, t *types.Type) {
	if t == nil {
		return
	}
	u := t.Deref()
	switch u.Kind {
	case types.Set:
		if len(u.Params) == 1 && !u.Params[0].Hashable() && u.Params[0].Kind != types.Any {
			c.errf(mod, "", "", "global %q: set element type %s is not hashable", name, u.Params[0])
		}
	case types.Map:
		if len(u.Params) == 2 && !u.Params[0].Hashable() && u.Params[0].Kind != types.Any {
			c.errf(mod, "", "", "global %q: map key type %s is not hashable", name, u.Params[0])
		}
	}
}

func (c *checker) function(m *ast.Module, f *ast.Function) {
	vars := map[string]bool{}
	for _, p := range f.Params {
		vars[p.Name] = true
	}
	for _, l := range f.Locals {
		if vars[l.Name] {
			c.errf(m.Name, f.Name, "", "duplicate local %q", l.Name)
		}
		vars[l.Name] = true
	}
	labels := map[string]bool{}
	for _, b := range f.Blocks {
		if b.Name != "" && labels[b.Name] {
			c.errf(m.Name, f.Name, "", "duplicate block label %q", b.Name)
		}
		labels[b.Name] = true
	}
	if f.IsHook && f.Result != nil && f.Result.Kind != types.Void {
		c.errf(m.Name, f.Name, "", "hook bodies must return void")
	}

	tryDepth := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			c.instr(m, f, in, vars, labels)
			switch in.Op {
			case "try.begin":
				tryDepth++
			case "try.end":
				tryDepth--
				if tryDepth < 0 {
					c.errf(m.Name, f.Name, in.String(), "try.end without try.begin")
					tryDepth = 0
				}
			}
		}
	}
	if tryDepth != 0 {
		c.errf(m.Name, f.Name, "", "unclosed try block")
	}
}

func (c *checker) instr(m *ast.Module, f *ast.Function, in *ast.Instr,
	vars map[string]bool, labels map[string]bool) {

	checkOperand := func(o ast.Operand) {
		switch o.Kind {
		case ast.Var:
			if !vars[o.Name] && !c.globalOrConst(m, o.Name) {
				c.errf(m.Name, f.Name, in.String(), "undefined variable %q", o.Name)
			}
		case ast.Label:
			if !labels[o.Name] {
				c.errf(m.Name, f.Name, in.String(), "undefined label %q", o.Name)
			}
		case ast.CtorOp:
			for _, e := range o.Elems {
				if e.Kind == ast.Var && !vars[e.Name] && !c.globalOrConst(m, e.Name) {
					c.errf(m.Name, f.Name, in.String(), "undefined variable %q", e.Name)
				}
			}
		}
	}
	if !in.Target.IsZero() {
		if in.Target.Kind != ast.Var {
			c.errf(m.Name, f.Name, in.String(), "target must be a variable")
		} else if !vars[in.Target.Name] && !c.globalOrConst(m, in.Target.Name) {
			c.errf(m.Name, f.Name, in.String(), "undefined target %q", in.Target.Name)
		}
	}
	for _, o := range in.Ops {
		checkOperand(o)
	}

	// Calls: arity against functions visible at link scope.
	if in.Op == "call" && len(in.Ops) > 0 && in.Ops[0].Kind == ast.FuncOp {
		name := in.Ops[0].Name
		callee := c.funcs[m.Name+"::"+name]
		if callee == nil {
			callee = c.funcs[name]
		}
		if callee != nil && len(in.Ops)-1 != len(callee.Params) {
			c.errf(m.Name, f.Name, in.String(), "call to %s with %d args, want %d",
				name, len(in.Ops)-1, len(callee.Params))
		}
	}
	// Branch instructions must carry labels.
	switch in.Op {
	case "jump":
		if len(in.Ops) != 1 || in.Ops[0].Kind != ast.Label {
			c.errf(m.Name, f.Name, in.String(), "jump requires one label operand")
		}
	case "if.else":
		if len(in.Ops) != 3 || in.Ops[1].Kind != ast.Label || in.Ops[2].Kind != ast.Label {
			c.errf(m.Name, f.Name, in.String(), "if.else requires condition and two labels")
		}
	case "return.result":
		if f.Result != nil && f.Result.Kind == types.Void && !f.IsHook {
			c.errf(m.Name, f.Name, in.String(), "value return from void function")
		}
	}
}

func (c *checker) globalOrConst(m *ast.Module, name string) bool {
	if _, ok := c.globals[name]; ok {
		return true
	}
	if _, ok := c.globals[m.Name+"::"+name]; ok {
		return true
	}
	return c.consts[name] || c.consts[m.Name+"::"+name]
}
