package check

import (
	"strings"
	"testing"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/parser"
	"hilti/internal/hilti/types"
)

func mustParse(t *testing.T, src string) *ast.Module {
	t.Helper()
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func wantErr(t *testing.T, errs []error, substr string) {
	t.Helper()
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return
		}
	}
	t.Fatalf("missing diagnostic %q in %v", substr, errs)
}

func TestCleanProgramPasses(t *testing.T) {
	m := mustParse(t, `
module M
import Hilti
global ref<set<addr>> hosts
void run () {
    local addr a
    a = 1.2.3.4
    set.insert hosts a
    call Hilti::print (a)
}
`)
	if errs := Check(m); len(errs) != 0 {
		t.Fatalf("unexpected diagnostics: %v", errs)
	}
}

func TestUndefinedVariable(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.VoidT)
	fb.Assign(ast.VarOp("x"), "int.add", ast.VarOp("nope"), ast.IntOp(1))
	errs := Check(b.M)
	wantErr(t, errs, `undefined target "x"`)
	wantErr(t, errs, `undefined variable "nope"`)
}

func TestUndefinedLabel(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.VoidT)
	fb.Jump("missing")
	wantErr(t, Check(b.M), `undefined label "missing"`)
}

func TestDuplicateDeclarations(t *testing.T) {
	b := ast.NewBuilder("M")
	b.Global("g", types.Int64T)
	b.Global("g", types.Int64T)
	fb := b.Function("f", types.VoidT)
	fb.Local("x", types.Int64T)
	fb.Local("x", types.BoolT)
	errs := Check(b.M)
	wantErr(t, errs, `duplicate global "g"`)
	wantErr(t, errs, `duplicate local "x"`)
}

func TestCallArity(t *testing.T) {
	b := ast.NewBuilder("M")
	callee := b.Function("two", types.VoidT,
		ast.Param{Name: "a", Type: types.Int64T}, ast.Param{Name: "b", Type: types.Int64T})
	callee.ReturnVoid()
	fb := b.Function("f", types.VoidT)
	fb.Call("two", ast.IntOp(1))
	wantErr(t, Check(b.M), "call to two with 1 args, want 2")
}

func TestUnhashableContainerKey(t *testing.T) {
	b := ast.NewBuilder("M")
	b.Global("bad", types.RefT(types.SetT(types.RefT(types.ListT(types.Int64T)))))
	wantErr(t, Check(b.M), "not hashable")
}

func TestUnbalancedTry(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.VoidT)
	e := fb.Local("e", types.ExcT)
	fb.TryBegin("c", e)
	fb.Block("c")
	fb.ReturnVoid()
	wantErr(t, Check(b.M), "unclosed try")
}

func TestHookMustBeVoid(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Hook("ev", 0)
	fb.F.Result = types.Int64T
	fb.Return(ast.IntOp(1))
	wantErr(t, Check(b.M), "hook bodies must return void")
}

func TestCrossModuleResolution(t *testing.T) {
	a := ast.NewBuilder("A")
	a.Global("shared", types.Int64T)
	fn := a.Function("helper", types.VoidT, ast.Param{Name: "x", Type: types.Int64T})
	fn.ReturnVoid()

	b := ast.NewBuilder("B")
	fb := b.Function("f", types.VoidT)
	fb.Assign(ast.VarOp("shared"), "int.add", ast.VarOp("shared"), ast.IntOp(1))
	fb.Call("helper", ast.IntOp(5))
	if errs := Check(a.M, b.M); len(errs) != 0 {
		t.Fatalf("cross-module references should resolve: %v", errs)
	}
}

func TestValueReturnFromVoid(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.VoidT)
	fb.Return(ast.IntOp(1))
	wantErr(t, Check(b.M), "value return from void function")
}
