package check

import (
	"testing"

	"hilti/internal/hilti/ast"
	"hilti/internal/hilti/types"
)

// These tests drive the verifier through parsed source (where the surface
// syntax can express the mistake) and through hand-built ASTs (for operand
// shapes the parser itself would never emit, but host-application compilers
// generating ASTs directly can).

func TestSourceDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "undefined variable",
			src: `
module M
void f () {
    local int64 x
    x = int.add y 1
}
`,
			want: []string{`undefined variable "y"`},
		},
		{
			name: "undefined target",
			src: `
module M
void f () {
    x = int.add 1 2
}
`,
			want: []string{`undefined target "x"`},
		},
		{
			name: "undefined jump label",
			src: `
module M
void f () {
    jump nowhere
}
`,
			want: []string{`undefined label "nowhere"`},
		},
		{
			name: "duplicate local",
			src: `
module M
void f () {
    local int64 x
    local bool x
}
`,
			want: []string{`duplicate local "x"`},
		},
		{
			name: "local shadowing parameter",
			src: `
module M
void f (int64 p) {
    local int64 p
}
`,
			want: []string{`duplicate local "p"`},
		},
		{
			name: "duplicate global",
			src: `
module M
global int64 g
global int64 g
`,
			want: []string{`duplicate global "g"`},
		},
		{
			name: "call arity mismatch",
			src: `
module M
void two (int64 a, int64 b) {
    return
}
void f () {
    call two (1)
}
`,
			want: []string{"call to two with 1 args, want 2"},
		},
		{
			name: "value return from void",
			src: `
module M
void f () {
    return 1
}
`,
			want: []string{"value return from void function"},
		},
		{
			name: "several diagnostics in one function",
			src: `
module M
void f () {
    local int64 x
    local int64 x
    x = int.add missing 1
    jump gone
}
`,
			want: []string{
				`duplicate local "x"`,
				`undefined variable "missing"`,
				`undefined label "gone"`,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := Check(mustParse(t, tc.src))
			if len(errs) == 0 {
				t.Fatalf("no diagnostics for %s", tc.name)
			}
			for _, w := range tc.want {
				wantErr(t, errs, w)
			}
		})
	}
}

func TestDuplicateBlockLabel(t *testing.T) {
	// The builder re-enters same-named blocks, so the duplicate can only
	// come from a hand-assembled function body.
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.VoidT)
	fb.ReturnVoid()
	fb.F.Blocks = append(fb.F.Blocks,
		&ast.Block{Name: "top"}, &ast.Block{Name: "top"})
	wantErr(t, Check(b.M), `duplicate block label "top"`)
}

func TestTryEndWithoutBegin(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.VoidT)
	fb.Instr("try.end")
	fb.ReturnVoid()
	errs := Check(b.M)
	wantErr(t, errs, "try.end without try.begin")
	// The depth resets after reporting, so no spurious "unclosed try".
	for _, e := range errs {
		if e.Error() == "unclosed try" {
			t.Fatalf("spurious unclosed-try diagnostic: %v", errs)
		}
	}
}

func TestJumpOperandShape(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.VoidT)
	fb.Instr("jump") // no operand at all
	wantErr(t, Check(b.M), "jump requires one label operand")

	b2 := ast.NewBuilder("M")
	fb2 := b2.Function("f", types.VoidT)
	fb2.Instr("jump", ast.IntOp(1)) // wrong operand kind
	wantErr(t, Check(b2.M), "jump requires one label operand")
}

func TestIfElseOperandShape(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.VoidT)
	fb.Block("a")
	fb.Instr("if.else", ast.BoolOp(true), ast.LabelOp("a")) // missing else label
	wantErr(t, Check(b.M), "if.else requires condition and two labels")

	b2 := ast.NewBuilder("M")
	fb2 := b2.Function("f", types.VoidT)
	fb2.Instr("if.else", ast.BoolOp(true), ast.IntOp(0), ast.IntOp(1))
	wantErr(t, Check(b2.M), "if.else requires condition and two labels")
}

func TestTargetMustBeVariable(t *testing.T) {
	b := ast.NewBuilder("M")
	fb := b.Function("f", types.VoidT)
	fb.Append(&ast.Instr{Op: "int.add", Target: ast.IntOp(1),
		Ops: []ast.Operand{ast.IntOp(1), ast.IntOp(2)}})
	wantErr(t, Check(b.M), "target must be a variable")
}

func TestDuplicateFunction(t *testing.T) {
	b := ast.NewBuilder("M")
	f1 := b.Function("f", types.VoidT)
	f1.ReturnVoid()
	f2 := b.Function("f", types.VoidT)
	f2.ReturnVoid()
	wantErr(t, Check(b.M), `duplicate function "f"`)
}

func TestUnhashableMapKey(t *testing.T) {
	b := ast.NewBuilder("M")
	b.Global("bad", types.RefT(types.MapT(types.RefT(types.ListT(types.Int64T)), types.Int64T)))
	wantErr(t, Check(b.M), "not hashable")
}

func TestUndefinedVariableInsideCtor(t *testing.T) {
	b := ast.NewBuilder("M")
	callee := b.Function("work", types.VoidT, ast.Param{Name: "x", Type: types.Int64T})
	callee.ReturnVoid()
	fb := b.Function("f", types.VoidT)
	fb.Instr("thread.schedule", ast.FuncOperand("work"),
		ast.Operand{Kind: ast.CtorOp, Elems: []ast.Operand{ast.VarOp("ghost")}},
		ast.IntOp(1))
	wantErr(t, Check(b.M), `undefined variable "ghost"`)
}

func TestCrossModuleArityMismatch(t *testing.T) {
	a := ast.NewBuilder("A")
	fn := a.Function("helper", types.VoidT, ast.Param{Name: "x", Type: types.Int64T})
	fn.ReturnVoid()

	b := ast.NewBuilder("B")
	fb := b.Function("f", types.VoidT)
	fb.Call("helper", ast.IntOp(1), ast.IntOp(2))
	wantErr(t, Check(a.M, b.M), "call to helper with 2 args, want 1")
}

func TestErrorFormatting(t *testing.T) {
	e := &Error{Module: "M", Function: "f", Instr: "jump x", Msg: "boom"}
	if got := e.Error(); got != `M::f: in "jump x": boom` {
		t.Fatalf("Error() = %q", got)
	}
	e2 := &Error{Module: "M", Msg: "boom"}
	if got := e2.Error(); got != "M: boom" {
		t.Fatalf("module-level Error() = %q", got)
	}
}
