package types

import (
	"testing"

	"hilti/internal/rt/values"
)

func TestEqualStructural(t *testing.T) {
	if !Equal(MapT(AddrT, Int64T), MapT(AddrT, Int64T)) {
		t.Fatal("identical maps should be equal")
	}
	if Equal(MapT(AddrT, Int64T), MapT(AddrT, StringT)) {
		t.Fatal("different yields should differ")
	}
	if Equal(IntT(32), IntT(64)) {
		t.Fatal("widths should matter")
	}
	if !Equal(TupleT(AddrT, PortT), TupleT(AddrT, PortT)) {
		t.Fatal("tuples structural")
	}
	if Equal(SetT(AddrT), ListT(AddrT)) {
		t.Fatal("kinds should matter")
	}
}

func TestNamedTypesCompareByName(t *testing.T) {
	a := StructT(&StructDef{Name: "conn"})
	b := StructT(&StructDef{Name: "conn", Fields: []StructField{{Name: "x", Type: Int64T}}})
	c := StructT(&StructDef{Name: "other"})
	if !Equal(a, b) {
		t.Fatal("same-named structs equal")
	}
	if Equal(a, c) {
		t.Fatal("differently named structs differ")
	}
	if !Equal(ExceptionT("Hilti::IndexError"), ExceptionT("Hilti::IndexError")) ||
		Equal(ExceptionT("A"), ExceptionT("B")) {
		t.Fatal("exception naming")
	}
}

func TestDerefAndElem(t *testing.T) {
	rt := RefT(SetT(AddrT))
	if rt.Deref().Kind != Set {
		t.Fatal("deref")
	}
	if rt.Elem().Kind != Addr {
		t.Fatal("elem of set")
	}
	if MapT(StringT, Int64T).Elem().Kind != Int {
		t.Fatal("elem of map is the yield")
	}
	if AddrT.Deref() != AddrT {
		t.Fatal("deref of non-ref is identity")
	}
}

func TestCompatible(t *testing.T) {
	if !Compatible(IntT(64), IntT(8)) {
		t.Fatal("integer widths widen")
	}
	if !Compatible(AnyT, AddrT) || !Compatible(AddrT, AnyT) {
		t.Fatal("any is a wildcard")
	}
	if !Compatible(RefT(SetT(AddrT)), SetT(AddrT)) {
		t.Fatal("ref<T> and T interconvert")
	}
	if Compatible(AddrT, PortT) {
		t.Fatal("distinct scalars incompatible")
	}
}

func TestString(t *testing.T) {
	cases := map[string]*Type{
		"int<64>":                Int64T,
		"ref<set<addr>>":         RefT(SetT(AddrT)),
		"map<string, int<64>>":   MapT(StringT, Int64T),
		"tuple<addr, port>":      TupleT(AddrT, PortT),
		"iterator<bytes>":        IterT(BytesT),
		"classifier<addr, bool>": ClassifierT(AddrT, BoolT),
		"timer_mgr":              TimerMgrT,
		"Hilti::IndexError":      ExceptionT("Hilti::IndexError"),
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", ty.Kind, got, want)
		}
	}
}

func TestHashable(t *testing.T) {
	if !AddrT.Hashable() || !TupleT(AddrT, PortT).Hashable() {
		t.Fatal("addr and addr tuples are hashable")
	}
	if ListT(Int64T).Hashable() {
		t.Fatal("containers are not hashable")
	}
	if TupleT(AddrT, RefT(SetT(AddrT))).Hashable() {
		t.Fatal("tuple with container element not hashable")
	}
	if !RefT(BytesT).Hashable() {
		t.Fatal("bytes (by content) are hashable")
	}
}

func TestValueKind(t *testing.T) {
	if AddrT.ValueKind() != values.KindAddr {
		t.Fatal("addr kind")
	}
	if RefT(MapT(AddrT, Int64T)).ValueKind() != values.KindMap {
		t.Fatal("ref dereferences for value kind")
	}
	if VoidT.ValueKind() != values.KindVoid {
		t.Fatal("void kind")
	}
}

func TestStructDefRuntime(t *testing.T) {
	def := &StructDef{Name: "s", Fields: []StructField{
		{Name: "a", Type: AddrT, Default: values.Unset},
		{Name: "n", Type: Int64T, Default: values.Int(7)},
	}}
	rt := def.Runtime()
	if rt != def.Runtime() {
		t.Fatal("runtime def should be cached")
	}
	s := values.NewStruct(rt)
	if v, ok := s.GetName("n"); !ok || v.AsInt() != 7 {
		t.Fatal("default propagated")
	}
	if def.Index("a") != 0 || def.Index("zz") != -1 {
		t.Fatal("index")
	}
}
