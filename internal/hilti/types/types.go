// Package types implements HILTI's static type system (paper §3.2): the
// domain-specific first-class types, parameterized container and reference
// types, and named user types (structs, enums, overlays). All HILTI values
// are statically typed; containers, iterators and references are
// parameterized by element type, which is what makes the memory model
// type-safe and gives the compiler the context the paper's §7 optimization
// discussion builds on.
package types

import (
	"strconv"
	"strings"

	"hilti/internal/rt/overlay"
	"hilti/internal/rt/values"
)

// Kind enumerates HILTI's type constructors.
type Kind int

// The type kinds.
const (
	Void Kind = iota
	Any       // host-glue escape hatch
	Bool
	Int // width-parameterized: int<8>..int<64>
	Double
	String
	Bytes
	Addr
	Net
	Port
	Time
	Interval
	Enum
	Bitset
	Tuple // Params: element types
	Struct
	List       // Params[0]: element
	Vector     // Params[0]: element
	Set        // Params[0]: element
	Map        // Params[0]: key, Params[1]: value
	Iterator   // Params[0]: container type
	Ref        // Params[0]: referent
	Channel    // Params[0]: element
	Classifier // Params[0]: rule struct, Params[1]: value
	RegExp
	MatchState
	Timer
	TimerMgr
	File
	Callable // Params[0]: result, Params[1:]: args
	Exception
	Overlay
	IOSrc
	Profiler
	Function // function type for references; Params[0]: result, Params[1:]: args
	Hook
)

// Type is a HILTI type. Types are interned only informally: compare with
// Equal, not pointer identity.
type Type struct {
	Kind   Kind
	Width  int     // Int: bit width (8, 16, 32, 64)
	Params []*Type // type parameters, per Kind

	// Named types.
	Name       string
	EnumDef    *values.EnumType
	BitsetDef  *values.BitsetType
	StructDef  *StructDef
	OverlayDef *overlay.Overlay
	ExcName    string // Exception: qualified name, e.g. "Hilti::IndexError"
}

// StructDef describes a struct type's fields at the type level; the
// runtime-level values.StructDef is derived from it.
type StructDef struct {
	Name   string
	Fields []StructField
	RT     *values.StructDef // lazily built runtime definition
}

// StructField is one field of a struct type.
type StructField struct {
	Name    string
	Type    *Type
	Default values.Value // KindUnset when absent
}

// Runtime returns (building once) the runtime struct definition.
func (d *StructDef) Runtime() *values.StructDef {
	if d.RT == nil {
		fs := make([]values.StructField, len(d.Fields))
		for i, f := range d.Fields {
			fs[i] = values.StructField{Name: f.Name, Default: f.Default}
		}
		d.RT = values.NewStructDef(d.Name, fs...)
	}
	return d.RT
}

// Index returns the positional index of a field, or -1.
func (d *StructDef) Index(name string) int {
	for i, f := range d.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// --- Constructors ------------------------------------------------------------

// Singleton simple types.
var (
	VoidT     = &Type{Kind: Void}
	AnyT      = &Type{Kind: Any}
	BoolT     = &Type{Kind: Bool}
	DoubleT   = &Type{Kind: Double}
	StringT   = &Type{Kind: String}
	BytesT    = &Type{Kind: Bytes}
	AddrT     = &Type{Kind: Addr}
	NetT      = &Type{Kind: Net}
	PortT     = &Type{Kind: Port}
	TimeT     = &Type{Kind: Time}
	IntervalT = &Type{Kind: Interval}
	RegExpT   = &Type{Kind: RegExp}
	MatchT    = &Type{Kind: MatchState}
	TimerT    = &Type{Kind: Timer}
	TimerMgrT = &Type{Kind: TimerMgr}
	FileT     = &Type{Kind: File}
	IOSrcT    = &Type{Kind: IOSrc}
	ProfilerT = &Type{Kind: Profiler}
	ExcT      = &Type{Kind: Exception, ExcName: "Hilti::Exception"}
)

// IntT returns int<width>.
func IntT(width int) *Type { return &Type{Kind: Int, Width: width} }

// Int64T is the default integer type.
var Int64T = IntT(64)

// TupleT returns tuple<elems...>.
func TupleT(elems ...*Type) *Type { return &Type{Kind: Tuple, Params: elems} }

// ListT returns list<elem>.
func ListT(elem *Type) *Type { return &Type{Kind: List, Params: []*Type{elem}} }

// VectorT returns vector<elem>.
func VectorT(elem *Type) *Type { return &Type{Kind: Vector, Params: []*Type{elem}} }

// SetT returns set<elem>.
func SetT(elem *Type) *Type { return &Type{Kind: Set, Params: []*Type{elem}} }

// MapT returns map<key, value>.
func MapT(key, val *Type) *Type { return &Type{Kind: Map, Params: []*Type{key, val}} }

// RefT returns ref<t>.
func RefT(t *Type) *Type { return &Type{Kind: Ref, Params: []*Type{t}} }

// IterT returns iterator<container>.
func IterT(container *Type) *Type { return &Type{Kind: Iterator, Params: []*Type{container}} }

// ChannelT returns channel<elem>.
func ChannelT(elem *Type) *Type { return &Type{Kind: Channel, Params: []*Type{elem}} }

// ClassifierT returns classifier<rule, value>.
func ClassifierT(rule, val *Type) *Type {
	return &Type{Kind: Classifier, Params: []*Type{rule, val}}
}

// CallableT returns callable<result, args...>.
func CallableT(result *Type, args ...*Type) *Type {
	return &Type{Kind: Callable, Params: append([]*Type{result}, args...)}
}

// FunctionT returns a function type.
func FunctionT(result *Type, args ...*Type) *Type {
	return &Type{Kind: Function, Params: append([]*Type{result}, args...)}
}

// StructT returns a named struct type.
func StructT(def *StructDef) *Type {
	return &Type{Kind: Struct, Name: def.Name, StructDef: def}
}

// EnumT returns a named enum type.
func EnumT(def *values.EnumType) *Type {
	return &Type{Kind: Enum, Name: def.Name, EnumDef: def}
}

// OverlayT returns a named overlay type.
func OverlayT(def *overlay.Overlay) *Type {
	return &Type{Kind: Overlay, Name: def.Name, OverlayDef: def}
}

// ExceptionT returns an exception type with a qualified name.
func ExceptionT(name string) *Type { return &Type{Kind: Exception, ExcName: name} }

// --- Operations --------------------------------------------------------------

// Deref strips one level of ref<>.
func (t *Type) Deref() *Type {
	if t != nil && t.Kind == Ref && len(t.Params) == 1 {
		return t.Params[0]
	}
	return t
}

// Elem returns the element type of a container (map: the value type).
func (t *Type) Elem() *Type {
	u := t.Deref()
	switch u.Kind {
	case List, Vector, Set, Channel:
		return u.Params[0]
	case Map:
		return u.Params[1]
	case Tuple:
		return AnyT
	default:
		return AnyT
	}
}

// Equal reports structural type equality (named types by name).
func Equal(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Int:
		return a.Width == b.Width
	case Enum, Bitset, Struct, Overlay:
		return a.Name == b.Name
	case Exception:
		return a.ExcName == b.ExcName
	}
	if len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if !Equal(a.Params[i], b.Params[i]) {
			return false
		}
	}
	return true
}

// Compatible reports assignment compatibility: equal types, anything into
// any, and integer widths widen implicitly (the runtime computes in 64
// bits, as the paper's prototype does for overloaded int instructions).
func Compatible(dst, src *Type) bool {
	if dst == nil || src == nil {
		return true // unknown: defer to runtime
	}
	if dst.Kind == Any || src.Kind == Any {
		return true
	}
	if dst.Kind == Int && src.Kind == Int {
		return true
	}
	// ref<T> and T interconvert implicitly for the heap types, as HILTI
	// code manipulates heap objects only through references.
	return Equal(dst.Deref(), src.Deref())
}

// ValueKind maps a type to the runtime value kind it produces.
func (t *Type) ValueKind() values.Kind {
	switch t.Deref().Kind {
	case Bool:
		return values.KindBool
	case Int:
		return values.KindInt
	case Double:
		return values.KindDouble
	case String:
		return values.KindString
	case Bytes:
		return values.KindBytes
	case Addr:
		return values.KindAddr
	case Net:
		return values.KindNet
	case Port:
		return values.KindPort
	case Time:
		return values.KindTime
	case Interval:
		return values.KindInterval
	case Enum:
		return values.KindEnum
	case Bitset:
		return values.KindBitset
	case Tuple:
		return values.KindTuple
	case Struct:
		return values.KindStruct
	case List:
		return values.KindList
	case Vector:
		return values.KindVector
	case Set:
		return values.KindSet
	case Map:
		return values.KindMap
	case Channel:
		return values.KindChannel
	case Classifier:
		return values.KindClassifier
	case RegExp:
		return values.KindRegExp
	case MatchState:
		return values.KindMatchState
	case Timer:
		return values.KindTimer
	case TimerMgr:
		return values.KindTimerMgr
	case File:
		return values.KindFile
	case Callable:
		return values.KindCallable
	case Exception:
		return values.KindException
	case Overlay:
		return values.KindOverlay
	case IOSrc:
		return values.KindIOSrc
	case Profiler:
		return values.KindProfiler
	case Function:
		return values.KindFunction
	default:
		return values.KindVoid
	}
}

// String renders the type in HILTI surface syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Void:
		return "void"
	case Any:
		return "any"
	case Bool:
		return "bool"
	case Int:
		return "int<" + strconv.Itoa(t.Width) + ">"
	case Double:
		return "double"
	case String:
		return "string"
	case Bytes:
		return "bytes"
	case Addr:
		return "addr"
	case Net:
		return "net"
	case Port:
		return "port"
	case Time:
		return "time"
	case Interval:
		return "interval"
	case Enum, Bitset, Struct, Overlay:
		if t.Name != "" {
			return t.Name
		}
		return strings.ToLower(kindName(t.Kind))
	case Exception:
		if t.ExcName != "" {
			return t.ExcName
		}
		return "exception"
	case RegExp:
		return "regexp"
	case MatchState:
		return "match_state"
	case Timer:
		return "timer"
	case TimerMgr:
		return "timer_mgr"
	case File:
		return "file"
	case IOSrc:
		return "iosrc"
	case Profiler:
		return "profiler"
	case Hook:
		return "hook"
	default:
		return kindName(t.Kind) + "<" + joinTypes(t.Params) + ">"
	}
}

func kindName(k Kind) string {
	switch k {
	case Tuple:
		return "tuple"
	case List:
		return "list"
	case Vector:
		return "vector"
	case Set:
		return "set"
	case Map:
		return "map"
	case Iterator:
		return "iterator"
	case Ref:
		return "ref"
	case Channel:
		return "channel"
	case Classifier:
		return "classifier"
	case Callable:
		return "callable"
	case Function:
		return "function"
	default:
		return "type"
	}
}

func joinTypes(ts []*Type) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

// Hashable reports whether values of t may key maps/sets.
func (t *Type) Hashable() bool {
	switch t.Deref().Kind {
	case Bool, Int, Double, String, Bytes, Addr, Net, Port, Time, Interval, Enum, Bitset:
		return true
	case Tuple:
		for _, e := range t.Deref().Params {
			if !e.Hashable() {
				return false
			}
		}
		return true
	default:
		return false
	}
}
