package threads

import (
	"sync/atomic"
	"testing"

	"hilti/internal/rt/values"
)

func TestSameVIDSerializes(t *testing.T) {
	s := NewScheduler(4)
	defer s.Shutdown()
	// All jobs for one vid must observe a consistent, race-free counter in
	// their context (no atomics needed inside — that is the guarantee).
	const jobs = 1000
	for i := 0; i < jobs; i++ {
		s.Schedule(42, func(ctx *Context) {
			n := ctx.Slot(0).AsInt()
			ctx.SetSlot(0, values.Int(n+1))
		})
	}
	s.Drain()
	var got int64
	s.EachContext(func(ctx *Context) {
		if ctx.VID == 42 {
			got = ctx.Slot(0).AsInt()
		}
	})
	if got != jobs {
		t.Fatalf("counter = %d, want %d", got, jobs)
	}
}

func TestVIDToWorkerStable(t *testing.T) {
	s := NewScheduler(3)
	defer s.Shutdown()
	// Two jobs for the same vid must see the same context instance.
	var first, second *Context
	done := make(chan struct{})
	s.Schedule(7, func(ctx *Context) { first = ctx })
	s.Drain()
	s.Schedule(7, func(ctx *Context) { second = ctx; close(done) })
	<-done
	if first == nil || first != second {
		t.Fatal("same vid should map to same context")
	}
}

func TestDistinctVIDsDistinctContexts(t *testing.T) {
	s := NewScheduler(2)
	defer s.Shutdown()
	seen := make(chan uint64, 16)
	for vid := uint64(0); vid < 8; vid++ {
		vid := vid
		s.Schedule(vid, func(ctx *Context) {
			if ctx.VID != vid {
				t.Errorf("ctx.VID = %d, want %d", ctx.VID, vid)
			}
			seen <- ctx.VID
		})
	}
	s.Drain()
	if len(seen) != 8 {
		t.Fatalf("ran %d jobs", len(seen))
	}
}

func TestScheduleValuesDeepCopies(t *testing.T) {
	s := NewScheduler(1)
	defer s.Shutdown()
	b := values.BytesFrom([]byte("abc"))
	got := make(chan string, 1)
	s.ScheduleValues(1, func(ctx *Context, args []values.Value) {
		got <- args[0].AsBytes().String()
	}, b)
	// Mutating after scheduling must not affect the receiver: the copy
	// happened in ScheduleValues, synchronously.
	b.AsBytes().Unfreeze()
	b.AsBytes().Append([]byte("MUT"))
	s.Drain()
	if g := <-got; g != "abc" {
		t.Fatalf("receiver saw %q", g)
	}
}

func TestJobsCanScheduleJobs(t *testing.T) {
	s := NewScheduler(2)
	defer s.Shutdown()
	var count atomic.Int64
	var spawn func(depth int) Job
	spawn = func(depth int) Job {
		return func(ctx *Context) {
			count.Add(1)
			if depth > 0 {
				s.Schedule(ctx.VID+1, spawn(depth-1))
			}
		}
	}
	s.Schedule(0, spawn(10))
	s.Drain()
	if count.Load() != 11 {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestAdvanceGlobalTime(t *testing.T) {
	s := NewScheduler(2)
	defer s.Shutdown()
	var fired atomic.Int64
	for vid := uint64(0); vid < 4; vid++ {
		s.Schedule(vid, func(ctx *Context) {
			ctx.TimerMgr.ScheduleFunc(100, func() { fired.Add(1) })
		})
	}
	s.Drain()
	s.AdvanceGlobalTime(50)
	s.Drain()
	if fired.Load() != 0 {
		t.Fatal("timers fired early")
	}
	s.AdvanceGlobalTime(100)
	s.Drain()
	if fired.Load() != 4 {
		t.Fatalf("fired = %d", fired.Load())
	}
}

func TestShutdownRejectsNewWork(t *testing.T) {
	s := NewScheduler(1)
	s.Shutdown()
	if err := s.Schedule(1, func(*Context) {}); err == nil {
		t.Fatal("schedule after shutdown should error")
	}
	s.Shutdown() // idempotent
}

func BenchmarkSchedule(b *testing.B) {
	s := NewScheduler(4)
	defer s.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(uint64(i), func(*Context) {})
	}
	s.Drain()
}
