package threads

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hilti/internal/rt/values"
)

func TestSameVIDSerializes(t *testing.T) {
	s := NewScheduler(4)
	defer s.Shutdown()
	// All jobs for one vid must observe a consistent, race-free counter in
	// their context (no atomics needed inside — that is the guarantee).
	const jobs = 1000
	for i := 0; i < jobs; i++ {
		s.Schedule(42, func(ctx *Context) {
			n := ctx.Slot(0).AsInt()
			ctx.SetSlot(0, values.Int(n+1))
		})
	}
	s.Drain()
	var got int64
	s.EachContext(func(ctx *Context) {
		if ctx.VID == 42 {
			got = ctx.Slot(0).AsInt()
		}
	})
	if got != jobs {
		t.Fatalf("counter = %d, want %d", got, jobs)
	}
}

func TestVIDToWorkerStable(t *testing.T) {
	s := NewScheduler(3)
	defer s.Shutdown()
	// Two jobs for the same vid must see the same context instance.
	var first, second *Context
	done := make(chan struct{})
	s.Schedule(7, func(ctx *Context) { first = ctx })
	s.Drain()
	s.Schedule(7, func(ctx *Context) { second = ctx; close(done) })
	<-done
	if first == nil || first != second {
		t.Fatal("same vid should map to same context")
	}
}

func TestDistinctVIDsDistinctContexts(t *testing.T) {
	s := NewScheduler(2)
	defer s.Shutdown()
	seen := make(chan uint64, 16)
	for vid := uint64(0); vid < 8; vid++ {
		vid := vid
		s.Schedule(vid, func(ctx *Context) {
			if ctx.VID != vid {
				t.Errorf("ctx.VID = %d, want %d", ctx.VID, vid)
			}
			seen <- ctx.VID
		})
	}
	s.Drain()
	if len(seen) != 8 {
		t.Fatalf("ran %d jobs", len(seen))
	}
}

func TestScheduleValuesDeepCopies(t *testing.T) {
	s := NewScheduler(1)
	defer s.Shutdown()
	b := values.BytesFrom([]byte("abc"))
	got := make(chan string, 1)
	s.ScheduleValues(1, func(ctx *Context, args []values.Value) {
		got <- args[0].AsBytes().String()
	}, b)
	// Mutating after scheduling must not affect the receiver: the copy
	// happened in ScheduleValues, synchronously.
	b.AsBytes().Unfreeze()
	b.AsBytes().Append([]byte("MUT"))
	s.Drain()
	if g := <-got; g != "abc" {
		t.Fatalf("receiver saw %q", g)
	}
}

func TestJobsCanScheduleJobs(t *testing.T) {
	s := NewScheduler(2)
	defer s.Shutdown()
	var count atomic.Int64
	var spawn func(depth int) Job
	spawn = func(depth int) Job {
		return func(ctx *Context) {
			count.Add(1)
			if depth > 0 {
				s.Schedule(ctx.VID+1, spawn(depth-1))
			}
		}
	}
	s.Schedule(0, spawn(10))
	s.Drain()
	if count.Load() != 11 {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestAdvanceGlobalTime(t *testing.T) {
	s := NewScheduler(2)
	defer s.Shutdown()
	var fired atomic.Int64
	for vid := uint64(0); vid < 4; vid++ {
		s.Schedule(vid, func(ctx *Context) {
			ctx.TimerMgr.ScheduleFunc(100, func() { fired.Add(1) })
		})
	}
	s.Drain()
	s.AdvanceGlobalTime(50)
	s.Drain()
	if fired.Load() != 0 {
		t.Fatal("timers fired early")
	}
	s.AdvanceGlobalTime(100)
	s.Drain()
	if fired.Load() != 4 {
		t.Fatalf("fired = %d", fired.Load())
	}
}

func TestShutdownRejectsNewWork(t *testing.T) {
	s := NewScheduler(1)
	s.Shutdown()
	if err := s.Schedule(1, func(*Context) {}); err == nil {
		t.Fatal("schedule after shutdown should error")
	}
	s.Shutdown() // idempotent
}

// TestSelfScheduleFlood regresses the self-scheduling deadlock: a job
// that schedules more work onto its own worker than the bounded channel
// holds must overflow into the deque instead of blocking against itself.
func TestSelfScheduleFlood(t *testing.T) {
	s := NewScheduler(1)
	defer s.Shutdown()
	const flood = 10000 // > the 4096-slot channel
	var ran atomic.Int64
	done := make(chan struct{})
	err := s.Schedule(1, func(ctx *Context) {
		for i := 0; i < flood; i++ {
			if err := s.Schedule(1, func(*Context) { ran.Add(1) }); err != nil {
				t.Errorf("self-schedule %d: %v", i, err)
				break
			}
		}
		close(done)
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("self-scheduling job deadlocked against its own worker")
	}
	s.Drain()
	if ran.Load() != flood {
		t.Fatalf("ran %d of %d flooded jobs", ran.Load(), flood)
	}
	st := s.WorkerStats()[0]
	if st.Overflowed == 0 {
		t.Fatal("expected overflow deque use during the flood")
	}
	if st.HighWater <= 4096 {
		t.Fatalf("high-water %d should exceed the channel capacity", st.HighWater)
	}
}

// TestOverflowPreservesFIFO checks same-vid ordering across the
// channel/deque boundary: jobs enqueued while the worker is gated must
// still run in scheduling order once the flood exceeds the channel.
func TestOverflowPreservesFIFO(t *testing.T) {
	s := NewScheduler(1)
	defer s.Shutdown()
	gate := make(chan struct{})
	s.Schedule(1, func(*Context) { <-gate })
	const n = 6000
	var order []int
	for i := 0; i < n; i++ {
		i := i
		if err := s.Schedule(1, func(*Context) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	s.Drain()
	if len(order) != n {
		t.Fatalf("ran %d of %d jobs", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d: FIFO violated across overflow boundary", i, v)
		}
	}
}

// TestConcurrentScheduleShutdown stresses the Schedule/Shutdown race that
// used to allow a send on a closed channel: schedulers are hammered from
// many goroutines while Shutdown runs. Run under -race.
func TestConcurrentScheduleShutdown(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		s := NewScheduler(4)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := s.Schedule(uint64(g*1000+i), func(*Context) {}); err != nil {
						return // scheduler stopped: expected
					}
				}
			}(g)
		}
		s.Shutdown() // must not panic, must not deadlock
		close(stop)
		wg.Wait()
	}
}

func TestWorkerStats(t *testing.T) {
	s := NewScheduler(2)
	defer s.Shutdown()
	for vid := uint64(0); vid < 10; vid++ {
		s.Schedule(vid, func(ctx *Context) {
			ctx.TimerMgr.ScheduleFunc(5, func() {})
		})
	}
	s.Drain()
	s.AdvanceGlobalTime(10)
	s.Drain()
	st := s.WorkerStats()
	if len(st) != 2 {
		t.Fatalf("stats for %d workers", len(st))
	}
	var jobs, timers uint64
	var ctxs int
	for _, w := range st {
		jobs += w.Jobs
		timers += w.TimersFired
		ctxs += w.Contexts
	}
	if jobs != 12 { // 10 vthread jobs + 2 advance sweeps
		t.Fatalf("jobs = %d, want 12", jobs)
	}
	if timers != 10 {
		t.Fatalf("timers fired = %d, want 10", timers)
	}
	if ctxs != 10 {
		t.Fatalf("contexts = %d, want 10", ctxs)
	}
}

func TestContextWorkerIndex(t *testing.T) {
	s := NewScheduler(3)
	defer s.Shutdown()
	for vid := uint64(0); vid < 9; vid++ {
		vid := vid
		s.Schedule(vid, func(ctx *Context) {
			if ctx.Worker != s.WorkerIndex(vid) {
				t.Errorf("vid %d on worker %d, want %d", vid, ctx.Worker, s.WorkerIndex(vid))
			}
		})
	}
	s.Drain()
}

func BenchmarkSchedule(b *testing.B) {
	s := NewScheduler(4)
	defer s.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(uint64(i), func(*Context) {})
	}
	s.Drain()
}
