package threads

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestReplaceWorkerUnsticksQueue: a job wedged on worker 0 must not stall
// the jobs queued behind it once ReplaceWorker swaps the goroutine.
func TestReplaceWorkerUnsticksQueue(t *testing.T) {
	s := NewScheduler(1)
	block := make(chan struct{})
	entered := make(chan struct{})
	s.Schedule(0, func(*Context) { //nolint:errcheck
		close(entered)
		<-block
	})
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		s.Schedule(uint64(i), func(*Context) { ran.Add(1) }) //nolint:errcheck
	}
	<-entered
	if !s.ReplaceWorker(0) {
		t.Fatal("ReplaceWorker refused while a job is executing")
	}
	// Drain must complete even though the original job never returns:
	// ReplaceWorker settled its pending count and the replacement runs the
	// rest of the queue.
	s.Drain()
	if got := ran.Load(); got != 10 {
		t.Fatalf("replacement ran %d queued jobs, want 10", got)
	}
	// Late unblock: the zombie exits without double-accounting.
	jobs := s.WorkerStats()[0].Jobs
	close(block)
	time.Sleep(10 * time.Millisecond)
	if got := s.WorkerStats()[0].Jobs; got != jobs {
		t.Fatalf("zombie changed job count %d -> %d", jobs, got)
	}
	s.Schedule(3, func(*Context) { ran.Add(1) }) //nolint:errcheck
	s.Drain()
	if got := ran.Load(); got != 11 {
		t.Fatalf("post-replacement scheduling broken: %d", got)
	}
	s.Shutdown()
}

// TestReplaceWorkerIdle: replacing an idle worker is refused (nothing is
// stuck), and the worker keeps functioning.
func TestReplaceWorkerIdle(t *testing.T) {
	s := NewScheduler(2)
	s.Drain()
	if s.ReplaceWorker(0) {
		t.Fatal("replaced an idle worker")
	}
	if s.ReplaceWorker(-1) || s.ReplaceWorker(2) {
		t.Fatal("replaced an out-of-range worker")
	}
	done := false
	s.Schedule(0, func(*Context) { done = true }) //nolint:errcheck
	s.Drain()
	if !done {
		t.Fatal("worker dead after refused replacement")
	}
	s.Shutdown()
}
