// Package threads implements HILTI's concurrency model (paper §3.2): an
// Erlang-style scheme giving applications a large supply of lightweight
// *virtual threads*, identified by 64-bit integer IDs, which a runtime
// scheduler maps onto a small number of hardware workers.
//
// All jobs for one virtual thread execute sequentially on the worker that
// owns it (vid -> worker by modulo), so computation relating to one flow is
// implicitly serialized — the property that lets hash-based load balancing
// (flow 5-tuple -> vid) avoid intra-flow synchronization entirely. Virtual
// threads cannot share state: each owns a context with its thread-local
// variable slots and its timer manager, and thread.schedule deep-copies all
// mutable arguments, exactly as HILTI's data-isolation model prescribes.
//
// Each worker has a bounded fast-path channel plus an unbounded FIFO
// overflow deque. A job that schedules onto its own worker while the
// channel is full (e.g. a packet handler fanning out follow-up work) lands
// in the deque instead of deadlocking against itself; ingress-level
// backpressure belongs to the layer feeding the scheduler (see
// internal/pkt/pipeline).
package threads

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hilti/internal/rt/timer"
	"hilti/internal/rt/values"
)

// Context is the per-virtual-thread state object the runtime associates
// with each virtual thread (paper §5 "Runtime Model"): thread-local
// variable slots, the thread's timer managers, and scratch host data.
type Context struct {
	VID      uint64
	Worker   int            // index of the hardware worker owning this vthread
	TimerMgr *timer.Mgr     // the thread's global timer manager
	Slots    []values.Value // thread-local variables, laid out by the linker
	Host     map[string]any // host-application scratch space
}

// Slot returns thread-local slot i, growing the slot array as needed.
func (c *Context) Slot(i int) values.Value {
	c.grow(i + 1)
	return c.Slots[i]
}

// SetSlot assigns thread-local slot i.
func (c *Context) SetSlot(i int, v values.Value) {
	c.grow(i + 1)
	c.Slots[i] = v
}

func (c *Context) grow(n int) {
	for len(c.Slots) < n {
		c.Slots = append(c.Slots, values.Nil)
	}
}

// Job is a unit of work executed inside a virtual thread.
type Job func(ctx *Context)

type queued struct {
	vid uint64
	job Job
	// raw jobs run at worker level without materializing a vthread
	// context (timer sweeps, context iteration).
	raw bool
}

// WorkerStats is a snapshot of one hardware worker's counters.
type WorkerStats struct {
	Jobs        uint64 // jobs executed
	Contexts    int    // vthread contexts materialized
	HighWater   int    // max backlog (channel + overflow) observed at enqueue
	Backlog     int    // jobs currently queued (channel + overflow)
	Overflowed  uint64 // jobs diverted to the overflow deque
	TimersFired uint64 // timer callbacks run by AdvanceGlobalTime
}

type worker struct {
	index    int
	jobs     chan queued
	contexts map[uint64]*Context // touched only by the worker goroutine

	mu       sync.Mutex // guards overflow, closed, highWater, overflowed
	overflow []queued   // FIFO; entries are strictly newer than channel entries
	closed   bool

	highWater   int
	overflowed  uint64
	jobsRun     atomic.Uint64
	nContexts   atomic.Int64
	timersFired atomic.Uint64

	// replaceMu guards the epoch/running pair that lets ReplaceWorker swap
	// in a fresh goroutine while the current one is wedged inside a job.
	replaceMu sync.Mutex
	epoch     uint64
	running   bool // a job is executing right now
}

// enqueue adds a job, never blocking: the bounded channel is the fast
// path, the deque absorbs the excess. Returns false after close.
func (w *worker) enqueue(q queued) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	// Once anything sits in the overflow deque, all new jobs must follow
	// it there: the dequeue side drains the channel first, so the deque
	// holding only newer-than-channel jobs is what keeps FIFO order.
	if len(w.overflow) == 0 {
		select {
		case w.jobs <- q:
			if n := len(w.jobs); n > w.highWater {
				w.highWater = n
			}
			return true
		default:
		}
	}
	w.overflow = append(w.overflow, q)
	w.overflowed++
	if n := len(w.jobs) + len(w.overflow); n > w.highWater {
		w.highWater = n
	}
	return true
}

// dequeue returns the next job in FIFO order: channel entries predate
// overflow entries by construction, so the channel drains first and the
// worker blocks on it only when both are empty.
func (w *worker) dequeue() (queued, bool) {
	select {
	case q, ok := <-w.jobs:
		if ok {
			return q, true
		}
		return w.popOverflow()
	default:
	}
	if q, ok := w.popOverflow(); ok {
		return q, true
	}
	q, ok := <-w.jobs
	if ok {
		return q, true
	}
	return w.popOverflow()
}

func (w *worker) popOverflow() (queued, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.overflow) == 0 {
		return queued{}, false
	}
	q := w.overflow[0]
	w.overflow[0] = queued{}
	w.overflow = w.overflow[1:]
	if len(w.overflow) == 0 {
		w.overflow = nil // release the drained backing array
	}
	return q, true
}

// Scheduler maps virtual threads onto worker goroutines, first-come
// first-served per worker (paper §5 "Runtime Library").
type Scheduler struct {
	workers []*worker
	pending sync.WaitGroup
	wg      sync.WaitGroup
	stopped bool
	mu      sync.Mutex
}

// NewScheduler starts n hardware workers (n >= 1).
func NewScheduler(n int) *Scheduler {
	if n < 1 {
		n = 1
	}
	s := &Scheduler{}
	for i := 0; i < n; i++ {
		w := &worker{
			index:    i,
			jobs:     make(chan queued, 4096),
			contexts: map[uint64]*Context{},
		}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go s.run(w, 0)
	}
	return s
}

// Workers returns the number of hardware workers.
func (s *Scheduler) Workers() int { return len(s.workers) }

// WorkerIndex returns the hardware worker that owns virtual thread vid.
func (s *Scheduler) WorkerIndex(vid uint64) int {
	return int(vid % uint64(len(s.workers)))
}

// WorkerStats snapshots per-worker counters. Counter reads are atomic but
// the snapshot is only quiescent-consistent; call after Drain for exact
// totals.
func (s *Scheduler) WorkerStats() []WorkerStats {
	out := make([]WorkerStats, len(s.workers))
	for i, w := range s.workers {
		w.mu.Lock()
		out[i] = WorkerStats{
			Jobs:        w.jobsRun.Load(),
			Contexts:    int(w.nContexts.Load()),
			HighWater:   w.highWater,
			Backlog:     len(w.jobs) + len(w.overflow),
			Overflowed:  w.overflowed,
			TimersFired: w.timersFired.Load(),
		}
		w.mu.Unlock()
	}
	return out
}

func (s *Scheduler) run(w *worker, epoch uint64) {
	for {
		q, ok := w.dequeue()
		if !ok {
			s.wg.Done()
			return
		}
		var ctx *Context
		if !q.raw {
			ctx, ok = w.contexts[q.vid]
			if !ok {
				ctx = &Context{VID: q.vid, Worker: w.index, TimerMgr: timer.NewMgr(), Host: map[string]any{}}
				w.contexts[q.vid] = ctx
				w.nContexts.Add(1)
			}
		}
		w.replaceMu.Lock()
		w.running = true
		w.replaceMu.Unlock()
		q.job(ctx)
		w.replaceMu.Lock()
		stale := w.epoch != epoch
		if !stale {
			w.running = false
		}
		w.replaceMu.Unlock()
		if stale {
			// ReplaceWorker spawned a successor while this job was stuck:
			// the successor inherited this goroutine's wg slot and
			// ReplaceWorker settled the job's pending count. Just vanish.
			return
		}
		w.jobsRun.Add(1)
		s.pending.Done()
	}
}

// ReplaceWorker swaps worker i's goroutine for a fresh one while the
// current one is wedged inside a job (supervised hang recovery). It only
// acts when a job is actually executing — an idle worker needs no
// replacement and false is returned. The wedged goroutine becomes a
// zombie: it exits quietly if its job ever returns, and until then it
// keeps only references to the abandoned job's closure. The replacement
// resumes the queue exactly where the zombie left it, so queued jobs for
// other virtual threads are not lost.
func (s *Scheduler) ReplaceWorker(i int) bool {
	if i < 0 || i >= len(s.workers) {
		return false
	}
	w := s.workers[i]
	w.replaceMu.Lock()
	if !w.running {
		w.replaceMu.Unlock()
		return false
	}
	w.running = false
	w.epoch++
	epoch := w.epoch
	w.replaceMu.Unlock()
	s.pending.Done()   // the abandoned job will never report completion
	go s.run(w, epoch) // inherits the zombie's wg slot
	return true
}

// Schedule enqueues a job for virtual thread vid (HILTI's thread.schedule).
// The job's closed-over values must already be deep-copied; use
// ScheduleValues for automatic argument copying. Schedule never blocks —
// jobs beyond the worker's channel capacity queue in its overflow deque,
// so jobs may schedule onto their own worker freely.
func (s *Scheduler) Schedule(vid uint64, job Job) error {
	return s.schedule(queued{vid: vid, job: job})
}

func (s *Scheduler) schedule(q queued) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return fmt.Errorf("threads: scheduler stopped")
	}
	s.pending.Add(1)
	s.mu.Unlock()
	w := s.workers[q.vid%uint64(len(s.workers))]
	if !w.enqueue(q) {
		s.pending.Done()
		return fmt.Errorf("threads: scheduler stopped")
	}
	return nil
}

// ScheduleValues deep-copies args (HILTI's message-passing isolation) and
// enqueues fn for virtual thread vid.
func (s *Scheduler) ScheduleValues(vid uint64, fn func(ctx *Context, args []values.Value), args ...values.Value) error {
	cp := make([]values.Value, len(args))
	for i, a := range args {
		cp[i] = values.DeepCopy(a)
	}
	return s.Schedule(vid, func(ctx *Context) { fn(ctx, cp) })
}

// AdvanceGlobalTime advances every live virtual thread's timer manager to
// t, via per-worker jobs so timer callbacks run within their own thread.
// It is used by trace-driven hosts that derive time from packet timestamps.
func (s *Scheduler) AdvanceGlobalTime(t timer.Time) {
	for _, w := range s.workers {
		w := w
		// A worker-level job advancing all of its contexts preserves the
		// per-worker serialization of context access.
		s.schedule(queued{vid: uint64(w.index), raw: true, job: func(*Context) { //nolint:errcheck
			for _, ctx := range w.contexts {
				w.timersFired.Add(uint64(ctx.TimerMgr.Advance(t)))
			}
		}})
	}
}

// Drain blocks until all currently scheduled jobs (including jobs they
// scheduled transitively) have completed.
func (s *Scheduler) Drain() { s.pending.Wait() }

// Shutdown drains outstanding work and stops the workers. The scheduler is
// unusable afterwards. Closing each worker's channel happens under the
// same lock enqueue holds, so a Schedule racing Shutdown either lands
// before the close or observes the closed flag and errors — it can never
// send on a closed channel.
func (s *Scheduler) Shutdown() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	s.pending.Wait()
	for _, w := range s.workers {
		w.mu.Lock()
		w.closed = true
		close(w.jobs)
		w.mu.Unlock()
	}
	s.wg.Wait()
}

// EachContext calls fn for every live context after draining; only safe
// when no concurrent Schedule calls are in flight (e.g. at end of trace).
func (s *Scheduler) EachContext(fn func(*Context)) {
	s.Drain()
	for _, w := range s.workers {
		w := w
		s.schedule(queued{vid: uint64(w.index), raw: true, job: func(*Context) { //nolint:errcheck
			for _, ctx := range w.contexts {
				fn(ctx)
			}
		}})
	}
	s.Drain()
}
