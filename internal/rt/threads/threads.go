// Package threads implements HILTI's concurrency model (paper §3.2): an
// Erlang-style scheme giving applications a large supply of lightweight
// *virtual threads*, identified by 64-bit integer IDs, which a runtime
// scheduler maps onto a small number of hardware workers.
//
// All jobs for one virtual thread execute sequentially on the worker that
// owns it (vid -> worker by modulo), so computation relating to one flow is
// implicitly serialized — the property that lets hash-based load balancing
// (flow 5-tuple -> vid) avoid intra-flow synchronization entirely. Virtual
// threads cannot share state: each owns a context with its thread-local
// variable slots and its timer manager, and thread.schedule deep-copies all
// mutable arguments, exactly as HILTI's data-isolation model prescribes.
package threads

import (
	"fmt"
	"sync"

	"hilti/internal/rt/timer"
	"hilti/internal/rt/values"
)

// Context is the per-virtual-thread state object the runtime associates
// with each virtual thread (paper §5 "Runtime Model"): thread-local
// variable slots, the thread's timer managers, and scratch host data.
type Context struct {
	VID      uint64
	TimerMgr *timer.Mgr     // the thread's global timer manager
	Slots    []values.Value // thread-local variables, laid out by the linker
	Host     map[string]any // host-application scratch space
}

// Slot returns thread-local slot i, growing the slot array as needed.
func (c *Context) Slot(i int) values.Value {
	c.grow(i + 1)
	return c.Slots[i]
}

// SetSlot assigns thread-local slot i.
func (c *Context) SetSlot(i int, v values.Value) {
	c.grow(i + 1)
	c.Slots[i] = v
}

func (c *Context) grow(n int) {
	for len(c.Slots) < n {
		c.Slots = append(c.Slots, values.Nil)
	}
}

// Job is a unit of work executed inside a virtual thread.
type Job func(ctx *Context)

type queued struct {
	vid uint64
	job Job
}

type worker struct {
	jobs     chan queued
	contexts map[uint64]*Context
}

// Scheduler maps virtual threads onto worker goroutines, first-come
// first-served per worker (paper §5 "Runtime Library").
type Scheduler struct {
	workers []*worker
	pending sync.WaitGroup
	wg      sync.WaitGroup
	stopped bool
	mu      sync.Mutex
}

// NewScheduler starts n hardware workers (n >= 1).
func NewScheduler(n int) *Scheduler {
	if n < 1 {
		n = 1
	}
	s := &Scheduler{}
	for i := 0; i < n; i++ {
		w := &worker{
			jobs:     make(chan queued, 4096),
			contexts: map[uint64]*Context{},
		}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go s.run(w)
	}
	return s
}

// Workers returns the number of hardware workers.
func (s *Scheduler) Workers() int { return len(s.workers) }

func (s *Scheduler) run(w *worker) {
	defer s.wg.Done()
	for q := range w.jobs {
		ctx, ok := w.contexts[q.vid]
		if !ok {
			ctx = &Context{VID: q.vid, TimerMgr: timer.NewMgr(), Host: map[string]any{}}
			w.contexts[q.vid] = ctx
		}
		q.job(ctx)
		s.pending.Done()
	}
}

// Schedule enqueues a job for virtual thread vid (HILTI's thread.schedule).
// The job's closed-over values must already be deep-copied; use
// ScheduleValues for automatic argument copying.
func (s *Scheduler) Schedule(vid uint64, job Job) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return fmt.Errorf("threads: scheduler stopped")
	}
	s.pending.Add(1)
	s.mu.Unlock()
	w := s.workers[vid%uint64(len(s.workers))]
	w.jobs <- queued{vid: vid, job: job}
	return nil
}

// ScheduleValues deep-copies args (HILTI's message-passing isolation) and
// enqueues fn for virtual thread vid.
func (s *Scheduler) ScheduleValues(vid uint64, fn func(ctx *Context, args []values.Value), args ...values.Value) error {
	cp := make([]values.Value, len(args))
	for i, a := range args {
		cp[i] = values.DeepCopy(a)
	}
	return s.Schedule(vid, func(ctx *Context) { fn(ctx, cp) })
}

// AdvanceGlobalTime advances every live virtual thread's timer manager to
// t, via per-thread jobs so timer callbacks run within their own thread.
// It is used by trace-driven hosts that derive time from packet timestamps.
func (s *Scheduler) AdvanceGlobalTime(t timer.Time) {
	for _, w := range s.workers {
		w := w
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return
		}
		s.pending.Add(1)
		s.mu.Unlock()
		// A worker-level job advancing all of its contexts preserves the
		// per-worker serialization of context access.
		w.jobs <- queued{vid: 0, job: func(*Context) {
			for _, ctx := range w.contexts {
				ctx.TimerMgr.Advance(t)
			}
		}}
	}
}

// Drain blocks until all currently scheduled jobs (including jobs they
// scheduled transitively) have completed.
func (s *Scheduler) Drain() { s.pending.Wait() }

// Shutdown drains outstanding work and stops the workers. The scheduler is
// unusable afterwards.
func (s *Scheduler) Shutdown() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	s.pending.Wait()
	for _, w := range s.workers {
		close(w.jobs)
	}
	s.wg.Wait()
}

// EachContext calls fn for every live context after draining; only safe
// when no concurrent Schedule calls are in flight (e.g. at end of trace).
func (s *Scheduler) EachContext(fn func(*Context)) {
	s.Drain()
	for _, w := range s.workers {
		w := w
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return
		}
		s.pending.Add(1)
		s.mu.Unlock()
		w.jobs <- queued{job: func(*Context) {
			for _, ctx := range w.contexts {
				fn(ctx)
			}
		}}
	}
	s.Drain()
}
