// Package metrics is the runtime's observability substrate: a registry of
// named counters, gauges, and fixed-bucket histograms designed so that
// hot-path updates are a single uncontended atomic operation and allocate
// nothing. The paper ships HILTI with "profiling and debugging support"
// (§4); this package is the common sink those profilers — and every other
// runtime layer (pipeline shards, engines, the VM, timer managers,
// container expiration) — report into.
//
// Two update styles coexist:
//
//   - Event-time instruments: Counter/Gauge/Histogram handles resolved once
//     at setup and updated inline. All methods are nil-safe, so "metrics
//     disabled" is a nil handle and costs one predictable branch.
//
//   - Scrape-time collectors: components that already maintain their own
//     atomic counters (pipeline worker stats, profilers, per-Exec VM
//     counters) register a Collector that emits samples when the registry
//     is read. The hot path pays nothing at all.
//
// Collectors register under a caller-chosen key; re-registering the same
// key replaces the previous collector. That is what keeps counters exact
// across crash-only supervised restarts: a restored worker's collector
// (seeded from its checkpoint) replaces the dead worker's, so totals
// neither reset nor double-count. Samples from different collectors that
// share a metric name are summed, which aggregates per-worker engines into
// one series automatically.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil *Counter is a valid "disabled" instrument whose methods do
// nothing.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 for a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Store sets the value; restore paths use it to seed a counter from a
// checkpoint.
func (c *Counter) Store(n uint64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Gauge is a value that can go up and down. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts int64 observations into fixed buckets chosen at
// creation. Observe is allocation-free: a linear scan over the (small)
// bound slice plus three atomic adds. Nil-safe like Counter.
type Histogram struct {
	bounds []int64         // upper bounds, ascending; len(counts) == len(bounds)+1
	counts []atomic.Uint64 // counts[i] observations <= bounds[i]; last is +Inf
	sum    atomic.Int64
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns (bound, cumulative count) pairs in Prometheus "le"
// convention; the final pair has bound math.MaxInt64 standing in for +Inf.
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	out := make([]BucketCount, len(h.counts))
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		b := int64(1<<63 - 1)
		if i < len(h.bounds) {
			b = h.bounds[i]
		}
		out[i] = BucketCount{Bound: b, Count: cum}
	}
	return out
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	Bound int64
	Count uint64
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed values: the smallest bucket bound whose cumulative count
// covers q of the observations. Observations landing in the overflow
// bucket report the largest finite bound — a floor, not a bound, so
// callers asserting latency ceilings should size the ladder past the
// ceiling. Returns 0 with no observations; nil-safe.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || q <= 0 || len(h.bounds) == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(q * float64(total))
	if need == 0 {
		need = 1
	}
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= need {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// DurationBuckets is a general-purpose latency bucket ladder in
// nanoseconds: 1µs .. ~1s, roughly ×4 per step.
var DurationBuckets = []int64{
	1_000, 4_000, 16_000, 64_000, 256_000,
	1_000_000, 4_000_000, 16_000_000, 64_000_000, 256_000_000, 1_000_000_000,
}

// Collector emits samples when the registry is gathered. Implementations
// must be safe to call from any goroutine (typically they read atomics
// owned by some component).
type Collector func(emit func(name string, value float64))

// Sample is one gathered (name, value) point.
type Sample struct {
	Name  string
	Value float64
}

// Registry holds named instruments and collectors. All methods are safe
// for concurrent use. Instrument lookup (Counter/Gauge/Histogram) is
// get-or-create and intended for setup time; hot paths should hold the
// returned handle.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	funcs      map[string]func() float64
	collectors map[string]Collector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		funcs:      make(map[string]func() float64),
		collectors: make(map[string]Collector),
	}
}

// Name formats a metric name with label pairs ("k", "v", ...) into the
// canonical `name{k="v",...}` form used as the registry key. Called once
// at setup, never on the hot path.
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter registered under Name(base, labels...),
// creating it on first use.
func (r *Registry) Counter(base string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	name := Name(base, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under Name(base, labels...), creating
// it on first use.
func (r *Registry) Gauge(base string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	name := Name(base, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under Name(base, labels...),
// creating it with the given bucket upper bounds (ascending) on first use.
// Later calls for the same name return the existing histogram regardless
// of the bounds argument.
func (r *Registry) Histogram(base string, bounds []int64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	name := Name(base, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := make([]int64, len(bounds))
		copy(bs, bounds)
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		h = &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers (or replaces) a function sampled at gather time under
// the given full name. Use it for values some component already maintains.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// RegisterCollector registers a collector under key, replacing any previous
// collector with the same key. Keyed replacement is load-bearing for
// crash-only restarts: a worker restored from checkpoint re-registers under
// its old key, so its (checkpoint-seeded) counters take over from the dead
// worker's without resetting or double-counting.
func (r *Registry) RegisterCollector(key string, c Collector) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors[key] = c
	r.mu.Unlock()
}

// Gather reads every instrument, function, and collector and returns one
// sorted sample list. Samples sharing a name (e.g. the same counter emitted
// by several per-worker collectors) are summed into one series. Histograms
// expand into `_bucket{le=...}`, `_sum`, and `_count` samples.
func (r *Registry) Gather() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	colls := make([]Collector, 0, len(r.collectors))
	for _, c := range r.collectors {
		colls = append(colls, c)
	}
	r.mu.Unlock()

	acc := make(map[string]float64)
	for name, c := range counters {
		acc[name] += float64(c.Load())
	}
	for name, g := range gauges {
		acc[name] += float64(g.Load())
	}
	for name, fn := range funcs {
		acc[name] += fn()
	}
	for _, c := range colls {
		c(func(name string, value float64) { acc[name] += value })
	}
	for name, h := range hists {
		for _, b := range h.Buckets() {
			le := "+Inf"
			if b.Bound != 1<<63-1 {
				le = fmt.Sprintf("%d", b.Bound)
			}
			acc[withLabel(suffixed(name, "_bucket"), "le", le)] += float64(b.Count)
		}
		acc[suffixed(name, "_sum")] += float64(h.Sum())
		acc[suffixed(name, "_count")] += float64(h.Count())
	}

	out := make([]Sample, 0, len(acc))
	for name, v := range acc {
		out = append(out, Sample{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// suffixed inserts a metric-name suffix before any label braces:
// suffixed(`lat{w="0"}`, "_sum") == `lat_sum{w="0"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// withLabel splices one more label into a possibly-already-labelled name.
func withLabel(name, k, v string) string {
	if strings.IndexByte(name, '{') >= 0 {
		return name[:len(name)-1] + "," + k + "=" + fmt.Sprintf("%q", v) + "}"
	}
	return name + "{" + k + "=" + fmt.Sprintf("%q", v) + "}"
}

// Value returns the gathered value of one fully-qualified metric name
// (post-aggregation), or 0 when absent. Intended for tests and invariant
// harnesses, not hot paths.
func (r *Registry) Value(name string) float64 {
	for _, s := range r.Gather() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

// Snapshot returns the gathered samples as a map, for tests and JSON
// export.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range r.Gather() {
		out[s.Name] = s.Value
	}
	return out
}
