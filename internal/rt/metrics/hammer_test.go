package metrics

import (
	"runtime"
	"sync"
	"testing"
)

// TestHistogramHammer drives one histogram from N goroutines while another
// goroutine gathers concurrently, then checks no observation was lost.
// Run under -race this doubles as the concurrency-safety proof for the
// scrape-while-updating pattern every wired component relies on.
func TestHistogramHammer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hammer_ns", DurationBuckets)
	workers := 4 * runtime.GOMAXPROCS(0)
	const perWorker = 20_000

	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
				prev := uint64(0)
				for _, s := range r.Gather() {
					if s.Name == "hammer_ns_count" {
						if c := uint64(s.Value); c < prev {
							t.Errorf("count went backwards: %d -> %d", prev, c)
							return
						} else {
							prev = c
						}
					}
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v := seed
			for i := 0; i < perWorker; i++ {
				v = v*6364136223846793005 + 1442695040888963407 // LCG, any spread
				h.Observe(v & 0xFFFFF)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()

	want := uint64(workers * perWorker)
	if got := h.Count(); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	b := h.Buckets()
	if last := b[len(b)-1].Count; last != want {
		t.Fatalf("+Inf cumulative = %d, want %d", last, want)
	}
	// Cumulative buckets must be monotone.
	for i := 1; i < len(b); i++ {
		if b[i].Count < b[i-1].Count {
			t.Fatalf("bucket %d not monotone: %d < %d", i, b[i].Count, b[i-1].Count)
		}
	}
}

// TestCounterHammer checks concurrent get-or-create plus increments across
// goroutines resolve to one counter with an exact total.
func TestCounterHammer(t *testing.T) {
	r := NewRegistry()
	workers := 4 * runtime.GOMAXPROCS(0)
	const perWorker = 50_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total", "k", "v")
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "k", "v").Load(); got != uint64(workers*perWorker) {
		t.Fatalf("total = %d, want %d", got, workers*perWorker)
	}
}
