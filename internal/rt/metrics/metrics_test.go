package metrics

import (
	"net/http"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts_total", "worker", "0")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("pkts_total", "worker", "0"); same != c {
		t.Fatalf("get-or-create returned a different counter")
	}
	if other := r.Counter("pkts_total", "worker", "1"); other == c {
		t.Fatalf("different labels must yield a different counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if v := r.Value(`pkts_total{worker="0"}`); v != 5 {
		t.Fatalf("Value = %v, want 5", v)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	c.Store(9)
	g.Set(1)
	g.Add(2)
	h.Observe(5)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments must read as zero")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Histogram("z", nil) != nil {
		t.Fatalf("nil registry must hand out nil instruments")
	}
	r.GaugeFunc("f", func() float64 { return 1 })
	r.RegisterCollector("k", func(emit func(string, float64)) {})
	if got := r.Gather(); got != nil {
		t.Fatalf("nil registry Gather = %v, want nil", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 99, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 5+10+11+99+100+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	b := h.Buckets()
	wantCum := []uint64{2, 5, 5, 6} // le=10:2, le=100:5, le=1000:5, +Inf:6
	if len(b) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(b), len(wantCum))
	}
	for i, w := range wantCum {
		if b[i].Count != w {
			t.Fatalf("bucket %d cum = %d, want %d", i, b[i].Count, w)
		}
	}
	snap := r.Snapshot()
	if snap[`lat_ns_bucket{le="100"}`] != 5 {
		t.Fatalf("snapshot bucket = %v, want 5 (snap %v)", snap[`lat_ns_bucket{le="100"}`], snap)
	}
	if snap[`lat_ns_bucket{le="+Inf"}`] != 6 || snap[`lat_ns_count`] != 6 {
		t.Fatalf("snapshot inf/count wrong: %v", snap)
	}
}

func TestLabelledHistogramSuffixPlacement(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_ns", []int64{10}, "worker", "3").Observe(4)
	snap := r.Snapshot()
	if snap[`lat_ns_count{worker="3"}`] != 1 {
		t.Fatalf("suffix must go before labels; snap = %v", snap)
	}
	if snap[`lat_ns_bucket{worker="3",le="10"}`] != 1 {
		t.Fatalf("le label must splice into existing labels; snap = %v", snap)
	}
}

func TestCollectorSumAndKeyedReplacement(t *testing.T) {
	r := NewRegistry()
	mk := func(v float64) Collector {
		return func(emit func(string, float64)) { emit("flows_total", v) }
	}
	r.RegisterCollector("w0", mk(10))
	r.RegisterCollector("w1", mk(5))
	if got := r.Value("flows_total"); got != 15 {
		t.Fatalf("summed collectors = %v, want 15", got)
	}
	// A restored worker re-registers under its key: replacement, not
	// accumulation — this is the crash-only continuity property.
	r.RegisterCollector("w1", mk(7))
	if got := r.Value("flows_total"); got != 17 {
		t.Fatalf("after keyed replacement = %v, want 17", got)
	}
	r.GaugeFunc("live", func() float64 { return 3 })
	r.GaugeFunc("live", func() float64 { return 4 }) // replaces
	if got := r.Value("live"); got != 4 {
		t.Fatalf("gauge func replacement = %v, want 4", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pkts_total", "worker", "0").Add(3)
	r.Gauge("depth").Set(2)
	r.Histogram("lat_ns", []int64{10}).Observe(7)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pkts_total counter",
		`pkts_total{worker="0"} 3`,
		"# TYPE depth gauge",
		"depth 2",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{le="10"} 1`,
		`lat_ns_bucket{le="+Inf"} 1`,
		"lat_ns_sum 7",
		"lat_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family even with several series.
	if strings.Count(out, "# TYPE lat_ns histogram") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", out)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return sb.String()
	}
	if body := get("/metrics"); !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "hilti") {
		t.Fatalf("/debug/vars missing published registry:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatalf("/debug/pprof/cmdline empty")
	}
}

func TestNameFormatting(t *testing.T) {
	if got := Name("a"); got != "a" {
		t.Fatalf("Name(a) = %q", got)
	}
	if got := Name("a", "k", "v", "k2", "v2"); got != `a{k="v",k2="v2"}` {
		t.Fatalf("Name = %q", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_ns", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) % 1_000_000)
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
