// Export surfaces: Prometheus text exposition, Go expvar, and an HTTP mux
// bundling both with net/http/pprof for on-demand profile capture.

package metrics

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// WritePrometheus writes every gathered sample in the Prometheus text
// exposition format (version 0.0.4), sorted by name, with a `# TYPE` line
// per metric family. Families are typed by convention: `_total` suffix →
// counter, `_bucket`/`_sum`/`_count` of a histogram → histogram, anything
// else → gauge.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Gather()
	seenType := make(map[string]bool)
	for _, s := range samples {
		fam, typ := family(s.Name)
		if !seenType[fam] {
			seenType[fam] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
				return err
			}
		}
		v := s.Value
		if v == float64(int64(v)) {
			if _, err := fmt.Fprintf(w, "%s %d\n", s.Name, int64(v)); err != nil {
				return err
			}
		} else if _, err := fmt.Fprintf(w, "%s %g\n", s.Name, v); err != nil {
			return err
		}
	}
	return nil
}

// family derives the metric family name and Prometheus type of one sample.
func family(name string) (fam, typ string) {
	fam = name
	if i := strings.IndexByte(fam, '{'); i >= 0 {
		fam = fam[:i]
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(fam, suf) {
			return fam[:len(fam)-len(suf)], "histogram"
		}
	}
	if strings.HasSuffix(fam, "_total") {
		return fam, "counter"
	}
	return fam, "gauge"
}

// Handler returns an http.Handler serving the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client gone
	})
}

var (
	expvarMu        sync.Mutex
	expvarPublished = make(map[string]bool)
)

// PublishExpvar exposes the registry's gathered samples as one expvar map
// variable (expvar.Publish panics on duplicate names, so repeated calls
// with the same name are no-ops — the first registry wins).
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Mux returns an http.ServeMux serving /metrics (Prometheus text),
// /debug/vars (expvar, including this registry under "hilti"), and
// /debug/pprof/* for on-demand CPU/heap/goroutine capture.
func (r *Registry) Mux() *http.ServeMux {
	r.PublishExpvar("hilti")
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for the registry's Mux on addr (e.g.
// "localhost:9090") in a background goroutine and returns the bound
// listener address, so addr may use port 0. The server lives until the
// process exits; operational endpoints don't need graceful shutdown.
func (r *Registry) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: r.Mux()}
	go srv.Serve(ln) //nolint:errcheck // runs for process lifetime
	return ln.Addr().String(), nil
}
