package regexp

import (
	gore "regexp"
	"testing"
	"testing/quick"

	"hilti/internal/rt/hbytes"
)

func mustMatch(t *testing.T, re *Regexp, input string, wantID int, wantLen int64) {
	t.Helper()
	id, n := re.MatchString(input)
	if id != wantID || n != wantLen {
		t.Fatalf("Match(%q) = (%d, %d), want (%d, %d)", input, id, n, wantID, wantLen)
	}
}

func TestLiteral(t *testing.T) {
	re := MustCompile("GET")
	mustMatch(t, re, "GET /", 1, 3)
	mustMatch(t, re, "GE", 0, 0)
	mustMatch(t, re, "POST", 0, 0)
}

func TestLongestMatch(t *testing.T) {
	re := MustCompile("a+")
	mustMatch(t, re, "aaab", 1, 3)
	mustMatch(t, re, "b", 0, 0)
}

func TestPaperHTTPTokens(t *testing.T) {
	// The BinPAC++ grammar tokens from Figure 6(a).
	token := MustCompile(`[^ \t\r\n]+`)
	mustMatch(t, token, "GET /x", 1, 3)
	newline := MustCompile(`\r?\n`)
	mustMatch(t, newline, "\r\nrest", 1, 2)
	mustMatch(t, newline, "\nrest", 1, 1)
	ws := MustCompile(`[ \t]+`)
	mustMatch(t, ws, "  \tx", 1, 3)
	version := MustCompile(`[0-9]+\.[0-9]+`)
	mustMatch(t, version, "1.1\r\n", 1, 3)
	mustMatch(t, version, "10.25 ", 1, 5)
	httpLit := MustCompile(`HTTP/`)
	mustMatch(t, httpLit, "HTTP/1.1", 1, 5)
}

func TestPaperSSHTokens(t *testing.T) {
	// Figure 7(a): SSH banner grammar tokens.
	magic := MustCompile(`SSH-`)
	mustMatch(t, magic, "SSH-2.0-OpenSSH", 1, 4)
	version := MustCompile(`[^-]*`)
	mustMatch(t, version, "2.0-OpenSSH", 1, 3)
	software := MustCompile(`[^\r\n]*`)
	mustMatch(t, software, "OpenSSH_3.9p1\r\n", 1, 13)
}

func TestAlternation(t *testing.T) {
	re := MustCompile("cat|cattle|dog")
	mustMatch(t, re, "cattle!", 1, 6) // longest, not first alternative
	mustMatch(t, re, "dog", 1, 3)
}

func TestSetMatchingIDs(t *testing.T) {
	re := MustCompile("GET", "POST", "HEAD")
	if id, _ := re.MatchString("POST /"); id != 2 {
		t.Fatalf("id = %d", id)
	}
	if id, _ := re.MatchString("HEAD /"); id != 3 {
		t.Fatalf("id = %d", id)
	}
	if id, _ := re.MatchString("PUT /"); id != 0 {
		t.Fatalf("id = %d", id)
	}
}

func TestSetLowestIDWins(t *testing.T) {
	re := MustCompile("[a-z]+", "abc")
	id, n := re.MatchString("abc")
	if id != 1 || n != 3 {
		t.Fatalf("got (%d, %d)", id, n)
	}
}

func TestCountedRepeat(t *testing.T) {
	re := MustCompile("a{2,4}")
	mustMatch(t, re, "a", 0, 0)
	mustMatch(t, re, "aa", 1, 2)
	mustMatch(t, re, "aaaaa", 1, 4)
	re2 := MustCompile("x{3}")
	mustMatch(t, re2, "xxxx", 1, 3)
	re3 := MustCompile("y{2,}")
	mustMatch(t, re3, "yyyyy", 1, 5)
}

func TestClasses(t *testing.T) {
	re := MustCompile(`\d+\.\d+\.\d+\.\d+`)
	mustMatch(t, re, "10.1.2.3 x", 1, 8)
	re2 := MustCompile(`[A-Fa-f0-9]+`)
	mustMatch(t, re2, "dEaDbEeF!", 1, 8)
	re3 := MustCompile(`[^:]+:`)
	mustMatch(t, re3, "Host: x", 1, 5)
	re4 := MustCompile(`[\]\[]`) // escaped brackets in class
	mustMatch(t, re4, "]", 1, 1)
}

func TestDotAndEscapes(t *testing.T) {
	re := MustCompile(`a.c`)
	mustMatch(t, re, "abc", 1, 3)
	mustMatch(t, re, "a\nc", 1, 3) // byte-oriented: . matches any byte
	re2 := MustCompile(`\x41\t`)
	mustMatch(t, re2, "A\tx", 1, 2)
}

func TestEmptyMatch(t *testing.T) {
	re := MustCompile("a*")
	mustMatch(t, re, "bbb", 1, 0)
	mustMatch(t, re, "", 1, 0)
}

func TestParseErrors(t *testing.T) {
	for _, p := range []string{"(", "a)", "[abc", "a{", "a{2,1}", "*a", `\x1`} {
		if _, err := Compile(p); err == nil {
			t.Errorf("pattern %q should not compile", p)
		}
	}
}

func TestFind(t *testing.T) {
	re := MustCompile("needle")
	s, e, id := re.Find([]byte("hay needle hay"))
	if id != 1 || s != 4 || e != 10 {
		t.Fatalf("find = (%d, %d, %d)", s, e, id)
	}
	if _, _, id := re.Find([]byte("haystack")); id != 0 {
		t.Fatalf("found in absence: %d", id)
	}
}

func TestIncrementalFeed(t *testing.T) {
	re := MustCompile(`[0-9]+\.[0-9]+`)
	ms := re.NewState()
	if !ms.Feed([]byte("12")) {
		t.Fatal("should stay alive")
	}
	if !ms.Feed([]byte(".")) {
		t.Fatal("should stay alive")
	}
	if !ms.Feed([]byte("34")) {
		t.Fatal("should stay alive")
	}
	ms.Feed([]byte(" ")) // dies here
	id, n := ms.Result()
	if id != 1 || n != 5 {
		t.Fatalf("result = (%d, %d)", id, n)
	}
}

func TestIncrementalEqualsOneShot(t *testing.T) {
	re := MustCompile(`[^ ]+`)
	input := []byte("hello world")
	for split := 0; split <= len(input); split++ {
		ms := re.NewState()
		ms.Feed(input[:split])
		ms.Feed(input[split:])
		id, n := ms.Result()
		wid, wn := re.Match(input)
		if id != wid || n != wn {
			t.Fatalf("split %d: (%d,%d) != (%d,%d)", split, id, n, wid, wn)
		}
	}
}

func TestMatchIterWouldBlock(t *testing.T) {
	re := MustCompile(`[^\r\n]*\r\n`)
	b := hbytes.New()
	b.Append([]byte("GET / HT"))
	ms := re.NewState()
	_, resume, err := ms.FinishIter(b.Begin())
	if err != hbytes.ErrWouldBlock {
		t.Fatalf("want would-block, got %v", err)
	}
	b.Append([]byte("TP/1.1\r\n"))
	id, end, err := ms.FinishIter(resume)
	if err != nil || id != 1 {
		t.Fatalf("resumed match: id=%d err=%v", id, err)
	}
	if end.Offset() != 16 {
		t.Fatalf("end offset = %d", end.Offset())
	}
}

func TestMatchIterFrozen(t *testing.T) {
	re := MustCompile(`abc`)
	b := hbytes.NewFromString("ab")
	b.Freeze()
	id, _, err := re.MatchIter(b.Begin())
	if err != nil || id != 0 {
		t.Fatalf("id=%d err=%v", id, err)
	}
}

// Property: our engine agrees with Go's regexp for anchored longest
// matching of a fixed pattern over random inputs. Go's regexp is
// leftmost-first, so we restrict to patterns where the two coincide.
func TestQuickAgainstStdlib(t *testing.T) {
	pattern := `[a-c]+x?`
	re := MustCompile(pattern)
	std := gore.MustCompile(`^(?:` + pattern + `)`)
	f := func(raw []byte) bool {
		// Map bytes into a small alphabet to hit the pattern often.
		data := make([]byte, len(raw))
		for i, b := range raw {
			data[i] = "abcxy"[int(b)%5]
		}
		id, n := re.Match(data)
		loc := std.FindIndex(data)
		if loc == nil {
			return id == 0 || n == 0
		}
		return id == 1 && int(n) == loc[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: feeding in arbitrary chunkings never changes the result.
func TestQuickChunkingInvariance(t *testing.T) {
	re := MustCompile(`[0-9]+(\.[0-9]+)?`, `[a-z]+`)
	f := func(raw []byte, cut uint8) bool {
		data := make([]byte, len(raw))
		for i, b := range raw {
			data[i] = "0123456789abc. "[int(b)%15]
		}
		wid, wn := re.Match(data)
		k := int(cut)
		if len(data) > 0 {
			k = k % (len(data) + 1)
		} else {
			k = 0
		}
		ms := re.NewState()
		ms.Feed(data[:k])
		ms.Feed(data[k:])
		id, n := ms.Result()
		return id == wid && n == wn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatchToken(b *testing.B) {
	re := MustCompile(`[^ \t\r\n]+`)
	data := []byte("GET /index.html HTTP/1.1\r\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re.Match(data)
	}
}

func BenchmarkMatchSet(b *testing.B) {
	re := MustCompile("GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS")
	data := []byte("DELETE /resource HTTP/1.1\r\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re.Match(data)
	}
}
