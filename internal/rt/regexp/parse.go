// Pattern parser: a self-contained regular-expression dialect covering what
// network-protocol token grammars need (the paper's BinPAC++ examples use
// patterns like /[^ \t\r\n]+/, /\r?\n/, /HTTP\//, /[0-9]+\.[0-9]+/).
//
// Supported syntax: literals, escapes (\n \r \t \0 \xHH \d \D \s \S \w \W,
// and escaped metacharacters), character classes with ranges and negation,
// '.', grouping, alternation, and the quantifiers * + ? {n} {n,} {n,m}.
// Matching operates on raw bytes, as HILTI's regexp type does.

package regexp

import (
	"fmt"
	"strconv"
)

// node is a parsed regular-expression AST node.
type node interface{ isNode() }

type litNode struct{ class *byteClass } // one byte from a class
type concatNode struct{ subs []node }
type altNode struct{ subs []node }
type repeatNode struct {
	sub      node
	min, max int // max < 0 means unbounded
}
type emptyNode struct{}

func (*litNode) isNode()    {}
func (*concatNode) isNode() {}
func (*altNode) isNode()    {}
func (*repeatNode) isNode() {}
func (*emptyNode) isNode()  {}

// byteClass is a 256-bit byte membership set.
type byteClass struct{ bits [4]uint64 }

func (c *byteClass) add(b byte) { c.bits[b>>6] |= 1 << (b & 63) }
func (c *byteClass) addRange(lo, hi byte) {
	for b := int(lo); b <= int(hi); b++ {
		c.add(byte(b))
	}
}
func (c *byteClass) has(b byte) bool { return c.bits[b>>6]&(1<<(b&63)) != 0 }
func (c *byteClass) negate() {
	for i := range c.bits {
		c.bits[i] = ^c.bits[i]
	}
}
func (c *byteClass) union(o *byteClass) {
	for i := range c.bits {
		c.bits[i] |= o.bits[i]
	}
}

func singleByte(b byte) *byteClass {
	c := &byteClass{}
	c.add(b)
	return c
}

func anyByte() *byteClass {
	c := &byteClass{}
	c.negate()
	return c
}

type parser struct {
	src string
	pos int
}

// parsePattern parses a pattern into an AST.
func parsePattern(src string) (node, error) {
	p := &parser{src: src}
	n, err := p.alternation()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("regexp %q: unexpected %q at offset %d", src, p.src[p.pos], p.pos)
	}
	return n, nil
}

func (p *parser) eof() bool  { return p.pos >= len(p.src) }
func (p *parser) peek() byte { return p.src[p.pos] }
func (p *parser) next() byte { b := p.src[p.pos]; p.pos++; return b }
func (p *parser) errf(f string, a ...any) error {
	return fmt.Errorf("regexp %q: %s (offset %d)", p.src, fmt.Sprintf(f, a...), p.pos)
}

func (p *parser) alternation() (node, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	subs := []node{first}
	for !p.eof() && p.peek() == '|' {
		p.next()
		n, err := p.concat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return &altNode{subs: subs}, nil
}

func (p *parser) concat() (node, error) {
	var subs []node
	for !p.eof() && p.peek() != '|' && p.peek() != ')' {
		n, err := p.repeat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	switch len(subs) {
	case 0:
		return &emptyNode{}, nil
	case 1:
		return subs[0], nil
	default:
		return &concatNode{subs: subs}, nil
	}
}

func (p *parser) repeat() (node, error) {
	atom, err := p.atom()
	if err != nil {
		return nil, err
	}
	for !p.eof() {
		switch p.peek() {
		case '*':
			p.next()
			atom = &repeatNode{sub: atom, min: 0, max: -1}
		case '+':
			p.next()
			atom = &repeatNode{sub: atom, min: 1, max: -1}
		case '?':
			p.next()
			atom = &repeatNode{sub: atom, min: 0, max: 1}
		case '{':
			n, err := p.counted(atom)
			if err != nil {
				return nil, err
			}
			atom = n
		default:
			return atom, nil
		}
	}
	return atom, nil
}

func (p *parser) counted(sub node) (node, error) {
	p.next() // '{'
	start := p.pos
	for !p.eof() && p.peek() != '}' {
		p.next()
	}
	if p.eof() {
		return nil, p.errf("unterminated {")
	}
	body := p.src[start:p.pos]
	p.next() // '}'
	min, max := 0, 0
	if i := indexByte(body, ','); i >= 0 {
		var err error
		if min, err = strconv.Atoi(body[:i]); err != nil {
			return nil, p.errf("bad repeat count %q", body)
		}
		rest := body[i+1:]
		if rest == "" {
			max = -1
		} else if max, err = strconv.Atoi(rest); err != nil {
			return nil, p.errf("bad repeat count %q", body)
		}
	} else {
		var err error
		if min, err = strconv.Atoi(body); err != nil {
			return nil, p.errf("bad repeat count %q", body)
		}
		max = min
	}
	if min < 0 || (max >= 0 && max < min) || min > 1000 || max > 1000 {
		return nil, p.errf("repeat count out of range in {%s}", body)
	}
	return &repeatNode{sub: sub, min: min, max: max}, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func (p *parser) atom() (node, error) {
	switch b := p.next(); b {
	case '(':
		// Non-capturing group markers are accepted and ignored.
		if p.pos+1 < len(p.src) && p.src[p.pos] == '?' && p.src[p.pos+1] == ':' {
			p.pos += 2
		}
		n, err := p.alternation()
		if err != nil {
			return nil, err
		}
		if p.eof() || p.next() != ')' {
			return nil, p.errf("missing )")
		}
		return n, nil
	case '[':
		c, err := p.class()
		if err != nil {
			return nil, err
		}
		return &litNode{class: c}, nil
	case '.':
		return &litNode{class: anyByte()}, nil
	case '\\':
		c, err := p.escape()
		if err != nil {
			return nil, err
		}
		return &litNode{class: c}, nil
	case '^':
		// Patterns are matched anchored at the current input position, so a
		// leading caret is redundant; accept it as a no-op.
		return &emptyNode{}, nil
	case '*', '+', '?', ')', '$':
		return nil, p.errf("unexpected metacharacter %q", b)
	default:
		return &litNode{class: singleByte(b)}, nil
	}
}

func (p *parser) escape() (*byteClass, error) {
	if p.eof() {
		return nil, p.errf("trailing backslash")
	}
	switch b := p.next(); b {
	case 'n':
		return singleByte('\n'), nil
	case 'r':
		return singleByte('\r'), nil
	case 't':
		return singleByte('\t'), nil
	case 'f':
		return singleByte('\f'), nil
	case 'v':
		return singleByte('\v'), nil
	case '0':
		return singleByte(0), nil
	case 'a':
		return singleByte(7), nil
	case 'x':
		if p.pos+2 > len(p.src) {
			return nil, p.errf("truncated \\x escape")
		}
		n, err := strconv.ParseUint(p.src[p.pos:p.pos+2], 16, 8)
		if err != nil {
			return nil, p.errf("bad \\x escape")
		}
		p.pos += 2
		return singleByte(byte(n)), nil
	case 'd':
		return classDigit(), nil
	case 'D':
		c := classDigit()
		c.negate()
		return c, nil
	case 's':
		return classSpace(), nil
	case 'S':
		c := classSpace()
		c.negate()
		return c, nil
	case 'w':
		return classWord(), nil
	case 'W':
		c := classWord()
		c.negate()
		return c, nil
	default:
		// Escaped literal (metacharacters, '/', etc.).
		return singleByte(b), nil
	}
}

func classDigit() *byteClass {
	c := &byteClass{}
	c.addRange('0', '9')
	return c
}

func classSpace() *byteClass {
	c := &byteClass{}
	for _, b := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
		c.add(b)
	}
	return c
}

func classWord() *byteClass {
	c := &byteClass{}
	c.addRange('a', 'z')
	c.addRange('A', 'Z')
	c.addRange('0', '9')
	c.add('_')
	return c
}

func (p *parser) class() (*byteClass, error) {
	c := &byteClass{}
	negate := false
	if !p.eof() && p.peek() == '^' {
		p.next()
		negate = true
	}
	first := true
	for {
		if p.eof() {
			return nil, p.errf("unterminated character class")
		}
		b := p.next()
		if b == ']' && !first {
			break
		}
		first = false
		var lo *byteClass
		if b == '\\' {
			var err error
			if lo, err = p.escape(); err != nil {
				return nil, err
			}
		} else {
			lo = singleByte(b)
		}
		// Range? Only for single-byte left sides.
		if !p.eof() && p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.next() // '-'
			hiB := p.next()
			if hiB == '\\' {
				hc, err := p.escape()
				if err != nil {
					return nil, err
				}
				// Find the single byte of the escape for the range end.
				hiB = firstOf(hc)
			}
			loB := firstOf(lo)
			if loB > hiB {
				return nil, p.errf("inverted range")
			}
			c.addRange(loB, hiB)
			continue
		}
		c.union(lo)
	}
	if negate {
		c.negate()
	}
	return c, nil
}

func firstOf(c *byteClass) byte {
	for i := 0; i < 256; i++ {
		if c.has(byte(i)) {
			return byte(i)
		}
	}
	return 0
}
