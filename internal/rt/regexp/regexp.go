// Package regexp implements HILTI's regular-expression type: a from-scratch
// byte-oriented engine supporting simultaneous matching of multiple
// expressions and incremental matching across input chunks (paper §3.2).
//
// Patterns compile to a Thompson NFA whose determinization is performed
// lazily, caching DFA states as they are first visited. Matching is
// anchored at the starting position and reports the *longest* match and the
// lowest-numbered pattern that produced it — the semantics protocol-token
// dispatch needs. A MatchState carries the automaton's progress between
// chunks, so parsers can suspend on exhausted input and resume matching
// mid-token when the next packet arrives.
package regexp

import (
	"fmt"
	"sort"
	"strings"

	"hilti/internal/rt/hbytes"
)

// Regexp is a compiled set of patterns sharing one automaton.
type Regexp struct {
	patterns []string
	start    *dfaState
	cache    map[string]*dfaState
	anyFirst [4]uint64 // union of classes leaving the start closure (prefilter)
}

// dfaState is one lazily built DFA state.
type dfaState struct {
	nfaStates  []*nfaState
	accept     int  // lowest pattern id + 1; 0 when non-accepting
	canAdvance bool // any outgoing byte transition exists
	next       [256]*dfaState
	built      [4]uint64 // bitmask of which next[] entries are computed
}

// dead is the shared sink for "no further match possible".
var dead = &dfaState{}

// Compile compiles one or more patterns into a joint matcher. Pattern ids
// reported by matches are 1-based indices into the argument list.
func Compile(patterns ...string) (*Regexp, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("regexp: no patterns")
	}
	b := &nfaBuilder{}
	root := b.state()
	for i, p := range patterns {
		ast, err := parsePattern(p)
		if err != nil {
			return nil, err
		}
		f := b.build(ast)
		acc := b.state()
		acc.accept = i + 1
		f.end.eps = append(f.end.eps, acc)
		root.eps = append(root.eps, f.start)
	}
	states, accept := closure([]*nfaState{root})
	start := &dfaState{nfaStates: states, accept: accept, canAdvance: canAdvance(states)}
	re := &Regexp{
		patterns: patterns,
		start:    start,
		cache:    map[string]*dfaState{stateKey(states): start},
	}
	for _, s := range states {
		for _, t := range s.trans {
			for i := range re.anyFirst {
				re.anyFirst[i] |= t.class.bits[i]
			}
		}
	}
	return re, nil
}

// MustCompile is Compile panicking on error; for literal patterns.
func MustCompile(patterns ...string) *Regexp {
	re, err := Compile(patterns...)
	if err != nil {
		panic(err)
	}
	return re
}

// Patterns returns the source patterns.
func (re *Regexp) Patterns() []string { return re.patterns }

// TypeName implements the runtime Object interface.
func (re *Regexp) TypeName() string { return "regexp" }

// FormatObj renders the pattern set.
func (re *Regexp) FormatObj() string { return "/" + strings.Join(re.patterns, "/ | /") + "/" }

// canAdvance reports whether any state in the set has a byte transition.
func canAdvance(states []*nfaState) bool {
	for _, s := range states {
		if len(s.trans) > 0 {
			return true
		}
	}
	return false
}

func stateKey(states []*nfaState) string {
	ids := make([]int, len(states))
	for i, s := range states {
		ids[i] = s.id
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "%d,", id)
	}
	return sb.String()
}

// step returns the DFA state after consuming b, building it on first use.
func (re *Regexp) step(s *dfaState, b byte) *dfaState {
	if s.built[b>>6]&(1<<(b&63)) != 0 {
		return s.next[b]
	}
	var targets []*nfaState
	for _, ns := range s.nfaStates {
		for _, t := range ns.trans {
			if t.class.has(b) {
				targets = append(targets, t.to)
			}
		}
	}
	var next *dfaState
	if len(targets) == 0 {
		next = dead
	} else {
		cl, accept := closure(targets)
		key := stateKey(cl)
		if cached, ok := re.cache[key]; ok {
			next = cached
		} else {
			next = &dfaState{nfaStates: cl, accept: accept, canAdvance: canAdvance(cl)}
			re.cache[key] = next
		}
	}
	s.next[b] = next
	s.built[b>>6] |= 1 << (b & 63)
	return next
}

// Match runs an anchored longest-match against data. It returns the
// 1-based id of the matching pattern and the match length; id 0 means no
// match. A pattern matching the empty string yields (id, 0).
func (re *Regexp) Match(data []byte) (int, int64) {
	ms := MatchState{re: re, cur: re.start}
	ms.noteAccept()
	ms.Feed(data)
	return ms.Result()
}

// MatchString is Match over a string.
func (re *Regexp) MatchString(s string) (int, int64) { return re.Match([]byte(s)) }

// Find searches data for the first (leftmost) position with a match,
// returning start, end, and pattern id; id 0 means no match anywhere.
func (re *Regexp) Find(data []byte) (int64, int64, int) {
	for i := 0; i < len(data); i++ {
		// Prefilter: skip bytes that cannot begin any pattern, unless a
		// pattern accepts the empty string (then every position matches).
		if re.start.accept == 0 && re.anyFirst[data[i]>>6]&(1<<(data[i]&63)) == 0 {
			continue
		}
		if id, n := re.Match(data[i:]); id != 0 {
			return int64(i), int64(i) + n, id
		}
	}
	if re.start.accept != 0 {
		return int64(len(data)), int64(len(data)), re.start.accept
	}
	return -1, -1, 0
}

// MatchState is resumable matching progress across input chunks.
type MatchState struct {
	re       *Regexp
	cur      *dfaState
	consumed int64
	bestID   int
	bestLen  int64
}

// NewState returns a fresh anchored matcher positioned before any input.
func (re *Regexp) NewState() *MatchState {
	ms := &MatchState{re: re, cur: re.start}
	ms.noteAccept()
	if !re.start.canAdvance {
		ms.cur = dead
	}
	return ms
}

// TypeName implements the runtime Object interface.
func (ms *MatchState) TypeName() string { return "match_state" }

func (ms *MatchState) noteAccept() {
	if ms.cur.accept > 0 {
		ms.bestID = ms.cur.accept
		ms.bestLen = ms.consumed
	}
}

// Feed consumes data, advancing the automaton. It returns false once no
// further input can extend any match (the automaton is dead) — the result
// is then final. It returns true when more input could still matter.
func (ms *MatchState) Feed(data []byte) bool {
	if ms.cur == dead {
		return false
	}
	cur := ms.cur
	re := ms.re
	for i := 0; i < len(data); i++ {
		next := cur.next[data[i]]
		if next == nil && cur.built[data[i]>>6]&(1<<(data[i]&63)) == 0 {
			next = re.step(cur, data[i])
		}
		if next == dead {
			ms.cur = dead
			ms.consumed += int64(i)
			return false
		}
		cur = next
		if cur.accept > 0 {
			ms.bestID = cur.accept
			ms.bestLen = ms.consumed + int64(i) + 1
		}
		if !cur.canAdvance {
			ms.cur = dead
			ms.consumed += int64(i) + 1
			return false
		}
	}
	ms.consumed += int64(len(data))
	ms.cur = cur
	return true
}

// Alive reports whether additional input could still extend a match.
func (ms *MatchState) Alive() bool { return ms.cur != dead }

// Consumed returns the number of bytes fed so far (up to the point the
// automaton died, if it did).
func (ms *MatchState) Consumed() int64 { return ms.consumed }

// Result returns the best match so far: the 1-based pattern id and match
// length; id 0 means no match.
func (ms *MatchState) Result() (int, int64) { return ms.bestID, ms.bestLen }

// MatchIter matches anchored at iterator it over a byte rope, consuming
// chunk by chunk. On success it returns the pattern id and the iterator
// one past the match. When more input is required to decide (the automaton
// is alive, the rope unfrozen, and deciding needs more data), it reports
// hbytes.ErrWouldBlock — the caller suspends and retries after appending.
func (re *Regexp) MatchIter(it hbytes.Iter) (int, hbytes.Iter, error) {
	ms := re.NewState()
	return ms.FinishIter(it)
}

// FinishIter continues an incremental match from a (possibly partially fed)
// state. The iterator must point at the first *unconsumed* byte; resumed
// calls pass the position reached previously.
func (ms *MatchState) FinishIter(it hbytes.Iter) (int, hbytes.Iter, error) {
	b := it.Bytes()
	start := it.Offset() - ms.consumed // absolute offset of match start
	pos := it.Offset()
	for ms.Alive() {
		chunk, err := b.Sub(b.At(pos), b.At(b.StreamLen()))
		if err != nil {
			return 0, it, err
		}
		alive := ms.Feed(chunk)
		pos = start + ms.consumed
		if !alive {
			break
		}
		if !b.Frozen() {
			return 0, b.At(pos), hbytes.ErrWouldBlock
		}
		break // frozen and all data consumed: final
	}
	id, n := ms.Result()
	if id == 0 {
		return 0, b.At(start), nil
	}
	return id, b.At(start + n), nil
}
