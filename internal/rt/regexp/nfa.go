// Thompson NFA construction. Each compiled pattern contributes an accept
// state tagged with its pattern index, so a single automaton matches a set
// of expressions simultaneously — HILTI's regexp type supports exactly this
// for dispatching among protocol tokens in one pass (paper §3.2).

package regexp

// nfaState is one NFA state: byte-class transitions plus epsilon edges.
type nfaState struct {
	id     int
	trans  []nfaTrans
	eps    []*nfaState
	accept int // pattern index + 1; 0 when not accepting
}

type nfaTrans struct {
	class *byteClass
	to    *nfaState
}

// nfa is a compiled automaton fragment with a single entry and exit.
type nfa struct {
	start, end *nfaState
}

type nfaBuilder struct{ states []*nfaState }

func (b *nfaBuilder) state() *nfaState {
	s := &nfaState{id: len(b.states)}
	b.states = append(b.states, s)
	return s
}

// build converts an AST into an NFA fragment.
func (b *nfaBuilder) build(n node) nfa {
	switch n := n.(type) {
	case *emptyNode:
		s := b.state()
		e := b.state()
		s.eps = append(s.eps, e)
		return nfa{s, e}
	case *litNode:
		s := b.state()
		e := b.state()
		s.trans = append(s.trans, nfaTrans{class: n.class, to: e})
		return nfa{s, e}
	case *concatNode:
		frag := b.build(n.subs[0])
		for _, sub := range n.subs[1:] {
			next := b.build(sub)
			frag.end.eps = append(frag.end.eps, next.start)
			frag.end = next.end
		}
		return frag
	case *altNode:
		s := b.state()
		e := b.state()
		for _, sub := range n.subs {
			f := b.build(sub)
			s.eps = append(s.eps, f.start)
			f.end.eps = append(f.end.eps, e)
		}
		return nfa{s, e}
	case *repeatNode:
		return b.buildRepeat(n)
	default:
		panic("regexp: unknown AST node")
	}
}

func (b *nfaBuilder) buildRepeat(n *repeatNode) nfa {
	switch {
	case n.min == 0 && n.max == -1: // star
		s := b.state()
		e := b.state()
		f := b.build(n.sub)
		s.eps = append(s.eps, f.start, e)
		f.end.eps = append(f.end.eps, f.start, e)
		return nfa{s, e}
	case n.min == 1 && n.max == -1: // plus
		f := b.build(n.sub)
		e := b.state()
		f.end.eps = append(f.end.eps, f.start, e)
		return nfa{f.start, e}
	case n.min == 0 && n.max == 1: // quest
		s := b.state()
		e := b.state()
		f := b.build(n.sub)
		s.eps = append(s.eps, f.start, e)
		f.end.eps = append(f.end.eps, e)
		return nfa{s, e}
	default: // counted: expand into a chain of copies
		s := b.state()
		cur := s
		for i := 0; i < n.min; i++ {
			f := b.build(n.sub)
			cur.eps = append(cur.eps, f.start)
			cur = f.end
		}
		e := b.state()
		if n.max == -1 {
			f := b.build(n.sub)
			cur.eps = append(cur.eps, f.start, e)
			f.end.eps = append(f.end.eps, f.start, e)
		} else {
			for i := n.min; i < n.max; i++ {
				f := b.build(n.sub)
				cur.eps = append(cur.eps, f.start, e)
				cur = f.end
			}
			cur.eps = append(cur.eps, e)
		}
		return nfa{s, e}
	}
}

// closure expands a set of NFA states with everything epsilon-reachable.
// The result is a sorted, deduplicated id list plus the best (lowest)
// accept tag reachable in the set.
func closure(states []*nfaState) ([]*nfaState, int) {
	var stack []*nfaState
	seen := map[int]bool{}
	var out []*nfaState
	accept := 0
	push := func(s *nfaState) {
		if !seen[s.id] {
			seen[s.id] = true
			stack = append(stack, s)
			out = append(out, s)
		}
	}
	for _, s := range states {
		push(s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.accept > 0 && (accept == 0 || s.accept < accept) {
			accept = s.accept
		}
		for _, e := range s.eps {
			push(e)
		}
	}
	return out, accept
}
