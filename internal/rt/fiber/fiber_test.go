package fiber

import (
	"errors"
	"strings"
	"testing"
)

func TestYieldResume(t *testing.T) {
	f := New(func(f *Fiber, arg any) (any, error) {
		sum := arg.(int)
		for i := 0; i < 3; i++ {
			got := f.Yield(sum)
			sum += got.(int)
		}
		return sum, nil
	})
	v, done, err := f.Resume(10)
	if err != nil || done || v.(int) != 10 {
		t.Fatalf("first: %v %v %v", v, done, err)
	}
	v, done, _ = f.Resume(1)
	if done || v.(int) != 11 {
		t.Fatalf("second: %v %v", v, done)
	}
	v, done, _ = f.Resume(2)
	if done || v.(int) != 13 {
		t.Fatalf("third: %v %v", v, done)
	}
	v, done, err = f.Resume(3)
	if !done || err != nil || v.(int) != 16 {
		t.Fatalf("final: %v %v %v", v, done, err)
	}
	if !f.Done() {
		t.Fatal("should be done")
	}
	if _, _, err := f.Resume(nil); err == nil {
		t.Fatal("resume after completion should error")
	}
}

func TestImmediateReturn(t *testing.T) {
	f := New(func(f *Fiber, arg any) (any, error) { return "ok", nil })
	v, done, err := f.Resume(nil)
	if !done || err != nil || v.(string) != "ok" {
		t.Fatalf("got %v %v %v", v, done, err)
	}
}

func TestErrorPropagation(t *testing.T) {
	want := errors.New("boom")
	f := New(func(f *Fiber, arg any) (any, error) { return nil, want })
	_, done, err := f.Resume(nil)
	if !done || !errors.Is(err, want) {
		t.Fatalf("got %v %v", done, err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	f := New(func(f *Fiber, arg any) (any, error) { panic("bad parse") })
	_, done, err := f.Resume(nil)
	if !done || err == nil {
		t.Fatalf("got %v %v", done, err)
	}
	// The error carries the panic value and the goroutine stack so fiber
	// faults are diagnosable.
	if !strings.Contains(err.Error(), "bad parse") || !strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("stack not captured: %v", err)
	}
}

func TestAbortUnwindsDefers(t *testing.T) {
	cleaned := false
	f := New(func(f *Fiber, arg any) (any, error) {
		defer func() { cleaned = true }()
		f.Yield(nil)
		t.Error("should not continue past yield after abort")
		return nil, nil
	})
	f.Resume(nil)
	f.Abort()
	if !cleaned {
		t.Fatal("defers did not run on abort")
	}
	if !f.Done() {
		t.Fatal("aborted fiber should be done")
	}
}

func TestAbortUnstartedIsNoop(t *testing.T) {
	f := New(func(f *Fiber, arg any) (any, error) { return nil, nil })
	f.Abort()
	if !f.Done() {
		t.Fatal("should be done after abort")
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(8)
	f1 := p.Get(func(f *Fiber, arg any) (any, error) { return arg.(int) * 2, nil })
	v, done, err := f1.Resume(21)
	if !done || err != nil || v.(int) != 42 {
		t.Fatalf("first use: %v %v %v", v, done, err)
	}
	// The second Get should reuse the parked goroutine (can't observe the
	// goroutine identity directly; exercise correctness of the reuse path by
	// cycling many times within a small pool).
	for i := 0; i < 100; i++ {
		f := p.Get(func(f *Fiber, arg any) (any, error) {
			x := arg.(int)
			y := f.Yield(x + 1)
			return y.(int) + x, nil
		})
		v, done, _ := f.Resume(i)
		if done || v.(int) != i+1 {
			t.Fatalf("iter %d yield: %v %v", i, v, done)
		}
		v, done, err := f.Resume(100)
		if !done || err != nil || v.(int) != 100+i {
			t.Fatalf("iter %d final: %v %v %v", i, v, done, err)
		}
	}
}

func TestIncrementalParserPattern(t *testing.T) {
	// The host-application pattern from the paper: feed chunks of payload
	// into a suspended parse, resuming as data arrives.
	var result []byte
	f := New(func(f *Fiber, arg any) (any, error) {
		buf := arg.([]byte)
		for len(result) < 10 {
			result = append(result, buf...)
			if len(result) < 10 {
				buf = f.Yield("need more").([]byte)
			}
		}
		return string(result), nil
	})
	status, done, _ := f.Resume([]byte("GET /"))
	if done || status.(string) != "need more" {
		t.Fatalf("expected suspension, got %v %v", status, done)
	}
	v, done, err := f.Resume([]byte("index"))
	if !done || err != nil || v.(string) != "GET /index" {
		t.Fatalf("got %v %v %v", v, done, err)
	}
}

// BenchmarkFiberSwitch reproduces the paper's §5 microbenchmark: context
// switches per second between existing fibers (paper: ~18M/s with
// setcontext; our goroutine handoff is measured for EXPERIMENTS.md).
func BenchmarkFiberSwitch(b *testing.B) {
	f := New(func(f *Fiber, arg any) (any, error) {
		for {
			f.Yield(nil)
		}
	})
	f.Resume(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Resume(nil)
	}
	b.StopTimer()
	f.Abort()
}

// BenchmarkFiberLifecycle reproduces the paper's create/start/finish/delete
// cycle measurement (paper: ~5M/s).
func BenchmarkFiberLifecycle(b *testing.B) {
	p := NewPool(4)
	fn := func(f *Fiber, arg any) (any, error) { return nil, nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := p.Get(fn)
		f.Resume(nil)
	}
}

func BenchmarkFiberLifecycleUnpooled(b *testing.B) {
	fn := func(f *Fiber, arg any) (any, error) { return nil, nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(fn).Resume(nil)
	}
}
