// Package fiber implements HILTI's fibers: resumable execution contexts
// that let analysis code suspend mid-computation — typically a protocol
// parser running out of input — and transparently continue later when the
// host application feeds more data (paper §3.2, §5 "Runtime Model").
//
// The paper's C implementation freezes the native stack with setcontext on
// mmap'd worst-case-sized segments. In Go the equivalent mechanism is a
// goroutine parked on a channel: the goroutine's stack *is* the frozen
// fiber state, grown and shrunk by the Go runtime (the same MMU-backed
// lazy-allocation trick the paper borrows from Rust). A free-list pool
// recycles parked goroutines to keep fiber creation cheap, mirroring the
// paper's stack free-list. DESIGN.md records this substitution; the
// microbenchmarks reproduce the paper's §5 fiber measurements.
package fiber

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// ErrAborted is returned from Resume when the fiber was torn down via
// Abort (e.g. the host abandons a half-parsed connection).
var ErrAborted = errors.New("fiber: aborted")

// Func is the entry point executed inside a fiber. It receives the fiber
// (to yield through) and the value passed to the first Resume.
type Func func(f *Fiber, arg any) (any, error)

type resumeMsg struct {
	val   any
	abort bool
}

type yieldMsg struct {
	val  any
	done bool
	err  error
}

// Fiber is a single resumable execution context.
type Fiber struct {
	resume    chan resumeMsg
	yield     chan yieldMsg
	fn        Func
	started   bool
	done      bool
	pool      *Pool
	nextStart chan any // non-nil when a recycled goroutine is parked
}

type abortPanic struct{}

// New creates a fiber that will run fn when first resumed. The goroutine
// starts lazily, so unused fibers cost only the struct.
func New(fn Func) *Fiber {
	return &Fiber{
		resume: make(chan resumeMsg),
		yield:  make(chan yieldMsg),
		fn:     fn,
	}
}

// TypeName implements the runtime Object interface.
func (f *Fiber) TypeName() string { return "fiber" }

// Resume starts or continues the fiber, handing it arg (delivered as the
// result of the Yield it was parked on, or as the entry argument on first
// resume). It returns the value the fiber yields next, done=true with the
// final return value when the fiber finishes, or the fiber's error.
func (f *Fiber) Resume(arg any) (val any, done bool, err error) {
	if f.done {
		return nil, true, fmt.Errorf("fiber: resume after completion")
	}
	if !f.started {
		f.started = true
		if f.nextStart != nil {
			ch := f.nextStart
			f.nextStart = nil
			ch <- arg
		} else {
			go f.run(arg)
		}
	} else {
		f.resume <- resumeMsg{val: arg}
	}
	m := <-f.yield
	if m.done {
		f.done = true
	}
	return m.val, m.done, m.err
}

// Yield suspends the fiber, delivering val to the pending Resume, and
// blocks until resumed again, returning the resume argument. It must only
// be called from within the fiber's Func.
func (f *Fiber) Yield(val any) any {
	f.yield <- yieldMsg{val: val}
	m := <-f.resume
	if m.abort {
		panic(abortPanic{})
	}
	return m.val
}

// Abort tears down a suspended fiber: its goroutine unwinds (deferred
// functions run) and the fiber becomes unusable. Aborting an unstarted or
// finished fiber is a no-op.
func (f *Fiber) Abort() {
	if !f.started || f.done {
		f.done = true
		return
	}
	f.resume <- resumeMsg{abort: true}
	<-f.yield // the run wrapper reports completion
	f.done = true
}

// Done reports whether the fiber has finished or been aborted.
func (f *Fiber) Done() bool { return f.done }

func (f *Fiber) run(arg any) {
	for {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortPanic); ok {
						f.yield <- yieldMsg{done: true, err: ErrAborted}
						return
					}
					// Capture the stack here, inside the recovering frame,
					// so the fault is diagnosable from the returned error.
					f.yield <- yieldMsg{done: true,
						err: fmt.Errorf("fiber: panic: %v\n%s", r, debug.Stack())}
				}
			}()
			ret, err := f.fn(f, arg)
			f.yield <- yieldMsg{val: ret, done: true, err: err}
		}()
		// Pooled mode: park until handed a new start argument (Get will
		// have installed the new Func before the argument arrives).
		if f.pool == nil {
			return
		}
		next := f.pool.park(f)
		m, ok := <-next
		if !ok {
			return
		}
		arg = m
	}
}

// --- Pool --------------------------------------------------------------------

// Pool recycles fiber goroutines, the analog of the paper's free-list of
// fiber stacks: creating/starting/finishing fibers is the hot path when
// every connection gets a parser fiber.
type Pool struct {
	mu   sync.Mutex
	free []*pooled
	max  int
}

type pooled struct {
	f    *Fiber
	next chan any
}

// NewPool creates a pool retaining at most max parked fibers.
func NewPool(max int) *Pool {
	if max <= 0 {
		max = 1024
	}
	return &Pool{max: max}
}

// Get returns a fiber running fn, reusing a parked goroutine when one is
// available.
func (p *Pool) Get(fn Func) *Fiber {
	p.mu.Lock()
	n := len(p.free)
	var pl *pooled
	if n > 0 {
		pl = p.free[n-1]
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if pl == nil {
		f := New(fn)
		f.pool = p
		return f
	}
	f := pl.f
	f.fn = fn
	f.done = false
	f.started = false
	f.nextStart = pl.next
	return f
}

// park registers f as reusable and returns the channel that will deliver
// its next start argument. Called from the fiber goroutine.
func (p *Pool) park(f *Fiber) chan any {
	next := make(chan any, 1)
	nf := &pooled{f: f, next: next}
	p.mu.Lock()
	if len(p.free) >= p.max {
		p.mu.Unlock()
		close(next)
		return next
	}
	p.free = append(p.free, nf)
	p.mu.Unlock()
	return next
}
