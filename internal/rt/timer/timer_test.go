package timer

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAdvanceFiresInOrder(t *testing.T) {
	m := NewMgr()
	var got []int
	m.ScheduleFunc(30, func() { got = append(got, 3) })
	m.ScheduleFunc(10, func() { got = append(got, 1) })
	m.ScheduleFunc(20, func() { got = append(got, 2) })
	if n := m.Advance(25); n != 2 {
		t.Fatalf("fired %d", n)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("order %v", got)
	}
	m.Advance(30)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("order %v", got)
	}
}

func TestAdvanceMonotone(t *testing.T) {
	m := NewMgr()
	m.Advance(100)
	m.Advance(50)
	if m.Now() != 100 {
		t.Fatalf("time went backwards: %d", m.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	m := NewMgr()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		m.ScheduleFunc(10, func() { got = append(got, i) })
	}
	m.Advance(10)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	m := NewMgr()
	fired := false
	tm := m.ScheduleFunc(10, func() { fired = true })
	if !tm.Scheduled() {
		t.Fatal("should be scheduled")
	}
	tm.Cancel()
	if tm.Scheduled() {
		t.Fatal("should not be scheduled")
	}
	m.Advance(100)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	tm.Cancel() // double-cancel is a no-op
}

func TestUpdate(t *testing.T) {
	m := NewMgr()
	var got []string
	a := m.ScheduleFunc(10, func() { got = append(got, "a") })
	m.ScheduleFunc(20, func() { got = append(got, "b") })
	a.Update(30)
	m.Advance(25)
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("got %v", got)
	}
	m.Advance(30)
	if len(got) != 2 || got[1] != "a" {
		t.Fatalf("got %v", got)
	}
}

func TestRescheduleFromCallback(t *testing.T) {
	// A timer whose callback schedules another timer due later must not
	// fire it in the same advance unless due.
	m := NewMgr()
	count := 0
	var rearm func()
	rearm = func() {
		count++
		if count < 3 {
			m.ScheduleFunc(m.Now()+10, rearm)
		}
	}
	m.ScheduleFunc(10, rearm)
	m.Advance(10)
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	// After the first firing the timer is re-armed at 20; advancing to 30
	// fires it once more (re-arming at 40, since Now() is already 30).
	m.Advance(30)
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
	m.Advance(40)
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestCallbackSchedulesDueTimerDeferredToNextAdvance(t *testing.T) {
	// Scheduling never executes user code synchronously — and per the
	// Schedule contract a timer due at or before the current time fires on
	// the *next* Advance, even when scheduled from inside a callback of
	// the current one (see also TestAdvanceReentrantSchedule).
	m := NewMgr()
	var got []string
	m.ScheduleFunc(10, func() {
		got = append(got, "first")
		m.ScheduleFunc(5, func() { got = append(got, "second") }) // already due
	})
	m.Advance(10)
	if len(got) != 1 || got[0] != "first" {
		t.Fatalf("got %v, want just [first] on the first Advance", got)
	}
	m.Advance(m.Now())
	if len(got) != 2 || got[1] != "second" {
		t.Fatalf("got %v after second Advance", got)
	}
}

func TestExpire(t *testing.T) {
	m := NewMgr()
	n := 0
	for i := 0; i < 4; i++ {
		m.ScheduleFunc(Time(1000+i), func() { n++ })
	}
	if fired := m.Expire(true); fired != 4 || n != 4 {
		t.Fatalf("expire fired=%d n=%d", fired, n)
	}
	if m.Pending() != 0 {
		t.Fatal("pending after expire")
	}
	m.ScheduleFunc(1, func() { n++ })
	m.Expire(false)
	if n != 4 {
		t.Fatal("expire(false) executed")
	}
}

func TestScheduleTwiceRejected(t *testing.T) {
	m := NewMgr()
	tm := NewTimer(func() {})
	if err := m.Schedule(1, tm); err != nil {
		t.Fatal(err)
	}
	if err := m.Schedule(2, tm); err == nil {
		t.Fatal("double schedule should error")
	}
}

// Property: advancing past all of a random set of fire times fires them in
// nondecreasing time order, exactly once each.
func TestQuickFireOrder(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		m := NewMgr()
		want := make([]Time, n)
		var fired []Time
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(1000))
			want[i] = at
			at2 := at
			m.ScheduleFunc(at, func() { fired = append(fired, at2) })
		}
		m.Advance(2000)
		if len(fired) != n {
			return false
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestAdvanceReentrantSchedule regresses the documented contract: a timer
// scheduled at or before the manager's current time from within a firing
// callback must wait for the *next* Advance, not fire in the same one.
func TestAdvanceReentrantSchedule(t *testing.T) {
	m := NewMgr()
	var log []string
	m.ScheduleFunc(10, func() {
		log = append(log, "outer")
		m.ScheduleFunc(5, func() { log = append(log, "inner") }) // already due
	})
	if n := m.Advance(10); n != 1 {
		t.Fatalf("first Advance fired %d, want 1 (inner must wait)", n)
	}
	if len(log) != 1 || log[0] != "outer" {
		t.Fatalf("after first Advance log = %v", log)
	}
	if n := m.Advance(10); n != 1 {
		t.Fatalf("second Advance fired %d, want 1", n)
	}
	if len(log) != 2 || log[1] != "inner" {
		t.Fatalf("after second Advance log = %v", log)
	}
}

// TestAdvanceReentrantChain checks a self-rescheduling callback cannot
// starve Advance into an unbounded loop: each Advance fires exactly one
// generation.
func TestAdvanceReentrantChain(t *testing.T) {
	m := NewMgr()
	fired := 0
	var reschedule func()
	reschedule = func() {
		fired++
		m.ScheduleFunc(m.Now(), reschedule)
	}
	m.ScheduleFunc(1, reschedule)
	for i := 0; i < 5; i++ {
		if n := m.Advance(Time(i + 1)); n != 1 {
			t.Fatalf("advance %d fired %d timers, want 1", i, n)
		}
	}
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if m.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", m.Pending())
	}
}

// TestCancelWithinAdvance: a callback cancelling a timer that is due in
// the same Advance prevents it from firing.
func TestCancelWithinAdvance(t *testing.T) {
	m := NewMgr()
	var t2Fired bool
	t2 := NewTimer(func() { t2Fired = true })
	m.ScheduleFunc(10, func() { t2.Cancel() })
	m.Schedule(10, t2)
	if n := m.Advance(10); n != 1 {
		t.Fatalf("fired %d, want 1", n)
	}
	if t2Fired {
		t.Fatal("cancelled timer fired")
	}
	if t2.Scheduled() {
		t.Fatal("cancelled timer still scheduled")
	}
	// The cancelled timer is reusable.
	m.Schedule(20, t2)
	m.Advance(20)
	if !t2Fired {
		t.Fatal("rescheduled timer did not fire")
	}
}

// TestUpdateWithinAdvance: a callback pushing a due timer's fire time into
// the future defers it past the current Advance.
func TestUpdateWithinAdvance(t *testing.T) {
	m := NewMgr()
	var t2Fired int
	t2 := NewTimer(func() { t2Fired++ })
	m.ScheduleFunc(10, func() { t2.Update(30) })
	m.Schedule(10, t2)
	if n := m.Advance(10); n != 1 {
		t.Fatalf("fired %d, want 1", n)
	}
	if t2Fired != 0 {
		t.Fatal("updated timer fired in the same Advance")
	}
	if !t2.Scheduled() || t2.FireTime() != 30 {
		t.Fatalf("timer not re-queued for 30 (scheduled=%v fire=%d)", t2.Scheduled(), t2.FireTime())
	}
	m.Advance(30)
	if t2Fired != 1 {
		t.Fatalf("t2 fired %d times, want 1", t2Fired)
	}
}

func BenchmarkScheduleAdvance(b *testing.B) {
	m := NewMgr()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.ScheduleFunc(m.Now()+100, func() {})
		if i%64 == 0 {
			m.AdvanceBy(10)
		}
	}
	m.Expire(false)
}

// Regression: Update must take a fresh sequence number, so a timer moved
// to a fire time that ties with an existing timer fires *after* it —
// identical to the equivalent Cancel+Schedule.
func TestUpdateTieOrderMatchesReschedule(t *testing.T) {
	run := func(reschedule func(m *Mgr, y *Timer)) []string {
		m := NewMgr()
		var order []string
		y := NewTimer(func() { order = append(order, "y") })
		if err := m.Schedule(10, y); err != nil {
			t.Fatal(err)
		}
		m.ScheduleFunc(5, func() { order = append(order, "x") })
		reschedule(m, y) // move y to 5: ties with x, scheduled later
		m.Advance(5)
		return order
	}

	viaUpdate := run(func(_ *Mgr, y *Timer) { y.Update(5) })
	viaCancelSchedule := run(func(m *Mgr, y *Timer) {
		y.Cancel()
		if err := m.Schedule(5, y); err != nil {
			t.Fatal(err)
		}
	})
	want := []string{"x", "y"}
	for name, got := range map[string][]string{
		"Update":          viaUpdate,
		"Cancel+Schedule": viaCancelSchedule,
	} {
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("%s fired %v, want %v", name, got, want)
		}
	}
}

// PendingTimers (the checkpoint ordering) must be identical whether a tie
// was produced by Update or by Cancel+Schedule — WAL replay determinism
// depends on it.
func TestUpdatePendingOrderDeterministic(t *testing.T) {
	build := func(reschedule func(m *Mgr, y *Timer)) []Time {
		m := NewMgr()
		y := NewTimer(func() {})
		if err := m.Schedule(10, y); err != nil {
			t.Fatal(err)
		}
		x := NewTimer(func() {})
		if err := m.Schedule(5, x); err != nil {
			t.Fatal(err)
		}
		reschedule(m, y)
		var seqs []Time
		for _, tm := range m.PendingTimers() {
			seqs = append(seqs, tm.FireTime())
		}
		// Identify by position: x must sort before y.
		if m.PendingTimers()[0] != x || m.PendingTimers()[1] != y {
			t.Fatalf("tie order: updated timer sorted before earlier-scheduled timer")
		}
		return seqs
	}
	a := build(func(_ *Mgr, y *Timer) { y.Update(5) })
	b := build(func(m *Mgr, y *Timer) {
		y.Cancel()
		if err := m.Schedule(5, y); err != nil {
			t.Fatal(err)
		}
	})
	if len(a) != len(b) || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("pending order diverges: %v vs %v", a, b)
	}
}

// Regression: FireTime documents "zero when unscheduled" — it must be
// cleared by Cancel, by firing, and by Expire.
func TestFireTimeClearedWhenUnscheduled(t *testing.T) {
	m := NewMgr()

	tm := m.ScheduleFunc(100, func() {})
	tm.Cancel()
	if tm.FireTime() != 0 {
		t.Fatalf("FireTime after Cancel = %d", tm.FireTime())
	}

	var fireSeen Time = -1
	var fired *Timer
	fired = m.ScheduleFunc(50, func() { fireSeen = fired.FireTime() })
	m.Advance(50)
	if fired.FireTime() != 0 {
		t.Fatalf("FireTime after firing = %d", fired.FireTime())
	}
	if fireSeen != 0 {
		t.Fatalf("FireTime inside callback = %d (timer is unscheduled there)", fireSeen)
	}

	exp := m.ScheduleFunc(200, func() {})
	m.Expire(false)
	if exp.FireTime() != 0 {
		t.Fatalf("FireTime after Expire = %d", exp.FireTime())
	}

	// Cancelling a pendingFire timer (due inside an in-progress Advance)
	// also clears it.
	var victim *Timer
	m.ScheduleFunc(300, func() { victim.Cancel() })
	victim = m.ScheduleFunc(300, func() { t.Fatal("cancelled timer fired") })
	m.Advance(300)
	if victim.FireTime() != 0 {
		t.Fatalf("FireTime after pendingFire Cancel = %d", victim.FireTime())
	}
}

// ScheduleFunc surfaces the impossible double-schedule instead of
// swallowing it; a direct Schedule of an already-pending timer still
// reports the error to the caller.
func TestScheduleErrorSurfaced(t *testing.T) {
	m := NewMgr()
	tm := m.ScheduleFunc(10, func() {})
	if err := m.Schedule(20, tm); err == nil {
		t.Fatal("double Schedule accepted")
	}
}
