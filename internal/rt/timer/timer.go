// Package timer implements HILTI's timers and timer managers.
//
// A timer captures a closure to execute at a future point of time; a timer
// manager maintains an independent notion of time (paper §3.2, [43]) and
// fires due timers, in timestamp order, whenever its time is advanced.
// Network analysis drives timer managers from packet timestamps rather than
// the wall clock, so offline trace processing expires state exactly as live
// operation would.
//
// Containers with state management (package container) schedule their
// expiration through a timer manager, and host applications advance the
// global manager per input unit (e.g. per packet), as the paper's firewall
// example does with timer_mgr.advance_global.
package timer

import (
	"container/heap"
	"fmt"
	"sort"

	"hilti/internal/rt/metrics"
)

// Time is nanoseconds since the Unix epoch, HILTI's time resolution.
type Time int64

// Interval is a span in nanoseconds.
type Interval int64

// Seconds converts a float seconds quantity to an Interval.
func Seconds(s float64) Interval { return Interval(s * 1e9) }

// Timer is a scheduled closure. A timer belongs to at most one manager at a
// time; rescheduling through its manager updates it in place.
type Timer struct {
	fire  Time
	fn    func()
	mgr   *Mgr
	index int // heap index; -1 when not scheduled, pendingFire mid-Advance
	seq   uint64
}

// pendingFire marks a timer popped into an in-progress Advance's due set
// but not yet fired; Cancel and Update still act on it.
const pendingFire = -2

// NewTimer creates an unscheduled timer executing fn when it fires.
func NewTimer(fn func()) *Timer { return &Timer{fn: fn, index: -1} }

// Scheduled reports whether the timer is currently pending in a manager.
func (t *Timer) Scheduled() bool { return t.index >= 0 }

// FireTime returns the time the timer is due (zero when unscheduled).
func (t *Timer) FireTime() Time { return t.fire }

// Cancel removes the timer from its manager, if scheduled. Cancelling a
// timer that is due within an in-progress Advance prevents it from firing.
func (t *Timer) Cancel() {
	if t.mgr == nil {
		return
	}
	if t.index >= 0 {
		heap.Remove(&t.mgr.q, t.index)
		t.mgr = nil
		t.fire = 0
	} else if t.index == pendingFire {
		t.index = -1
		t.mgr = nil
		t.fire = 0
	}
}

// Update reschedules a pending timer to a new fire time (HILTI's
// timer.update); it is a no-op for unscheduled timers. Updating a timer
// that is due within an in-progress Advance pulls it out of the due set
// and re-queues it for the new time.
func (t *Timer) Update(at Time) {
	if t.mgr == nil {
		return
	}
	if t.index == pendingFire {
		m := t.mgr
		t.index = -1
		t.mgr = nil
		m.Schedule(at, t) //nolint:errcheck // just cleared to unscheduled
		return
	}
	if t.index < 0 {
		return
	}
	t.fire = at
	// Take a fresh sequence number, exactly as Cancel+Schedule would: ties
	// at the same fire time keep the documented "(time, scheduling) order",
	// and PendingTimers (hence checkpoint/replay ordering) stays
	// deterministic across the two equivalent rescheduling idioms.
	m := t.mgr
	m.seq++
	t.seq = m.seq
	heap.Fix(&m.q, t.index)
}

// Mgr is a timer manager: an independent notion of time plus a queue of
// pending timers. Managers are not safe for concurrent use; in HILTI each
// virtual thread owns its managers (package threads enforces this).
type Mgr struct {
	now Time
	q   timerQueue
	seq uint64

	// Met, when set, receives scheduling/firing counts. The counters are
	// atomic so several single-threaded managers (one per worker) can share
	// one set and a metrics scrape can read them from any goroutine. Set it
	// before the manager is used.
	Met *MgrMetrics
}

// MgrMetrics is the instrument set a timer manager reports into. Nil
// counter fields are valid (metrics.Counter is nil-safe).
type MgrMetrics struct {
	Scheduled *metrics.Counter // timers entered into a wheel
	Fired     *metrics.Counter // timers whose callback ran via Advance
	Expired   *metrics.Counter // timers drained by Expire at shutdown
}

// NewMgr creates a manager whose time starts at zero.
func NewMgr() *Mgr { return &Mgr{} }

// Now returns the manager's current time.
func (m *Mgr) Now() Time { return m.now }

// Pending returns the number of scheduled timers.
func (m *Mgr) Pending() int { return len(m.q) }

// Schedule adds t to the manager, due at time at. Timers scheduled at or
// before the manager's current time fire on the next Advance (HILTI
// semantics: scheduling never executes user code synchronously).
func (m *Mgr) Schedule(at Time, t *Timer) error {
	if t.index >= 0 || t.index == pendingFire {
		return fmt.Errorf("timer already scheduled")
	}
	t.fire = at
	t.mgr = m
	m.seq++
	t.seq = m.seq
	heap.Push(&m.q, t)
	if m.Met != nil {
		m.Met.Scheduled.Inc()
	}
	return nil
}

// ScheduleFunc is a convenience wrapper creating and scheduling a timer.
// Schedule can only fail on a double-schedule, which is impossible for the
// freshly created timer — any error here is an internal invariant breach,
// so it panics rather than being silently dropped.
func (m *Mgr) ScheduleFunc(at Time, fn func()) *Timer {
	t := NewTimer(fn)
	if err := m.Schedule(at, t); err != nil {
		panic(fmt.Sprintf("timer: ScheduleFunc: %v", err))
	}
	return t
}

// Advance moves the manager's time forward to now and fires all timers due
// at or before it, in (time, scheduling) order. Moving time backwards is a
// no-op for the clock but still returns without firing, matching HILTI's
// monotone timer_mgr.advance. It returns the number of timers fired.
func (m *Mgr) Advance(now Time) int {
	if now > m.now {
		m.now = now
	}
	// Snapshot the due set before running any callback: a callback that
	// schedules a timer at or before now must see it fire on the *next*
	// Advance (the documented contract), not re-enter this one.
	var due []*Timer
	for len(m.q) > 0 && m.q[0].fire <= m.now {
		t := heap.Pop(&m.q).(*Timer)
		t.index = pendingFire
		due = append(due, t)
	}
	fired := 0
	for _, t := range due {
		if t.index != pendingFire { // cancelled or updated by an earlier callback
			continue
		}
		t.index = -1
		t.mgr = nil
		t.fire = 0 // unscheduled: FireTime contract
		fired++
		t.fn()
	}
	if fired > 0 && m.Met != nil {
		m.Met.Fired.Add(uint64(fired))
	}
	return fired
}

// AdvanceBy moves time forward by an interval.
func (m *Mgr) AdvanceBy(d Interval) int { return m.Advance(m.now + Time(d)) }

// SetNow restores the manager's clock to a checkpointed value without
// firing any timers, unlike Advance. Restore code calls it before
// re-scheduling the checkpointed timer set so relative deadlines land at
// the same virtual times they held when the snapshot was taken.
func (m *Mgr) SetNow(now Time) { m.now = now }

// PendingTimers returns a copy of the scheduled timers in firing order
// (fire time, then scheduling order), for checkpointing. The heap itself
// is not modified.
func (m *Mgr) PendingTimers() []*Timer {
	out := make([]*Timer, len(m.q))
	copy(out, m.q)
	sort.Slice(out, func(i, j int) bool {
		if out[i].fire != out[j].fire {
			return out[i].fire < out[j].fire
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// Expire fires (or optionally discards) all pending timers regardless of
// their due time, as HILTI's timer_mgr.expire does at shutdown.
func (m *Mgr) Expire(execute bool) int {
	n := 0
	for len(m.q) > 0 {
		t := heap.Pop(&m.q).(*Timer)
		t.mgr = nil
		t.fire = 0
		n++
		if execute {
			t.fn()
		}
	}
	if n > 0 && m.Met != nil {
		m.Met.Expired.Add(uint64(n))
	}
	return n
}

// TypeName implements the runtime Object interface by name convention.
func (m *Mgr) TypeName() string { return "timer_mgr" }

// TypeName implements the runtime Object interface by name convention.
func (t *Timer) TypeName() string { return "timer" }

// timerQueue is a binary min-heap over (fire time, sequence).
type timerQueue []*Timer

func (q timerQueue) Len() int { return len(q) }

func (q timerQueue) Less(i, j int) bool {
	if q[i].fire != q[j].fire {
		return q[i].fire < q[j].fire
	}
	return q[i].seq < q[j].seq
}

func (q timerQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *timerQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *timerQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}
