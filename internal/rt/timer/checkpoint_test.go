package timer

import (
	"testing"
)

// checkpointMgr captures the serializable view of a manager — its clock
// and the (fire time, payload-id) list — and rebuilds a fresh manager
// from it, the way engine restore does. Timer closures themselves cannot
// be serialized; restore code re-creates them from the guarded state, so
// the round trip here re-schedules fresh closures at the checkpointed
// times, labeled by idOf so firing order is comparable across managers.
func checkpointMgr(m *Mgr, idOf func(*Timer) int, record func(id int)) *Mgr {
	restored := NewMgr()
	restored.SetNow(m.Now())
	for _, t := range m.PendingTimers() {
		id := idOf(t)
		restored.ScheduleFunc(t.FireTime(), func() { record(id) })
	}
	return restored
}

// TestCheckpointRoundTrip verifies that timers scheduled before a
// checkpoint fire at the same virtual times, in the same order, after
// restore into a fresh manager.
func TestCheckpointRoundTrip(t *testing.T) {
	m := NewMgr()
	m.Advance(1000)

	var origOrder []int
	ids := map[*Timer]int{}
	mk := func(id int) func() {
		return func() { origOrder = append(origOrder, id) }
	}
	ids[m.ScheduleFunc(1500, mk(0))] = 0
	ids[m.ScheduleFunc(1200, mk(1))] = 1
	ids[m.ScheduleFunc(1200, mk(2))] = 2 // same deadline: scheduling order must hold
	ids[m.ScheduleFunc(5000, mk(3))] = 3

	var restoredOrder []int
	r := checkpointMgr(m, func(t *Timer) int { return ids[t] },
		func(id int) { restoredOrder = append(restoredOrder, id) })
	if r.Now() != 1000 {
		t.Fatalf("clock not restored: %d", r.Now())
	}
	if r.Pending() != 4 {
		t.Fatalf("pending not restored: %d", r.Pending())
	}

	// Both managers advance through the same virtual times.
	for _, now := range []Time{1199, 1200, 1500, 4999, 5000} {
		of := m.Advance(now)
		rf := r.Advance(now)
		if of != rf {
			t.Fatalf("at t=%d original fired %d, restored fired %d", now, of, rf)
		}
	}
	if len(origOrder) != 4 || len(restoredOrder) != 4 {
		t.Fatalf("fired %d/%d timers", len(origOrder), len(restoredOrder))
	}
	for i := range origOrder {
		if origOrder[i] != restoredOrder[i] {
			t.Fatalf("firing order diverged: %v vs %v", origOrder, restoredOrder)
		}
	}
}

// TestCheckpointOverdueTimers covers timers that "wrapped the wheel":
// deadlines at or before the checkpointed clock (e.g. armed and then the
// clock caught up without an Advance through them yet). They must fire on
// the first Advance after restore, exactly as they would have originally.
func TestCheckpointOverdueTimers(t *testing.T) {
	m := NewMgr()
	m.ScheduleFunc(500, func() {})
	m.ScheduleFunc(900, func() {})
	// Move the clock past both deadlines without firing: SetNow models a
	// restore path, so the timers are now "overdue" relative to the clock.
	m.SetNow(1000)

	fired := 0
	r := checkpointMgr(m, func(*Timer) int { return 0 }, func(int) { fired++ })
	if r.Pending() != 2 {
		t.Fatalf("pending not restored: %d", r.Pending())
	}
	// Advance that does not move time still fires everything due.
	if n := r.Advance(1000); n != 2 {
		t.Fatalf("overdue timers fired %d, want 2", n)
	}
	if fired != 2 {
		t.Fatalf("callbacks ran %d times", fired)
	}
}

func TestSetNowDoesNotFire(t *testing.T) {
	m := NewMgr()
	fired := false
	m.ScheduleFunc(100, func() { fired = true })
	m.SetNow(5000)
	if fired {
		t.Fatal("SetNow must not execute timers")
	}
	if m.Pending() != 1 {
		t.Fatal("SetNow must not drop timers")
	}
	if m.Now() != 5000 {
		t.Fatalf("clock: %d", m.Now())
	}
}

func TestPendingTimersSortedAndNonDestructive(t *testing.T) {
	m := NewMgr()
	m.ScheduleFunc(300, func() {})
	m.ScheduleFunc(100, func() {})
	m.ScheduleFunc(200, func() {})
	m.ScheduleFunc(100, func() {}) // ties break by scheduling order

	ts := m.PendingTimers()
	if len(ts) != 4 {
		t.Fatalf("got %d timers", len(ts))
	}
	want := []Time{100, 100, 200, 300}
	for i, tm := range ts {
		if tm.FireTime() != want[i] {
			t.Fatalf("timer %d at %d, want %d", i, tm.FireTime(), want[i])
		}
	}
	if ts[0].FireTime() != 100 || ts[1].FireTime() != 100 {
		t.Fatal("tie order")
	}
	if m.Pending() != 4 {
		t.Fatal("PendingTimers must not modify the queue")
	}
	// The heap must still function after the snapshot.
	if n := m.Advance(300); n != 4 {
		t.Fatalf("advance fired %d", n)
	}
}
