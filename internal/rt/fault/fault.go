// Package fault implements the runtime's fault-containment primitives.
//
// The paper's central safety claim (§3) is that HILTI programs cannot crash
// the host: illegal operations turn into catchable exceptions and the
// runtime keeps processing under arbitrary input. Inside the VM that job is
// done by the exception machinery; this package extends the same guarantee
// to the Go layers around it — analyzers, hooks, and host glue — by
// converting panics at well-defined boundaries (per-packet work, event
// dispatch, shutdown flushes) into structured Fault values carrying the
// operation, the offending flow, and the goroutine stack. Callers record
// the fault, quarantine the flow it came from, and keep every other flow
// processing.
package fault

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Fault is one contained panic: what was being executed, on whose behalf,
// and the stack at the point of failure.
type Fault struct {
	Op     string // boundary that contained the fault, e.g. "packet", "event:http_request"
	Worker int    // hardware worker index (-1 when not pipeline-hosted)
	VID    uint64 // virtual-thread / flow-hash ID of the offending flow (0 when unknown)
	TsNs   int64  // packet timestamp being processed, when applicable
	Value  any    // the recovered panic value
	Stack  []byte // goroutine stack captured inside the recover
}

// Error renders the fault without the stack; use String for the full dump.
func (f *Fault) Error() string {
	return fmt.Sprintf("fault in %s (worker %d, vid %#x): %v", f.Op, f.Worker, f.VID, f.Value)
}

// String includes the captured stack.
func (f *Fault) String() string {
	return f.Error() + "\n" + string(f.Stack)
}

// Catch runs fn and converts a panic into a *Fault (nil when fn returns
// normally). It is the recover() boundary the pipeline and engine wrap
// around per-packet work: the contained goroutine keeps running, only the
// faulting unit of work is lost.
func Catch(op string, fn func()) (f *Fault) {
	defer func() {
		if r := recover(); r != nil {
			// If a contained layer below already structured the panic,
			// keep its context and only note the outer boundary.
			if inner, ok := r.(*Fault); ok {
				f = inner
				return
			}
			f = &Fault{Op: op, Worker: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// Recorder accumulates contained faults: a total count plus a bounded ring
// of the most recent faults for diagnosis. It is safe for concurrent use —
// pipeline workers record faults independently.
type Recorder struct {
	mu    sync.Mutex
	ring  []*Fault
	next  int
	max   int
	count atomic.Uint64
}

// NewRecorder creates a recorder retaining the last max faults (default 16).
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = 16
	}
	return &Recorder{max: max}
}

// Record stores f and bumps the total count.
func (r *Recorder) Record(f *Fault) {
	if f == nil {
		return
	}
	r.count.Add(1)
	r.mu.Lock()
	if len(r.ring) < r.max {
		r.ring = append(r.ring, f)
	} else {
		r.ring[r.next] = f
		r.next = (r.next + 1) % r.max
	}
	r.mu.Unlock()
}

// Count returns the total number of faults recorded.
func (r *Recorder) Count() uint64 { return r.count.Load() }

// Faults snapshots the retained ring, oldest first.
func (r *Recorder) Faults() []*Fault {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Fault, 0, len(r.ring))
	if len(r.ring) == r.max {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out
}
