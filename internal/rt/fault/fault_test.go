package fault

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCatchNilOnSuccess(t *testing.T) {
	if f := Catch("ok", func() {}); f != nil {
		t.Fatalf("unexpected fault: %v", f)
	}
}

func TestCatchConvertsPanic(t *testing.T) {
	f := Catch("packet", func() { panic("boom") })
	if f == nil {
		t.Fatal("expected a fault")
	}
	if f.Op != "packet" || f.Value != "boom" {
		t.Fatalf("fault = %+v", f)
	}
	if !strings.Contains(string(f.Stack), "goroutine") {
		t.Fatalf("stack not captured: %q", f.Stack)
	}
	if !strings.Contains(f.Error(), "boom") {
		t.Fatalf("Error() = %q", f.Error())
	}
}

func TestCatchPreservesInnerFault(t *testing.T) {
	inner := &Fault{Op: "event:http_request", Value: "bad script"}
	f := Catch("packet", func() { panic(inner) })
	if f != inner {
		t.Fatalf("inner fault not preserved: %+v", f)
	}
}

func TestRecorderRingAndCount(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(&Fault{Op: fmt.Sprintf("op%d", i)})
	}
	if r.Count() != 10 {
		t.Fatalf("count = %d", r.Count())
	}
	fs := r.Faults()
	if len(fs) != 4 {
		t.Fatalf("ring len = %d", len(fs))
	}
	// Oldest-first of the last four.
	for i, f := range fs {
		if want := fmt.Sprintf("op%d", 6+i); f.Op != want {
			t.Fatalf("ring[%d] = %q, want %q", i, f.Op, want)
		}
	}
	r.Record(nil) // no-op
	if r.Count() != 10 {
		t.Fatalf("nil record counted")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record(Catch("stress", func() { panic(j) }))
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Fatalf("count = %d", r.Count())
	}
}
