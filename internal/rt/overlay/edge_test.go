package overlay

import (
	"strings"
	"testing"

	"hilti/internal/rt/hbytes"
	"hilti/internal/rt/values"
)

// Edge cases: degenerate field shapes, malformed definitions, and the rope
// path under chunk splits and truncation. Packet buffers come from the
// wire, so every one of these is reachable from hostile input.

func TestNegativeOffsetRejected(t *testing.T) {
	o := New("t", Field{Name: "f", Offset: -1, Format: UInt8})
	if _, err := o.GetRaw([]byte{1, 2, 3}, "f"); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestZeroLengthBytesN(t *testing.T) {
	o := New("t", Field{Name: "empty", Offset: 4, Format: BytesN, Length: 0})
	data := []byte{1, 2, 3, 4}
	// Offset == len(data) with size 0 is a valid empty slice, not OOB.
	v, err := o.GetRaw(data, "empty")
	if err != nil {
		t.Fatalf("zero-length field at buffer end: %v", err)
	}
	if v.AsBytes().Len() != 0 {
		t.Fatalf("want empty bytes, got %d", v.AsBytes().Len())
	}
	// One past the end is out of bounds even for size 0.
	past := New("t", Field{Name: "f", Offset: 5, Format: BytesN, Length: 0})
	if _, err := past.GetRaw(data, "f"); err == nil {
		t.Fatal("offset past end accepted")
	}
}

func TestBytesNTruncatedBuffer(t *testing.T) {
	o := New("t", Field{Name: "f", Offset: 0, Format: BytesN, Length: 8})
	_, err := o.GetRaw([]byte{1, 2, 3, 4}, "f")
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("short buffer: %v", err)
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	o := New("t", Field{Name: "f", Offset: 0, Format: Format(99)})
	_, err := o.GetRaw([]byte{1, 2, 3, 4}, "f")
	if err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("unknown format: %v", err)
	}
}

func TestEmptyOverlay(t *testing.T) {
	o := New("empty")
	if o.Index("anything") != -1 {
		t.Fatal("index in empty overlay")
	}
	if _, err := o.GetRaw([]byte{1}, "anything"); err == nil {
		t.Fatal("field lookup in empty overlay succeeded")
	}
}

func TestUInt8BitsFullByte(t *testing.T) {
	o := New("t", Field{Name: "all", Offset: 0, Format: UInt8Bits, BitLo: 0, BitHi: 7})
	v, err := o.GetRaw([]byte{0xA5}, "all")
	if err != nil || v.AsInt() != 0xA5 {
		t.Fatalf("full-byte bit range = %v, %v", v, err)
	}
	one := New("t", Field{Name: "b7", Offset: 0, Format: UInt8Bits, BitLo: 7, BitHi: 7})
	v, err = one.GetRaw([]byte{0x80}, "b7")
	if err != nil || v.AsInt() != 1 {
		t.Fatalf("single-bit range = %v, %v", v, err)
	}
}

func TestRopeBitFieldAcrossChunks(t *testing.T) {
	pkt := sampleIPv4()
	// Chunk the header byte-by-byte: every multi-byte field crosses chunks.
	b := hbytes.New()
	for i := range pkt {
		b.Append(pkt[i : i+1])
	}
	b.Freeze()
	for field, want := range map[string]string{
		"version": "4", "hdr_len": "5", "len": "84",
		"src": "10.0.0.1", "dst": "192.168.1.1",
	} {
		v, err := IPv4Header.Get(b, field)
		if err != nil {
			t.Fatalf("%s: %v", field, err)
		}
		if got := values.Format(v); got != want {
			t.Errorf("%s = %q, want %q", field, got, want)
		}
	}
}

func TestRopeIPv6AcrossChunks(t *testing.T) {
	o := New("t", Field{Name: "a", Offset: 2, Format: IPv6})
	raw := make([]byte, 18)
	raw[2], raw[3] = 0x20, 0x01
	raw[17] = 1
	b := hbytes.New()
	b.Append(raw[:10]) // split mid-address
	b.Append(raw[10:])
	b.Freeze()
	v, err := o.Get(b, "a")
	if err != nil || values.Format(v) != "2001::1" {
		t.Fatalf("got %s, %v", values.Format(v), err)
	}
}

func TestRopeTruncatedAndUnknownField(t *testing.T) {
	b := hbytes.New()
	b.Append(sampleIPv4()[:8]) // too short for dst at offset 16
	b.Freeze()
	if _, err := IPv4Header.Get(b, "dst"); err == nil {
		t.Fatal("truncated rope accepted")
	}
	if _, err := IPv4Header.Get(b, "nope"); err == nil {
		t.Fatal("unknown field accepted on rope path")
	}
}

func TestTypeNameAndIndexStability(t *testing.T) {
	if IPv4Header.TypeName() != "overlay" {
		t.Fatalf("TypeName = %q", IPv4Header.TypeName())
	}
	// Index must agree with positional GetIdx.
	i := IPv4Header.Index("proto")
	if i < 0 {
		t.Fatal("proto field missing")
	}
	v, err := IPv4Header.GetIdx(sampleIPv4(), i)
	if err != nil || v.AsInt() != 6 {
		t.Fatalf("GetIdx(proto) = %v, %v", v, err)
	}
}
