package overlay

import (
	"strings"
	"testing"

	"hilti/internal/rt/hbytes"
	"hilti/internal/rt/values"
)

// sampleIPv4 is a 20-byte IPv4 header: 10.0.0.1 -> 192.168.1.1, proto TCP.
func sampleIPv4() []byte {
	return []byte{
		0x45, 0x00, 0x00, 0x54, // version 4, IHL 5, TOS 0, len 84
		0x12, 0x34, 0x40, 0x00, // id, flags/frag
		0x40, 0x06, 0xbe, 0xef, // ttl 64, proto 6, checksum
		10, 0, 0, 1, // src
		192, 168, 1, 1, // dst
	}
}

func TestIPv4HeaderFields(t *testing.T) {
	pkt := sampleIPv4()
	cases := []struct {
		field string
		want  string
	}{
		{"version", "4"},
		{"hdr_len", "5"},
		{"len", "84"},
		{"ttl", "64"},
		{"proto", "6"},
		{"src", "10.0.0.1"},
		{"dst", "192.168.1.1"},
	}
	for _, tc := range cases {
		v, err := IPv4Header.GetRaw(pkt, tc.field)
		if err != nil {
			t.Fatalf("%s: %v", tc.field, err)
		}
		if got := values.Format(v); got != tc.want {
			t.Errorf("%s = %q, want %q", tc.field, got, tc.want)
		}
	}
}

func TestGetFromRope(t *testing.T) {
	pkt := sampleIPv4()
	// Split the header across chunks to exercise rope extraction.
	b := hbytes.New()
	b.Append(pkt[:13])
	b.Append(pkt[13:])
	b.Freeze()
	v, err := IPv4Header.Get(b, "src")
	if err != nil {
		t.Fatal(err)
	}
	if values.Format(v) != "10.0.0.1" {
		t.Fatalf("src = %s", values.Format(v))
	}
}

func TestBoundsChecked(t *testing.T) {
	short := sampleIPv4()[:10]
	if _, err := IPv4Header.GetRaw(short, "dst"); err == nil {
		t.Fatal("out-of-bounds read not caught")
	}
	if !strings.Contains(func() string {
		_, err := IPv4Header.GetRaw(short, "dst")
		return err.Error()
	}(), "out of bounds") {
		t.Fatal("error should mention bounds")
	}
}

func TestUnknownField(t *testing.T) {
	if _, err := IPv4Header.GetRaw(sampleIPv4(), "nope"); err == nil {
		t.Fatal("unknown field accepted")
	}
	if IPv4Header.Index("nope") != -1 {
		t.Fatal("index for unknown field")
	}
}

func TestEndianFormats(t *testing.T) {
	o := New("t",
		Field{Name: "be16", Offset: 0, Format: UInt16BE},
		Field{Name: "le16", Offset: 0, Format: UInt16LE},
		Field{Name: "be32", Offset: 0, Format: UInt32BE},
		Field{Name: "le32", Offset: 0, Format: UInt32LE},
	)
	data := []byte{0x01, 0x02, 0x03, 0x04}
	checks := map[string]int64{
		"be16": 0x0102, "le16": 0x0201,
		"be32": 0x01020304, "le32": 0x04030201,
	}
	for f, want := range checks {
		v, err := o.GetRaw(data, f)
		if err != nil || v.AsInt() != want {
			t.Errorf("%s = %v (%v), want %#x", f, v.AsInt(), err, want)
		}
	}
}

func TestBitRanges(t *testing.T) {
	o := New("t",
		Field{Name: "hi", Offset: 0, Format: UInt8Bits, BitLo: 4, BitHi: 7},
		Field{Name: "lo", Offset: 0, Format: UInt8Bits, BitLo: 0, BitHi: 3},
		Field{Name: "mid", Offset: 0, Format: UInt8Bits, BitLo: 2, BitHi: 5},
	)
	data := []byte{0b1011_0110}
	for f, want := range map[string]int64{"hi": 0b1011, "lo": 0b0110, "mid": 0b1101} {
		v, err := o.GetRaw(data, f)
		if err != nil || v.AsInt() != want {
			t.Errorf("%s = %v, want %v", f, v.AsInt(), want)
		}
	}
}

func TestPortAndBytesFormats(t *testing.T) {
	o := New("t",
		Field{Name: "sport", Offset: 0, Format: PortTCP},
		Field{Name: "dport", Offset: 2, Format: PortUDP},
		Field{Name: "raw", Offset: 0, Format: BytesN, Length: 4},
	)
	data := []byte{0x00, 0x50, 0x00, 0x35}
	v, _ := o.GetRaw(data, "sport")
	if values.Format(v) != "80/tcp" {
		t.Errorf("sport = %s", values.Format(v))
	}
	v, _ = o.GetRaw(data, "dport")
	if values.Format(v) != "53/udp" {
		t.Errorf("dport = %s", values.Format(v))
	}
	v, _ = o.GetRaw(data, "raw")
	if v.AsBytes().Len() != 4 {
		t.Errorf("raw len = %d", v.AsBytes().Len())
	}
}

func TestIPv6Format(t *testing.T) {
	o := New("t", Field{Name: "a", Offset: 0, Format: IPv6})
	data := make([]byte, 16)
	data[0], data[1] = 0x20, 0x01
	data[15] = 1
	v, err := o.GetRaw(data, "a")
	if err != nil || values.Format(v) != "2001::1" {
		t.Fatalf("got %s, %v", values.Format(v), err)
	}
}

func BenchmarkOverlayGetAddr(b *testing.B) {
	pkt := sampleIPv4()
	i := IPv4Header.Index("src")
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		IPv4Header.GetIdx(pkt, i)
	}
}
