// Package overlay implements HILTI's overlay type: user-definable composite
// types that describe the layout of a binary structure in wire format and
// provide transparent, type-safe access to its fields, accounting for
// endianness and sub-byte bit ranges (paper §4, "Berkeley Packet Filter").
//
// An overlay definition lists fields with byte offsets and unpack formats;
// Get extracts one field from a raw byte buffer, bounds-checked, without
// copying or pre-parsing the rest — the generated BPF-filter code in the
// paper's Figure 4 reads exactly two such fields per packet.
package overlay

import (
	"fmt"

	"hilti/internal/rt/hbytes"
	"hilti/internal/rt/values"
)

// Format identifies an unpack format for a field.
type Format int

// Unpack formats. The *Bits variants extract an inclusive bit range
// [BitLo, BitHi] (LSB = bit 0) after loading the underlying integer.
const (
	UInt8 Format = iota
	UInt8Bits
	UInt16BE
	UInt16LE
	UInt32BE
	UInt32LE
	IPv4    // 4-byte network-order IPv4 address -> addr
	IPv6    // 16-byte IPv6 address -> addr
	BytesN  // Length raw bytes -> bytes
	PortTCP // 2-byte network-order port -> port/tcp
	PortUDP // 2-byte network-order port -> port/udp
)

// Field describes one overlay field.
type Field struct {
	Name   string
	Offset int
	Format Format
	BitLo  int // for *Bits formats
	BitHi  int
	Length int // for BytesN
}

// Overlay is an overlay type definition.
type Overlay struct {
	Name   string
	Fields []Field
	byName map[string]int
}

// New builds an overlay definition.
func New(name string, fields ...Field) *Overlay {
	o := &Overlay{Name: name, Fields: fields, byName: map[string]int{}}
	for i, f := range fields {
		o.byName[f.Name] = i
	}
	return o
}

// TypeName implements the runtime Object interface.
func (o *Overlay) TypeName() string { return "overlay" }

// Index returns the positional index of a field, or -1.
func (o *Overlay) Index(name string) int {
	if i, ok := o.byName[name]; ok {
		return i
	}
	return -1
}

// size returns the number of bytes field f needs.
func (f *Field) size() int {
	switch f.Format {
	case UInt8, UInt8Bits:
		return 1
	case UInt16BE, UInt16LE, PortTCP, PortUDP:
		return 2
	case UInt32BE, UInt32LE, IPv4:
		return 4
	case IPv6:
		return 16
	case BytesN:
		return f.Length
	default:
		return 0
	}
}

// GetRaw extracts the named field from a contiguous packet buffer.
func (o *Overlay) GetRaw(data []byte, name string) (values.Value, error) {
	i := o.Index(name)
	if i < 0 {
		return values.Nil, fmt.Errorf("overlay %s: no field %q", o.Name, name)
	}
	return o.GetIdx(data, i)
}

// GetIdx extracts field i from a contiguous packet buffer, bounds-checked.
func (o *Overlay) GetIdx(data []byte, i int) (values.Value, error) {
	f := &o.Fields[i]
	end := f.Offset + f.size()
	if f.Offset < 0 || end > len(data) {
		return values.Nil, fmt.Errorf("overlay %s.%s: out of bounds (need %d bytes, have %d)",
			o.Name, f.Name, end, len(data))
	}
	d := data[f.Offset:end]
	switch f.Format {
	case UInt8:
		return values.Int(int64(d[0])), nil
	case UInt8Bits:
		v := uint64(d[0])
		width := f.BitHi - f.BitLo + 1
		v = (v >> uint(f.BitLo)) & ((1 << uint(width)) - 1)
		return values.Uint(v), nil
	case UInt16BE:
		return values.Uint(uint64(d[0])<<8 | uint64(d[1])), nil
	case UInt16LE:
		return values.Uint(uint64(d[1])<<8 | uint64(d[0])), nil
	case UInt32BE:
		return values.Uint(uint64(d[0])<<24 | uint64(d[1])<<16 | uint64(d[2])<<8 | uint64(d[3])), nil
	case UInt32LE:
		return values.Uint(uint64(d[3])<<24 | uint64(d[2])<<16 | uint64(d[1])<<8 | uint64(d[0])), nil
	case IPv4:
		return values.AddrFrom4([4]byte{d[0], d[1], d[2], d[3]}), nil
	case IPv6:
		var a [16]byte
		copy(a[:], d)
		return values.AddrFrom16(a), nil
	case PortTCP:
		return values.PortVal(uint16(d[0])<<8|uint16(d[1]), values.ProtoTCP), nil
	case PortUDP:
		return values.PortVal(uint16(d[0])<<8|uint16(d[1]), values.ProtoUDP), nil
	case BytesN:
		return values.BytesFrom(d), nil
	default:
		return values.Nil, fmt.Errorf("overlay %s.%s: unknown format", o.Name, f.Name)
	}
}

// Get extracts the named field from a byte rope (HILTI's overlay.get over a
// ref<bytes> packet).
func (o *Overlay) Get(b *hbytes.Bytes, name string) (values.Value, error) {
	i := o.Index(name)
	if i < 0 {
		return values.Nil, fmt.Errorf("overlay %s: no field %q", o.Name, name)
	}
	f := &o.Fields[i]
	raw, err := b.Sub(b.At(int64(f.Offset)), b.At(int64(f.Offset+f.size())))
	if err != nil {
		return values.Nil, fmt.Errorf("overlay %s.%s: %w", o.Name, f.Name, err)
	}
	tmp := o.Fields[i]
	tmp.Offset = 0
	shadow := Overlay{Name: o.Name, Fields: []Field{tmp}, byName: map[string]int{name: 0}}
	return shadow.GetIdx(raw, 0)
}

// IPv4Header is the standard IPv4 header overlay used by the BPF exemplar
// (paper Figure 4).
var IPv4Header = New("IP::Header",
	Field{Name: "version", Offset: 0, Format: UInt8Bits, BitLo: 4, BitHi: 7},
	Field{Name: "hdr_len", Offset: 0, Format: UInt8Bits, BitLo: 0, BitHi: 3},
	Field{Name: "tos", Offset: 1, Format: UInt8},
	Field{Name: "len", Offset: 2, Format: UInt16BE},
	Field{Name: "id", Offset: 4, Format: UInt16BE},
	Field{Name: "frag", Offset: 6, Format: UInt16BE},
	Field{Name: "ttl", Offset: 8, Format: UInt8},
	Field{Name: "proto", Offset: 9, Format: UInt8},
	Field{Name: "chksum", Offset: 10, Format: UInt16BE},
	Field{Name: "src", Offset: 12, Format: IPv4},
	Field{Name: "dst", Offset: 16, Format: IPv4},
)
