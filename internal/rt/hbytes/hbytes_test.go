package hbytes

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAppendAndBytes(t *testing.T) {
	b := New()
	if err := b.Append([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := b.Append([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "hello world" {
		t.Fatalf("got %q", got)
	}
	if b.Len() != 11 {
		t.Fatalf("len = %d", b.Len())
	}
}

func TestAppendCopies(t *testing.T) {
	src := []byte("abc")
	b := New()
	b.Append(src)
	src[0] = 'X'
	if got := b.String(); got != "abc" {
		t.Fatalf("append did not copy: %q", got)
	}
}

func TestFreeze(t *testing.T) {
	b := NewFromString("x")
	b.Freeze()
	if err := b.Append([]byte("y")); !errors.Is(err, ErrFrozen) {
		t.Fatalf("want ErrFrozen, got %v", err)
	}
	b.Unfreeze()
	if err := b.Append([]byte("y")); err != nil {
		t.Fatalf("append after unfreeze: %v", err)
	}
}

func TestByteAtWouldBlock(t *testing.T) {
	b := NewFromString("ab")
	if _, err := b.ByteAt(5); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("want ErrWouldBlock, got %v", err)
	}
	b.Freeze()
	if _, err := b.ByteAt(5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange after freeze, got %v", err)
	}
	c, err := b.ByteAt(1)
	if err != nil || c != 'b' {
		t.Fatalf("ByteAt(1) = %c, %v", c, err)
	}
}

func TestIterSurvivesAppend(t *testing.T) {
	b := NewFromString("ab")
	it := b.Begin().Plus(2)
	if _, err := it.Deref(); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("want would-block at end, got %v", err)
	}
	b.Append([]byte("cd"))
	c, err := it.Deref()
	if err != nil || c != 'c' {
		t.Fatalf("after append Deref = %c, %v", c, err)
	}
}

func TestEndIteratorMoves(t *testing.T) {
	b := NewFromString("ab")
	end := b.End()
	if d := b.Begin().Diff(end); d != 2 {
		t.Fatalf("diff = %d", d)
	}
	b.Append([]byte("cd"))
	if d := b.Begin().Diff(end); d != 4 {
		t.Fatalf("end iterator did not move: diff = %d", d)
	}
}

func TestTrim(t *testing.T) {
	b := New()
	b.Append([]byte("aaaa"))
	b.Append([]byte("bbbb"))
	b.Append([]byte("cccc"))
	it := b.Begin().Plus(6)
	b.Trim(it)
	if got := b.String(); got != "bbcccc" {
		t.Fatalf("after trim: %q", got)
	}
	// Absolute offsets unchanged: offset 6 is still 'b'.
	c, err := b.ByteAt(6)
	if err != nil || c != 'b' {
		t.Fatalf("ByteAt(6) after trim = %c, %v", c, err)
	}
	if _, err := b.ByteAt(2); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("trimmed byte should be out of range, got %v", err)
	}
}

func TestSub(t *testing.T) {
	b := New()
	b.Append([]byte("GET "))
	b.Append([]byte("/index.html"))
	b.Append([]byte(" HTTP/1.1"))
	got, err := b.Sub(b.At(4), b.At(15))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "/index.html" {
		t.Fatalf("sub = %q", got)
	}
	if _, err := b.Sub(b.At(4), b.At(100)); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("want would-block, got %v", err)
	}
	if _, err := b.Sub(b.At(10), b.At(4)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want out-of-range, got %v", err)
	}
}

func TestFindAcrossChunks(t *testing.T) {
	b := New()
	b.Append([]byte("abc\r"))
	b.Append([]byte("\ndef"))
	it, found, err := b.Find([]byte("\r\n"), b.Begin())
	if err != nil || !found {
		t.Fatalf("find: %v %v", found, err)
	}
	if it.Offset() != 3 {
		t.Fatalf("offset = %d", it.Offset())
	}
	// Absent needle on unfrozen rope: would-block.
	if _, _, err := b.Find([]byte("zzz"), b.Begin()); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("want would-block, got %v", err)
	}
	b.Freeze()
	_, found, err = b.Find([]byte("zzz"), b.Begin())
	if err != nil || found {
		t.Fatalf("frozen find: %v %v", found, err)
	}
}

func TestIterCmpAndDiff(t *testing.T) {
	b := NewFromString("0123456789")
	a, c := b.At(2), b.At(7)
	if a.Cmp(c) != -1 || c.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp broken")
	}
	if a.Diff(c) != 5 {
		t.Fatalf("Diff = %d", a.Diff(c))
	}
}

func TestEqualCompareCopy(t *testing.T) {
	a := New()
	a.Append([]byte("ab"))
	a.Append([]byte("cd"))
	b := NewFromString("abcd")
	if !a.Equal(b) {
		t.Fatal("chunked != flat")
	}
	if a.Compare(NewFromString("abce")) >= 0 {
		t.Fatal("compare ordering")
	}
	cp := a.Copy()
	a.Append([]byte("!"))
	if cp.Len() != 4 {
		t.Fatal("copy not independent")
	}
}

// Property: chunked construction is equivalent to flat construction for
// Bytes/Len/ByteAt/Sub, regardless of how the data is split into chunks.
func TestQuickChunkingEquivalence(t *testing.T) {
	f := func(data []byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New()
		rest := data
		for len(rest) > 0 {
			n := 1 + rng.Intn(len(rest))
			b.Append(rest[:n])
			rest = rest[n:]
		}
		b.Freeze()
		if !bytes.Equal(b.Bytes(), data) {
			return false
		}
		if b.Len() != int64(len(data)) {
			return false
		}
		for i := range data {
			c, err := b.ByteAt(int64(i))
			if err != nil || c != data[i] {
				return false
			}
		}
		if len(data) >= 2 {
			lo := rng.Intn(len(data))
			hi := lo + rng.Intn(len(data)-lo)
			sub, err := b.Sub(b.At(int64(lo)), b.At(int64(hi)))
			if err != nil || !bytes.Equal(sub, data[lo:hi]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Find agrees with bytes.Index on the flattened content.
func TestQuickFindEquivalence(t *testing.T) {
	f := func(data []byte, needle []byte) bool {
		if len(needle) == 0 {
			return true
		}
		b := New()
		for i := 0; i < len(data); i += 3 {
			j := i + 3
			if j > len(data) {
				j = len(data)
			}
			b.Append(data[i:j])
		}
		b.Freeze()
		it, found, err := b.Find(needle, b.Begin())
		if err != nil {
			return false
		}
		want := bytes.Index(data, needle)
		if want < 0 {
			return !found
		}
		return found && it.Offset() == int64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendSmallChunks(b *testing.B) {
	data := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := New()
		for j := 0; j < 16; j++ {
			r.AppendOwned(data)
		}
	}
}

func BenchmarkByteAtSequential(b *testing.B) {
	r := New()
	for j := 0; j < 64; j++ {
		r.Append(make([]byte, 256))
	}
	r.Freeze()
	n := r.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ByteAt(int64(i) % n)
	}
}
