// Package hbytes implements HILTI's "bytes" data type: an append-only,
// chunked byte rope designed for incremental network input.
//
// A Bytes value accumulates raw data as it arrives from the wire, one chunk
// per append, without copying previously stored data. Iterators address
// positions by absolute stream offset and therefore remain valid across
// appends and across trims of already-consumed data. A Bytes value can be
// frozen to signal that no further data will arrive; parsing code uses the
// distinction between "at the current end of a non-frozen value" and "at the
// end of a frozen value" to decide whether to suspend for more input or to
// report a premature end of data.
//
// This is the substrate for HILTI's incremental, suspendable parsing model
// (paper §3.2): BinPAC++-generated parsers walk a Bytes value with iterators
// and yield their fiber whenever they reach unfrozen end-of-data.
package hbytes

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
)

// ErrWouldBlock is reported when an operation needs data beyond the current
// end of a non-frozen Bytes value. Callers (typically generated parsers)
// react by suspending until more input has been appended.
var ErrWouldBlock = errors.New("bytes: would block (need more input)")

// ErrFrozen is reported when appending to a frozen Bytes value.
var ErrFrozen = errors.New("bytes: frozen")

// ErrOutOfRange is reported when an iterator is moved or dereferenced
// outside the valid data range.
var ErrOutOfRange = errors.New("bytes: iterator out of range")

type chunk struct {
	off  int64 // absolute stream offset of data[0]
	data []byte
}

// Bytes is a chunked byte rope. The zero value is an empty, unfrozen rope;
// New and NewFrom are the usual constructors.
type Bytes struct {
	chunks []chunk
	base   int64 // absolute offset of the first retained byte
	end    int64 // absolute offset one past the last byte
	frozen bool
}

// New returns a new empty Bytes value.
func New() *Bytes { return &Bytes{} }

// NewFrom returns a new Bytes value holding a copy of data.
func NewFrom(data []byte) *Bytes {
	b := New()
	b.Append(data)
	return b
}

// NewFromString returns a new Bytes value holding the bytes of s.
func NewFromString(s string) *Bytes { return NewFrom([]byte(s)) }

// Append adds a copy of data to the end of the rope. Appending to a frozen
// value returns ErrFrozen. Appending an empty slice is a no-op.
func (b *Bytes) Append(data []byte) error {
	if b.frozen {
		return ErrFrozen
	}
	if len(data) == 0 {
		return nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return b.appendOwned(cp)
}

// AppendOwned adds data to the rope without copying. The caller must not
// modify data afterwards. It exists for hot paths (packet payload handoff)
// where the buffer is already owned by the rope's producer.
func (b *Bytes) AppendOwned(data []byte) error {
	if b.frozen {
		return ErrFrozen
	}
	if len(data) == 0 {
		return nil
	}
	return b.appendOwned(data)
}

func (b *Bytes) appendOwned(data []byte) error {
	b.chunks = append(b.chunks, chunk{off: b.end, data: data})
	b.end += int64(len(data))
	return nil
}

// Freeze marks the value complete: no further appends are allowed, and
// iterators at the end dereference to end-of-data rather than would-block.
func (b *Bytes) Freeze() { b.frozen = true }

// Unfreeze reverses Freeze. HILTI exposes this for stream gaps handling.
func (b *Bytes) Unfreeze() { b.frozen = false }

// Frozen reports whether the value has been frozen.
func (b *Bytes) Frozen() bool { return b.frozen }

// Len returns the number of currently retained bytes.
func (b *Bytes) Len() int64 { return b.end - b.base }

// StreamLen returns the absolute offset one past the last byte, i.e. the
// total number of bytes ever appended.
func (b *Bytes) StreamLen() int64 { return b.end }

// Begin returns an iterator at the first retained byte.
func (b *Bytes) Begin() Iter { return Iter{b: b, off: b.base} }

// End returns the distinguished end iterator. For a non-frozen value it
// denotes "wherever the data ends once frozen": comparing or dereferencing
// it reflects the rope's current end at the time of use.
func (b *Bytes) End() Iter { return Iter{b: b, off: endSentinel} }

// At returns an iterator at absolute stream offset off.
func (b *Bytes) At(off int64) Iter { return Iter{b: b, off: off} }

const endSentinel = int64(-1)

// Trim discards all data before it, releasing chunk memory. Iterators
// pointing before it become invalid. Trimming is how long-running parsers
// bound memory for already-consumed input.
func (b *Bytes) Trim(it Iter) {
	off := it.resolve()
	if off <= b.base {
		return
	}
	if off > b.end {
		off = b.end
	}
	// Drop whole chunks that end at or before off.
	i := 0
	for i < len(b.chunks) && b.chunks[i].off+int64(len(b.chunks[i].data)) <= off {
		i++
	}
	b.chunks = b.chunks[i:]
	b.base = off
}

// findChunk returns the index of the chunk containing absolute offset off,
// or -1 when off is at or beyond the end.
func (b *Bytes) findChunk(off int64) int {
	if off >= b.end || off < b.base {
		return -1
	}
	n := len(b.chunks)
	if n == 0 {
		return -1
	}
	// Fast path: most accesses are in the first or last chunk.
	if c := b.chunks[0]; off < c.off+int64(len(c.data)) {
		return 0
	}
	if c := b.chunks[n-1]; off >= c.off {
		return n - 1
	}
	return sort.Search(n, func(i int) bool {
		c := b.chunks[i]
		return off < c.off+int64(len(c.data))
	})
}

// ByteAt returns the byte at absolute offset off. ok is false with
// ErrWouldBlock semantics: the offset is past the end of a non-frozen value.
// Reading past the end of a frozen value returns ErrOutOfRange.
func (b *Bytes) ByteAt(off int64) (byte, error) {
	if off < b.base {
		return 0, ErrOutOfRange
	}
	if off >= b.end {
		if b.frozen {
			return 0, ErrOutOfRange
		}
		return 0, ErrWouldBlock
	}
	ci := b.findChunk(off)
	c := b.chunks[ci]
	return c.data[off-c.off], nil
}

// Bytes flattens the retained data into a single contiguous slice.
// The result is freshly allocated unless the rope holds exactly one chunk.
func (b *Bytes) Bytes() []byte {
	if len(b.chunks) == 1 && b.base == b.chunks[0].off {
		return b.chunks[0].data
	}
	out := make([]byte, 0, b.Len())
	for _, c := range b.chunks {
		d := c.data
		if c.off < b.base {
			d = d[b.base-c.off:]
		}
		out = append(out, d...)
	}
	return out
}

// String renders the retained data as a Go string (for debugging and for
// HILTI's bytes-to-string conversions).
func (b *Bytes) String() string { return string(b.Bytes()) }

// Sub copies the bytes in [from, to) into a new contiguous slice.
// It returns ErrWouldBlock when to exceeds available data on a non-frozen
// value, and ErrOutOfRange for invalid ranges.
func (b *Bytes) Sub(from, to Iter) ([]byte, error) {
	lo, hi := from.resolve(), to.resolve()
	if lo > hi || lo < b.base {
		return nil, ErrOutOfRange
	}
	if hi > b.end {
		if b.frozen {
			return nil, ErrOutOfRange
		}
		return nil, ErrWouldBlock
	}
	out := make([]byte, 0, hi-lo)
	for ci := b.findChunk(lo); ci >= 0 && ci < len(b.chunks); ci++ {
		c := b.chunks[ci]
		if c.off >= hi {
			break
		}
		d := c.data
		start := int64(0)
		if lo > c.off {
			start = lo - c.off
		}
		stop := int64(len(d))
		if c.off+stop > hi {
			stop = hi - c.off
		}
		out = append(out, d[start:stop]...)
	}
	return out, nil
}

// SubBytes is Sub wrapped into a new Bytes value (frozen, as HILTI's
// bytes.sub returns an independent value).
func (b *Bytes) SubBytes(from, to Iter) (*Bytes, error) {
	raw, err := b.Sub(from, to)
	if err != nil {
		return nil, err
	}
	nb := NewFrom(raw)
	nb.Freeze()
	return nb, nil
}

// Find searches for needle at or after from. It returns an iterator to the
// first occurrence and true; when the needle is absent it returns the
// position from which a future search must resume (end minus overlap) and
// false. On a non-frozen value an absent needle yields ErrWouldBlock so
// incremental callers know to retry with more data.
func (b *Bytes) Find(needle []byte, from Iter) (Iter, bool, error) {
	if len(needle) == 0 {
		return from, true, nil
	}
	lo := from.resolve()
	if lo < b.base {
		return Iter{}, false, ErrOutOfRange
	}
	// Search the flattened tail. Ropes here are small per-message buffers;
	// flattening the searched region keeps this simple and fast in practice.
	data, err := b.Sub(b.At(lo), b.At(b.end))
	if err != nil {
		return Iter{}, false, err
	}
	if i := bytes.Index(data, needle); i >= 0 {
		return b.At(lo + int64(i)), true, nil
	}
	if !b.frozen {
		return Iter{}, false, ErrWouldBlock
	}
	return b.End(), false, nil
}

// Equal reports whether two ropes hold the same retained bytes.
func (b *Bytes) Equal(o *Bytes) bool {
	if b.Len() != o.Len() {
		return false
	}
	return bytes.Equal(b.Bytes(), o.Bytes())
}

// Compare orders ropes lexicographically.
func (b *Bytes) Compare(o *Bytes) int { return bytes.Compare(b.Bytes(), o.Bytes()) }

// Copy returns an independent deep copy (used by HILTI's deep-copying
// message passing between virtual threads).
func (b *Bytes) Copy() *Bytes {
	nb := NewFrom(b.Bytes())
	nb.frozen = b.frozen
	return nb
}

// Iter is a position within a Bytes value, addressed by absolute stream
// offset so that it survives appends and (if not trimmed past) trims.
type Iter struct {
	b   *Bytes
	off int64
}

// Bytes returns the rope this iterator points into.
func (it Iter) Bytes() *Bytes { return it.b }

// Offset returns the absolute stream offset, resolving the end sentinel.
func (it Iter) Offset() int64 { return it.resolve() }

func (it Iter) resolve() int64 {
	if it.off == endSentinel {
		if it.b == nil {
			return 0
		}
		return it.b.end
	}
	return it.off
}

// IsEnd reports whether the iterator is the distinguished moving-end
// iterator (as opposed to a fixed offset that happens to equal the end).
func (it Iter) IsEnd() bool { return it.off == endSentinel }

// AtEnd reports whether the iterator currently points at or past the end of
// available data.
func (it Iter) AtEnd() bool {
	if it.b == nil {
		return true
	}
	return it.resolve() >= it.b.end
}

// Deref returns the byte at the iterator.
func (it Iter) Deref() (byte, error) {
	if it.b == nil {
		return 0, ErrOutOfRange
	}
	return it.b.ByteAt(it.resolve())
}

// Next returns an iterator advanced by one byte.
func (it Iter) Next() Iter { return it.Plus(1) }

// Plus returns an iterator advanced by n bytes (n may be negative).
func (it Iter) Plus(n int64) Iter {
	return Iter{b: it.b, off: it.resolve() + n}
}

// Diff returns the distance in bytes from it to o (o - it).
func (it Iter) Diff(o Iter) int64 { return o.resolve() - it.resolve() }

// Cmp compares two iterator positions: -1, 0 or +1.
func (it Iter) Cmp(o Iter) int {
	a, b := it.resolve(), o.resolve()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Valid reports whether the iterator points into retained data (or at the
// end). Trimmed-past iterators are invalid.
func (it Iter) Valid() bool {
	if it.b == nil {
		return false
	}
	off := it.resolve()
	return off >= it.b.base && off <= it.b.end
}

// Err wraps fmt for iterator diagnostics.
func (it Iter) GoString() string {
	return fmt.Sprintf("hbytes.Iter(off=%d)", it.resolve())
}

// Reset discards all state and re-initializes the rope around data without
// copying (the caller retains ownership discipline of AppendOwned). Host
// stubs use this to re-wrap per-packet buffers allocation-free.
func (b *Bytes) Reset(data []byte) {
	b.chunks = b.chunks[:0]
	b.base = 0
	b.end = 0
	b.frozen = false
	if len(data) > 0 {
		b.chunks = append(b.chunks, chunk{off: 0, data: data})
		b.end = int64(len(data))
	}
	b.frozen = true
}
