package iosrc

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"hilti/internal/pkt/pcap"
)

func samplePackets() []pcap.Packet {
	return []pcap.Packet{
		{Time: time.Unix(10, 0).UTC(), Data: []byte("one")},
		{Time: time.Unix(11, 500000000).UTC(), Data: []byte("two!")},
	}
}

func TestPcapOffline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.pcap")
	if err := pcap.WriteFile(path, pcap.LinkTypeEthernet, samplePackets()); err != nil {
		t.Fatal(err)
	}
	src, err := OpenOffline(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.LinkType() != pcap.LinkTypeEthernet {
		t.Fatalf("linktype %d", src.LinkType())
	}
	ts, b, err := src.Read()
	if err != nil {
		t.Fatal(err)
	}
	if ts != 10*1e9 || b.String() != "one" {
		t.Fatalf("ts=%d data=%q", ts, b.String())
	}
	if !b.Frozen() {
		t.Fatal("packet bytes should arrive frozen")
	}
	if _, _, err := src.Read(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.Read(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want exhausted, got %v", err)
	}
}

func TestOpenOfflineMissing(t *testing.T) {
	if _, err := OpenOffline("/nonexistent/file.pcap"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReplay(t *testing.T) {
	src := NewReplay(samplePackets(), pcap.LinkTypeRaw)
	count := 0
	for {
		_, _, err := src.Read()
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 2 {
		t.Fatalf("read %d packets", count)
	}
	src.Rewind()
	if _, b, err := src.Read(); err != nil || b.String() != "one" {
		t.Fatalf("after rewind: %v", err)
	}
	if src.TypeName() != "iosrc" {
		t.Fatal("TypeName")
	}
}
