// Package iosrc implements HILTI's iosrc type: input sources delivering
// timestamped raw packets (paper §3.2). The offline source reads libpcap
// trace files; the replay source serves a pre-generated in-memory trace,
// standing in for live capture in this repository's self-contained
// evaluation (DESIGN.md records the substitution).
package iosrc

import (
	"errors"
	"io"
	"os"

	"hilti/internal/pkt/pcap"
	"hilti/internal/rt/hbytes"
	"hilti/internal/rt/values"
)

// ErrExhausted is reported when a source has no more packets.
var ErrExhausted = errors.New("iosrc: exhausted")

// Source delivers packets as (time, bytes) pairs, HILTI's iosrc.read
// contract.
type Source interface {
	values.Object
	// Read returns the next packet's timestamp (ns since epoch) and its
	// link-layer bytes, or ErrExhausted.
	Read() (int64, *hbytes.Bytes, error)
	// LinkType returns the pcap link type of the source.
	LinkType() uint32
	Close() error
}

// PcapOffline reads packets from a libpcap file.
type PcapOffline struct {
	f        *os.File
	r        *pcap.Reader
	linkType uint32
}

// OpenOffline opens a trace file (HILTI's `new iosrc<PcapOffline>`).
func OpenOffline(path string) (*PcapOffline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := pcap.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &PcapOffline{f: f, r: r, linkType: r.LinkType}, nil
}

// TypeName implements values.Object.
func (s *PcapOffline) TypeName() string { return "iosrc" }

// LinkType implements Source.
func (s *PcapOffline) LinkType() uint32 { return s.linkType }

// Read implements Source.
func (s *PcapOffline) Read() (int64, *hbytes.Bytes, error) {
	p, err := s.r.Next()
	if errors.Is(err, io.EOF) {
		return 0, nil, ErrExhausted
	}
	if err != nil {
		return 0, nil, err
	}
	b := hbytes.New()
	b.AppendOwned(p.Data)
	b.Freeze()
	return p.Time.UnixNano(), b, nil
}

// Close implements Source.
func (s *PcapOffline) Close() error { return s.f.Close() }

// Replay serves an in-memory packet list (the generator's output).
type Replay struct {
	pkts []pcap.Packet
	pos  int
	link uint32
}

// NewReplay creates a replay source over pkts.
func NewReplay(pkts []pcap.Packet, linkType uint32) *Replay {
	return &Replay{pkts: pkts, link: linkType}
}

// TypeName implements values.Object.
func (s *Replay) TypeName() string { return "iosrc" }

// LinkType implements Source.
func (s *Replay) LinkType() uint32 { return s.link }

// Read implements Source.
func (s *Replay) Read() (int64, *hbytes.Bytes, error) {
	if s.pos >= len(s.pkts) {
		return 0, nil, ErrExhausted
	}
	p := s.pkts[s.pos]
	s.pos++
	b := hbytes.New()
	b.AppendOwned(p.Data)
	b.Freeze()
	return p.Time.UnixNano(), b, nil
}

// Rewind restarts the replay from the beginning.
func (s *Replay) Rewind() { s.pos = 0 }

// Close implements Source.
func (s *Replay) Close() error { return nil }
