package classifier

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hilti/internal/rt/values"
)

// Priority and overlap semantics: the paper fixes first-match-wins by
// insertion order, NOT longest-prefix or most-specific. These tests pin
// that down for both the linear matcher and the trie index, which walks
// specific prefixes first and must still honor rule priority.

func TestInsertionOrderBeatsSpecificity(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		c := New(1)
		if err := c.AddValues(values.Int(1), values.MustParseNet("10.0.0.0/8")); err != nil {
			t.Fatal(err)
		}
		if err := c.AddValues(values.Int(2), values.MustParseNet("10.1.2.3/32")); err != nil {
			t.Fatal(err)
		}
		if indexed {
			c.CompileIndexed()
		} else {
			c.Compile()
		}
		// The /32 is more specific but was added later: the /8 must win.
		v, err := c.Get(values.MustParseAddr("10.1.2.3"))
		if err != nil || v.AsInt() != 1 {
			t.Fatalf("indexed=%v: got %v, %v; want rule 1 (/8 added first)", indexed, v, err)
		}
	}
}

func TestWildcardFirstShadowsEverything(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		c := New(1)
		c.Add([]Field{Wildcard{}}, values.Int(0)) // all-wildcard rule, added first
		c.AddValues(values.Int(1), values.MustParseNet("10.0.0.0/8"))
		if indexed {
			c.CompileIndexed()
		} else {
			c.Compile()
		}
		for _, a := range []string{"10.1.1.1", "192.168.0.1"} {
			v, err := c.Get(values.MustParseAddr(a))
			if err != nil || v.AsInt() != 0 {
				t.Fatalf("indexed=%v %s: got %v, %v; want wildcard rule", indexed, a, v, err)
			}
		}
	}
}

func TestNestedPrefixesInterleavedPriority(t *testing.T) {
	// Nested prefixes with priorities deliberately out of specificity
	// order. The trie finds all of them on the root-to-leaf walk and must
	// pick the lowest prio among the matches.
	rules := []struct {
		net string
		val int64
	}{
		{"10.1.0.0/16", 0}, // wins for anything in 10.1/16
		{"10.0.0.0/8", 1},
		{"10.1.2.0/24", 2}, // shadowed by the /16 above
		{"0.0.0.0/0", 3},
	}
	probes := []struct {
		addr string
		want int64
	}{
		{"10.1.2.3", 0},
		{"10.1.9.9", 0},
		{"10.2.0.1", 1},
		{"172.16.0.1", 3},
	}
	for _, indexed := range []bool{false, true} {
		c := New(1)
		for _, r := range rules {
			if err := c.AddValues(values.Int(r.val), values.MustParseNet(r.net)); err != nil {
				t.Fatal(err)
			}
		}
		if indexed {
			c.CompileIndexed()
		} else {
			c.Compile()
		}
		for _, p := range probes {
			v, err := c.Get(values.MustParseAddr(p.addr))
			if err != nil || v.AsInt() != p.want {
				t.Errorf("indexed=%v %s: got %v, %v; want %d", indexed, p.addr, v, err, p.want)
			}
		}
	}
}

func TestNonAddressFirstFieldStillIndexed(t *testing.T) {
	// Rules whose first field is not a prefix land at the trie root; the
	// indexed classifier must still match them, in priority order.
	c := New(2)
	c.Add([]Field{ExactField{Val: values.Int(6)}, Wildcard{}}, values.Int(100))
	c.Add([]Field{Wildcard{}, ExactField{Val: values.Int(53)}}, values.Int(200))
	c.CompileIndexed()
	v, err := c.Get(values.Int(6), values.Int(53))
	if err != nil || v.AsInt() != 100 {
		t.Fatalf("got %v, %v; want first rule", v, err)
	}
	v, err = c.Get(values.Int(17), values.Int(53))
	if err != nil || v.AsInt() != 200 {
		t.Fatalf("got %v, %v; want second rule", v, err)
	}
	if _, err = c.Get(values.Int(17), values.Int(80)); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("want ErrNoMatch, got %v", err)
	}
}

func TestIPv6LongPrefixIndexed(t *testing.T) {
	// A /96 prefix exercises the trie walk past bit 64 (the low word).
	for _, indexed := range []bool{false, true} {
		c := New(1)
		c.AddValues(values.Int(1), values.MustParseNet("2001:db8::/96"))
		c.AddValues(values.Int(2), values.MustParseNet("2001:db8::/32"))
		if indexed {
			c.CompileIndexed()
		} else {
			c.Compile()
		}
		v, err := c.Get(values.MustParseAddr("2001:db8::42"))
		if err != nil || v.AsInt() != 1 {
			t.Fatalf("indexed=%v: got %v, %v; want /96 rule (added first)", indexed, v, err)
		}
		v, err = c.Get(values.MustParseAddr("2001:db8:1::1"))
		if err != nil || v.AsInt() != 2 {
			t.Fatalf("indexed=%v: got %v, %v; want /32 rule", indexed, v, err)
		}
	}
}

func TestPortRangeBoundaries(t *testing.T) {
	f := PortRangeField{Lo: 1024, Hi: 2048, Proto: values.ProtoTCP}
	for p, want := range map[uint16]bool{1023: false, 1024: true, 2048: true, 2049: false} {
		if got := f.Matches(values.PortVal(p, values.ProtoTCP)); got != want {
			t.Errorf("port %d: match = %v, want %v", p, got, want)
		}
	}
	if f.Matches(values.PortVal(1500, values.ProtoUDP)) {
		t.Error("wrong protocol must not match")
	}
}

func TestEmptyClassifier(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		c := New(1)
		if indexed {
			c.CompileIndexed()
		} else {
			c.Compile()
		}
		if _, err := c.Get(values.MustParseAddr("1.2.3.4")); !errors.Is(err, ErrNoMatch) {
			t.Fatalf("indexed=%v: want ErrNoMatch on empty table, got %v", indexed, err)
		}
		if c.Matches(values.MustParseAddr("1.2.3.4")) {
			t.Fatalf("indexed=%v: Matches on empty table", indexed)
		}
	}
}

func TestGetKeyArityChecked(t *testing.T) {
	c := New(2)
	c.Add([]Field{Wildcard{}, Wildcard{}}, values.Int(1))
	c.CompileIndexed()
	if _, err := c.Get(values.MustParseAddr("1.2.3.4")); err == nil || errors.Is(err, ErrNoMatch) {
		t.Fatalf("short key accepted: %v", err)
	}
}

// TestRandomizedLinearIndexedEquivalence cross-validates the two matchers:
// for random rule tables and random probes, compiled-with-index results
// must be byte-identical to the reference linear scan.
func TestRandomizedLinearIndexedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randNet := func() values.Value {
		plen := 8 + rng.Intn(25) // /8../32
		a := fmt.Sprintf("%d.%d.%d.%d/%d",
			10+rng.Intn(4), rng.Intn(4), rng.Intn(4), 0, plen)
		return values.MustParseNet(a)
	}
	randAddr := func() values.Value {
		return values.MustParseAddr(fmt.Sprintf("%d.%d.%d.%d",
			10+rng.Intn(4), rng.Intn(4), rng.Intn(4), rng.Intn(4)))
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		lin, idx := New(2), New(2)
		for i := 0; i < n; i++ {
			var f0, f1 Field
			switch rng.Intn(3) {
			case 0:
				f0 = Wildcard{}
			default:
				f0 = NetField{Net: randNet()}
			}
			if rng.Intn(2) == 0 {
				f1 = Wildcard{}
			} else {
				f1 = ExactField{Val: values.Int(int64(rng.Intn(3)))}
			}
			val := values.Int(int64(i))
			lin.Add([]Field{f0, f1}, val)
			idx.Add([]Field{f0, f1}, val)
		}
		lin.Compile()
		idx.CompileIndexed()
		for probe := 0; probe < 100; probe++ {
			key := []values.Value{randAddr(), values.Int(int64(rng.Intn(3)))}
			lv, lerr := lin.Get(key...)
			iv, ierr := idx.Get(key...)
			if (lerr == nil) != (ierr == nil) {
				t.Fatalf("trial %d key %v: linear err %v, indexed err %v", trial, key, lerr, ierr)
			}
			if lerr == nil && lv.AsInt() != iv.AsInt() {
				t.Fatalf("trial %d key %v: linear %v, indexed %v", trial, key, lv, iv)
			}
		}
	}
}
