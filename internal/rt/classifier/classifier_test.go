package classifier

import (
	"errors"
	"math/rand"
	"testing"

	"hilti/internal/rt/values"
)

// paperRules builds the classifier of the paper's Figure 5 firewall.
func paperRules(t *testing.T, indexed bool) *Classifier {
	t.Helper()
	c := New(2)
	add := func(src, dst string, allow bool) {
		var sf, df Field
		if src == "*" {
			sf = Wildcard{}
		} else {
			sf = NetField{Net: values.MustParseNet(src)}
		}
		if dst == "*" {
			df = Wildcard{}
		} else {
			df = NetField{Net: values.MustParseNet(dst)}
		}
		if err := c.Add([]Field{sf, df}, values.Bool(allow)); err != nil {
			t.Fatal(err)
		}
	}
	add("10.3.2.1/32", "10.1.0.0/16", true)
	add("10.12.0.0/16", "10.1.0.0/16", false)
	add("10.1.6.0/24", "*", true)
	add("10.1.7.0/24", "*", true)
	if indexed {
		c.CompileIndexed()
	} else {
		c.Compile()
	}
	return c
}

func TestPaperFirewallRules(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		c := paperRules(t, indexed)
		cases := []struct {
			src, dst string
			want     bool
			miss     bool
		}{
			{"10.3.2.1", "10.1.5.5", true, false},
			{"10.12.9.9", "10.1.5.5", false, false},
			{"10.1.6.77", "192.168.0.1", true, false},
			{"10.1.7.1", "8.8.8.8", true, false},
			{"172.16.0.1", "10.1.0.1", false, true},
		}
		for _, tc := range cases {
			v, err := c.Get(values.MustParseAddr(tc.src), values.MustParseAddr(tc.dst))
			if tc.miss {
				if !errors.Is(err, ErrNoMatch) {
					t.Errorf("indexed=%v %s->%s: want no-match, got %v %v", indexed, tc.src, tc.dst, v, err)
				}
				continue
			}
			if err != nil || v.AsBool() != tc.want {
				t.Errorf("indexed=%v %s->%s = %v, %v; want %v", indexed, tc.src, tc.dst, v, err, tc.want)
			}
		}
	}
}

func TestFirstMatchWinsByInsertionOrder(t *testing.T) {
	c := New(1)
	c.Add([]Field{NetField{Net: values.MustParseNet("10.0.0.0/8")}}, values.Int(1))
	c.Add([]Field{NetField{Net: values.MustParseNet("10.1.0.0/16")}}, values.Int(2))
	c.Compile()
	v, err := c.Get(values.MustParseAddr("10.1.2.3"))
	if err != nil || v.AsInt() != 1 {
		t.Fatalf("want first rule (1), got %v %v", v, err)
	}
	// Indexed variant must preserve the same first-match semantics even
	// though the more specific prefix is deeper in the trie.
	c2 := New(1)
	c2.Add([]Field{NetField{Net: values.MustParseNet("10.0.0.0/8")}}, values.Int(1))
	c2.Add([]Field{NetField{Net: values.MustParseNet("10.1.0.0/16")}}, values.Int(2))
	c2.CompileIndexed()
	v, err = c2.Get(values.MustParseAddr("10.1.2.3"))
	if err != nil || v.AsInt() != 1 {
		t.Fatalf("indexed: want first rule (1), got %v %v", v, err)
	}
}

func TestAddAfterCompileRejected(t *testing.T) {
	c := New(1)
	c.Compile()
	if err := c.Add([]Field{Wildcard{}}, values.Nil); !errors.Is(err, ErrCompiled) {
		t.Fatalf("got %v", err)
	}
}

func TestGetBeforeCompileRejected(t *testing.T) {
	c := New(1)
	c.Add([]Field{Wildcard{}}, values.Nil)
	if _, err := c.Get(values.Int(1)); !errors.Is(err, ErrNotCompiled) {
		t.Fatalf("got %v", err)
	}
}

func TestFieldArityChecked(t *testing.T) {
	c := New(2)
	if err := c.Add([]Field{Wildcard{}}, values.Nil); err == nil {
		t.Fatal("wrong arity accepted")
	}
	c.Add([]Field{Wildcard{}, Wildcard{}}, values.Nil)
	c.Compile()
	if _, err := c.Get(values.Int(1)); err == nil {
		t.Fatal("wrong key arity accepted")
	}
}

func TestExactAndPortRangeFields(t *testing.T) {
	c := New(2)
	c.Add([]Field{
		ExactField{Val: values.MustParseAddr("1.2.3.4")},
		PortRangeField{Lo: 1024, Hi: 2048, Proto: values.ProtoTCP},
	}, values.String("hit"))
	c.Compile()
	v, err := c.Get(values.MustParseAddr("1.2.3.4"), values.PortVal(1500, values.ProtoTCP))
	if err != nil || v.AsString() != "hit" {
		t.Fatalf("got %v %v", v, err)
	}
	if _, err := c.Get(values.MustParseAddr("1.2.3.4"), values.PortVal(1500, values.ProtoUDP)); err == nil {
		t.Fatal("wrong proto matched")
	}
	if _, err := c.Get(values.MustParseAddr("1.2.3.4"), values.PortVal(80, values.ProtoTCP)); err == nil {
		t.Fatal("port outside range matched")
	}
}

func TestFieldForDispatch(t *testing.T) {
	if _, ok := FieldFor(values.MustParseNet("10.0.0.0/8")).(NetField); !ok {
		t.Fatal("net should map to NetField")
	}
	if _, ok := FieldFor(values.Nil).(Wildcard); !ok {
		t.Fatal("void should map to Wildcard")
	}
	if _, ok := FieldFor(values.Int(5)).(ExactField); !ok {
		t.Fatal("int should map to ExactField")
	}
}

// The linear and trie-indexed matchers must agree on random rule sets.
func TestIndexedAgreesWithLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randNet := func() values.Value {
		a := values.AddrFromV4Uint(uint32(rng.Intn(1<<16) << 16))
		return values.NetVal(a, 8+rng.Intn(17))
	}
	lin, idx := New(2), New(2)
	for i := 0; i < 50; i++ {
		var f1, f2 Field
		if rng.Intn(4) == 0 {
			f1 = Wildcard{}
		} else {
			f1 = NetField{Net: randNet()}
		}
		if rng.Intn(2) == 0 {
			f2 = Wildcard{}
		} else {
			f2 = NetField{Net: randNet()}
		}
		val := values.Int(int64(i))
		lin.Add([]Field{f1, f2}, val)
		idx.Add([]Field{f1, f2}, val)
	}
	lin.Compile()
	idx.CompileIndexed()
	for i := 0; i < 2000; i++ {
		k1 := values.AddrFromV4Uint(uint32(rng.Intn(1 << 24)))
		k2 := values.AddrFromV4Uint(uint32(rng.Intn(1 << 24)))
		v1, e1 := lin.Get(k1, k2)
		v2, e2 := idx.Get(k1, k2)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("match disagreement for %v,%v: %v vs %v", k1, k2, e1, e2)
		}
		if e1 == nil && !values.Equal(v1, v2) {
			t.Fatalf("value disagreement for %v,%v: %v vs %v",
				values.Format(k1), values.Format(k2), values.Format(v1), values.Format(v2))
		}
	}
}

func benchRules(n int, indexed bool) *Classifier {
	rng := rand.New(rand.NewSource(42))
	c := New(2)
	for i := 0; i < n; i++ {
		src := values.NetVal(values.AddrFromV4Uint(uint32(rng.Intn(1<<16))<<16), 16)
		dst := values.NetVal(values.AddrFromV4Uint(uint32(rng.Intn(1<<16))<<16), 16)
		c.Add([]Field{NetField{Net: src}, NetField{Net: dst}}, values.Int(int64(i)))
	}
	if indexed {
		c.CompileIndexed()
	} else {
		c.Compile()
	}
	return c
}

// BenchmarkClassifierList vs BenchmarkClassifierCompiled is the DESIGN.md
// ablation of the paper's linked-list prototype classifier.
func BenchmarkClassifierList(b *testing.B) {
	c := benchRules(256, false)
	key1 := values.MustParseAddr("77.1.2.3")
	key2 := values.MustParseAddr("88.1.2.3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(key1, key2)
	}
}

func BenchmarkClassifierCompiled(b *testing.B) {
	c := benchRules(256, true)
	key1 := values.MustParseAddr("77.1.2.3")
	key2 := values.MustParseAddr("88.1.2.3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(key1, key2)
	}
}
