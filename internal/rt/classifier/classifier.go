// Package classifier implements HILTI's classifier type: ACL-style packet
// classification (paper §3.2). A classifier holds a list of rules — tuples
// of per-field matchers such as CIDR prefixes, exact ports, or wildcards —
// each associated with a value; matching a key tuple returns the value of
// the first rule (in insertion order) whose fields all match, exactly the
// semantics the paper's stateful-firewall exemplar relies on.
//
// The paper notes its prototype "currently implement[s] the classifier type
// as a linked list internally" and that switching to a better structure
// would be transparent to host applications. We provide both: the default
// linear matcher, and a compiled variant indexing the first address field
// with a binary prefix trie. The ablation benchmark compares the two.
package classifier

import (
	"errors"
	"fmt"
	"strings"

	"hilti/internal/rt/values"
)

// ErrNoMatch is returned by Get when no rule matches; HILTI raises
// Hilti::IndexError for this case, and the VM maps this error onto it.
var ErrNoMatch = errors.New("classifier: no matching rule")

// ErrNotCompiled is returned by Get before Compile has been called.
var ErrNotCompiled = errors.New("classifier: not compiled")

// ErrCompiled is returned by Add after Compile has been called.
var ErrCompiled = errors.New("classifier: already compiled")

// Field matches one component of a key tuple.
type Field interface {
	Matches(v values.Value) bool
	String() string
}

// Wildcard matches anything (the paper's `*` rule fields).
type Wildcard struct{}

// Matches implements Field.
func (Wildcard) Matches(values.Value) bool { return true }

func (Wildcard) String() string { return "*" }

// NetField matches addresses within a CIDR prefix.
type NetField struct{ Net values.Value }

// Matches implements Field.
func (f NetField) Matches(v values.Value) bool { return f.Net.NetContains(v) }

func (f NetField) String() string { return values.Format(f.Net) }

// ExactField matches values equal to a constant.
type ExactField struct{ Val values.Value }

// Matches implements Field.
func (f ExactField) Matches(v values.Value) bool { return values.Equal(f.Val, v) }

func (f ExactField) String() string { return values.Format(f.Val) }

// PortRangeField matches ports within [Lo, Hi] of the same protocol.
type PortRangeField struct {
	Lo, Hi uint16
	Proto  uint8
}

// Matches implements Field.
func (f PortRangeField) Matches(v values.Value) bool {
	p, proto := v.AsPort()
	return proto == f.Proto && p >= f.Lo && p <= f.Hi
}

func (f PortRangeField) String() string {
	return fmt.Sprintf("%d-%d", f.Lo, f.Hi)
}

// FieldFor builds the natural matcher for a constant value: nets match by
// prefix, everything else exactly. A void value becomes a wildcard.
func FieldFor(v values.Value) Field {
	switch v.K {
	case values.KindNet:
		return NetField{Net: v}
	case values.KindVoid, values.KindUnset:
		return Wildcard{}
	default:
		return ExactField{Val: v}
	}
}

type rule struct {
	fields []Field
	val    values.Value
	prio   int
}

// Classifier is the rule table. Rules are added, then Compile freezes the
// table (HILTI's classifier.compile), after which Get may be used.
type Classifier struct {
	nfields  int
	rules    []rule
	compiled bool
	trie     *trieNode // optional first-field index (compiled mode)
}

// New creates a classifier for key tuples of nfields components.
func New(nfields int) *Classifier { return &Classifier{nfields: nfields} }

// TypeName implements the runtime Object interface.
func (c *Classifier) TypeName() string { return "classifier" }

// FormatObj implements the runtime Formatter interface.
func (c *Classifier) FormatObj() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "classifier(%d rules)", len(c.rules))
	return sb.String()
}

// Len returns the number of rules.
func (c *Classifier) Len() int { return len(c.rules) }

// Add appends a rule with the given per-field matchers and result value.
// Priority is insertion order: earlier rules win (paper: "applied in order
// of specification. The first match determines the result").
func (c *Classifier) Add(fields []Field, val values.Value) error {
	if c.compiled {
		return ErrCompiled
	}
	if len(fields) != c.nfields {
		return fmt.Errorf("classifier: rule has %d fields, want %d", len(fields), c.nfields)
	}
	c.rules = append(c.rules, rule{fields: fields, val: val, prio: len(c.rules)})
	return nil
}

// AddValues is Add with matchers derived via FieldFor.
func (c *Classifier) AddValues(val values.Value, keys ...values.Value) error {
	fields := make([]Field, len(keys))
	for i, k := range keys {
		fields[i] = FieldFor(k)
	}
	return c.Add(fields, val)
}

// Compile freezes the rule set. After Compile, Get becomes available and
// Add is rejected.
func (c *Classifier) Compile() { c.compiled = true }

// CompileIndexed freezes the rule set and additionally builds a prefix-trie
// index over the first field (when it is an address/net matcher). This is
// the "better data structure for packet classification" the paper defers to
// future work; semantics are identical to linear matching.
func (c *Classifier) CompileIndexed() {
	c.compiled = true
	c.trie = buildTrie(c.rules)
}

// Get returns the value of the first matching rule for the key tuple.
func (c *Classifier) Get(key ...values.Value) (values.Value, error) {
	if !c.compiled {
		return values.Nil, ErrNotCompiled
	}
	if len(key) != c.nfields {
		return values.Nil, fmt.Errorf("classifier: key has %d fields, want %d", len(key), c.nfields)
	}
	if c.trie != nil {
		return c.getIndexed(key)
	}
	for i := range c.rules {
		if c.rules[i].matches(key) {
			return c.rules[i].val, nil
		}
	}
	return values.Nil, ErrNoMatch
}

// Matches reports whether any rule matches, without returning its value.
func (c *Classifier) Matches(key ...values.Value) bool {
	_, err := c.Get(key...)
	return err == nil
}

// RuleView is a read-only view of one rule, in priority (insertion)
// order, for consumers that re-compile the table into other structures
// (the shared rule plane ingests classifiers through this).
type RuleView struct {
	Fields []Field
	Val    values.Value
}

// Rules returns the rule list in priority order. The field slices are
// shared with the classifier; callers must not mutate them.
func (c *Classifier) Rules() []RuleView {
	out := make([]RuleView, len(c.rules))
	for i := range c.rules {
		out[i] = RuleView{Fields: c.rules[i].fields, Val: c.rules[i].val}
	}
	return out
}

// NumFields returns the key-tuple width the classifier was created with.
func (c *Classifier) NumFields() int { return c.nfields }

func (r *rule) matches(key []values.Value) bool {
	for i, f := range r.fields {
		if !f.Matches(key[i]) {
			return false
		}
	}
	return true
}

// --- Compiled (trie-indexed) matching ---------------------------------------

// trieNode is a binary trie over the 128-bit address space of the first
// field. Rules whose first field is a prefix hang off the node of that
// prefix; wildcard/non-address first fields live at the root.
type trieNode struct {
	children [2]*trieNode
	rules    []*rule // rules anchored exactly at this prefix, by priority
}

func buildTrie(rules []rule) *trieNode {
	root := &trieNode{}
	for i := range rules {
		r := &rules[i]
		nf, ok := r.fields[0].(NetField)
		if !ok {
			root.rules = append(root.rules, r)
			continue
		}
		n := root
		hi, lo := nf.Net.A, nf.Net.B
		plen := nf.Net.NetPrefixLen()
		for bit := 0; bit < plen; bit++ {
			var b uint64
			if bit < 64 {
				b = (hi >> (63 - bit)) & 1
			} else {
				b = (lo >> (127 - bit)) & 1
			}
			if n.children[b] == nil {
				n.children[b] = &trieNode{}
			}
			n = n.children[b]
		}
		n.rules = append(n.rules, r)
	}
	return root
}

func (c *Classifier) getIndexed(key []values.Value) (values.Value, error) {
	addr := key[0]
	best := (*rule)(nil)
	consider := func(rs []*rule) {
		for _, r := range rs {
			if best != nil && r.prio >= best.prio {
				continue
			}
			if r.matches(key) {
				best = r
			}
		}
	}
	n := c.trie
	consider(n.rules)
	hi, lo := addr.A, addr.B
	for bit := 0; bit < 128 && n != nil; bit++ {
		var b uint64
		if bit < 64 {
			b = (hi >> (63 - bit)) & 1
		} else {
			b = (lo >> (127 - bit)) & 1
		}
		n = n.children[b]
		if n == nil {
			break
		}
		consider(n.rules)
	}
	if best == nil {
		return values.Nil, ErrNoMatch
	}
	return best.val, nil
}
