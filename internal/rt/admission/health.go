// The health-state machine: four operating states with hysteresis,
// driving a tiered degradation ladder. States classify *offered* load
// (the EWMA rate estimate vs. the configured target capacity) so the
// machine reacts to what is arriving, not to what survived shedding:
//
//	Healthy    — load under capacity; no intervention (tier 0).
//	Degraded   — sustained load at/above capacity; shed new low-priority
//	             flows (tier 1).
//	Shedding   — well over capacity; shed all new flows below High
//	             priority and shrink per-flow budgets (tier 2), and under
//	             extreme overload additionally sample packets (tier 3).
//	Recovering — load has subsided from Degraded/Shedding; budgets are
//	             restored but new-flow shedding stays at tier 1 until the
//	             calm has lasted RecoverDwell (hysteresis against
//	             oscillation), then Healthy.
//
// Every action is tied to the tier, and the tier falls as the state
// machine de-escalates, so every degradation is reversible: budgets
// return to full size, sampling stops, and new flows admit again, in
// that order, as load subsides.

package admission

// State is the controller's operating state.
type State int32

const (
	Healthy State = iota
	Degraded
	Shedding
	Recovering
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Shedding:
		return "shedding"
	case Recovering:
		return "recovering"
	}
	return "unknown"
}

// Class is a flow priority class. Established flows are implicitly above
// every class: the ladder sheds only flows not yet admitted.
type Class int8

const (
	// Low is shed first (tier 1): unkeyable frames and anything the
	// classifier marks expendable.
	Low Class = iota
	// Normal is shed at tier 2 alongside Low.
	Normal
	// High is never shed as a new flow and never sampled; only hard
	// rate limits (the token buckets) can refuse it.
	High
)

func (c Class) String() string {
	switch c {
	case Low:
		return "low"
	case Normal:
		return "normal"
	case High:
		return "high"
	}
	return "unknown"
}

// Tier constants name the ladder rungs; Tier for a state is computed by
// the controller from the overload ratio.
const (
	TierNone     = 0 // no intervention
	TierShedLow  = 1 // refuse new Low-class flows
	TierShrink   = 2 // refuse new non-High flows; halve idle/reassembly budgets
	TierSampling = 3 // additionally admit only 1-in-SampleN non-High packets
)

// ShedNewFlow reports whether a packet that would create a new flow of
// the given class is refused at this tier. Established flows never
// consult it — that is the ladder's core promise.
func ShedNewFlow(tier int, class Class) bool {
	switch {
	case tier <= TierNone:
		return false
	case tier == TierShedLow:
		return class == Low
	default:
		return class < High
	}
}

// IdleShift returns how many halvings tier applies to flow-idle
// deadlines (tier 2's budget shrink): deadline >>= IdleShift.
func IdleShift(tier int) uint {
	if tier >= TierShrink {
		return 1
	}
	return 0
}

// Transition is one recorded state-machine edge. From == To records a
// tier change within a state (Shedding escalating to sampling).
type Transition struct {
	AtNs     int64 // trace time of the transition
	From, To State
	Tier     int
	Ratio    float64 // overload ratio (EWMA rate / target) that drove it
}
