// Package admission is the pipeline's overload-control subsystem: token
// buckets smooth ingest (globally and per source prefix), an EWMA
// estimator tracks offered load against a configured capacity, and a
// health-state machine with hysteresis walks a tiered degradation ladder
// — shed new flows first, shrink per-flow budgets second, sample packets
// last — so that under hostile, high-churn traffic the platform keeps
// per-flow state and execution bounded (the paper's core robustness
// claim) while protecting the flows it already invested state in.
//
// The controller splits across two call sites. Offer runs on the
// pipeline's single Feed goroutine: it meters load, advances the state
// machine on trace time, applies the rate limiters and tier-3 sampling,
// and captures the tier/class for the packet. The worker-side Note*
// methods are called from worker goroutines as each packet reaches its
// disposition; they only touch atomics. Every offered packet lands in
// exactly one ledger bucket, so after a pipeline drain the accounting
// identity holds exactly:
//
//	Offered == Admitted + Shed + Sampled + RateLimited + Rejected
//
// All decisions are driven by caller-supplied (trace) time and the
// sequential Feed order — never wall clocks — so a run is deterministic
// for a given input, which is what lets the soak harness assert
// seed-determinism over millions of adversarial packets.
package admission

import (
	"math"
	"sync"
	"sync/atomic"

	"hilti/internal/pkt/flow"
	"hilti/internal/rt/metrics"
	"hilti/internal/rt/timer"
)

// Config parameterizes a Controller. The zero value of every field is a
// usable default; TargetRate 0 disables the health machine (the state
// stays Healthy and only the explicit rate limiters act).
type Config struct {
	// TargetRate is the capacity estimate in packets/second of trace
	// time: the offered-load level the machine considers "full". The
	// overload ratio driving every transition is EWMA-rate / TargetRate.
	TargetRate float64

	// GlobalRate/GlobalBurst configure the global ingest bucket
	// (tokens = packets). 0 disables it. Size it well above TargetRate:
	// it is the backstop against bursts faster than the EWMA can track,
	// not the primary control.
	GlobalRate, GlobalBurst int64
	// PrefixRate/PrefixBurst configure per-source-prefix buckets (/24
	// for IPv4, /64 for IPv6), bounded to PrefixEntries prefixes
	// (default 4096). 0 disables them.
	PrefixRate, PrefixBurst int64
	PrefixEntries           int

	// Window is the rate-estimation window (default 100ms of trace
	// time); Alpha the EWMA weight of each new window (default 0.3).
	Window timer.Interval
	Alpha  float64

	// Thresholds on the overload ratio, with defaults:
	// DegradedRatio 1.0 (enter Degraded), SheddingRatio 1.5 (enter
	// Shedding), SamplingRatio 2.5 (tier 3 within Shedding),
	// RecoverRatio 0.85 (fall toward Recovering/Healthy). Hysteresis
	// comes from RecoverRatio < DegradedRatio plus RecoverDwell.
	DegradedRatio, SheddingRatio, SamplingRatio, RecoverRatio float64
	// RecoverDwell is how long (trace time) the ratio must stay below
	// RecoverRatio in Recovering before the machine declares Healthy
	// (default 3s).
	RecoverDwell timer.Interval

	// SampleN is the tier-3 sampling divisor: 1 of every SampleN
	// non-High packets is admitted (default 8).
	SampleN int

	// Classify assigns a priority class to a flow (hasKey false =
	// unkeyable frame). Default: unkeyable traffic is Low, port-53
	// (DNS) flows are High, everything else Normal.
	Classify func(key flow.Key, hasKey bool) Class

	// Metrics, when set, registers an "admission" collector exporting
	// the ledger, state/tier gauges, the EWMA rate, and transition
	// counts.
	Metrics *metrics.Registry
}

// Decision is Offer's verdict for one packet. When Drop is true the
// controller has already ledgered the packet (RateLimited or Sampled)
// and the caller must discard it without further accounting. Otherwise
// Tier and Class are the captured degradation context the worker-side
// admit path applies — captured at offer time so a run's decisions are
// reproducible regardless of worker scheduling.
type Decision struct {
	Drop  bool
	Tier  int
	Class Class
}

// Ledger is a snapshot of the disposition counters. Offered equals the
// sum of the other five once all in-flight packets have drained.
type Ledger struct {
	Offered     uint64
	Admitted    uint64 // delivered to a handler
	Shed        uint64 // new flow refused by the degradation ladder
	Sampled     uint64 // dropped by tier-3 sampling
	RateLimited uint64 // refused by the global or per-prefix bucket
	Rejected    uint64 // cap rejects, quarantine drops, scheduling errors

	// EstOffered/EstAdmitted count packets of flows the pipeline had
	// already admitted (including ones since quarantined) — the
	// denominator and numerator of the established-flow survival rate
	// the ladder exists to protect.
	EstOffered, EstAdmitted uint64
}

// Controller is the overload-control decision point. Offer and the
// bucket state are confined to the feeding goroutine; Note* methods,
// State, Tier, Transitions, and LedgerSnapshot are safe from any
// goroutine.
type Controller struct {
	cfg    Config
	global *Bucket
	prefix *PrefixLimiter

	state atomic.Int32
	tier  atomic.Int32

	// Rate estimation + state machine (Offer goroutine only).
	inited     bool
	winStart   int64
	winCount   int64
	ewma       float64
	stateSince int64
	sampleCtr  uint64

	// ledger
	offered     atomic.Uint64
	admitted    atomic.Uint64
	shed        atomic.Uint64
	sampled     atomic.Uint64
	rateLimited atomic.Uint64
	rejected    atomic.Uint64
	estOffered  atomic.Uint64
	estAdmitted atomic.Uint64

	transitions atomic.Uint64
	mu          sync.Mutex // guards trans + hooks registration
	trans       []Transition
	hooks       []func(tier int)
}

const transRing = 256

// NewController builds a controller and applies config defaults.
func NewController(cfg Config) *Controller {
	if cfg.Window <= 0 {
		cfg.Window = timer.Interval(100 * 1e6) // 100ms
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.3
	}
	if cfg.DegradedRatio <= 0 {
		cfg.DegradedRatio = 1.0
	}
	if cfg.SheddingRatio <= 0 {
		cfg.SheddingRatio = 1.5
	}
	if cfg.SamplingRatio <= 0 {
		cfg.SamplingRatio = 2.5
	}
	if cfg.RecoverRatio <= 0 {
		cfg.RecoverRatio = 0.85
	}
	if cfg.RecoverDwell <= 0 {
		cfg.RecoverDwell = timer.Seconds(3)
	}
	if cfg.SampleN < 2 {
		cfg.SampleN = 8
	}
	if cfg.Classify == nil {
		cfg.Classify = DefaultClassify
	}
	c := &Controller{cfg: cfg}
	if cfg.GlobalRate > 0 {
		c.global = NewBucket(cfg.GlobalRate, cfg.GlobalBurst)
	}
	if cfg.PrefixRate > 0 {
		c.prefix = NewPrefixLimiter(cfg.PrefixRate, cfg.PrefixBurst, cfg.PrefixEntries)
	}
	c.register(cfg.Metrics)
	return c
}

// DefaultClassify is the default priority classifier: unkeyable frames
// are Low, DNS (port 53 either side) is High, the rest Normal.
func DefaultClassify(key flow.Key, hasKey bool) Class {
	if !hasKey {
		return Low
	}
	if key.SrcPort == 53 || key.DstPort == 53 {
		return High
	}
	return Normal
}

// Offer meters one packet arriving at trace time nowNs and decides its
// ingress fate. Call from exactly one goroutine (the pipeline's Feed).
func (c *Controller) Offer(nowNs int64, key flow.Key, hasKey bool) Decision {
	c.offered.Add(1)
	c.observe(nowNs)
	tier := int(c.tier.Load())
	class := c.cfg.Classify(key, hasKey)
	if c.global != nil && !c.global.Allow(nowNs) {
		c.rateLimited.Add(1)
		return Decision{Drop: true, Tier: tier, Class: class}
	}
	if c.prefix != nil && hasKey && !c.prefix.Allow(nowNs, key.SrcIP) {
		c.rateLimited.Add(1)
		return Decision{Drop: true, Tier: tier, Class: class}
	}
	if tier >= TierSampling && class != High {
		c.sampleCtr++
		if c.sampleCtr%uint64(c.cfg.SampleN) != 0 {
			c.sampled.Add(1)
			return Decision{Drop: true, Tier: tier, Class: class}
		}
	}
	return Decision{Tier: tier, Class: class}
}

// observe folds the packet into the rate estimate and, at window
// boundaries, advances the state machine. Trace-time driven: windows
// with no packets decay the EWMA when the next packet arrives.
func (c *Controller) observe(nowNs int64) {
	if c.cfg.TargetRate <= 0 {
		return
	}
	w := int64(c.cfg.Window)
	if !c.inited {
		c.inited = true
		c.winStart = nowNs
		c.stateSince = nowNs
	}
	c.winCount++
	gap := nowNs - c.winStart
	if gap < w {
		return
	}
	if k := gap / w; k > 64 {
		// A long silent stretch: the closed form of k decays is ~0.
		c.ewma = 0
		c.winStart = nowNs - w
		c.winCount = 1
	}
	for nowNs-c.winStart >= w {
		// The current packet belongs to a later window, so the completed
		// window held winCount-1 packets; empty intervening windows fold
		// in as zero-rate samples on subsequent iterations.
		inst := float64(c.winCount-1) * float64(nsPerSec) / float64(w)
		c.ewma = c.cfg.Alpha*inst + (1-c.cfg.Alpha)*c.ewma
		c.winStart += w
		c.winCount = 1
		c.evalState(c.winStart)
	}
}

// evalState applies the threshold/hysteresis rules at trace time atNs.
func (c *Controller) evalState(atNs int64) {
	r := c.ewma / c.cfg.TargetRate
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return
	}
	st := State(c.state.Load())
	next := st
	switch st {
	case Healthy:
		if r >= c.cfg.SheddingRatio {
			next = Shedding
		} else if r >= c.cfg.DegradedRatio {
			next = Degraded
		}
	case Degraded:
		switch {
		case r >= c.cfg.SheddingRatio:
			next = Shedding
		case r < c.cfg.RecoverRatio:
			next = Recovering
		}
	case Shedding:
		if r < c.cfg.RecoverRatio {
			next = Recovering
		}
	case Recovering:
		switch {
		case r >= c.cfg.DegradedRatio:
			next = Degraded
		case r < c.cfg.RecoverRatio && atNs-c.stateSince >= int64(c.cfg.RecoverDwell):
			next = Healthy
		}
	}
	tier := tierFor(next, r, c.cfg.SamplingRatio)
	if next == st && tier == int(c.tier.Load()) {
		return
	}
	if next != st {
		c.stateSince = atNs
	}
	c.state.Store(int32(next))
	c.tier.Store(int32(tier))
	c.transitions.Add(1)
	c.mu.Lock()
	c.trans = append(c.trans, Transition{AtNs: atNs, From: st, To: next, Tier: tier, Ratio: r})
	if len(c.trans) > transRing {
		c.trans = c.trans[len(c.trans)-transRing:]
	}
	hooks := c.hooks
	c.mu.Unlock()
	for _, h := range hooks {
		h(tier)
	}
}

// tierFor maps a state (plus the live ratio, for the sampling rung) to
// its ladder tier.
func tierFor(s State, ratio, samplingRatio float64) int {
	switch s {
	case Healthy:
		return TierNone
	case Degraded, Recovering:
		return TierShedLow
	case Shedding:
		if ratio >= samplingRatio {
			return TierSampling
		}
		return TierShrink
	}
	return TierNone
}

// OnTier registers a hook invoked (from the Offer goroutine) whenever
// the tier changes — the attachment point for reversible degradation
// actions owned elsewhere, like scaling a shared reassembly budget. The
// hook must be fast and non-blocking.
func (c *Controller) OnTier(fn func(tier int)) {
	c.mu.Lock()
	c.hooks = append(c.hooks, fn)
	c.mu.Unlock()
}

// --- worker-side ledger notes (nil-safe, any goroutine) ---------------

// NoteAdmitted records a packet delivered to its handler; established
// marks it as belonging to an already-admitted flow.
func (c *Controller) NoteAdmitted(established bool) {
	if c == nil {
		return
	}
	c.admitted.Add(1)
	if established {
		c.estOffered.Add(1)
		c.estAdmitted.Add(1)
	}
}

// NoteShed records a new flow's packet refused by the degradation
// ladder.
func (c *Controller) NoteShed() {
	if c == nil {
		return
	}
	c.shed.Add(1)
}

// NoteRejected records a packet dropped by hard governance (MaxFlows
// cap, quarantine, scheduling failure); established marks quarantine
// drops of flows that had been admitted.
func (c *Controller) NoteRejected(established bool) {
	if c == nil {
		return
	}
	c.rejected.Add(1)
	if established {
		c.estOffered.Add(1)
	}
}

// --- observability ----------------------------------------------------

// State returns the current operating state.
func (c *Controller) State() State {
	if c == nil {
		return Healthy
	}
	return State(c.state.Load())
}

// Tier returns the current degradation tier (0–3).
func (c *Controller) Tier() int {
	if c == nil {
		return TierNone
	}
	return int(c.tier.Load())
}

// Rate returns the current EWMA offered-rate estimate in packets/second.
// Read it from the Offer goroutine (or quiesced) for an exact value.
func (c *Controller) Rate() float64 { return c.ewma }

// LedgerSnapshot returns the disposition counters.
func (c *Controller) LedgerSnapshot() Ledger {
	if c == nil {
		return Ledger{}
	}
	return Ledger{
		Offered:     c.offered.Load(),
		Admitted:    c.admitted.Load(),
		Shed:        c.shed.Load(),
		Sampled:     c.sampled.Load(),
		RateLimited: c.rateLimited.Load(),
		Rejected:    c.rejected.Load(),
		EstOffered:  c.estOffered.Load(),
		EstAdmitted: c.estAdmitted.Load(),
	}
}

// Balanced reports whether the accounting identity holds for l (true
// only once in-flight packets have drained).
func (l Ledger) Balanced() bool {
	return l.Offered == l.Admitted+l.Shed+l.Sampled+l.RateLimited+l.Rejected
}

// Transitions returns the retained transition log, oldest first (the
// last transRing entries).
func (c *Controller) Transitions() []Transition {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Transition, len(c.trans))
	copy(out, c.trans)
	return out
}

// register exports the controller through a metrics registry.
func (c *Controller) register(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCollector("admission", func(emit func(string, float64)) {
		l := c.LedgerSnapshot()
		emit("admission_offered_total", float64(l.Offered))
		emit("admission_admitted_total", float64(l.Admitted))
		emit("admission_shed_total", float64(l.Shed))
		emit("admission_sampled_total", float64(l.Sampled))
		emit("admission_rate_limited_total", float64(l.RateLimited))
		emit("admission_rejected_total", float64(l.Rejected))
		emit("admission_established_offered_total", float64(l.EstOffered))
		emit("admission_established_admitted_total", float64(l.EstAdmitted))
		emit("admission_state", float64(c.State()))
		emit("admission_tier", float64(c.Tier()))
		emit("admission_transitions_total", float64(c.transitions.Load()))
		emit("admission_ewma_rate", c.ewma)
		if c.prefix != nil {
			emit("admission_prefixes_tracked", float64(c.prefix.Prefixes()))
			emit("admission_prefix_evictions_total", float64(c.prefix.Evictions()))
		}
	})
}
