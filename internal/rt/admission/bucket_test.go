package admission

import "testing"

func TestBucketBasicRefill(t *testing.T) {
	b := NewBucket(10, 5) // 10 tokens/s, burst 5
	now := int64(0)
	// Starts full: 5 takes succeed, 6th fails.
	for i := 0; i < 5; i++ {
		if !b.Allow(now) {
			t.Fatalf("take %d refused from a full bucket", i)
		}
	}
	if b.Allow(now) {
		t.Fatal("take succeeded from an empty bucket")
	}
	// 100ms at 10/s = 1 token.
	now += 100 * 1e6
	if !b.Allow(now) {
		t.Fatal("refused after refill interval")
	}
	if b.Allow(now) {
		t.Fatal("second take minted a free token")
	}
}

func TestBucketFractionalCarry(t *testing.T) {
	// 1 token/s polled every 100ms: the 10th poll must succeed even
	// though every individual interval mints zero whole tokens.
	b := NewBucket(1, 1)
	now := int64(0)
	if !b.Allow(now) {
		t.Fatal("initial take refused")
	}
	granted := 0
	for i := 1; i <= 20; i++ {
		now += 100 * 1e6
		if b.Allow(now) {
			granted++
		}
	}
	if granted != 2 {
		t.Fatalf("2s at 1 token/s granted %d tokens, want 2", granted)
	}
}

func TestBucketBackwardsClock(t *testing.T) {
	b := NewBucket(100, 10)
	if !b.Allow(1e9) {
		t.Fatal("initial take refused")
	}
	before := b.Tokens(1e9)
	if got := b.Tokens(0); got != before {
		t.Fatalf("backwards clock changed balance: %d -> %d", before, got)
	}
	if got := b.Tokens(1e9 + 10*1e6); got != before+1 {
		t.Fatalf("refill after backwards step: got %d, want %d", got, before+1)
	}
}

func TestBucketHugeElapsedSaturates(t *testing.T) {
	b := NewBucket(1<<62, 1000)
	b.Allow(0) // init clock, take one
	// ~292 years of elapsed time at 2^62 tokens/s overflows any 64-bit
	// product; the bucket must saturate at burst, not wrap or stall.
	if got := b.Tokens(1 << 62); got != 1000 {
		t.Fatalf("huge elapsed: tokens = %d, want burst 1000", got)
	}
	if !b.Allow(1 << 62) {
		t.Fatal("saturated bucket refused a take")
	}
}

func TestBucketUnlimited(t *testing.T) {
	b := NewBucket(0, 1)
	for i := 0; i < 100; i++ {
		if !b.Allow(int64(i)) {
			t.Fatal("unlimited bucket refused")
		}
	}
}

func TestBucketAllowN(t *testing.T) {
	b := NewBucket(10, 10)
	if !b.AllowN(0, 10) {
		t.Fatal("burst-sized take refused from full bucket")
	}
	if b.AllowN(0, 1) {
		t.Fatal("take from drained bucket succeeded")
	}
	// All-or-nothing: 500ms mints 5; a take of 6 must fail and leave 5.
	if b.AllowN(500*1e6, 6) {
		t.Fatal("partial-balance take of 6 succeeded with 5 banked")
	}
	if got := b.Tokens(500 * 1e6); got != 5 {
		t.Fatalf("failed take changed balance: %d, want 5", got)
	}
	if !b.AllowN(500*1e6, 5) {
		t.Fatal("exact-balance take refused")
	}
}

func TestPrefixLimiterIsolation(t *testing.T) {
	pl := NewPrefixLimiter(1, 2, 16)
	a := v4(10, 0, 0, 1)
	a2 := v4(10, 0, 0, 99) // same /24 as a
	bAddr := v4(10, 0, 1, 1)
	now := int64(0)
	if !pl.Allow(now, a) || !pl.Allow(now, a2) {
		t.Fatal("fresh prefix refused within burst")
	}
	if pl.Allow(now, a) {
		t.Fatal("exhausted /24 admitted a third packet")
	}
	// A different /24 is untouched by a's exhaustion.
	if !pl.Allow(now, bAddr) {
		t.Fatal("sibling prefix refused after unrelated exhaustion")
	}
}

func TestPrefixLimiterLRUBound(t *testing.T) {
	pl := NewPrefixLimiter(1, 1, 4)
	for i := 0; i < 32; i++ {
		pl.Allow(int64(i), v4(10, 0, byte(i), 1))
	}
	if got := pl.Prefixes(); got != 4 {
		t.Fatalf("tracked prefixes = %d, want LRU bound 4", got)
	}
	if pl.Evictions() != 28 {
		t.Fatalf("evictions = %d, want 28", pl.Evictions())
	}
}

func TestPrefixKeySpacesDisjoint(t *testing.T) {
	// A v6 address whose leading bytes mirror a v4-mapped layout must not
	// collide with the tagged v4 key space.
	v4Key := prefixKey(v4(1, 2, 3, 4))
	var v6 [16]byte
	copy(v6[:], []byte{0x20, 0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4})
	if prefixKey(v6) == v4Key {
		t.Fatal("v4 /24 key collided with v6 /64 key")
	}
	if v4Key&(1<<63) == 0 {
		t.Fatal("v4 key missing tag bit")
	}
	if prefixKey(v6)&(1<<63) != 0 {
		t.Fatal("v6 key carries the v4 tag bit")
	}
}

func v4(a, b, c, d byte) [16]byte {
	var ip [16]byte
	ip[10], ip[11] = 0xFF, 0xFF
	ip[12], ip[13], ip[14], ip[15] = a, b, c, d
	return ip
}
