package admission

import "testing"

// FuzzBucketRefill holds the refill arithmetic's safety properties under
// arbitrary rate/burst and adversarial clock sequences (huge jumps,
// backwards steps, sub-token intervals):
//
//  1. no panic or overflow trap,
//  2. the balance stays within [0, burst],
//  3. the bucket never stalls: after enough quiet time to mint two
//     tokens, a take must succeed.
func FuzzBucketRefill(f *testing.F) {
	f.Add(int64(1000), int64(10), int64(0), uint16(100))
	f.Add(int64(1), int64(1), int64(1<<60), uint16(3))
	f.Add(int64(1<<62), int64(1<<30), int64(-5000), uint16(50))
	f.Add(int64(0), int64(0), int64(12345), uint16(7))
	f.Fuzz(func(t *testing.T, rate, burst, step int64, n uint16) {
		b := NewBucket(rate, burst)
		if b.burst < 1 {
			t.Fatalf("burst normalized to %d, want >= 1", b.burst)
		}
		now := int64(0)
		// A deterministic xorshift scrambles the step per iteration so one
		// fuzz input exercises many elapsed intervals, including negative.
		s := uint64(step) | 1
		for i := 0; i < int(n%512)+1; i++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			d := int64(s>>1) % (1 << 50)
			if s&1 == 0 {
				d = -d / 1024 // occasional backwards jumps, smaller scale
			}
			now += d
			b.Allow(now)
			if b.tokens < 0 || b.tokens > b.burst {
				t.Fatalf("balance %d outside [0, %d] (rate=%d now=%d)", b.tokens, b.burst, rate, now)
			}
		}
		if rate <= 0 {
			return // unlimited: nothing to stall
		}
		// No-stall: advance far enough to mint >= 2 whole tokens past any
		// fractional remainder. Quiet time is measured from the bucket's
		// own clock (a backwards caller jump leaves lastNs ahead of now,
		// and the bucket rightly waits for the clock to catch up).
		quiet := int64(2 * (uint64(nsPerSec)/uint64(rate) + 1))
		base := now
		if b.lastNs > base {
			base = b.lastNs
		}
		if base > (1<<62) || base < -(1<<62) {
			base = 0
			b.lastNs = 0
		}
		if !b.Allow(base + quiet) {
			t.Fatalf("bucket stalled: no token after %dns quiet (rate=%d tokens=%d)", quiet, rate, b.tokens)
		}
	})
}
