// Token buckets for smoothed ingest admission. The governance layer the
// pipeline had before this package was all hard edges — MaxFlows caps,
// DropNew/EvictOldest — which bound state but turn every burst into a
// cliff. A token bucket instead admits at a sustained rate with a bounded
// burst allowance, so short spikes ride through on banked tokens and only
// sustained overload is refused (SNAP's point that stateful packet
// programs need an explicit model of how state and work are bounded).
//
// The arithmetic is pure integer with 128-bit intermediates: adversarial
// timestamps (decades of elapsed trace time, multi-gigahertz rates) must
// neither overflow into a stalled bucket nor mint free tokens. The fuzz
// target FuzzBucketRefill holds these properties under arbitrary
// rate/burst/elapsed sequences.
//
// Buckets are driven by caller-supplied clocks (trace time in the
// pipeline), never wall time, so admission decisions are deterministic
// for a given input — the property the soak harness's seed-determinism
// invariant checks end to end. They are intentionally NOT safe for
// concurrent use: the pipeline consults them only from the single Feed
// goroutine.

package admission

import "math/bits"

const nsPerSec = 1_000_000_000

// Bucket is a deterministic token bucket: Rate tokens accrue per second
// of caller-supplied time, up to Burst banked. Rate <= 0 disables
// enforcement (Allow always succeeds).
type Bucket struct {
	rate   int64 // tokens per second; <= 0 = unlimited
	burst  int64
	tokens int64
	lastNs int64 // clock of the last refill
	inited bool
}

// NewBucket returns a bucket that refills at rate tokens/second and banks
// at most burst (burst < 1 is raised to 1). The bucket starts full.
func NewBucket(rate, burst int64) *Bucket {
	if burst < 1 {
		burst = 1
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst}
}

// Allow takes one token at time nowNs, reporting whether one was
// available.
func (b *Bucket) Allow(nowNs int64) bool { return b.AllowN(nowNs, 1) }

// AllowN takes n tokens at time nowNs; the take is all-or-nothing.
func (b *Bucket) AllowN(nowNs int64, n int64) bool {
	if b.rate <= 0 {
		return true
	}
	if n < 0 {
		n = 0
	}
	b.refill(nowNs)
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Tokens reports the balance after refilling to nowNs (burst for an
// unlimited bucket).
func (b *Bucket) Tokens(nowNs int64) int64 {
	if b.rate <= 0 {
		return b.burst
	}
	b.refill(nowNs)
	return b.tokens
}

// refill converts elapsed time into tokens. Whole tokens only: lastNs
// advances by exactly the nanoseconds consumed, so fractional progress
// carries to the next call instead of being lost (a bucket polled faster
// than its token period must still fill).
func (b *Bucket) refill(nowNs int64) {
	if !b.inited {
		b.inited = true
		b.lastNs = nowNs
		return
	}
	elapsed := nowNs - b.lastNs
	if elapsed <= 0 {
		return // clock jumped backwards: no refill, no state damage
	}
	// add = elapsed * rate / 1e9, 128-bit intermediate so huge
	// elapsed×rate products saturate instead of wrapping.
	hi, lo := bits.Mul64(uint64(elapsed), uint64(b.rate))
	if hi >= nsPerSec {
		// Quotient exceeds 64 bits: the bucket is unconditionally full.
		b.tokens = b.burst
		b.lastNs = nowNs
		return
	}
	add, _ := bits.Div64(hi, lo, nsPerSec)
	if add == 0 {
		return // sub-token interval: keep lastNs so progress accumulates
	}
	if add >= uint64(b.burst) || b.tokens >= b.burst-int64(add) {
		b.tokens = b.burst
		b.lastNs = nowNs
		return
	}
	b.tokens += int64(add)
	// Consume only the time that minted whole tokens. usedNs <= elapsed
	// by construction, and since usedNs = add*1e9/rate < 2^63, the high
	// word of add*1e9 is < rate — Div64's precondition holds.
	uhi, ulo := bits.Mul64(add, nsPerSec)
	usedNs, _ := bits.Div64(uhi, ulo, uint64(b.rate))
	b.lastNs += int64(usedNs)
}
