// Per-source-prefix rate limiting: one bucket per /24 (IPv4) or /64
// (IPv6) source prefix, bounded by an LRU so a scan across the whole
// address space cannot turn the limiter itself into a memory attack.
// Like Bucket, it is single-goroutine (the pipeline's Feed path) and
// driven by caller time.

package admission

import "container/list"

// PrefixLimiter rations ingest per source prefix. A source whose prefix
// exhausts its bucket is refused while every other prefix is untouched —
// the per-origin half of ingest smoothing, aimed at single-origin floods
// that a global bucket would let crowd out everyone else.
type PrefixLimiter struct {
	rate, burst int64
	max         int
	entries     map[uint64]*prefixEntry
	lru         *list.List // *prefixEntry, front = most recently used
	evictions   uint64
}

type prefixEntry struct {
	key  uint64
	b    Bucket
	elem *list.Element
}

// NewPrefixLimiter builds a limiter of rate tokens/second and burst per
// prefix, tracking at most maxEntries prefixes (least-recently-used
// prefixes are evicted beyond that; default 4096 when maxEntries < 1).
func NewPrefixLimiter(rate, burst int64, maxEntries int) *PrefixLimiter {
	if maxEntries < 1 {
		maxEntries = 4096
	}
	return &PrefixLimiter{
		rate:    rate,
		burst:   burst,
		max:     maxEntries,
		entries: make(map[uint64]*prefixEntry),
		lru:     list.New(),
	}
}

// Allow takes one token from src's prefix bucket at time nowNs.
func (pl *PrefixLimiter) Allow(nowNs int64, src [16]byte) bool {
	if pl.rate <= 0 {
		return true
	}
	key := prefixKey(src)
	e, ok := pl.entries[key]
	if !ok {
		if len(pl.entries) >= pl.max {
			back := pl.lru.Back()
			old := back.Value.(*prefixEntry)
			delete(pl.entries, old.key)
			pl.lru.Remove(back)
			pl.evictions++
		}
		e = &prefixEntry{key: key, b: Bucket{rate: pl.rate, burst: pl.burst, tokens: pl.burst}}
		e.elem = pl.lru.PushFront(e)
		pl.entries[key] = e
	} else {
		pl.lru.MoveToFront(e.elem)
	}
	return e.b.Allow(nowNs)
}

// Prefixes reports how many prefixes are currently tracked.
func (pl *PrefixLimiter) Prefixes() int { return len(pl.entries) }

// Evictions reports how many prefixes the LRU bound displaced.
func (pl *PrefixLimiter) Evictions() uint64 { return pl.evictions }

// prefixKey maps a 16-byte address to its rate-limiting prefix: the /24
// for IPv4-mapped addresses, the /64 otherwise. The IPv4 case is tagged
// so a v4 /24 can never collide with a v6 /64 sharing the same leading
// bytes.
func prefixKey(src [16]byte) uint64 {
	if src[10] == 0xFF && src[11] == 0xFF {
		return 1<<63 | uint64(src[12])<<16 | uint64(src[13])<<8 | uint64(src[14])
	}
	var k uint64
	for i := 0; i < 8; i++ {
		k = k<<8 | uint64(src[i])
	}
	return k &^ (1 << 63) // clear the v4 tag bit so the spaces stay disjoint
}
