package admission

import (
	"testing"

	"hilti/internal/pkt/flow"
	"hilti/internal/rt/metrics"
	"hilti/internal/rt/timer"
)

func key(srcPort, dstPort uint16) flow.Key {
	return flow.Key{
		SrcIP:   v4(10, 0, 0, 1),
		DstIP:   v4(172, 16, 0, 1),
		SrcPort: srcPort,
		DstPort: dstPort,
		Proto:   6,
	}
}

// drive offers packets at the given rate (pkts/s of trace time) for dur,
// starting at startNs, returning the clock after the last packet.
func drive(c *Controller, startNs int64, rate float64, dur timer.Interval) int64 {
	step := int64(float64(nsPerSec) / rate)
	now := startNs
	for now < startNs+int64(dur) {
		c.Offer(now, key(40000, 80), true)
		now += step
	}
	return now
}

func TestStateMachineEscalatesAndRecovers(t *testing.T) {
	c := NewController(Config{TargetRate: 1000})
	// 3x overload: Healthy must give way to Shedding, and the extreme
	// ratio (>= 2.5) must engage the sampling tier.
	now := drive(c, 0, 3000, timer.Seconds(5))
	if c.State() != Shedding {
		t.Fatalf("after 5s of 3x overload: state %v, want shedding", c.State())
	}
	if c.Tier() != TierSampling {
		t.Fatalf("tier %d under 3x overload, want %d", c.Tier(), TierSampling)
	}
	// Load subsides to 10%: Recovering, then Healthy after the dwell.
	now = drive(c, now, 100, timer.Seconds(2))
	if s := c.State(); s != Recovering {
		t.Fatalf("after load subsided: state %v, want recovering", s)
	}
	if c.Tier() != TierShedLow {
		t.Fatalf("recovering tier %d, want %d (budgets restored, shed-low retained)", c.Tier(), TierShedLow)
	}
	drive(c, now, 100, timer.Seconds(5))
	if s := c.State(); s != Healthy {
		t.Fatalf("after recovery dwell: state %v, want healthy", s)
	}
	if c.Tier() != TierNone {
		t.Fatalf("healthy tier %d, want 0", c.Tier())
	}
	// The transition log must end with the recovery walk. (A steep ramp
	// may cross both escalation thresholds inside one window roll, so
	// the Degraded stop on the way up is not guaranteed.)
	var states []State
	for _, tr := range c.Transitions() {
		if len(states) == 0 || states[len(states)-1] != tr.To {
			states = append(states, tr.To)
		}
	}
	tail := []State{Shedding, Recovering, Healthy}
	if len(states) < len(tail) {
		t.Fatalf("transition states %v, want suffix %v", states, tail)
	}
	for i := range tail {
		if states[len(states)-len(tail)+i] != tail[i] {
			t.Fatalf("transition states %v, want suffix %v", states, tail)
		}
	}
}

func TestHysteresisHoldsDegradedNearThreshold(t *testing.T) {
	c := NewController(Config{TargetRate: 1000})
	now := drive(c, 0, 1200, timer.Seconds(3))
	if c.State() != Degraded {
		t.Fatalf("1.2x overload: state %v, want degraded", c.State())
	}
	// 0.9x sits between RecoverRatio (0.85) and DegradedRatio (1.0):
	// the machine must hold Degraded, not flap.
	drive(c, now, 900, timer.Seconds(3))
	if c.State() != Degraded {
		t.Fatalf("0.9x after overload: state %v, want degraded (hysteresis)", c.State())
	}
}

func TestOnTierHookFires(t *testing.T) {
	c := NewController(Config{TargetRate: 1000})
	var tiers []int
	c.OnTier(func(tier int) { tiers = append(tiers, tier) })
	now := drive(c, 0, 3000, timer.Seconds(5))
	drive(c, now, 50, timer.Seconds(10))
	if len(tiers) == 0 {
		t.Fatal("OnTier hook never fired")
	}
	if tiers[len(tiers)-1] != TierNone {
		t.Fatalf("final tier hook %d, want 0 after recovery", tiers[len(tiers)-1])
	}
	saw3 := false
	for _, tr := range tiers {
		if tr == TierSampling {
			saw3 = true
		}
	}
	if !saw3 {
		t.Fatal("sampling tier never reached under 3x overload")
	}
}

func TestSamplingSparesHighClass(t *testing.T) {
	// TargetRate 1 makes any traffic an extreme overload, pinning the
	// controller at the sampling tier after the first window rolls.
	c := NewController(Config{TargetRate: 1, SampleN: 4})
	now := drive(c, 0, 1000, timer.Seconds(1)) // warm up to tier 3
	if c.Tier() != TierSampling {
		t.Fatalf("warmup tier %d, want %d", c.Tier(), TierSampling)
	}
	normalAdmit, highAdmit := 0, 0
	const n = 1000
	for i := 0; i < n; i++ {
		now += 1e6
		if d := c.Offer(now, key(40000, 80), true); !d.Drop {
			normalAdmit++
		}
		now += 1e6
		if d := c.Offer(now, key(40000, 53), true); !d.Drop {
			highAdmit++
		}
	}
	if highAdmit != n {
		t.Fatalf("high-class admits %d/%d; sampling must spare High", highAdmit, n)
	}
	if normalAdmit < n/8 || normalAdmit > n/2 {
		t.Fatalf("normal-class admits %d/%d, want ~1 in %d", normalAdmit, n, c.cfg.SampleN)
	}
	l := c.LedgerSnapshot()
	if l.Sampled == 0 {
		t.Fatal("ledger recorded no sampled drops")
	}
}

func TestGlobalBucketRateLimits(t *testing.T) {
	c := NewController(Config{GlobalRate: 10, GlobalBurst: 5})
	drops := 0
	for i := 0; i < 50; i++ {
		if d := c.Offer(0, key(40000, 80), true); d.Drop {
			drops++
		}
	}
	if drops != 45 {
		t.Fatalf("burst-5 bucket at one instant dropped %d/50, want 45", drops)
	}
	l := c.LedgerSnapshot()
	if l.RateLimited != 45 || l.Offered != 50 {
		t.Fatalf("ledger %+v, want 45 rate-limited of 50 offered", l)
	}
}

func TestLedgerIdentity(t *testing.T) {
	c := NewController(Config{TargetRate: 1, GlobalRate: 500, GlobalBurst: 50, SampleN: 4})
	now := int64(0)
	for i := 0; i < 5000; i++ {
		now += 2 * 1e6 // 500/s offered
		d := c.Offer(now, key(uint16(40000+i%100), 80), true)
		if d.Drop {
			continue // already ledgered as RateLimited or Sampled
		}
		// Emulate the worker-side dispositions.
		switch i % 10 {
		case 0:
			c.NoteShed()
		case 1:
			c.NoteRejected(i%20 == 1)
		default:
			c.NoteAdmitted(i%3 == 0)
		}
	}
	l := c.LedgerSnapshot()
	if !l.Balanced() {
		t.Fatalf("ledger identity broken: %+v (sum %d vs offered %d)",
			l, l.Admitted+l.Shed+l.Sampled+l.RateLimited+l.Rejected, l.Offered)
	}
	if l.EstAdmitted > l.EstOffered {
		t.Fatalf("established admitted %d exceeds offered %d", l.EstAdmitted, l.EstOffered)
	}
}

func TestDefaultClassify(t *testing.T) {
	if got := DefaultClassify(flow.Key{}, false); got != Low {
		t.Fatalf("unkeyable frame class %v, want low", got)
	}
	if got := DefaultClassify(key(40000, 53), true); got != High {
		t.Fatalf("DNS class %v, want high", got)
	}
	if got := DefaultClassify(key(53, 40000), true); got != High {
		t.Fatalf("DNS (src 53) class %v, want high", got)
	}
	if got := DefaultClassify(key(40000, 80), true); got != Normal {
		t.Fatalf("HTTP class %v, want normal", got)
	}
}

func TestShedNewFlowLadder(t *testing.T) {
	cases := []struct {
		tier  int
		class Class
		want  bool
	}{
		{TierNone, Low, false},
		{TierShedLow, Low, true},
		{TierShedLow, Normal, false},
		{TierShedLow, High, false},
		{TierShrink, Low, true},
		{TierShrink, Normal, true},
		{TierShrink, High, false},
		{TierSampling, Normal, true},
		{TierSampling, High, false},
	}
	for _, tc := range cases {
		if got := ShedNewFlow(tc.tier, tc.class); got != tc.want {
			t.Errorf("ShedNewFlow(%d, %v) = %v, want %v", tc.tier, tc.class, got, tc.want)
		}
	}
	if IdleShift(TierShrink) != 1 || IdleShift(TierShedLow) != 0 {
		t.Error("IdleShift: want 1 at tier 2+, 0 below")
	}
}

func TestTrafficGapDecaysEstimate(t *testing.T) {
	c := NewController(Config{TargetRate: 1000})
	now := drive(c, 0, 3000, timer.Seconds(3))
	if c.State() == Healthy {
		t.Fatal("overload did not leave Healthy")
	}
	// A minute of silence, then one packet: the estimate must have
	// decayed to ~0, not held the stale overload reading.
	c.Offer(now+60*int64(timer.Seconds(1)), key(40000, 80), true)
	if c.Rate() > 1 {
		t.Fatalf("EWMA after 60s gap = %g, want ~0", c.Rate())
	}
}

func TestNilControllerNotesAreSafe(t *testing.T) {
	var c *Controller
	c.NoteAdmitted(true)
	c.NoteShed()
	c.NoteRejected(false)
	if c.State() != Healthy || c.Tier() != TierNone {
		t.Fatal("nil controller must read as healthy/tier 0")
	}
	if l := c.LedgerSnapshot(); l.Offered != 0 {
		t.Fatal("nil controller ledger must be zero")
	}
	if c.Transitions() != nil {
		t.Fatal("nil controller transitions must be nil")
	}
}

func TestMetricsCollector(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewController(Config{
		TargetRate: 1000, PrefixRate: 100000, PrefixBurst: 1000,
		Metrics: reg,
	})
	drive(c, 0, 3000, timer.Seconds(2))
	samples := reg.Gather()
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	if off := byName["admission_offered_total"]; off < 6000 || off > 6010 {
		t.Fatalf("offered gauge %v, want ~6000", off)
	}
	if byName["admission_state"] == 0 {
		t.Fatal("state gauge still healthy under 3x overload")
	}
	if _, ok := byName["admission_prefixes_tracked"]; !ok {
		t.Fatal("prefix gauges missing with prefix limiter enabled")
	}
	if byName["admission_transitions_total"] == 0 {
		t.Fatal("transition counter never moved")
	}
}
