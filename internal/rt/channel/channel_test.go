package channel

import (
	"errors"
	"sync"
	"testing"

	"hilti/internal/rt/values"
)

func TestFIFO(t *testing.T) {
	c := New(0)
	for i := 0; i < 5; i++ {
		c.Write(values.Int(int64(i)))
	}
	for i := 0; i < 5; i++ {
		v, err := c.Read()
		if err != nil || v.AsInt() != int64(i) {
			t.Fatalf("read %d: %v %v", i, v, err)
		}
	}
}

func TestTryReadEmpty(t *testing.T) {
	c := New(0)
	if _, err := c.TryRead(); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("got %v", err)
	}
}

func TestBoundedTryWrite(t *testing.T) {
	c := New(2)
	c.TryWrite(values.Int(1))
	c.TryWrite(values.Int(2))
	if err := c.TryWrite(values.Int(3)); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("got %v", err)
	}
	c.Read()
	if err := c.TryWrite(values.Int(3)); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

func TestDeepCopyOnSend(t *testing.T) {
	c := New(0)
	b := values.BytesFrom([]byte("abc"))
	c.Write(b)
	// Mutate the sender's copy after the send.
	b.AsBytes().Unfreeze()
	b.AsBytes().Append([]byte("XYZ"))
	got, _ := c.Read()
	if got.AsBytes().String() != "abc" {
		t.Fatalf("receiver saw sender mutation: %q", got.AsBytes().String())
	}
}

func TestBlockingHandoff(t *testing.T) {
	c := New(0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := c.Read() // blocks until writer arrives
		if err != nil || v.AsInt() != 7 {
			t.Errorf("got %v %v", v, err)
		}
	}()
	c.Write(values.Int(7))
	wg.Wait()
}

func TestClose(t *testing.T) {
	c := New(0)
	c.Write(values.Int(1))
	c.Close()
	if err := c.Write(values.Int(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	// Reads drain the buffer, then fail.
	if v, err := c.Read(); err != nil || v.AsInt() != 1 {
		t.Fatalf("drain: %v %v", v, err)
	}
	if _, err := c.Read(); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after drain: %v", err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	c := New(16)
	const producers, perProducer = 4, 250
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				c.Write(values.Int(1))
			}
		}()
	}
	done := make(chan int64)
	go func() {
		var sum int64
		for i := 0; i < producers*perProducer; i++ {
			v, err := c.Read()
			if err != nil {
				t.Error(err)
				break
			}
			sum += v.AsInt()
		}
		done <- sum
	}()
	wg.Wait()
	if sum := <-done; sum != producers*perProducer {
		t.Fatalf("sum = %d", sum)
	}
}

// BenchmarkChannelDeepCopy is the DESIGN.md ablation quantifying HILTI's
// deep-copy message-passing cost.
func BenchmarkChannelDeepCopy(b *testing.B) {
	c := New(0)
	v := values.TupleVal(values.BytesFrom(make([]byte, 128)), values.Int(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Write(v)
		c.Read()
	}
}

func BenchmarkChannelScalar(b *testing.B) {
	c := New(0)
	v := values.Int(42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Write(v)
		c.Read()
	}
}
