// Package channel implements HILTI's channel type: thread-safe queues for
// transferring objects between threads (paper §3.2). Following HILTI's
// strict data-isolation model, every send deep-copies mutable data, so the
// sender never observes modifications the receiver makes — the property
// that lets HILTI guarantee race-free concurrent execution without locks in
// user code.
package channel

import (
	"errors"
	"sync"

	"hilti/internal/rt/values"
)

// ErrClosed is returned when operating on a closed channel.
var ErrClosed = errors.New("channel: closed")

// ErrWouldBlock is returned by the non-blocking variants when the
// operation cannot proceed immediately.
var ErrWouldBlock = errors.New("channel: would block")

// Channel is a FIFO of values. Capacity 0 means unbounded (HILTI's
// default); otherwise writers block when the channel is full.
type Channel struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	buf      []values.Value
	cap      int
	closed   bool
}

// New creates a channel; capacity 0 means unbounded.
func New(capacity int) *Channel {
	c := &Channel{cap: capacity}
	c.notEmpty = sync.NewCond(&c.mu)
	c.notFull = sync.NewCond(&c.mu)
	return c
}

// TypeName implements the runtime Object interface.
func (c *Channel) TypeName() string { return "channel" }

// Len returns the number of queued values.
func (c *Channel) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}

// Write enqueues a deep copy of v, blocking while a bounded channel is full
// (HILTI's channel.write).
func (c *Channel) Write(v values.Value) error {
	cp := values.DeepCopy(v)
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.cap > 0 && len(c.buf) >= c.cap && !c.closed {
		c.notFull.Wait()
	}
	if c.closed {
		return ErrClosed
	}
	c.buf = append(c.buf, cp)
	c.notEmpty.Signal()
	return nil
}

// TryWrite enqueues without blocking (HILTI's channel.try_write).
func (c *Channel) TryWrite(v values.Value) error {
	cp := values.DeepCopy(v)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.cap > 0 && len(c.buf) >= c.cap {
		return ErrWouldBlock
	}
	c.buf = append(c.buf, cp)
	c.notEmpty.Signal()
	return nil
}

// Read dequeues the oldest value, blocking while the channel is empty
// (HILTI's channel.read).
func (c *Channel) Read() (values.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.buf) == 0 && !c.closed {
		c.notEmpty.Wait()
	}
	if len(c.buf) == 0 {
		return values.Nil, ErrClosed
	}
	return c.pop(), nil
}

// TryRead dequeues without blocking (HILTI's channel.try_read).
func (c *Channel) TryRead() (values.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.buf) == 0 {
		if c.closed {
			return values.Nil, ErrClosed
		}
		return values.Nil, ErrWouldBlock
	}
	return c.pop(), nil
}

func (c *Channel) pop() values.Value {
	v := c.buf[0]
	c.buf[0] = values.Nil
	c.buf = c.buf[1:]
	if len(c.buf) == 0 {
		c.buf = nil
	}
	c.notFull.Signal()
	return v
}

// Close marks the channel closed: writes fail, reads drain then fail.
func (c *Channel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.notEmpty.Broadcast()
	c.notFull.Broadcast()
}
