package migrate

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// --- table ---------------------------------------------------------------------

func TestTableBasics(t *testing.T) {
	tb, err := NewTable(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Buckets() != 64 {
		t.Fatalf("buckets = %d", tb.Buckets())
	}
	counts := tb.Counts(3)
	for i, c := range counts {
		if c < 21 || c > 22 {
			t.Fatalf("instance %d owns %d buckets, want 21..22", i, c)
		}
	}
	// Every vid maps to a valid bucket and ownership is stable.
	for vid := uint64(0); vid < 10000; vid += 97 {
		b := tb.BucketOf(vid)
		if b < 0 || b >= 64 {
			t.Fatalf("vid %d -> bucket %d", vid, b)
		}
		if tb.Owner(vid) != tb.OwnerOf(b) {
			t.Fatalf("owner mismatch for vid %d", vid)
		}
	}
	e0 := tb.Epoch()
	tb.Flip(5, 2)
	if tb.Epoch() != e0+1 || tb.OwnerOf(5) != 2 {
		t.Fatalf("flip: epoch %d owner %d", tb.Epoch(), tb.OwnerOf(5))
	}
}

func TestTableRejectsBadShapes(t *testing.T) {
	for _, tc := range []struct{ b, n int }{{0, 1}, {3, 1}, {8, 0}, {4, 5}} {
		if _, err := NewTable(tc.b, tc.n); err == nil {
			t.Fatalf("NewTable(%d, %d) accepted", tc.b, tc.n)
		}
	}
	if tb, err := NewTable(1, 1); err != nil || tb.BucketOf(123456789) != 0 {
		t.Fatalf("single-bucket table broken: %v", err)
	}
}

func TestTableRebalance(t *testing.T) {
	tb, _ := NewTable(64, 1)
	flips := tb.Rebalance(4) // scale out 1 -> 4
	for _, f := range flips {
		tb.Flip(f[0], f[1])
	}
	for i, c := range tb.Counts(4) {
		if c != 16 {
			t.Fatalf("after scale-out instance %d owns %d", i, c)
		}
	}
	// Scale in 4 -> 2: buckets owned by retired instances 2,3 must move.
	flips = tb.Rebalance(2)
	for _, f := range flips {
		tb.Flip(f[0], f[1])
	}
	counts := tb.Counts(2)
	if counts[0]+counts[1] != 64 {
		t.Fatalf("retired instances still own buckets: %v", counts)
	}
}

// --- frames --------------------------------------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	frames := [][]byte{
		EncodeBegin(Begin{ID: 7, Epoch: 9, Bucket: 13}),
		EncodeState(State{ID: 7, Seq: 1, Blob: []byte("state blob")}),
		EncodeActivate(Activate{ID: 7, Frames: 1, Sum: 42}),
		EncodeAbort(Abort{ID: 7}),
		EncodeAck(Ack{ID: 7, Status: AckOK, Applied: 3}),
	}
	stream := bytes.Join(frames, nil)
	kinds := []byte{FrameBegin, FrameState, FrameActivate, FrameAbort, FrameAck}
	for i, want := range kinds {
		kind, payload, rest, err := ParseFrame(stream)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != want {
			t.Fatalf("frame %d: kind %d, want %d", i, kind, want)
		}
		switch kind {
		case FrameState:
			m, err := DecodeState(payload)
			if err != nil || string(m.Blob) != "state blob" || m.Seq != 1 {
				t.Fatalf("state decode: %+v %v", m, err)
			}
		case FrameAck:
			m, err := DecodeAck(payload)
			if err != nil || m.Applied != 3 {
				t.Fatalf("ack decode: %+v %v", m, err)
			}
		}
		stream = rest
	}
	if len(stream) != 0 {
		t.Fatalf("%d trailing bytes", len(stream))
	}
}

func TestFrameRejectsDamage(t *testing.T) {
	frame := EncodeState(State{ID: 1, Seq: 1, Blob: bytes.Repeat([]byte("x"), 100)})
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x01
		if _, _, _, err := ParseFrame(bad); err == nil {
			// A flipped length byte may still parse if the claimed frame is
			// a prefix whose CRC happens to match — astronomically unlikely;
			// any success here is a real bug.
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	if _, _, _, err := ParseFrame(frame[:5]); !errors.Is(err, ErrFrameShort) {
		t.Fatalf("truncated: %v", err)
	}
}

// --- protocol ------------------------------------------------------------------

// memTransport delivers frames directly to an endpoint, with optional
// stall/down scheduling by send index.
type memTransport struct {
	ep    *Endpoint
	sends int
	stall map[int]bool
	down  bool
}

func (m *memTransport) Send(frame []byte) ([]byte, error) {
	idx := m.sends
	m.sends++
	if m.down {
		return nil, ErrPeerDown
	}
	if m.stall[idx] {
		return nil, ErrStall
	}
	return m.ep.Handle(frame), nil
}

// memSink records installs/discards.
type memSink struct {
	prepared  int
	installed [][]byte
	discards  int
	refuse    bool
	failInst  bool
}

func (s *memSink) Prepare(id uint64, bucket int) error {
	if s.refuse {
		return errors.New("refused")
	}
	s.prepared++
	return nil
}

func (s *memSink) Install(id uint64, blobs [][]byte) (int, error) {
	if s.failInst {
		return 0, errors.New("install failed")
	}
	s.installed = blobs
	return len(blobs), nil
}

func (s *memSink) Discard(id uint64) { s.discards++; s.installed = nil }

type memSource struct {
	blobs  [][]byte
	forgot bool
}

func (s *memSource) Snapshot() ([][]byte, error) { return s.blobs, nil }
func (s *memSource) Forget() error               { s.forgot = true; return nil }

func blobs(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("blob-%d", i))
	}
	return out
}

func TestHandoffCleanCommit(t *testing.T) {
	sink := &memSink{}
	tr := &memTransport{ep: NewEndpoint(sink)}
	src := &memSource{blobs: blobs(5)}
	res := Run(src, tr, Options{ID: 1, Bucket: 3})
	if !res.Committed || res.Step != StepCommit || res.Blobs != 5 || res.Flows != 5 {
		t.Fatalf("result %+v", res)
	}
	if !src.forgot {
		t.Fatal("source did not forget after commit")
	}
	if len(sink.installed) != 5 || string(sink.installed[4]) != "blob-4" {
		t.Fatalf("sink got %d blobs", len(sink.installed))
	}
}

func TestHandoffStallRetries(t *testing.T) {
	sink := &memSink{}
	// Stall the first two sends; retries must carry the session through.
	tr := &memTransport{ep: NewEndpoint(sink), stall: map[int]bool{0: true, 1: true}}
	src := &memSource{blobs: blobs(2)}
	res := Run(src, tr, Options{ID: 2, Bucket: 0})
	if !res.Committed {
		t.Fatalf("stalls not retried: %+v", res)
	}
	if res.Attempts < 5 { // 3 frames + 2 stalls... at least
		t.Fatalf("attempts = %d", res.Attempts)
	}
}

func TestHandoffAbortsOnDeadPeer(t *testing.T) {
	sink := &memSink{}
	tr := &memTransport{ep: NewEndpoint(sink), down: true}
	src := &memSource{blobs: blobs(2)}
	res := Run(src, tr, Options{ID: 3})
	if res.Committed || src.forgot {
		t.Fatalf("committed against a dead peer: %+v", res)
	}
	if len(sink.installed) != 0 {
		t.Fatal("dead peer installed blobs")
	}
}

func TestHandoffAbortsWhenRefused(t *testing.T) {
	sink := &memSink{refuse: true}
	tr := &memTransport{ep: NewEndpoint(sink)}
	src := &memSource{blobs: blobs(1)}
	res := Run(src, tr, Options{ID: 4})
	if res.Committed || res.Step != StepBegin || !errors.Is(res.Err, ErrRefused) {
		t.Fatalf("result %+v", res)
	}
}

func TestHandoffInstallFailureAborts(t *testing.T) {
	sink := &memSink{failInst: true}
	ep := NewEndpoint(sink)
	tr := &memTransport{ep: ep}
	src := &memSource{blobs: blobs(3)}
	res := Run(src, tr, Options{ID: 5})
	if res.Committed || src.forgot {
		t.Fatalf("committed through failed install: %+v", res)
	}
	ep.AbortSession(5)
	if id, _ := ep.Session(); id != 0 {
		t.Fatal("session survived abort")
	}
}

// faultAt injects one fault kind at one step/attempt.
type faultAt struct {
	step    Step
	attempt int
	kind    FaultKind
}

func (f faultAt) Fault(step Step, attempt int) FaultKind {
	if step == f.step && attempt == f.attempt {
		return f.kind
	}
	return FaultNone
}

// TestHandoffFaultMatrix exercises every (step, fault-kind) cut point and
// asserts the session resolves to exactly one owner.
func TestHandoffFaultMatrix(t *testing.T) {
	for step := StepBegin; step < NumSteps; step++ {
		for _, kind := range []FaultKind{FaultKill, FaultStall, FaultCorrupt} {
			t.Run(fmt.Sprintf("%s_%s", step, kind), func(t *testing.T) {
				sink := &memSink{}
				ep := NewEndpoint(sink)
				tr := &memTransport{ep: ep}
				src := &memSource{blobs: blobs(4)}
				res := Run(src, tr, Options{
					ID:       99,
					Injector: faultAt{step: step, attempt: 0, kind: kind},
				})
				// Single transient faults (stall/corrupt) must be absorbed
				// by retry; kills abort (except at commit, which resolves
				// forward because the target already acked).
				wantCommit := kind != FaultKill || step == StepCommit
				if res.Committed != wantCommit {
					t.Fatalf("committed=%v want %v (%+v)", res.Committed, wantCommit, res)
				}
				if res.Committed {
					if !src.forgot || len(sink.installed) != 4 {
						t.Fatalf("committed but state inconsistent: forgot=%v installed=%d",
							src.forgot, len(sink.installed))
					}
				} else {
					// Aborted: the cluster's timeout path clears the target.
					ep.AbortSession(99)
					if src.forgot {
						t.Fatal("aborted but source forgot")
					}
					if len(sink.installed) != 0 {
						t.Fatal("aborted but target kept an install")
					}
					if id, _ := ep.Session(); id != 0 {
						t.Fatal("aborted but session open")
					}
				}
			})
		}
	}
}

// TestHandoffExhaustedRetriesAbort drives persistent stalls through the
// whole retry budget.
func TestHandoffExhaustedRetriesAbort(t *testing.T) {
	always := InjectorFunc(func(step Step, attempt int) FaultKind {
		if step == StepTransfer {
			return FaultStall
		}
		return FaultNone
	})
	sink := &memSink{}
	ep := NewEndpoint(sink)
	tr := &memTransport{ep: ep}
	src := &memSource{blobs: blobs(2)}
	res := Run(src, tr, Options{ID: 6, MaxAttempts: 3, Injector: always})
	if res.Committed || !errors.Is(res.Err, ErrRetries) {
		t.Fatalf("result %+v", res)
	}
	ep.AbortSession(6)
	if len(sink.installed) != 0 {
		t.Fatal("retry exhaustion leaked an install")
	}
}

// TestHandoffRandomChaos runs seeded random fault schedules; every
// session must end committed-with-consistent-state or aborted-with-
// source-retained — never in between.
func TestHandoffRandomChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0FFEE))
	for trial := 0; trial < 500; trial++ {
		sched := map[[2]int]FaultKind{}
		for n := rng.Intn(4); n > 0; n-- {
			step := rng.Intn(int(NumSteps))
			attempt := rng.Intn(3)
			kind := FaultKind(1 + rng.Intn(3))
			sched[[2]int{step, attempt}] = kind
		}
		inj := InjectorFunc(func(step Step, attempt int) FaultKind {
			return sched[[2]int{int(step), attempt}]
		})
		sink := &memSink{}
		ep := NewEndpoint(sink)
		tr := &memTransport{ep: ep}
		src := &memSource{blobs: blobs(1 + rng.Intn(5))}
		res := Run(src, tr, Options{ID: uint64(trial + 1), Injector: inj})
		if res.Committed {
			if !src.forgot || len(sink.installed) != len(src.blobs) {
				t.Fatalf("trial %d: committed, forgot=%v installed=%d/%d",
					trial, src.forgot, len(sink.installed), len(src.blobs))
			}
		} else {
			ep.AbortSession(uint64(trial + 1))
			if src.forgot || len(sink.installed) != 0 {
				t.Fatalf("trial %d: aborted, forgot=%v installed=%d",
					trial, src.forgot, len(sink.installed))
			}
		}
	}
}

func TestLedgerIdentity(t *testing.T) {
	l := NewLedger()
	l.Commit(0, 1, 10)
	l.Commit(1, 0, 4)
	l.Abort(0, 1)
	// Instance 0: opened 20, closed 6, migrated out 10, in 4 -> live 8.
	if err := l.CheckOwnership(0, 20, 6, 8); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckOwnership(0, 20, 6, 9); err == nil {
		t.Fatal("broken ledger accepted")
	}
	e := l.Instance(0)
	if e.Out != 10 || e.In != 4 || e.Commits != 1 || e.Aborts != 1 {
		t.Fatalf("entry %+v", e)
	}
}

func TestReleaseSessionFreesEndpoint(t *testing.T) {
	sink := &memSink{}
	ep := NewEndpoint(sink)
	tr := &memTransport{ep: ep}
	res := Run(&memSource{blobs: blobs(2)}, tr, Options{ID: 7, Bucket: 0})
	if !res.Committed {
		t.Fatalf("result %+v", res)
	}
	// Installed-but-unreleased sessions refuse new Begins (an uncommitted
	// install could be double-owned). After the routing flip the cluster
	// releases, and the endpoint accepts the next handoff.
	co := NewCoordinator(tr, Options{ID: 8, Bucket: 1})
	if err := co.Begin(); err == nil {
		t.Fatal("Begin accepted while an installed session is unresolved")
	}
	ep.ReleaseSession(999) // wrong id: no-op
	if id, installed := ep.Session(); id != 7 || !installed {
		t.Fatalf("session = (%d, %v) after wrong-id release", id, installed)
	}
	ep.ReleaseSession(7)
	if id, _ := ep.Session(); id != 0 {
		t.Fatalf("session %d still open after release", id)
	}
	if sink.discards != 0 {
		t.Fatal("release must not discard installed flows")
	}
	res = Run(&memSource{blobs: blobs(1)}, tr, Options{ID: 8, Bucket: 1})
	if !res.Committed {
		t.Fatalf("post-release handoff: %+v", res)
	}
}
