package migrate

import (
	"bytes"
	"testing"
)

// FuzzMigrationFrameDecode asserts the frame decoder never panics and
// never mis-accepts: whatever ParseFrame returns must re-encode to the
// exact bytes it consumed, and every payload decoder must be total on
// the accepted payloads.
func FuzzMigrationFrameDecode(f *testing.F) {
	f.Add(EncodeBegin(Begin{ID: 1, Epoch: 2, Bucket: 3}))
	f.Add(EncodeState(State{ID: 1, Seq: 1, Blob: []byte("blob")}))
	f.Add(EncodeActivate(Activate{ID: 1, Frames: 1, Sum: 9}))
	f.Add(EncodeAbort(Abort{ID: 1}))
	f.Add(EncodeAck(Ack{ID: 1, Status: AckOK, Applied: 7}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, rest, err := ParseFrame(data)
		if err != nil {
			return
		}
		consumed := len(data) - len(rest)
		re := AppendFrame(nil, kind, payload)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("accepted frame does not round-trip")
		}
		// Payload decoders must be total (no panics) on accepted frames.
		switch kind {
		case FrameBegin:
			DecodeBegin(payload) //nolint:errcheck
		case FrameState:
			DecodeState(payload) //nolint:errcheck
		case FrameActivate:
			DecodeActivate(payload) //nolint:errcheck
		case FrameAbort:
			DecodeAbort(payload) //nolint:errcheck
		case FrameAck:
			DecodeAck(payload) //nolint:errcheck
		}
		// The endpoint must absorb arbitrary accepted frames without
		// panicking and always answer with a parseable Ack.
		ep := NewEndpoint(nopSink{})
		resp := ep.Handle(data)
		if k, p, _, err := ParseFrame(resp); err != nil || k != FrameAck {
			t.Fatalf("endpoint response unparseable: %v", err)
		} else if _, err := DecodeAck(p); err != nil {
			t.Fatalf("endpoint ack undecodable: %v", err)
		}
	})
}

type nopSink struct{}

func (nopSink) Prepare(uint64, int) error             { return nil }
func (nopSink) Install(uint64, [][]byte) (int, error) { return 0, nil }
func (nopSink) Discard(uint64)                        {}
