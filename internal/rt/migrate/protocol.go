package migrate

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// Step identifies where in a handoff session a fault lands. The chaos
// harness exercises every (Step, FaultKind) pair.
type Step int

// Protocol steps, in session order.
const (
	StepBegin    Step = iota // open the session on the target
	StepTransfer             // stream state blobs
	StepActivate             // checksum-verified install on the target
	StepCommit               // target acked: source forgets, caller flips routing
	NumSteps
)

func (s Step) String() string {
	switch s {
	case StepBegin:
		return "begin"
	case StepTransfer:
		return "transfer"
	case StepActivate:
		return "activate"
	case StepCommit:
		return "commit"
	}
	return fmt.Sprintf("step(%d)", int(s))
}

// FaultKind is what the injector does to a protocol step.
type FaultKind int

// Injected fault kinds.
const (
	FaultNone    FaultKind = iota
	FaultKill              // the handoff session dies at this step
	FaultStall             // the frame vanishes in transit (timeout)
	FaultCorrupt           // the frame arrives with a flipped byte
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultKill:
		return "kill"
	case FaultStall:
		return "stall"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Injector decides the fault for a given step and send attempt (attempt
// counts from 0 per frame). It is the MigrateFaultPort analog of the
// engine's injection ports: deterministic, consulted at every cut point.
type Injector interface {
	Fault(step Step, attempt int) FaultKind
}

// InjectorFunc adapts a function to Injector.
type InjectorFunc func(step Step, attempt int) FaultKind

// Fault implements Injector.
func (f InjectorFunc) Fault(step Step, attempt int) FaultKind { return f(step, attempt) }

// Transport delivers one request frame to the peer endpoint and returns
// its response frame. ErrStall models a delivery timeout, ErrPeerDown a
// dead peer; both leave the peer's state unknown to the coordinator.
type Transport interface {
	Send(frame []byte) ([]byte, error)
}

// Transport and protocol errors.
var (
	ErrStall    = errors.New("migrate: transport stalled")
	ErrPeerDown = errors.New("migrate: peer down")
	ErrKilled   = errors.New("migrate: handoff killed by fault injection")
	ErrRetries  = errors.New("migrate: retry budget exhausted")
	ErrRefused  = errors.New("migrate: target refused session")
)

// Sink is the target instance's apply surface. Install is all-or-nothing:
// on error nothing of the session remains live. Discard undoes a
// successful Install (safe because routing has not flipped, so the
// installed flows never received a packet) or drops a buffered session.
type Sink interface {
	Prepare(id uint64, bucket int) error
	Install(id uint64, blobs [][]byte) (flows int, err error)
	Discard(id uint64)
}

// Endpoint is the target side of a handoff session. It buffers State
// frames, verifies sequence and checksum, and installs via the Sink only
// on a fully verified Activate. At most one session is open at a time;
// a Begin with a new id supersedes an uninstalled one (the coordinator
// that opened it has aborted or died). Handle is not goroutine-safe: like
// the routing table it belongs to the cluster's control goroutine.
type Endpoint struct {
	sink Sink
	sess *epSession
}

type epSession struct {
	id        uint64
	bucket    uint32
	blobs     [][]byte
	sum       uint32
	lastSeq   uint32
	installed bool
	flows     int
}

// NewEndpoint wraps a sink.
func NewEndpoint(sink Sink) *Endpoint { return &Endpoint{sink: sink} }

// Handle processes one request frame and always returns an Ack frame.
// Damaged frames get AckNak (retransmit); frames that cannot belong to a
// live session get AckRefused (abort).
func (ep *Endpoint) Handle(frame []byte) []byte {
	kind, payload, _, err := ParseFrame(frame)
	if err != nil {
		return EncodeAck(Ack{Status: AckNak})
	}
	switch kind {
	case FrameBegin:
		m, err := DecodeBegin(payload)
		if err != nil {
			return EncodeAck(Ack{Status: AckNak})
		}
		return ep.handleBegin(m)
	case FrameState:
		m, err := DecodeState(payload)
		if err != nil {
			return EncodeAck(Ack{Status: AckNak})
		}
		return ep.handleState(m)
	case FrameActivate:
		m, err := DecodeActivate(payload)
		if err != nil {
			return EncodeAck(Ack{Status: AckNak})
		}
		return ep.handleActivate(m)
	case FrameAbort:
		m, err := DecodeAbort(payload)
		if err != nil {
			return EncodeAck(Ack{Status: AckNak})
		}
		ep.AbortSession(m.ID)
		return EncodeAck(Ack{ID: m.ID, Status: AckOK})
	}
	return EncodeAck(Ack{Status: AckNak})
}

func (ep *Endpoint) handleBegin(m Begin) []byte {
	if s := ep.sess; s != nil {
		if s.id == m.ID {
			// Retransmitted Begin (our ack was lost): idempotent.
			return EncodeAck(Ack{ID: m.ID, Status: AckOK})
		}
		if s.installed {
			// An installed session awaits its routing flip; starting a
			// second handoff now could double-own flows. Refuse.
			return EncodeAck(Ack{ID: m.ID, Status: AckRefused})
		}
		// The coordinator of the old session is gone; drop its buffer.
		ep.sess = nil
	}
	if err := ep.sink.Prepare(m.ID, int(m.Bucket)); err != nil {
		return EncodeAck(Ack{ID: m.ID, Status: AckRefused})
	}
	ep.sess = &epSession{id: m.ID, bucket: m.Bucket}
	return EncodeAck(Ack{ID: m.ID, Status: AckOK})
}

func (ep *Endpoint) handleState(m State) []byte {
	s := ep.sess
	if s == nil || s.id != m.ID || s.installed {
		return EncodeAck(Ack{ID: m.ID, Status: AckRefused})
	}
	switch {
	case m.Seq == s.lastSeq+1:
		blob := append([]byte(nil), m.Blob...)
		s.blobs = append(s.blobs, blob)
		s.sum = crc32.Update(s.sum, castagnoli, blob)
		s.lastSeq = m.Seq
	case m.Seq <= s.lastSeq:
		// Duplicate after a lost ack: already buffered.
	default:
		return EncodeAck(Ack{ID: m.ID, Status: AckNak, Applied: s.lastSeq})
	}
	return EncodeAck(Ack{ID: m.ID, Status: AckOK, Applied: s.lastSeq})
}

func (ep *Endpoint) handleActivate(m Activate) []byte {
	s := ep.sess
	if s == nil || s.id != m.ID {
		return EncodeAck(Ack{ID: m.ID, Status: AckRefused})
	}
	if s.installed {
		// Retransmitted Activate (our ack was lost): idempotent.
		return EncodeAck(Ack{ID: m.ID, Status: AckOK, Applied: uint32(s.flows)})
	}
	if m.Frames != s.lastSeq || m.Sum != s.sum {
		return EncodeAck(Ack{ID: m.ID, Status: AckRefused})
	}
	n, err := ep.sink.Install(s.id, s.blobs)
	if err != nil {
		return EncodeAck(Ack{ID: m.ID, Status: AckRefused})
	}
	s.installed = true
	s.flows = n
	s.blobs = nil
	return EncodeAck(Ack{ID: m.ID, Status: AckOK, Applied: uint32(n)})
}

// ReleaseSession resolves session id after the routing flip: the
// installed flows are owned now, and the endpoint is free for the next
// handoff. Without it a committed session would keep refusing Begins
// forever (the refusal exists to protect *uncommitted* installs). It is
// idempotent and a no-op for other ids.
func (ep *Endpoint) ReleaseSession(id uint64) {
	if ep.sess != nil && ep.sess.id == id {
		ep.sess = nil
	}
}

// AbortSession rolls back session id: a buffered session is dropped, an
// installed one discarded through the sink. It is idempotent and also the
// target's handoff-timeout path — a target that loses its coordinator
// calls it directly, which is always safe because routing flips only
// after the coordinator saw the install ack and committed.
func (ep *Endpoint) AbortSession(id uint64) {
	s := ep.sess
	if s == nil || s.id != id {
		return
	}
	if s.installed {
		ep.sink.Discard(id)
	}
	ep.sess = nil
}

// Session reports the open session id and whether it is installed
// (0, false when idle). Exposed for invariant checks in tests.
func (ep *Endpoint) Session() (id uint64, installed bool) {
	if ep.sess == nil {
		return 0, false
	}
	return ep.sess.id, ep.sess.installed
}

// Options configures one handoff session.
type Options struct {
	ID          uint64
	Bucket      int
	Epoch       uint64
	MaxAttempts int // sends per frame before the session aborts (default 4)
	Injector    Injector
}

// Result summarizes a completed Coordinator session.
type Result struct {
	Committed bool
	Step      Step // step reached: StepCommit on success, else the failed step
	Blobs     int  // state blobs shipped
	Flows     int  // flows the target reported installed
	Attempts  int  // total frame sends, including retries
	Err       error
}

// Coordinator drives the source side of one handoff session. The caller
// sequences it: Begin, Ship for each state blob, Activate, Commit —
// quiescing and snapshotting between calls as its pipeline requires (the
// two-phase cluster rebalance ships a bulk pre-copy after Begin and the
// per-flow delta tail before Activate). Any failed call aborts the
// session; afterwards only Abort/Result are useful.
type Coordinator struct {
	tr   Transport
	opt  Options
	res  Result
	seq  uint32
	sum  uint32
	done bool
}

// NewCoordinator starts a session (no frames are sent until Begin).
func NewCoordinator(tr Transport, opt Options) *Coordinator {
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 4
	}
	return &Coordinator{tr: tr, opt: opt}
}

// send delivers one frame with bounded retries, consulting the injector
// at each attempt. It returns the endpoint's Ack or the terminal error.
func (co *Coordinator) send(step Step, frame []byte) (Ack, error) {
	var last error = ErrRetries
	for attempt := 0; attempt < co.opt.MaxAttempts; attempt++ {
		wire := frame
		if inj := co.opt.Injector; inj != nil {
			switch inj.Fault(step, attempt) {
			case FaultKill:
				// The migration worker dies mid-session. No more frames;
				// the cluster resolves via Endpoint.AbortSession (the
				// target's handoff timeout). The source retained its
				// state, so nothing is lost.
				return Ack{}, ErrKilled
			case FaultStall:
				// Frame lost in transit; retry after "timeout".
				co.res.Attempts++
				last = ErrStall
				continue
			case FaultCorrupt:
				wire = append([]byte(nil), frame...)
				wire[len(wire)-1] ^= 0x80 // damage survives length checks, trips the CRC
			}
		}
		co.res.Attempts++
		resp, err := co.tr.Send(wire)
		if err != nil {
			if errors.Is(err, ErrStall) {
				last = err
				continue
			}
			return Ack{}, err
		}
		kind, payload, _, err := ParseFrame(resp)
		if err != nil || kind != FrameAck {
			last = fmt.Errorf("migrate: bad response frame: %w", err)
			continue
		}
		ack, err := DecodeAck(payload)
		if err != nil {
			last = err
			continue
		}
		switch ack.Status {
		case AckOK:
			return ack, nil
		case AckNak:
			last = fmt.Errorf("migrate: %s frame NAKed (attempt %d)", step, attempt)
			continue
		default:
			return ack, fmt.Errorf("%w at %s", ErrRefused, step)
		}
	}
	return Ack{}, fmt.Errorf("%w at %s: %v", ErrRetries, step, last)
}

func (co *Coordinator) fail(step Step, err error) error {
	co.res.Committed = false
	co.res.Step = step
	co.res.Err = err
	co.done = true
	return err
}

// Begin opens the session on the target.
func (co *Coordinator) Begin() error {
	if co.done {
		return co.res.Err
	}
	frame := EncodeBegin(Begin{ID: co.opt.ID, Epoch: co.opt.Epoch, Bucket: uint32(co.opt.Bucket)})
	if _, err := co.send(StepBegin, frame); err != nil {
		return co.fail(StepBegin, err)
	}
	co.res.Step = StepBegin
	return nil
}

// Ship streams one state blob to the target.
func (co *Coordinator) Ship(blob []byte) error {
	if co.done {
		return co.res.Err
	}
	co.seq++
	co.sum = crc32.Update(co.sum, castagnoli, blob)
	frame := EncodeState(State{ID: co.opt.ID, Seq: co.seq, Blob: blob})
	if _, err := co.send(StepTransfer, frame); err != nil {
		return co.fail(StepTransfer, err)
	}
	co.res.Blobs++
	co.res.Step = StepTransfer
	return nil
}

// Activate asks the target to verify and install the shipped session.
// After a nil return the target owns a live copy and the caller must
// either Commit (flip routing, forget on the source) or Abort.
func (co *Coordinator) Activate() error {
	if co.done {
		return co.res.Err
	}
	frame := EncodeActivate(Activate{ID: co.opt.ID, Frames: co.seq, Sum: co.sum})
	ack, err := co.send(StepActivate, frame)
	if err != nil {
		return co.fail(StepActivate, err)
	}
	co.res.Flows = int(ack.Applied)
	co.res.Step = StepActivate
	return nil
}

// Commit finishes the session: forget runs the source-side release of the
// migrated slice. A kill injected at StepCommit models the source dying
// after the target's ack — the session still resolves forward (the target
// owns the slice; the dead source's retained copy is moot), so Commit
// reports success and the caller flips routing regardless.
func (co *Coordinator) Commit(forget func() error) error {
	if co.done {
		return co.res.Err
	}
	if inj := co.opt.Injector; inj != nil && inj.Fault(StepCommit, 0) == FaultKill {
		co.res.Err = ErrKilled // noted, not fatal: resolve forward
	}
	if err := forget(); err != nil {
		// The target already owns the slice; surface the source-side
		// cleanup failure but do not un-commit.
		co.res.Err = err
	}
	co.res.Committed = true
	co.res.Step = StepCommit
	co.done = true
	return nil
}

// Abort sends a best-effort Abort frame for the session. The cluster
// must still call Endpoint.AbortSession (or let the target's handoff
// timeout fire) — the frame itself may be lost.
func (co *Coordinator) Abort() {
	if co.res.Committed {
		return
	}
	co.done = true
	if co.res.Err == nil {
		co.res.Err = errors.New("migrate: aborted by coordinator")
	}
	frame := EncodeAbort(Abort{ID: co.opt.ID})
	co.res.Attempts++
	co.tr.Send(frame) //nolint:errcheck // best effort by design
}

// Result returns the session summary.
func (co *Coordinator) Result() Result { return co.res }

// Run drives a whole session in one call: Begin, Ship every blob from
// src, Activate, Commit(src.Forget). On any failure it aborts and the
// source retains the slice.
func Run(src Source, tr Transport, opt Options) Result {
	co := NewCoordinator(tr, opt)
	blobs, err := src.Snapshot()
	if err != nil {
		co.res.Err = err
		co.done = true
		return co.res
	}
	if err := co.Begin(); err != nil {
		co.Abort()
		return co.res
	}
	for _, b := range blobs {
		if err := co.Ship(b); err != nil {
			co.Abort()
			return co.res
		}
	}
	if err := co.Activate(); err != nil {
		co.Abort()
		return co.res
	}
	co.Commit(src.Forget) //nolint:errcheck // Commit never fails the session
	return co.res
}

// Source is the source instance's capture surface for Run: Snapshot
// peeks the slice's state without removing it; Forget releases it after
// the target's ack.
type Source interface {
	Snapshot() ([][]byte, error)
	Forget() error
}

// Ledger is the exact flow-ownership ledger: per instance, flows opened
// locally plus migrated in must equal flows closed locally plus migrated
// out plus currently live. Commit/Abort are recorded by the cluster
// control goroutine; reads may come from test goroutines, hence the lock.
type Ledger struct {
	mu   sync.Mutex
	inst map[int]*LedgerEntry
}

// LedgerEntry is one instance's migration accounting.
type LedgerEntry struct {
	In      uint64 // flows migrated in (committed sessions only)
	Out     uint64 // flows migrated out
	Commits uint64
	Aborts  uint64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{inst: map[int]*LedgerEntry{}} }

func (l *Ledger) entry(i int) *LedgerEntry {
	e := l.inst[i]
	if e == nil {
		e = &LedgerEntry{}
		l.inst[i] = e
	}
	return e
}

// Commit records a committed migration of flows from -> to.
func (l *Ledger) Commit(from, to, flows int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fe, te := l.entry(from), l.entry(to)
	fe.Out += uint64(flows)
	fe.Commits++
	te.In += uint64(flows)
}

// Abort records an aborted migration attempt from -> to.
func (l *Ledger) Abort(from, to int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entry(from).Aborts++
	_ = to
}

// Instance returns instance i's entry.
func (l *Ledger) Instance(i int) LedgerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return *l.entry(i)
}

// CheckOwnership verifies the ownership identity for instance i against
// its engine-side counters: opened + in == closed + out + live.
func (l *Ledger) CheckOwnership(i int, opened, closed, live uint64) error {
	e := l.Instance(i)
	lhs := opened + e.In
	rhs := closed + e.Out + live
	if lhs != rhs {
		return fmt.Errorf("migrate: ownership ledger broken on instance %d: opened %d + in %d = %d, want closed %d + out %d + live %d = %d",
			i, opened, e.In, lhs, closed, e.Out, live, rhs)
	}
	return nil
}
