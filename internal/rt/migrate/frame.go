package migrate

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"hilti/internal/rt/snapshot"
)

// Migration frames mirror the WAL record framing (PR 6): a length, a
// CRC-32C over kind++payload, a kind byte, and the payload. Everything
// that crosses the handoff Transport is one of these frames, and the
// decoder never panics on corrupt input (FuzzMigrationFrameDecode).
//
//	u32 length of kind+payload | u32 CRC-32C(kind ++ payload) | u8 kind | payload

// Frame kinds.
const (
	FrameBegin    byte = 1 // open a handoff session: id, epoch, bucket
	FrameState    byte = 2 // one state blob: id, seq, blob
	FrameActivate byte = 3 // install request: id, frame count, blob checksum
	FrameAbort    byte = 4 // roll the session back: id
	FrameAck      byte = 5 // response: id, status, applied count
)

// Ack statuses.
const (
	AckOK      byte = 0 // accepted / idempotent repeat
	AckNak     byte = 1 // damaged or out-of-order frame: retransmit
	AckRefused byte = 2 // session cannot proceed: abort the handoff
)

// MaxFramePayload bounds a single frame (the decoder rejects larger
// claims outright, so a corrupt length cannot drive allocation).
const MaxFramePayload = 64 << 20

const frameHeader = 8 // length + CRC

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame decode errors.
var (
	ErrFrameShort = errors.New("migrate: truncated frame")
	ErrFrameSize  = errors.New("migrate: implausible frame length")
	ErrFrameCRC   = errors.New("migrate: frame checksum mismatch")
)

// AppendFrame appends one encoded frame to dst and returns the result.
func AppendFrame(dst []byte, kind byte, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+len(payload)))
	crc := crc32.Update(0, castagnoli, []byte{kind})
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, kind)
	return append(dst, payload...)
}

// ParseFrame decodes the frame at the head of b, returning its kind,
// payload, and any trailing bytes. It is bounds-checked end to end and
// never panics on corrupt input.
func ParseFrame(b []byte) (kind byte, payload, rest []byte, err error) {
	if len(b) < frameHeader+1 {
		return 0, nil, nil, ErrFrameShort
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n < 1 || n > MaxFramePayload {
		return 0, nil, nil, ErrFrameSize
	}
	want := binary.LittleEndian.Uint32(b[4:8])
	body := b[frameHeader:]
	if uint32(len(body)) < n {
		return 0, nil, nil, ErrFrameShort
	}
	body, rest = body[:n], body[n:]
	if crc32.Checksum(body, castagnoli) != want {
		return 0, nil, nil, ErrFrameCRC
	}
	return body[0], body[1:], rest, nil
}

// Begin opens a handoff session.
type Begin struct {
	ID     uint64 // session id, unique per handoff attempt
	Epoch  uint64 // routing epoch the coordinator observed
	Bucket uint32 // the bucket being migrated
}

// State carries one state blob. Seq starts at 1 and increments per blob;
// the endpoint accepts duplicates (a retransmit after a lost ack) and
// NAKs gaps.
type State struct {
	ID   uint64
	Seq  uint32
	Blob []byte
}

// Activate asks the endpoint to install the buffered session after
// verifying it holds exactly Frames blobs whose running CRC-32C is Sum.
type Activate struct {
	ID     uint64
	Frames uint32
	Sum    uint32
}

// Abort rolls the session back (buffered or installed — an installed
// session is still safe to discard because routing never flipped).
type Abort struct {
	ID uint64
}

// Ack is the endpoint's response to any request frame.
type Ack struct {
	ID      uint64
	Status  byte
	Applied uint32 // blobs buffered (State) or flows installed (Activate)
}

func encodeFrame(kind byte, fill func(*snapshot.Encoder)) []byte {
	var buf bytes.Buffer
	enc := snapshot.NewRawEncoder(&buf)
	fill(enc)
	return AppendFrame(nil, kind, buf.Bytes())
}

// EncodeBegin encodes a Begin frame.
func EncodeBegin(m Begin) []byte {
	return encodeFrame(FrameBegin, func(enc *snapshot.Encoder) {
		enc.U64(m.ID)
		enc.U64(m.Epoch)
		enc.U32(m.Bucket)
	})
}

// EncodeState encodes a State frame.
func EncodeState(m State) []byte {
	return encodeFrame(FrameState, func(enc *snapshot.Encoder) {
		enc.U64(m.ID)
		enc.U32(m.Seq)
		enc.Bytes(m.Blob)
	})
}

// EncodeActivate encodes an Activate frame.
func EncodeActivate(m Activate) []byte {
	return encodeFrame(FrameActivate, func(enc *snapshot.Encoder) {
		enc.U64(m.ID)
		enc.U32(m.Frames)
		enc.U32(m.Sum)
	})
}

// EncodeAbort encodes an Abort frame.
func EncodeAbort(m Abort) []byte {
	return encodeFrame(FrameAbort, func(enc *snapshot.Encoder) {
		enc.U64(m.ID)
	})
}

// EncodeAck encodes an Ack frame.
func EncodeAck(m Ack) []byte {
	return encodeFrame(FrameAck, func(enc *snapshot.Encoder) {
		enc.U64(m.ID)
		enc.U8(m.Status)
		enc.U32(m.Applied)
	})
}

// DecodeBegin decodes a Begin payload.
func DecodeBegin(p []byte) (Begin, error) {
	dec := snapshot.NewRawDecoder(p)
	m := Begin{ID: dec.U64(), Epoch: dec.U64(), Bucket: dec.U32()}
	return m, payloadErr("begin", dec)
}

// DecodeState decodes a State payload.
func DecodeState(p []byte) (State, error) {
	dec := snapshot.NewRawDecoder(p)
	m := State{ID: dec.U64(), Seq: dec.U32()}
	m.Blob = dec.Bytes()
	return m, payloadErr("state", dec)
}

// DecodeActivate decodes an Activate payload.
func DecodeActivate(p []byte) (Activate, error) {
	dec := snapshot.NewRawDecoder(p)
	m := Activate{ID: dec.U64(), Frames: dec.U32(), Sum: dec.U32()}
	return m, payloadErr("activate", dec)
}

// DecodeAbort decodes an Abort payload.
func DecodeAbort(p []byte) (Abort, error) {
	dec := snapshot.NewRawDecoder(p)
	m := Abort{ID: dec.U64()}
	return m, payloadErr("abort", dec)
}

// DecodeAck decodes an Ack payload.
func DecodeAck(p []byte) (Ack, error) {
	dec := snapshot.NewRawDecoder(p)
	m := Ack{ID: dec.U64(), Status: dec.U8(), Applied: dec.U32()}
	return m, payloadErr("ack", dec)
}

func payloadErr(kind string, dec *snapshot.Decoder) error {
	if err := dec.Err(); err != nil {
		return fmt.Errorf("migrate: bad %s payload: %w", kind, err)
	}
	if dec.Remaining() != 0 {
		return fmt.Errorf("migrate: %s payload has %d trailing bytes", kind, dec.Remaining())
	}
	return nil
}
