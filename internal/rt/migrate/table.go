// Package migrate implements live flow-state migration between pipeline
// instances: an epoch-versioned consistent-hash routing table, a
// checksummed frame codec for handoff sessions, and a coordinator/endpoint
// protocol in which the source retains the migrating slice until the
// target acknowledges installation. A crash, stall, or corruption at any
// protocol step resolves by bounded retry, clean abort back to the source,
// or (after the target's ack) forward completion — never split-brain,
// never double-ownership. The commit point is the routing-table flip,
// which the caller performs only after a committed handoff; until then no
// packet has ever been routed to the target for the migrating flows, so
// rolling the target back is always safe.
//
// The protocol is transport-agnostic: instances in this repository live in
// one process and exchange frames over an in-memory Transport, but every
// byte of state crosses the Transport as an encoded, checksummed frame, so
// a socket-backed Transport turns the same protocol into a multi-process
// cluster without touching the state machine.
package migrate

import "fmt"

// tableMix scrambles flow hashes before bucketing (Fibonacci hashing) so
// bucket membership is decorrelated from the pipeline's worker sharding,
// which uses the raw hash modulo worker count.
const tableMix = 0x9E3779B97F4A7C15

// Table is the epoch-versioned routing table: a power-of-two number of
// buckets, each owned by one instance. Reads and flips must come from the
// single routing goroutine (the cluster feed loop); the table is plain
// data on purpose so routing costs one multiply, one shift, and one load
// per packet.
type Table struct {
	shift uint
	owner []int
	epoch uint64
}

// NewTable builds a table with the given bucket count (a power of two)
// and assigns buckets round-robin across instances 0..instances-1.
func NewTable(buckets, instances int) (*Table, error) {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		return nil, fmt.Errorf("migrate: bucket count %d is not a positive power of two", buckets)
	}
	if instances <= 0 {
		return nil, fmt.Errorf("migrate: need at least one instance, got %d", instances)
	}
	if instances > buckets {
		return nil, fmt.Errorf("migrate: %d instances exceed %d buckets", instances, buckets)
	}
	t := &Table{owner: make([]int, buckets)}
	for s := buckets; s > 1; s >>= 1 {
		t.shift++
	}
	t.shift = 64 - t.shift // buckets==1 -> shift 64 -> bucket 0 (Go defines x>>64 == 0)
	for b := range t.owner {
		t.owner[b] = b % instances
	}
	return t, nil
}

// Buckets returns the bucket count.
func (t *Table) Buckets() int { return len(t.owner) }

// Epoch returns the current routing epoch. It increments on every flip,
// so two tables agree on ownership iff they agree on the epoch.
func (t *Table) Epoch() uint64 { return t.epoch }

// BucketOf maps a flow's virtual id to its bucket.
func (t *Table) BucketOf(vid uint64) int {
	return int((vid * tableMix) >> t.shift)
}

// Owner returns the instance owning vid's bucket.
func (t *Table) Owner(vid uint64) int { return t.owner[t.BucketOf(vid)] }

// OwnerOf returns the instance owning bucket b.
func (t *Table) OwnerOf(b int) int { return t.owner[b] }

// Flip atomically (with respect to the routing goroutine) reassigns
// bucket b to instance `to` and returns the new epoch. This is the commit
// point of a migration: packets for the bucket route to the new owner
// from the next Feed call on.
func (t *Table) Flip(b, to int) uint64 {
	t.owner[b] = to
	t.epoch++
	return t.epoch
}

// BucketsOf returns the buckets owned by instance inst, ascending.
func (t *Table) BucketsOf(inst int) []int {
	var out []int
	for b, o := range t.owner {
		if o == inst {
			out = append(out, b)
		}
	}
	return out
}

// Counts returns, for instances 0..n-1, how many buckets each owns.
func (t *Table) Counts(n int) []int {
	out := make([]int, n)
	for _, o := range t.owner {
		if o >= 0 && o < n {
			out[o]++
		}
	}
	return out
}

// Rebalance returns the flips (bucket, newOwner) that would even out
// bucket ownership across instances 0..n-1, preferring to move buckets
// from the most-loaded instances. It does not modify the table; the
// caller migrates each bucket and flips only on commit.
func (t *Table) Rebalance(n int) [][2]int {
	if n <= 0 {
		return nil
	}
	counts := t.Counts(n)
	want := len(t.owner) / n
	extra := len(t.owner) % n
	target := make([]int, n)
	for i := range target {
		target[i] = want
		if i < extra {
			target[i]++
		}
	}
	var flips [][2]int
	for b, o := range t.owner {
		if o >= 0 && o < n && counts[o] <= target[o] {
			continue
		}
		// Bucket b is surplus (or owned by a retired instance >= n):
		// hand it to the neediest instance.
		dst := -1
		for i := 0; i < n; i++ {
			if counts[i] < target[i] && (dst < 0 || counts[i] < counts[dst]) {
				dst = i
			}
		}
		if dst < 0 {
			continue
		}
		if o >= 0 && o < n {
			counts[o]--
		}
		counts[dst]++
		flips = append(flips, [2]int{b, dst})
	}
	return flips
}
