package ruleplane

import (
	"math/rand"
	"testing"

	"hilti/internal/rt/values"
)

// --- Shared randomized generators (also used by the reload property test) ----

// randAddr picks from a deliberately small address pool so rules and
// packets collide often (overlap is where classification bugs live).
func randAddr(rng *rand.Rand) (uint64, uint64) {
	if rng.Intn(8) == 0 {
		// IPv6.
		var b [16]byte
		b[0] = 0x20
		b[1] = 0x01
		b[7] = byte(rng.Intn(4))
		b[15] = byte(rng.Intn(8))
		v := values.AddrFrom16(b)
		return v.A, v.B
	}
	v := values.AddrFrom4([4]byte{10, byte(rng.Intn(3)), byte(rng.Intn(4)), byte(rng.Intn(8))})
	return v.A, v.B
}

func randAddrPred(rng *rand.Rand) AddrPred {
	hi, lo := randAddr(rng)
	// Bias prefix lengths toward the interesting v4 band (96..128) with
	// some short and some v6-space lengths mixed in.
	var plen int
	switch rng.Intn(4) {
	case 0:
		plen = rng.Intn(129)
	default:
		plen = 96 + rng.Intn(33)
	}
	k := AddrIn
	if rng.Intn(4) == 0 {
		k = AddrNotIn
	}
	hi, lo = maskBits(hi, lo, plen)
	return AddrPred{Kind: k, Hi: hi, Lo: lo, PLen: plen}
}

func randPortPred(rng *rand.Rand) PortPred {
	lo := uint16(rng.Intn(1024))
	hi := lo + uint16(rng.Intn(64))
	k := PortIn
	if rng.Intn(4) == 0 {
		k = PortNotIn
	}
	return PortPred{Kind: k, Lo: lo, Hi: hi}
}

func randRule(rng *rand.Rand) Rule {
	var r Rule
	for rng.Intn(3) > 0 && len(r.Src) < 2 {
		r.Src = append(r.Src, randAddrPred(rng))
	}
	for rng.Intn(3) > 0 && len(r.Dst) < 2 {
		r.Dst = append(r.Dst, randAddrPred(rng))
	}
	if rng.Intn(3) == 0 {
		k := ProtoIs
		if rng.Intn(3) == 0 {
			k = ProtoNot
		}
		protos := []uint8{values.ProtoTCP, values.ProtoUDP, values.ProtoICMP}
		r.Proto = append(r.Proto, ProtoPred{Kind: k, Proto: protos[rng.Intn(len(protos))]})
	}
	if rng.Intn(3) == 0 {
		r.SrcPort = append(r.SrcPort, randPortPred(rng))
	}
	if rng.Intn(3) == 0 {
		r.DstPort = append(r.DstPort, randPortPred(rng))
	}
	r.Verdict = int64(rng.Intn(16))
	return r
}

func randPrograms(rng *rand.Rand, nprogs, maxRules int) []Program {
	progs := make([]Program, nprogs)
	for i := range progs {
		p := Program{Name: string(rune('a' + i)), Default: -int64(i) - 1, Gate: rng.Intn(4) == 0}
		n := rng.Intn(maxRules + 1)
		for j := 0; j < n; j++ {
			p.Rules = append(p.Rules, randRule(rng))
		}
		progs[i] = p
	}
	return progs
}

func randHeader(rng *rand.Rand) Header {
	shi, slo := randAddr(rng)
	dhi, dlo := randAddr(rng)
	protos := []uint8{values.ProtoTCP, values.ProtoUDP, values.ProtoICMP}
	proto := protos[rng.Intn(len(protos))]
	h := Header{SrcHi: shi, SrcLo: slo, DstHi: dhi, DstLo: dlo, Proto: proto}
	if proto == values.ProtoTCP || proto == values.ProtoUDP {
		h.HasPorts = true
		h.SrcPort = uint16(rng.Intn(1100))
		h.DstPort = uint16(rng.Intn(1100))
	}
	return h
}

// requireSameVerdicts evaluates h on both paths and fails on any
// difference in verdicts or winning-rule indexes.
func requireSameVerdicts(t *testing.T, auto *Automaton, lin *Linear, h Header) {
	t.Helper()
	np := lin.NumPrograms()
	av := make([]int64, np)
	lv := make([]int64, np)
	am := make([]int32, np)
	lm := make([]int32, np)
	auto.Eval(&h, av, am)
	lin.Eval(&h, lv, lm)
	for i := 0; i < np; i++ {
		if av[i] != lv[i] || am[i] != lm[i] {
			t.Fatalf("program %d diverged on %+v: compiled (verdict %d, rule %d) vs linear (verdict %d, rule %d)",
				i, h, av[i], am[i], lv[i], lm[i])
		}
	}
	if auto.GateDrop(av) != lin.GateDrop(lv) {
		t.Fatalf("gate decision diverged on %+v", h)
	}
}

func TestCompiledVsLinearRandomized(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		progs := randPrograms(rng, 1+rng.Intn(3), 40)
		auto, err := Compile(progs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		lin := NewLinear(progs)
		for i := 0; i < 400; i++ {
			requireSameVerdicts(t, auto, lin, randHeader(rng))
		}
	}
}

func TestHashConsingSharesTails(t *testing.T) {
	net, _ := values.ParseNet("10.1.0.0/16")
	r := Rule{Src: []AddrPred{AddrInNet(net)}, Verdict: 1}
	p := Program{Name: "p", Rules: []Rule{r, r, r, r}, Default: 0}
	auto, err := Compile([]Program{p})
	if err != nil {
		t.Fatal(err)
	}
	st := auto.Stats()
	if st.Tails != 1 || st.TailRefs != 4 {
		t.Fatalf("want 1 consed tail with 4 refs, got %d/%d", st.Tails, st.TailRefs)
	}
	if st.Rules != 4 {
		t.Fatalf("rules = %d", st.Rules)
	}
}

func TestValidateRejects(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Fatal("empty program set accepted")
	}
	many := make([]Program, MaxPrograms+1)
	for i := range many {
		many[i].Name = "p"
	}
	if _, err := Compile(many); err == nil {
		t.Fatal("too many programs accepted")
	}
	bad := []Program{{Name: "p", Rules: []Rule{{Src: []AddrPred{{Kind: AddrIn, PLen: 200}}}}}}
	if _, err := Compile(bad); err == nil {
		t.Fatal("bad prefix length accepted")
	}
	badPort := []Program{{Name: "p", Rules: []Rule{{SrcPort: []PortPred{{Kind: PortIn, Lo: 9, Hi: 3}}}}}}
	if _, err := Compile(badPort); err == nil {
		t.Fatal("empty port range accepted")
	}
}

func TestGateDropSemantics(t *testing.T) {
	net, _ := values.ParseNet("10.1.0.0/16")
	gate := Program{Name: "gate", Gate: true, Default: 0,
		Rules: []Rule{{Src: []AddrPred{AddrInNet(net)}, Verdict: 1}}}
	obs := Program{Name: "obs", Default: 7}
	auto, err := Compile([]Program{gate, obs})
	if err != nil {
		t.Fatal(err)
	}
	v := make([]int64, 2)
	m := make([]int32, 2)
	in := HeaderFromV4([4]byte{10, 1, 2, 3}, [4]byte{10, 9, 9, 9}, values.ProtoTCP, 1, 2)
	out := HeaderFromV4([4]byte{10, 2, 2, 3}, [4]byte{10, 9, 9, 9}, values.ProtoTCP, 1, 2)
	auto.Eval(&in, v, m)
	if auto.GateDrop(v) {
		t.Fatal("matching packet dropped")
	}
	if v[1] != 7 || m[1] != -1 {
		t.Fatalf("observational program verdict %d rule %d", v[1], m[1])
	}
	auto.Eval(&out, v, m)
	if !auto.GateDrop(v) {
		t.Fatal("non-matching packet passed the gate")
	}
}

func TestHeaderConstructors(t *testing.T) {
	h4 := HeaderFromV4([4]byte{10, 1, 2, 3}, [4]byte{10, 4, 5, 6}, values.ProtoUDP, 53, 4321)
	var b16s, b16d [16]byte
	copy(b16s[:], []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 10, 1, 2, 3})
	copy(b16d[:], []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 10, 4, 5, 6})
	h16 := HeaderFrom16(b16s, b16d, values.ProtoUDP, 53, 4321)
	if h4 != h16 {
		t.Fatalf("v4 and 16-byte constructors disagree: %+v vs %+v", h4, h16)
	}
	if !h4.HasPorts {
		t.Fatal("UDP header without ports")
	}
	icmp := HeaderFromV4([4]byte{1, 2, 3, 4}, [4]byte{5, 6, 7, 8}, values.ProtoICMP, 0, 0)
	if icmp.HasPorts {
		t.Fatal("ICMP header claims ports")
	}
}
