package ruleplane

// Linear is the naive reference evaluator: every program's rule list is
// scanned in order and the first matching rule wins. It is deliberately
// simple — this is the differential oracle the compiled automaton is
// verified against (unit tests, FuzzRulePlaneEquivalence, and every live
// swap's shadow window), and it is kept permanently for that reason.
type Linear struct {
	progs []Program
}

// NewLinear builds the reference evaluator. The program slice is
// retained; callers must treat it as immutable afterwards.
func NewLinear(progs []Program) *Linear {
	return &Linear{progs: progs}
}

// NumPrograms returns the number of hosted programs.
func (l *Linear) NumPrograms() int { return len(l.progs) }

// Eval computes every program's verdict for h. verdicts and matched must
// each have NumPrograms() elements; matched[i] receives the winning
// rule's index within program i, or -1 when the default verdict applied.
func (l *Linear) Eval(h *Header, verdicts []int64, matched []int32) {
	for pi := range l.progs {
		p := &l.progs[pi]
		verdicts[pi] = p.Default
		matched[pi] = -1
		for ri := range p.Rules {
			if p.Rules[ri].Matches(h) {
				verdicts[pi] = p.Rules[ri].Verdict
				matched[pi] = int32(ri)
				break
			}
		}
	}
}

// GateDrop reports whether any gate program returned verdict 0.
func (l *Linear) GateDrop(verdicts []int64) bool {
	for pi := range l.progs {
		if l.progs[pi].Gate && verdicts[pi] == 0 {
			return true
		}
	}
	return false
}
