package ruleplane

import (
	"fmt"

	"hilti/internal/rt/classifier"
	"hilti/internal/rt/values"
)

// FieldRole tells FromClassifier which packet-header field each
// classifier key column matches against.
type FieldRole int

// Classifier key-column roles.
const (
	RoleSrcAddr FieldRole = iota
	RoleDstAddr
	RoleSrcPort
	RoleDstPort
	RoleProto
)

// FromClassifier re-compiles a classifier table into a rule-plane
// program. roles maps each key column to a header field. The program's
// verdict for a match is the winning rule's index (insertion order) and
// Default is -1 (no match), so callers can recover the classifier's
// result value via its rule list; this keeps verdicts integral without
// restricting what classifier values may be.
func FromClassifier(c *classifier.Classifier, roles []FieldRole, name string) (Program, error) {
	if len(roles) != c.NumFields() {
		return Program{}, fmt.Errorf("ruleplane: classifier has %d fields, got %d roles", c.NumFields(), len(roles))
	}
	views := c.Rules()
	prog := Program{Name: name, Rules: make([]Rule, 0, len(views)), Default: -1}
	for ri, v := range views {
		var r Rule
		r.Verdict = int64(ri)
		for fi, f := range v.Fields {
			if err := addFieldPred(&r, roles[fi], f); err != nil {
				return Program{}, fmt.Errorf("ruleplane: %s rule %d field %d: %w", name, ri, fi, err)
			}
		}
		prog.Rules = append(prog.Rules, r)
	}
	return prog, nil
}

func addFieldPred(r *Rule, role FieldRole, f classifier.Field) error {
	switch m := f.(type) {
	case classifier.Wildcard:
		return nil
	case classifier.NetField:
		switch role {
		case RoleSrcAddr:
			r.Src = append(r.Src, AddrInNet(m.Net))
		case RoleDstAddr:
			r.Dst = append(r.Dst, AddrInNet(m.Net))
		default:
			return fmt.Errorf("net matcher on non-address role %d", role)
		}
		return nil
	case classifier.PortRangeField:
		return addPortPred(r, role, PortPred{Kind: PortIn, Lo: m.Lo, Hi: m.Hi}, m.Proto)
	case classifier.ExactField:
		switch m.Val.K {
		case values.KindAddr:
			switch role {
			case RoleSrcAddr:
				r.Src = append(r.Src, AddrIs(m.Val))
			case RoleDstAddr:
				r.Dst = append(r.Dst, AddrIs(m.Val))
			default:
				return fmt.Errorf("addr matcher on non-address role %d", role)
			}
			return nil
		case values.KindPort:
			p, proto := m.Val.AsPort()
			return addPortPred(r, role, PortPred{Kind: PortIn, Lo: p, Hi: p}, proto)
		case values.KindInt:
			if role != RoleProto {
				return fmt.Errorf("int matcher on non-proto role %d", role)
			}
			r.Proto = append(r.Proto, ProtoPred{Kind: ProtoIs, Proto: uint8(m.Val.A)})
			return nil
		default:
			return fmt.Errorf("unsupported exact-match kind %v", m.Val.K)
		}
	default:
		return fmt.Errorf("unsupported matcher %T", f)
	}
}

// addPortPred attaches a port predicate plus the protocol constraint port
// matchers carry (a HILTI port value is (number, proto), so 80/tcp does
// not match 80/udp — classifier.PortRangeField has the same semantics).
func addPortPred(r *Rule, role FieldRole, p PortPred, proto uint8) error {
	switch role {
	case RoleSrcPort:
		r.SrcPort = append(r.SrcPort, p)
	case RoleDstPort:
		r.DstPort = append(r.DstPort, p)
	default:
		return fmt.Errorf("port matcher on non-port role %d", role)
	}
	r.Proto = append(r.Proto, ProtoPred{Kind: ProtoIs, Proto: proto})
	return nil
}
