package ruleplane

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrSwapInFlight is returned by Swap while a previous swap's shadow
// window is still open.
var ErrSwapInFlight = errors.New("ruleplane: swap already in flight")

// Generation is one immutable compiled rule set: the programs, the
// compiled automaton, and the linear reference oracle, tagged with the
// swap sequence number that produced it.
type Generation struct {
	Seq   uint64
	Progs []Program
	Auto  *Automaton
	Ref   *Linear
}

// planeState is the atomically-published evaluation state. committed is
// what verdicts come from; shadow, when non-nil, is the candidate rule
// set being verified per-packet before the flip.
type planeState struct {
	committed *Generation
	shadow    *Generation
	inject    bool
	remaining atomic.Int64
}

// SwapOptions controls one hot reload.
type SwapOptions struct {
	// Window is the number of packets the shadow-verification window
	// spans: each of those packets is evaluated against the candidate
	// set's compiled automaton AND its linear reference, and any verdict
	// divergence aborts the swap (the automaton miscompiled the new
	// rules). 0 commits immediately with no shadow window.
	Window int64
	// InjectDivergence is a test hook: it perturbs the candidate
	// automaton's shadow verdicts so the divergence-abort path can be
	// exercised deterministically.
	InjectDivergence bool
}

// DivergenceReport describes why a swap aborted: the packet header and
// the first program whose compiled verdict disagreed with the linear
// reference under the candidate rule set.
type DivergenceReport struct {
	SwapSeq          uint64
	Program          string
	ProgramIndex     int
	Header           Header
	CompiledVerdict  int64
	ReferenceVerdict int64
	CompiledRule     int32 // program-local winning rule index, -1 = default
	ReferenceRule    int32
}

func (r *DivergenceReport) String() string {
	return fmt.Sprintf("swap %d aborted: program %q (#%d) diverged: compiled verdict %d (rule %d) vs reference %d (rule %d)",
		r.SwapSeq, r.Program, r.ProgramIndex, r.CompiledVerdict, r.CompiledRule, r.ReferenceVerdict, r.ReferenceRule)
}

// Ledger is a snapshot of the plane's swap/evaluation accounting.
type Ledger struct {
	Evals         uint64 // packets evaluated
	Drops         uint64 // packets a gate program dropped
	Swaps         uint64 // Swap calls accepted (window opened or instant commit)
	Committed     uint64 // swaps that flipped
	Aborted       uint64 // swaps aborted on divergence
	ShadowPackets uint64 // packets double-evaluated inside shadow windows
	ShadowChanged uint64 // shadow packets whose verdict differs old vs new (impact, not error)
	Divergences   uint64 // compiled-vs-reference mismatches detected in shadow
}

type ledger struct {
	evals, drops, swaps, committed, aborted atomic.Uint64
	shadowPkts, shadowChanged, divergences  atomic.Uint64
}

// Plane hosts the live rule set behind an atomic hot-reload API. Eval is
// lock-free and safe for concurrent callers; Swap installs a candidate
// rule set under live traffic with no pipeline pause: packets keep
// flowing off the committed generation while the shadow window verifies
// the candidate per-packet, and the flip itself is one pointer CAS
// (flip-as-commit — any divergence aborts with the committed set
// retained, never a half-installed plane).
type Plane struct {
	mu         sync.Mutex // serializes Swap
	state      atomic.Pointer[planeState]
	nextSeq    uint64
	led        ledger
	lastReport atomic.Pointer[DivergenceReport]
}

// New builds a plane committed to the given programs.
func New(progs []Program) (*Plane, error) {
	auto, err := Compile(progs)
	if err != nil {
		return nil, err
	}
	p := &Plane{nextSeq: 1}
	g := &Generation{Seq: 1, Progs: progs, Auto: auto, Ref: NewLinear(progs)}
	p.state.Store(&planeState{committed: g})
	return p, nil
}

// NumPrograms returns the number of programs in the committed set.
// Program count is fixed for the life of the plane: Swap rejects
// candidates with a different count so verdict slices never resize.
func (p *Plane) NumPrograms() int {
	return len(p.state.Load().committed.Progs)
}

// ProgramIndex returns the committed-set index of the named program, or -1.
func (p *Plane) ProgramIndex(name string) int {
	return p.state.Load().committed.Auto.ProgramIndex(name)
}

// CommittedSeq returns the sequence number of the committed generation.
func (p *Plane) CommittedSeq() uint64 {
	return p.state.Load().committed.Seq
}

// Committed returns the committed generation.
func (p *Plane) Committed() *Generation {
	return p.state.Load().committed
}

// Pending reports whether a swap's shadow window is still open.
func (p *Plane) Pending() bool {
	return p.state.Load().shadow != nil
}

// LastReport returns the divergence report of the most recently aborted
// swap, or nil.
func (p *Plane) LastReport() *DivergenceReport {
	return p.lastReport.Load()
}

// Stats snapshots the plane's ledger.
func (p *Plane) Stats() Ledger {
	return Ledger{
		Evals:         p.led.evals.Load(),
		Drops:         p.led.drops.Load(),
		Swaps:         p.led.swaps.Load(),
		Committed:     p.led.committed.Load(),
		Aborted:       p.led.aborted.Load(),
		ShadowPackets: p.led.shadowPkts.Load(),
		ShadowChanged: p.led.shadowChanged.Load(),
		Divergences:   p.led.divergences.Load(),
	}
}

// Swap compiles the candidate programs and installs them. With a zero
// window the flip is immediate; otherwise the candidate rides shadow on
// the next Window packets (see SwapOptions) and the packet that exhausts
// the window performs the commit CAS. Returns the candidate generation's
// sequence number; the caller can poll CommittedSeq()/Pending() to
// observe the outcome. Only one swap may be in flight at a time.
func (p *Plane) Swap(progs []Program, opts SwapOptions) (uint64, error) {
	auto, err := Compile(progs)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.state.Load()
	if cur.shadow != nil {
		return 0, ErrSwapInFlight
	}
	if len(progs) != len(cur.committed.Progs) {
		return 0, fmt.Errorf("ruleplane: swap changes program count %d -> %d; rebuild the plane instead",
			len(cur.committed.Progs), len(progs))
	}
	p.nextSeq++
	g := &Generation{Seq: p.nextSeq, Progs: progs, Auto: auto, Ref: NewLinear(progs)}
	p.led.swaps.Add(1)
	if opts.Window <= 0 {
		// Instant commit; Eval CASes never target a shadow-less state
		// from a shadow-less state, but a concurrent in-window commit is
		// impossible here (no shadow), so a plain loop suffices.
		for {
			if p.state.CompareAndSwap(cur, &planeState{committed: g}) {
				break
			}
			cur = p.state.Load()
		}
		p.led.committed.Add(1)
		return g.Seq, nil
	}
	ns := &planeState{committed: cur.committed, shadow: g, inject: opts.InjectDivergence}
	ns.remaining.Store(opts.Window)
	for {
		if p.state.CompareAndSwap(cur, ns) {
			break
		}
		cur = p.state.Load()
		ns.committed = cur.committed
	}
	return g.Seq, nil
}

// Eval computes the committed generation's verdicts for h and reports
// (seq, drop): the sequence number of the generation that produced the
// verdicts — the rule set committed at this packet's admission point —
// and whether a gate program dropped the packet. verdicts must have
// NumPrograms() elements. Eval is wait-free for readers; during a shadow
// window it additionally double-evaluates the candidate set (compiled +
// reference) and drives the swap state machine.
func (p *Plane) Eval(h *Header, verdicts []int64) (uint64, bool) {
	var matched [MaxPrograms]int32
	s := p.state.Load()
	g := s.committed
	g.Auto.Eval(h, verdicts, matched[:len(g.Progs)])
	drop := g.Auto.GateDrop(verdicts)
	p.led.evals.Add(1)
	if drop {
		p.led.drops.Add(1)
	}
	if sh := s.shadow; sh != nil {
		p.shadowEval(s, g, sh, h, verdicts)
	}
	return g.Seq, drop
}

// shadowEval runs one packet through the candidate generation's compiled
// automaton and linear reference, aborts the swap on divergence, and
// commits it when the window is exhausted.
func (p *Plane) shadowEval(s *planeState, g, sh *Generation, h *Header, committed []int64) {
	np := len(sh.Progs)
	var cv, rv [MaxPrograms]int64
	var cm, rm [MaxPrograms]int32
	sh.Auto.Eval(h, cv[:np], cm[:np])
	if s.inject {
		cv[0]++ // simulated miscompile (test hook)
	}
	sh.Ref.Eval(h, rv[:np], rm[:np])
	p.led.shadowPkts.Add(1)
	for i := 0; i < np; i++ {
		if cv[i] != rv[i] || cm[i] != rm[i] {
			rep := &DivergenceReport{
				SwapSeq:          sh.Seq,
				Program:          sh.Progs[i].Name,
				ProgramIndex:     i,
				Header:           *h,
				CompiledVerdict:  cv[i],
				ReferenceVerdict: rv[i],
				CompiledRule:     cm[i],
				ReferenceRule:    rm[i],
			}
			// Abort: drop the shadow, keep the committed generation.
			// Exactly one packet wins the CAS; late shadow evals on the
			// same state lose it and change nothing.
			if p.state.CompareAndSwap(s, &planeState{committed: g}) {
				p.lastReport.Store(rep)
				p.led.divergences.Add(1)
				p.led.aborted.Add(1)
			}
			return
		}
	}
	changed := false
	for i := 0; i < np; i++ {
		if rv[i] != committed[i] {
			changed = true
			break
		}
	}
	if changed {
		// Old-vs-new verdict difference is the swap's *impact*, not an
		// error: the operator changed the rules on purpose. Counted so
		// the blast radius of a rule edit is visible in the ledger.
		p.led.shadowChanged.Add(1)
	}
	if s.remaining.Add(-1) == 0 {
		if p.state.CompareAndSwap(s, &planeState{committed: sh}) {
			p.led.committed.Add(1)
		}
	}
}
