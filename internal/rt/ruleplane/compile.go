package ruleplane

import (
	"encoding/binary"
	"math"
	"math/bits"
	"sort"
)

// Automaton is the compiled decision structure: a path-compressed
// (Patricia) binary trie over the source address whose nodes each carry a
// nested destination trie; destination nodes hold the global indexes of
// the rules anchored at that (src-prefix, dst-prefix) pair, and residual
// predicates live in hash-consed tail nodes shared across rules. One walk
// per packet yields every program's verdict.
//
// Soundness comes from a one-way contract: the tries only SKIP rules that
// provably cannot match (a rule is anchored under its own positive
// src/dst prefixes, so any packet it matches must reach its anchor node),
// and every candidate the walk does reach is re-verified against the full
// predicate set by Rule-equivalent tail matching. Priority is global:
// rule indexes are assigned in program order, leaf lists are sorted
// ascending, and every subtree records the minimum index it contains, so
// the walk stops descending as soon as no remaining subtree can beat the
// best match already found for any program (first-match-wins preserved
// exactly).
type Automaton struct {
	progs   []Program
	rules   []arule
	progOff []int32 // global index of each program's first rule
	progEnd []int32 // global index just past each program's last rule
	src     *tnode
	gates   []int32 // program indexes with Gate set
	stats   AutoStats
}

// arule is one compiled rule: the shared tail plus enough to map a global
// match back to (program, local index, verdict).
type arule struct {
	tail    *tail
	verdict int64
	prog    int32
	local   int32
}

// tail holds a rule's full predicate set; tails are hash-consed so rules
// with identical predicate structure share one node (the BDD-style
// sharing for the non-prefix residue).
type tail struct {
	src, dst         []AddrPred
	proto            []ProtoPred
	srcPort, dstPort []PortPred
}

func (t *tail) matches(h *Header) bool {
	for _, p := range t.src {
		if !p.matches(h.SrcHi, h.SrcLo) {
			return false
		}
	}
	for _, p := range t.dst {
		if !p.matches(h.DstHi, h.DstLo) {
			return false
		}
	}
	for _, p := range t.proto {
		if !p.matches(h.Proto) {
			return false
		}
	}
	for _, p := range t.srcPort {
		if !p.matches(h.HasPorts, h.SrcPort) {
			return false
		}
	}
	for _, p := range t.dstPort {
		if !p.matches(h.HasPorts, h.DstPort) {
			return false
		}
	}
	return true
}

// tnode is a path-compressed binary trie node keyed by a masked prefix.
// Source-trie nodes use sub (the nested destination trie); destination-
// trie nodes use leaf (ascending global rule indexes anchored here).
type tnode struct {
	hi, lo uint64
	plen   int
	child  [2]*tnode
	sub    *tnode
	leaf   []int32
	minIdx int32
}

// AutoStats describes the compiled structure.
type AutoStats struct {
	Programs int
	Rules    int
	SrcNodes int
	DstNodes int
	Tails    int // hash-consed unique tail nodes
	TailRefs int // total rule references to tails (== Rules)
}

// Stats returns structure statistics.
func (a *Automaton) Stats() AutoStats { return a.stats }

// NumPrograms returns the number of hosted programs.
func (a *Automaton) NumPrograms() int { return len(a.progs) }

// ProgramIndex returns the index of the named program, or -1.
func (a *Automaton) ProgramIndex(name string) int {
	for i := range a.progs {
		if a.progs[i].Name == name {
			return i
		}
	}
	return -1
}

// Compile builds the shared automaton for a set of programs.
func Compile(progs []Program) (*Automaton, error) {
	if err := Validate(progs); err != nil {
		return nil, err
	}
	a := &Automaton{
		progs:   progs,
		progOff: make([]int32, len(progs)),
		progEnd: make([]int32, len(progs)),
		src:     &tnode{}, // forced /0 root: wildcard-src rules anchor here
	}
	cons := make(map[string]*tail)
	var keyBuf []byte
	gi := int32(0)
	for pi := range progs {
		p := &progs[pi]
		a.progOff[pi] = gi
		if p.Gate {
			a.gates = append(a.gates, int32(pi))
		}
		for ri := range p.Rules {
			r := &p.Rules[ri]
			t := consTail(cons, r, &keyBuf)
			a.rules = append(a.rules, arule{tail: t, verdict: r.Verdict, prog: int32(pi), local: int32(ri)})
			shi, slo, splen := anchorPrefix(r.Src)
			dhi, dlo, dplen := anchorPrefix(r.Dst)
			ns := trieInsert(a.src, shi, slo, splen)
			if ns.sub == nil {
				ns.sub = &tnode{} // forced /0 root for the nested dst trie
			}
			nd := trieInsert(ns.sub, dhi, dlo, dplen)
			nd.leaf = append(nd.leaf, gi)
			gi++
		}
		a.progEnd[pi] = gi
	}
	finalize(a.src, true)
	a.stats = AutoStats{
		Programs: len(progs),
		Rules:    len(a.rules),
		Tails:    len(cons),
		TailRefs: len(a.rules),
	}
	countNodes(a.src, true, &a.stats)
	return a, nil
}

// anchorPrefix picks the longest positive (AddrIn) prefix among the
// field's predicates as the rule's trie anchor; rules with no positive
// prefix (wildcard, pure negation) anchor at the root. The tail re-checks
// every predicate, so the anchor only needs to be implied by a match.
func anchorPrefix(preds []AddrPred) (uint64, uint64, int) {
	var hi, lo uint64
	plen := 0
	for _, p := range preds {
		if p.Kind == AddrIn && p.PLen > plen {
			hi, lo, plen = p.Hi, p.Lo, p.PLen
		}
	}
	hi, lo = maskBits(hi, lo, plen)
	return hi, lo, plen
}

// consTail interns the rule's predicate set in the unique table.
func consTail(cons map[string]*tail, r *Rule, buf *[]byte) *tail {
	b := (*buf)[:0]
	for _, p := range r.Src {
		b = appendAddrPred(b, 'S', p)
	}
	for _, p := range r.Dst {
		b = appendAddrPred(b, 'D', p)
	}
	for _, p := range r.Proto {
		b = append(b, 'P', byte(p.Kind), p.Proto)
	}
	for _, p := range r.SrcPort {
		b = appendPortPred(b, 's', p)
	}
	for _, p := range r.DstPort {
		b = appendPortPred(b, 'd', p)
	}
	*buf = b
	if t, ok := cons[string(b)]; ok {
		return t
	}
	t := &tail{
		src:     append([]AddrPred(nil), r.Src...),
		dst:     append([]AddrPred(nil), r.Dst...),
		proto:   append([]ProtoPred(nil), r.Proto...),
		srcPort: append([]PortPred(nil), r.SrcPort...),
		dstPort: append([]PortPred(nil), r.DstPort...),
	}
	cons[string(b)] = t
	return t
}

func appendAddrPred(b []byte, tag byte, p AddrPred) []byte {
	b = append(b, tag, byte(p.Kind), byte(p.PLen))
	b = binary.BigEndian.AppendUint64(b, p.Hi)
	b = binary.BigEndian.AppendUint64(b, p.Lo)
	return b
}

func appendPortPred(b []byte, tag byte, p PortPred) []byte {
	b = append(b, tag, byte(p.Kind))
	b = binary.BigEndian.AppendUint16(b, p.Lo)
	b = binary.BigEndian.AppendUint16(b, p.Hi)
	return b
}

// trieInsert returns the node for the masked prefix (hi, lo)/plen,
// creating (and, when necessary, splitting) nodes along the way. The root
// is always the /0 node, so insertion never replaces it.
func trieInsert(n *tnode, hi, lo uint64, plen int) *tnode {
	for {
		if plen == n.plen {
			return n
		}
		b := bitAt(hi, lo, n.plen)
		c := n.child[b]
		if c == nil {
			nn := &tnode{hi: hi, lo: lo, plen: plen}
			n.child[b] = nn
			return nn
		}
		cl := commonPrefixLen(c.hi, c.lo, c.plen, hi, lo, plen)
		if cl == c.plen {
			n = c
			continue
		}
		// Split c's edge at cl.
		mhi, mlo := maskBits(hi, lo, cl)
		mid := &tnode{hi: mhi, lo: mlo, plen: cl}
		mid.child[bitAt(c.hi, c.lo, cl)] = c
		n.child[b] = mid
		if cl == plen {
			return mid
		}
		nn := &tnode{hi: hi, lo: lo, plen: plen}
		mid.child[bitAt(hi, lo, cl)] = nn
		return nn
	}
}

// commonPrefixLen returns the length of the longest common prefix of the
// two masked keys, capped at both lengths.
func commonPrefixLen(ahi, alo uint64, alen int, bhi, blo uint64, blen int) int {
	m := alen
	if blen < m {
		m = blen
	}
	if x := ahi ^ bhi; x != 0 {
		if l := bits.LeadingZeros64(x); l < m {
			return l
		}
		return m
	}
	l := 64 + bits.LeadingZeros64(alo^blo)
	if l < m {
		return l
	}
	return m
}

// finalize sorts leaf lists and computes per-subtree minimum rule indexes
// (the priority-pruning bound used by Eval).
func finalize(n *tnode, isSrc bool) int32 {
	if n == nil {
		return math.MaxInt32
	}
	m := int32(math.MaxInt32)
	if len(n.leaf) > 0 {
		sort.Slice(n.leaf, func(i, j int) bool { return n.leaf[i] < n.leaf[j] })
		m = n.leaf[0]
	}
	if isSrc {
		if s := finalize(n.sub, false); s < m {
			m = s
		}
	}
	for _, c := range n.child {
		if s := finalize(c, isSrc); s < m {
			m = s
		}
	}
	n.minIdx = m
	return m
}

func countNodes(n *tnode, isSrc bool, st *AutoStats) {
	if n == nil {
		return
	}
	if isSrc {
		st.SrcNodes++
		countNodes(n.sub, false, st)
	} else {
		st.DstNodes++
	}
	countNodes(n.child[0], isSrc, st)
	countNodes(n.child[1], isSrc, st)
}

// Eval computes every program's verdict for h; the contract matches
// Linear.Eval exactly (same slices, same matched semantics). It performs
// no allocation: all walk state lives on the stack.
func (a *Automaton) Eval(h *Header, verdicts []int64, matched []int32) {
	np := len(a.progs)
	var curBest [MaxPrograms]int32
	bestAll := int32(len(a.rules))
	for i := 0; i < np; i++ {
		curBest[i] = a.progEnd[i]
		matched[i] = -1
	}
	n := a.src
	for n != nil {
		if n.minIdx >= bestAll {
			break
		}
		if !prefixContains(n.hi, n.lo, n.plen, h.SrcHi, h.SrcLo) {
			break
		}
		d := n.sub
		for d != nil {
			if d.minIdx >= bestAll {
				break
			}
			if !prefixContains(d.hi, d.lo, d.plen, h.DstHi, h.DstLo) {
				break
			}
			for _, gi := range d.leaf {
				if gi >= bestAll {
					break
				}
				r := &a.rules[gi]
				if gi >= curBest[r.prog] {
					continue
				}
				if r.tail.matches(h) {
					curBest[r.prog] = gi
					matched[r.prog] = r.local
					bestAll = curBest[0]
					for i := 1; i < np; i++ {
						if curBest[i] > bestAll {
							bestAll = curBest[i]
						}
					}
				}
			}
			if d.plen >= 128 {
				break
			}
			d = d.child[bitAt(h.DstHi, h.DstLo, d.plen)]
		}
		if n.plen >= 128 {
			break
		}
		n = n.child[bitAt(h.SrcHi, h.SrcLo, n.plen)]
	}
	for i := 0; i < np; i++ {
		if matched[i] >= 0 {
			verdicts[i] = a.rules[curBest[i]].verdict
		} else {
			verdicts[i] = a.progs[i].Default
		}
	}
}

// GateDrop reports whether any gate program returned verdict 0.
func (a *Automaton) GateDrop(verdicts []int64) bool {
	for _, pi := range a.gates {
		if verdicts[pi] == 0 {
			return true
		}
	}
	return false
}
