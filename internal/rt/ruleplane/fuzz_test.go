package ruleplane

import (
	"testing"
)

// fuzzReader doles out bytes from the fuzz input, yielding zeros once
// exhausted so every input decodes to a finite, valid rule set.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// fuzzAddr draws from a low-entropy pool: everything lands in 10.x.y.z
// v4-mapped space so rules and headers overlap constantly; a tagged byte
// escapes to a small v6 corner.
func fuzzAddr(r *fuzzReader) (uint64, uint64) {
	if r.byte()&7 == 0 {
		hi := uint64(0x20010db8)<<32 | uint64(r.byte()&3)
		lo := uint64(r.byte() & 7)
		return hi, lo
	}
	v4 := uint64(10)<<24 | uint64(r.byte()&3)<<16 | uint64(r.byte()&7)<<8 | uint64(r.byte()&15)
	return 0, 0xffff00000000 | v4
}

func fuzzAddrPred(r *fuzzReader) AddrPred {
	hi, lo := fuzzAddr(r)
	plen := int(r.byte()) % 129
	if r.byte()&1 == 0 {
		plen = 96 + int(r.byte())%33
	}
	k := AddrIn
	if r.byte()&3 == 0 {
		k = AddrNotIn
	}
	hi, lo = maskBits(hi, lo, plen)
	return AddrPred{Kind: k, Hi: hi, Lo: lo, PLen: plen}
}

func fuzzRule(r *fuzzReader) Rule {
	var ru Rule
	for i := int(r.byte()) % 3; i > 0; i-- {
		ru.Src = append(ru.Src, fuzzAddrPred(r))
	}
	for i := int(r.byte()) % 3; i > 0; i-- {
		ru.Dst = append(ru.Dst, fuzzAddrPred(r))
	}
	if r.byte()&3 == 0 {
		k := ProtoIs
		if r.byte()&3 == 0 {
			k = ProtoNot
		}
		ru.Proto = append(ru.Proto, ProtoPred{Kind: k, Proto: []uint8{6, 17, 1}[int(r.byte())%3]})
	}
	if r.byte()&3 == 0 {
		lo := uint16(r.byte())
		hi := lo + uint16(r.byte()&31)
		k := PortIn
		if r.byte()&3 == 0 {
			k = PortNotIn
		}
		ru.DstPort = append(ru.DstPort, PortPred{Kind: k, Lo: lo, Hi: hi})
	}
	if r.byte()&7 == 0 {
		lo := uint16(r.byte())
		ru.SrcPort = append(ru.SrcPort, PortPred{Kind: PortIn, Lo: lo, Hi: lo + uint16(r.byte()&15)})
	}
	ru.Verdict = int64(r.byte() % 8)
	return ru
}

func fuzzHeader(r *fuzzReader) Header {
	shi, slo := fuzzAddr(r)
	dhi, dlo := fuzzAddr(r)
	proto := []uint8{6, 17, 1}[int(r.byte())%3]
	h := Header{SrcHi: shi, SrcLo: slo, DstHi: dhi, DstLo: dlo, Proto: proto}
	if proto == 6 || proto == 17 {
		h.HasPorts = true
		h.SrcPort = uint16(r.byte()) | uint16(r.byte()&1)<<8
		h.DstPort = uint16(r.byte()) | uint16(r.byte()&1)<<8
	}
	return h
}

// FuzzRulePlaneEquivalence decodes random rule sets and packet headers
// from the fuzz input and requires the compiled automaton to agree with
// the linear reference evaluator on every verdict and winning-rule
// index. This is the K2-style differential oracle as a fuzz target.
func FuzzRulePlaneEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 7, 7, 7, 7, 128, 64, 32, 16, 8, 4, 2, 1,
		9, 9, 9, 9, 200, 100, 50, 25, 0, 0, 0, 0, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		nprogs := 1 + int(r.byte())%3
		progs := make([]Program, nprogs)
		for i := range progs {
			progs[i] = Program{
				Name:    string(rune('a' + i)),
				Default: int64(r.byte()%4) - 1,
				Gate:    r.byte()&3 == 0,
			}
			for j := int(r.byte()) % 12; j > 0; j-- {
				progs[i].Rules = append(progs[i].Rules, fuzzRule(r))
			}
		}
		auto, err := Compile(progs)
		if err != nil {
			t.Fatalf("generated programs must compile: %v", err)
		}
		lin := NewLinear(progs)
		av := make([]int64, nprogs)
		lv := make([]int64, nprogs)
		am := make([]int32, nprogs)
		lm := make([]int32, nprogs)
		for i := 1 + int(r.byte())%12; i > 0; i-- {
			h := fuzzHeader(r)
			auto.Eval(&h, av, am)
			lin.Eval(&h, lv, lm)
			for j := 0; j < nprogs; j++ {
				if av[j] != lv[j] || am[j] != lm[j] {
					t.Fatalf("program %d diverged on %+v: compiled (%d, rule %d) vs linear (%d, rule %d)",
						j, h, av[j], am[j], lv[j], lm[j])
				}
			}
			if auto.GateDrop(av) != lin.GateDrop(lv) {
				t.Fatalf("gate decision diverged on %+v", h)
			}
		}
	})
}
