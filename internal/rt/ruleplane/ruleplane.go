// Package ruleplane compiles every rule source the system evaluates per
// packet — classifier tables (rt/classifier), BPF filter predicates
// (internal/bpf), and firewall rule lists (internal/firewall) — into ONE
// match-action automaton evaluated once per packet.
//
// The paper's platform story (§2, §6.2) is that filters, classifiers, and
// firewall rules are all instances of the same abstract match problem;
// "A Fast Compiler for NetKAT" goes further and compiles whole
// packet-processing policies into shared BDD-like decision structures.
// This package is that step for our reproduction: rule sources are
// normalized into Programs (ordered first-match-wins rule lists over the
// 5-tuple header space), the set of programs is compiled into a shared
// field-ordered decision structure (a path-compressed binary trie over
// the source prefix, nested destination tries, and hash-consed residual
// predicate nodes), and a single walk per packet produces every program's
// verdict.
//
// Correctness discipline (K2-style): the naive linear evaluator (Linear)
// is kept permanently as the differential oracle. The compiled automaton
// must produce bit-identical verdicts — property-tested, fuzzed
// (FuzzRulePlaneEquivalence), and re-verified per packet during every
// live rule swap's shadow window (see Plane).
package ruleplane

import (
	"fmt"

	"hilti/internal/rt/values"
)

// MaxPrograms bounds how many programs one plane may host; verdict
// scratch space in the hot path is stack-allocated at this size.
const MaxPrograms = 16

// Header is the decoded per-packet key the rule plane matches on: the
// 5-tuple in the runtime's uniform 128-bit address space (IPv4 addresses
// in IPv4-mapped form, exactly like values.Value addrs).
type Header struct {
	SrcHi, SrcLo uint64
	DstHi, DstLo uint64
	Proto        uint8
	// HasPorts is true for TCP/UDP; port predicates only ever match
	// port-bearing packets (and negated port predicates match everything
	// else, the tcpdump `not port N` semantics).
	HasPorts         bool
	SrcPort, DstPort uint16
}

// HeaderFrom16 builds a Header from 16-byte network-order addresses (the
// pipeline's flow.Key layout).
func HeaderFrom16(src, dst [16]byte, proto uint8, srcPort, dstPort uint16) Header {
	s := values.AddrFrom16(src)
	d := values.AddrFrom16(dst)
	return Header{
		SrcHi: s.A, SrcLo: s.B, DstHi: d.A, DstLo: d.B,
		Proto: proto, HasPorts: proto == values.ProtoTCP || proto == values.ProtoUDP,
		SrcPort: srcPort, DstPort: dstPort,
	}
}

// HeaderFromV4 builds a Header from 4-byte IPv4 addresses.
func HeaderFromV4(src, dst [4]byte, proto uint8, srcPort, dstPort uint16) Header {
	s := values.AddrFrom4(src)
	d := values.AddrFrom4(dst)
	return Header{
		SrcHi: s.A, SrcLo: s.B, DstHi: d.A, DstLo: d.B,
		Proto: proto, HasPorts: proto == values.ProtoTCP || proto == values.ProtoUDP,
		SrcPort: srcPort, DstPort: dstPort,
	}
}

// HeaderFromAddrs builds a Header from runtime addr values (KindAddr).
func HeaderFromAddrs(src, dst values.Value, proto uint8, srcPort, dstPort uint16) Header {
	return Header{
		SrcHi: src.A, SrcLo: src.B, DstHi: dst.A, DstLo: dst.B,
		Proto: proto, HasPorts: proto == values.ProtoTCP || proto == values.ProtoUDP,
		SrcPort: srcPort, DstPort: dstPort,
	}
}

// --- Field predicates ---------------------------------------------------------

// AddrKind selects an address predicate's mode.
type AddrKind uint8

// Address predicate modes.
const (
	AddrAny   AddrKind = iota // matches every address
	AddrIn                    // address inside the prefix
	AddrNotIn                 // address outside the prefix
)

// AddrPred matches one endpoint address against a prefix. Hi/Lo hold the
// masked prefix bits in the 128-bit space; PLen is the 128-bit-space
// prefix length (IPv4 prefixes are widened by 96, like values.NetVal).
type AddrPred struct {
	Kind   AddrKind
	Hi, Lo uint64
	PLen   int
}

// AddrInNet builds an AddrIn predicate from a net value (KindNet).
func AddrInNet(net values.Value) AddrPred {
	return AddrPred{Kind: AddrIn, Hi: net.A, Lo: net.B, PLen: net.NetPrefixLen()}
}

// AddrIs builds an exact-address (/128) predicate from an addr value.
func AddrIs(addr values.Value) AddrPred {
	return AddrPred{Kind: AddrIn, Hi: addr.A, Lo: addr.B, PLen: 128}
}

func (p AddrPred) matches(hi, lo uint64) bool {
	switch p.Kind {
	case AddrAny:
		return true
	case AddrIn:
		return prefixContains(p.Hi, p.Lo, p.PLen, hi, lo)
	default: // AddrNotIn
		return !prefixContains(p.Hi, p.Lo, p.PLen, hi, lo)
	}
}

// PortKind selects a port predicate's mode.
type PortKind uint8

// Port predicate modes.
const (
	PortAny   PortKind = iota // matches every packet, ports or not
	PortIn                    // TCP/UDP packet with port in [Lo, Hi]
	PortNotIn                 // anything but a TCP/UDP packet with port in [Lo, Hi]
)

// PortPred matches one endpoint port against an inclusive range.
type PortPred struct {
	Kind   PortKind
	Lo, Hi uint16
}

func (p PortPred) matches(hasPorts bool, port uint16) bool {
	switch p.Kind {
	case PortAny:
		return true
	case PortIn:
		return hasPorts && port >= p.Lo && port <= p.Hi
	default: // PortNotIn
		return !hasPorts || port < p.Lo || port > p.Hi
	}
}

// ProtoKind selects a protocol predicate's mode.
type ProtoKind uint8

// Protocol predicate modes.
const (
	ProtoAny ProtoKind = iota
	ProtoIs
	ProtoNot
)

// ProtoPred matches the IP protocol number.
type ProtoPred struct {
	Kind  ProtoKind
	Proto uint8
}

func (p ProtoPred) matches(proto uint8) bool {
	switch p.Kind {
	case ProtoAny:
		return true
	case ProtoIs:
		return proto == p.Proto
	default: // ProtoNot
		return proto != p.Proto
	}
}

// --- Rules and programs -------------------------------------------------------

// Rule is one match-action rule: a conjunction of per-field predicates
// (empty slice = wildcard on that field) and the verdict produced when
// they all hold. Priority is list position: first match wins, exactly the
// classifier/firewall semantics the paper fixes ("applied in order of
// specification; the first match determines the result").
type Rule struct {
	Src, Dst         []AddrPred
	Proto            []ProtoPred
	SrcPort, DstPort []PortPred
	Verdict          int64
}

// Matches reports whether every predicate of the rule holds for h. This
// is the semantics-bearing definition both evaluators share; the compiled
// automaton only ever uses its tries to SKIP rules that cannot match,
// never to assert that one does.
func (r *Rule) Matches(h *Header) bool {
	for _, p := range r.Src {
		if !p.matches(h.SrcHi, h.SrcLo) {
			return false
		}
	}
	for _, p := range r.Dst {
		if !p.matches(h.DstHi, h.DstLo) {
			return false
		}
	}
	for _, p := range r.Proto {
		if !p.matches(h.Proto) {
			return false
		}
	}
	for _, p := range r.SrcPort {
		if !p.matches(h.HasPorts, h.SrcPort) {
			return false
		}
	}
	for _, p := range r.DstPort {
		if !p.matches(h.HasPorts, h.DstPort) {
			return false
		}
	}
	return true
}

// Program is one ordered first-match-wins rule list with a default
// verdict for packets no rule matches.
type Program struct {
	Name    string
	Rules   []Rule
	Default int64
	// Gate marks the program as packet-gating: a verdict of 0 means the
	// packet is dropped at ingress (the compiled-filter semantics).
	// Non-gate programs are observational — their verdicts are computed
	// and surfaced but never drop traffic (e.g. the firewall program,
	// whose dynamic reverse-direction state lives in the engine).
	Gate bool
}

// Validate rejects programs the compiler cannot represent.
func Validate(progs []Program) error {
	if len(progs) == 0 {
		return fmt.Errorf("ruleplane: no programs")
	}
	if len(progs) > MaxPrograms {
		return fmt.Errorf("ruleplane: %d programs exceeds the maximum %d", len(progs), MaxPrograms)
	}
	for pi := range progs {
		p := &progs[pi]
		for ri := range p.Rules {
			r := &p.Rules[ri]
			for _, a := range append(append([]AddrPred(nil), r.Src...), r.Dst...) {
				if a.Kind != AddrAny && (a.PLen < 0 || a.PLen > 128) {
					return fmt.Errorf("ruleplane: %s rule %d: prefix length %d out of range", p.Name, ri, a.PLen)
				}
			}
			for _, pp := range append(append([]PortPred(nil), r.SrcPort...), r.DstPort...) {
				if pp.Kind != PortAny && pp.Lo > pp.Hi {
					return fmt.Errorf("ruleplane: %s rule %d: empty port range %d-%d", p.Name, ri, pp.Lo, pp.Hi)
				}
			}
		}
	}
	return nil
}

// --- Bit helpers --------------------------------------------------------------

// prefixContains reports whether (hi, lo) lies within the masked prefix
// (phi, plo)/plen. Go shifts by >= 64 yield 0, so the plen==64 and
// plen==128 edges fall out correctly.
func prefixContains(phi, plo uint64, plen int, hi, lo uint64) bool {
	switch {
	case plen <= 0:
		return true
	case plen <= 64:
		return hi&^(^uint64(0)>>uint(plen)) == phi
	default:
		return hi == phi && lo&^(^uint64(0)>>uint(plen-64)) == plo
	}
}

// bitAt returns bit i (0 = MSB of hi) of a 128-bit address.
func bitAt(hi, lo uint64, i int) int {
	if i < 64 {
		return int(hi >> uint(63-i) & 1)
	}
	return int(lo >> uint(127-i) & 1)
}

// maskBits zeroes everything below the leading plen bits.
func maskBits(hi, lo uint64, plen int) (uint64, uint64) {
	switch {
	case plen <= 0:
		return 0, 0
	case plen >= 128:
		return hi, lo
	case plen <= 64:
		return hi &^ (^uint64(0) >> uint(plen)), 0
	default:
		return hi, lo &^ (^uint64(0) >> uint(plen-64))
	}
}
