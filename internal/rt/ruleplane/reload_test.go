package ruleplane

import (
	"math/rand"
	"sync"
	"testing"

	"hilti/internal/rt/values"
)

func basePrograms(t *testing.T) []Program {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	progs := randPrograms(rng, 2, 24)
	progs[0].Name = "gate"
	progs[0].Gate = true
	progs[1].Name = "obs"
	progs[1].Gate = false
	return progs
}

// mutatePrograms applies a random edit sequence (add / remove /
// re-prioritize / re-verdict) while keeping the program count fixed.
func mutatePrograms(rng *rand.Rand, progs []Program) []Program {
	out := make([]Program, len(progs))
	for i := range progs {
		out[i] = progs[i]
		out[i].Rules = append([]Rule(nil), progs[i].Rules...)
	}
	for edits := 1 + rng.Intn(5); edits > 0; edits-- {
		p := &out[rng.Intn(len(out))]
		switch op := rng.Intn(4); {
		case op == 0 && len(p.Rules) > 0: // remove
			i := rng.Intn(len(p.Rules))
			p.Rules = append(p.Rules[:i], p.Rules[i+1:]...)
		case op == 1: // add at random position
			i := rng.Intn(len(p.Rules) + 1)
			p.Rules = append(p.Rules[:i], append([]Rule{randRule(rng)}, p.Rules[i:]...)...)
		case op == 2 && len(p.Rules) > 1: // re-prioritize
			i, j := rng.Intn(len(p.Rules)), rng.Intn(len(p.Rules))
			p.Rules[i], p.Rules[j] = p.Rules[j], p.Rules[i]
		case op == 3 && len(p.Rules) > 0: // change a verdict
			p.Rules[rng.Intn(len(p.Rules))].Verdict = int64(rng.Intn(16))
		}
	}
	return out
}

func TestSwapImmediateCommit(t *testing.T) {
	progs := basePrograms(t)
	p, err := New(progs)
	if err != nil {
		t.Fatal(err)
	}
	if p.CommittedSeq() != 1 {
		t.Fatalf("initial seq %d", p.CommittedSeq())
	}
	rng := rand.New(rand.NewSource(1))
	next := mutatePrograms(rng, progs)
	seq, err := p.Swap(next, SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.CommittedSeq() != seq || p.Pending() {
		t.Fatalf("instant swap not committed: seq %d want %d pending %v", p.CommittedSeq(), seq, p.Pending())
	}
	st := p.Stats()
	if st.Swaps != 1 || st.Committed != 1 || st.Aborted != 0 {
		t.Fatalf("ledger %+v", st)
	}
}

func TestSwapShadowWindowExactLedger(t *testing.T) {
	// Single-threaded eval: the shadow window must span exactly Window
	// packets, the commit happens on the packet that exhausts it, and
	// verdicts switch generation on precisely that packet.
	progs := basePrograms(t)
	p, err := New(progs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	next := mutatePrograms(rng, progs)
	const window = 64
	seq, err := p.Swap(next, SwapOptions{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Pending() {
		t.Fatal("no shadow window open")
	}
	oldRef := NewLinear(progs)
	newRef := NewLinear(next)
	v := make([]int64, p.NumPrograms())
	want := make([]int64, p.NumPrograms())
	wantM := make([]int32, p.NumPrograms())
	for i := 0; i < window+50; i++ {
		h := randHeader(rng)
		gotSeq, _ := p.Eval(&h, v)
		ref := oldRef
		wantSeq := uint64(1)
		if i >= window {
			ref = newRef
			wantSeq = seq
		}
		if gotSeq != wantSeq {
			t.Fatalf("packet %d: generation %d want %d", i, gotSeq, wantSeq)
		}
		ref.Eval(&h, want, wantM)
		for j := range v {
			if v[j] != want[j] {
				t.Fatalf("packet %d program %d: verdict %d want %d", i, j, v[j], want[j])
			}
		}
	}
	if p.Pending() || p.CommittedSeq() != seq {
		t.Fatalf("swap not committed after window: pending %v seq %d", p.Pending(), p.CommittedSeq())
	}
	st := p.Stats()
	if st.Swaps != 1 || st.Committed != 1 || st.Aborted != 0 || st.Divergences != 0 {
		t.Fatalf("ledger %+v", st)
	}
	if st.ShadowPackets != window {
		t.Fatalf("shadow packets %d want exactly %d", st.ShadowPackets, window)
	}
	if st.Evals != window+50 {
		t.Fatalf("evals %d", st.Evals)
	}
}

func TestSwapInjectedDivergenceAborts(t *testing.T) {
	progs := basePrograms(t)
	p, err := New(progs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	next := mutatePrograms(rng, progs)
	seq, err := p.Swap(next, SwapOptions{Window: 256, InjectDivergence: true})
	if err != nil {
		t.Fatal(err)
	}
	v := make([]int64, p.NumPrograms())
	h := randHeader(rng)
	gotSeq, _ := p.Eval(&h, v)
	if gotSeq != 1 {
		t.Fatalf("verdicts from generation %d, want committed 1", gotSeq)
	}
	if p.Pending() {
		t.Fatal("shadow still open after divergence")
	}
	if p.CommittedSeq() != 1 {
		t.Fatalf("committed seq %d; aborted swap must retain the old set", p.CommittedSeq())
	}
	rep := p.LastReport()
	if rep == nil || rep.SwapSeq != seq || rep.ProgramIndex != 0 {
		t.Fatalf("divergence report %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty report rendering")
	}
	st := p.Stats()
	if st.Swaps != 1 || st.Aborted != 1 || st.Committed != 0 || st.Divergences != 1 || st.ShadowPackets != 1 {
		t.Fatalf("ledger %+v", st)
	}
	// Old verdicts retained: committed generation still evaluates progs.
	oldRef := NewLinear(progs)
	want := make([]int64, len(progs))
	wantM := make([]int32, len(progs))
	for i := 0; i < 50; i++ {
		hh := randHeader(rng)
		p.Eval(&hh, v)
		oldRef.Eval(&hh, want, wantM)
		for j := range v {
			if v[j] != want[j] {
				t.Fatalf("post-abort verdict drifted: program %d got %d want %d", j, v[j], want[j])
			}
		}
	}
	// The plane accepts a fresh swap after the abort.
	if _, err := p.Swap(next, SwapOptions{}); err != nil {
		t.Fatalf("swap after abort: %v", err)
	}
}

func TestSwapInFlightRejected(t *testing.T) {
	progs := basePrograms(t)
	p, err := New(progs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	next := mutatePrograms(rng, progs)
	if _, err := p.Swap(next, SwapOptions{Window: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Swap(next, SwapOptions{}); err != ErrSwapInFlight {
		t.Fatalf("err %v, want ErrSwapInFlight", err)
	}
	// Program-count changes are rejected.
	if _, err := p.Swap(progs[:1], SwapOptions{}); err == nil {
		t.Fatal("program-count change accepted")
	}
}

// TestHotReloadPropertyRandomized is the satellite property test: random
// rule-set edit sequences applied under concurrent traffic. Every packet
// gets exactly one (generation, verdicts) answer; the verdicts must match
// a linear evaluation of the rule set committed at that packet's
// admission point; and the swap ledger is exact.
func TestHotReloadPropertyRandomized(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(100 + seed))
		progs := randPrograms(rng, 1+rng.Intn(3), 16)
		p, err := New(progs)
		if err != nil {
			t.Fatal(err)
		}
		genProgs := map[uint64][]Program{1: progs}
		np := len(progs)

		const readers = 4
		const evalsPerReader = 3000
		type obs struct {
			h   Header
			seq uint64
			v   []int64
		}
		recs := make([][]obs, readers)
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rand.New(rand.NewSource(1000*seed + int64(g)))
				for i := 0; i < evalsPerReader; i++ {
					h := randHeader(r)
					v := make([]int64, np)
					seq, _ := p.Eval(&h, v)
					recs[g] = append(recs[g], obs{h: h, seq: seq, v: v})
				}
			}()
		}

		// Control loop: apply random edits while readers hammer Eval. The
		// control goroutine also pumps packets while a window is open so
		// resolution doesn't depend on reader lifetime.
		cur := progs
		var wantSwaps, wantAborts, wantCommits, ctlEvals uint64
		ctlV := make([]int64, np)
		for i := 0; i < 12; i++ {
			next := mutatePrograms(rng, cur)
			inject := rng.Intn(3) == 0
			window := int64(rng.Intn(200))
			seq, err := p.Swap(next, SwapOptions{Window: window, InjectDivergence: inject})
			if err != nil {
				t.Fatal(err)
			}
			wantSwaps++
			genProgs[seq] = next
			for p.Pending() {
				h := randHeader(rng)
				p.Eval(&h, ctlV)
				ctlEvals++
			}
			if inject && window > 0 {
				wantAborts++
			} else {
				wantCommits++
				cur = next
			}
			if committed := p.CommittedSeq(); !(inject && window > 0) && committed != seq {
				t.Fatalf("swap %d: committed %d want %d", i, committed, seq)
			}
		}
		wg.Wait()

		st := p.Stats()
		if st.Swaps != wantSwaps || st.Aborted != wantAborts || st.Committed != wantCommits || st.Divergences != wantAborts {
			t.Fatalf("seed %d: ledger %+v want swaps=%d committed=%d aborted=%d",
				seed, st, wantSwaps, wantCommits, wantAborts)
		}
		if st.Evals != readers*evalsPerReader+ctlEvals {
			t.Fatalf("seed %d: evals %d want %d", seed, st.Evals, readers*evalsPerReader+ctlEvals)
		}

		// Every observation must match the linear oracle of the rule set
		// committed at its admission point.
		want := make([]int64, np)
		wantM := make([]int32, np)
		oracles := map[uint64]*Linear{}
		for seq, ps := range genProgs {
			oracles[seq] = NewLinear(ps)
		}
		for g := range recs {
			for i, o := range recs[g] {
				ref := oracles[o.seq]
				if ref == nil {
					t.Fatalf("seed %d: reader %d obs %d: unknown generation %d", seed, g, i, o.seq)
				}
				ref.Eval(&o.h, want, wantM)
				for j := 0; j < np; j++ {
					if o.v[j] != want[j] {
						t.Fatalf("seed %d: reader %d obs %d gen %d program %d: verdict %d want %d",
							seed, g, i, o.seq, j, o.v[j], want[j])
					}
				}
			}
		}
	}
}

func TestShadowChangedCountsImpact(t *testing.T) {
	// A swap that flips a verdict on live traffic is not a divergence —
	// it is counted as impact (ShadowChanged) and still commits.
	net, _ := values.ParseNet("10.0.0.0/8")
	old := []Program{{Name: "p", Default: 0, Rules: []Rule{{Src: []AddrPred{AddrInNet(net)}, Verdict: 1}}}}
	new_ := []Program{{Name: "p", Default: 0, Rules: []Rule{{Src: []AddrPred{AddrInNet(net)}, Verdict: 2}}}}
	p, err := New(old)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := p.Swap(new_, SwapOptions{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	v := make([]int64, 1)
	h := HeaderFromV4([4]byte{10, 1, 2, 3}, [4]byte{9, 9, 9, 9}, values.ProtoTCP, 1, 2)
	for i := 0; i < 8; i++ {
		p.Eval(&h, v)
	}
	if p.CommittedSeq() != seq {
		t.Fatalf("verdict-changing swap did not commit: seq %d want %d", p.CommittedSeq(), seq)
	}
	st := p.Stats()
	if st.ShadowChanged != 8 || st.Aborted != 0 {
		t.Fatalf("ledger %+v; all 8 shadow packets changed verdict", st)
	}
}
