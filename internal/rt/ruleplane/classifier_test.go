package ruleplane

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hilti/internal/rt/classifier"
	"hilti/internal/rt/values"
)

// TestFromClassifierMatchesGet: for randomized 3-column classifiers
// (src net, dst net, dst port range), the plane program's verdict index
// recovers exactly the rule classifier.Get selects — the compiled and
// linear paths both agree with the classifier's own first-match walk.
func TestFromClassifierMatchesGet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	netOrWild := func() classifier.Field {
		if rng.Intn(4) == 0 {
			return classifier.Wildcard{}
		}
		plen := []int{8, 16, 24}[rng.Intn(3)]
		return classifier.NetField{Net: values.MustParseNet(
			fmt.Sprintf("10.%d.%d.0/%d", rng.Intn(3), rng.Intn(3), plen))}
	}
	portField := func() classifier.Field {
		switch rng.Intn(3) {
		case 0:
			return classifier.Wildcard{}
		case 1:
			lo := uint16(50 + rng.Intn(100))
			return classifier.PortRangeField{Lo: lo, Hi: lo + uint16(rng.Intn(50)), Proto: values.ProtoTCP}
		default:
			return classifier.ExactField{Val: values.PortVal(uint16(50+rng.Intn(150)), values.ProtoTCP)}
		}
	}

	for trial := 0; trial < 25; trial++ {
		c := classifier.New(3)
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			err := c.Add([]classifier.Field{netOrWild(), netOrWild(), portField()}, values.Int(int64(100+i)))
			if err != nil {
				t.Fatal(err)
			}
		}
		c.Compile()

		prog, err := FromClassifier(c, []FieldRole{RoleSrcAddr, RoleDstAddr, RoleDstPort}, "cls")
		if err != nil {
			t.Fatal(err)
		}
		auto, err := Compile([]Program{prog})
		if err != nil {
			t.Fatal(err)
		}
		lin := NewLinear([]Program{prog})
		views := c.Rules()

		av, lv := make([]int64, 1), make([]int64, 1)
		am, lm := make([]int32, 1), make([]int32, 1)
		for probe := 0; probe < 300; probe++ {
			src := values.AddrFrom4([4]byte{10, byte(rng.Intn(3)), byte(rng.Intn(3)), byte(1 + rng.Intn(5))})
			dst := values.AddrFrom4([4]byte{10, byte(rng.Intn(3)), byte(rng.Intn(3)), byte(1 + rng.Intn(5))})
			port := uint16(50 + rng.Intn(200))

			h := HeaderFromAddrs(src, dst, values.ProtoTCP, 9999, port)
			auto.Eval(&h, av, am)
			lin.Eval(&h, lv, lm)
			if av[0] != lv[0] || am[0] != lm[0] {
				t.Fatalf("trial %d: compiled vs linear diverged: (%d,%d) vs (%d,%d)",
					trial, av[0], am[0], lv[0], lm[0])
			}

			want, gerr := c.Get(src, dst, values.PortVal(port, values.ProtoTCP))
			if errors.Is(gerr, classifier.ErrNoMatch) {
				if av[0] != -1 {
					t.Fatalf("trial %d: classifier missed but plane matched rule %d", trial, av[0])
				}
				continue
			}
			if gerr != nil {
				t.Fatal(gerr)
			}
			if av[0] < 0 {
				t.Fatalf("trial %d: classifier matched %v but plane missed", trial, values.Format(want))
			}
			got := views[av[0]].Val
			if !values.Equal(got, want) {
				t.Fatalf("trial %d: plane rule %d -> %v, classifier -> %v",
					trial, av[0], values.Format(got), values.Format(want))
			}
		}
	}
}

// TestFromClassifierRoleMismatch: matcher/role combinations that make no
// sense (a net matcher on a port column) are rejected at compile time.
func TestFromClassifierRoleMismatch(t *testing.T) {
	c := classifier.New(1)
	if err := c.Add([]classifier.Field{classifier.NetField{Net: values.MustParseNet("10.0.0.0/8")}}, values.Int(1)); err != nil {
		t.Fatal(err)
	}
	c.Compile()
	if _, err := FromClassifier(c, []FieldRole{RoleDstPort}, "bad"); err == nil {
		t.Fatal("net matcher on a port role must be rejected")
	}
	if _, err := FromClassifier(c, []FieldRole{RoleSrcAddr, RoleDstAddr}, "bad"); err == nil {
		t.Fatal("role arity mismatch must be rejected")
	}
}
